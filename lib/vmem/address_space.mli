(** A process's virtual address space over a {!Machine}.

    Provides region mapping (backed by real simulated frames), raw byte IO
    through the page tables, and a *measured* access path that also
    exercises the per-core TLB and the shared cache model (used for the
    Table III experiment).  Raw IO performs no cost accounting: callers
    charge analytic costs from {!Cost_model}. *)

type t

val create : Machine.t -> t

val created_hook : (t -> unit) option ref
(** Fired at the end of {!create}; installed by the svagc_check shadow
    oracle while check mode is enabled (see [Machine.created_hook]). *)

val machine : t -> Machine.t

val asid : t -> int

val page_table : t -> Page_table.t

val map_range : t -> va:int -> pages:int -> unit
(** Back [pages] pages starting at page-aligned [va] with fresh frames.
    @raise Invalid_argument if [va] is not aligned or a page is already
    mapped.  @raise Phys_mem.Out_of_frames when the machine is full. *)

val unmap_range : t -> va:int -> pages:int -> unit
(** Unmap and free the backing frames.  Unmapped pages are skipped. *)

val is_mapped : t -> va:int -> bool
(** True for present *and* swapped-out pages (the page is owned, even if
    its bytes currently live on the swap device). *)

val translate : t -> va:int -> (int * int) option
(** [(frame, offset)]; no TLB interaction, no demand faulting — a
    swapped-out page translates to [None]. *)

val read_bytes : t -> va:int -> len:int -> bytes
(** @raise Invalid_argument if any page in the range is unmapped.  Like
    every frame-resolving accessor, demand-faults swapped pages back in
    through the machine's reclaim plane. *)

val peek_bytes : t -> va:int -> len:int -> bytes
(** Non-faulting read: present pages are read in place, swapped pages are
    read from their swap slot, and logically-zero pages yield zeroes —
    without swapping anything in, materializing zero frames, or touching
    LRU state.  The oracle-side dual of {!read_bytes}.
    @raise Invalid_argument if any page in the range is unmapped. *)

val peek_i64 : t -> va:int -> int64
(** Non-faulting little-endian 64-bit read (see {!peek_bytes}). *)

val write_bytes : t -> va:int -> src:bytes -> unit

val read_u8 : t -> va:int -> int

val write_u8 : t -> va:int -> int -> unit

val read_i64 : t -> va:int -> int64

val write_i64 : t -> va:int -> int64 -> unit

val fill : t -> va:int -> len:int -> char -> unit

val checksum : t -> va:int -> len:int -> int64
(** FNV-1a over the range; the GC correctness oracle.  Peek-based: never
    faults pages in or perturbs reclaim state (see {!peek_bytes}). *)

val touch : t -> core:int -> va:int -> unit
(** Measured access: TLB lookup (refill through the page table on a miss,
    demand-faulting a swapped page back in first) and one LLC line touch
    at the physical address.
    @raise Invalid_argument if unmapped. *)

val touch_range : t -> core:int -> va:int -> len:int -> unit
(** {!touch} every cache line of the range (one TLB interaction per page). *)

val mapped_pages : t -> int
