(* A frame in use starts [Zeroed]: logically zero-filled, but with no
   backing [Bytes] until something actually touches its contents.  A
   simulated machine can hold millions of frames for workloads (like PTE
   swapping) that never read or write a single payload byte — allocating
   gigabytes of real zeroes up front both slows machine setup and keeps a
   huge live heap that paces the host GC during everything that follows. *)
type frame_state =
  | Free
  | Zeroed
  | Data of bytes

type t = {
  frames : frame_state array;
  free : int Svagc_util.Vec.t;
  mutable in_use : int;
}

exception Out_of_frames

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  let free = Svagc_util.Vec.create () in
  (* Push in reverse so frame numbers are handed out in increasing order,
     which keeps traces readable. *)
  for i = frames - 1 downto 0 do
    Svagc_util.Vec.push free i
  done;
  { frames = Array.make frames Free; free; in_use = 0 }

let capacity_frames t = Array.length t.frames

let frames_in_use t = t.in_use

let alloc_frame t =
  match Svagc_util.Vec.pop t.free with
  | None -> raise Out_of_frames
  | Some frame ->
    t.frames.(frame) <- Zeroed;
    t.in_use <- t.in_use + 1;
    frame

let free_frame t frame =
  match t.frames.(frame) with
  | Free -> invalid_arg "Phys_mem.free_frame: frame not in use"
  | Zeroed | Data _ ->
    t.frames.(frame) <- Free;
    t.in_use <- t.in_use - 1;
    Svagc_util.Vec.push t.free frame

let frame_contents t frame =
  if frame < 0 || frame >= Array.length t.frames then
    invalid_arg "Phys_mem.frame_contents: no such frame";
  match t.frames.(frame) with
  | Free -> invalid_arg "Phys_mem.frame_contents: frame not in use"
  | Zeroed -> None
  | Data b -> Some b

let frame_bytes t frame =
  if frame < 0 || frame >= Array.length t.frames then
    invalid_arg "Phys_mem.frame_bytes: no such frame";
  match t.frames.(frame) with
  | Free -> invalid_arg "Phys_mem.frame_bytes: frame not in use"
  | Zeroed ->
    let b = Bytes.make Addr.page_size '\000' in
    t.frames.(frame) <- Data b;
    b
  | Data b -> b

let check_range ~off ~len =
  if off < 0 || len < 0 || off + len > Addr.page_size then
    invalid_arg "Phys_mem: range escapes the page"

let read t ~frame ~off ~len =
  check_range ~off ~len;
  Bytes.sub (frame_bytes t frame) off len

let write t ~frame ~off ~src ~src_off ~len =
  check_range ~off ~len;
  Bytes.blit src src_off (frame_bytes t frame) off len

let blit t ~src_frame ~src_off ~dst_frame ~dst_off ~len =
  check_range ~off:src_off ~len;
  check_range ~off:dst_off ~len;
  Bytes.blit (frame_bytes t src_frame) src_off (frame_bytes t dst_frame) dst_off len
