type entry = {
  mutable valid : bool;
  mutable asid : int;
  mutable vpn : int;
  mutable frame : int;
  mutable stamp : int;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes_full : int;
  mutable flushes_asid : int;
  mutable flushes_page : int;
}

type t = {
  sets : entry array array;
  n_sets : int;
  mutable tick : int;
  st : stats;
}

let create ?(entries = 64) ?(ways = 4) () =
  if entries mod ways <> 0 then invalid_arg "Tlb.create: entries must divide by ways";
  let n_sets = entries / ways in
  let fresh () = { valid = false; asid = 0; vpn = 0; frame = 0; stamp = 0 } in
  {
    sets = Array.init n_sets (fun _ -> Array.init ways (fun _ -> fresh ()));
    n_sets;
    tick = 0;
    st = { hits = 0; misses = 0; flushes_full = 0; flushes_asid = 0; flushes_page = 0 };
  }

let set_of t vpn = t.sets.(vpn mod t.n_sets)

let lookup t ~asid ~vpn =
  t.tick <- t.tick + 1;
  let set = set_of t vpn in
  let found = ref None in
  Array.iter
    (fun e ->
      if e.valid && e.asid = asid && e.vpn = vpn then begin
        e.stamp <- t.tick;
        found := Some e.frame
      end)
    set;
  (match !found with
  | Some _ -> t.st.hits <- t.st.hits + 1
  | None -> t.st.misses <- t.st.misses + 1);
  !found

let insert t ~asid ~vpn ~frame =
  t.tick <- t.tick + 1;
  let set = set_of t vpn in
  let victim = ref set.(0) in
  Array.iter
    (fun e ->
      (* Prefer an invalid way; otherwise evict the least recently used. *)
      if not e.valid then begin
        if !victim.valid then victim := e
      end
      else if !victim.valid && e.stamp < !victim.stamp then victim := e)
    set;
  let e = !victim in
  e.valid <- true;
  e.asid <- asid;
  e.vpn <- vpn;
  e.frame <- frame;
  e.stamp <- t.tick

let iter_entries t f = Array.iter (fun set -> Array.iter f set) t.sets

let iter_valid t f =
  iter_entries t (fun e ->
      if e.valid then f ~asid:e.asid ~vpn:e.vpn ~frame:e.frame)

let flush_all t =
  t.st.flushes_full <- t.st.flushes_full + 1;
  iter_entries t (fun e -> e.valid <- false)

let flush_asid t ~asid =
  t.st.flushes_asid <- t.st.flushes_asid + 1;
  iter_entries t (fun e -> if e.asid = asid then e.valid <- false)

let flush_page t ~asid ~vpn =
  t.st.flushes_page <- t.st.flushes_page + 1;
  iter_entries t (fun e -> if e.asid = asid && e.vpn = vpn then e.valid <- false)

let stats t = t.st

let reset_stats t =
  t.st.hits <- 0;
  t.st.misses <- 0;
  t.st.flushes_full <- 0;
  t.st.flushes_asid <- 0;
  t.st.flushes_page <- 0

let entries t = t.n_sets * Array.length t.sets.(0)

let occupied t =
  let n = ref 0 in
  iter_entries t (fun e -> if e.valid then incr n);
  !n
