(** Simulated physical memory: a pool of 4 KiB frames backed by real
    [Bytes], so data movement performed by the kernel (memmove) and by
    SwapVA (PTE remapping) is observable and checkable byte-for-byte. *)

type t

val create : frames:int -> t
(** A pool of [frames] frames.  Frame payloads are allocated lazily. *)

val capacity_frames : t -> int

val frames_in_use : t -> int

exception Out_of_frames

val alloc_frame : t -> int
(** Returns a free frame number (zero-filled).  @raise Out_of_frames. *)

val free_frame : t -> int -> unit
(** Returns a frame to the pool.  @raise Invalid_argument if not in use. *)

val frame_bytes : t -> int -> bytes
(** Direct view of a frame's backing store (always [page_size] long).
    @raise Invalid_argument if the frame is not in use. *)

val frame_contents : t -> int -> bytes option
(** Like {!frame_bytes} but without materializing a lazily-zeroed frame:
    [None] means "logically all zeroes".  Lets the swap device carry an
    untouched zero page without ever allocating its 4 KiB.
    @raise Invalid_argument if the frame is not in use. *)

val read : t -> frame:int -> off:int -> len:int -> bytes

val write : t -> frame:int -> off:int -> src:bytes -> src_off:int -> len:int -> unit

val blit :
  t -> src_frame:int -> src_off:int -> dst_frame:int -> dst_off:int -> len:int -> unit
(** Copy within/between frames; ranges must stay inside one page each. *)
