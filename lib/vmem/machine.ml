type core = {
  core_id : int;
  tlb : Tlb.t;
}

(* The machine's memory-pressure plane, as a record of closures: the state
   (swap device, LRU lists, watermarks) lives in svagc_reclaim, which sits
   ABOVE this library, so — like the fault injector and the shadow-oracle
   hooks — the wiring is inverted.  [None] (the default) means no memory
   limit: every call site guards with one ref read and behaves exactly as
   before, keeping unlimited runs bit-identical. *)
type reclaim_iface = {
  ri_page_mapped : pt:Page_table.t -> asid:int -> va:int -> unit;
  ri_page_unmapped : asid:int -> va:int -> pte:Pte.value -> unit;
  ri_page_touched : asid:int -> va:int -> unit;
  ri_fault_in : pt:Page_table.t -> asid:int -> va:int -> unit;
  ri_adopt : pt:Page_table.t -> asid:int -> unit;
  ri_slot_bytes : slot:int -> bytes option;
  ri_slot_allocated : slot:int -> bool;
  ri_slots_in_use : unit -> int;
  ri_drain_ns : unit -> float;
  ri_cgroup_stats : unit -> (int * int * int * int) list;
  ri_tier_stats : unit -> (int * int) option;
}

(* Machine-owned scratch for the flat SwapVA engine: two reusable run
   buffers (src/dst slice descriptors) and a direct-mapped memo for the
   bulk steady-state charge.  The memo is keyed by the walker's exact
   accumulated cost (float bits), the page count and the cached flag;
   a hit replays the identical float result, so memoization cannot
   perturb bit-identity — it only skips re-running a pure, deterministic
   serial float chain.  [hs_memo_enc] holds [(pages lsl 1) lor cached]
   (never 0, so 0 marks an empty slot).

   Scratch is per-domain: each execution stream (keyed by its
   Domain_slot) owns its own buffers and memo, so a pool worker can
   never scribble over another stream's half-built run list.  Memo
   contents only affect which computations are skipped, never their
   results, so per-domain memos cannot perturb bit-identity either. *)
type hot_scratch = {
  hs_src_runs : Page_table.run_buf;
  hs_dst_runs : Page_table.run_buf;
  hs_memo_acc : float array;
  hs_memo_enc : int array;
  hs_memo_out : float array;
}

let memo_slots = 8192

type t = {
  cost : Cost_model.t;
  ncores : int;
  cores : core array;
  phys : Phys_mem.t;
  perf : Perf.t;
  llc : Cache_sim.t;
  mutable copy_streams : int;
  mutable next_asid : int;
  mutable fault : Svagc_fault.Injector.t option;
  mutable reclaim : reclaim_iface option;
  scratch : hot_scratch option array;
}

(* Observation hooks for the shadow oracle (svagc_check).  The vmem layer
   cannot depend on the checker, so the wiring is inverted: the checker
   installs callbacks here while check mode is enabled.  [None] (the
   default) costs one ref read on the hot paths. *)
let created_hook : (t -> unit) option ref = ref None
let shootdown_hook : (t -> asid:int -> unit) option ref = ref None

let notify_shootdown t ~asid =
  match !shootdown_hook with None -> () | Some f -> f t ~asid

let create ?ncores ?(phys_mib = 512) (cost : Cost_model.t) =
  let ncores = match ncores with Some n -> n | None -> cost.ncores in
  if ncores <= 0 then invalid_arg "Machine.create: ncores must be positive";
  let frames = phys_mib * 1024 * 1024 / Addr.page_size in
  let t =
    {
      cost;
      ncores;
      cores = Array.init ncores (fun core_id -> { core_id; tlb = Tlb.create () });
      phys = Phys_mem.create ~frames;
      perf = Perf.create ();
      llc = Cache_sim.create ();
      copy_streams = 1;
      next_asid = 1;
      fault = None;
      reclaim = None;
      scratch = Array.make Svagc_util.Domain_slot.max_slots None;
    }
  in
  (match !created_hook with None -> () | Some f -> f t);
  t

let core t i =
  if i < 0 || i >= t.ncores then invalid_arg "Machine.core: no such core";
  t.cores.(i)

let hot_scratch t =
  let slot = Svagc_util.Domain_slot.my_slot () in
  match t.scratch.(slot) with
  | Some s -> s
  | None ->
    let s =
      {
        hs_src_runs = Page_table.run_buf_create ();
        hs_dst_runs = Page_table.run_buf_create ();
        hs_memo_acc = Array.make memo_slots 0.0;
        hs_memo_enc = Array.make memo_slots 0;
        hs_memo_out = Array.make memo_slots 0.0;
      }
    in
    t.scratch.(slot) <- Some s;
    s

let fresh_asid t =
  let asid = t.next_asid in
  t.next_asid <- asid + 1;
  asid

let effective_copy_bw t ~bytes_len =
  let bw = Cost_model.memmove_bw t.cost ~bytes_len in
  Cost_model.contended_bw t.cost ~streams:t.copy_streams ~bw

module Tracer = Svagc_trace.Tracer

(* One instant per interrupted core, on that core's track, so a trace
   shows exactly which cores a shootdown touched (Eq. 2's event count). *)
let trace_ipis t ~from_core =
  if Tracer.tracing () then
    for c = 0 to t.ncores - 1 do
      if c <> from_core then
        Tracer.instant ~cat:"kernel" ~tid:c
          ~args:[ ("from_core", Svagc_trace.Event.Int from_core) ]
          "ipi"
    done

(* A lost IPI is handled entirely inside the delivery protocol: the
   initiator notices the missing ack and resends once, so callers only
   ever see the extra latency, never an error (EIPI_lost stays
   kernel-internal by design). *)
let ipi_delivery_penalty_ns t ~from_core =
  match t.fault with
  | None -> 0.0
  | Some inj ->
    if Svagc_fault.Injector.fire inj ~site:Svagc_fault.Fault_spec.Ipi_deliver ~va:0
    then begin
      let victim = (from_core + 1) mod t.ncores in
      t.perf.ipis_lost <- t.perf.ipis_lost + 1;
      t.perf.ipis_sent <- t.perf.ipis_sent + 1;
      if Tracer.tracing () then
        Tracer.instant ~cat:"kernel" ~tid:victim
          ~args:[ ("from_core", Svagc_trace.Event.Int from_core) ]
          "ipi.lost";
      t.cost.ipi_ns +. t.cost.ipi_ack_ns
    end
    else 0.0

let ipi_broadcast_cost ?(scale = 1.0) t ~from_core =
  (* Sends go out in parallel: the initiator pays one delivery latency
     plus an ack-gathering cost per remote core, not a serial round trip
     per core.  [scale] discounts only the broadcast term (the kernel's
     process-targeted flush acks at 60% of a full round trip); a
     fault-injected lost IPI is always resent at full price. *)
  let remote = t.ncores - 1 in
  t.perf.ipis_sent <- t.perf.ipis_sent + remote;
  t.perf.shootdown_broadcasts <- t.perf.shootdown_broadcasts + 1;
  trace_ipis t ~from_core;
  if remote = 0 then 0.0
  else
    scale
    *. (t.cost.ipi_ns +. (float_of_int (remote - 1) *. t.cost.ipi_ack_ns))
    +. ipi_delivery_penalty_ns t ~from_core

let flush_tlb_local t ~asid ~core =
  Tlb.flush_asid (Stdlib.Array.get t.cores core).tlb ~asid;
  t.perf.tlb_flush_local <- t.perf.tlb_flush_local + 1;
  t.cost.tlb_flush_local_ns

let flush_tlb_all_cores t ~asid ~from_core =
  Array.iter (fun c -> Tlb.flush_asid c.tlb ~asid) t.cores;
  (* One local-flush event per core actually flushed (every core walks its
     own TLB when the IPI lands) plus one machine-wide event — the Eq. 2
     bookkeeping the shadow oracle cross-checks. *)
  t.perf.tlb_flush_local <- t.perf.tlb_flush_local + t.ncores;
  t.perf.tlb_flush_all <- t.perf.tlb_flush_all + 1;
  let ns = t.cost.tlb_flush_local_ns +. ipi_broadcast_cost t ~from_core in
  notify_shootdown t ~asid;
  ns
