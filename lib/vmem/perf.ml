type t = {
  mutable syscalls : int;
  mutable swapva_calls : int;
  mutable memmove_calls : int;
  mutable ptes_swapped : int;
  mutable pt_walks : int;
  mutable pmd_cache_hits : int;
  mutable leaf_runs : int;
  mutable runs_coalesced : int;
  mutable pmd_leaf_swaps : int;
  mutable bytes_copied : int;
  mutable bytes_remapped : int;
  mutable tlb_flush_local : int;
  mutable tlb_flush_page : int;
  mutable tlb_flush_all : int;
  mutable ipis_sent : int;
  mutable ipis_lost : int;
  mutable shootdown_broadcasts : int;
  mutable pins : int;
  mutable gc_cycles : int;
  mutable swap_retries : int;
  mutable swap_fallbacks : int;
  mutable alloc_waste_bytes : int;
  mutable alloc_bytes : int;
  mutable pages_swapped_out : int;
  mutable pages_swapped_in : int;
  mutable major_faults : int;
  mutable reclaim_scans : int;
  mutable kswapd_wakes : int;
  mutable swap_io_errors : int;
  mutable tier_demotions : int;
  mutable tier_promotions : int;
  mutable admission_rejects : int;
  mutable sched_scheduled : int;
  mutable sched_dispatched : int;
  mutable sched_cancelled : int;
}

let create () =
  {
    syscalls = 0;
    swapva_calls = 0;
    memmove_calls = 0;
    ptes_swapped = 0;
    pt_walks = 0;
    pmd_cache_hits = 0;
    leaf_runs = 0;
    runs_coalesced = 0;
    pmd_leaf_swaps = 0;
    bytes_copied = 0;
    bytes_remapped = 0;
    tlb_flush_local = 0;
    tlb_flush_page = 0;
    tlb_flush_all = 0;
    ipis_sent = 0;
    ipis_lost = 0;
    shootdown_broadcasts = 0;
    pins = 0;
    gc_cycles = 0;
    swap_retries = 0;
    swap_fallbacks = 0;
    alloc_waste_bytes = 0;
    alloc_bytes = 0;
    pages_swapped_out = 0;
    pages_swapped_in = 0;
    major_faults = 0;
    reclaim_scans = 0;
    kswapd_wakes = 0;
    swap_io_errors = 0;
    tier_demotions = 0;
    tier_promotions = 0;
    admission_rejects = 0;
    sched_scheduled = 0;
    sched_dispatched = 0;
    sched_cancelled = 0;
  }

let reset t =
  t.syscalls <- 0;
  t.swapva_calls <- 0;
  t.memmove_calls <- 0;
  t.ptes_swapped <- 0;
  t.pt_walks <- 0;
  t.pmd_cache_hits <- 0;
  t.leaf_runs <- 0;
  t.runs_coalesced <- 0;
  t.pmd_leaf_swaps <- 0;
  t.bytes_copied <- 0;
  t.bytes_remapped <- 0;
  t.tlb_flush_local <- 0;
  t.tlb_flush_page <- 0;
  t.tlb_flush_all <- 0;
  t.ipis_sent <- 0;
  t.ipis_lost <- 0;
  t.shootdown_broadcasts <- 0;
  t.pins <- 0;
  t.gc_cycles <- 0;
  t.swap_retries <- 0;
  t.swap_fallbacks <- 0;
  t.alloc_waste_bytes <- 0;
  t.alloc_bytes <- 0;
  t.pages_swapped_out <- 0;
  t.pages_swapped_in <- 0;
  t.major_faults <- 0;
  t.reclaim_scans <- 0;
  t.kswapd_wakes <- 0;
  t.swap_io_errors <- 0;
  t.tier_demotions <- 0;
  t.tier_promotions <- 0;
  t.admission_rejects <- 0;
  t.sched_scheduled <- 0;
  t.sched_dispatched <- 0;
  t.sched_cancelled <- 0

let copy t =
  {
    syscalls = t.syscalls;
    swapva_calls = t.swapva_calls;
    memmove_calls = t.memmove_calls;
    ptes_swapped = t.ptes_swapped;
    pt_walks = t.pt_walks;
    pmd_cache_hits = t.pmd_cache_hits;
    leaf_runs = t.leaf_runs;
    runs_coalesced = t.runs_coalesced;
    pmd_leaf_swaps = t.pmd_leaf_swaps;
    bytes_copied = t.bytes_copied;
    bytes_remapped = t.bytes_remapped;
    tlb_flush_local = t.tlb_flush_local;
    tlb_flush_page = t.tlb_flush_page;
    tlb_flush_all = t.tlb_flush_all;
    ipis_sent = t.ipis_sent;
    ipis_lost = t.ipis_lost;
    shootdown_broadcasts = t.shootdown_broadcasts;
    pins = t.pins;
    gc_cycles = t.gc_cycles;
    swap_retries = t.swap_retries;
    swap_fallbacks = t.swap_fallbacks;
    alloc_waste_bytes = t.alloc_waste_bytes;
    alloc_bytes = t.alloc_bytes;
    pages_swapped_out = t.pages_swapped_out;
    pages_swapped_in = t.pages_swapped_in;
    major_faults = t.major_faults;
    reclaim_scans = t.reclaim_scans;
    kswapd_wakes = t.kswapd_wakes;
    swap_io_errors = t.swap_io_errors;
    tier_demotions = t.tier_demotions;
    tier_promotions = t.tier_promotions;
    admission_rejects = t.admission_rejects;
    sched_scheduled = t.sched_scheduled;
    sched_dispatched = t.sched_dispatched;
    sched_cancelled = t.sched_cancelled;
  }

let add ~into d =
  into.syscalls <- into.syscalls + d.syscalls;
  into.swapva_calls <- into.swapva_calls + d.swapva_calls;
  into.memmove_calls <- into.memmove_calls + d.memmove_calls;
  into.ptes_swapped <- into.ptes_swapped + d.ptes_swapped;
  into.pt_walks <- into.pt_walks + d.pt_walks;
  into.pmd_cache_hits <- into.pmd_cache_hits + d.pmd_cache_hits;
  into.leaf_runs <- into.leaf_runs + d.leaf_runs;
  into.runs_coalesced <- into.runs_coalesced + d.runs_coalesced;
  into.pmd_leaf_swaps <- into.pmd_leaf_swaps + d.pmd_leaf_swaps;
  into.bytes_copied <- into.bytes_copied + d.bytes_copied;
  into.bytes_remapped <- into.bytes_remapped + d.bytes_remapped;
  into.tlb_flush_local <- into.tlb_flush_local + d.tlb_flush_local;
  into.tlb_flush_page <- into.tlb_flush_page + d.tlb_flush_page;
  into.tlb_flush_all <- into.tlb_flush_all + d.tlb_flush_all;
  into.ipis_sent <- into.ipis_sent + d.ipis_sent;
  into.ipis_lost <- into.ipis_lost + d.ipis_lost;
  into.shootdown_broadcasts <- into.shootdown_broadcasts + d.shootdown_broadcasts;
  into.pins <- into.pins + d.pins;
  into.gc_cycles <- into.gc_cycles + d.gc_cycles;
  into.swap_retries <- into.swap_retries + d.swap_retries;
  into.swap_fallbacks <- into.swap_fallbacks + d.swap_fallbacks;
  into.alloc_waste_bytes <- into.alloc_waste_bytes + d.alloc_waste_bytes;
  into.alloc_bytes <- into.alloc_bytes + d.alloc_bytes;
  into.pages_swapped_out <- into.pages_swapped_out + d.pages_swapped_out;
  into.pages_swapped_in <- into.pages_swapped_in + d.pages_swapped_in;
  into.major_faults <- into.major_faults + d.major_faults;
  into.reclaim_scans <- into.reclaim_scans + d.reclaim_scans;
  into.kswapd_wakes <- into.kswapd_wakes + d.kswapd_wakes;
  into.swap_io_errors <- into.swap_io_errors + d.swap_io_errors;
  into.tier_demotions <- into.tier_demotions + d.tier_demotions;
  into.tier_promotions <- into.tier_promotions + d.tier_promotions;
  into.admission_rejects <- into.admission_rejects + d.admission_rejects;
  into.sched_scheduled <- into.sched_scheduled + d.sched_scheduled;
  into.sched_dispatched <- into.sched_dispatched + d.sched_dispatched;
  into.sched_cancelled <- into.sched_cancelled + d.sched_cancelled

let diff ~after ~before =
  {
    syscalls = after.syscalls - before.syscalls;
    swapva_calls = after.swapva_calls - before.swapva_calls;
    memmove_calls = after.memmove_calls - before.memmove_calls;
    ptes_swapped = after.ptes_swapped - before.ptes_swapped;
    pt_walks = after.pt_walks - before.pt_walks;
    pmd_cache_hits = after.pmd_cache_hits - before.pmd_cache_hits;
    leaf_runs = after.leaf_runs - before.leaf_runs;
    runs_coalesced = after.runs_coalesced - before.runs_coalesced;
    pmd_leaf_swaps = after.pmd_leaf_swaps - before.pmd_leaf_swaps;
    bytes_copied = after.bytes_copied - before.bytes_copied;
    bytes_remapped = after.bytes_remapped - before.bytes_remapped;
    tlb_flush_local = after.tlb_flush_local - before.tlb_flush_local;
    tlb_flush_page = after.tlb_flush_page - before.tlb_flush_page;
    tlb_flush_all = after.tlb_flush_all - before.tlb_flush_all;
    ipis_sent = after.ipis_sent - before.ipis_sent;
    ipis_lost = after.ipis_lost - before.ipis_lost;
    shootdown_broadcasts = after.shootdown_broadcasts - before.shootdown_broadcasts;
    pins = after.pins - before.pins;
    gc_cycles = after.gc_cycles - before.gc_cycles;
    swap_retries = after.swap_retries - before.swap_retries;
    swap_fallbacks = after.swap_fallbacks - before.swap_fallbacks;
    alloc_waste_bytes = after.alloc_waste_bytes - before.alloc_waste_bytes;
    alloc_bytes = after.alloc_bytes - before.alloc_bytes;
    pages_swapped_out = after.pages_swapped_out - before.pages_swapped_out;
    pages_swapped_in = after.pages_swapped_in - before.pages_swapped_in;
    major_faults = after.major_faults - before.major_faults;
    reclaim_scans = after.reclaim_scans - before.reclaim_scans;
    kswapd_wakes = after.kswapd_wakes - before.kswapd_wakes;
    swap_io_errors = after.swap_io_errors - before.swap_io_errors;
    tier_demotions = after.tier_demotions - before.tier_demotions;
    tier_promotions = after.tier_promotions - before.tier_promotions;
    admission_rejects = after.admission_rejects - before.admission_rejects;
    sched_scheduled = after.sched_scheduled - before.sched_scheduled;
    sched_dispatched = after.sched_dispatched - before.sched_dispatched;
    sched_cancelled = after.sched_cancelled - before.sched_cancelled;
  }

let to_assoc t =
  [
    ("syscalls", t.syscalls);
    ("swapva_calls", t.swapva_calls);
    ("memmove_calls", t.memmove_calls);
    ("ptes_swapped", t.ptes_swapped);
    ("pt_walks", t.pt_walks);
    ("pmd_cache_hits", t.pmd_cache_hits);
    ("leaf_runs", t.leaf_runs);
    ("runs_coalesced", t.runs_coalesced);
    ("pmd_leaf_swaps", t.pmd_leaf_swaps);
    ("bytes_copied", t.bytes_copied);
    ("bytes_remapped", t.bytes_remapped);
    ("tlb_flush_local", t.tlb_flush_local);
    ("tlb_flush_page", t.tlb_flush_page);
    ("tlb_flush_all", t.tlb_flush_all);
    ("ipis_sent", t.ipis_sent);
    ("ipis_lost", t.ipis_lost);
    ("shootdown_broadcasts", t.shootdown_broadcasts);
    ("pins", t.pins);
    ("gc_cycles", t.gc_cycles);
    ("swap_retries", t.swap_retries);
    ("swap_fallbacks", t.swap_fallbacks);
    ("alloc_waste_bytes", t.alloc_waste_bytes);
    ("alloc_bytes", t.alloc_bytes);
    ("pages_swapped_out", t.pages_swapped_out);
    ("pages_swapped_in", t.pages_swapped_in);
    ("major_faults", t.major_faults);
    ("reclaim_scans", t.reclaim_scans);
    ("kswapd_wakes", t.kswapd_wakes);
    ("swap_io_errors", t.swap_io_errors);
    ("tier_demotions", t.tier_demotions);
    ("tier_promotions", t.tier_promotions);
    ("admission_rejects", t.admission_rejects);
    ("sched_scheduled", t.sched_scheduled);
    ("sched_dispatched", t.sched_dispatched);
    ("sched_cancelled", t.sched_cancelled);
  ]

let pp ppf t =
  Format.fprintf ppf
    "syscalls=%d swapva=%d memmove=%d ptes_swapped=%d walks=%d pmd_hits=%d \
     leaf_runs=%d coalesced=%d leaf_swaps=%d copied=%dB remapped=%dB \
     flush_local=%d flush_page=%d flush_all=%d ipis=%d ipis_lost=%d broadcasts=%d pins=%d \
     gcs=%d retries=%d fallbacks=%d waste=%dB alloc=%dB \
     swapped_out=%d swapped_in=%d major_faults=%d reclaim_scans=%d \
     kswapd_wakes=%d swap_eio=%d demotions=%d promotions=%d \
     admission_rejects=%d sched_scheduled=%d sched_dispatched=%d \
     sched_cancelled=%d"
    t.syscalls t.swapva_calls t.memmove_calls t.ptes_swapped t.pt_walks
    t.pmd_cache_hits t.leaf_runs t.runs_coalesced t.pmd_leaf_swaps
    t.bytes_copied t.bytes_remapped t.tlb_flush_local
    t.tlb_flush_page t.tlb_flush_all t.ipis_sent t.ipis_lost t.shootdown_broadcasts t.pins
    t.gc_cycles t.swap_retries t.swap_fallbacks
    t.alloc_waste_bytes t.alloc_bytes
    t.pages_swapped_out t.pages_swapped_in t.major_faults t.reclaim_scans
    t.kswapd_wakes t.swap_io_errors t.tier_demotions t.tier_promotions
    t.admission_rejects t.sched_scheduled t.sched_dispatched t.sched_cancelled
