type node =
  | Dir of node option array
  | Leaf of Pte.value array

type t = { root : node option array }

let walk_dir_levels = 4

let create () = { root = Array.make Addr.entries_per_table None }

let indices va =
  (Addr.pgd_index va, Addr.p4d_index va, Addr.pud_index va, Addr.pmd_index va)

let find_leaf t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let step slot =
    match slot with
    | Some (Dir entries) -> Some entries
    | Some (Leaf _) | None -> None
  in
  match step t.root.(i_pgd) with
  | None -> None
  | Some p4d -> (
    match step p4d.(i_p4d) with
    | None -> None
    | Some pud -> (
      match step pud.(i_pud) with
      | None -> None
      | Some pmd -> (
        match pmd.(i_pmd) with
        | Some (Leaf ptes) -> Some ptes
        | Some (Dir _) | None -> None)))

let ensure_dir slot_get slot_set =
  match slot_get () with
  | Some (Dir entries) -> entries
  | Some (Leaf _) -> invalid_arg "Page_table: leaf found at directory level"
  | None ->
    let entries = Array.make Addr.entries_per_table None in
    slot_set (Dir entries);
    entries

let ensure_leaf t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let p4d =
    ensure_dir (fun () -> t.root.(i_pgd)) (fun n -> t.root.(i_pgd) <- Some n)
  in
  let pud =
    ensure_dir (fun () -> p4d.(i_p4d)) (fun n -> p4d.(i_p4d) <- Some n)
  in
  let pmd =
    ensure_dir (fun () -> pud.(i_pud)) (fun n -> pud.(i_pud) <- Some n)
  in
  match pmd.(i_pmd) with
  | Some (Leaf ptes) -> ptes
  | Some (Dir _) -> invalid_arg "Page_table: directory found at leaf level"
  | None ->
    let ptes = Array.make Addr.entries_per_table Pte.none in
    pmd.(i_pmd) <- Some (Leaf ptes);
    ptes

let get_pte t va =
  match find_leaf t va with
  | None -> Pte.none
  | Some ptes -> ptes.(Addr.pte_index va)

let find_leaf_run t va ~max_pages =
  if max_pages <= 0 then invalid_arg "Page_table.find_leaf_run: empty run";
  match find_leaf t va with
  | None -> None
  | Some ptes ->
    let start = Addr.pte_index va in
    Some (ptes, start, min max_pages (Addr.entries_per_table - start))

let swap_pte_runs leaf_a ~start_a leaf_b ~start_b ~len =
  if len < 0 then invalid_arg "Page_table.swap_pte_runs: negative length";
  if
    start_a < 0 || start_b < 0
    || start_a + len > Array.length leaf_a
    || start_b + len > Array.length leaf_b
  then invalid_arg "Page_table.swap_pte_runs: slice out of bounds";
  if leaf_a == leaf_b && abs (start_a - start_b) < len then
    invalid_arg "Page_table.swap_pte_runs: overlapping slices";
  (* Allocation-free elementwise exchange.  A blit-based version either
     allocates its temporary per call — a 512-entry array is over the
     minor-heap allocation limit, so it lands on the major heap and paces
     major-GC slices over whatever the simulated machine keeps live — or
     moves 3x the memory traffic through a scratch, which loses once the
     PTE working set outgrows the cache.  PTE values are immediates, so
     this loop is pure int traffic (bounds already checked above). *)
  for i = 0 to len - 1 do
    let a = Array.unsafe_get leaf_a (start_a + i) in
    Array.unsafe_set leaf_a (start_a + i) (Array.unsafe_get leaf_b (start_b + i));
    Array.unsafe_set leaf_b (start_b + i) a
  done

let pmd_slot t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let step slot =
    match slot with
    | Some (Dir entries) -> Some entries
    | Some (Leaf _) | None -> None
  in
  match step t.root.(i_pgd) with
  | None -> None
  | Some p4d -> (
    match step p4d.(i_p4d) with
    | None -> None
    | Some pud -> (
      match step pud.(i_pud) with
      | None -> None
      | Some pmd -> Some (pmd, i_pmd)))

let swap_pmd_entries t va_a va_b =
  let aligned va = Addr.pte_index va = 0 && Addr.page_offset va = 0 in
  if not (aligned va_a && aligned va_b) then
    invalid_arg "Page_table.swap_pmd_entries: addresses must be PMD-aligned";
  match (pmd_slot t va_a, pmd_slot t va_b) with
  | Some (pmd_a, i_a), Some (pmd_b, i_b) -> (
    match (pmd_a.(i_a), pmd_b.(i_b)) with
    | (Some (Leaf _) as a), (Some (Leaf _) as b) ->
      pmd_a.(i_a) <- b;
      pmd_b.(i_b) <- a
    | _ -> invalid_arg "Page_table.swap_pmd_entries: no leaf at PMD slot")
  | _ -> invalid_arg "Page_table.swap_pmd_entries: no leaf at PMD slot"

let set_pte t va v =
  let ptes = ensure_leaf t va in
  ptes.(Addr.pte_index va) <- v

let translate t va =
  let v = get_pte t va in
  if Pte.is_present v then Some (Pte.frame_exn v, Addr.page_offset va) else None

let fold_leaves t ~f =
  (* Reconstruct virtual page numbers from the index path. *)
  let rec walk node ~level ~base =
    match node with
    | Leaf ptes ->
      Array.iteri
        (fun i v ->
          if Pte.is_present v then
            f ~vpn:((base * Addr.entries_per_table) + i) ~frame:(Pte.frame_exn v))
        ptes
    | Dir entries ->
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some child ->
            walk child ~level:(level - 1) ~base:((base * Addr.entries_per_table) + i))
        entries
  in
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some child -> walk child ~level:(walk_dir_levels - 1) ~base:i)
    t.root

let iter_mapped t ~f = fold_leaves t ~f

let mapped_pages t =
  let n = ref 0 in
  fold_leaves t ~f:(fun ~vpn:_ ~frame:_ -> incr n);
  !n

(* Same walk as [fold_leaves] but over the non-present half of the encoding:
   the svagc_check reclaim oracle uses this to account for every swap slot a
   table references. *)
let iter_swapped t ~f =
  let rec walk node ~base =
    match node with
    | Leaf ptes ->
      Array.iteri
        (fun i v ->
          if Pte.is_swapped v then
            f ~vpn:((base * Addr.entries_per_table) + i) ~slot:(Pte.swap_slot_exn v))
        ptes
    | Dir entries ->
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some child -> walk child ~base:((base * Addr.entries_per_table) + i))
        entries
  in
  Array.iteri
    (fun i slot ->
      match slot with None -> () | Some child -> walk child ~base:i)
    t.root

let swapped_pages t =
  let n = ref 0 in
  iter_swapped t ~f:(fun ~vpn:_ ~slot:_ -> incr n);
  !n
