(* A PTE leaf is the flat 512-entry array plus a presence bitset over it:
   bit i of [mapped_words.(i / 32)] is set iff [ptes.(i) <> Pte.none]
   (present OR swapped — "mapped" in the SwapVA precheck sense), and
   [mapped_count] is the maintained popcount.  The bitset lets the flat
   SwapVA engine precheck a whole slice in O(words) — one compare when
   the leaf is fully mapped — instead of loading every PTE.

   Invariant discipline: every none<->mapped transition goes through
   [set_pte] (heap map/unmap, reclaim swap-out/fault-in), which updates
   the bitset; the exchange paths (swap_pte_runs, the per-page walker
   slots, the overlap rotation) only ever write already-mapped values
   over already-mapped values, so they cannot invalidate it.  The
   svagc_check oracle re-derives the bitset from the PTE array
   (see [iter_leaf_records]) to enforce exactly that. *)

type leaf = {
  ptes : Pte.value array;
  mapped_words : int array;  (* Addr.entries_per_table / 32 words, 32 bits each *)
  mutable mapped_count : int;
}

type node =
  | Dir of node option array
  | Leaf of leaf

type t = { root : node option array }

let walk_dir_levels = 4

let word_bits = 32
let words_per_leaf = Addr.entries_per_table / word_bits
let full_word = 0xFFFFFFFF

let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let make_leaf () =
  {
    ptes = Array.make Addr.entries_per_table Pte.none;
    mapped_words = Array.make words_per_leaf 0;
    mapped_count = 0;
  }

let create () = { root = Array.make Addr.entries_per_table None }

let indices va =
  (Addr.pgd_index va, Addr.p4d_index va, Addr.pud_index va, Addr.pmd_index va)

let find_leaf_record t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let step slot =
    match slot with
    | Some (Dir entries) -> Some entries
    | Some (Leaf _) | None -> None
  in
  match step t.root.(i_pgd) with
  | None -> None
  | Some p4d -> (
    match step p4d.(i_p4d) with
    | None -> None
    | Some pud -> (
      match step pud.(i_pud) with
      | None -> None
      | Some pmd -> (
        match pmd.(i_pmd) with
        | Some (Leaf leaf) -> Some leaf
        | Some (Dir _) | None -> None)))

let find_leaf t va =
  match find_leaf_record t va with
  | Some leaf -> Some leaf.ptes
  | None -> None

let ensure_dir slot_get slot_set =
  match slot_get () with
  | Some (Dir entries) -> entries
  | Some (Leaf _) -> invalid_arg "Page_table: leaf found at directory level"
  | None ->
    let entries = Array.make Addr.entries_per_table None in
    slot_set (Dir entries);
    entries

let ensure_leaf_record t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let p4d =
    ensure_dir (fun () -> t.root.(i_pgd)) (fun n -> t.root.(i_pgd) <- Some n)
  in
  let pud =
    ensure_dir (fun () -> p4d.(i_p4d)) (fun n -> p4d.(i_p4d) <- Some n)
  in
  let pmd =
    ensure_dir (fun () -> pud.(i_pud)) (fun n -> pud.(i_pud) <- Some n)
  in
  match pmd.(i_pmd) with
  | Some (Leaf leaf) -> leaf
  | Some (Dir _) -> invalid_arg "Page_table: directory found at leaf level"
  | None ->
    let leaf = make_leaf () in
    pmd.(i_pmd) <- Some (Leaf leaf);
    leaf

let ensure_leaf t va = (ensure_leaf_record t va).ptes

let get_pte t va =
  match find_leaf_record t va with
  | None -> Pte.none
  | Some leaf -> leaf.ptes.(Addr.pte_index va)

let find_leaf_run t va ~max_pages =
  if max_pages <= 0 then invalid_arg "Page_table.find_leaf_run: empty run";
  match find_leaf_record t va with
  | None -> None
  | Some leaf ->
    let start = Addr.pte_index va in
    Some (leaf.ptes, start, min max_pages (Addr.entries_per_table - start))

let leaf_mapped_count leaf = leaf.mapped_count
let leaf_ptes leaf = leaf.ptes

(* First index in [lo, hi) whose PTE is none, or -1 when the whole window
   is mapped.  O(1) when the leaf is full; otherwise a masked word scan —
   at most 16 loads per leaf instead of up to 512 PTE loads. *)
let leaf_first_unmapped leaf ~lo ~hi =
  if lo < 0 || hi > Addr.entries_per_table || lo > hi then
    invalid_arg "Page_table.leaf_first_unmapped: bad window";
  if leaf.mapped_count = Addr.entries_per_table || lo = hi then -1
  else begin
    let words = leaf.mapped_words in
    let result = ref (-1) in
    let w = ref (lo / word_bits) in
    let last_w = (hi - 1) / word_bits in
    while !result < 0 && !w <= last_w do
      let base = !w * word_bits in
      (* Bits of this word that fall inside [lo, hi). *)
      let from_bit = if base < lo then lo - base else 0 in
      let upto_bit = if base + word_bits > hi then hi - base else word_bits in
      let mask =
        let hi_mask =
          if upto_bit = word_bits then full_word else (1 lsl upto_bit) - 1
        in
        hi_mask land lnot ((1 lsl from_bit) - 1)
      in
      let missing = lnot (Array.unsafe_get words !w) land mask in
      if missing <> 0 then begin
        (* Lowest set bit of [missing] = first unmapped index. *)
        let bit = ref 0 in
        while missing land (1 lsl !bit) = 0 do
          incr bit
        done;
        result := base + !bit
      end;
      incr w
    done;
    !result
  end

let swap_pte_runs leaf_a ~start_a leaf_b ~start_b ~len =
  if len < 0 then invalid_arg "Page_table.swap_pte_runs: negative length";
  if
    start_a < 0 || start_b < 0
    || start_a + len > Array.length leaf_a
    || start_b + len > Array.length leaf_b
  then invalid_arg "Page_table.swap_pte_runs: slice out of bounds";
  if leaf_a == leaf_b && abs (start_a - start_b) < len then
    invalid_arg "Page_table.swap_pte_runs: overlapping slices";
  (* Allocation-free elementwise exchange.  A blit-based version either
     allocates its temporary per call — a 512-entry array is over the
     minor-heap allocation limit, so it lands on the major heap and paces
     major-GC slices over whatever the simulated machine keeps live — or
     moves 3x the memory traffic through a scratch, which loses once the
     PTE working set outgrows the cache.  PTE values are immediates, so
     this loop is pure int traffic (bounds already checked above).
     Exchanging mapped-for-mapped values never changes mappedness, so the
     presence bitsets of the owning leaves stay valid untouched. *)
  for i = 0 to len - 1 do
    let a = Array.unsafe_get leaf_a (start_a + i) in
    Array.unsafe_set leaf_a (start_a + i) (Array.unsafe_get leaf_b (start_b + i));
    Array.unsafe_set leaf_b (start_b + i) a
  done

let pmd_slot t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let step slot =
    match slot with
    | Some (Dir entries) -> Some entries
    | Some (Leaf _) | None -> None
  in
  match step t.root.(i_pgd) with
  | None -> None
  | Some p4d -> (
    match step p4d.(i_p4d) with
    | None -> None
    | Some pud -> (
      match step pud.(i_pud) with
      | None -> None
      | Some pmd -> Some (pmd, i_pmd)))

let swap_pmd_entries t va_a va_b =
  let aligned va = Addr.pte_index va = 0 && Addr.page_offset va = 0 in
  if not (aligned va_a && aligned va_b) then
    invalid_arg "Page_table.swap_pmd_entries: addresses must be PMD-aligned";
  match (pmd_slot t va_a, pmd_slot t va_b) with
  | Some (pmd_a, i_a), Some (pmd_b, i_b) -> (
    match (pmd_a.(i_a), pmd_b.(i_b)) with
    | (Some (Leaf _) as a), (Some (Leaf _) as b) ->
      pmd_a.(i_a) <- b;
      pmd_b.(i_b) <- a
    | _ -> invalid_arg "Page_table.swap_pmd_entries: no leaf at PMD slot")
  | _ -> invalid_arg "Page_table.swap_pmd_entries: no leaf at PMD slot"

let set_pte t va v =
  let leaf = ensure_leaf_record t va in
  let idx = Addr.pte_index va in
  let old = leaf.ptes.(idx) in
  leaf.ptes.(idx) <- v;
  let was = old <> Pte.none and now = v <> Pte.none in
  if was <> now then begin
    let w = idx lsr 5 and bit = 1 lsl (idx land 31) in
    if now then begin
      leaf.mapped_words.(w) <- leaf.mapped_words.(w) lor bit;
      leaf.mapped_count <- leaf.mapped_count + 1
    end
    else begin
      leaf.mapped_words.(w) <- leaf.mapped_words.(w) land lnot bit;
      leaf.mapped_count <- leaf.mapped_count - 1
    end
  end

let translate t va =
  let v = get_pte t va in
  if Pte.is_present v then Some (Pte.frame_exn v, Addr.page_offset va) else None

(* --- flat run resolution (scratch-buffer API, no per-op allocation) --- *)

type run_buf = {
  mutable rb_leaves : leaf array;
  mutable rb_pack : int array;  (* (start lsl 10) lor len; start<512, len<=512 *)
  mutable rb_n : int;
}

(* Shared placeholder for unused slots; never written through. *)
let dummy_leaf = make_leaf ()

let run_buf_create () =
  { rb_leaves = Array.make 8 dummy_leaf; rb_pack = Array.make 8 0; rb_n = 0 }

let run_buf_length buf = buf.rb_n

let run_buf_clear buf = buf.rb_n <- 0

let run_buf_get buf i =
  if i < 0 || i >= buf.rb_n then invalid_arg "Page_table.run_buf_get";
  (buf.rb_leaves.(i), buf.rb_pack.(i) lsr 10, buf.rb_pack.(i) land 0x3FF)

(* Non-allocating accessors for the merge loop (no tuple per slice). *)
let run_buf_leaf buf i = buf.rb_leaves.(i)
let run_buf_start buf i = buf.rb_pack.(i) lsr 10
let run_buf_len buf i = buf.rb_pack.(i) land 0x3FF

let run_buf_push buf leaf ~start ~len =
  let n = buf.rb_n in
  if n = Array.length buf.rb_pack then begin
    let cap' = 2 * n in
    let leaves = Array.make cap' dummy_leaf in
    Array.blit buf.rb_leaves 0 leaves 0 n;
    buf.rb_leaves <- leaves;
    let pack = Array.make cap' 0 in
    Array.blit buf.rb_pack 0 pack 0 n;
    buf.rb_pack <- pack
  end;
  buf.rb_leaves.(n) <- leaf;
  buf.rb_pack.(n) <- (start lsl 10) lor len;
  buf.rb_n <- n + 1

(* Slice [pages] pages starting at [va] into per-leaf (start, len) runs —
   one directory descent per PMD leaf — into [buf] (reused across calls;
   int-packed descriptors, so a warm buffer makes this allocation-free).
   Returns -1 on success, or the index (in pages, from the start of the
   range) of the first page with no leaf.  Presence is NOT checked here:
   callers precheck via [leaf_first_unmapped] (bitset words) or per-page
   when a fault injector must be consulted in address order. *)
let resolve_leaf_slices t ~va ~pages ~buf =
  buf.rb_n <- 0;
  let cursor = ref va and remaining = ref pages in
  let failed = ref (-1) in
  while !failed < 0 && !remaining > 0 do
    match find_leaf_record t !cursor with
    | None -> failed := pages - !remaining
    | Some leaf ->
      let start = Addr.pte_index !cursor in
      let len = min !remaining (Addr.entries_per_table - start) in
      run_buf_push buf leaf ~start ~len;
      cursor := !cursor + (len * Addr.page_size);
      remaining := !remaining - len
  done;
  !failed

let fold_leaves t ~f =
  (* Reconstruct virtual page numbers from the index path. *)
  let rec walk node ~level ~base =
    match node with
    | Leaf leaf ->
      Array.iteri
        (fun i v ->
          if Pte.is_present v then
            f ~vpn:((base * Addr.entries_per_table) + i) ~frame:(Pte.frame_exn v))
        leaf.ptes
    | Dir entries ->
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some child ->
            walk child ~level:(level - 1) ~base:((base * Addr.entries_per_table) + i))
        entries
  in
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some child -> walk child ~level:(walk_dir_levels - 1) ~base:i)
    t.root

let iter_mapped t ~f = fold_leaves t ~f

let mapped_pages t =
  let n = ref 0 in
  fold_leaves t ~f:(fun ~vpn:_ ~frame:_ -> incr n);
  !n

(* Same walk as [fold_leaves] but over the non-present half of the encoding:
   the svagc_check reclaim oracle uses this to account for every swap slot a
   table references. *)
let iter_swapped t ~f =
  let rec walk node ~base =
    match node with
    | Leaf leaf ->
      Array.iteri
        (fun i v ->
          if Pte.is_swapped v then
            f ~vpn:((base * Addr.entries_per_table) + i) ~slot:(Pte.swap_slot_exn v))
        leaf.ptes
    | Dir entries ->
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some child -> walk child ~base:((base * Addr.entries_per_table) + i))
        entries
  in
  Array.iteri
    (fun i slot ->
      match slot with None -> () | Some child -> walk child ~base:i)
    t.root

let swapped_pages t =
  let n = ref 0 in
  iter_swapped t ~f:(fun ~vpn:_ ~slot:_ -> incr n);
  !n

let iter_leaf_records t ~f =
  let rec walk node =
    match node with
    | Leaf leaf -> f leaf
    | Dir entries ->
      Array.iter
        (fun slot -> match slot with None -> () | Some child -> walk child)
        entries
  in
  Array.iter
    (fun slot -> match slot with None -> () | Some child -> walk child)
    t.root

(* Oracle for the bitset invariant: recompute every leaf's presence words
   from its PTE array.  Returns the number of inconsistent leaves. *)
let bitset_violations t =
  let bad = ref 0 in
  iter_leaf_records t ~f:(fun leaf ->
      let count = ref 0 in
      let ok = ref true in
      for w = 0 to words_per_leaf - 1 do
        let expect = ref 0 in
        let base = w * word_bits in
        for b = 0 to word_bits - 1 do
          if leaf.ptes.(base + b) <> Pte.none then
            expect := !expect lor (1 lsl b)
        done;
        if leaf.mapped_words.(w) <> !expect then ok := false;
        count := !count + popcount32 !expect
      done;
      if leaf.mapped_count <> !count then ok := false;
      if not !ok then incr bad);
  !bad
