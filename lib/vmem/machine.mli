(** The simulated multi-core machine: physical frames, per-core TLBs, a
    shared last-level cache model, perf counters and the cost model.

    A machine hosts one or more processes ({!Address_space}s); the paper's
    multi-JVM experiments run several processes on one machine so they share
    copy bandwidth (see {!copy_streams}). *)

type core = {
  core_id : int;
  tlb : Tlb.t;
}

(** The machine's memory-pressure plane as a record of closures.  The
    reclaim state (swap device, LRU lists, watermarks) lives in
    [svagc_reclaim], which sits above this library, so — like the fault
    injector and the shadow-oracle hooks — the wiring is inverted: the
    kernel's fault handler builds these closures and installs them in
    {!t.reclaim}.  [None] (the default) means no memory limit and keeps
    unlimited runs bit-identical. *)
type reclaim_iface = {
  ri_page_mapped : pt:Page_table.t -> asid:int -> va:int -> unit;
      (** A page just became present at [va] (fresh mapping). *)
  ri_page_unmapped : asid:int -> va:int -> pte:Pte.value -> unit;
      (** The PTE at [va] (present or swapped — passed so a swapped page's
          slot can be released) is being destroyed. *)
  ri_page_touched : asid:int -> va:int -> unit;
      (** A present page was accessed (sets the LRU referenced bit). *)
  ri_fault_in : pt:Page_table.t -> asid:int -> va:int -> unit;
      (** Demand fault: the PTE at [va] is swapped; bring it back in
          (charging the major-fault and swap-in costs, possibly evicting
          other pages first).  Postcondition: the PTE is present.
          @raise Svagc_fault.Kernel_error.Fault on an exhausted
          swap-device error retry budget ([EIO_swap]). *)
  ri_adopt : pt:Page_table.t -> asid:int -> unit;
      (** (Re)synchronize LRU tracking with the page table — adopt
          pre-attach mappings, repair tracking after a compaction whose
          SwapVA requests mixed present and swapped entries. *)
  ri_slot_bytes : slot:int -> bytes option;
      (** Peek at a swap slot's payload without faulting anything in;
          [None] means a logically zero page. *)
  ri_slot_allocated : slot:int -> bool;
  ri_slots_in_use : unit -> int;
  ri_drain_ns : unit -> float;
      (** Return and clear the reclaim cost accumulated since the last
          drain (swap-device IO, fault handling, kswapd scans).  Callers
          fold it into whichever clock triggered the work. *)
  ri_cgroup_stats : unit -> (int * int * int * int) list;
      (** Per-tenant [(asid, resident_pages, soft_limit, hard_limit)] in
          ascending-asid order when a cgroup plane is installed on the
          reclaimer; [[]] otherwise.  Observer for the shadow oracle's
          cgroup conservation laws. *)
  ri_tier_stats : unit -> (int * int) option;
      (** [(near_slots_in_use, far_slots_in_use)] when the swap device is
          tiered; [None] for a flat single-latency device. *)
}

type t = {
  cost : Cost_model.t;
  ncores : int;
  cores : core array;
  phys : Phys_mem.t;
  perf : Perf.t;
  llc : Cache_sim.t;
  mutable copy_streams : int;
      (** Concurrent memory-intensive streams; divides the machine copy
          bandwidth ceiling (multi-JVM contention). *)
  mutable next_asid : int;
  mutable fault : Svagc_fault.Injector.t option;
      (** The machine's fault-injection plane; [None] (the default) and an
          injector with an all-zero-rate spec are observationally
          bit-identical.  Installed by the GC from [Config.fault_spec] /
          [Config.fault_seed]. *)
  mutable reclaim : reclaim_iface option;
      (** The memory-pressure plane; [None] (the default) means unlimited
          physical memory.  Installed by [Fault_handler.attach]. *)
  scratch : hot_scratch option array;
      (** Lazily-built hot-path scratch, one slot per execution stream
          (indexed by [Svagc_util.Domain_slot]); use {!hot_scratch}. *)
}

(** Machine-owned scratch for the flat SwapVA engine: reusable src/dst
    run buffers plus a direct-mapped memo for the bulk steady-state PTE
    charge.  The memo key is (exact accumulated-cost float, page count,
    cached flag) and the stored value is the exact float the reference
    loop produced for that key, so hits are bit-identical by
    construction — the memo only skips re-running a pure deterministic
    serial float chain. *)
and hot_scratch = {
  hs_src_runs : Page_table.run_buf;
  hs_dst_runs : Page_table.run_buf;
  hs_memo_acc : float array;
  hs_memo_enc : int array;  (** [(pages lsl 1) lor cached]; 0 = empty slot *)
  hs_memo_out : float array;
}

val memo_slots : int
(** Direct-mapped memo size (power of two). *)

val hot_scratch : t -> hot_scratch
(** The calling domain's scratch on this machine, created on first use.
    Keyed by [Svagc_util.Domain_slot.my_slot]: two pool workers touching
    the same machine get disjoint buffers and memos, so the flat SwapVA
    engine's scratch is race-free by ownership rather than by locking.
    Per-domain memos cannot perturb bit-identity — a memo only decides
    whether a pure float chain is re-run or replayed exactly. *)

val create : ?ncores:int -> ?phys_mib:int -> Cost_model.t -> t
(** [ncores] defaults to the preset's core count; [phys_mib] defaults to
    512 MiB of simulated frames (frames are lazily materialized). *)

val core : t -> int -> core

val fresh_asid : t -> int

val effective_copy_bw : t -> bytes_len:int -> float
(** Single-stream memmove bandwidth under the current contention level. *)

val ipi_delivery_penalty_ns : t -> from_core:int -> float
(** Ask the fault plane whether this IPI round loses a message.  On a
    firing [ipi] clause the initiator detects the missing ack and resends
    once: [perf.ipis_lost] and [perf.ipis_sent] are bumped, an
    ["ipi.lost"] instant is traced on the victim core, and the extra
    [ipi_ns +. ipi_ack_ns] round is returned.  [0.0] (and no counter
    movement) when no injector is installed or the clause does not fire.
    Lost IPIs never surface as errors — see [Kernel_error.EIPI_lost]. *)

val ipi_broadcast_cost : ?scale:float -> t -> from_core:int -> float
(** Cost charged to the initiating core for IPI-ing every other online core
    (counts the IPIs and the broadcast in perf, and includes any
    fault-injected {!ipi_delivery_penalty_ns} when there is at least one
    remote core).  [scale] (default 1.0) discounts the broadcast term only
    — the kernel's process-targeted shootdown acks at 60% of a full round
    trip — never the lost-IPI resend penalty.  This is the single costed
    IPI-broadcast helper; every shootdown flavor must route through it so
    counters cannot drift from costs. *)

val trace_ipis : t -> from_core:int -> unit
(** When tracing is on, record one "ipi" instant on every remote core's
    track.  Called by {!ipi_broadcast_cost}. *)

val flush_tlb_all_cores : t -> asid:int -> from_core:int -> float
(** The paper's [flush_tlb_all_cores(pid)]: invalidates the process's
    entries in every core's TLB and returns the initiator-side cost
    (local flush + one IPI per remote core).  Counts one
    [perf.tlb_flush_local] event per core flushed plus one
    [perf.tlb_flush_all] event, and fires {!shootdown_hook}. *)

val flush_tlb_local : t -> asid:int -> core:int -> float
(** Local-only flush of the process's entries on [core]. *)

(** {2 Shadow-oracle observation hooks}

    Installed by [svagc_check] while check mode is enabled; [None]
    otherwise.  The vmem layer cannot depend on the checker, so the wiring
    is inverted through these refs. *)

val created_hook : (t -> unit) option ref
(** Fired at the end of {!create} with the new machine. *)

val shootdown_hook : (t -> asid:int -> unit) option ref
(** Fired after a completed shootdown (every core's TLB already
    invalidated for [asid]) by {!flush_tlb_all_cores} and by the kernel's
    [Shootdown.flush_after_swap]. *)

val notify_shootdown : t -> asid:int -> unit
(** Invoke {!shootdown_hook} if installed (kernel-side entry point). *)
