(** Page-table entries, encoded as single immutable words like hardware PTEs.

    A leaf table is an [int array]; swapping two PTEs is swapping two array
    slots, which is exactly the operation the SwapVA system call performs.
    The encoding has three states, mirroring a real PTE's present bit and
    swap-entry format:

    - [0]: never mapped ([none])
    - [frame + 1] (positive): present, resident in [frame]
    - [-(slot + 1)] (negative): mapped but non-present; the page's contents
      live in swap slot [slot] (see svagc_reclaim)

    Because a swap entry is still non-zero, range checks that ask "is this
    page mapped at all?" ([is_mapped], SwapVA's vma precheck) accept it, and
    exchanging two PTE words exchanges swap slots just as cheaply as frames
    — the paper's PTE-swap advantage extended below the residency line. *)

type value = int

val none : value

val make : frame:int -> value

val make_swapped : slot:int -> value

val is_present : value -> bool
(** Resident: translates to a frame. *)

val is_swapped : value -> bool
(** Mapped but paged out to a swap slot. *)

val is_mapped : value -> bool
(** Present or swapped — anything but [none]. *)

val frame_exn : value -> int
(** @raise Invalid_argument on a non-present entry. *)

val swap_slot_exn : value -> int
(** @raise Invalid_argument on a non-swapped entry. *)

val pp : Format.formatter -> value -> unit
