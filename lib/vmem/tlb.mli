(** Per-core translation lookaside buffer: set-associative, LRU, tagged by
    address-space id so flushes can target one process (the paper's
    process-scoped shootdown) or a single page. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable flushes_full : int;
  mutable flushes_asid : int;
  mutable flushes_page : int;
}

val create : ?entries:int -> ?ways:int -> unit -> t
(** Defaults: 64 entries, 4-way (a typical L1 DTLB). *)

val lookup : t -> asid:int -> vpn:int -> int option
(** [Some frame] on a hit; updates recency and hit/miss counters. *)

val insert : t -> asid:int -> vpn:int -> frame:int -> unit
(** Fill after a page walk, evicting the set's LRU way if needed. *)

val flush_all : t -> unit

val flush_asid : t -> asid:int -> unit

val flush_page : t -> asid:int -> vpn:int -> unit

val iter_valid : t -> (asid:int -> vpn:int -> frame:int -> unit) -> unit
(** Walk every valid entry without touching recency, hit/miss stats or the
    entry order — the read path of the svagc_check TLB coherence oracle. *)

val stats : t -> stats

val reset_stats : t -> unit

val entries : t -> int

val occupied : t -> int
