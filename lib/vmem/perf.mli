(** Machine-wide event counters (the simulator's `perf`).

    Counters are plain mutable ints; experiments snapshot/reset around the
    region of interest. *)

type t = {
  mutable syscalls : int;
  mutable swapva_calls : int;
  mutable memmove_calls : int;
  mutable ptes_swapped : int;
  mutable pt_walks : int;  (** full 4-level getPTE walks *)
  mutable pmd_cache_hits : int;
  mutable leaf_runs : int;
      (** (leaf, start, len) slices processed by the run-coalesced SwapVA
          engine: one per PMD-leaf crossing per stream, the unit the batched
          fast path walks at *)
  mutable runs_coalesced : int;
      (** compaction move entries merged into a preceding contiguous
          SwapVA request (request-level aggregation) *)
  mutable pmd_leaf_swaps : int;
      (** whole 512-page leaf pairs exchanged at the PMD level by the
          opt-in [pmd_leaf_swap] mode *)
  mutable bytes_copied : int;  (** physically moved by memmove *)
  mutable bytes_remapped : int;  (** logically moved by SwapVA *)
  mutable tlb_flush_local : int;
  mutable tlb_flush_page : int;
  mutable tlb_flush_all : int;
      (** machine-wide [flush_tlb_all_cores] shootdowns; each one also
          counts [ncores] events in [tlb_flush_local] (one per core
          actually flushed) *)
  mutable ipis_sent : int;
  mutable ipis_lost : int;
      (** shootdown IPIs dropped by the fault-injection plane; each lost
          IPI is detected via its missing ack and resent (also counted in
          [ipis_sent]) *)
  mutable shootdown_broadcasts : int;
  mutable pins : int;
  mutable gc_cycles : int;
  mutable swap_retries : int;
      (** SwapVA requests re-issued after a transient [EAGAIN] fault *)
  mutable swap_fallbacks : int;
      (** SwapVA requests the GC abandoned and completed via memmove after
          a degradable kernel error (see [Kernel_error.is_degradable]) *)
  mutable alloc_waste_bytes : int;  (** page-alignment fragmentation *)
  mutable alloc_bytes : int;
  mutable pages_swapped_out : int;
      (** pages evicted to the swap device by kswapd-style reclaim *)
  mutable pages_swapped_in : int;
      (** pages read back on a demand fault; always [<= pages_swapped_out] *)
  mutable major_faults : int;
      (** demand faults that hit a swapped PTE and had to touch the swap
          device (counted on fault entry, before the device IO) *)
  mutable reclaim_scans : int;
      (** LRU pages examined by kswapd (active-list aging + inactive-list
          eviction candidates) *)
  mutable kswapd_wakes : int;
      (** watermark-triggered reclaim activations *)
  mutable swap_io_errors : int;
      (** injected swap-device EIOs observed (one per failed device
          attempt, both directions); see the [swap] fault site *)
  mutable tier_demotions : int;
      (** cold swap slots moved from the near tier to the far tier by a
          tiered device's placement policy; at most one per slot lifetime *)
  mutable tier_promotions : int;
      (** demand faults served from the far tier (the slot's payload came
          back over the slow path); always [<= pages_swapped_in] *)
  mutable admission_rejects : int;
      (** tenants refused outright by fleet admission control (neither
          admitted nor queued) *)
  mutable sched_scheduled : int;
      (** events inserted into an event calendar ({!Svagc_sched.Calendar}) *)
  mutable sched_dispatched : int;
      (** calendar events actually delivered to their process; always
          [<= sched_scheduled - sched_cancelled] *)
  mutable sched_cancelled : int;
      (** calendar events removed before firing (lazy deletion) *)
}

val create : unit -> t

val reset : t -> unit

val copy : t -> t
(** Snapshot. *)

val diff : after:t -> before:t -> t
(** Per-field subtraction. *)

val add : into:t -> t -> unit
(** [add ~into delta] accumulates every counter of [delta] into [into] —
    the canonical-order merge of per-shard (domain-local) counter deltas
    back into a machine's counters.  Integer addition commutes, so the
    merged vector is independent of both the shard partition and the
    domain count; [Svagc_check.Differential.par_identity] holds the
    sharded paths to exactly that. *)

val to_assoc : t -> (string * int) list
(** Every counter as [(name, value)], in declaration order.  This is the
    counter source the trace recorder snapshots around spans. *)

val pp : Format.formatter -> t -> unit
