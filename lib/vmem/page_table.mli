(** Four-level radix page table (PGD -> P4D -> PUD -> PMD -> PTE leaf).

    The structure mirrors Algorithm 1's walk: each [getPTE] descends four
    directory levels to reach the leaf array of PTE words.  The leaf array
    is exposed on purpose — the paper's PMD-caching optimization consists of
    holding on to that array across consecutive pages, and SwapVA swaps
    slots inside it. *)

type t

val create : unit -> t

val find_leaf : t -> int -> Pte.value array option
(** [find_leaf t va] is the PTE leaf table covering [va], if the directory
    path exists.  Performs no allocation. *)

val ensure_leaf : t -> int -> Pte.value array
(** Like {!find_leaf} but materializes the directory path on demand. *)

val get_pte : t -> int -> Pte.value
(** [Pte.none] when unmapped. *)

val find_leaf_run : t -> int -> max_pages:int -> (Pte.value array * int * int) option
(** [find_leaf_run t va ~max_pages] resolves [va] with ONE directory walk
    into a [(leaf, start, len)] slice: the PTE leaf covering [va], the index
    of [va] inside it, and how many consecutive pages (at most [max_pages])
    the slice covers before the next PMD boundary.  [None] when no leaf
    exists.  This is the unit the run-coalesced SwapVA fast path operates
    on: one walk per up-to-512-page run instead of one per page. *)

val swap_pte_runs :
  Pte.value array -> start_a:int -> Pte.value array -> start_b:int -> len:int ->
  unit
(** Exchange two equal-length PTE slices element-wise (no allocation).
    The slices may live in the same leaf but must not overlap.
    @raise Invalid_argument on out-of-bounds or overlapping slices. *)

val swap_pmd_entries : t -> int -> int -> unit
(** Exchange the PMD-level directory entries (whole 512-PTE leaf tables) of
    two PMD-aligned addresses: the O(1) leaf-swap fast path.  Both slots
    must hold leaf tables.
    @raise Invalid_argument when unaligned or either slot has no leaf. *)

val set_pte : t -> int -> Pte.value -> unit
(** Creates the directory path if needed. *)

val translate : t -> int -> (int * int) option
(** [translate t va] is [Some (frame, offset)] when mapped.  A swapped
    entry does NOT translate — resolving it is the demand-paging fault
    handler's job (svagc_reclaim). *)

val mapped_pages : t -> int
(** Number of present PTEs (O(mapped), for tests and teardown). *)

val iter_mapped : t -> f:(vpn:int -> frame:int -> unit) -> unit

val iter_swapped : t -> f:(vpn:int -> slot:int -> unit) -> unit
(** Walk every swapped (non-present, slot-carrying) PTE — the read path of
    the svagc_check reclaim conservation oracle. *)

val swapped_pages : t -> int
(** Number of swapped PTEs (O(mapped)). *)

val walk_dir_levels : int
(** Directory levels traversed per [getPTE]: 4 (pgd, p4d, pud, pmd). *)
