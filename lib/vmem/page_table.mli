(** Four-level radix page table (PGD -> P4D -> PUD -> PMD -> PTE leaf).

    The structure mirrors Algorithm 1's walk: each [getPTE] descends four
    directory levels to reach the leaf array of PTE words.  The leaf array
    is exposed on purpose — the paper's PMD-caching optimization consists of
    holding on to that array across consecutive pages, and SwapVA swaps
    slots inside it. *)

type t

type leaf
(** A PTE leaf: the flat 512-entry array plus a presence bitset (16 x
    32-bit words; bit set iff the PTE is mapped — present or swapped)
    and its maintained popcount.  Every none<->mapped transition goes
    through {!set_pte}, which keeps the bitset exact; PTE exchanges
    (mapped-for-mapped) never change it.  {!bitset_violations} is the
    oracle for that invariant. *)

val create : unit -> t

val find_leaf : t -> int -> Pte.value array option
(** [find_leaf t va] is the PTE leaf table covering [va], if the directory
    path exists.  Performs no allocation. *)

val find_leaf_record : t -> int -> leaf option
(** Like {!find_leaf} but returning the leaf with its presence bitset. *)

val leaf_ptes : leaf -> Pte.value array

val leaf_mapped_count : leaf -> int
(** Maintained popcount of the leaf's presence bitset. *)

val leaf_first_unmapped : leaf -> lo:int -> hi:int -> int
(** First index in [\[lo, hi)] whose PTE is [Pte.none], or -1 when the
    whole window is mapped.  O(1) when the leaf is fully mapped
    (popcount precheck), otherwise a masked scan of the bitset words —
    at most 16 word loads instead of up to 512 PTE loads. *)

val ensure_leaf : t -> int -> Pte.value array
(** Like {!find_leaf} but materializes the directory path on demand. *)

val get_pte : t -> int -> Pte.value
(** [Pte.none] when unmapped. *)

val find_leaf_run : t -> int -> max_pages:int -> (Pte.value array * int * int) option
(** [find_leaf_run t va ~max_pages] resolves [va] with ONE directory walk
    into a [(leaf, start, len)] slice: the PTE leaf covering [va], the index
    of [va] inside it, and how many consecutive pages (at most [max_pages])
    the slice covers before the next PMD boundary.  [None] when no leaf
    exists.  This is the unit the run-coalesced SwapVA fast path operates
    on: one walk per up-to-512-page run instead of one per page. *)

val swap_pte_runs :
  Pte.value array -> start_a:int -> Pte.value array -> start_b:int -> len:int ->
  unit
(** Exchange two equal-length PTE slices element-wise (no allocation).
    The slices may live in the same leaf but must not overlap.
    @raise Invalid_argument on out-of-bounds or overlapping slices. *)

val swap_pmd_entries : t -> int -> int -> unit
(** Exchange the PMD-level directory entries (whole 512-PTE leaf tables) of
    two PMD-aligned addresses: the O(1) leaf-swap fast path.  Both slots
    must hold leaf tables.
    @raise Invalid_argument when unaligned or either slot has no leaf. *)

val set_pte : t -> int -> Pte.value -> unit
(** Creates the directory path if needed. *)

val translate : t -> int -> (int * int) option
(** [translate t va] is [Some (frame, offset)] when mapped.  A swapped
    entry does NOT translate — resolving it is the demand-paging fault
    handler's job (svagc_reclaim). *)

val mapped_pages : t -> int
(** Number of present PTEs (O(mapped), for tests and teardown). *)

val iter_mapped : t -> f:(vpn:int -> frame:int -> unit) -> unit

val iter_swapped : t -> f:(vpn:int -> slot:int -> unit) -> unit
(** Walk every swapped (non-present, slot-carrying) PTE — the read path of
    the svagc_check reclaim conservation oracle. *)

val swapped_pages : t -> int
(** Number of swapped PTEs (O(mapped)). *)

val walk_dir_levels : int
(** Directory levels traversed per [getPTE]: 4 (pgd, p4d, pud, pmd). *)

(** {2 Flat run resolution (allocation-free scratch API)}

    The flat SwapVA engine resolves a request into per-leaf slices held
    in a reusable {!run_buf}: leaf pointers in one array, (start, len)
    int-packed in another — no tuple/record/list allocation per op once
    the buffer is warm. *)

type run_buf

val run_buf_create : unit -> run_buf

val run_buf_length : run_buf -> int

val run_buf_clear : run_buf -> unit
(** Forget all slices (capacity is kept). *)

val run_buf_get : run_buf -> int -> leaf * int * int
(** [(leaf, start, len)] of slice [i] (unpacked; for tests/consumers
    outside the hot loop).  @raise Invalid_argument if out of bounds. *)

val run_buf_leaf : run_buf -> int -> leaf

val run_buf_start : run_buf -> int -> int

val run_buf_len : run_buf -> int -> int
(** Unchecked per-field slice accessors for the merge loop — reading a
    slice allocates nothing (start/len live int-packed in one word). *)

val run_buf_push : run_buf -> leaf -> start:int -> len:int -> unit
(** Append a slice (amortized allocation-free on a warm buffer).  Used
    by resolvers that must interleave slicing with per-page work (the
    fault-injected SwapVA path). *)

val resolve_leaf_slices : t -> va:int -> pages:int -> buf:run_buf -> int
(** Slice [pages] pages from [va] into per-leaf (start, len) runs — one
    directory descent per PMD leaf — overwriting [buf].  Returns -1 on
    success or the index (in pages from [va]) of the first page whose
    leaf is missing.  Presence is NOT checked: callers precheck with
    {!leaf_first_unmapped}, or per page when a fault injector must be
    consulted in address order. *)

val iter_leaf_records : t -> f:(leaf -> unit) -> unit
(** Every materialized leaf, in table order (oracle walks). *)

val bitset_violations : t -> int
(** Recompute every leaf's presence bitset from its PTE array and count
    the leaves whose stored bitset or popcount disagree — 0 under the
    documented invariant (the svagc_check law). *)
