type t = {
  name : string;
  cpu_ghz : float;
  ncores : int;
  dram_gib : int;
  mem_access_ns : float;
  pt_entry_ns : float;
  lock_pair_ns : float;
  pmd_swap_ns : float;
  syscall_ns : float;
  swap_setup_ns : float;
  tlb_flush_local_ns : float;
  tlb_flush_page_ns : float;
  ipi_ns : float;
  ipi_ack_ns : float;
  tlb_refill_ns : float;
  pin_ns : float;
  l2_copy_bytes : int;
  cache_copy_bw : float;
  dram_copy_bw : float;
  machine_copy_bw : float;
  mark_obj_ns : float;
  forward_obj_ns : float;
  adjust_obj_ns : float;
  ref_scan_ns : float;
  barrier_ns : float;
  steal_ns : float;
  retry_backoff_ns : float;
  swap_out_ns : float;
  swap_in_ns : float;
  major_fault_ns : float;
}

let i5_7600 =
  {
    name = "i5-7600";
    cpu_ghz = 3.5;
    ncores = 4;
    dram_gib = 24;
    mem_access_ns = 85.0;
    pt_entry_ns = 1.6;
    lock_pair_ns = 1.2;
    pmd_swap_ns = 14.0;
    syscall_ns = 380.0;
    swap_setup_ns = 110.0;
    tlb_flush_local_ns = 140.0;
    tlb_flush_page_ns = 20.0;
    ipi_ns = 1600.0;
    ipi_ack_ns = 120.0;
    tlb_refill_ns = 110.0;
    pin_ns = 900.0;
    l2_copy_bytes = 256 * 1024;
    cache_copy_bw = 38.0;
    dram_copy_bw = 11.0;
    machine_copy_bw = 26.0;
    mark_obj_ns = 550.0;
    forward_obj_ns = 300.0;
    adjust_obj_ns = 450.0;
    ref_scan_ns = 6.0;
    barrier_ns = 1200.0;
    steal_ns = 90.0;
    retry_backoff_ns = 500.0;
    (* Consumer NVMe swap: ~2 GB/s effective per-4KiB-page transfer plus
       device/queueing latency. *)
    swap_out_ns = 9000.0;
    swap_in_ns = 12000.0;
    major_fault_ns = 1800.0;
  }

let xeon_6130 =
  {
    name = "xeon-6130";
    cpu_ghz = 2.1;
    ncores = 32;
    dram_gib = 192;
    mem_access_ns = 95.0;
    pt_entry_ns = 1.5;
    lock_pair_ns = 1.5;
    pmd_swap_ns = 15.0;
    syscall_ns = 480.0;
    swap_setup_ns = 120.0;
    tlb_flush_local_ns = 160.0;
    tlb_flush_page_ns = 25.0;
    ipi_ns = 2400.0;
    ipi_ack_ns = 150.0;
    tlb_refill_ns = 130.0;
    pin_ns = 1100.0;
    l2_copy_bytes = 256 * 1024;
    cache_copy_bw = 30.0;
    dram_copy_bw = 9.0;
    machine_copy_bw = 64.0;
    mark_obj_ns = 480.0;
    forward_obj_ns = 260.0;
    adjust_obj_ns = 380.0;
    ref_scan_ns = 8.0;
    barrier_ns = 2000.0;
    steal_ns = 120.0;
    retry_backoff_ns = 600.0;
    (* Datacenter NVMe: higher queue depth hides some latency, faster
       link. *)
    swap_out_ns = 7000.0;
    swap_in_ns = 9500.0;
    major_fault_ns = 2100.0;
  }

let xeon_6240 =
  {
    xeon_6130 with
    name = "xeon-6240";
    cpu_ghz = 2.6;
    ncores = 36;
    pt_entry_ns = 1.8;
    lock_pair_ns = 1.4;
    pmd_swap_ns = 16.0;
    syscall_ns = 430.0;
    swap_setup_ns = 100.0;
    cache_copy_bw = 34.0;
    dram_copy_bw = 10.5;
    machine_copy_bw = 100.0;
    mark_obj_ns = 430.0;
    forward_obj_ns = 230.0;
    adjust_obj_ns = 340.0;
    ref_scan_ns = 6.5;
  }

let presets = [ i5_7600; xeon_6130; xeon_6240 ]

let memmove_bw t ~bytes_len =
  if bytes_len <= t.l2_copy_bytes then t.cache_copy_bw
  else begin
    (* Blend: the first [l2_copy_bytes] still stream from cache. *)
    let cached = float_of_int t.l2_copy_bytes in
    let total = float_of_int bytes_len in
    let time = (cached /. t.cache_copy_bw) +. ((total -. cached) /. t.dram_copy_bw) in
    total /. time
  end

let contended_bw t ~streams ~bw =
  let streams = max 1 streams in
  Float.min bw (t.machine_copy_bw /. float_of_int streams)

let walk_cost_ns t = 5.0 *. t.pt_entry_ns

let pp ppf t =
  Format.fprintf ppf "%s (%.1f GHz, %d cores, %d GiB)" t.name t.cpu_ghz t.ncores
    t.dram_gib
