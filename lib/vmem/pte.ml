type value = int

let none = 0

let make ~frame =
  if frame < 0 then invalid_arg "Pte.make: negative frame";
  frame + 1

(* Swap entries occupy the negative half of the word: a real PTE clears the
   present bit and reuses the rest for the swap offset; an int gives us the
   sign bit for free.  [none] (0) stays the unique "never mapped" value, so
   every existing [<> none] mapped-check keeps working unchanged. *)
let make_swapped ~slot =
  if slot < 0 then invalid_arg "Pte.make_swapped: negative slot";
  -(slot + 1)

let is_present v = v > 0

let is_swapped v = v < 0

let is_mapped v = v <> none

let frame_exn v =
  if v <= 0 then invalid_arg "Pte.frame_exn: entry not present";
  v - 1

let swap_slot_exn v =
  if v >= 0 then invalid_arg "Pte.swap_slot_exn: entry not swapped";
  -v - 1

let pp ppf v =
  if is_present v then Format.fprintf ppf "pte(frame=%d)" (frame_exn v)
  else if is_swapped v then Format.fprintf ppf "pte(swap=%d)" (swap_slot_exn v)
  else Format.pp_print_string ppf "pte(none)"
