type t = {
  machine : Machine.t;
  asid : int;
  pt : Page_table.t;
}

(* See [Machine.created_hook]: lets svagc_check learn about every address
   space (asid -> live page table) without a dependency cycle. *)
let created_hook : (t -> unit) option ref = ref None

let create machine =
  let t =
    { machine; asid = Machine.fresh_asid machine; pt = Page_table.create () }
  in
  (match !created_hook with None -> () | Some f -> f t);
  t

let machine t = t.machine

let asid t = t.asid

let page_table t = t.pt

let map_range t ~va ~pages =
  if not (Addr.is_page_aligned va) then
    invalid_arg "Address_space.map_range: va not page-aligned";
  for i = 0 to pages - 1 do
    let page_va = va + (i * Addr.page_size) in
    if Pte.is_present (Page_table.get_pte t.pt page_va) then
      invalid_arg "Address_space.map_range: page already mapped";
    let frame = Phys_mem.alloc_frame t.machine.Machine.phys in
    Page_table.set_pte t.pt page_va (Pte.make ~frame)
  done

let unmap_range t ~va ~pages =
  for i = 0 to pages - 1 do
    let page_va = Addr.align_down va + (i * Addr.page_size) in
    let pte = Page_table.get_pte t.pt page_va in
    if Pte.is_present pte then begin
      Phys_mem.free_frame t.machine.Machine.phys (Pte.frame_exn pte);
      Page_table.set_pte t.pt page_va Pte.none
    end
  done

let is_mapped t ~va = Pte.is_present (Page_table.get_pte t.pt va)

let translate t ~va = Page_table.translate t.pt va

let frame_of_exn t va =
  match translate t ~va with
  | Some (frame, off) -> (frame, off)
  | None ->
    invalid_arg (Format.asprintf "Address_space: unmapped address %a" Addr.pp va)

(* Apply [f frame off len] to each page-bounded chunk of [va, va+len). *)
let iter_chunks t ~va ~len f =
  let pos = ref va in
  let remaining = ref len in
  let consumed = ref 0 in
  while !remaining > 0 do
    let frame, off = frame_of_exn t !pos in
    let chunk = min !remaining (Addr.page_size - off) in
    f ~frame ~off ~chunk ~at:!consumed;
    pos := !pos + chunk;
    consumed := !consumed + chunk;
    remaining := !remaining - chunk
  done

let read_bytes t ~va ~len =
  let out = Bytes.create len in
  iter_chunks t ~va ~len (fun ~frame ~off ~chunk ~at ->
      let src = Phys_mem.frame_bytes t.machine.Machine.phys frame in
      Bytes.blit src off out at chunk);
  out

let write_bytes t ~va ~src =
  let len = Bytes.length src in
  iter_chunks t ~va ~len (fun ~frame ~off ~chunk ~at ->
      Phys_mem.write t.machine.Machine.phys ~frame ~off ~src ~src_off:at ~len:chunk)

let read_u8 t ~va =
  let frame, off = frame_of_exn t va in
  Char.code (Bytes.get (Phys_mem.frame_bytes t.machine.Machine.phys frame) off)

let write_u8 t ~va v =
  let frame, off = frame_of_exn t va in
  Bytes.set (Phys_mem.frame_bytes t.machine.Machine.phys frame) off
    (Char.chr (v land 0xff))

let read_i64 t ~va =
  let b = read_bytes t ~va ~len:8 in
  Bytes.get_int64_le b 0

let write_i64 t ~va v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write_bytes t ~va ~src:b

let fill t ~va ~len c =
  iter_chunks t ~va ~len (fun ~frame ~off ~chunk ~at:_ ->
      Bytes.fill (Phys_mem.frame_bytes t.machine.Machine.phys frame) off chunk c)

let checksum t ~va ~len =
  let h = ref 0xcbf29ce484222325L in
  iter_chunks t ~va ~len (fun ~frame ~off ~chunk ~at:_ ->
      let b = Phys_mem.frame_bytes t.machine.Machine.phys frame in
      for i = off to off + chunk - 1 do
        h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
        h := Int64.mul !h 0x100000001b3L
      done);
  !h

let touch t ~core ~va =
  let c = Machine.core t.machine core in
  let vpn = Addr.page_number va in
  let frame =
    match Tlb.lookup c.Machine.tlb ~asid:t.asid ~vpn with
    | Some frame -> frame
    | None -> (
      match translate t ~va with
      | Some (frame, _) ->
        Tlb.insert c.Machine.tlb ~asid:t.asid ~vpn ~frame;
        frame
      | None ->
        invalid_arg
          (Format.asprintf "Address_space.touch: unmapped address %a" Addr.pp va))
  in
  let pa = (frame * Addr.page_size) + Addr.page_offset va in
  Cache_sim.access t.machine.Machine.llc ~addr:pa

let touch_range t ~core ~va ~len =
  if len > 0 then begin
    let line = Cache_sim.line_bytes t.machine.Machine.llc in
    let pos = ref (va - (va mod line)) in
    while !pos < va + len do
      touch t ~core ~va:!pos;
      pos := !pos + line
    done
  end

let mapped_pages t = Page_table.mapped_pages t.pt
