type t = {
  machine : Machine.t;
  asid : int;
  pt : Page_table.t;
}

(* See [Machine.created_hook]: lets svagc_check learn about every address
   space (asid -> live page table) without a dependency cycle. *)
let created_hook : (t -> unit) option ref = ref None

let create machine =
  let t =
    { machine; asid = Machine.fresh_asid machine; pt = Page_table.create () }
  in
  (match !created_hook with None -> () | Some f -> f t);
  t

let machine t = t.machine

let asid t = t.asid

let page_table t = t.pt

let map_range t ~va ~pages =
  if not (Addr.is_page_aligned va) then
    invalid_arg "Address_space.map_range: va not page-aligned";
  for i = 0 to pages - 1 do
    let page_va = va + (i * Addr.page_size) in
    if Pte.is_mapped (Page_table.get_pte t.pt page_va) then
      invalid_arg "Address_space.map_range: page already mapped";
    let frame = Phys_mem.alloc_frame t.machine.Machine.phys in
    Page_table.set_pte t.pt page_va (Pte.make ~frame);
    match t.machine.Machine.reclaim with
    | None -> ()
    | Some r -> r.Machine.ri_page_mapped ~pt:t.pt ~asid:t.asid ~va:page_va
  done

let unmap_range t ~va ~pages =
  for i = 0 to pages - 1 do
    let page_va = Addr.align_down va + (i * Addr.page_size) in
    let pte = Page_table.get_pte t.pt page_va in
    if Pte.is_mapped pte then begin
      (* Tell the pressure plane first (it drops the page from its LRU
         lists, or frees a swapped page's slot), then release the frame. *)
      (match t.machine.Machine.reclaim with
      | None -> ()
      | Some r -> r.Machine.ri_page_unmapped ~asid:t.asid ~va:page_va ~pte);
      if Pte.is_present pte then
        Phys_mem.free_frame t.machine.Machine.phys (Pte.frame_exn pte);
      Page_table.set_pte t.pt page_va Pte.none
    end
  done

let is_mapped t ~va = Pte.is_mapped (Page_table.get_pte t.pt va)

let translate t ~va = Page_table.translate t.pt va

(* Demand paging lives here: any access that needs the backing frame of a
   swapped-out page routes through the pressure plane's fault handler,
   which swaps the page back in (possibly evicting others) and leaves the
   PTE present — so the recursive retry terminates after one fault. *)
let rec frame_of_exn t va =
  let pte = Page_table.get_pte t.pt va in
  if Pte.is_present pte then begin
    (match t.machine.Machine.reclaim with
    | None -> ()
    | Some r -> r.Machine.ri_page_touched ~asid:t.asid ~va);
    (Pte.frame_exn pte, Addr.page_offset va)
  end
  else if Pte.is_swapped pte then begin
    match t.machine.Machine.reclaim with
    | Some r ->
      r.Machine.ri_fault_in ~pt:t.pt ~asid:t.asid ~va;
      frame_of_exn t va
    | None ->
      invalid_arg
        (Format.asprintf
           "Address_space: swapped address %a with no reclaim plane" Addr.pp va)
  end
  else
    invalid_arg (Format.asprintf "Address_space: unmapped address %a" Addr.pp va)

(* Apply [f frame off len] to each page-bounded chunk of [va, va+len). *)
let iter_chunks t ~va ~len f =
  let pos = ref va in
  let remaining = ref len in
  let consumed = ref 0 in
  while !remaining > 0 do
    let frame, off = frame_of_exn t !pos in
    let chunk = min !remaining (Addr.page_size - off) in
    f ~frame ~off ~chunk ~at:!consumed;
    pos := !pos + chunk;
    consumed := !consumed + chunk;
    remaining := !remaining - chunk
  done

let read_bytes t ~va ~len =
  let out = Bytes.create len in
  iter_chunks t ~va ~len (fun ~frame ~off ~chunk ~at ->
      let src = Phys_mem.frame_bytes t.machine.Machine.phys frame in
      Bytes.blit src off out at chunk);
  out

let write_bytes t ~va ~src =
  let len = Bytes.length src in
  iter_chunks t ~va ~len (fun ~frame ~off ~chunk ~at ->
      Phys_mem.write t.machine.Machine.phys ~frame ~off ~src ~src_off:at ~len:chunk)

let read_u8 t ~va =
  let frame, off = frame_of_exn t va in
  Char.code (Bytes.get (Phys_mem.frame_bytes t.machine.Machine.phys frame) off)

let write_u8 t ~va v =
  let frame, off = frame_of_exn t va in
  Bytes.set (Phys_mem.frame_bytes t.machine.Machine.phys frame) off
    (Char.chr (v land 0xff))

let read_i64 t ~va =
  let b = read_bytes t ~va ~len:8 in
  Bytes.get_int64_le b 0

let write_i64 t ~va v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write_bytes t ~va ~src:b

let fill t ~va ~len c =
  iter_chunks t ~va ~len (fun ~frame ~off ~chunk ~at:_ ->
      Bytes.fill (Phys_mem.frame_bytes t.machine.Machine.phys frame) off chunk c)

(* Non-faulting page-chunk iteration: [f] receives the page's payload as
   [Some bytes] (read at [off]) or [None] for a logically-zero page.  Used
   by the oracles (checksum, audit) so that *observing* the heap never
   swaps pages in, materializes zero frames, or perturbs LRU state. *)
let iter_chunks_peek t ~va ~len f =
  let pos = ref va in
  let remaining = ref len in
  let consumed = ref 0 in
  while !remaining > 0 do
    let off = Addr.page_offset !pos in
    let chunk = min !remaining (Addr.page_size - off) in
    let pte = Page_table.get_pte t.pt !pos in
    let payload =
      if Pte.is_present pte then
        Phys_mem.frame_contents t.machine.Machine.phys (Pte.frame_exn pte)
      else if Pte.is_swapped pte then begin
        match t.machine.Machine.reclaim with
        | Some r -> r.Machine.ri_slot_bytes ~slot:(Pte.swap_slot_exn pte)
        | None ->
          invalid_arg
            (Format.asprintf
               "Address_space: swapped address %a with no reclaim plane"
               Addr.pp !pos)
      end
      else
        invalid_arg
          (Format.asprintf "Address_space: unmapped address %a" Addr.pp !pos)
    in
    f ~payload ~off ~chunk ~at:!consumed;
    pos := !pos + chunk;
    consumed := !consumed + chunk;
    remaining := !remaining - chunk
  done

let peek_bytes t ~va ~len =
  let out = Bytes.create len in
  iter_chunks_peek t ~va ~len (fun ~payload ~off ~chunk ~at ->
      match payload with
      | Some b -> Bytes.blit b off out at chunk
      | None -> Bytes.fill out at chunk '\000');
  out

let peek_i64 t ~va =
  let b = peek_bytes t ~va ~len:8 in
  Bytes.get_int64_le b 0

let checksum t ~va ~len =
  let h = ref 0xcbf29ce484222325L in
  iter_chunks_peek t ~va ~len (fun ~payload ~off ~chunk ~at:_ ->
      match payload with
      | Some b ->
        for i = off to off + chunk - 1 do
          h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i)));
          h := Int64.mul !h 0x100000001b3L
        done
      | None ->
        (* FNV-1a over [chunk] zero bytes: xor-with-0 is the identity. *)
        for _ = 1 to chunk do
          h := Int64.mul !h 0x100000001b3L
        done);
  !h

let touch t ~core ~va =
  let c = Machine.core t.machine core in
  let vpn = Addr.page_number va in
  let frame =
    match Tlb.lookup c.Machine.tlb ~asid:t.asid ~vpn with
    | Some frame ->
      (match t.machine.Machine.reclaim with
      | None -> ()
      | Some r -> r.Machine.ri_page_touched ~asid:t.asid ~va);
      frame
    | None ->
      (* TLB miss: a swapped page demand-faults here (frame_of_exn runs
         the fault handler), after which the refill proceeds normally.
         Swap-out scrubs the page from every TLB, so a hit above always
         means present. *)
      let frame, _off = frame_of_exn t va in
      Tlb.insert c.Machine.tlb ~asid:t.asid ~vpn ~frame;
      frame
  in
  let pa = (frame * Addr.page_size) + Addr.page_offset va in
  Cache_sim.access t.machine.Machine.llc ~addr:pa

let touch_range t ~core ~va ~len =
  if len > 0 then begin
    let line = Cache_sim.line_bytes t.machine.Machine.llc in
    let pos = ref (va - (va mod line)) in
    while !pos < va + len do
      touch t ~core ~va:!pos;
      pos := !pos + line
    done
  end

let mapped_pages t = Page_table.mapped_pages t.pt
