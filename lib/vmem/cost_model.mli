(** Calibrated event costs for the simulated machines.

    Every cost is in nanoseconds of simulated time.  The three presets model
    the paper's testbeds; absolute values are order-of-magnitude calibrations
    (documented per field), and EXPERIMENTS.md records how the resulting
    shapes compare to the paper's figures.  Copy bandwidth is tiered by copy
    size because small memmoves run out of cache while multi-MiB ones are
    DRAM-bound — this tiering is what creates the Fig. 10 break-even
    threshold. *)

type t = {
  name : string;
  cpu_ghz : float;
  ncores : int;  (** cores of the modeled machine *)
  dram_gib : int;  (** advertised capacity, for reporting only *)
  mem_access_ns : float;  (** uncached DRAM load *)
  pt_entry_ns : float;  (** one page-table word access during a walk *)
  lock_pair_ns : float;  (** pte_offset_map_lock + pte_unmap_unlock *)
  pmd_swap_ns : float;
      (** leaf-swap fast path: exchanging one pair of PMD directory entries
          (two locked 8-byte writes at the PMD level) remaps a whole
          512-page leaf in O(1).  Only charged in the opt-in
          [pmd_leaf_swap] mode; the default SwapVA paths never use it, so
          default simulated costs are unaffected by its value. *)
  syscall_ns : float;  (** user/kernel crossing, round trip *)
  swap_setup_ns : float;
      (** per-request setup inside SwapVA (vma checks, argument
          validation); charged once per request even in an aggregated
          batch *)
  tlb_flush_local_ns : float;  (** flush_tlb_local *)
  tlb_flush_page_ns : float;  (** invlpg-style single-page flush *)
  ipi_ns : float;  (** IPI delivery latency (send + first ack) *)
  ipi_ack_ns : float;
      (** incremental initiator-side cost per additional remote core in a
          broadcast (sends go out in parallel; acks are gathered) *)
  tlb_refill_ns : float;  (** page walk on a post-flush miss *)
  pin_ns : float;  (** sched_setaffinity-style pin/unpin *)
  l2_copy_bytes : int;  (** copies up to this size run at [cache_copy_bw] *)
  cache_copy_bw : float;  (** bytes/ns for cache-resident memmove *)
  dram_copy_bw : float;  (** bytes/ns single-thread DRAM-bound memmove *)
  machine_copy_bw : float;  (** bytes/ns total machine copy bandwidth ceiling *)
  mark_obj_ns : float;
      (** per-object marking work: header load, bitmap set, queue ops —
          scattered accesses, hence several DRAM latencies *)
  forward_obj_ns : float;  (** per-object forwarding-address calculation *)
  adjust_obj_ns : float;  (** per-object pointer-adjustment overhead *)
  ref_scan_ns : float;  (** per reference slot traced or adjusted *)
  barrier_ns : float;  (** parallel GC phase barrier *)
  steal_ns : float;  (** one work-stealing attempt *)
  retry_backoff_ns : float;
      (** base backoff the GC charges before re-issuing a SwapVA request
          that failed with a transient [EAGAIN]; attempt [k] (0-based)
          waits [retry_backoff_ns *. 2.0 ** k] simulated ns *)
  swap_out_ns : float;
      (** writing one 4 KiB page to the simulated swap device (submission +
          transfer at NVMe-class bandwidth); charged per page evicted by
          kswapd-style reclaim, and per device retry after an injected
          EIO.  [Config.swap_cost_ns] can override it per run. *)
  swap_in_ns : float;
      (** reading one 4 KiB page back from the swap device on a demand
          fault; same override as [swap_out_ns] *)
  major_fault_ns : float;
      (** fault-handler entry/exit around a swap-in: trap, vma lookup,
          page allocation bookkeeping — charged once per major fault on
          top of the device transfer *)
}

val i5_7600 : t
(** Intel Core i5-7600 @ 3.5 GHz, 24 GB DDR4-2400 (Figs. 1, 6, 8). *)

val xeon_6130 : t
(** Dual Xeon Gold 6130 @ 2.1 GHz, 32 cores, 192 GB DDR4-2666 (the main
    evaluation machine: Figs. 2, 9–16, Table III). *)

val xeon_6240 : t
(** Xeon Gold 6240 @ 2.6 GHz, 192 GB DDR4-2933 (Fig. 10b). *)

val presets : t list

val memmove_bw : t -> bytes_len:int -> float
(** Effective single-thread copy bandwidth (bytes/ns) for a copy of
    [bytes_len] bytes: cache-tier below [l2_copy_bytes], DRAM-tier above,
    with a smooth switch at the boundary. *)

val contended_bw : t -> streams:int -> bw:float -> float
(** Bandwidth available to one of [streams] concurrent copy streams:
    [min bw (machine_copy_bw / streams)]. *)

val walk_cost_ns : t -> float
(** Full 4-level walk + PTE access: [5 * pt_entry_ns]. *)

val pp : Format.formatter -> t -> unit
