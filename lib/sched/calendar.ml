module Perf = Svagc_vmem.Perf

(* Heap slots are three parallel arrays (key, seq, payload) so sifting
   moves machine words, never tuples.  [state] is indexed by seq:
   '\000' pending, '\001' cancelled (lazy-deleted), '\002' fired. *)
type 'a t = {
  mutable key_ns : float array;
  mutable key_seq : int array;
  mutable payload : Obj.t array;
  mutable size : int;
  mutable state : Bytes.t;
  mutable next_seq : int;
  mutable live_count : int;
  perf : Perf.t option;
}

type handle = int

let dummy = Obj.repr 0

let create ?(capacity = 64) ?perf () =
  let capacity = max capacity 1 in
  {
    key_ns = Array.make capacity 0.0;
    key_seq = Array.make capacity 0;
    payload = Array.make capacity dummy;
    size = 0;
    state = Bytes.make (max capacity 64) '\000';
    next_seq = 0;
    live_count = 0;
    perf;
  }

let live t = t.live_count
let is_empty t = t.live_count = 0
let scheduled_total t = t.next_seq

(* (ns, seq) lexicographic order: FIFO among equal timestamps. *)
let less t i j =
  let ni = Array.unsafe_get t.key_ns i and nj = Array.unsafe_get t.key_ns j in
  ni < nj
  || (ni = nj && Array.unsafe_get t.key_seq i < Array.unsafe_get t.key_seq j)

let swap t i j =
  let ns = t.key_ns.(i) in
  t.key_ns.(i) <- t.key_ns.(j);
  t.key_ns.(j) <- ns;
  let seq = t.key_seq.(i) in
  t.key_seq.(i) <- t.key_seq.(j);
  t.key_seq.(j) <- seq;
  let p = t.payload.(i) in
  t.payload.(i) <- t.payload.(j);
  t.payload.(j) <- p

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.size then begin
    let r = l + 1 in
    let smallest = if r < t.size && less t r l then r else l in
    if less t smallest i then begin
      swap t i smallest;
      sift_down t smallest
    end
  end

let grow_heap t =
  let cap = Array.length t.key_ns in
  let cap' = 2 * cap in
  let key_ns = Array.make cap' 0.0 in
  Array.blit t.key_ns 0 key_ns 0 t.size;
  t.key_ns <- key_ns;
  let key_seq = Array.make cap' 0 in
  Array.blit t.key_seq 0 key_seq 0 t.size;
  t.key_seq <- key_seq;
  let payload = Array.make cap' dummy in
  Array.blit t.payload 0 payload 0 t.size;
  t.payload <- payload

let ensure_state t seq =
  let len = Bytes.length t.state in
  if seq >= len then begin
    let state = Bytes.make (max (2 * len) (seq + 1)) '\000' in
    Bytes.blit t.state 0 state 0 len;
    t.state <- state
  end

let schedule t ~ns v =
  (* [not (ns >= 0.)] also catches NaN; host time must never get here. *)
  if not (ns >= 0.0 && ns < infinity) then
    invalid_arg "Calendar.schedule: key must be finite non-negative sim ns";
  if t.size = Array.length t.key_ns then grow_heap t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  ensure_state t seq;
  let i = t.size in
  t.size <- i + 1;
  t.key_ns.(i) <- ns;
  t.key_seq.(i) <- seq;
  t.payload.(i) <- Obj.repr v;
  sift_up t i;
  t.live_count <- t.live_count + 1;
  (match t.perf with
  | Some p -> p.Perf.sched_scheduled <- p.Perf.sched_scheduled + 1
  | None -> ());
  seq

let cancel t h =
  if h < 0 || h >= t.next_seq then false
  else if Bytes.get t.state h <> '\000' then false
  else begin
    Bytes.set t.state h '\001';
    t.live_count <- t.live_count - 1;
    (match t.perf with
    | Some p -> p.Perf.sched_cancelled <- p.Perf.sched_cancelled + 1
    | None -> ());
    true
  end

(* Remove the root slot; the caller has already read its fields. *)
let drop_root t =
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    t.key_ns.(0) <- t.key_ns.(last);
    t.key_seq.(0) <- t.key_seq.(last);
    t.payload.(0) <- t.payload.(last)
  end;
  t.payload.(last) <- dummy;
  if last > 1 then sift_down t 0

(* Lazy deletion: cancelled entries are discarded when they surface. *)
let rec skim_cancelled t =
  if t.size > 0 && Bytes.get t.state t.key_seq.(0) = '\001' then begin
    drop_root t;
    skim_cancelled t
  end

let pop t =
  skim_cancelled t;
  if t.size = 0 then None
  else begin
    let ns = t.key_ns.(0) and seq = t.key_seq.(0) in
    let v : Obj.t = t.payload.(0) in
    drop_root t;
    Bytes.set t.state seq '\002';
    t.live_count <- t.live_count - 1;
    (match t.perf with
    | Some p -> p.Perf.sched_dispatched <- p.Perf.sched_dispatched + 1
    | None -> ());
    Some (Obj.obj v, ns)
  end

let peek_ns t =
  skim_cancelled t;
  if t.size = 0 then None else Some t.key_ns.(0)

let clear t =
  let cancelled = ref 0 in
  for i = 0 to t.size - 1 do
    let seq = t.key_seq.(i) in
    if Bytes.get t.state seq = '\000' then begin
      Bytes.set t.state seq '\001';
      incr cancelled
    end;
    t.payload.(i) <- dummy
  done;
  t.size <- 0;
  t.live_count <- 0;
  match t.perf with
  | Some p -> p.Perf.sched_cancelled <- p.Perf.sched_cancelled + !cancelled
  | None -> ()
