let done_ns = neg_infinity

type proc = {
  first : float;
  mutable next : float;
  mutable stamp : int;
  fire : now:float -> float;
}

let proc ~first_ns fire =
  if not (first_ns >= 0.0 && first_ns < infinity) then
    invalid_arg "Engine.proc: first_ns must be finite non-negative sim ns";
  { first = first_ns; next = first_ns; stamp = 0; fire }

let check_next ~now nxt =
  if nxt <> done_ns && not (nxt >= now && nxt < infinity) then
    invalid_arg "Engine: a process rescheduled itself before now";
  nxt

(* Reference engine: every dispatch is an O(n) scan for the minimum
   (next, stamp) pair — the host cost profile of the old lockstep wave
   loop.  [stamp] reproduces the calendar's FIFO tie-break: initial
   stamps are array order, reschedules take the next counter value,
   exactly like Calendar seq numbers do in [run_calendar]. *)
let run_lockstep_scan procs =
  let n = Array.length procs in
  Array.iteri
    (fun i p ->
      p.next <- p.first;
      p.stamp <- i)
    procs;
  let counter = ref n in
  let fired = ref 0 in
  let running = ref true in
  while !running do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      let p = Array.unsafe_get procs i in
      if p.next <> done_ns then
        if !best < 0 then best := i
        else
          let b = Array.unsafe_get procs !best in
          if p.next < b.next || (p.next = b.next && p.stamp < b.stamp) then
            best := i
    done;
    if !best < 0 then running := false
    else begin
      let p = procs.(!best) in
      let now = p.next in
      let nxt = check_next ~now (p.fire ~now) in
      incr fired;
      if nxt = done_ns then p.next <- done_ns
      else begin
        p.next <- nxt;
        p.stamp <- !counter;
        incr counter
      end
    end
  done;
  !fired

let run_calendar ?perf procs =
  let n = Array.length procs in
  let cal = Calendar.create ~capacity:(max 16 n) ?perf () in
  (* Initial insertion in array order assigns seq 0..n-1, matching the
     scan engine's initial stamps; every reschedule then takes the next
     seq, matching its counter — so pop order is identical. *)
  Array.iteri (fun i p -> ignore (Calendar.schedule cal ~ns:p.first i)) procs;
  let fired = ref 0 in
  let running = ref true in
  while !running do
    match Calendar.pop cal with
    | None -> running := false
    | Some (i, now) ->
        let p = procs.(i) in
        let nxt = check_next ~now (p.fire ~now) in
        incr fired;
        if nxt <> done_ns then ignore (Calendar.schedule cal ~ns:nxt i)
  done;
  !fired
