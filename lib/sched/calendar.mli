(** Binary-heap event calendar for the discrete-event simulation core.

    The calendar is a min-heap keyed on [(ns, seq)]:

    - [ns] is *simulated* nanoseconds — never host time.  Determinism
      rule: every key must be derived from simulated state (clocks, step
      indices, deterministic RNG), so a replay schedules byte-identical
      keys and the calendar pops byte-identical order.
    - [seq] is a monotonically increasing insertion stamp that breaks
      ties FIFO: two events at the same [ns] fire in the order they were
      scheduled.  This is what makes the event-driven engine reproduce a
      lockstep round-robin exactly — within one simulated instant,
      calendar order equals insertion order.

    Cancellation is lazy: {!cancel} marks the handle and the entry is
    discarded when it reaches the top, so cancel is O(1) and pop stays
    O(log n) amortised.

    The calendar never allocates per event beyond its growable backing
    arrays (payloads are stored unboxed via [Obj.repr]); scheduling into
    a warm calendar is allocation-free. *)

type 'a t

val create : ?capacity:int -> ?perf:Svagc_vmem.Perf.t -> unit -> 'a t
(** [?perf] wires the machine counters: [sched_scheduled] /
    [sched_dispatched] / [sched_cancelled] are bumped by the matching
    operations. *)

type handle = int
(** Stable identifier returned by {!schedule}; usable with {!cancel}
    until the event fires. *)

val schedule : 'a t -> ns:float -> 'a -> handle
(** Insert an event at simulated time [ns].  Raises [Invalid_argument]
    if [ns] is NaN or negative — host time (or uninitialised floats)
    must never leak into the calendar. *)

val cancel : 'a t -> handle -> bool
(** Remove a pending event (lazy deletion).  Returns [false] if the
    handle already fired or was already cancelled. *)

val pop : 'a t -> ('a * float) option
(** Remove and return the earliest live event [(payload, ns)], FIFO
    among equal [ns].  [None] when the calendar is empty. *)

val peek_ns : 'a t -> float option
(** Key of the next live event without removing it. *)

val live : 'a t -> int
(** Number of pending (scheduled, not yet fired or cancelled) events. *)

val is_empty : 'a t -> bool
(** [live t = 0]: nothing left to fire. *)

val scheduled_total : 'a t -> int
(** Lifetime count of {!schedule} calls (also the next handle). *)

val clear : 'a t -> unit
(** Drop all pending events (they count as cancelled). *)
