(** Deterministic drivers over a set of simulated processes.

    A {!proc} is a self-rescheduling event source: firing it at [now]
    returns the simulated ns of its next event (or {!done_ns} to
    finish).  Two drivers execute the same process set:

    - {!run_lockstep_scan} — the reference engine.  It models the old
      lockstep wave loop: every dispatch scans the whole process array
      for the minimum [(next_ns, stamp)] pair, so each event costs O(n)
      host work even when most tenants are idle.
    - {!run_calendar} — the event-driven engine over {!Calendar}: O(log
      n) per event, idle processes cost nothing between their events.

    Both drivers fire events in the identical total order (simulated ns,
    FIFO among ties by scheduling stamp), so any deterministic process
    set produces bit-identical final state under either — the property
    {!Svagc_check.Differential} and [test_sched] enforce. *)

type proc

val done_ns : float
(** Sentinel return value from a process: no further events. *)

val proc : first_ns:float -> (now:float -> float) -> proc
(** A process whose first event is at [first_ns] (finite, [>= 0]).  Each
    firing must return [done_ns] or a time [>= now].  A [proc] array is
    single-use: build fresh processes (and fresh closure state) per
    run. *)

val run_lockstep_scan : proc array -> int
(** Reference engine; returns the number of events fired. *)

val run_calendar : ?perf:Svagc_vmem.Perf.t -> proc array -> int
(** Event-driven engine; fires the same events in the same order as
    {!run_lockstep_scan} and returns the same count. *)
