(** Deterministic fault stream: a {!Fault_spec.t} armed with a seed.

    Each clause of the spec owns an independent SplitMix64 stream derived
    from the injector seed and the clause's position, so

    - the same [(spec, seed)] pair always produces the same fault
      sequence, byte for byte, regardless of what other clauses do;
    - an empty spec (or rate 0) never fires and — because streams are
      only consulted when a clause matches — leaves every simulation
      output bit-identical to a run without an injector.

    The injector is pure bookkeeping: it decides {e whether} a query
    fires.  Turning a firing into a typed {!Kernel_error.t} (and
    charging its cost) is the querying site's job. *)

type t

val create : Fault_spec.t -> seed:int -> t
(** [create spec ~seed] arms [spec].  Distinct seeds give independent
    fault sequences for the same spec. *)

val spec : t -> Fault_spec.t
val seed : t -> int

val fire : t -> site:Fault_spec.site -> va:int -> bool
(** [fire t ~site ~va] asks whether this query faults.  The first
    matching clause (same site, [va] inside its window if it has one)
    decides; its counter/PRNG stream advances only on a match.  Pass
    [~va:0] for sites without a meaningful address ([Lock_acquire],
    [Ipi_deliver]) — clause windows then only constrain [Pte_resolve]
    queries. *)

val fired : t -> int
(** Total number of queries answered [true] so far (all sites). *)

val queries : t -> int
(** Total number of {!fire} calls so far. *)
