type site = Pte_resolve | Lock_acquire | Ipi_deliver | Swap_io

type mode = Probability of float | Every of int

type clause = {
  site : site;
  mode : mode;
  va_lo : int option;
  va_hi : int option;
}

type t = clause list

let empty = []
let is_empty t = t = []

let site_name = function
  | Pte_resolve -> "pte"
  | Lock_acquire -> "lock"
  | Ipi_deliver -> "ipi"
  | Swap_io -> "swap"

let site_of_name = function
  | "pte" -> Ok Pte_resolve
  | "lock" -> Ok Lock_acquire
  | "ipi" -> Ok Ipi_deliver
  | "swap" -> Ok Swap_io
  | s -> Error (Printf.sprintf "unknown fault site %S (want pte|lock|ipi|swap)" s)

let int_of_token s =
  (* Accepts decimal and 0x-prefixed hex. *)
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "not a number: %S" s)

let parse_clause text =
  match String.split_on_char ':' text with
  | [] | [ "" ] -> Error "empty fault clause"
  | site_token :: fields -> (
    match site_of_name site_token with
    | Error _ as e -> e
    | Ok site ->
      let mode = ref None and va = ref None and err = ref None in
      let set_mode m =
        match !mode with
        | Some _ -> err := Some (Printf.sprintf "clause %S: duplicate mode" text)
        | None -> mode := Some m
      in
      List.iter
        (fun field ->
          if !err = None then
            match String.index_opt field '=' with
            | None ->
              err :=
                Some (Printf.sprintf "clause %S: expected key=value, got %S" text field)
            | Some i -> (
              let key = String.sub field 0 i in
              let value = String.sub field (i + 1) (String.length field - i - 1) in
              match key with
              | "p" -> (
                match float_of_string_opt value with
                | Some p when p >= 0.0 && p <= 1.0 -> set_mode (Probability p)
                | Some _ ->
                  err :=
                    Some (Printf.sprintf "clause %S: p must be in [0,1]" text)
                | None ->
                  err := Some (Printf.sprintf "clause %S: bad probability %S" text value))
              | "every" -> (
                match int_of_string_opt value with
                | Some n when n > 0 -> set_mode (Every n)
                | _ ->
                  err :=
                    Some (Printf.sprintf "clause %S: every must be a positive int" text))
              | "va" -> (
                match String.index_opt value '-' with
                | None ->
                  err := Some (Printf.sprintf "clause %S: va wants LO-HI" text)
                | Some j -> (
                  let lo = String.sub value 0 j in
                  let hi = String.sub value (j + 1) (String.length value - j - 1) in
                  match (int_of_token lo, int_of_token hi) with
                  | Ok lo, Ok hi when lo <= hi -> va := Some (lo, hi)
                  | Ok _, Ok _ ->
                    err := Some (Printf.sprintf "clause %S: empty va range" text)
                  | Error e, _ | _, Error e ->
                    err := Some (Printf.sprintf "clause %S: %s" text e)))
              | _ ->
                err :=
                  Some
                    (Printf.sprintf "clause %S: unknown key %S (want p|every|va)" text
                       key)))
        fields;
      (match !err with
      | Some e -> Error e
      | None -> (
        match !mode with
        | None ->
          Error (Printf.sprintf "clause %S: missing firing mode (p=… or every=…)" text)
        | Some mode ->
          let va_lo, va_hi =
            match !va with Some (lo, hi) -> (Some lo, Some hi) | None -> (None, None)
          in
          Ok { site; mode; va_lo; va_hi })))

let parse s =
  let s = String.trim s in
  if s = "" then Ok empty
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | text :: rest -> (
        match parse_clause (String.trim text) with
        | Ok c -> go (c :: acc) rest
        | Error _ as e -> e)
    in
    go [] (String.split_on_char ',' s)

let clause_to_string c =
  let mode =
    match c.mode with
    | Probability p -> Printf.sprintf "p=%g" p
    | Every n -> Printf.sprintf "every=%d" n
  in
  let range =
    match (c.va_lo, c.va_hi) with
    | Some lo, Some hi -> Printf.sprintf ":va=0x%x-0x%x" lo hi
    | _ -> ""
  in
  Printf.sprintf "%s:%s%s" (site_name c.site) mode range

let to_string t = String.concat "," (List.map clause_to_string t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
