(** The simulated kernel's typed error surface.

    Every failure a SwapVA-family syscall can report is a value of {!t},
    mirroring the errno a real kernel would return plus enough payload to
    diagnose the failing input.  The kernel guarantees {e error implies no
    mutation}: a call that reports any of these errors has not modified a
    single PTE, so callers (the GC's [Move_object] in particular) can
    always degrade to the byte-copy path or retry without repair work.

    Errors are produced both by genuine invalid inputs (unaligned
    addresses, unmapped ranges) and by the deterministic fault-injection
    plane ({!Injector}), which models transient kernel-level failures such
    as racing unmaps and page-table lock contention. *)

type t =
  | EFAULT_unmapped of { va : int }
      (** A page of the request was not present at [va] — either genuinely
          unmapped, or an injected transient fault modeling a racing
          unmap/migration observed during PTE resolution. *)
  | EINVAL_unaligned of { va : int }
      (** A range endpoint is not page-aligned. *)
  | EINVAL_bad_pages of { pages : int }
      (** The request's page count is zero or negative. *)
  | EINVAL_identical  (** Source and destination ranges coincide. *)
  | EINVAL_overlap
      (** The ranges overlap and the caller did not enable the
          overlapping-area path (Algorithm 2). *)
  | EINVAL_geometry of { reason : string }
      (** An overlapping-area precondition does not hold (e.g. the window
          does not actually overlap, or [dst <= src]). *)
  | EAGAIN_contended
      (** The page-table lock could not be acquired — an injected
          contention fault.  Transient: retrying can succeed. *)
  | EIPI_lost of { core : int }
      (** A TLB-shootdown IPI was dropped before delivery to [core].
          Never surfaced to userspace: the shootdown protocol detects the
          missing ack and resends (see {!Injector} and the DESIGN.md fault
          chapter), charging the extra round instead of failing. *)
  | EIO_swap of { va : int }
      (** The swap device failed every attempt of a bounded retry while
          faulting the page at [va] back in (injected via the [swap] fault
          site).  Not transient from the caller's perspective — the fault
          handler has already exhausted its retry budget — and not
          degradable: the page's bytes are unreachable, so there is no
          byte-copy fallback. *)

exception Fault of t
(** Raised by kernel internals strictly {e before} any mutation; the
    syscall boundary catches it and returns the payload as a typed error. *)

exception Fault_ns of t * float
(** Raised at the syscall boundary by the raising convenience entry points
    ([Swapva.swap]): the typed error plus the simulated ns the failed call
    still cost (crossing + setup).  Callers that must charge that time use
    [Swapva.swap_result] instead of catching this. *)

val errno_name : t -> string
(** The errno-style tag alone: ["EFAULT"], ["EINVAL"], ["EAGAIN"],
    ["EIPI"], ["EIO"]. *)

val to_string : t -> string
(** Full rendering, e.g.
    ["EFAULT: range contains an unmapped page at 0x40000000"]. *)

val equal : t -> t -> bool

val is_transient : t -> bool
(** [true] for errors a bounded retry can clear ({!EAGAIN_contended}).
    [EFAULT_unmapped] is {e degradable} but not transient: retrying the
    swap does not help, falling back to byte copy does. *)

val is_degradable : t -> bool
(** [true] when the caller may safely fall back to the memmove path
    ({!EFAULT_unmapped}, {!EAGAIN_contended}).  [false] for the [EINVAL]
    family: those indicate a caller bug and must fail loudly. *)

val pp : Format.formatter -> t -> unit
