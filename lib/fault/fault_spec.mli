(** Parsed description of {e which} kernel faults to inject and {e where}.

    A spec is a comma-separated list of clauses, each naming an injection
    site and a firing mode:

    {v
    pte:p=0.01                1% of PTE-resolution queries fail (EFAULT)
    lock:every=64             every 64th lock acquisition fails (EAGAIN)
    ipi:p=0.002               0.2% of shootdown broadcasts lose an IPI
    swap:p=0.01               1% of swap-device IOs fail (EIO_swap)
    pte:p=0.05:va=0x40000000-0x40400000
                              5% EFAULT rate, but only inside that VA range
    v}

    Clauses combine: ["pte:p=0.01,lock:every=100,ipi:p=0.002"] arms all
    three sites at once.  The spec is pure data — pair it with a seed in
    {!Injector.create} to obtain the deterministic fault stream. *)

type site =
  | Pte_resolve
      (** Queried once per page while a SwapVA request resolves and
          presence-checks its ranges (before any mutation). *)
  | Lock_acquire
      (** Queried once per request when the kernel takes the page-table
          locks for that request (before any mutation). *)
  | Ipi_deliver
      (** Queried once per IPI-sending TLB-shootdown round; a firing
          models one lost IPI, detected and resent by the kernel. *)
  | Swap_io
      (** Queried once per swap-device transfer attempt (both directions);
          a firing models a device EIO.  The reclaim plane retries a
          bounded number of times, then skips the eviction (swap-out) or
          surfaces [EIO_swap] (fault-in). *)

type mode =
  | Probability of float  (** each query fires independently with rate p *)
  | Every of int  (** the Nth, 2Nth, ... matching query fires *)

type clause = {
  site : site;
  mode : mode;
  va_lo : int option;
  va_hi : int option;
      (** Optional inclusive VA window: queries outside it neither fire
          nor advance this clause's counter/PRNG stream.  Only meaningful
          for {!Pte_resolve} and {!Swap_io}, whose queries carry a page
          address. *)
}

type t = clause list
(** Clauses are kept in parse order; the first firing clause wins. *)

val empty : t
val is_empty : t -> bool

val parse : string -> (t, string) result
(** [parse s] reads the [site:key=value[:key=value]] grammar above.
    Accepts [""] as {!empty}.  Errors are human-readable and name the
    offending clause. *)

val to_string : t -> string
(** Canonical rendering; [parse (to_string t)] re-reads to an equal
    spec. *)

val site_name : site -> string

val pp : Format.formatter -> t -> unit
