type t =
  | EFAULT_unmapped of { va : int }
  | EINVAL_unaligned of { va : int }
  | EINVAL_bad_pages of { pages : int }
  | EINVAL_identical
  | EINVAL_overlap
  | EINVAL_geometry of { reason : string }
  | EAGAIN_contended
  | EIPI_lost of { core : int }
  | EIO_swap of { va : int }

exception Fault of t
exception Fault_ns of t * float

let errno_name = function
  | EFAULT_unmapped _ -> "EFAULT"
  | EINVAL_unaligned _ | EINVAL_bad_pages _ | EINVAL_identical | EINVAL_overlap
  | EINVAL_geometry _ ->
    "EINVAL"
  | EAGAIN_contended -> "EAGAIN"
  | EIPI_lost _ -> "EIPI"
  | EIO_swap _ -> "EIO"

let to_string = function
  | EFAULT_unmapped { va } ->
    Printf.sprintf "EFAULT: range contains an unmapped page at 0x%x" va
  | EINVAL_unaligned { va } ->
    Printf.sprintf "EINVAL: address 0x%x is not page-aligned" va
  | EINVAL_bad_pages { pages } ->
    Printf.sprintf "EINVAL: page count must be positive (got %d)" pages
  | EINVAL_identical -> "EINVAL: source and destination ranges are identical"
  | EINVAL_overlap -> "EINVAL: overlapping ranges (enable allow_overlap)"
  | EINVAL_geometry { reason } -> Printf.sprintf "EINVAL: %s" reason
  | EAGAIN_contended -> "EAGAIN: page-table lock contended"
  | EIPI_lost { core } ->
    Printf.sprintf "EIPI: shootdown IPI to core %d was lost" core
  | EIO_swap { va } ->
    Printf.sprintf "EIO: swap device error faulting in page at 0x%x" va

let equal (a : t) (b : t) = a = b

let is_transient = function EAGAIN_contended -> true | _ -> false

let is_degradable = function
  | EFAULT_unmapped _ | EAGAIN_contended -> true
  | EINVAL_unaligned _ | EINVAL_bad_pages _ | EINVAL_identical | EINVAL_overlap
  | EINVAL_geometry _ | EIPI_lost _ | EIO_swap _ ->
    false

let pp ppf t = Format.pp_print_string ppf (to_string t)
