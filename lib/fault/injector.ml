type armed = {
  clause : Fault_spec.clause;
  rng : Svagc_util.Rng.t;
  mutable matched : int; (* queries that matched this clause *)
}

type t = {
  spec : Fault_spec.t;
  seed : int;
  clauses : armed list;
  mutable fired : int;
  mutable queries : int;
}

let create spec ~seed =
  (* Each clause owns a stream keyed by (seed, index) so firing decisions
     in one clause never perturb another's sequence. *)
  let clauses =
    List.mapi
      (fun i clause ->
        { clause; rng = Svagc_util.Rng.create ~seed:(seed + ((i + 1) * 0x9e3779b9)); matched = 0 })
      spec
  in
  { spec; seed; clauses; fired = 0; queries = 0 }

let spec t = t.spec
let seed t = t.seed
let fired t = t.fired
let queries t = t.queries

let clause_matches (c : Fault_spec.clause) ~site ~va =
  c.site = site
  &&
  match (c.va_lo, c.va_hi) with
  | Some lo, Some hi ->
    (* Only queries that carry a page address can be range-filtered. *)
    (match site with
    | Fault_spec.Pte_resolve | Fault_spec.Swap_io -> va >= lo && va <= hi
    | Fault_spec.Lock_acquire | Fault_spec.Ipi_deliver -> true)
  | _ -> true

let clause_fires (a : armed) =
  a.matched <- a.matched + 1;
  match a.clause.mode with
  | Fault_spec.Probability p -> p > 0.0 && Svagc_util.Rng.float a.rng < p
  | Fault_spec.Every n -> a.matched mod n = 0

let fire t ~site ~va =
  t.queries <- t.queries + 1;
  let rec scan = function
    | [] -> false
    | a :: rest ->
      if clause_matches a.clause ~site ~va then clause_fires a else scan rest
  in
  let hit = scan t.clauses in
  if hit then t.fired <- t.fired + 1;
  hit
