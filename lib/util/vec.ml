type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

(* There is no way to pre-size the backing [array] without a witness
   element, so [capacity] is accepted for interface stability and the store
   grows geometrically from the first [push]. *)
let create ?capacity:_ () = { data = [||]; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let grow v x =
  let cap = Array.length v.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let find_opt p v =
  let rec loop i =
    if i >= v.len then None
    else if p v.data.(i) then Some v.data.(i)
    else loop (i + 1)
  in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let of_list l = of_array (Array.of_list l)

let map f v =
  if v.len = 0 then { data = [||]; len = 0 }
  else begin
    let data = Array.make v.len (f v.data.(0)) in
    for i = 0 to v.len - 1 do
      data.(i) <- f v.data.(i)
    done;
    { data; len = v.len }
  end

let filter p v =
  let out = create () in
  iter (fun x -> if p x then push out x) v;
  out

let remove_first p v =
  let n = v.len in
  let i = ref 0 in
  while !i < n && not (p v.data.(!i)) do
    incr i
  done;
  if !i = n then false
  else begin
    Array.blit v.data (!i + 1) v.data !i (n - !i - 1);
    v.len <- n - 1;
    true
  end

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)
