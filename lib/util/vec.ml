(* The backing store is an [Obj.t array] rather than an ['a array] (the
   stdlib [Dynarray] technique): slots vacated by [pop] / [clear] /
   [release] must be overwritten so the host GC can reclaim the elements,
   and no typed witness exists for every ['a].  Routing elements through
   [Obj.repr] / [Obj.obj] provides a universal witness and guarantees the
   store is never a flat float array, so the witness write is always a
   plain pointer store. *)

type 'a t = {
  mutable data : Obj.t array;
  mutable len : int;
}

let dummy : Obj.t = Obj.repr ()

let create ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Vec.create: negative capacity";
  { data = Array.make capacity dummy; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let grow v =
  let cap = Array.length v.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  let data = Array.make new_cap dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- Obj.repr x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    let n = v.len - 1 in
    let x : 'a = Obj.obj v.data.(n) in
    v.data.(n) <- dummy;
    v.len <- n;
    Some x
  end

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i : 'a =
  check v i;
  Obj.obj v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- Obj.repr x

let release v i =
  check v i;
  v.data.(i) <- dummy

let clear v =
  Array.fill v.data 0 v.len dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Obj.obj v.data.(i) : 'a)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Obj.obj v.data.(i) : 'a)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Obj.obj v.data.(i) : 'a)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p (Obj.obj v.data.(i) : 'a) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let find_opt p v =
  let rec loop i =
    if i >= v.len then None
    else
      let x : 'a = Obj.obj v.data.(i) in
      if p x then Some x else loop (i + 1)
  in
  loop 0

let to_list v =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) ((Obj.obj v.data.(i) : 'a) :: acc)
  in
  loop (v.len - 1) []

let to_array v = Array.init v.len (fun i : 'a -> Obj.obj v.data.(i))

let of_array a =
  let len = Array.length a in
  let data = Array.make len dummy in
  for i = 0 to len - 1 do
    data.(i) <- Obj.repr a.(i)
  done;
  { data; len }

let of_list l = of_array (Array.of_list l)

let map f v =
  let out = create ~capacity:v.len () in
  iter (fun x -> push out (f x)) v;
  out

let filter p v =
  let out = create () in
  iter (fun x -> if p x then push out x) v;
  out

let remove_first p v =
  let n = v.len in
  let i = ref 0 in
  while !i < n && not (p (Obj.obj v.data.(!i) : 'a)) do
    incr i
  done;
  if !i = n then false
  else begin
    Array.blit v.data (!i + 1) v.data !i (n - !i - 1);
    v.data.(n - 1) <- dummy;
    v.len <- n - 1;
    true
  end

let append dst src =
  let need = dst.len + src.len in
  if need > Array.length dst.data then begin
    let cap = Stdlib.max 8 (Array.length dst.data) in
    let rec fit c = if c >= need then c else fit (2 * c) in
    let data = Array.make (fit cap) dummy in
    Array.blit dst.data 0 data 0 dst.len;
    dst.data <- data
  end;
  Array.blit src.data 0 dst.data dst.len src.len;
  dst.len <- need

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  for i = 0 to v.len - 1 do
    v.data.(i) <- Obj.repr a.(i)
  done

let last v : 'a option =
  if v.len = 0 then None else Some (Obj.obj v.data.(v.len - 1))
