(** Per-domain shard slots.

    Every domain that executes simulator code carries a small integer
    {e slot}: 0 for the initial (sequential) domain, [1 .. max_slots-1]
    for pool workers.  The slot is the index into any per-domain state a
    shared structure owns — notably [Machine.hot_scratch], whose scratch
    buffers and charge memos must never be shared between concurrently
    running domains.

    The slot lives in domain-local storage ([Domain.DLS]), so reading it
    is race-free and allocation-free.  [Svagc_par.Domain_pool] assigns
    worker slots at spawn time; code that never runs under a pool always
    observes slot 0 and behaves exactly as it did when the host was
    single-threaded. *)

val max_slots : int
(** Upper bound on distinct slots (and thus on pool workers + 1).
    Sized so per-machine slot arrays stay trivially small. *)

val my_slot : unit -> int
(** The calling domain's slot.  0 unless a pool assigned one. *)

val set_slot : int -> unit
(** Assign the calling domain's slot.  Reserved for pool internals
    (worker initialisation) and tests.
    @raise Invalid_argument unless [0 <= slot < max_slots]. *)
