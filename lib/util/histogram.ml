type t = {
  samples : float Vec.t;
  mutable sorted : bool;
}

let create ?capacity () = { samples = Vec.create ?capacity (); sorted = true }

let add t x =
  Vec.push t.samples x;
  t.sorted <- false

let count t = Vec.length t.samples

let total t = Vec.fold_left ( +. ) 0.0 t.samples

let mean t =
  let n = count t in
  if n = 0 then 0.0 else total t /. float_of_int n

let max t = Vec.fold_left Float.max 0.0 t.samples

let min t =
  if count t = 0 then 0.0
  else Vec.fold_left Float.min Float.max_float t.samples

let ensure_sorted t =
  if not t.sorted then begin
    Vec.sort Float.compare t.samples;
    t.sorted <- true
  end

(* Nearest-rank: sample number ceil(q*n), 1-indexed.  The product q*n is
   computed in floats, so a mathematically-integer rank can land a hair
   above its true value (0.999 * 1000 = 999.0000000000001) and ceil would
   then select the next sample.  Subtracting a relative epsilon first
   restores the exact-boundary answer; ranks that are genuinely fractional
   are unaffected (their distance to the next integer is far above eps). *)
let quantile t q =
  let n = count t in
  if n = 0 then 0.0
  else begin
    ensure_sorted t;
    let x = q *. float_of_int n in
    let eps = 1e-9 *. Float.max 1.0 (Float.abs x) in
    let rank = int_of_float (ceil (x -. eps)) - 1 in
    let rank = Stdlib.max 0 (Stdlib.min (n - 1) rank) in
    Vec.get t.samples rank
  end

let percentile t p = quantile t (p /. 100.0)

let p50 t = quantile t 0.5

let p99 t = quantile t 0.99

let p999 t = quantile t 0.999

let stddev t =
  let n = count t in
  if n < 2 then 0.0
  else begin
    let m = mean t in
    let ss = Vec.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t.samples in
    sqrt (ss /. float_of_int (n - 1))
  end

let merge_into ~into b =
  if Vec.length b.samples > 0 then begin
    Vec.append into.samples b.samples;
    into.sorted <- false
  end

let merge a b =
  let t = create ~capacity:(count a + count b) () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t
