(** Streaming summary of a scalar sample (latencies, sizes, ...). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val max : t -> float
(** 0 when empty. *)

val min : t -> float
(** 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]] (nearest-rank on the recorded
    samples).  0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: the nearest-rank sample
    [ceil (q * n)] (1-indexed), computed with an epsilon guard so exact
    rank boundaries (e.g. q = 0.999 over 1000 samples) are not pushed one
    sample high by float rounding.  0 when empty. *)

val p50 : t -> float

val p99 : t -> float

val p999 : t -> float
(** Tail-latency accessors: [quantile] at 0.5 / 0.99 / 0.999. *)

val stddev : t -> float

val merge : t -> t -> t
(** Combine two sample sets into a fresh one. *)
