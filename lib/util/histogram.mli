(** Streaming summary of a scalar sample (latencies, sizes, ...). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] pre-sizes the sample store — across a 10k-tenant fleet
    the per-tenant histograms have a known sample budget (steps, GC
    count), and pre-sizing avoids both doubling churn and the 2x
    over-allocation tail of growth-by-doubling. *)

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val max : t -> float
(** 0 when empty. *)

val min : t -> float
(** 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]] (nearest-rank on the recorded
    samples).  0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: the nearest-rank sample
    [ceil (q * n)] (1-indexed), computed with an epsilon guard so exact
    rank boundaries (e.g. q = 0.999 over 1000 samples) are not pushed one
    sample high by float rounding.  0 when empty. *)

val p50 : t -> float

val p99 : t -> float

val p999 : t -> float
(** Tail-latency accessors: [quantile] at 0.5 / 0.99 / 0.999. *)

val stddev : t -> float

val merge : t -> t -> t
(** Combine two sample sets into a fresh one. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into b] appends [b]'s samples to [into] in one blit (no
    re-sort, no fresh histogram).  Folding [n] tenants' histograms into a
    fleet-wide one is O(total samples) this way, where repeated {!merge}
    is O(n * total).  Quantiles sort lazily on the next query, so sample
    order does not affect any percentile. *)
