(** Growable arrays (the standard [Dynarray] is not available on OCaml 5.1).

    Amortized O(1) push at the end, O(1) random access.  Not thread-safe. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty vector.  [capacity] pre-sizes the backing store. *)

val release : 'a t -> int -> unit
(** [release v i] overwrites slot [i] with an internal witness so the
    element becomes collectable by the host GC while the slot stays within
    [length].  For containers that abandon live slots (e.g. the work
    deque's stolen prefix); reading a released slot before overwriting it
    again is a programming error.  @raise Invalid_argument if out of
    bounds. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push v x] appends [x] at the end of [v]. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, or [None] if empty.  The
    vacated slot no longer retains the element. *)

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] overwrites the [i]-th element.  @raise Invalid_argument if
    out of bounds. *)

val clear : 'a t -> unit
(** [clear v] removes every element (keeps the backing store's capacity but
    releases every element for the host GC). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val find_opt : ('a -> bool) -> 'a t -> 'a option

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : 'a list -> 'a t

val of_array : 'a array -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val filter : ('a -> bool) -> 'a t -> 'a t

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes every element of [src] onto the end of [dst]
    in order, in one blit (no per-element allocation).  [src] is
    unchanged; growing [dst] rounds its capacity up to the next power of
    two that fits. *)

val remove_first : ('a -> bool) -> 'a t -> bool
(** [remove_first p v] removes the first element satisfying [p], shifting
    the tail down in place (one pass, no allocation); [false] when no
    element matches. *)

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** [sort cmp v] sorts [v] in place. *)

val last : 'a t -> 'a option
