let max_slots = 128

let key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let my_slot () = Domain.DLS.get key

let set_slot s =
  if s < 0 || s >= max_slots then
    invalid_arg "Domain_slot.set_slot: slot out of range";
  Domain.DLS.set key s
