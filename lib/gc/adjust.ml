open Svagc_heap
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model

(* The adjust phase really is data-parallel: each live object rewrites only
   its OWN refs array (shard-local by ownership — an object is in exactly
   one shard's slice), and the reads it does against other objects
   ([marked], [forward], the address hashtable) are of state nothing
   mutates during the phase.  Shard count is [threads] — part of the GC
   configuration, never the host domain count — and the cost vector is
   written by absolute index, preserving the exact order the previous
   sequential implementation ([List.rev_map] over [live]) produced, so the
   replayed work-stealing makespan is bit-identical at any domain count.
   A dangling/dead reference still raises the same exception: shards are
   contiguous slices in list order and the pool re-raises the
   lowest-numbered failing shard's (its first, hence the globally first,
   offender). *)
let run heap ~threads ~live =
  let machine = Svagc_kernel.Process.machine (Heap.proc heap) in
  let cost = machine.Machine.cost in
  let live_arr = Array.of_list live in
  let n = Array.length live_arr in
  let costs = Array.make n 0.0 in
  Svagc_par.Domain_pool.run
    (Svagc_par.Domain_pool.global ())
    ~shards:threads
    (fun s ->
      let lo, hi = Svagc_par.Reduce.slice ~len:n ~shards:threads s in
      for idx = lo to hi - 1 do
        let obj = live_arr.(idx) in
        let refs = obj.Obj_model.refs in
        Array.iteri
          (fun i addr ->
            if addr <> 0 then
              match Heap.object_at heap addr with
              | Some target ->
                if not target.Obj_model.marked then
                  invalid_arg "Adjust.run: live object references a dead one";
                refs.(i) <- target.Obj_model.forward
              | None ->
                invalid_arg
                  (Printf.sprintf "Adjust.run: dangling reference 0x%x" addr))
          refs;
        costs.(n - 1 - idx) <-
          cost.Cost_model.adjust_obj_ns
          +. (float_of_int (Array.length refs) *. cost.Cost_model.ref_scan_ns)
      done);
  Svagc_par.Work_steal.makespan ~threads ~steal_ns:cost.Cost_model.steal_ns
    ~barrier_ns:cost.Cost_model.barrier_ns costs
