(** Phase I — marking.

    Depth-first traversal from the roots setting the mark bit of every
    reachable object.  Cost per visited object is one dependent memory
    access (graph walks are cache-hostile) plus one scan per reference
    slot; the phase time is the work-stealing makespan across the GC
    threads.

    Host parallelism (DESIGN.md §13): the flag-clear sweep fans out over
    [threads] shards on the global [Svagc_par.Domain_pool] — each shard
    clears a disjoint slice of distinct object records, nothing to
    merge.  The traversal itself stays on the calling domain: discovery
    order defines the cost-vector order the simulated schedule replays,
    so parallelizing it would change published makespans. *)

open Svagc_heap

val run : Heap.t -> threads:int -> float
(** Marks reachable objects in place and returns the phase time in ns.
    All mark bits are cleared first. *)

val live_objects : Heap.t -> Obj_model.t list
(** Marked objects, in arbitrary order (valid after {!run}). *)
