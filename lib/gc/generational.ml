open Svagc_heap
module Addr = Svagc_vmem.Addr
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model
module Vec = Svagc_util.Vec
module Process = Svagc_kernel.Process

type t = {
  proc : Process.t;
  young : Heap.t;
  old_space : Heap.t;
  threads : int;
  mutable minors : minor_stats list;
  mutable fulls : Gc_stats.cycle list;
}

and minor_stats = {
  pause_ns : float;
  promoted_objects : int;
  promoted_bytes : int;
  swapped_objects : int;
  reclaimed_bytes : int;
}

exception Out_of_memory

let gib = 1024 * 1024 * 1024

let create proc ?(threshold_pages = 10) ~young_bytes ~old_bytes () =
  let young =
    Heap.create proc ~base:(4 * gib) ~threshold_pages ~size_bytes:young_bytes ()
  in
  let old_space =
    Heap.create proc ~base:(8 * gib) ~threshold_pages ~size_bytes:old_bytes ()
  in
  { proc; young; old_space; threads = 4; minors = []; fulls = [] }

let young t = t.young
let old_space t = t.old_space
let minors t = List.rev t.minors
let fulls t = List.rev t.fulls

let in_young t addr = addr >= Heap.base t.young && addr < Heap.limit t.young

let lookup t addr =
  if addr = 0 then None
  else if in_young t addr then Heap.object_at t.young addr
  else Heap.object_at t.old_space addr

let add_root t obj =
  if in_young t obj.Obj_model.addr then Heap.add_root t.young obj
  else Heap.add_root t.old_space obj

let remove_root t obj =
  Heap.remove_root t.young obj;
  Heap.remove_root t.old_space obj

let set_ref t obj ~slot target = Heap.set_ref t.young obj ~slot target

let deref t obj ~slot =
  let addr = obj.Obj_model.refs.(slot) in
  match lookup t addr with
  | Some o -> Some o
  | None ->
    if addr = 0 then None
    else invalid_arg "Generational.deref: dangling reference (GC bug)"

let cost t = (Process.machine t.proc).Machine.cost

let makespan t costs =
  Svagc_par.Work_steal.makespan ~threads:t.threads
    ~steal_ns:(cost t).Cost_model.steal_ns
    ~barrier_ns:(cost t).Cost_model.barrier_ns (Array.of_list costs)

(* Young reachability: nursery roots plus every old->young reference (the
   remembered-set scan, whose cost is charged per old object examined). *)
let mark_young t =
  Vec.iter (fun o -> o.Obj_model.marked <- false) (Heap.objects t.young);
  let work = Vec.create () in
  Heap.iter_roots t.young (fun o -> Vec.push work o);
  let scan_costs = ref [] in
  Vec.iter
    (fun old_obj ->
      scan_costs := (cost t).Cost_model.forward_obj_ns :: !scan_costs;
      Array.iter
        (fun addr ->
          if addr <> 0 && in_young t addr then
            match Heap.object_at t.young addr with
            | Some o -> Vec.push work o
            | None -> invalid_arg "Generational: stale old->young reference")
        old_obj.Obj_model.refs)
    (Heap.objects t.old_space);
  let mark_costs = ref [] in
  let rec drain () =
    match Vec.pop work with
    | None -> ()
    | Some o ->
      if not o.Obj_model.marked then begin
        o.Obj_model.marked <- true;
        mark_costs :=
          ((cost t).Cost_model.mark_obj_ns
          +. float_of_int (Array.length o.Obj_model.refs)
             *. (cost t).Cost_model.ref_scan_ns)
          :: !mark_costs;
        Array.iter
          (fun addr ->
            if addr <> 0 && in_young t addr then
              match Heap.object_at t.young addr with
              | Some target ->
                if not target.Obj_model.marked then Vec.push work target
              | None -> invalid_arg "Generational: dangling young reference")
          o.Obj_model.refs
      end;
      drain ()
  in
  drain ();
  makespan t !scan_costs +. makespan t !mark_costs

(* Exact old-space capacity needed to promote [live] (replays the reserve
   arithmetic without committing). *)
let promotion_demand t live =
  let threshold = Heap.threshold_pages t.old_space in
  let top = ref (Heap.top t.old_space) in
  List.iter
    (fun o ->
      let align a =
        if Obj_model.is_large o ~threshold_pages:threshold then Addr.align_up a
        else a
      in
      top := align !top + o.Obj_model.size;
      top := align !top)
    live;
  !top - Heap.top t.old_space

module Tracer = Svagc_trace.Tracer

let run_minor t ~mover =
  let used_before = Heap.used_bytes t.young in
  let mark_ns = mark_young t in
  Heap.sort_objects t.young;
  let live =
    Vec.fold_left
      (fun acc o -> if o.Obj_model.marked then o :: acc else acc)
      [] (Heap.objects t.young)
    |> List.rev
  in
  if promotion_demand t live > Heap.free_bytes t.old_space then raise Heap.Heap_full;
  (* Forward: destinations in the old space (Algorithm 3 placement). *)
  let forward = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let dst = Heap.reserve t.old_space ~size:o.Obj_model.size in
      o.Obj_model.forward <- dst;
      Hashtbl.replace forward o.Obj_model.addr dst)
    live;
  (* Copy/swap young -> old: disjoint spaces, so the overlap path never
     fires; aggregation and PMD caching apply (Table I row 2). *)
  let entries =
    List.map
      (fun o ->
        { Compact.obj = o; src = o.Obj_model.addr; dst = o.Obj_model.forward;
          len = o.Obj_model.size })
      live
  in
  let fixed = mover.Compact.prologue t.young in
  let outcomes = mover.Compact.move_entries t.young entries in
  let fixed = fixed +. mover.Compact.epilogue t.young in
  let copy_ns =
    makespan t (List.map (fun o -> o.Compact.cost_ns) outcomes) +. fixed
  in
  let swapped_objects =
    List.fold_left (fun n o -> if o.Compact.swapped then n + 1 else n) 0 outcomes
  in
  (* Commit: adopt survivors in the old space, keep rootedness. *)
  let adjust_costs = ref [] in
  List.iter
    (fun o ->
      let was_root =
        let rooted = ref false in
        Heap.iter_roots t.young (fun r -> if r == o then rooted := true);
        !rooted
      in
      o.Obj_model.addr <- o.Obj_model.forward;
      o.Obj_model.forward <- 0;
      o.Obj_model.marked <- false;
      Heap.adopt t.old_space o;
      if was_root then Heap.add_root t.old_space o)
    live;
  (* Rewrite every reference to a promoted object (old objects' refs and
     the promoted objects' own young-to-young links). *)
  Vec.iter
    (fun o ->
      adjust_costs := (cost t).Cost_model.adjust_obj_ns :: !adjust_costs;
      Array.iteri
        (fun i addr ->
          match Hashtbl.find_opt forward addr with
          | Some fresh -> o.Obj_model.refs.(i) <- fresh
          | None -> ())
        o.Obj_model.refs)
    (Heap.objects t.old_space);
  let adjust_ns = makespan t !adjust_costs in
  Heap.reset t.young;
  let promoted_bytes =
    List.fold_left (fun acc o -> acc + o.Obj_model.size) 0 live
  in
  let stats =
    {
      pause_ns = mark_ns +. copy_ns +. adjust_ns;
      promoted_objects = List.length live;
      promoted_bytes;
      swapped_objects;
      reclaimed_bytes = max 0 (used_before - promoted_bytes);
    }
  in
  t.minors <- stats :: t.minors;
  stats

(* A minor collection is one span; promotion-overflow aborts the span
   (the caller falls back to an old-space collection). *)
let minor t ~mover =
  Tracer.span_begin ~cat:"gc" "minor";
  match run_minor t ~mover with
  | stats ->
    Tracer.span_end
      ~args:
        [
          ("promoted_objects", Svagc_trace.Event.Int stats.promoted_objects);
          ("promoted_bytes", Svagc_trace.Event.Int stats.promoted_bytes);
          ("swapped_objects", Svagc_trace.Event.Int stats.swapped_objects);
        ]
      ~dur_ns:stats.pause_ns ();
    stats
  | exception e ->
    Tracer.span_abort ();
    raise e

(* Old-space collection while the nursery is still populated: young
   objects act as extra roots into the old space, their references are
   adjusted alongside, and young objects themselves do not move. *)
let run_collect_old_with_young t ~mover =
  let top_before = Heap.top t.old_space in
  Vec.iter (fun o -> o.Obj_model.marked <- false) (Heap.objects t.old_space);
  let work = Vec.create () in
  Heap.iter_roots t.old_space (fun o -> Vec.push work o);
  Vec.iter
    (fun young_obj ->
      Array.iter
        (fun addr ->
          if addr <> 0 && not (in_young t addr) then
            match Heap.object_at t.old_space addr with
            | Some o -> Vec.push work o
            | None -> invalid_arg "Generational: stale young->old reference")
        young_obj.Obj_model.refs)
    (Heap.objects t.young);
  let mark_costs = ref [] in
  let rec drain () =
    match Vec.pop work with
    | None -> ()
    | Some o ->
      if not o.Obj_model.marked then begin
        o.Obj_model.marked <- true;
        mark_costs :=
          ((cost t).Cost_model.mark_obj_ns
          +. float_of_int (Array.length o.Obj_model.refs)
             *. (cost t).Cost_model.ref_scan_ns)
          :: !mark_costs;
        Array.iter
          (fun addr ->
            if addr <> 0 && not (in_young t addr) then
              match Heap.object_at t.old_space addr with
              | Some target ->
                if not target.Obj_model.marked then Vec.push work target
              | None -> invalid_arg "Generational: dangling old reference")
          o.Obj_model.refs
      end;
      drain ()
  in
  drain ();
  let mark_ns = makespan t !mark_costs in
  let fwd = Forward.run t.old_space ~threads:t.threads in
  (* Adjust: old-live references to moving old objects, skipping young
     targets (young does not move here); plus young objects' references to
     moving old objects. *)
  let adjust_one o =
    Array.iteri
      (fun i addr ->
        if addr <> 0 && not (in_young t addr) then
          match Heap.object_at t.old_space addr with
          | Some target -> o.Obj_model.refs.(i) <- target.Obj_model.forward
          | None -> invalid_arg "Generational: dangling reference in adjust")
      o.Obj_model.refs;
    (cost t).Cost_model.adjust_obj_ns
    +. float_of_int (Array.length o.Obj_model.refs)
       *. (cost t).Cost_model.ref_scan_ns
  in
  let adjust_costs =
    List.map adjust_one fwd.Forward.live
    @ Vec.to_list (Vec.map adjust_one (Heap.objects t.young))
  in
  let adjust_ns = makespan t adjust_costs in
  let live_objects = List.length fwd.Forward.live in
  let live_bytes =
    List.fold_left (fun acc o -> acc + o.Obj_model.size) 0 fwd.Forward.live
  in
  let compact =
    Compact.run t.old_space ~threads:t.threads ~mover ~live:fwd.Forward.live
      ~new_top:fwd.Forward.new_top
  in
  {
    Gc_stats.mark_ns;
    forward_ns = fwd.Forward.phase_ns;
    adjust_ns;
    compact_ns = compact.Compact.phase_ns;
    concurrent_ns = 0.0;
    live_objects;
    live_bytes;
    reclaimed_bytes = max 0 (top_before - fwd.Forward.new_top);
    moved_objects = compact.Compact.moved_objects;
    swapped_objects = compact.Compact.swapped_objects;
    bytes_copied = 0;
    bytes_remapped = 0;
  }

let collect_old_with_young t ~mover =
  Tracer.span_begin ~cat:"gc" "generational-old";
  match run_collect_old_with_young t ~mover with
  | cycle ->
    Tracer.span_end
      ~args:[ ("live_objects", Svagc_trace.Event.Int cycle.Gc_stats.live_objects) ]
      ~dur_ns:(Gc_stats.pause_ns cycle) ();
    cycle
  | exception e ->
    Tracer.span_abort ();
    raise e

(* Full collection: evacuate the nursery first when promotion fits (the
   usual "full implies young collection" policy); otherwise collect the
   old space with the nursery treated as roots, which frees the headroom
   the next minor needs. *)
let full t ~mover =
  let cycle =
    match
      if Heap.object_count t.young > 0 then Some (minor t ~mover) else None
    with
    | Some m ->
      let cfg =
        Lisp2.config ~label:"generational-full" ~threads:t.threads ~mover ()
      in
      let cycle = Lisp2.collect cfg t.old_space in
      { cycle with Gc_stats.compact_ns = cycle.Gc_stats.compact_ns +. m.pause_ns }
    | None ->
      let cfg =
        Lisp2.config ~label:"generational-full" ~threads:t.threads ~mover ()
      in
      Lisp2.collect cfg t.old_space
    | exception Heap.Heap_full -> collect_old_with_young t ~mover
  in
  t.fulls <- cycle :: t.fulls;
  cycle

let alloc t ~size ~n_refs ~cls =
  let try_young () = Heap.alloc t.young ~size ~n_refs ~cls in
  let mover = Compact.memmove_mover in
  match try_young () with
  | obj -> obj
  | exception Heap.Heap_full -> (
    match minor t ~mover with
    | _ -> (
      match try_young () with
      | obj -> obj
      | exception Heap.Heap_full ->
        (* Bigger than the nursery can hold: pretenure into the old
           space. *)
        (try Heap.alloc t.old_space ~size ~n_refs ~cls
         with Heap.Heap_full -> raise Out_of_memory))
    | exception Heap.Heap_full -> (
      (* Promotion would not fit: collect the old space, then retry the
         minor via the allocation path. *)
      ignore (full t ~mover);
      match try_young () with
      | obj -> obj
      | exception Heap.Heap_full -> (
        try Heap.alloc t.old_space ~size ~n_refs ~cls
        with Heap.Heap_full -> raise Out_of_memory)))
