open Svagc_heap
module Vec = Svagc_util.Vec
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model

(* The flag-clear sweep is the data-parallel part of marking: every object
   record is distinct and the sweep produces no value, so each shard can
   clear a disjoint [Reduce.slice] of the object vec on its own domain with
   nothing to merge.  The traversal below stays sequential on purpose —
   mark order defines the cost-vector order the simulated schedule replays
   (DESIGN.md §13). *)
let clear_marks heap ~shards =
  let objs = Heap.objects heap in
  let n = Vec.length objs in
  Svagc_par.Domain_pool.run
    (Svagc_par.Domain_pool.global ())
    ~shards
    (fun s ->
      let lo, hi = Svagc_par.Reduce.slice ~len:n ~shards s in
      for idx = lo to hi - 1 do
        (Vec.get objs idx).Obj_model.marked <- false
      done)

let run heap ~threads =
  let machine = Svagc_kernel.Process.machine (Heap.proc heap) in
  let cost = machine.Machine.cost in
  clear_marks heap ~shards:threads;
  let costs = Vec.create () in
  let stack = Vec.create () in
  Heap.iter_roots heap (fun o -> Vec.push stack o);
  let visit o =
    if not o.Obj_model.marked then begin
      o.Obj_model.marked <- true;
      let refs = o.Obj_model.refs in
      Vec.push costs
        (cost.Cost_model.mark_obj_ns
        +. (float_of_int (Array.length refs) *. cost.Cost_model.ref_scan_ns));
      Array.iter
        (fun addr ->
          if addr <> 0 then
            match Heap.object_at heap addr with
            | Some target -> if not target.Obj_model.marked then Vec.push stack target
            | None ->
              invalid_arg
                (Printf.sprintf "Mark.run: dangling reference 0x%x (GC bug)" addr))
        refs
    end
  in
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some o ->
      visit o;
      drain ()
  in
  drain ();
  Svagc_par.Work_steal.makespan ~threads ~steal_ns:cost.Cost_model.steal_ns
    ~barrier_ns:cost.Cost_model.barrier_ns (Vec.to_array costs)

let live_objects heap =
  Vec.fold_left
    (fun acc o -> if o.Obj_model.marked then o :: acc else acc)
    [] (Heap.objects heap)
