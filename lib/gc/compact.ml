open Svagc_heap
module Vec = Svagc_util.Vec
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model
module Process = Svagc_kernel.Process

(* Compact stays on the calling domain (DESIGN.md §13): moves slide
   objects in ascending address order (a later move may read the bytes an
   earlier one vacated), and the SwapVA mover's walk-cache and
   pmd_cache_hits counters carry temporal state between consecutive
   requests — fanning the move stream out would change counters and costs,
   breaking bit-identity.  Host parallelism enters through the phases that
   are genuinely data-parallel (mark's clear sweep, adjust's rewrites,
   Par_sweep). *)

type entry = {
  obj : Obj_model.t;
  src : int;
  dst : int;
  len : int;
}

type move_outcome = {
  cost_ns : float;
  swapped : bool;
}

type mover = {
  mover_name : string;
  prologue : Heap.t -> float;
  move_entries : Heap.t -> entry list -> move_outcome list;
  epilogue : Heap.t -> float;
}

type result = {
  phase_ns : float;
  moved_objects : int;
  swapped_objects : int;
}

let memmove_mover_gen ?measure_core () =
  {
    mover_name = "memmove";
    prologue = (fun _ -> 0.0);
    move_entries =
      (fun heap entries ->
        let aspace = Process.aspace (Heap.proc heap) in
        List.map
          (fun { src; dst; len; _ } ->
            let cost_ns =
              Svagc_kernel.Memmove.move ?measure_core ~cold:true aspace ~src ~dst
                ~len
            in
            { cost_ns; swapped = false })
          entries);
    epilogue = (fun _ -> 0.0);
  }

let memmove_mover = memmove_mover_gen ()

let memmove_mover_measured ~core = memmove_mover_gen ~measure_core:core ()

let run heap ~threads ~mover ~live ~new_top =
  let machine = Process.machine (Heap.proc heap) in
  let cost = machine.Machine.cost in
  let plan =
    List.filter_map
      (fun obj ->
        let src = obj.Obj_model.addr and dst = obj.Obj_model.forward in
        if src = dst then None
        else Some { obj; src; dst; len = obj.Obj_model.size })
      live
  in
  let fixed = mover.prologue heap in
  (* [threads] copy streams run concurrently during this phase: fold them
     into the machine's contention level so per-task copy costs reflect
     each thread's share of the bandwidth ceiling (the makespan then
     recombines them, saturating at machine_copy_bw). *)
  let saved_streams = machine.Machine.copy_streams in
  machine.Machine.copy_streams <- saved_streams * max 1 threads;
  let outcomes =
    Fun.protect
      ~finally:(fun () -> machine.Machine.copy_streams <- saved_streams)
      (fun () -> mover.move_entries heap plan)
  in
  let fixed = fixed +. mover.epilogue heap in
  (* Commit the new addresses and re-stamp nothing: bytes moved with the
     objects, so the stamped headers must still match (tests rely on it). *)
  List.iter (fun { obj; dst; _ } -> obj.Obj_model.addr <- dst) plan;
  let swapped_objects =
    List.fold_left (fun acc o -> if o.swapped then acc + 1 else acc) 0 outcomes
  in
  (* Prune dead objects, keep the survivors (already address-ordered). *)
  let survivors = Vec.of_list live in
  let objects = Heap.objects heap in
  Vec.clear objects;
  Vec.iter
    (fun o ->
      o.Obj_model.marked <- false;
      o.Obj_model.forward <- 0;
      Vec.push objects o)
    survivors;
  Heap.rebuild_index heap;
  Heap.set_top heap new_top;
  let costs = Array.of_list (List.map (fun o -> o.cost_ns) outcomes) in
  let makespan =
    Svagc_par.Work_steal.makespan ~threads ~steal_ns:cost.Cost_model.steal_ns
      ~barrier_ns:cost.Cost_model.barrier_ns costs
  in
  {
    phase_ns = makespan +. fixed;
    moved_objects = List.length plan;
    swapped_objects;
  }
