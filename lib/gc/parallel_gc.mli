(** The ParallelGC baseline: a throughput-oriented stop-the-world collector
    whose full GC runs all four LISP2 phases in parallel with byte-copy
    compaction (the cost structure the paper attributes to OpenJDK's
    ParallelGC full collections).

    "Parallel" means two different things here, deliberately kept apart
    (DESIGN.md §13): phase {e makespans} are simulated work-stealing
    schedules over [threads] workers ([Svagc_par.Work_steal]), while the
    phases' data-parallel {e side effects} (mark's flag-clear sweep,
    adjust's pointer rewrites) additionally execute on real host domains
    through [Svagc_par.Domain_pool] — with observable outputs
    bit-identical at any domain count. *)

open Svagc_heap

val collector : ?threads:int -> Heap.t -> Gc_intf.t
(** [threads] defaults to 4 — the paper tunes [GCThreadsCount] to 4 in the
    multi-JVM experiments. *)
