(** Phase III — adjusting pointers.

    Every reference slot of every live object is rewritten to the
    forwarding address its target computed in phase II.  (Roots are OCaml
    records in this simulator and follow their objects implicitly; the
    per-object cost still charges the root-set fixups a real VM performs.)

    Host parallelism (DESIGN.md §13): the rewrites fan out over
    [threads] shards on the global [Svagc_par.Domain_pool] — each live
    object rewrites only its own refs array, and the per-object costs
    are written by absolute index into the cost vector, so the replayed
    makespan is bit-identical to the sequential implementation at any
    domain count. *)

open Svagc_heap

val run : Heap.t -> threads:int -> live:Obj_model.t list -> float
(** Returns the phase time in ns. *)
