open Svagc_heap
module Vec = Svagc_util.Vec
module Addr = Svagc_vmem.Addr
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model

type result = {
  phase_ns : float;
  new_top : int;
  waste_bytes : int;
  live : Obj_model.t list;
}

(* Forward stays on the calling domain (DESIGN.md §13): the new address of
   each object is a prefix sum over all earlier live objects in address
   order (with alignment rounding), an inherently sequential dependence —
   the paper's real VM parallelizes it with per-region precomputation the
   simulator has no need for. *)
let run heap ~threads =
  let machine = Svagc_kernel.Process.machine (Heap.proc heap) in
  let cost = machine.Machine.cost in
  Heap.sort_objects heap;
  let threshold = Heap.threshold_pages heap in
  let if_swap_align obj addr =
    if Obj_model.is_large obj ~threshold_pages:threshold then Addr.align_up addr
    else addr
  in
  let comp_pnt = ref (Heap.base heap) in
  let waste = ref 0 in
  let live_rev = ref [] in
  let count = ref 0 in
  Vec.iter
    (fun obj ->
      if obj.Obj_model.marked then begin
        let aligned = if_swap_align obj !comp_pnt in
        waste := !waste + (aligned - !comp_pnt);
        obj.Obj_model.forward <- aligned;
        comp_pnt := aligned + obj.Obj_model.size;
        let tail_aligned = if_swap_align obj !comp_pnt in
        waste := !waste + (tail_aligned - !comp_pnt);
        comp_pnt := tail_aligned;
        live_rev := obj :: !live_rev;
        incr count
      end)
    (Heap.objects heap);
  let costs = Array.make !count cost.Cost_model.forward_obj_ns in
  let phase_ns =
    Svagc_par.Work_steal.makespan ~threads ~steal_ns:cost.Cost_model.steal_ns
      ~barrier_ns:cost.Cost_model.barrier_ns costs
  in
  { phase_ns; new_top = !comp_pnt; waste_bytes = !waste; live = List.rev !live_rev }
