open Svagc_heap
module Machine = Svagc_vmem.Machine
module Perf = Svagc_vmem.Perf

type config = {
  label : string;
  threads : int;
  compact_threads : int;
  mover : Compact.mover;
  concurrent_mark_fraction : float;
}

let config ?(label = "lisp2") ?(threads = 4) ?compact_threads
    ?(mover = Compact.memmove_mover) ?(concurrent_mark_fraction = 0.0) () =
  if threads <= 0 then invalid_arg "Lisp2.config: threads must be positive";
  if concurrent_mark_fraction < 0.0 || concurrent_mark_fraction > 1.0 then
    invalid_arg "Lisp2.config: fraction out of range";
  {
    label;
    threads;
    compact_threads =
      (match compact_threads with Some c -> c | None -> threads);
    mover;
    concurrent_mark_fraction;
  }

module Tracer = Svagc_trace.Tracer
module Event = Svagc_trace.Event

let collect cfg heap =
  let machine = Svagc_kernel.Process.machine (Heap.proc heap) in
  let before = Perf.copy machine.Machine.perf in
  let top_before = Heap.top heap in
  (* The whole cycle is one span named after the collector, with the four
     LISP2 phases as child spans.  Span durations are the simulated phase
     makespans; the recorder attaches perf-counter deltas to each span. *)
  Tracer.span_begin ~cat:"gc"
    ~args:[ ("threads", Event.Int cfg.threads) ]
    cfg.label;
  Tracer.span_begin ~cat:"gc" "mark";
  let mark_total = Mark.run heap ~threads:cfg.threads in
  let concurrent_ns = mark_total *. cfg.concurrent_mark_fraction in
  let mark_ns = mark_total -. concurrent_ns in
  Tracer.span_end
    ~args:[ ("concurrent_ns", Event.Float concurrent_ns) ]
    ~dur_ns:mark_ns ();
  Tracer.span_begin ~cat:"gc" "forward";
  let fwd = Forward.run heap ~threads:cfg.threads in
  Tracer.span_end ~dur_ns:fwd.Forward.phase_ns ();
  Tracer.span_begin ~cat:"gc" "adjust";
  let adjust_ns = Adjust.run heap ~threads:cfg.threads ~live:fwd.Forward.live in
  Tracer.span_end ~dur_ns:adjust_ns ();
  let live_objects = List.length fwd.Forward.live in
  let live_bytes =
    List.fold_left (fun acc o -> acc + o.Obj_model.size) 0 fwd.Forward.live
  in
  Tracer.span_begin ~cat:"gc" "compact";
  let compact =
    Compact.run heap ~threads:cfg.compact_threads ~mover:cfg.mover
      ~live:fwd.Forward.live ~new_top:fwd.Forward.new_top
  in
  Tracer.span_end
    ~args:
      [
        ("moved_objects", Event.Int compact.Compact.moved_objects);
        ("swapped_objects", Event.Int compact.Compact.swapped_objects);
      ]
    ~dur_ns:compact.Compact.phase_ns ();
  let delta = Perf.diff ~after:machine.Machine.perf ~before in
  let cycle =
    {
      Gc_stats.mark_ns;
      forward_ns = fwd.Forward.phase_ns;
      adjust_ns;
      compact_ns = compact.Compact.phase_ns;
      concurrent_ns;
      live_objects;
      live_bytes;
      reclaimed_bytes = max 0 (top_before - fwd.Forward.new_top);
      moved_objects = compact.Compact.moved_objects;
      swapped_objects = compact.Compact.swapped_objects;
      bytes_copied = delta.Perf.bytes_copied;
      bytes_remapped = delta.Perf.bytes_remapped;
    }
  in
  Tracer.span_end
    ~args:
      [
        ("live_objects", Event.Int live_objects);
        ("live_bytes", Event.Int live_bytes);
        ("reclaimed_bytes", Event.Int cycle.Gc_stats.reclaimed_bytes);
      ]
    ~dur_ns:(Gc_stats.pause_ns cycle) ();
  cycle

let collector cfg heap = Gc_intf.make ~name:cfg.label heap (fun () -> collect cfg heap)
