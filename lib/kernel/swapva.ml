open Svagc_vmem

type opts = {
  pmd_caching : bool;
  flush : Shootdown.policy;
  allow_overlap : bool;
  leaf_swap : bool;
}

let default_opts =
  {
    pmd_caching = true;
    flush = Shootdown.Local_pinned;
    allow_overlap = true;
    leaf_swap = false;
  }

let naive_opts =
  {
    pmd_caching = false;
    flush = Shootdown.Broadcast_per_call;
    allow_overlap = false;
    leaf_swap = false;
  }

type request = {
  src : int;
  dst : int;
  pages : int;
}

let ranges_overlap { src; dst; pages } =
  let len = pages * Addr.page_size in
  let lo = min src dst and hi = max src dst in
  hi < lo + len

module Kernel_error = Svagc_fault.Kernel_error

(* Kernel internals signal failure by raising [Kernel_error.Fault]; the
   syscall boundary ([swap] / [swap_aggregated]) catches it and returns the
   payload as a typed error.  Every raise below precedes all PTE mutation
   for its request, which is what lets the boundary promise "Error implies
   no mutation". *)
let kerror e = raise (Kernel_error.Fault e)

let validate { src; dst; pages } =
  if pages <= 0 then kerror (Kernel_error.EINVAL_bad_pages { pages });
  if not (Addr.is_page_aligned src) then
    kerror (Kernel_error.EINVAL_unaligned { va = src });
  if not (Addr.is_page_aligned dst) then
    kerror (Kernel_error.EINVAL_unaligned { va = dst });
  if src = dst then kerror Kernel_error.EINVAL_identical

let unmapped ~va () = kerror (Kernel_error.EFAULT_unmapped { va })

(* The body of Algorithm 1 for one request, page by page.  Kept as the
   executable reference for the run-coalesced engine below: property tests
   assert that both produce identical heap contents, perf-counter deltas
   and bit-identical simulated cost.  Returns the PTE-work cost (no
   syscall/flush). *)
let swap_disjoint_per_page proc ~pmd_caching req =
  let machine = Process.machine proc in
  let aspace = Process.aspace proc in
  let pt = Address_space.page_table aspace in
  let perf = machine.Machine.perf in
  (* vma-style precheck, charged via swap_setup_ns by the caller.  Mapped
     means present OR swapped out: SwapVA exchanges PTE words, and
     exchanging a swap entry just moves the slot reference — no swap-in,
     no device IO.  Only a genuinely absent page is EFAULT. *)
  for i = 0 to req.pages - 1 do
    let off = i * Addr.page_size in
    if not (Pte.is_mapped (Page_table.get_pte pt (req.src + off))) then
      unmapped ~va:(req.src + off) ();
    if not (Pte.is_mapped (Page_table.get_pte pt (req.dst + off))) then
      unmapped ~va:(req.dst + off) ()
  done;
  let walker = Pte_walker.create machine pt ~pmd_caching in
  for i = 0 to req.pages - 1 do
    let off = i * Addr.page_size in
    let slot1 = Pte_walker.get_pte walker (req.src + off) in
    let slot2 = Pte_walker.get_pte walker (req.dst + off) in
    Pte_walker.charge_lock_pair walker;
    Pte_walker.charge_lock_pair walker;
    let pte1 = Pte_walker.read_slot walker slot1 in
    let pte2 = Pte_walker.read_slot walker slot2 in
    Pte_walker.write_slot walker slot1 pte2;
    Pte_walker.write_slot walker slot2 pte1;
    perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 2
  done;
  perf.Perf.bytes_remapped <-
    perf.Perf.bytes_remapped + (req.pages * Addr.page_size);
  Pte_walker.cost_ns walker

(* Resolve [pages] pages starting at [va] into (leaf, start, len) slices —
   one directory probe per PMD leaf instead of one per page — verifying
   along the way that every PTE is present.  Raising here precedes all
   mutation, so a bad range can never leave a half-swapped window behind
   (same guarantee, and same error, as the per-page precheck above).
   Resolution and presence checking model the vma walk whose cost is the
   caller's swap_setup_ns, so no walker cost is charged.

   [fault] is the machine's injection plane (only the syscall path passes
   it; the public engines stay injection-free so they remain usable as
   oracles).  Its [pte] clause is consulted once per page, in address
   order, and a firing reports the page as [EFAULT_unmapped] exactly as a
   racing unmap would — still strictly before any mutation. *)
let resolve_present_runs ?(fault = None) pt ~va ~pages =
  let runs = ref [] and n_runs = ref 0 in
  let absent = Pte.none in
  let cursor = ref va and remaining = ref pages in
  while !remaining > 0 do
    match Page_table.find_leaf_run pt !cursor ~max_pages:!remaining with
    | None -> unmapped ~va:!cursor ()
    | Some (leaf, start, len) ->
      let stop = start + len in
      (match fault with
      | None ->
        (* [find_leaf_run] guarantees [start + len <= Array.length leaf];
           this scan visits every page of every swap, so skip the per-read
           bounds check and compare against the hoisted absent value rather
           than calling [Pte.is_present] per page. *)
        let i = ref start in
        while !i < stop && Array.unsafe_get leaf !i <> absent do
          incr i
        done;
        if !i < stop then unmapped ~va:(!cursor + ((!i - start) * Addr.page_size)) ()
      | Some inj ->
        for i = start to stop - 1 do
          let page_va = !cursor + ((i - start) * Addr.page_size) in
          if
            Array.unsafe_get leaf i = absent
            || Svagc_fault.Injector.fire inj
                 ~site:Svagc_fault.Fault_spec.Pte_resolve ~va:page_va
          then unmapped ~va:page_va ()
        done);
      runs := (leaf, start, len) :: !runs;
      incr n_runs;
      cursor := !cursor + (len * Addr.page_size);
      remaining := !remaining - len
  done;
  (Array.of_list (List.rev !runs), !n_runs)

(* Run-coalesced body of Algorithm 1: same observable behaviour and
   simulated cost as [swap_disjoint_per_page], paid for with one directory
   walk per 512-page leaf instead of two walks + two cache probes per page.
   PTE slices are exchanged with tight array loops; the per-page cost-model
   charges are emulated exactly (head pages one at a time until both
   streams sit in the PMD cache, then whole sub-runs in bulk).

   With [leaf_swap] (the opt-in pmd_leaf_swap mode) sub-runs that cover a
   whole PMD-aligned 512-page leaf on both sides are exchanged at the PMD
   directory level in O(1) simulated cost — this mode deliberately changes
   the cost model and is excluded from the equivalence guarantee. *)
let swap_disjoint_runs ?(fault = None) proc ~pmd_caching ~leaf_swap req =
  let machine = Process.machine proc in
  let aspace = Process.aspace proc in
  let pt = Address_space.page_table aspace in
  let perf = machine.Machine.perf in
  let cost = machine.Machine.cost in
  let ps = Addr.page_size in
  let src_runs, n_src =
    resolve_present_runs ~fault pt ~va:req.src ~pages:req.pages
  in
  let dst_runs, n_dst =
    resolve_present_runs ~fault pt ~va:req.dst ~pages:req.pages
  in
  perf.Perf.leaf_runs <- perf.Perf.leaf_runs + n_src + n_dst;
  let walker = Pte_walker.create machine pt ~pmd_caching in
  let si = ref 0 and soff = ref 0 in
  let di = ref 0 and doff = ref 0 in
  let done_pages = ref 0 in
  while !done_pages < req.pages do
    let ls, ss, ns = src_runs.(!si) in
    let ld, ds, nd = dst_runs.(!di) in
    let avail = min (ns - !soff) (nd - !doff) in
    let src_va = req.src + (!done_pages * ps) in
    let dst_va = req.dst + (!done_pages * ps) in
    if
      leaf_swap && avail = Addr.pages_per_pmd && ss = 0 && ds = 0 && !soff = 0
      && !doff = 0
    then begin
      (* Whole-leaf fast path: exchange the two PMD directory entries. *)
      Page_table.swap_pmd_entries pt src_va dst_va;
      Pte_walker.add_cost walker cost.Cost_model.pmd_swap_ns;
      perf.Perf.pmd_leaf_swaps <- perf.Perf.pmd_leaf_swaps + 1;
      perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 2
    end
    else begin
      (* Head pages: emulate the reference loop page-at-a-time until both
         streams are sure PMD-cache hits (at most a couple of pages). *)
      let k = ref 0 in
      if pmd_caching then
        while
          !k < avail
          && not
               (Pte_walker.cache_holds walker (src_va + (!k * ps))
               && Pte_walker.cache_holds walker (dst_va + (!k * ps)))
        do
          Pte_walker.charge_get_pte walker (src_va + (!k * ps)) ~leaf:ls;
          Pte_walker.charge_get_pte walker (dst_va + (!k * ps)) ~leaf:ld;
          Pte_walker.charge_lock_pair walker;
          Pte_walker.charge_lock_pair walker;
          let slot1 = (ls, ss + !soff + !k) in
          let slot2 = (ld, ds + !doff + !k) in
          let pte1 = Pte_walker.read_slot walker slot1 in
          let pte2 = Pte_walker.read_slot walker slot2 in
          Pte_walker.write_slot walker slot1 pte2;
          Pte_walker.write_slot walker slot2 pte1;
          incr k
        done;
      (* Steady remainder of the sub-run: slice exchange + bulk charge. *)
      let bulk = avail - !k in
      if bulk > 0 then begin
        Pte_walker.charge_steady_swap_pages walker ~pages:bulk
          ~cached:pmd_caching;
        Page_table.swap_pte_runs ls ~start_a:(ss + !soff + !k) ld
          ~start_b:(ds + !doff + !k) ~len:bulk
      end;
      perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + (2 * avail)
    end;
    done_pages := !done_pages + avail;
    soff := !soff + avail;
    if !soff = ns then begin
      incr si;
      soff := 0
    end;
    doff := !doff + avail;
    if !doff = nd then begin
      incr di;
      doff := 0
    end
  done;
  perf.Perf.bytes_remapped <-
    perf.Perf.bytes_remapped + (req.pages * Addr.page_size);
  Pte_walker.cost_ns walker

let swap_disjoint_run ?(leaf_swap = false) proc ~pmd_caching req =
  swap_disjoint_runs proc ~pmd_caching ~leaf_swap req

(* Flat-path resolver: same slicing and same first-failure order as
   [resolve_present_runs] (leaf missing -> EFAULT at the cursor; absent
   page -> EFAULT at that page; both strictly before any mutation), but
   slices land in a reusable int-packed [run_buf] (no list/tuple/array
   allocation) and presence is prechecked against the leaf's bitset
   words — O(1) for a fully-mapped leaf — instead of loading every PTE.
   With an injector installed the per-page consult loop must run in
   address order with the exact absent-before-fire short-circuit of the
   reference resolver, so that path still reads each PTE. *)
let resolve_mapped_slices ?(fault = None) pt ~va ~pages ~buf =
  let absent = Pte.none in
  let ps = Addr.page_size in
  Page_table.(
    let cursor = ref va and remaining = ref pages in
    run_buf_clear buf;
    while !remaining > 0 do
      match find_leaf_record pt !cursor with
      | None -> unmapped ~va:!cursor ()
      | Some leaf ->
        let start = Addr.pte_index !cursor in
        let len = min !remaining (Addr.entries_per_table - start) in
        (match fault with
        | None -> (
          match leaf_first_unmapped leaf ~lo:start ~hi:(start + len) with
          | -1 -> ()
          | bad -> unmapped ~va:(!cursor + ((bad - start) * ps)) ())
        | Some inj ->
          let ptes = leaf_ptes leaf in
          for i = start to start + len - 1 do
            let page_va = !cursor + ((i - start) * ps) in
            if
              Array.unsafe_get ptes i = absent
              || Svagc_fault.Injector.fire inj
                   ~site:Svagc_fault.Fault_spec.Pte_resolve ~va:page_va
            then unmapped ~va:page_va ()
          done);
        run_buf_push buf leaf ~start ~len;
        cursor := !cursor + (len * ps);
        remaining := !remaining - len
    done)

(* Flat engine: observably identical to [swap_disjoint_runs] — same
   heap mutations, same counters, bit-identical simulated cost — with
   the remaining per-op host work removed: slice descriptors live in the
   machine's scratch run buffers (int-packed, reused across ops),
   presence prechecks read bitset words, and the bulk steady-state
   charge goes through the machine's memo ([?memo] on
   [Pte_walker.charge_steady_swap_pages]), which replays the exact
   reference float for a repeated (cost, pages, cached) key instead of
   re-running the serial 8-additions-per-page chain. *)
let swap_disjoint_flat ?(fault = None) proc ~pmd_caching ~leaf_swap req =
  let machine = Process.machine proc in
  let aspace = Process.aspace proc in
  let pt = Address_space.page_table aspace in
  let perf = machine.Machine.perf in
  let cost = machine.Machine.cost in
  let ps = Addr.page_size in
  let scratch = Machine.hot_scratch machine in
  let sbuf = scratch.Machine.hs_src_runs in
  let dbuf = scratch.Machine.hs_dst_runs in
  resolve_mapped_slices ~fault pt ~va:req.src ~pages:req.pages ~buf:sbuf;
  resolve_mapped_slices ~fault pt ~va:req.dst ~pages:req.pages ~buf:dbuf;
  perf.Perf.leaf_runs <-
    perf.Perf.leaf_runs + Page_table.run_buf_length sbuf
    + Page_table.run_buf_length dbuf;
  let walker = Pte_walker.create machine pt ~pmd_caching in
  let si = ref 0 and soff = ref 0 in
  let di = ref 0 and doff = ref 0 in
  let done_pages = ref 0 in
  while !done_pages < req.pages do
    let ls = Page_table.run_buf_leaf sbuf !si in
    let ss = Page_table.run_buf_start sbuf !si in
    let ns = Page_table.run_buf_len sbuf !si in
    let ld = Page_table.run_buf_leaf dbuf !di in
    let ds = Page_table.run_buf_start dbuf !di in
    let nd = Page_table.run_buf_len dbuf !di in
    let avail = min (ns - !soff) (nd - !doff) in
    let src_va = req.src + (!done_pages * ps) in
    let dst_va = req.dst + (!done_pages * ps) in
    if
      leaf_swap && avail = Addr.pages_per_pmd && ss = 0 && ds = 0 && !soff = 0
      && !doff = 0
    then begin
      Page_table.swap_pmd_entries pt src_va dst_va;
      Pte_walker.add_cost walker cost.Cost_model.pmd_swap_ns;
      perf.Perf.pmd_leaf_swaps <- perf.Perf.pmd_leaf_swaps + 1;
      perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 2
    end
    else begin
      let lsp = Page_table.leaf_ptes ls in
      let ldp = Page_table.leaf_ptes ld in
      (* Head pages: emulate the reference loop page-at-a-time until both
         streams are sure PMD-cache hits (at most a couple of pages). *)
      let k = ref 0 in
      if pmd_caching then
        while
          !k < avail
          && not
               (Pte_walker.cache_holds walker (src_va + (!k * ps))
               && Pte_walker.cache_holds walker (dst_va + (!k * ps)))
        do
          Pte_walker.charge_get_pte walker (src_va + (!k * ps)) ~leaf:lsp;
          Pte_walker.charge_get_pte walker (dst_va + (!k * ps)) ~leaf:ldp;
          Pte_walker.charge_lock_pair walker;
          Pte_walker.charge_lock_pair walker;
          let slot1 = (lsp, ss + !soff + !k) in
          let slot2 = (ldp, ds + !doff + !k) in
          let pte1 = Pte_walker.read_slot walker slot1 in
          let pte2 = Pte_walker.read_slot walker slot2 in
          Pte_walker.write_slot walker slot1 pte2;
          Pte_walker.write_slot walker slot2 pte1;
          incr k
        done;
      (* Steady remainder: memoized bulk charge + slice exchange. *)
      let bulk = avail - !k in
      if bulk > 0 then begin
        Pte_walker.charge_steady_swap_pages ~memo:true walker ~pages:bulk
          ~cached:pmd_caching;
        Page_table.swap_pte_runs lsp ~start_a:(ss + !soff + !k) ldp
          ~start_b:(ds + !doff + !k) ~len:bulk
      end;
      perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + (2 * avail)
    end;
    done_pages := !done_pages + avail;
    soff := !soff + avail;
    if !soff = ns then begin
      incr si;
      soff := 0
    end;
    doff := !doff + avail;
    if !doff = nd then begin
      incr di;
      doff := 0
    end
  done;
  perf.Perf.bytes_remapped <-
    perf.Perf.bytes_remapped + (req.pages * Addr.page_size);
  Pte_walker.cost_ns walker

(* One request inside an (aggregated or single) call: setup + body.
   Overlapping requests take the Algorithm 2 path, which performs its own
   per-page local flushes; the remote-visibility shootdown is paid once per
   call by [final_flush].  Raises [Kernel_error.Fault] — always before any
   mutation for this request — on invalid input or a firing fault clause;
   the syscall boundary converts that to a typed result. *)
let request_cost proc ~opts req =
  validate req;
  let machine = Process.machine proc in
  let fault = machine.Machine.fault in
  (* The page-table lock for this request: a firing [lock] clause models
     losing the acquisition race, surfaced as the transient EAGAIN. *)
  (match fault with
  | Some inj
    when Svagc_fault.Injector.fire inj ~site:Svagc_fault.Fault_spec.Lock_acquire
           ~va:req.src ->
    kerror Kernel_error.EAGAIN_contended
  | _ -> ());
  let setup = machine.Machine.cost.Cost_model.swap_setup_ns in
  if ranges_overlap req then begin
    if not opts.allow_overlap then kerror Kernel_error.EINVAL_overlap;
    let src = min req.src req.dst and dst = max req.src req.dst in
    let per_page_flush =
      match opts.flush with
      | Shootdown.Local_pinned | Shootdown.Self_invalidate -> false
      | Shootdown.Broadcast_per_call | Shootdown.Process_targeted -> true
    in
    match
      Swap_overlap.swap ~fault proc ~pmd_caching:opts.pmd_caching ~per_page_flush
        ~src ~dst ~pages:req.pages
    with
    | Ok body -> setup +. body
    | Error e -> kerror e
  end
  else
    setup
    +. swap_disjoint_flat ~fault proc ~pmd_caching:opts.pmd_caching
         ~leaf_swap:opts.leaf_swap req

let call_overhead proc =
  let machine = Process.machine proc in
  machine.Machine.perf.Perf.syscalls <- machine.Machine.perf.Perf.syscalls + 1;
  machine.Machine.perf.Perf.swapva_calls <-
    machine.Machine.perf.Perf.swapva_calls + 1;
  machine.Machine.cost.Cost_model.syscall_ns

let final_flush proc ~opts =
  let machine = Process.machine proc in
  Shootdown.flush_after_swap machine
    ~asid:(Address_space.asid (Process.aspace proc))
    ~core:(Process.current_core proc) opts.flush

module Tracer = Svagc_trace.Tracer

(* Record one instant per SwapVA call (not per page): the syscall is the
   event the paper's aggregation argument counts.  The instant advances
   the trace cursor by the call's cost so the flush/IPI events of later
   calls spread through the enclosing compaction span. *)
let trace_call proc ~name ~requests ~ns =
  if Tracer.tracing () then begin
    let pages = List.fold_left (fun acc r -> acc + r.pages) 0 requests in
    Tracer.instant ~cat:"kernel" ~advance_ns:ns
      ~args:
        [
          ("requests", Svagc_trace.Event.Int (List.length requests));
          ("pages", Svagc_trace.Event.Int pages);
          ("core", Svagc_trace.Event.Int (Process.current_core proc));
        ]
      name
  end

type outcome = {
  ns : float;
  completed : int;
  failure : Kernel_error.t option;
}

(* What a failed request still costs: the crossing already happened and the
   kernel did its vma/validation work before bailing out. *)
let failed_request_ns proc =
  (Process.machine proc).Machine.cost.Cost_model.swap_setup_ns

let swap proc ~opts ~src ~dst ~pages =
  let req = { src; dst; pages } in
  let overhead = call_overhead proc in
  match request_cost proc ~opts req with
  | body ->
    let total = overhead +. body +. final_flush proc ~opts in
    trace_call proc ~name:"swapva" ~requests:[ req ] ~ns:total;
    total
  | exception Kernel_error.Fault e ->
    let spent = overhead +. failed_request_ns proc in
    trace_call proc ~name:"swapva.err" ~requests:[ req ] ~ns:spent;
    raise (Kernel_error.Fault_ns (e, spent))

let swap_result proc ~opts ~src ~dst ~pages =
  match swap proc ~opts ~src ~dst ~pages with
  | ns -> Ok ns
  | exception Kernel_error.Fault_ns (e, spent) -> Error (e, spent)

let swap_aggregated proc ~opts requests =
  match requests with
  | [] -> { ns = 0.0; completed = 0; failure = None }
  | _ ->
    let overhead = call_overhead proc in
    let body = ref 0.0 and completed = ref 0 and failure = ref None in
    (try
       List.iter
         (fun req ->
           let c = request_cost proc ~opts req in
           body := !body +. c;
           incr completed)
         requests
     with Kernel_error.Fault e ->
       (* The failing request mutated nothing, but its setup was spent. *)
       body := !body +. failed_request_ns proc;
       failure := Some e);
    (* Earlier requests in the batch did swap PTEs; their visibility flush
       is still owed even when a later request failed. *)
    let flush = if !completed > 0 then final_flush proc ~opts else 0.0 in
    let total = overhead +. !body +. flush in
    let name =
      if !failure = None then "swapva.aggregated" else "swapva.aggregated.err"
    in
    trace_call proc ~name ~requests ~ns:total;
    { ns = total; completed = !completed; failure = !failure }

let swap_separated proc ~opts requests =
  let ns = ref 0.0 and completed = ref 0 and failure = ref None in
  (try
     List.iter
       (fun { src; dst; pages } ->
         ns := !ns +. swap proc ~opts ~src ~dst ~pages;
         incr completed)
       requests
   with Kernel_error.Fault_ns (e, spent) ->
     ns := !ns +. spent;
     failure := Some e);
  { ns = !ns; completed = !completed; failure = !failure }
