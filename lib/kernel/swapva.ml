open Svagc_vmem

type opts = {
  pmd_caching : bool;
  flush : Shootdown.policy;
  allow_overlap : bool;
}

let default_opts =
  { pmd_caching = true; flush = Shootdown.Local_pinned; allow_overlap = true }

let naive_opts =
  {
    pmd_caching = false;
    flush = Shootdown.Broadcast_per_call;
    allow_overlap = false;
  }

type request = {
  src : int;
  dst : int;
  pages : int;
}

let ranges_overlap { src; dst; pages } =
  let len = pages * Addr.page_size in
  let lo = min src dst and hi = max src dst in
  hi < lo + len

let validate { src; dst; pages } =
  if pages <= 0 then invalid_arg "Swapva: pages must be positive";
  if not (Addr.is_page_aligned src && Addr.is_page_aligned dst) then
    invalid_arg "Swapva: addresses must be page-aligned";
  if src = dst then invalid_arg "Swapva: ranges are identical"

(* The body of Algorithm 1 for one request: disjoint ranges, page-by-page
   PTE exchange.  Returns the PTE-work cost (no syscall/flush). *)
let swap_disjoint_body proc ~pmd_caching req =
  let machine = Process.machine proc in
  let aspace = Process.aspace proc in
  let pt = Address_space.page_table aspace in
  let perf = machine.Machine.perf in
  (* vma-style precheck, charged via swap_setup_ns by the caller. *)
  for i = 0 to req.pages - 1 do
    let off = i * Addr.page_size in
    if
      (not (Pte.is_present (Page_table.get_pte pt (req.src + off))))
      || not (Pte.is_present (Page_table.get_pte pt (req.dst + off)))
    then invalid_arg "Swapva: range contains an unmapped page"
  done;
  let walker = Pte_walker.create machine pt ~pmd_caching in
  for i = 0 to req.pages - 1 do
    let off = i * Addr.page_size in
    let slot1 = Pte_walker.get_pte walker (req.src + off) in
    let slot2 = Pte_walker.get_pte walker (req.dst + off) in
    Pte_walker.charge_lock_pair walker;
    Pte_walker.charge_lock_pair walker;
    let pte1 = Pte_walker.read_slot walker slot1 in
    let pte2 = Pte_walker.read_slot walker slot2 in
    Pte_walker.write_slot walker slot1 pte2;
    Pte_walker.write_slot walker slot2 pte1;
    perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 2
  done;
  perf.Perf.bytes_remapped <-
    perf.Perf.bytes_remapped + (req.pages * Addr.page_size);
  Pte_walker.cost_ns walker

(* One request inside an (aggregated or single) call: setup + body.
   Overlapping requests take the Algorithm 2 path, which performs its own
   per-page local flushes; the remote-visibility shootdown is paid once per
   call by [final_flush]. *)
let request_cost proc ~opts req =
  validate req;
  let machine = Process.machine proc in
  let setup = machine.Machine.cost.Cost_model.swap_setup_ns in
  if ranges_overlap req then begin
    if not opts.allow_overlap then
      invalid_arg "Swapva: overlapping ranges (enable allow_overlap)";
    let src = min req.src req.dst and dst = max req.src req.dst in
    let per_page_flush =
      match opts.flush with
      | Shootdown.Local_pinned | Shootdown.Self_invalidate -> false
      | Shootdown.Broadcast_per_call | Shootdown.Process_targeted -> true
    in
    setup
    +. Swap_overlap.swap proc ~pmd_caching:opts.pmd_caching ~per_page_flush ~src
         ~dst ~pages:req.pages
  end
  else setup +. swap_disjoint_body proc ~pmd_caching:opts.pmd_caching req

let call_overhead proc =
  let machine = Process.machine proc in
  machine.Machine.perf.Perf.syscalls <- machine.Machine.perf.Perf.syscalls + 1;
  machine.Machine.perf.Perf.swapva_calls <-
    machine.Machine.perf.Perf.swapva_calls + 1;
  machine.Machine.cost.Cost_model.syscall_ns

let final_flush proc ~opts =
  let machine = Process.machine proc in
  Shootdown.flush_after_swap machine
    ~asid:(Address_space.asid (Process.aspace proc))
    ~core:(Process.current_core proc) opts.flush

module Tracer = Svagc_trace.Tracer

(* Record one instant per SwapVA call (not per page): the syscall is the
   event the paper's aggregation argument counts.  The instant advances
   the trace cursor by the call's cost so the flush/IPI events of later
   calls spread through the enclosing compaction span. *)
let trace_call proc ~name ~requests ~ns =
  if Tracer.tracing () then begin
    let pages = List.fold_left (fun acc r -> acc + r.pages) 0 requests in
    Tracer.instant ~cat:"kernel" ~advance_ns:ns
      ~args:
        [
          ("requests", Svagc_trace.Event.Int (List.length requests));
          ("pages", Svagc_trace.Event.Int pages);
          ("core", Svagc_trace.Event.Int (Process.current_core proc));
        ]
      name
  end

let swap proc ~opts ~src ~dst ~pages =
  let req = { src; dst; pages } in
  let overhead = call_overhead proc in
  let body = request_cost proc ~opts req in
  let total = overhead +. body +. final_flush proc ~opts in
  trace_call proc ~name:"swapva" ~requests:[ req ] ~ns:total;
  total

let swap_aggregated proc ~opts requests =
  match requests with
  | [] -> 0.0
  | _ ->
    let overhead = call_overhead proc in
    let body =
      List.fold_left (fun acc req -> acc +. request_cost proc ~opts req) 0.0 requests
    in
    let total = overhead +. body +. final_flush proc ~opts in
    trace_call proc ~name:"swapva.aggregated" ~requests ~ns:total;
    total

let swap_separated proc ~opts requests =
  List.fold_left
    (fun acc { src; dst; pages } -> acc +. swap proc ~opts ~src ~dst ~pages)
    0.0 requests
