open Svagc_vmem

type policy =
  | Broadcast_per_call
  | Process_targeted
  | Local_pinned
  | Self_invalidate

(* Epoch bump: one atomic store plus store-buffer drain. *)
let epoch_bump_ns = 45.0

let invalidate_everywhere machine ~asid =
  Array.iter (fun c -> Tlb.flush_asid c.Machine.tlb ~asid) machine.Machine.cores

let policy_name = function
  | Broadcast_per_call -> "broadcast-per-call"
  | Process_targeted -> "process-targeted"
  | Local_pinned -> "local-pinned"
  | Self_invalidate -> "self-invalidate"

module Tracer = Svagc_trace.Tracer

(* No cursor advance here: the enclosing SwapVA call instant advances by
   the whole call cost, flush included. *)
let trace_flush ~core policy ns =
  if Tracer.tracing () then
    Tracer.instant ~cat:"kernel"
      ~args:
        [
          ("policy", Svagc_trace.Event.Str (policy_name policy));
          ("core", Svagc_trace.Event.Int core);
          ("cost_ns", Svagc_trace.Event.Float ns);
        ]
      "tlb_flush"

let flush_after_swap machine ~asid ~core policy =
  (* State change is policy-independent; only the charged cost differs. *)
  invalidate_everywhere machine ~asid;
  let cost = machine.Machine.cost in
  let ns =
    match policy with
    | Broadcast_per_call ->
      machine.Machine.perf.Perf.tlb_flush_local <-
        machine.Machine.perf.Perf.tlb_flush_local + 1;
      cost.Cost_model.tlb_flush_local_ns
      +. Machine.ipi_broadcast_cost machine ~from_core:core
    | Process_targeted ->
      (* Remote cores only walk their own TLB for this asid: cheaper ack
         path, modeled as 60% of a full IPI round trip.  Same costed
         broadcast helper (and same counters — a targeted shootdown is
         still one broadcast of [ncores - 1] IPIs; a lost IPI is resent at
         full, not 0.6x, price). *)
      machine.Machine.perf.Perf.tlb_flush_local <-
        machine.Machine.perf.Perf.tlb_flush_local + 1;
      cost.Cost_model.tlb_flush_local_ns
      +. Machine.ipi_broadcast_cost ~scale:0.6 machine ~from_core:core
    | Local_pinned ->
      machine.Machine.perf.Perf.tlb_flush_local <-
        machine.Machine.perf.Perf.tlb_flush_local + 1;
      cost.Cost_model.tlb_flush_local_ns
    | Self_invalidate ->
      machine.Machine.perf.Perf.tlb_flush_local <-
        machine.Machine.perf.Perf.tlb_flush_local + 1;
      cost.Cost_model.tlb_flush_local_ns +. epoch_bump_ns
  in
  trace_flush ~core policy ns;
  Machine.notify_shootdown machine ~asid;
  ns

let cycle_prologue machine ~asid ~core policy =
  match policy with
  | Broadcast_per_call | Process_targeted | Self_invalidate -> 0.0
  | Local_pinned -> Machine.flush_tlb_all_cores machine ~asid ~from_core:core

let pp_policy ppf p = Format.pp_print_string ppf (policy_name p)
