(** Demand-paging wiring: builds a {!Svagc_reclaim.Reclaim.t} for a
    machine and installs it as the machine's [reclaim_iface], turning on
    memory pressure for every address space on that machine.

    An attached machine keeps at most [limit_frames] frames resident:
    mapping or faulting past the limit wakes the kswapd loop, which
    evicts cold pages to the simulated swap device; any frame-resolving
    access to an evicted page takes a charged major fault back through
    {!Svagc_reclaim.Reclaim.fault_in}.  A machine with no attachment (the
    default) is bit-identical to one that never heard of reclaim. *)

val attach :
  Svagc_vmem.Machine.t ->
  limit_frames:int ->
  ?swap_cost_ns:float ->
  ?max_io_retries:int ->
  ?dev:Svagc_reclaim.Reclaim.dev_iface ->
  ?cgroup:Svagc_reclaim.Reclaim.cgroup_iface ->
  unit ->
  Svagc_reclaim.Reclaim.t
(** Create the reclaim state and install the closure record on
    [machine.reclaim].  Idempotent in spirit but not in state: attaching
    twice replaces the first reclaimer, orphaning its swap slots — use
    {!attached} to guard.  [swap_cost_ns] overrides both device
    latencies; [max_io_retries] (default 3) bounds device attempts per
    transfer before the swap-out skips the page / the fault surfaces
    [EIO_swap].  [dev] replaces the flat swap device with a custom one
    (e.g. the fleet layer's tiered far-memory device); [cgroup] installs
    per-tenant resident accounting.  Omitting both keeps the machine
    bit-identical to the pre-fleet reclaimer.
    @raise Invalid_argument if [limit_frames <= 0]. *)

val attached : Svagc_vmem.Machine.t -> bool

val detach : Svagc_vmem.Machine.t -> unit
(** Remove the iface (pressure off; swapped pages become unreachable
    until re-attach, so this is for tests and teardown only). *)
