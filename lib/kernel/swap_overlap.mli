(** Algorithm 2: swapping two *overlapping* page ranges in O(n + δ) PTE
    moves using gcd-driven replacement cycles.

    For ranges at [src] and [dst = src + δ·PAGE] of [pages] pages each
    (0 < δ ≤ pages), the operation is a left rotation by δ of the
    [pages + δ]-page window starting at [src]: afterwards the content that
    lived at [dst..dst+pages) is visible at [src..src+pages), and the
    displaced prefix sits at the window's tail.  This module implements the
    cycle-following loop verbatim (FindSwapPlace, one temporary PTE word
    per cycle). *)


val rotation_reference : 'a array -> delta:int -> 'a array
(** Pure specification used by the property tests: left-rotate by
    [delta]. *)

val swap :
  ?fault:Svagc_fault.Injector.t option ->
  Process.t ->
  pmd_caching:bool ->
  per_page_flush:bool ->
  src:int ->
  dst:int ->
  pages:int ->
  (float, Svagc_fault.Kernel_error.t) result
(** Perform the overlapping swap and return the kernel-side cost in ns.
    With [per_page_flush] the per-PTE [flush_tlb_page] of Algorithm 2 is
    charged; under Algorithm 4's pinned stop-the-world compaction nothing
    can read the window through a stale TLB entry mid-call, so the caller
    may defer invalidation to the single per-call shootdown and pass
    [false] (an engineering refinement over the paper's listing, see
    DESIGN.md).  The syscall crossing and the remote-visibility shootdown
    are charged by the caller ({!Swapva}), which owns the flush policy.

    Errors — [EINVAL_unaligned]/[EINVAL_bad_pages] on malformed inputs,
    [EINVAL_geometry] unless [src < dst] and the ranges actually overlap
    ([dst < src + pages·PAGE]), [EFAULT_unmapped] when the union window
    has an absent page — are all reported {e before} any PTE moves, so an
    [Error] guarantees the window is untouched.  [fault] (default [None])
    is the machine's injection plane: its [pte] clause is consulted once
    per window page during the pre-mutation presence check. *)
