(** The SwapVA system call (Algorithm 1) with the paper's three internal
    optimizations: PMD caching, request aggregation (Fig. 5) and the
    overlapping-area path (Algorithm 2, dispatched automatically).

    Swapping really exchanges frame numbers in the leaf page tables, so
    afterwards reads through the MMU observe the exchanged contents without
    any byte having moved. *)


type opts = {
  pmd_caching : bool;
  flush : Shootdown.policy;
  allow_overlap : bool;  (** dispatch overlapping requests to Algorithm 2 *)
  leaf_swap : bool;
      (** opt-in pmd_leaf_swap mode: sub-runs covering a whole PMD-aligned
          512-page leaf on both sides are exchanged at the PMD directory
          level in O(1) simulated cost ([Cost_model.pmd_swap_ns]).  Unlike
          every other option this changes the modeled cost, so it is off in
          both presets and excluded from the per-page/run equivalence
          guarantee. *)
}

val default_opts : opts
(** PMD caching on, [Local_pinned] flushing, overlap allowed, no leaf
    swapping — the configuration SVAGC runs with. *)

val naive_opts : opts
(** Everything off / broadcast flushing: the Fig. 8/9 baselines. *)

type request = {
  src : int;
  dst : int;
  pages : int;
}

val ranges_overlap : request -> bool

val swap_disjoint_per_page : Process.t -> pmd_caching:bool -> request -> float
(** The page-at-a-time reference body of Algorithm 1 (no syscall/flush):
    full presence precheck, then per-page getPTE / lock / exchange.  Kept
    as the executable oracle for {!swap_disjoint_run} — property tests
    assert both produce identical heaps, perf-counter deltas and
    bit-identical cost.  Not used by {!swap}. *)

val swap_disjoint_run :
  ?leaf_swap:bool -> Process.t -> pmd_caching:bool -> request -> float
(** The run-coalesced body of Algorithm 1 used by {!swap} (no
    syscall/flush): ranges resolve into (leaf, start, len) slices once per
    PMD leaf, presence is verified in the same pass (before any mutation),
    and PTE slices are exchanged with tight array loops while the cost
    model is charged exactly as the reference would.  [leaf_swap]
    (default false) additionally exchanges whole PMD-aligned 512-page
    sub-runs at the directory level for [Cost_model.pmd_swap_ns] each —
    outside the cost-equivalence guarantee. *)

val swap_disjoint_flat :
  ?fault:Svagc_fault.Injector.t option ->
  Process.t ->
  pmd_caching:bool ->
  leaf_swap:bool ->
  request ->
  float
(** The flat body of Algorithm 1 used by {!swap} (no syscall/flush):
    observably identical to {!swap_disjoint_run} — same heap mutations,
    same counters, bit-identical simulated cost — with the remaining
    per-op host allocation removed.  Slice descriptors live in the
    machine's reusable scratch buffers ({!Svagc_vmem.Machine.hot_scratch}),
    presence is prechecked against per-leaf bitset words (O(1) for a
    fully-mapped leaf), and the steady-state bulk charge is memoized on
    (cost, pages, cached) keys, replaying the exact reference float.
    [fault]'s [pte] clause is consulted per page in address order, exactly
    like the reference resolver.
    @raise Svagc_fault.Kernel_error.Fault before any mutation on a
    non-mapped page or firing clause. *)

type outcome = {
  ns : float;  (** total simulated cost, including any failed attempt *)
  completed : int;  (** requests fully applied before the first failure *)
  failure : Svagc_fault.Kernel_error.t option;
      (** the typed error that stopped the call, or [None] when every
          request was applied.  Requests after the failing one were not
          attempted; the failing one mutated nothing. *)
}
(** Result of a multi-request call.  The kernel applies requests in order
    and stops at the first error, so [completed] is always a prefix
    length. *)

val swap : Process.t -> opts:opts -> src:int -> dst:int -> pages:int -> float
(** One syscall swapping [pages] pages between [src] and [dst]; returns the
    total simulated cost in ns (syscall crossing + setup + PTE work +
    shootdown per the policy).
    @raise Svagc_fault.Kernel_error.Fault_ns on any typed kernel error —
    unaligned/unmapped ranges, overlapping ranges when [allow_overlap] is
    false, or a firing fault-injection clause — carrying the error and the
    ns the failed call still cost.  An error implies no PTE was mutated. *)

val swap_result :
  Process.t ->
  opts:opts ->
  src:int ->
  dst:int ->
  pages:int ->
  (float, Svagc_fault.Kernel_error.t * float) result
(** {!swap} with the boundary exception reified: [Ok ns] on success,
    [Error (e, spent_ns)] on a typed kernel error ([spent_ns] is the
    syscall crossing + setup the failed call still consumed — callers
    charge it to their cost accounting before retrying or degrading). *)

val swap_aggregated : Process.t -> opts:opts -> request list -> outcome
(** All requests in a single syscall: one crossing, one final shootdown
    (per-request setup is still paid).  Empty list costs nothing.  On a
    typed kernel error the call stops there and reports it in
    [failure]; already-completed requests stay applied (real batched
    syscalls are not transactional) and their visibility shootdown is
    still performed and charged. *)

val swap_separated : Process.t -> opts:opts -> request list -> outcome
(** Convenience baseline: one {!swap} call per request (Fig. 5a / Fig. 6
    "separated"), stopping at the first failing call. *)
