(** Shared getPTE machinery for the SwapVA implementations.

    A walker descends the 4-level table to the PTE slot of a virtual
    address, accumulating simulated cost.  With PMD caching enabled it
    keeps the leaf tables of the last two distinct PMD regions (one per
    swap stream, as the paper's "pmd variable" suggests), so consecutive
    pages in either stream skip the directory walk (Fig. 7). *)

open Svagc_vmem

type t

val create : Machine.t -> Page_table.t -> pmd_caching:bool -> t

val cost_ns : t -> float
(** Cost accumulated so far by this walker. *)

val add_cost : t -> float -> unit

val get_pte : t -> int -> Pte.value array * int
(** [get_pte w va] is the leaf table and slot index for [va], charging a
    full walk or a PMD-cache hit.  Does NOT charge the lock pair — callers
    charge it per Algorithm step.
    @raise Svagc_fault.Kernel_error.Fault with [EFAULT_unmapped] when the
    page has no leaf table. *)

val cache_holds : t -> int -> bool
(** Would [get_pte] on this address hit the PMD cache right now?  Used by
    the run-coalesced engine to detect the steady state in which whole
    sub-runs can be charged in bulk. *)

val charge_get_pte : t -> int -> leaf:Pte.value array -> unit
(** Charge exactly what {!get_pte} would for this address — cache probe,
    hit or walk cost, counters, cache rotation — given that the caller
    already resolved the covering [leaf] (no radix descent happens). *)

val charge_steady_swap_pages : ?memo:bool -> t -> pages:int -> cached:bool -> unit
(** Bulk-charge [pages] steady iterations of Algorithm 1's inner loop
    (two getPTEs that both {hit the PMD cache | are full walks}, two lock
    pairs, four PTE word accesses), accumulating cost in the reference
    loop's exact float-addition order and bumping
    [pmd_cache_hits]/[pt_walks] by [2*pages].

    [memo] (default false; the flat engine passes true) consults the
    machine's direct-mapped charge memo: the serial per-page addition
    chain is a pure function of (current cost float, pages, cached) on a
    fixed cost model, so a hit returns the exact float the reference
    chain computed for that key — bit-identical by construction — and
    skips the dominant serial-dependency loop of large swaps. *)

val read_slot : t -> Pte.value array * int -> Pte.value

val write_slot : t -> Pte.value array * int -> Pte.value -> unit
(** Charges one PTE word access per read/write. *)

val charge_lock_pair : t -> unit
