open Svagc_vmem

(* No leaf cached; a shared empty array can never equal a real leaf. *)
let no_leaf : Pte.value array = [||]

type t = {
  machine : Machine.t;
  pt : Page_table.t;
  pmd_caching : bool;
  (* Two-entry cache keyed by the PMD region (vpn / 512): one slot per swap
     stream so alternating src/dst accesses both hit.  Kept as four flat
     mutable fields (region ints + leaf pointers, -1 = empty) instead of
     [(int * array) option] slots: probing and rotating are then pure
     int/pointer stores with no option or tuple allocation per page. *)
  mutable r0 : int;
  mutable l0 : Pte.value array;
  mutable r1 : int;
  mutable l1 : Pte.value array;
  mutable cost : float;
}

let create machine pt ~pmd_caching =
  { machine; pt; pmd_caching; r0 = -1; l0 = no_leaf; r1 = -1; l1 = no_leaf;
    cost = 0.0 }

let cost_ns t = t.cost

let add_cost t c = t.cost <- t.cost +. c

let pmd_region va = Addr.page_number va / Addr.pages_per_pmd

(* 0 / 1 = hit in that slot, -1 = miss.  Same probe order as the old
   option-based cache (newest slot first). *)
let cache_find t region =
  if t.r0 = region then 0 else if t.r1 = region then 1 else -1

let remember t region leaf =
  (* Simple 2-entry rotation: newest in slot 0. *)
  t.r1 <- t.r0;
  t.l1 <- t.l0;
  t.r0 <- region;
  t.l0 <- leaf

let get_pte t va =
  let cost = t.machine.Machine.cost in
  let perf = t.machine.Machine.perf in
  let region = pmd_region va in
  let slot = if t.pmd_caching then cache_find t region else -1 in
  let leaf =
    if slot >= 0 then begin
      perf.Perf.pmd_cache_hits <- perf.Perf.pmd_cache_hits + 1;
      t.cost <- t.cost +. cost.Cost_model.pt_entry_ns;
      if slot = 0 then t.l0 else t.l1
    end
    else
      match Page_table.find_leaf t.pt va with
      | None ->
        raise
          (Svagc_fault.Kernel_error.Fault
             (Svagc_fault.Kernel_error.EFAULT_unmapped { va }))
      | Some leaf ->
        perf.Perf.pt_walks <- perf.Perf.pt_walks + 1;
        t.cost <- t.cost +. Cost_model.walk_cost_ns cost;
        if t.pmd_caching then remember t region leaf;
        leaf
  in
  (leaf, Addr.pte_index va)

let cache_holds t va = t.pmd_caching && cache_find t (pmd_region va) >= 0

let charge_get_pte t va ~leaf =
  (* Identical accounting to [get_pte] — cache probe, hit/walk cost,
     counter bumps, cache rotation — with the radix descent elided because
     the caller already resolved [leaf] for the whole run. *)
  let cost = t.machine.Machine.cost in
  let perf = t.machine.Machine.perf in
  let region = pmd_region va in
  if t.pmd_caching && cache_find t region >= 0 then begin
    perf.Perf.pmd_cache_hits <- perf.Perf.pmd_cache_hits + 1;
    t.cost <- t.cost +. cost.Cost_model.pt_entry_ns
  end
  else begin
    perf.Perf.pt_walks <- perf.Perf.pt_walks + 1;
    t.cost <- t.cost +. Cost_model.walk_cost_ns cost;
    if t.pmd_caching then remember t region leaf
  end

let charge_steady_pages_from ~acc0 ~get ~lk ~pe ~pages =
  (* A float array cell keeps the accumulator unboxed through the loop
     (a float ref would box on every store).  The additions run in the
     exact per-page order of the reference loop — getPTE src, getPTE
     dst, two lock pairs, two slot reads, two slot writes — so the
     accumulated float is bit-identical to the page-at-a-time path. *)
  let acc = [| acc0 |] in
  for _ = 1 to pages do
    acc.(0) <- acc.(0) +. get +. get +. lk +. lk +. pe +. pe +. pe +. pe
  done;
  acc.(0)

let charge_steady_swap_pages ?(memo = false) t ~pages ~cached =
  (* Bulk-charge [pages] iterations of Algorithm 1's inner loop in which
     both getPTEs are steady (cache hits, or full walks when caching is
     off). *)
  let cost = t.machine.Machine.cost in
  let pe = cost.Cost_model.pt_entry_ns in
  let lk = cost.Cost_model.lock_pair_ns in
  let get = if cached then pe else Cost_model.walk_cost_ns cost in
  let acc0 = t.cost in
  let result =
    if not memo then charge_steady_pages_from ~acc0 ~get ~lk ~pe ~pages
    else begin
      (* The serial 8-additions-per-page chain is the dominant host cost
         of a large swap, and it is a pure function of (acc0 bits, pages,
         cached) on a fixed cost model.  The machine's direct-mapped memo
         replays the exact float computed by the reference chain for that
         key, so hits are bit-identical by construction.  The index mixes
         the integer part of acc0 (distinct between successive charges of
         one op, since each bulk adds thousands of ns) with the encoded
         page count. *)
      let s = Machine.hot_scratch t.machine in
      let enc = (pages lsl 1) lor (if cached then 1 else 0) in
      let k = int_of_float acc0 in
      let h = (k lxor (k lsr 17)) * 0x9E3779B1 in
      let idx = (h lxor enc) land (Machine.memo_slots - 1) in
      if
        Array.unsafe_get s.Machine.hs_memo_enc idx = enc
        && Array.unsafe_get s.Machine.hs_memo_acc idx = acc0
      then Array.unsafe_get s.Machine.hs_memo_out idx
      else begin
        let out = charge_steady_pages_from ~acc0 ~get ~lk ~pe ~pages in
        Array.unsafe_set s.Machine.hs_memo_acc idx acc0;
        Array.unsafe_set s.Machine.hs_memo_enc idx enc;
        Array.unsafe_set s.Machine.hs_memo_out idx out;
        out
      end
    end
  in
  t.cost <- result;
  let perf = t.machine.Machine.perf in
  if cached then
    perf.Perf.pmd_cache_hits <- perf.Perf.pmd_cache_hits + (2 * pages)
  else perf.Perf.pt_walks <- perf.Perf.pt_walks + (2 * pages)

let read_slot t (leaf, idx) =
  t.cost <- t.cost +. t.machine.Machine.cost.Cost_model.pt_entry_ns;
  leaf.(idx)

let write_slot t (leaf, idx) v =
  t.cost <- t.cost +. t.machine.Machine.cost.Cost_model.pt_entry_ns;
  leaf.(idx) <- v

let charge_lock_pair t =
  t.cost <- t.cost +. t.machine.Machine.cost.Cost_model.lock_pair_ns
