open Svagc_vmem

type t = {
  machine : Machine.t;
  pt : Page_table.t;
  pmd_caching : bool;
  (* Two-entry cache keyed by the PMD region (vpn / 512): one slot per swap
     stream so alternating src/dst accesses both hit. *)
  mutable cache0 : (int * Pte.value array) option;
  mutable cache1 : (int * Pte.value array) option;
  mutable cost : float;
}

let create machine pt ~pmd_caching =
  { machine; pt; pmd_caching; cache0 = None; cache1 = None; cost = 0.0 }

let cost_ns t = t.cost

let add_cost t c = t.cost <- t.cost +. c

let pmd_region va = Addr.page_number va / Addr.pages_per_pmd

let lookup_cache t region =
  match (t.cache0, t.cache1) with
  | Some (r, leaf), _ when r = region -> Some leaf
  | _, Some (r, leaf) when r = region -> Some leaf
  | _ -> None

let remember t region leaf =
  (* Simple 2-entry rotation: newest in slot 0. *)
  t.cache1 <- t.cache0;
  t.cache0 <- Some (region, leaf)

let get_pte t va =
  let cost = t.machine.Machine.cost in
  let perf = t.machine.Machine.perf in
  let region = pmd_region va in
  let leaf =
    match (if t.pmd_caching then lookup_cache t region else None) with
    | Some leaf ->
      perf.Perf.pmd_cache_hits <- perf.Perf.pmd_cache_hits + 1;
      t.cost <- t.cost +. cost.Cost_model.pt_entry_ns;
      leaf
    | None -> (
      match Page_table.find_leaf t.pt va with
      | None ->
        raise
          (Svagc_fault.Kernel_error.Fault
             (Svagc_fault.Kernel_error.EFAULT_unmapped { va }))
      | Some leaf ->
        perf.Perf.pt_walks <- perf.Perf.pt_walks + 1;
        t.cost <- t.cost +. Cost_model.walk_cost_ns cost;
        if t.pmd_caching then remember t region leaf;
        leaf)
  in
  (leaf, Addr.pte_index va)

let cache_holds t va = t.pmd_caching && lookup_cache t (pmd_region va) <> None

let charge_get_pte t va ~leaf =
  (* Identical accounting to [get_pte] — cache probe, hit/walk cost,
     counter bumps, cache rotation — with the radix descent elided because
     the caller already resolved [leaf] for the whole run. *)
  let cost = t.machine.Machine.cost in
  let perf = t.machine.Machine.perf in
  let region = pmd_region va in
  match (if t.pmd_caching then lookup_cache t region else None) with
  | Some _ ->
    perf.Perf.pmd_cache_hits <- perf.Perf.pmd_cache_hits + 1;
    t.cost <- t.cost +. cost.Cost_model.pt_entry_ns
  | None ->
    perf.Perf.pt_walks <- perf.Perf.pt_walks + 1;
    t.cost <- t.cost +. Cost_model.walk_cost_ns cost;
    if t.pmd_caching then remember t region leaf

let charge_steady_swap_pages t ~pages ~cached =
  (* Bulk-charge [pages] iterations of Algorithm 1's inner loop in which
     both getPTEs are steady (cache hits, or full walks when caching is
     off).  The additions run in the exact per-page order of the reference
     loop — getPTE src, getPTE dst, two lock pairs, two slot reads, two
     slot writes — so the accumulated float is bit-identical to the
     page-at-a-time path. *)
  let cost = t.machine.Machine.cost in
  let pe = cost.Cost_model.pt_entry_ns in
  let lk = cost.Cost_model.lock_pair_ns in
  let get = if cached then pe else Cost_model.walk_cost_ns cost in
  (* A float array cell keeps the accumulator unboxed through the loop
     (a float ref would box on every store). *)
  let acc = [| t.cost |] in
  for _ = 1 to pages do
    acc.(0) <-
      acc.(0) +. get +. get +. lk +. lk +. pe +. pe +. pe +. pe
  done;
  t.cost <- acc.(0);
  let perf = t.machine.Machine.perf in
  if cached then
    perf.Perf.pmd_cache_hits <- perf.Perf.pmd_cache_hits + (2 * pages)
  else perf.Perf.pt_walks <- perf.Perf.pt_walks + (2 * pages)

let read_slot t (leaf, idx) =
  t.cost <- t.cost +. t.machine.Machine.cost.Cost_model.pt_entry_ns;
  leaf.(idx)

let write_slot t (leaf, idx) v =
  t.cost <- t.cost +. t.machine.Machine.cost.Cost_model.pt_entry_ns;
  leaf.(idx) <- v

let charge_lock_pair t =
  t.cost <- t.cost +. t.machine.Machine.cost.Cost_model.lock_pair_ns
