open Svagc_vmem

let cost_ns ?(cold = false) machine ~len =
  if len <= 0 then 0.0
  else begin
    let bw =
      if cold then
        Cost_model.contended_bw machine.Machine.cost
          ~streams:machine.Machine.copy_streams
          ~bw:machine.Machine.cost.Cost_model.dram_copy_bw
      else Machine.effective_copy_bw machine ~bytes_len:len
    in
    float_of_int len /. bw
  end

let move ?measure_core ?(cold = false) aspace ~src ~dst ~len =
  if len < 0 then invalid_arg "Memmove.move: negative length";
  let machine = Address_space.machine aspace in
  if len = 0 then 0.0
  else begin
    (* A page-chunked in-place copy would need direction analysis for
       overlap; staging through a buffer gives memmove semantics simply and
       the simulated cost is charged analytically anyway. *)
    let data = Address_space.read_bytes aspace ~va:src ~len in
    Address_space.write_bytes aspace ~va:dst ~src:data;
    machine.Machine.perf.Perf.memmove_calls <-
      machine.Machine.perf.Perf.memmove_calls + 1;
    machine.Machine.perf.Perf.bytes_copied <-
      machine.Machine.perf.Perf.bytes_copied + len;
    (match measure_core with
    | None -> ()
    | Some core ->
      Address_space.touch_range aspace ~core ~va:src ~len;
      Address_space.touch_range aspace ~core ~va:dst ~len);
    (* Under memory pressure the reads/writes/touches above demand-fault
       swapped pages back in; fold that accumulated reclaim cost into the
       returned copy cost so the caller's clock pays for the faults the
       copy caused (SwapVA never pays this: swapping two non-present PTEs
       just exchanges slots). *)
    let reclaim_ns =
      match machine.Machine.reclaim with
      | None -> 0.0
      | Some r -> r.Machine.ri_drain_ns ()
    in
    let ns = cost_ns ~cold machine ~len +. reclaim_ns in
    if Svagc_trace.Tracer.tracing () then
      Svagc_trace.Tracer.instant ~cat:"kernel" ~advance_ns:ns
        ~args:[ ("len", Svagc_trace.Event.Int len) ]
        "memmove";
    ns
  end
