open Svagc_vmem
module Reclaim = Svagc_reclaim.Reclaim

let attach machine ~limit_frames ?swap_cost_ns ?max_io_retries ?dev ?cgroup () =
  let r =
    Reclaim.create machine ~limit_frames ?swap_cost_ns ?max_io_retries ?dev ()
  in
  Reclaim.set_cgroup r cgroup;
  let iface =
    {
      Machine.ri_page_mapped =
        (fun ~pt ~asid ~va -> Reclaim.page_mapped r ~pt ~asid ~va);
      ri_page_unmapped =
        (fun ~asid ~va ~pte -> Reclaim.page_unmapped r ~asid ~va ~pte);
      ri_page_touched = (fun ~asid ~va -> Reclaim.page_touched r ~asid ~va);
      ri_fault_in = (fun ~pt ~asid ~va -> Reclaim.fault_in r ~pt ~asid ~va);
      ri_adopt = (fun ~pt ~asid -> Reclaim.adopt_space r ~pt ~asid);
      ri_slot_bytes = (fun ~slot -> Reclaim.slot_bytes r ~slot);
      ri_slot_allocated = (fun ~slot -> Reclaim.slot_allocated r ~slot);
      ri_slots_in_use = (fun () -> Reclaim.slots_in_use r);
      ri_drain_ns = (fun () -> Reclaim.drain_ns r);
      ri_cgroup_stats = (fun () -> Reclaim.cgroup_stats r);
      ri_tier_stats = (fun () -> Reclaim.tier_stats r);
    }
  in
  machine.Machine.reclaim <- Some iface;
  r

let attached machine = machine.Machine.reclaim <> None

let detach machine = machine.Machine.reclaim <- None
