open Svagc_vmem

let rotation_reference a ~delta =
  let n = Array.length a in
  if n = 0 then [||]
  else Array.init n (fun i -> a.((i + delta) mod n))

(* FindSwapPlace from Algorithm 2: destination index of the element
   currently at [i] under a left rotation by [delta] of a [total]-element
   window, where [total = pages + delta]. *)
let find_swap_place ~i ~delta ~pages = if i < delta then i + pages else i - delta

exception Bail of Svagc_fault.Kernel_error.t

let swap ?(fault = None) proc ~pmd_caching ~per_page_flush ~src ~dst ~pages =
  match
    let open Svagc_fault.Kernel_error in
    if not (Addr.is_page_aligned src) then raise (Bail (EINVAL_unaligned { va = src }));
    if not (Addr.is_page_aligned dst) then raise (Bail (EINVAL_unaligned { va = dst }));
    if pages <= 0 then raise (Bail (EINVAL_bad_pages { pages }));
    if dst <= src then
      raise (Bail (EINVAL_geometry { reason = "overlap path requires src < dst" }));
    let delta = (dst - src) / Addr.page_size in
    if delta > pages then
      raise
        (Bail (EINVAL_geometry { reason = "ranges do not overlap (use Swapva.swap)" }));
    delta
  with
  | exception Bail e -> Error e
  | delta ->
  let machine = Process.machine proc in
  let aspace = Process.aspace proc in
  let pt = Address_space.page_table aspace in
  let walker = Pte_walker.create machine pt ~pmd_caching in
  let total = pages + delta in
  let perf = machine.Machine.perf in
  let cost = machine.Machine.cost in
  let slot_at idx = Pte_walker.get_pte walker (src + (idx * Addr.page_size)) in
  (* Verify the whole window is mapped before mutating anything, so a bad
     call cannot leave a half-rotated window behind.  This is the vma check
     a real kernel does up front; its cost is the caller's swap_setup_ns,
     so no walker cost is charged here.  The fault plane's [pte] clause is
     queried here too — an injected EFAULT models a racing unmap observed
     during resolution, and like a real one it precedes all mutation. *)
  match
    for idx = 0 to total - 1 do
      let va = src + (idx * Addr.page_size) in
      (* Mapped = present or swapped out: rotating PTE words moves swap
         entries like any other, with no device IO. *)
      if not (Pte.is_mapped (Page_table.get_pte pt va)) then
        raise (Bail (Svagc_fault.Kernel_error.EFAULT_unmapped { va }));
      match fault with
      | Some inj
        when Svagc_fault.Injector.fire inj ~site:Svagc_fault.Fault_spec.Pte_resolve ~va
        ->
        raise (Bail (Svagc_fault.Kernel_error.EFAULT_unmapped { va }))
      | _ -> ()
    done
  with
  | exception Bail e -> Error e
  | () ->
  Ok (
  let cycles = Svagc_util.Num_util.gcd delta pages in
  for cur_idx = 0 to cycles - 1 do
    let cur_slot = slot_at cur_idx in
    Pte_walker.charge_lock_pair walker;
    let pte_temp = ref (Pte_walker.read_slot walker cur_slot) in
    let k = ref (find_swap_place ~i:cur_idx ~delta ~pages) in
    while !k <> cur_idx do
      let k_slot = slot_at !k in
      Pte_walker.charge_lock_pair walker;
      let pte_k_temp = Pte_walker.read_slot walker k_slot in
      Pte_walker.write_slot walker k_slot !pte_temp;
      if per_page_flush then begin
        Pte_walker.add_cost walker cost.Cost_model.tlb_flush_page_ns;
        perf.Perf.tlb_flush_page <- perf.Perf.tlb_flush_page + 1
      end;
      perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 1;
      pte_temp := pte_k_temp;
      k := find_swap_place ~i:!k ~delta ~pages
    done;
    Pte_walker.write_slot walker cur_slot !pte_temp;
    if per_page_flush then begin
      Pte_walker.add_cost walker cost.Cost_model.tlb_flush_page_ns;
      perf.Perf.tlb_flush_page <- perf.Perf.tlb_flush_page + 1
    end;
    perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 1
  done;
  perf.Perf.bytes_remapped <- perf.Perf.bytes_remapped + (pages * Addr.page_size);
  Pte_walker.cost_ns walker)
