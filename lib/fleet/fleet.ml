open Svagc_vmem
module Jvm = Svagc_core.Jvm
module Multi_jvm = Svagc_core.Multi_jvm
module Heap = Svagc_heap.Heap
module Obj_model = Svagc_heap.Obj_model
module Histogram = Svagc_util.Histogram
module Rng = Svagc_util.Rng
module Tracer = Svagc_trace.Tracer
module Process = Svagc_kernel.Process

type config = {
  tenants : int;  (* main cohort, all sized to fit the overcommit budget *)
  surge : int;  (* late arrivals that exercise the queue and rejection *)
  overcommit : float;  (* committed : pool ratio the node is run at *)
  steps : int;  (* mutator steps per tenant *)
  seed : int;
  cgroup_soft : float;  (* soft limit as a fraction of the tenant's heap *)
  cgroup_hard : float;  (* hard limit as a fraction of the tenant's heap *)
  far_tier_cost : float;  (* far-tier latency multiplier over near *)
  near_frac : float;  (* near-tier slots as a fraction of the pool *)
  queue_limit : int;  (* admission wait-queue capacity *)
}

let default =
  {
    tenants = 1000;
    surge = 50;
    overcommit = 2.0;
    steps = 10;
    seed = 42;
    cgroup_soft = 0.5;
    cgroup_hard = 1.0;
    far_tier_cost = 4.0;
    near_frac = 0.5;
    queue_limit = 24;
  }

(* Heterogeneous tenant classes, assigned round-robin by id.  Object
   sizes scale with the heap so every class keeps a low live fraction and
   reaches Heap_full — and therefore GC — every few steps.  The large
   class allocates humongous buffers at or above the 10-page swapping
   threshold (Algorithm 3 page-aligns them and gives them their pages
   exclusively), so its compactions move whole pages: SwapVA exchanges
   the PTEs — swapped ones as slot handles — while memmove streams the
   bytes, demand-faulting every cold page first. *)
type klass = {
  k_name : string;
  k_heap_pages : int;
  k_entries : int;  (* live-object window *)
  k_min_bytes : int;  (* payload bounds, drawn uniformly *)
  k_span_bytes : int;
}

let classes =
  [|
    { k_name = "small"; k_heap_pages = 16; k_entries = 24; k_min_bytes = 64; k_span_bytes = 448 };
    { k_name = "medium"; k_heap_pages = 32; k_entries = 16; k_min_bytes = 1024; k_span_bytes = 3072 };
    { k_name = "large"; k_heap_pages = 128; k_entries = 4; k_min_bytes = 40960; k_span_bytes = 16384 };
  |]

type tenant = {
  id : int;
  klass : klass;
  heap_bytes : int;
  soft : int;  (* frames *)
  hard : int;  (* frames; the tenant's admission commitment *)
  allocs_per_step : int;
}

let make_tenant config id =
  let klass = classes.(id mod Array.length classes) in
  let heap_pages = klass.k_heap_pages in
  let heap_bytes = heap_pages * Addr.page_size in
  let frac f = int_of_float (ceil (f *. float_of_int heap_pages)) in
  let hard = Stdlib.max 2 (frac config.cgroup_hard) in
  let soft = Stdlib.max 1 (Stdlib.min hard (frac config.cgroup_soft)) in
  let mean_obj =
    Obj_model.header_bytes + klass.k_min_bytes + (klass.k_span_bytes / 2)
  in
  (* Allocate about a third of the heap per step: a GC every ~3 steps. *)
  let allocs_per_step = Stdlib.max 4 (heap_bytes / 3 / mean_obj) in
  { id; klass; heap_bytes; soft; hard; allocs_per_step }

type tenant_stats = {
  t_id : int;
  t_class : string;
  t_heap_pages : int;
  mutable t_decision : Admission.decision;
  mutable t_wave : int;  (* -1 = never ran *)
  t_gc_pauses : Histogram.t;
  t_stalls : Histogram.t;
  mutable t_gc_ns : float;
  mutable t_app_ns : float;
  mutable t_gc_count : int;
}

type result = {
  label : string;
  config : config;
  pool_frames : int;
  committed_frames : int;  (* peak: the main cohort's total commitment *)
  near_slots : int;
  waves : int;
  admitted : int;
  queued : int;
  rejected : int;
  stats : tenant_stats array;  (* by tenant id, rejected ones included *)
  pauses : Histogram.t;  (* all GC pauses across all tenants *)
  stalls : Histogram.t;  (* all per-step allocation stalls *)
  max_tenant_p99_pause : float;
  total_ns : float;  (* sum over waves of the slowest tenant's clock *)
  perf : Perf.t;
  tier : int * int;  (* final (near_in_use, far_in_use) *)
}

let think_ns = 2_000.0

(* One tenant's mutator: an LRU-cache-style loop over a fixed window of
   live roots; every insert retires one root, so most allocation is
   garbage and the heap cycles through Heap_full -> GC.  The allocation
   stall is the app-clock delta beyond the charges the step itself makes
   (think time + nominal alloc cost): exactly the reclaim drains, demand
   faults and post-GC mutator penalties billed into [Jvm.alloc]. *)
let make_stepper tenant jvm rng stats =
  let heap = Jvm.heap jvm in
  let window = Array.make tenant.klass.k_entries None in
  fun () ->
    let app0 = Jvm.app_ns jvm in
    for _ = 1 to tenant.allocs_per_step do
      let k = Rng.int rng tenant.klass.k_entries in
      (match window.(k) with
      | Some obj -> Heap.remove_root heap obj
      | None -> ());
      let size =
        Obj_model.header_bytes + tenant.klass.k_min_bytes
        + Rng.int rng tenant.klass.k_span_bytes
      in
      let obj = Jvm.alloc jvm ~size ~n_refs:0 ~cls:0 in
      Heap.add_root heap obj;
      window.(k) <- Some obj
    done;
    Jvm.charge_app_ns jvm think_ns;
    let nominal =
      think_ns +. (float_of_int tenant.allocs_per_step *. Jvm.alloc_cost_ns)
    in
    let stall = Jvm.app_ns jvm -. app0 -. nominal in
    Histogram.add stats.t_stalls (Float.max 0.0 stall)

let validate config =
  if config.tenants < 1 then invalid_arg "Fleet: tenants must be >= 1";
  if config.surge < 0 then invalid_arg "Fleet: surge must be >= 0";
  if config.steps < 1 then invalid_arg "Fleet: steps must be >= 1";
  if config.overcommit < 1.0 then invalid_arg "Fleet: overcommit must be >= 1";
  if config.cgroup_soft <= 0.0 || config.cgroup_soft > config.cgroup_hard then
    invalid_arg "Fleet: need 0 < cgroup_soft <= cgroup_hard";
  if config.cgroup_hard > 4.0 then invalid_arg "Fleet: cgroup_hard too large";
  if config.near_frac <= 0.0 || config.near_frac > 1.0 then
    invalid_arg "Fleet: near_frac must be in (0, 1]";
  if config.far_tier_cost < 1.0 then
    invalid_arg "Fleet: far_tier_cost must be >= 1";
  if config.queue_limit < 0 then invalid_arg "Fleet: queue_limit must be >= 0"

(* The pool is sized so the main cohort's total hard-limit commitment is
   exactly [overcommit] times the resident frames available — "1000
   tenants under 2x overcommit" means everyone runs, with half their
   hard-limit working sets swapped out at any instant.  The surge
   tenants arrive after the budget is spent: they queue (up to
   [queue_limit]) and run as a later wave, or are rejected. *)
let run ~collector_of ?(label = "fleet") config =
  validate config;
  let total = config.tenants + config.surge in
  let tenants = Array.init total (make_tenant config) in
  let committed_main =
    Array.fold_left
      (fun acc t -> if t.id < config.tenants then acc + t.hard else acc)
      0 tenants
  in
  let pool_frames =
    Stdlib.max 64
      (int_of_float
         (ceil (float_of_int committed_main /. config.overcommit)))
  in
  let phys_mib =
    Stdlib.max 256 ((pool_frames * Addr.page_size / (1024 * 1024) * 2) + 64)
  in
  let machine = Machine.create ~phys_mib Cost_model.xeon_6130 in
  let near_slots =
    Stdlib.max 1
      (int_of_float (config.near_frac *. float_of_int pool_frames))
  in
  let tier =
    Swap_tier.create machine ~near_slots ~far_cost_mult:config.far_tier_cost ()
  in
  let cgroup = Cgroup.create () in
  let admission =
    Admission.create machine ~capacity_frames:pool_frames
      ~overcommit:config.overcommit ~queue_limit:config.queue_limit ()
  in
  let stats =
    Array.map
      (fun t ->
        {
          t_id = t.id;
          t_class = t.klass.k_name;
          t_heap_pages = t.klass.k_heap_pages;
          t_decision = Admission.Rejected;
          t_wave = -1;
          (* Pre-sized: a GC roughly every 3 steps plus the forced one,
             and exactly one stall sample per step.  Keeps 10k tenants'
             worth of Vec backing from doubling-churn and 2x slack. *)
          t_gc_pauses = Histogram.create ~capacity:((config.steps / 2) + 2) ();
          t_stalls = Histogram.create ~capacity:config.steps ();
          t_gc_ns = 0.0;
          t_app_ns = 0.0;
          t_gc_count = 0;
        })
      tenants
  in
  (* Arrival: every tenant asks once, in id order. *)
  let first_wave = ref [] in
  Array.iter
    (fun t ->
      let d = Admission.request admission ~tenant:t.id ~frames:t.hard in
      stats.(t.id).t_decision <- d;
      if d = Admission.Admitted then first_wave := t.id :: !first_wave)
    tenants;
  let queued_total = ref 0 in
  Array.iter
    (fun s -> if s.t_decision = Admission.Queued then incr queued_total)
    stats;
  let total_ns = ref 0.0 in
  let run_wave wave_no ids =
    let ids = Array.of_list ids in
    let mj =
      Multi_jvm.create ~mem_limit_frames:pool_frames
        ~swap_dev:(Swap_tier.iface tier) ~cgroup:(Cgroup.iface cgroup) machine
        ~instances:(Array.length ids)
        ~spawn:(fun ~index machine ->
          let t = tenants.(ids.(index)) in
          Jvm.create machine
            ~name:(Printf.sprintf "tenant-%d" t.id)
            ~heap_bytes:t.heap_bytes ~collector_of ())
    in
    let jvms = Multi_jvm.jvms mj in
    Array.iteri
      (fun index jvm ->
        let t = tenants.(ids.(index)) in
        (* One trace track per tenant, keyed by its fleet-wide id. *)
        Jvm.set_trace_pid jvm t.id;
        if Tracer.tracing () then
          Tracer.name_process ~pid:t.id
            (Printf.sprintf "tenant-%d (%s)" t.id t.klass.k_name);
        let asid = Address_space.asid (Process.aspace (Jvm.proc jvm)) in
        Cgroup.set_limits cgroup ~asid ~soft:t.soft ~hard:t.hard)
      jvms;
    let steppers =
      Array.mapi
        (fun index jvm ->
          let t = tenants.(ids.(index)) in
          let rng = Rng.create ~seed:(config.seed + (7919 * (t.id + 1))) in
          make_stepper t jvm rng stats.(t.id))
        jvms
    in
    (* The wave runs on the event calendar: each tenant is a process
       whose event at simulated step s is one mutator step, and whose
       final event (s = steps) is the forced compacting collection — at
       peak pool pressure: by then the wave's whole working set is
       allocated and the cold majority of it swapped out, so this is
       where the compaction engines diverge — memmove demand-faults
       every swapped page (at far-tier latency for the demoted ones)
       while SwapVA exchanges slot handles without touching either
       tier.  FIFO seq tie-breaking makes the calendar replay the old
       lockstep wave order bit-for-bit. *)
    Multi_jvm.run_round_robin_indexed mj ~steps:(config.steps + 1)
      ~step:(fun ~index jvm s ->
        if s < config.steps then steppers.(index) ()
        else ignore (Jvm.run_gc jvm));
    Array.iteri
      (fun index jvm ->
        let t = tenants.(ids.(index)) in
        let s = stats.(t.id) in
        s.t_wave <- wave_no;
        List.iter
          (fun cycle ->
            Histogram.add s.t_gc_pauses (Svagc_gc.Gc_stats.pause_ns cycle))
          (Jvm.cycles jvm);
        s.t_gc_ns <- Jvm.gc_ns jvm;
        s.t_app_ns <- Jvm.app_ns jvm;
        s.t_gc_count <- Jvm.gc_count jvm)
      jvms;
    total_ns := !total_ns +. Multi_jvm.max_total_ns mj;
    Multi_jvm.release mj;
    Array.iter
      (fun idx -> Admission.release admission ~frames:tenants.(idx).hard)
      ids;
    (* Each wave materializes thousands of simulated pages; give the host
       heap back before the next wave spawns. *)
    Gc.full_major ()
  in
  let wave_no = ref 0 in
  let wave = ref (List.rev !first_wave) in
  while !wave <> [] do
    run_wave !wave_no !wave;
    incr wave_no;
    wave := List.map fst (Admission.take_ready admission)
  done;
  (* Fleet-wide percentiles: one O(total-samples) append pass (the old
     merge-into-fresh fold was O(tenants * total) — a 10k-tenant
     scaling wall), sorted lazily at the first quantile query. *)
  let total_pauses = ref 0 and total_stalls = ref 0 in
  Array.iter
    (fun s ->
      total_pauses := !total_pauses + Histogram.count s.t_gc_pauses;
      total_stalls := !total_stalls + Histogram.count s.t_stalls)
    stats;
  let pauses = Histogram.create ~capacity:!total_pauses () in
  let stalls = Histogram.create ~capacity:!total_stalls () in
  let max_p99 = ref 0.0 in
  Array.iter
    (fun s ->
      Histogram.merge_into ~into:pauses s.t_gc_pauses;
      Histogram.merge_into ~into:stalls s.t_stalls;
      if Histogram.count s.t_gc_pauses > 0 then
        max_p99 := Float.max !max_p99 (Histogram.p99 s.t_gc_pauses))
    stats;
  {
    label;
    config;
    pool_frames;
    committed_frames = committed_main;
    near_slots;
    waves = !wave_no;
    admitted = Admission.admitted admission;
    queued = !queued_total;
    rejected = Admission.rejected admission;
    stats;
    pauses;
    stalls;
    max_tenant_p99_pause = !max_p99;
    total_ns = !total_ns;
    perf = Perf.copy machine.Machine.perf;
    tier = Swap_tier.stats tier;
  }
