(** Fleet admission control: admit, queue or reject tenants against the
    committed-memory budget [overcommit * capacity_frames].

    A tenant commits its hard resident-frame limit on admission and
    releases it when it completes.  FIFO fairness: while the wait queue
    is non-empty, newcomers queue behind it (or are rejected once the
    queue is full) even if they would fit right now.  Rejections bump the
    machine's [admission_rejects] counter; admissions, queueings and
    rejections emit [fleet.admit] / [fleet.queue] / [fleet.reject] trace
    instants when tracing. *)

type decision =
  | Admitted
  | Queued
  | Rejected

val decision_name : decision -> string
(** ["admitted"] / ["queued"] / ["rejected"], as printed in reports and
    trace instants. *)

type t

val create :
  Svagc_vmem.Machine.t ->
  capacity_frames:int ->
  overcommit:float ->
  ?queue_limit:int ->
  unit ->
  t
(** [queue_limit] (default unbounded) caps the wait queue.
    @raise Invalid_argument if [capacity_frames <= 0], [overcommit < 1]
    or [queue_limit < 0]. *)

val request : t -> tenant:int -> frames:int -> decision
(** Ask to run a tenant that will commit [frames].
    @raise Invalid_argument if [frames <= 0]. *)

val release : t -> frames:int -> unit
(** A tenant completed; return its commitment.  Follow with
    {!take_ready} to start waiters that now fit. *)

val take_ready : t -> (int * int) list
(** Pop every queued [(tenant, frames)] that fits the budget now, in FIFO
    order, committing each. *)

val budget_frames : t -> int
(** The commitment ceiling: [floor (overcommit * capacity_frames)]. *)

val committed_frames : t -> int
(** Frames currently committed by admitted tenants. *)

val admitted : t -> int
(** Tenants admitted so far (direct + via {!take_ready}). *)

val rejected : t -> int
(** Tenants turned away because the wait queue was full. *)

val queue_length : t -> int
(** Tenants currently waiting (queued, not yet started). *)
