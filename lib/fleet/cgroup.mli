(** Per-tenant soft/hard resident-frame limits over the shared pool —
    the memory-cgroup plane of the fleet simulation.

    The module is pure accounting; the mechanism lives in the reclaimer,
    which drives it through {!iface}: a tenant's [resident] count is its
    page count in the reclaim tracking table, tenants over their {e soft}
    limit become preferred kswapd victims (soft-limit-first selection),
    and a tenant over its {e hard} limit has its coldest pages evicted
    immediately on the mapping/faulting/adopt paths.

    Tenants appear implicitly (unlimited) on first charge; register real
    limits with {!set_limits} — and call
    [Svagc_reclaim.Reclaim.enforce_hard] afterwards if the tenant may
    already be over. *)

type t

val create : unit -> t
(** An empty cgroup table: every tenant is unlimited until
    {!set_limits}. *)

val iface : t -> Svagc_reclaim.Reclaim.cgroup_iface
(** The accounting plane as a reclaimer-pluggable closure record. *)

val set_limits : t -> asid:int -> soft:int -> hard:int -> unit
(** @raise Invalid_argument unless [0 <= soft <= hard] and [hard >= 1]. *)

val resident : t -> asid:int -> int
(** Pages currently resident (tracked by the reclaimer); 0 for unknown
    tenants. *)

val excess : t -> asid:int -> int
(** Pages above the hard limit (0 when under, or unknown). *)

val prefer : t -> asid:int -> bool
(** Over the soft limit: a preferred eviction victim. *)

val any_over_soft : t -> bool
(** O(1): is any tenant over its soft limit? *)

val tenant_count : t -> int
(** Tenants that have appeared (charged a page or registered limits). *)

val stats : t -> (int * int * int * int) list
(** [(asid, resident, soft, hard)] in ascending-asid order. *)
