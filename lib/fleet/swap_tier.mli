(** Two-tier swap device: a bounded "near" tier (local NVMe, the cost
    model's swap latencies) in front of an unbounded "far" tier (remote
    far memory, [far_cost_mult] times slower), behind the
    {!Svagc_reclaim.Reclaim.dev_iface} seam.

    Slot ids handed to the reclaimer (and encoded into swapped PTEs) are
    {e virtual}: an id's payload can migrate between the backing devices
    without any page-table fixup.  Placement policy:

    - swap-out always lands in the near tier (freshly evicted pages are
      the warmest thing on the device);
    - when the near tier is full, its {e coldest} slot — oldest
      allocation still near-resident — is demoted to the far tier first
      ([tier_demotions], cost [far_out_ns] folded into the swap-out);
    - a demand fault that reads a far slot is a promotion
      ([tier_promotions]): the payload returns at far latency and the
      slot is freed by the reclaimer, so the page re-enters DRAM.

    Deterministic: demotion order is allocation order (a FIFO queue with
    lazy generation invalidation), no randomness, no wall clock. *)

type t

val create :
  Svagc_vmem.Machine.t -> near_slots:int -> ?far_cost_mult:float -> unit -> t
(** [near_slots] bounds the near tier; [far_cost_mult] (default 4.0)
    scales both far-tier latencies from the machine's cost model.
    Demotion/promotion counters are bumped on [machine]'s perf.
    @raise Invalid_argument if [near_slots <= 0] or [far_cost_mult < 1]. *)

val iface : t -> Svagc_reclaim.Reclaim.dev_iface
(** The device as a reclaimer-pluggable closure record. *)

val near_slots : t -> int
(** Capacity of the near tier, as configured. *)

val near_in_use : t -> int
(** Allocated slots whose payload currently lives in the near tier. *)

val far_in_use : t -> int
(** Allocated slots whose payload has been demoted to the far tier. *)

val slots_in_use : t -> int
(** [near_in_use + far_in_use]: all live virtual slot ids. *)

val stats : t -> int * int
(** [(near_in_use, far_in_use)]. *)

val allocated : t -> slot:int -> bool
(** Is [slot] a live virtual id (on either tier)? *)

val peek : t -> slot:int -> bytes option
(** The slot's payload without promotion side effects (oracle path). *)
