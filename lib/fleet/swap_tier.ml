open Svagc_vmem
module Swap_dev = Svagc_reclaim.Swap_dev
module Vec = Svagc_util.Vec
module Tracer = Svagc_trace.Tracer

(* Where a virtual slot's payload currently lives.  The reclaimer (and the
   swapped PTEs it writes) only ever see the virtual id, so a demotion can
   move the payload between backing devices without touching a single
   page table. *)
type loc =
  | Near of int
  | Far of int
  | Free

type t = {
  machine : Machine.t;
  near : Swap_dev.t;
  far : Swap_dev.t;
  near_slots : int;
  near_out_ns : float;
  near_in_ns : float;
  far_out_ns : float;
  far_in_ns : float;
  mutable locs : loc array;  (* virtual slot id -> location *)
  mutable gens : int array;  (* bumped on every (re)allocation of an id *)
  free : int Vec.t;  (* freed virtual ids, reused LIFO *)
  mutable high_water : int;
  (* Near-resident ids in allocation (= first-write) order; head = coldest.
     Entries are invalidated lazily by generation mismatch. *)
  cold : (int * int) Queue.t;
}

let create machine ~near_slots ?(far_cost_mult = 4.0) () =
  if near_slots <= 0 then
    invalid_arg "Swap_tier.create: near_slots must be positive";
  if far_cost_mult < 1.0 then
    invalid_arg "Swap_tier.create: far_cost_mult must be >= 1.0";
  let cost = machine.Machine.cost in
  let near_out_ns = cost.Cost_model.swap_out_ns in
  let near_in_ns = cost.Cost_model.swap_in_ns in
  {
    machine;
    near = Swap_dev.create ();
    far = Swap_dev.create ();
    near_slots;
    near_out_ns;
    near_in_ns;
    far_out_ns = near_out_ns *. far_cost_mult;
    far_in_ns = near_in_ns *. far_cost_mult;
    locs = Array.make 64 Free;
    gens = Array.make 64 0;
    free = Vec.create ();
    high_water = 0;
    cold = Queue.create ();
  }

let near_slots t = t.near_slots

let near_in_use t = Swap_dev.slots_in_use t.near

let far_in_use t = Swap_dev.slots_in_use t.far

let slots_in_use t = near_in_use t + far_in_use t

let stats t = (near_in_use t, far_in_use t)

let allocated t ~slot =
  slot >= 0 && slot < Array.length t.locs && t.locs.(slot) <> Free

let ensure_capacity t n =
  let len = Array.length t.locs in
  if n >= len then begin
    let len' = Stdlib.max (2 * len) (n + 1) in
    let locs' = Array.make len' Free in
    Array.blit t.locs 0 locs' 0 len;
    t.locs <- locs';
    let gens' = Array.make len' 0 in
    Array.blit t.gens 0 gens' 0 len;
    t.gens <- gens'
  end

(* Move the coldest near slot's payload to the far device.  The cold
   queue can hold ids whose near residency already ended (faulted back
   in and freed); those are skipped by generation check.  Callers only
   demote when the near device is non-empty, so a live entry exists. *)
let rec demote_coldest t =
  match Queue.pop t.cold with
  | exception Queue.Empty ->
    invalid_arg "Swap_tier: near tier full but cold queue empty"
  | vid, gen ->
    if gen <> t.gens.(vid) then demote_coldest t
    else begin
      match t.locs.(vid) with
      | Near nslot ->
        let payload = Swap_dev.read t.near ~slot:nslot in
        Swap_dev.free_slot t.near nslot;
        let fslot = Swap_dev.alloc_slot t.far in
        Swap_dev.write t.far ~slot:fslot payload;
        t.locs.(vid) <- Far fslot;
        let perf = t.machine.Machine.perf in
        perf.Perf.tier_demotions <- perf.Perf.tier_demotions + 1;
        if Tracer.tracing () then
          Tracer.instant ~cat:"fleet"
            ~args:
              [
                ("slot", Svagc_trace.Event.Int vid);
                ("far_in_use", Svagc_trace.Event.Int (far_in_use t));
              ]
            "tier.demote"
      | Far _ | Free -> demote_coldest t
    end

let alloc_slot t =
  (* A full near tier demotes its coldest slot before accepting the new
     page — freshly evicted pages are the warmest thing on the device. *)
  if near_in_use t >= t.near_slots then demote_coldest t;
  let vid =
    match Vec.pop t.free with
    | Some vid -> vid
    | None ->
      let vid = t.high_water in
      t.high_water <- t.high_water + 1;
      vid
  in
  ensure_capacity t vid;
  let nslot = Swap_dev.alloc_slot t.near in
  t.locs.(vid) <- Near nslot;
  t.gens.(vid) <- t.gens.(vid) + 1;
  Queue.push (vid, t.gens.(vid)) t.cold;
  vid

let free_slot t vid =
  match t.locs.(vid) with
  | Near nslot ->
    Swap_dev.free_slot t.near nslot;
    t.locs.(vid) <- Free;
    Vec.push t.free vid
  | Far fslot ->
    Swap_dev.free_slot t.far fslot;
    t.locs.(vid) <- Free;
    Vec.push t.free vid
  | Free -> invalid_arg "Swap_tier.free_slot: slot not allocated"

let write t ~slot:vid payload =
  match t.locs.(vid) with
  | Near nslot -> Swap_dev.write t.near ~slot:nslot payload
  | Far fslot -> Swap_dev.write t.far ~slot:fslot payload
  | Free -> invalid_arg "Swap_tier.write: slot not allocated"

(* A read of a far slot is the promote-on-fault path: the payload comes
   back over the slow tier (the fault's [d_in_ns] already charged the far
   latency) and the slot is then freed by the reclaimer as usual, so the
   page re-enters DRAM. *)
let read t ~slot:vid =
  match t.locs.(vid) with
  | Near nslot -> Swap_dev.read t.near ~slot:nslot
  | Far fslot ->
    let perf = t.machine.Machine.perf in
    perf.Perf.tier_promotions <- perf.Perf.tier_promotions + 1;
    if Tracer.tracing () then
      Tracer.instant ~cat:"fleet"
        ~args:[ ("slot", Svagc_trace.Event.Int vid) ]
        "tier.promote";
    Swap_dev.read t.far ~slot:fslot
  | Free -> invalid_arg "Swap_tier.read: slot not allocated"

let peek t ~slot:vid =
  match t.locs.(vid) with
  | Near nslot -> Swap_dev.peek t.near ~slot:nslot
  | Far fslot -> Swap_dev.peek t.far ~slot:fslot
  | Free -> invalid_arg "Swap_tier.peek: slot not allocated"

let out_ns t =
  if near_in_use t >= t.near_slots then t.far_out_ns +. t.near_out_ns
  else t.near_out_ns

let in_ns t ~slot:vid =
  match t.locs.(vid) with
  | Far _ -> t.far_in_ns
  | Near _ | Free -> t.near_in_ns

let iface t =
  {
    Svagc_reclaim.Reclaim.d_alloc_slot = (fun () -> alloc_slot t);
    d_free_slot = (fun slot -> free_slot t slot);
    d_write = (fun ~slot b -> write t ~slot b);
    d_read = (fun ~slot -> read t ~slot);
    d_peek = (fun ~slot -> peek t ~slot);
    d_allocated = (fun ~slot -> allocated t ~slot);
    d_slots_in_use = (fun () -> slots_in_use t);
    d_out_ns = (fun () -> out_ns t);
    d_in_ns = (fun ~slot -> in_ns t ~slot);
    d_tier_stats = (fun () -> Some (stats t));
  }
