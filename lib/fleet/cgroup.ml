(* Per-tenant resident-page accounting over the shared frame pool.  Pure
   state: the reclaimer drives it through the closure record built by
   [iface], charging/uncharging as pages enter/leave its tracking table,
   and consults the soft/hard limits for victim selection and hard-limit
   enforcement.  A tenant is created implicitly (unlimited) on its first
   charge — heap pages map during spawn, typically before the fleet
   driver registers limits. *)

type tenant = {
  asid : int;
  mutable resident : int;
  mutable soft : int;
  mutable hard : int;
}

type t = {
  tenants : (int, tenant) Hashtbl.t;
  (* Tenants currently over their soft limit, maintained incrementally so
     the kswapd wake check is O(1). *)
  mutable over_soft : int;
}

let create () = { tenants = Hashtbl.create 256; over_soft = 0 }

let find t asid =
  match Hashtbl.find_opt t.tenants asid with
  | Some tn -> tn
  | None ->
    let tn = { asid; resident = 0; soft = max_int; hard = max_int } in
    Hashtbl.add t.tenants asid tn;
    tn

(* Track the over-soft population across any mutation of [tn]. *)
let update t tn f =
  let was = tn.resident > tn.soft in
  f tn;
  let is = tn.resident > tn.soft in
  if is && not was then t.over_soft <- t.over_soft + 1
  else if was && not is then t.over_soft <- t.over_soft - 1

let charge t ~asid = update t (find t asid) (fun tn -> tn.resident <- tn.resident + 1)

let uncharge t ~asid =
  update t (find t asid) (fun tn -> tn.resident <- tn.resident - 1)

let set_limits t ~asid ~soft ~hard =
  if hard < 1 then invalid_arg "Cgroup.set_limits: hard must be >= 1";
  if soft < 0 || soft > hard then
    invalid_arg "Cgroup.set_limits: need 0 <= soft <= hard";
  update t (find t asid) (fun tn ->
      tn.soft <- soft;
      tn.hard <- hard)

let resident t ~asid =
  match Hashtbl.find_opt t.tenants asid with
  | Some tn -> tn.resident
  | None -> 0

let excess t ~asid =
  match Hashtbl.find_opt t.tenants asid with
  | Some tn -> Stdlib.max 0 (tn.resident - tn.hard)
  | None -> 0

let prefer t ~asid =
  match Hashtbl.find_opt t.tenants asid with
  | Some tn -> tn.resident > tn.soft
  | None -> false

let any_over_soft t = t.over_soft > 0

let tenant_count t = Hashtbl.length t.tenants

let stats t =
  Hashtbl.fold (fun _ tn acc -> (tn.asid, tn.resident, tn.soft, tn.hard) :: acc)
    t.tenants []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

let iface t =
  {
    Svagc_reclaim.Reclaim.cg_charge = (fun ~asid -> charge t ~asid);
    cg_uncharge = (fun ~asid -> uncharge t ~asid);
    cg_excess = (fun ~asid -> excess t ~asid);
    cg_prefer = (fun ~asid -> prefer t ~asid);
    cg_any_over_soft = (fun () -> any_over_soft t);
    cg_stats = (fun () -> stats t);
  }
