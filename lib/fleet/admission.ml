open Svagc_vmem
module Tracer = Svagc_trace.Tracer

type decision =
  | Admitted
  | Queued
  | Rejected

let decision_name = function
  | Admitted -> "admitted"
  | Queued -> "queued"
  | Rejected -> "rejected"

type t = {
  machine : Machine.t;
  capacity_frames : int;
  overcommit : float;
  budget_frames : int;  (* floor (overcommit * capacity_frames) *)
  queue_limit : int;
  mutable committed : int;
  mutable admitted : int;
  mutable queued_total : int;
  mutable rejected : int;
  queue : (int * int) Queue.t;  (* (tenant, frames), FIFO *)
}

let create machine ~capacity_frames ~overcommit ?(queue_limit = max_int) () =
  if capacity_frames <= 0 then
    invalid_arg "Admission.create: capacity_frames must be positive";
  if overcommit < 1.0 then
    invalid_arg "Admission.create: overcommit must be >= 1.0";
  if queue_limit < 0 then
    invalid_arg "Admission.create: queue_limit must be non-negative";
  {
    machine;
    capacity_frames;
    overcommit;
    budget_frames = int_of_float (overcommit *. float_of_int capacity_frames);
    queue_limit;
    committed = 0;
    admitted = 0;
    queued_total = 0;
    rejected = 0;
    queue = Queue.create ();
  }

let budget_frames t = t.budget_frames

let committed_frames t = t.committed

let admitted t = t.admitted

let rejected t = t.rejected

let queue_length t = Queue.length t.queue

let instant t name ~tenant ~frames =
  if Tracer.tracing () then
    Tracer.instant ~cat:"fleet"
      ~args:
        [
          ("tenant", Svagc_trace.Event.Int tenant);
          ("frames", Svagc_trace.Event.Int frames);
          ("committed", Svagc_trace.Event.Int t.committed);
        ]
      name

let admit t ~tenant ~frames =
  t.committed <- t.committed + frames;
  t.admitted <- t.admitted + 1;
  instant t "fleet.admit" ~tenant ~frames

let reject t ~tenant ~frames =
  t.rejected <- t.rejected + 1;
  let perf = t.machine.Machine.perf in
  perf.Perf.admission_rejects <- perf.Perf.admission_rejects + 1;
  instant t "fleet.reject" ~tenant ~frames

(* FIFO fairness: while anyone is waiting, a newcomer may not jump the
   queue even if it would fit — it queues behind them (or is rejected
   when the queue is full).  An oversized tenant that could never fit is
   rejected outright. *)
let request t ~tenant ~frames =
  if frames <= 0 then invalid_arg "Admission.request: frames must be positive";
  if frames > t.budget_frames then begin
    reject t ~tenant ~frames;
    Rejected
  end
  else if Queue.is_empty t.queue && t.committed + frames <= t.budget_frames
  then begin
    admit t ~tenant ~frames;
    Admitted
  end
  else if Queue.length t.queue < t.queue_limit then begin
    Queue.push (tenant, frames) t.queue;
    t.queued_total <- t.queued_total + 1;
    instant t "fleet.queue" ~tenant ~frames;
    Queued
  end
  else begin
    reject t ~tenant ~frames;
    Rejected
  end

let release t ~frames =
  if frames < 0 || frames > t.committed then
    invalid_arg "Admission.release: bad frame count";
  t.committed <- t.committed - frames

let take_ready t =
  let rec go acc =
    match Queue.peek_opt t.queue with
    | Some (tenant, frames) when t.committed + frames <= t.budget_frames ->
      ignore (Queue.pop t.queue);
      admit t ~tenant ~frames;
      go ((tenant, frames) :: acc)
    | Some _ | None -> List.rev acc
  in
  go []
