(** The fleet driver: 1k+ heterogeneous tenants on one overcommitted
    node, tying together {!Admission} (who runs), {!Cgroup} (per-tenant
    residency limits), {!Swap_tier} (where cold pages go) and
    [Multi_jvm] (copy-bandwidth contention while a wave runs).

    Tenants arrive in id order and commit their hard limit of resident
    frames; the pool is sized so the main cohort is exactly [overcommit]
    times oversubscribed.  Admitted tenants run as a wave of co-running
    JVMs (round-robin mutator steps, shared copy bandwidth); queued
    tenants run in later waves as commitments release; the rest are
    rejected.  Per-tenant GC-pause and allocation-stall distributions are
    collected into {!Svagc_util.Histogram}s so p50/p99/p999 — not just
    means — survive into the result. *)

type config = {
  tenants : int;  (* main cohort, all sized to fit the overcommit budget *)
  surge : int;  (* late arrivals that exercise the queue and rejection *)
  overcommit : float;  (* committed : pool ratio the node is run at *)
  steps : int;  (* mutator steps per tenant *)
  seed : int;
  cgroup_soft : float;  (* soft limit as a fraction of the tenant's heap *)
  cgroup_hard : float;  (* hard limit as a fraction of the tenant's heap *)
  far_tier_cost : float;  (* far-tier latency multiplier over near *)
  near_frac : float;  (* near-tier slots as a fraction of the pool *)
  queue_limit : int;  (* admission wait-queue capacity *)
}

val default : config
(** 1000 tenants + 50 surge arrivals at 2x overcommit, 10 steps,
    soft = 0.5 / hard = 1.0 of each heap, 4x far tier over half the
    pool, queue capacity 24. *)

type tenant_stats = {
  t_id : int;
  t_class : string;
  t_heap_pages : int;
  mutable t_decision : Admission.decision;
  mutable t_wave : int;  (** which wave ran it; -1 = never ran *)
  t_gc_pauses : Svagc_util.Histogram.t;
  t_stalls : Svagc_util.Histogram.t;
  mutable t_gc_ns : float;
  mutable t_app_ns : float;
  mutable t_gc_count : int;
}

type result = {
  label : string;
  config : config;
  pool_frames : int;
  committed_frames : int;  (** peak: the main cohort's total commitment *)
  near_slots : int;
  waves : int;
  admitted : int;
  queued : int;
  rejected : int;
  stats : tenant_stats array;  (** by tenant id, rejected ones included *)
  pauses : Svagc_util.Histogram.t;  (** all GC pauses, all tenants *)
  stalls : Svagc_util.Histogram.t;  (** all per-step allocation stalls *)
  max_tenant_p99_pause : float;
  total_ns : float;  (** sum over waves of the slowest tenant's clock *)
  perf : Svagc_vmem.Perf.t;
  tier : int * int;  (** final (near_in_use, far_in_use) *)
}

val run :
  collector_of:(Svagc_heap.Heap.t -> Svagc_gc.Gc_intf.t) ->
  ?label:string ->
  config ->
  result
(** Deterministic: same [config] (seed included) and collector replay
    every admission decision, demotion, promotion and percentile to the
    bit.  @raise Invalid_argument on nonsensical configs. *)
