(** The managed heap: a contiguous virtual range with bump-pointer
    allocation following the paper's Algorithm 3 — objects at or above the
    swapping threshold are placed on page boundaries and own their pages
    exclusively, so the GC can move them by swapping PTEs.

    The heap is GC-agnostic: collectors (lib/gc, lib/core) drive marking,
    forwarding, adjusting and compaction through this interface. *)

type t

val create :
  Svagc_kernel.Process.t ->
  ?base:int ->
  ?threshold_pages:int ->
  ?stamp_headers:bool ->
  size_bytes:int ->
  unit ->
  t
(** A heap of [size_bytes] starting at [base] (default 4 GiB mark, page
    aligned).  [threshold_pages] (default 10, the paper's break-even) is
    the Algorithm 3 [Threshold_Swapping].  [stamp_headers] (default true)
    writes each object's id/size into simulated memory — disable for very
    large runs to keep host memory flat. *)

val proc : t -> Svagc_kernel.Process.t

val base : t -> int

val limit : t -> int
(** One past the last usable byte ([heap.end] in Algorithm 3). *)

val top : t -> int

val threshold_pages : t -> int

val set_top : t -> int -> unit
(** Used by the GC after compaction. *)

exception Heap_full

val alloc : t -> size:int -> n_refs:int -> cls:int -> Obj_model.t
(** Algorithm 3 [AllocMem] from the shared space: page-aligns large
    objects before and after placement, accounts alignment waste in the
    machine's perf counters, maps fresh pages on demand and stamps the
    header.  @raise Heap_full when the aligned request does not fit (the
    caller is expected to run a GC and retry). *)

val alloc_at : t -> addr:int -> size:int -> n_refs:int -> cls:int -> Obj_model.t
(** Register an object at an address obtained externally (the TLAB path).
    The range must lie inside the heap below [top]. *)

val alloc_chunk : t -> bytes:int -> int
(** Carve a page-aligned TLAB chunk out of the shared space and return its
    start.  @raise Heap_full when it does not fit. *)

val reserve : t -> size:int -> int
(** Algorithm 3 placement without object registration: page-align if at or
    above the threshold, advance the top (tail-aligning large objects so
    they own their pages), map the backing and return the address.  Used
    by the generational collector to compute promotion destinations.
    @raise Heap_full. *)

val adopt : t -> Obj_model.t -> unit
(** Register an object record that already lives (or is about to live) at
    its [addr] inside this heap — the promotion path: the object keeps its
    identity while changing spaces.  @raise Invalid_argument if the range
    is outside the heap. *)

val evict : t -> Obj_model.t -> unit
(** Remove an object from this heap's bookkeeping without touching its
    bytes (the other half of a promotion).  Roots pointing at it are
    dropped here and must be re-added on the destination heap if needed. *)

val reset : t -> unit
(** Empty the space: forget every object and root and pull the top back to
    the base (the end of a minor collection for the young space).  Backing
    frames stay mapped. *)

val ensure_mapped_to : t -> int -> unit
(** Make sure every page below the given address is backed. *)

(** {2 Object graph} *)

val objects : t -> Obj_model.t Svagc_util.Vec.t
(** All live-or-unreclaimed objects; sorted by address on demand via
    {!sort_objects}. *)

val sort_objects : t -> unit

val object_at : t -> int -> Obj_model.t option
(** Lookup by current address. *)

val rebuild_index : t -> unit
(** Recompute the address index after the GC has moved objects and pruned
    the dead ones. *)

val add_root : t -> Obj_model.t -> unit

val remove_root : t -> Obj_model.t -> unit

val iter_roots : t -> (Obj_model.t -> unit) -> unit

val root_count : t -> int

val set_ref : t -> Obj_model.t -> slot:int -> Obj_model.t option -> unit
(** Point [slot] of the object at another object (or null). *)

val deref : t -> Obj_model.t -> slot:int -> Obj_model.t option
(** Follow a reference slot.  @raise Invalid_argument on a dangling
    address — that would be a GC bug. *)

(** {2 Payload IO (through the MMU)} *)

val write_payload : t -> Obj_model.t -> off:int -> bytes -> unit
(** [off] is relative to the payload (header excluded). *)

val read_payload : t -> Obj_model.t -> off:int -> len:int -> bytes

val checksum_object : t -> Obj_model.t -> int64
(** Over the full object range, header included. *)

val stamp_header : t -> Obj_model.t -> unit

val touch_object : t -> Obj_model.t -> core:int -> max_bytes:int -> unit
(** Measured access to the object's first [max_bytes] (TLB + LLC models);
    used by the Table III instrumentation. *)

val header_matches : t -> Obj_model.t -> bool
(** Re-read the stamped header and compare with the mirror — the
    oracle that object moves preserved identity. *)

(** {2 Statistics} *)

val used_bytes : t -> int
(** [top - base]. *)

val live_bytes : t -> int
(** Sum of registered object sizes. *)

val free_bytes : t -> int

val wasted_bytes : t -> int
(** Alignment waste accumulated by this heap's allocations. *)

val object_count : t -> int

val audit : t -> (unit, string list) result
(** Post-GC invariant check, used by the resilience experiment and the
    fault-injection tests as the ground truth that degraded collections
    still produced a correct heap.  Verifies, for every live object: its
    range lies inside the heap bounds, every page it touches still
    translates through the page table, and its stamped header (id, size)
    reads back intact through the MMU; then checks that no two live
    objects overlap.  [Error] carries one human-readable line per
    violation, in discovery order. *)
