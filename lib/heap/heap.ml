open Svagc_vmem
module Process = Svagc_kernel.Process
module Vec = Svagc_util.Vec

type t = {
  proc : Process.t;
  base : int;
  limit : int;
  mutable top : int;
  mutable mapped_until : int;
  threshold_pages : int;
  stamp_headers : bool;
  objects : Obj_model.t Vec.t;
  by_addr : (int, Obj_model.t) Hashtbl.t;
  roots : (int, Obj_model.t) Hashtbl.t;  (* keyed by object id *)
  mutable next_id : int;
  mutable waste : int;
}

exception Heap_full

let default_base = 4 * 1024 * 1024 * 1024

let create proc ?(base = default_base) ?(threshold_pages = 10)
    ?(stamp_headers = true) ~size_bytes () =
  if not (Addr.is_page_aligned base) then invalid_arg "Heap.create: unaligned base";
  if size_bytes <= 0 then invalid_arg "Heap.create: empty heap";
  if threshold_pages <= 0 then invalid_arg "Heap.create: threshold must be positive";
  {
    proc;
    base;
    limit = base + Addr.align_up size_bytes;
    top = base;
    mapped_until = base;
    threshold_pages;
    stamp_headers;
    objects = Vec.create ();
    by_addr = Hashtbl.create 1024;
    roots = Hashtbl.create 64;
    next_id = 1;
    waste = 0;
  }

let proc t = t.proc
let base t = t.base
let limit t = t.limit
let top t = t.top
let threshold_pages t = t.threshold_pages
let set_top t v = t.top <- v

let ensure_mapped_to t addr =
  let target = Addr.align_up addr in
  if target > t.limit then invalid_arg "Heap.ensure_mapped_to: beyond heap limit";
  if target > t.mapped_until then begin
    let pages = (target - t.mapped_until) / Addr.page_size in
    Address_space.map_range (Process.aspace t.proc) ~va:t.mapped_until ~pages;
    t.mapped_until <- target
  end

let perf t = (Process.machine t.proc).Machine.perf

let account_waste t bytes =
  if bytes > 0 then begin
    t.waste <- t.waste + bytes;
    (perf t).Perf.alloc_waste_bytes <- (perf t).Perf.alloc_waste_bytes + bytes
  end

let stamp_header t obj =
  if t.stamp_headers then begin
    let aspace = Process.aspace t.proc in
    ensure_mapped_to t (obj.Obj_model.addr + Obj_model.header_bytes);
    Address_space.write_i64 aspace ~va:obj.Obj_model.addr
      (Int64.of_int obj.Obj_model.id);
    Address_space.write_i64 aspace ~va:(obj.Obj_model.addr + 8)
      (Int64.of_int obj.Obj_model.size)
  end

let header_matches t obj =
  if not t.stamp_headers then true
  else begin
    let aspace = Process.aspace t.proc in
    (* Peek, don't read: verifying a header must not demand-fault a
       swapped page in (the audit under memory pressure stays passive). *)
    let id = Address_space.peek_i64 aspace ~va:obj.Obj_model.addr in
    let size = Address_space.peek_i64 aspace ~va:(obj.Obj_model.addr + 8) in
    Int64.to_int id = obj.Obj_model.id && Int64.to_int size = obj.Obj_model.size
  end

let register t obj =
  Vec.push t.objects obj;
  Hashtbl.replace t.by_addr obj.Obj_model.addr obj;
  (perf t).Perf.alloc_bytes <- (perf t).Perf.alloc_bytes + obj.Obj_model.size;
  stamp_header t obj

(* IfSwapAlign from Algorithm 3. *)
let if_swap_align t ~size addr =
  if size >= t.threshold_pages * Addr.page_size then Addr.align_up addr else addr

let reserve t ~size =
  if size < Obj_model.header_bytes then invalid_arg "Heap.reserve: size below header";
  let new_top = if_swap_align t ~size t.top in
  if new_top + size > t.limit then raise Heap_full;
  account_waste t (new_top - t.top);
  t.top <- new_top;
  let addr = t.top in
  t.top <- t.top + size;
  let aligned_top = if_swap_align t ~size t.top in
  account_waste t (aligned_top - t.top);
  t.top <- aligned_top;
  ensure_mapped_to t (min t.limit (Addr.align_up t.top));
  addr

let alloc t ~size ~n_refs ~cls =
  let addr = reserve t ~size in
  let obj = Obj_model.make ~id:t.next_id ~addr ~size ~cls ~n_refs in
  t.next_id <- t.next_id + 1;
  register t obj;
  obj

let alloc_chunk t ~bytes =
  if bytes <= 0 then invalid_arg "Heap.alloc_chunk: empty chunk";
  let start = Addr.align_up t.top in
  if start + bytes > t.limit then raise Heap_full;
  account_waste t (start - t.top);
  t.top <- start + bytes;
  ensure_mapped_to t (Addr.align_up t.top);
  start

let alloc_at t ~addr ~size ~n_refs ~cls =
  if addr < t.base || addr + size > t.limit then
    invalid_arg "Heap.alloc_at: outside the heap";
  ensure_mapped_to t (Addr.align_up (addr + size));
  let obj = Obj_model.make ~id:t.next_id ~addr ~size ~cls ~n_refs in
  t.next_id <- t.next_id + 1;
  register t obj;
  obj

let objects t = t.objects

let sort_objects t =
  Vec.sort (fun a b -> compare a.Obj_model.addr b.Obj_model.addr) t.objects

let object_at t addr = Hashtbl.find_opt t.by_addr addr

let rebuild_index t =
  Hashtbl.reset t.by_addr;
  Vec.iter (fun o -> Hashtbl.replace t.by_addr o.Obj_model.addr o) t.objects

let adopt t obj =
  if obj.Obj_model.addr < t.base || Obj_model.end_addr obj > t.limit then
    invalid_arg "Heap.adopt: object range outside this heap";
  Vec.push t.objects obj;
  Hashtbl.replace t.by_addr obj.Obj_model.addr obj

let evict t obj =
  Hashtbl.remove t.by_addr obj.Obj_model.addr;
  Hashtbl.remove t.roots obj.Obj_model.id;
  (* One in-place compaction pass; an object registered twice (impossible
     via [adopt]/[alloc]) would only lose its first slot. *)
  ignore (Vec.remove_first (fun o -> o == obj) t.objects)

let reset t =
  Vec.clear t.objects;
  Hashtbl.reset t.by_addr;
  Hashtbl.reset t.roots;
  t.top <- t.base

let add_root t obj = Hashtbl.replace t.roots obj.Obj_model.id obj

let remove_root t obj = Hashtbl.remove t.roots obj.Obj_model.id

let iter_roots t f = Hashtbl.iter (fun _ obj -> f obj) t.roots

let root_count t = Hashtbl.length t.roots

let set_ref _t obj ~slot target =
  obj.Obj_model.refs.(slot) <-
    (match target with Some o -> o.Obj_model.addr | None -> 0)

let deref t obj ~slot =
  let addr = obj.Obj_model.refs.(slot) in
  if addr = 0 then None
  else
    match object_at t addr with
    | Some o -> Some o
    | None ->
      invalid_arg
        (Format.asprintf "Heap.deref: dangling reference to %a (GC bug)" Addr.pp addr)

let payload_va obj ~off = obj.Obj_model.addr + Obj_model.header_bytes + off

let check_payload_range obj ~off ~len =
  if off < 0 || len < 0 then invalid_arg "Heap: negative payload range";
  if Obj_model.header_bytes + off + len > obj.Obj_model.size then
    invalid_arg "Heap: payload range escapes the object"

let write_payload t obj ~off data =
  check_payload_range obj ~off ~len:(Bytes.length data);
  Address_space.write_bytes (Process.aspace t.proc) ~va:(payload_va obj ~off)
    ~src:data

let read_payload t obj ~off ~len =
  check_payload_range obj ~off ~len;
  Address_space.read_bytes (Process.aspace t.proc) ~va:(payload_va obj ~off) ~len

let checksum_object t obj =
  Address_space.checksum (Process.aspace t.proc) ~va:obj.Obj_model.addr
    ~len:obj.Obj_model.size

let touch_object t obj ~core ~max_bytes =
  let len = min max_bytes obj.Obj_model.size in
  Address_space.touch_range (Process.aspace t.proc) ~core ~va:obj.Obj_model.addr
    ~len

let used_bytes t = t.top - t.base

let live_bytes t = Vec.fold_left (fun acc o -> acc + o.Obj_model.size) 0 t.objects

let free_bytes t = t.limit - t.top

let wasted_bytes t = t.waste

let object_count t = Vec.length t.objects

let audit t =
  let problems = ref [] in
  let bad fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  let aspace = Process.aspace t.proc in
  Vec.iter
    (fun o ->
      let addr = o.Obj_model.addr and size = o.Obj_model.size in
      let id = o.Obj_model.id in
      if addr < t.base || addr + size > t.limit then
        bad "object %d: [0x%x, 0x%x) escapes the heap [0x%x, 0x%x)" id addr
          (addr + size) t.base t.limit
      else begin
        (* Every page the object touches must still be mapped (present or
           swapped out — under memory pressure a live object's pages may
           legitimately live on the swap device): a botched swap/fallback
           would leave a genuine hole here. *)
        let first = Addr.align_down addr in
        let last = addr + size - 1 in
        let va = ref first in
        let hole = ref None in
        while !hole = None && !va <= last do
          if not (Address_space.is_mapped aspace ~va:!va) then hole := Some !va;
          va := !va + Addr.page_size
        done;
        match !hole with
        | Some va -> bad "object %d: page 0x%x is unmapped" id va
        | None ->
          if not (header_matches t o) then
            bad "object %d at 0x%x: header does not match (id/size stamp)" id addr
      end)
    t.objects;
  (* Live objects must not overlap each other. *)
  let sorted =
    List.sort
      (fun a b -> compare a.Obj_model.addr b.Obj_model.addr)
      (Vec.to_list t.objects)
  in
  (let rec scan = function
     | a :: (b :: _ as rest) ->
       if a.Obj_model.addr + a.Obj_model.size > b.Obj_model.addr then
         bad "objects %d and %d overlap (0x%x+%d > 0x%x)" a.Obj_model.id
           b.Obj_model.id a.Obj_model.addr a.Obj_model.size b.Obj_model.addr;
       scan rest
     | _ -> ()
   in
   scan sorted);
  match List.rev !problems with [] -> Ok () | ps -> Error ps
