(** SVAGC configuration: the swapping threshold and every optimization
    toggle the paper evaluates (Table I / §III-IV), so each one can be
    ablated independently. *)

type t = {
  threshold_pages : int;
      (** Algorithm 3 [Threshold_Swapping]; 10 pages is the paper's
          break-even (Fig. 10) *)
  pmd_caching : bool;  (** Fig. 7/8 *)
  aggregation : bool;  (** Fig. 5/6 *)
  aggregation_batch : int;  (** max requests folded into one syscall *)
  coalesce_runs : bool;
      (** request-level aggregation: adjacent compaction entries whose src
          AND dst ranges are contiguous merge into one larger SwapVA
          request before call-level batching, saving one per-request setup
          fee and keeping the kernel's PMD cache warm across the seam *)
  pmd_leaf_swap : bool;
      (** opt-in leaf-swap mode: whole PMD-aligned 512-page sub-runs are
          exchanged at the PMD directory level in O(1) simulated cost
          ([Cost_model.pmd_swap_ns]); changes the cost model, so it is off
          by default and evaluated in its own ablation *)
  allow_overlap : bool;  (** Algorithm 2 for overlapping src/dst *)
  flush : Svagc_kernel.Shootdown.policy;
  pin_compaction : bool;  (** Algorithm 4 *)
  gc_threads : int;
  fault_spec : Svagc_fault.Fault_spec.t;
      (** Deterministic kernel fault injection ([--fault-spec]).  Empty
          (the default) leaves every simulated output bit-identical to a
          build without the fault plane; non-empty specs exercise the
          typed error paths and the GC's SwapVA→memmove degradation. *)
  fault_seed : int;
      (** Seed for the injector's per-clause PRNG streams
          ([--fault-seed]); same spec + same seed ⇒ byte-identical runs. *)
  mem_limit_frames : int option;
      (** Simulated memory pressure ([--mem-limit-frames]): cap the
          machine's resident frames, evicting cold pages to the simulated
          swap device via the svagc_reclaim kswapd.  [None] (the default)
          means unlimited physical memory and is bit-identical to a build
          without the reclaim subsystem.  Armed by the mover prologue,
          like the fault plane. *)
  swap_cost_ns : float option;
      (** Override both per-page swap-device latencies ([--swap-cost]);
          [None] uses the cost model's [swap_out_ns]/[swap_in_ns]. *)
}

val default : t
(** All optimizations on: threshold 10, PMD caching, aggregation (batch
    64), overlap swapping, pinned compaction with local flushes, 4 GC
    threads. *)

val unoptimized : t
(** SwapVA with no internal optimizations and naive per-call broadcast
    shootdowns — the Fig. 8/9 baseline. *)

val validate : t -> unit
(** @raise Invalid_argument on inconsistent settings (e.g. [Local_pinned]
    flushing without [pin_compaction]). *)

val pp : Format.formatter -> t -> unit
