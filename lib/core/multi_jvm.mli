(** Co-running JVM instances on one machine (Figs. 2 and 14).

    All instances share the machine's copy bandwidth: while [k] instances
    run, every byte-copy (GC compaction or application traffic) sees
    [machine_copy_bw / k].  SwapVA compaction needs almost no bandwidth, so
    SVAGC degrades far more slowly than byte-copy collectors — that
    divergence is the paper's scalability result. *)

open Svagc_vmem

type t

val create :
  ?mem_limit_frames:int ->
  ?swap_cost_ns:float ->
  ?swap_dev:Svagc_reclaim.Reclaim.dev_iface ->
  ?cgroup:Svagc_reclaim.Reclaim.cgroup_iface ->
  Machine.t ->
  instances:int ->
  spawn:(index:int -> Machine.t -> Jvm.t) ->
  t
(** Spawns [instances] JVMs and sets the machine's contention level.
    [mem_limit_frames] turns on overcommit: every tenant contends for one
    shared resident-frame pool (the reclaim plane is attached to the
    machine before any JVM is spawned), with [swap_cost_ns] optionally
    overriding both swap-device latencies, [swap_dev] substituting a
    custom (e.g. tiered) device and [cgroup] installing per-tenant
    resident accounting — both forwarded to
    [Svagc_kernel.Fault_handler.attach] and ignored when a reclaimer is
    already attached. *)

val jvms : t -> Jvm.t array

val run_round_robin : t -> steps:int -> step:(Jvm.t -> int -> unit) ->
  unit
(** Interleave [steps] iterations across the instances: step s goes to
    every JVM in turn ([step jvm s]).  Backed by the
    {!Svagc_sched.Calendar} event-driven core; the firing order is
    proven bit-identical to {!run_round_robin_lockstep} (FIFO seq
    tie-breaking replays the wave interleaving exactly). *)

val run_round_robin_indexed :
  t -> steps:int -> step:(index:int -> Jvm.t -> int -> unit) -> unit
(** Same engine, passing each instance's index to [step]. *)

val run_round_robin_lockstep : t -> steps:int -> step:(Jvm.t -> int -> unit) ->
  unit
(** Reference engine: the original nested lockstep loop, kept for the
    differential harness and host-cost benchmarks. *)

val max_total_ns : t -> float
(** Wall-clock of the co-run: the slowest instance. *)

val avg_gc_ns : t -> float

val avg_app_ns : t -> float

val release : t -> unit
(** Reset the machine's contention level to 1. *)
