open Svagc_vmem

type t = {
  machine : Machine.t;
  jvms : Jvm.t array;
}

let create ?mem_limit_frames ?swap_cost_ns ?swap_dev ?cgroup machine ~instances
    ~spawn =
  if instances <= 0 then invalid_arg "Multi_jvm.create: need at least one instance";
  (* Overcommit mode: one shared frame pool for every tenant.  Attach
     BEFORE spawning so each JVM's heap pages enter the LRU lists as they
     are mapped — the contention between tenants for residency is the
     whole point of the experiment. *)
  (match mem_limit_frames with
  | Some limit_frames ->
    if not (Svagc_kernel.Fault_handler.attached machine) then
      ignore
        (Svagc_kernel.Fault_handler.attach machine ~limit_frames ?swap_cost_ns
           ?dev:swap_dev ?cgroup ())
  | None -> ());
  let jvms = Array.init instances (fun index -> spawn ~index machine) in
  (* One trace track per co-running instance (Fig. 2 / Fig. 14 views). *)
  Array.iteri (fun index jvm -> Jvm.set_trace_pid jvm index) jvms;
  machine.Machine.copy_streams <- instances;
  { machine; jvms }

let jvms t = t.jvms

let run_round_robin t ~steps ~step =
  for s = 0 to steps - 1 do
    Array.iter (fun jvm -> step jvm s) t.jvms
  done

let max_total_ns t =
  Array.fold_left (fun acc jvm -> Float.max acc (Jvm.total_ns jvm)) 0.0 t.jvms

let avg_over t f =
  let sum = Array.fold_left (fun acc jvm -> acc +. f jvm) 0.0 t.jvms in
  sum /. float_of_int (Array.length t.jvms)

let avg_gc_ns t = avg_over t Jvm.gc_ns

let avg_app_ns t = avg_over t Jvm.app_ns

let release t = t.machine.Machine.copy_streams <- 1
