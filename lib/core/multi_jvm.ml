open Svagc_vmem

type t = {
  machine : Machine.t;
  jvms : Jvm.t array;
}

let create ?mem_limit_frames ?swap_cost_ns ?swap_dev ?cgroup machine ~instances
    ~spawn =
  if instances <= 0 then invalid_arg "Multi_jvm.create: need at least one instance";
  (* Overcommit mode: one shared frame pool for every tenant.  Attach
     BEFORE spawning so each JVM's heap pages enter the LRU lists as they
     are mapped — the contention between tenants for residency is the
     whole point of the experiment. *)
  (match mem_limit_frames with
  | Some limit_frames ->
    if not (Svagc_kernel.Fault_handler.attached machine) then
      ignore
        (Svagc_kernel.Fault_handler.attach machine ~limit_frames ?swap_cost_ns
           ?dev:swap_dev ?cgroup ())
  | None -> ());
  let jvms = Array.init instances (fun index -> spawn ~index machine) in
  (* One trace track per co-running instance (Fig. 2 / Fig. 14 views). *)
  Array.iteri (fun index jvm -> Jvm.set_trace_pid jvm index) jvms;
  machine.Machine.copy_streams <- instances;
  { machine; jvms }

let jvms t = t.jvms

let run_round_robin_lockstep t ~steps ~step =
  for s = 0 to steps - 1 do
    Array.iter (fun jvm -> step jvm s) t.jvms
  done

(* Event-driven core: each JVM is a self-rescheduling process on the
   calendar; step [s] is its event at simulated ns [s].  All processes
   enter at ns 0 in index order and re-enter in firing order, so the
   (ns, seq) FIFO heap replays the lockstep interleaving exactly (see
   Svagc_sched.Engine) while idle tenants cost no host work. *)
let run_round_robin_indexed t ~steps ~step =
  if steps > 0 then begin
    let procs =
      Array.mapi
        (fun i jvm ->
          Svagc_sched.Engine.proc ~first_ns:0.0 (fun ~now ->
              let s = int_of_float now in
              step ~index:i jvm s;
              let s' = s + 1 in
              if s' < steps then float_of_int s'
              else Svagc_sched.Engine.done_ns))
        t.jvms
    in
    ignore
      (Svagc_sched.Engine.run_calendar ~perf:t.machine.Machine.perf procs)
  end

let run_round_robin t ~steps ~step =
  run_round_robin_indexed t ~steps ~step:(fun ~index:_ jvm s -> step jvm s)

let max_total_ns t =
  Array.fold_left (fun acc jvm -> Float.max acc (Jvm.total_ns jvm)) 0.0 t.jvms

let avg_over t f =
  let sum = Array.fold_left (fun acc jvm -> acc +. f jvm) 0.0 t.jvms in
  sum /. float_of_int (Array.length t.jvms)

let avg_gc_ns t = avg_over t Jvm.gc_ns

let avg_app_ns t = avg_over t Jvm.app_ns

let release t = t.machine.Machine.copy_streams <- 1
