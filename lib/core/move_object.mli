(** Algorithm 3 [MoveObject] as a compaction mover: objects spanning at
    least [threshold_pages] pages move by swapping their PTEs (batched into
    aggregated SwapVA calls when enabled), everything else falls back to
    byte copy.  With [pin_compaction] the mover implements Algorithm 4:
    pin, one up-front all-core shootdown, local-only flushes per call,
    unpin.

    {b Kernel error handling.}  SwapVA reports failures as typed
    [Svagc_fault.Kernel_error.t] values and guarantees a failed request
    mutated nothing, so the mover degrades gracefully instead of crashing
    the GC: transient [EAGAIN] faults are retried up to 3 times with
    exponential backoff ([Cost_model.retry_backoff_ns], charged to
    simulated time and counted in [perf.swap_retries]); degradable
    failures ([EFAULT], exhausted retries) complete the request's entries
    through the byte-copy path instead ([perf.swap_fallbacks], a
    ["gc.swap_fallback"] trace instant).  Non-degradable [EINVAL]s mean
    the GC built a malformed request and re-raise loudly.  When
    [Config.fault_spec] is non-empty the mover's prologue arms the
    machine's injection plane with [Config.fault_seed]. *)

open Svagc_heap

val should_swap : Config.t -> len:int -> bool
(** The [pages >= Threshold_Swapping] test. *)

val move_cost_ns : Config.t -> Heap.t -> len:int -> float
(** Analytic cost of moving one object of [len] bytes under the current
    machine state, without side effects (used for threshold sweeps). *)

val mover : ?measure_core:int -> Config.t -> Svagc_gc.Compact.mover
(** [measure_core] routes the byte-copy fallback's traffic through the
    cache/TLB models; PTE-swapped moves touch no data lines, which is the
    Table III contrast. *)
