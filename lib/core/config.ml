module Shootdown = Svagc_kernel.Shootdown

type t = {
  threshold_pages : int;
  pmd_caching : bool;
  aggregation : bool;
  aggregation_batch : int;
  coalesce_runs : bool;
  pmd_leaf_swap : bool;
  allow_overlap : bool;
  flush : Shootdown.policy;
  pin_compaction : bool;
  gc_threads : int;
  fault_spec : Svagc_fault.Fault_spec.t;
  fault_seed : int;
  mem_limit_frames : int option;
  swap_cost_ns : float option;
}

let default =
  {
    threshold_pages = 10;
    pmd_caching = true;
    aggregation = true;
    aggregation_batch = 64;
    coalesce_runs = true;
    pmd_leaf_swap = false;
    allow_overlap = true;
    flush = Shootdown.Local_pinned;
    pin_compaction = true;
    gc_threads = 4;
    fault_spec = Svagc_fault.Fault_spec.empty;
    fault_seed = 0;
    mem_limit_frames = None;
    swap_cost_ns = None;
  }

let unoptimized =
  {
    threshold_pages = 10;
    pmd_caching = false;
    aggregation = false;
    aggregation_batch = 1;
    coalesce_runs = false;
    pmd_leaf_swap = false;
    allow_overlap = false;
    flush = Shootdown.Broadcast_per_call;
    pin_compaction = false;
    gc_threads = 4;
    fault_spec = Svagc_fault.Fault_spec.empty;
    fault_seed = 0;
    mem_limit_frames = None;
    swap_cost_ns = None;
  }

let validate t =
  if t.threshold_pages <= 0 then invalid_arg "Config: threshold must be positive";
  if t.aggregation_batch <= 0 then invalid_arg "Config: batch must be positive";
  if t.gc_threads <= 0 then invalid_arg "Config: gc_threads must be positive";
  (match t.mem_limit_frames with
  | Some n when n <= 0 -> invalid_arg "Config: mem_limit_frames must be positive"
  | _ -> ());
  (match t.swap_cost_ns with
  | Some ns when ns < 0.0 -> invalid_arg "Config: swap_cost_ns must be non-negative"
  | _ -> ());
  match t.flush with
  | Shootdown.Local_pinned when not t.pin_compaction ->
    invalid_arg
      "Config: Local_pinned flushing is only sound under pinned compaction \
       (Algorithm 4)"
  | Shootdown.Local_pinned | Shootdown.Broadcast_per_call
  | Shootdown.Process_targeted | Shootdown.Self_invalidate ->
    ()

let pp ppf t =
  Format.fprintf ppf
    "svagc{threshold=%dp pmd=%b aggr=%b(batch=%d) coalesce=%b leaf_swap=%b \
     overlap=%b flush=%a pin=%b threads=%d%t}"
    t.threshold_pages t.pmd_caching t.aggregation t.aggregation_batch
    t.coalesce_runs t.pmd_leaf_swap t.allow_overlap Shootdown.pp_policy t.flush
    t.pin_compaction t.gc_threads
    (fun ppf ->
      if not (Svagc_fault.Fault_spec.is_empty t.fault_spec) then
        Format.fprintf ppf " fault=%a seed=%d" Svagc_fault.Fault_spec.pp
          t.fault_spec t.fault_seed;
      (match t.mem_limit_frames with
      | Some n -> Format.fprintf ppf " mem_limit=%df" n
      | None -> ());
      match t.swap_cost_ns with
      | Some ns -> Format.fprintf ppf " swap_cost=%gns" ns
      | None -> ())
