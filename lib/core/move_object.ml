open Svagc_heap
module Addr = Svagc_vmem.Addr
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva
module Memmove = Svagc_kernel.Memmove
module Shootdown = Svagc_kernel.Shootdown
module Compact = Svagc_gc.Compact
module Perf = Svagc_vmem.Perf
module Tracer = Svagc_trace.Tracer

(* Byte-based, to agree exactly with the allocator's IfSwapAlign test: the
   paper's Algorithm 3 writes the threshold both as pages >= T (MoveObject)
   and |object| >= T*|PAGE| (IfSwapAlign); only objects that satisfied the
   latter at allocation time are page-aligned and safely swappable. *)
let should_swap (cfg : Config.t) ~len =
  len >= cfg.threshold_pages * Addr.page_size

let swap_opts (cfg : Config.t) =
  {
    Swapva.pmd_caching = cfg.pmd_caching;
    flush = cfg.flush;
    allow_overlap = cfg.allow_overlap;
    leaf_swap = cfg.pmd_leaf_swap;
  }

(* Flush a pending batch of swap requests and return the per-entry cost
   attribution (proportional to page counts, the dominant term).  Each
   batch item is one SwapVA request paired with the page count of every
   compaction entry coalesced into it (head first), so the call's cost
   splits back into one outcome per original entry. *)
let flush_batch proc ~opts ~aggregated batch =
  match batch with
  | [] -> []
  | items ->
    let requests = List.map fst items in
    let total =
      if aggregated then Swapva.swap_aggregated proc ~opts requests
      else Swapva.swap_separated proc ~opts requests
    in
    let total_pages =
      List.fold_left (fun acc r -> acc + r.Swapva.pages) 0 requests
    in
    List.concat_map
      (fun (_, entry_pages) ->
        List.map
          (fun p -> total *. float_of_int p /. float_of_int (max 1 total_pages))
          entry_pages)
      items

let mover ?measure_core (cfg : Config.t) =
  Config.validate cfg;
  let prologue heap =
    let proc = Heap.proc heap in
    if cfg.pin_compaction then begin
      let machine = Process.machine proc in
      let pin_cost = Process.pin proc ~core:(Process.current_core proc) in
      let flush_cost =
        Shootdown.cycle_prologue machine
          ~asid:(Svagc_vmem.Address_space.asid (Process.aspace proc))
          ~core:(Process.current_core proc) Shootdown.Local_pinned
      in
      pin_cost +. flush_cost
    end
    else 0.0
  in
  let epilogue heap =
    let proc = Heap.proc heap in
    if cfg.pin_compaction then Process.unpin proc else 0.0
  in
  let move_entries heap entries =
    let proc = Heap.proc heap in
    let aspace = Process.aspace proc in
    let perf = (Process.machine proc).Machine.perf in
    let opts = swap_opts cfg in
    let out = Svagc_util.Vec.create () in
    (* Runs of consecutive swappable moves become one aggregated call;
       order across runs and memmoves is preserved, so the sliding
       invariant holds.  With [coalesce_runs], an entry whose src AND dst
       ranges butt against the previous pending request merges into it —
       one larger request, one setup fee — as long as the merged ranges
       stay disjoint (overlap would change which kernel path runs).
       [pending] is newest-first; each item carries the reversed per-entry
       page counts so flushing can attribute one outcome per entry. *)
    let pending = ref [] in
    let pending_count = ref 0 in
    let pending_entries = ref 0 in
    let coalesced = ref 0 in
    let flush_pending () =
      let items = List.rev_map (fun (r, ep) -> (r, List.rev ep)) !pending in
      let costs = flush_batch proc ~opts ~aggregated:cfg.aggregation items in
      List.iter
        (fun cost_ns ->
          Svagc_util.Vec.push out { Compact.cost_ns; swapped = true })
        costs;
      if !pending_count > 0 && Tracer.tracing () then
        Tracer.instant ~cat:"gc"
          ~args:
            [
              ("entries", Svagc_trace.Event.Int !pending_entries);
              ("requests", Svagc_trace.Event.Int !pending_count);
              ("coalesced", Svagc_trace.Event.Int !coalesced);
            ]
          "gc.swap_batch";
      pending := [];
      pending_count := 0;
      pending_entries := 0;
      coalesced := 0
    in
    List.iter
      (fun { Compact.src; dst; len; _ } ->
        if should_swap cfg ~len then begin
          assert (Addr.is_page_aligned src && Addr.is_page_aligned dst);
          let pages = Addr.pages_spanned len in
          incr pending_entries;
          let merged =
            match !pending with
            | (r, ep) :: rest when cfg.coalesce_runs ->
              let bytes = r.Swapva.pages * Addr.page_size in
              if r.Swapva.src + bytes = src && r.Swapva.dst + bytes = dst then begin
                let m = { r with Swapva.pages = r.Swapva.pages + pages } in
                if Swapva.ranges_overlap m then None
                else begin
                  perf.Perf.runs_coalesced <- perf.Perf.runs_coalesced + 1;
                  incr coalesced;
                  Some ((m, pages :: ep) :: rest)
                end
              end
              else None
            | _ -> None
          in
          match merged with
          | Some pending' -> pending := pending'
          | None ->
            pending := ({ Swapva.src; dst; pages }, [ pages ]) :: !pending;
            incr pending_count;
            if !pending_count >= cfg.aggregation_batch then flush_pending ()
        end
        else begin
          flush_pending ();
          let cost_ns = Memmove.move ?measure_core ~cold:true aspace ~src ~dst ~len in
          Svagc_util.Vec.push out { Compact.cost_ns; swapped = false }
        end)
      entries;
    flush_pending ();
    Svagc_util.Vec.to_list out
  in
  { Compact.mover_name = "swapva"; prologue; move_entries; epilogue }

let move_cost_ns (cfg : Config.t) heap ~len =
  let machine = Process.machine (Heap.proc heap) in
  let cost = machine.Machine.cost in
  if should_swap cfg ~len then begin
    let pages = Addr.pages_spanned len in
    let per_page =
      (* getPTE x2 (cached or walk) + lock pairs + two slot reads and two
         writes: mirrors Swapva.swap_disjoint_body. *)
      let pte = cost.Cost_model.pt_entry_ns in
      let get = if cfg.pmd_caching then pte else Cost_model.walk_cost_ns cost in
      (2.0 *. get) +. (2.0 *. cost.Cost_model.lock_pair_ns) +. (4.0 *. pte)
    in
    cost.Cost_model.syscall_ns +. cost.Cost_model.swap_setup_ns
    +. (float_of_int pages *. per_page)
    +. cost.Cost_model.tlb_flush_local_ns
  end
  else Memmove.cost_ns ~cold:true machine ~len
