open Svagc_heap
module Addr = Svagc_vmem.Addr
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva
module Memmove = Svagc_kernel.Memmove
module Shootdown = Svagc_kernel.Shootdown
module Compact = Svagc_gc.Compact
module Perf = Svagc_vmem.Perf
module Tracer = Svagc_trace.Tracer

(* Byte-based, to agree exactly with the allocator's IfSwapAlign test: the
   paper's Algorithm 3 writes the threshold both as pages >= T (MoveObject)
   and |object| >= T*|PAGE| (IfSwapAlign); only objects that satisfied the
   latter at allocation time are page-aligned and safely swappable. *)
let should_swap (cfg : Config.t) ~len =
  len >= cfg.threshold_pages * Addr.page_size

let swap_opts (cfg : Config.t) =
  {
    Swapva.pmd_caching = cfg.pmd_caching;
    flush = cfg.flush;
    allow_overlap = cfg.allow_overlap;
    leaf_swap = cfg.pmd_leaf_swap;
  }

module Kernel_error = Svagc_fault.Kernel_error

(* A batch item: one SwapVA request plus the compaction entries coalesced
   into it (head first).  Entries keep their (src, dst, len) so a request
   the kernel refuses can still be completed entry-by-entry with memmove. *)
type batch_entry = { e_src : int; e_dst : int; e_len : int; e_pages : int }

let max_swap_retries = 3

(* Distribute a call's cost over the entries it moved, proportional to
   page counts (the dominant term).  Outcomes are handed to [emit] rather
   than collected in lists: the batch machinery below emits straight into
   the caller's output vector, so the fault-free path builds no
   per-entry cost lists (each attribution is an independent float
   expression, so emission order cannot change any value). *)
let emit_attributed ~emit ~total ~total_pages ~swapped entries =
  List.iter
    (fun e ->
      emit (total *. float_of_int e.e_pages /. float_of_int (max 1 total_pages))
        swapped)
    entries

let trace_fallback err ~entries ~pages ~retries =
  if Tracer.tracing () then
    Tracer.instant ~cat:"gc"
      ~args:
        [
          ("error", Svagc_trace.Event.Str (Kernel_error.errno_name err));
          ("detail", Svagc_trace.Event.Str (Kernel_error.to_string err));
          ("entries", Svagc_trace.Event.Int entries);
          ("pages", Svagc_trace.Event.Int pages);
          ("retries", Svagc_trace.Event.Int retries);
        ]
      "gc.swap_fallback"

(* A request the kernel failed: bounded retry for transient errors, then
   graceful degradation to the byte-copy path.  [carry] is simulated ns
   already spent on the failed attempt(s) that still must be charged.
   Emits one (cost, swapped) outcome per entry of the item.

   The kernel's "error implies no mutation" contract is what makes this
   sound: a failed request left every entry at its source address, so
   memmove sees exactly the pre-call bytes.  Non-degradable EINVALs are a
   GC bug (malformed request) and re-raised loudly. *)
let degrade_item proc ~opts ~aspace ?measure_core ~emit ~carry err (req, entries)
    =
  let machine = Process.machine proc in
  let perf = machine.Machine.perf in
  let cost = machine.Machine.cost in
  if not (Kernel_error.is_degradable err) then raise (Kernel_error.Fault err);
  (* Bounded retry with exponential backoff, transient errors only. *)
  let spent = ref carry in
  let retries = ref 0 in
  let result = ref (Error err) in
  while
    (match !result with Error e -> Kernel_error.is_transient e | Ok _ -> false)
    && !retries < max_swap_retries
  do
    spent :=
      !spent +. (cost.Cost_model.retry_backoff_ns *. (2.0 ** float_of_int !retries));
    incr retries;
    perf.Perf.swap_retries <- perf.Perf.swap_retries + 1;
    match
      Swapva.swap_result proc ~opts ~src:req.Swapva.src ~dst:req.Swapva.dst
        ~pages:req.Swapva.pages
    with
    | Ok ns -> result := Ok ns
    | Error (e, attempt_ns) ->
      spent := !spent +. attempt_ns;
      result := Error e
  done;
  let total_pages = req.Swapva.pages in
  match !result with
  | Ok ns ->
    (* A retry went through: entries were swapped after all; spread the
       whole episode's cost (backoffs + failed attempts + success). *)
    let total = !spent +. ns in
    emit_attributed ~emit ~total ~total_pages ~swapped:true entries
  | Error err ->
    if not (Kernel_error.is_degradable err) then raise (Kernel_error.Fault err);
    perf.Perf.swap_fallbacks <- perf.Perf.swap_fallbacks + 1;
    trace_fallback err ~entries:(List.length entries) ~pages:total_pages
      ~retries:!retries;
    (* Degrade: complete every entry of the request with memmove.  The
       accumulated failure cost rides on the first entry. *)
    List.iteri
      (fun i e ->
        let mv =
          Memmove.move ?measure_core ~cold:true aspace ~src:e.e_src ~dst:e.e_dst
            ~len:e.e_len
        in
        emit (if i = 0 then !spent +. mv else mv) false)
      entries

(* Flush a pending batch of swap requests, emitting one (cost_ns, swapped)
   outcome per compaction entry, in entry order.  The fault-free path is
   float-for-float identical to charging the call total proportionally by
   page count.  On a typed kernel failure the batch degrades per the
   DESIGN.md fault chapter: completed requests keep their swaps, the
   failing request retries/falls back to memmove, and the untried suffix
   is re-flushed (a fresh syscall batch). *)
let rec flush_batch proc ~opts ~aspace ?measure_core ~emit ~aggregated batch =
  match batch with
  | [] -> ()
  | items ->
    let requests = List.map fst items in
    let outcome =
      if aggregated then Swapva.swap_aggregated proc ~opts requests
      else Swapva.swap_separated proc ~opts requests
    in
    (match outcome.Swapva.failure with
    | None ->
      let total_pages =
        List.fold_left (fun acc r -> acc + r.Swapva.pages) 0 requests
      in
      List.iter
        (fun (_, entries) ->
          emit_attributed ~emit ~total:outcome.Swapva.ns ~total_pages
            ~swapped:true entries)
        items
    | Some err ->
      let completed = outcome.Swapva.completed in
      let rec split k acc = function
        | failed :: rest when k = 0 -> (List.rev acc, failed, rest)
        | item :: rest -> split (k - 1) (item :: acc) rest
        | [] -> assert false
      in
      let done_items, failed_item, rest_items = split completed [] items in
      (* Completed requests absorb the call's cost (including the failed
         request's setup — the price of discovering the fault); when
         nothing completed, the whole spent ns carries to the failed
         request's handling so no simulated time is lost. *)
      let done_pages =
        List.fold_left (fun acc (r, _) -> acc + r.Swapva.pages) 0 done_items
      in
      List.iter
        (fun (_, entries) ->
          emit_attributed ~emit ~total:outcome.Swapva.ns ~total_pages:done_pages
            ~swapped:true entries)
        done_items;
      let carry = if completed = 0 then outcome.Swapva.ns else 0.0 in
      degrade_item proc ~opts ~aspace ?measure_core ~emit ~carry err failed_item;
      flush_batch proc ~opts ~aspace ?measure_core ~emit ~aggregated rest_items)

let mover ?measure_core (cfg : Config.t) =
  Config.validate cfg;
  let prologue heap =
    let proc = Heap.proc heap in
    (* Arm the machine's fault plane on first use.  Installation is
       idempotent across GC cycles (the injector's streams keep advancing,
       so cycles see fresh draws), and an empty spec installs nothing —
       keeping the zero-fault configuration bit-identical to a build
       without the plane. *)
    (if not (Svagc_fault.Fault_spec.is_empty cfg.fault_spec) then
       let machine = Process.machine proc in
       match machine.Machine.fault with
       | Some _ -> ()
       | None ->
         machine.Machine.fault <-
           Some (Svagc_fault.Injector.create cfg.fault_spec ~seed:cfg.fault_seed));
    (* Arm the memory-pressure plane the same way: once per machine, and
       [None] (the default) leaves the run bit-identical to a build
       without the reclaim subsystem.  Pages mapped before arming are
       adopted into the LRU lists, then the watermark check runs so an
       over-limit heap is evicted down before the first compaction. *)
    (match cfg.mem_limit_frames with
    | Some limit_frames ->
      let machine = Process.machine proc in
      if not (Svagc_kernel.Fault_handler.attached machine) then begin
        let r =
          Svagc_kernel.Fault_handler.attach machine ~limit_frames
            ?swap_cost_ns:cfg.swap_cost_ns ()
        in
        let aspace = Process.aspace proc in
        Svagc_reclaim.Reclaim.adopt_space r
          ~pt:(Svagc_vmem.Address_space.page_table aspace)
          ~asid:(Svagc_vmem.Address_space.asid aspace);
        Svagc_reclaim.Reclaim.balance r
      end
    | None -> ());
    if cfg.pin_compaction then begin
      let machine = Process.machine proc in
      let pin_cost = Process.pin proc ~core:(Process.current_core proc) in
      let flush_cost =
        Shootdown.cycle_prologue machine
          ~asid:(Svagc_vmem.Address_space.asid (Process.aspace proc))
          ~core:(Process.current_core proc) Shootdown.Local_pinned
      in
      pin_cost +. flush_cost
    end
    else 0.0
  in
  let epilogue heap =
    let proc = Heap.proc heap in
    if cfg.pin_compaction then Process.unpin proc else 0.0
  in
  let move_entries heap entries =
    let proc = Heap.proc heap in
    let aspace = Process.aspace proc in
    let perf = (Process.machine proc).Machine.perf in
    let opts = swap_opts cfg in
    let out = Svagc_util.Vec.create () in
    (* Runs of consecutive swappable moves become one aggregated call;
       order across runs and memmoves is preserved, so the sliding
       invariant holds.  With [coalesce_runs], an entry whose src AND dst
       ranges butt against the previous pending request merges into it —
       one larger request, one setup fee — as long as the merged ranges
       stay disjoint (overlap would change which kernel path runs).
       [pending] is newest-first; each item carries the reversed per-entry
       page counts so flushing can attribute one outcome per entry. *)
    let pending = ref [] in
    let pending_count = ref 0 in
    let pending_entries = ref 0 in
    let coalesced = ref 0 in
    let emit cost_ns swapped =
      Svagc_util.Vec.push out { Compact.cost_ns; swapped }
    in
    let flush_pending () =
      if !pending <> [] then begin
        let items = List.rev_map (fun (r, ep) -> (r, List.rev ep)) !pending in
        flush_batch proc ~opts ~aspace ?measure_core ~emit
          ~aggregated:cfg.aggregation items
      end;
      if !pending_count > 0 && Tracer.tracing () then
        Tracer.instant ~cat:"gc"
          ~args:
            [
              ("entries", Svagc_trace.Event.Int !pending_entries);
              ("requests", Svagc_trace.Event.Int !pending_count);
              ("coalesced", Svagc_trace.Event.Int !coalesced);
            ]
          "gc.swap_batch";
      pending := [];
      pending_count := 0;
      pending_entries := 0;
      coalesced := 0
    in
    List.iter
      (fun { Compact.src; dst; len; _ } ->
        if should_swap cfg ~len then begin
          assert (Addr.is_page_aligned src && Addr.is_page_aligned dst);
          let pages = Addr.pages_spanned len in
          let entry = { e_src = src; e_dst = dst; e_len = len; e_pages = pages } in
          incr pending_entries;
          let merged =
            match !pending with
            | (r, ep) :: rest when cfg.coalesce_runs ->
              let bytes = r.Swapva.pages * Addr.page_size in
              if r.Swapva.src + bytes = src && r.Swapva.dst + bytes = dst then begin
                let m = { r with Swapva.pages = r.Swapva.pages + pages } in
                if Swapva.ranges_overlap m then None
                else begin
                  perf.Perf.runs_coalesced <- perf.Perf.runs_coalesced + 1;
                  incr coalesced;
                  Some ((m, entry :: ep) :: rest)
                end
              end
              else None
            | _ -> None
          in
          match merged with
          | Some pending' -> pending := pending'
          | None ->
            pending := ({ Swapva.src; dst; pages }, [ entry ]) :: !pending;
            incr pending_count;
            if !pending_count >= cfg.aggregation_batch then flush_pending ()
        end
        else begin
          flush_pending ();
          let cost_ns = Memmove.move ?measure_core ~cold:true aspace ~src ~dst ~len in
          Svagc_util.Vec.push out { Compact.cost_ns; swapped = false }
        end)
      entries;
    flush_pending ();
    Svagc_util.Vec.to_list out
  in
  { Compact.mover_name = "swapva"; prologue; move_entries; epilogue }

let move_cost_ns (cfg : Config.t) heap ~len =
  let machine = Process.machine (Heap.proc heap) in
  let cost = machine.Machine.cost in
  if should_swap cfg ~len then begin
    let pages = Addr.pages_spanned len in
    let per_page =
      (* getPTE x2 (cached or walk) + lock pairs + two slot reads and two
         writes: mirrors Swapva.swap_disjoint_body. *)
      let pte = cost.Cost_model.pt_entry_ns in
      let get = if cfg.pmd_caching then pte else Cost_model.walk_cost_ns cost in
      (2.0 *. get) +. (2.0 *. cost.Cost_model.lock_pair_ns) +. (4.0 *. pte)
    in
    cost.Cost_model.syscall_ns +. cost.Cost_model.swap_setup_ns
    +. (float_of_int pages *. per_page)
    +. cost.Cost_model.tlb_flush_local_ns
  end
  else Memmove.cost_ns ~cold:true machine ~len
