open Svagc_vmem
open Svagc_heap
module Process = Svagc_kernel.Process
module Gc_intf = Svagc_gc.Gc_intf
module Gc_stats = Svagc_gc.Gc_stats

exception Out_of_memory

type t = {
  name : string;
  proc : Process.t;
  heap : Heap.t;
  collector : Gc_intf.t;
  tlab_bytes : int;
  tlabs : (int, Tlab.t) Hashtbl.t;
  app_clock : Clock.t;
  gc_clock : Clock.t;
  mutable measure_core : int option;
  mutable trace_pid : int;
}

let create machine ~name ~heap_bytes ?(threshold_pages = 10)
    ?(stamp_headers = true) ?(tlab_bytes = 256 * 1024) ~collector_of () =
  let proc = Process.create ~name machine in
  let heap =
    Heap.create proc ~threshold_pages ~stamp_headers ~size_bytes:heap_bytes ()
  in
  {
    name;
    proc;
    heap;
    collector = collector_of heap;
    tlab_bytes;
    tlabs = Hashtbl.create 16;
    app_clock = Clock.create ();
    gc_clock = Clock.create ();
    measure_core = None;
    trace_pid = 0;
  }

let name t = t.name
let heap t = t.heap
let proc t = t.proc
let machine t = Process.machine t.proc
let collector t = t.collector

let retire_tlabs t =
  Hashtbl.iter (fun _ tlab -> Tlab.retire tlab) t.tlabs;
  Hashtbl.reset t.tlabs

(* Post-GC cost visible to the application: the mutator's working set was
   flushed from the TLBs, so the first touches after the pause re-walk. *)
let post_gc_app_penalty t =
  let machine = Process.machine t.proc in
  let tlb_entries = 64.0 in
  tlb_entries *. machine.Machine.cost.Cost_model.tlb_refill_ns

let app_ns t = Clock.now_ns t.app_clock
let gc_ns t = Clock.now_ns t.gc_clock
let total_ns t = app_ns t +. gc_ns t

let set_trace_pid t pid = t.trace_pid <- pid
let trace_pid t = t.trace_pid

module Tracer = Svagc_trace.Tracer

let run_gc t =
  retire_tlabs t;
  (* Each JVM is one trace process track positioned on its own wall-clock
     (app + GC time so far); the collector's spans and the kernel instants
     they trigger all land under this pid. *)
  if Tracer.tracing () then begin
    Tracer.set_context ~pid:t.trace_pid ~tid:0 ();
    Tracer.name_process ~pid:t.trace_pid t.name;
    Tracer.name_thread ~pid:t.trace_pid ~tid:0 "gc";
    Tracer.set_now (total_ns t)
  end;
  let cycle = Gc_intf.collect t.collector in
  Clock.advance t.gc_clock (Gc_stats.pause_ns cycle);
  (* Concurrent GC work (Shenandoah-style marking) steals app time. *)
  Clock.advance t.app_clock cycle.Gc_stats.concurrent_ns;
  Clock.advance t.app_clock (post_gc_app_penalty t);
  (* Under memory pressure: compaction may have exchanged present and
     swapped PTEs, so resynchronize the reclaim plane's per-va LRU
     tracking with the page table, and charge any reclaim cost the cycle
     accumulated outside the memmove path (fault-ins during marking,
     evictions during allocation inside the pause) to the GC clock. *)
  (match (machine t).Machine.reclaim with
  | None -> ()
  | Some r ->
    let aspace = Process.aspace t.proc in
    r.Machine.ri_adopt
      ~pt:(Address_space.page_table aspace)
      ~asid:(Address_space.asid aspace);
    Clock.advance t.gc_clock (r.Machine.ri_drain_ns ()));
  (* Phase boundary for the shadow oracle: heap audit, cycle accounting,
     TLB coherence and counter laws, plus clock-regression detection.  The
     clock keys include the pid because JVM names repeat across runs while
     each JVM's clocks restart at zero. *)
  if Svagc_check.Check.enabled () then begin
    let key tag = Printf.sprintf "%s#%d.%s" t.name (Process.pid t.proc) tag in
    Svagc_check.Check.observe_clock ~key:(key "app") (app_ns t);
    Svagc_check.Check.observe_clock ~key:(key "gc") (gc_ns t);
    Svagc_check.Check.post_gc ~label:t.name t.heap cycle
  end;
  cycle

let tlab_for t thread =
  match Hashtbl.find_opt t.tlabs thread with
  | Some tlab -> tlab
  | None ->
    let tlab = Tlab.create t.heap ~thread_id:thread ~chunk_bytes:t.tlab_bytes in
    Hashtbl.replace t.tlabs thread tlab;
    tlab

let alloc_once t ~thread ~size ~n_refs ~cls =
  match thread with
  | Some thread -> Tlab.alloc (tlab_for t thread) ~size ~n_refs ~cls
  | None -> Heap.alloc t.heap ~size ~n_refs ~cls

let alloc_cost_ns = 25.0 (* bump pointer + header initialization *)

(* Reclaim work triggered by mutator activity (mapping fresh TLAB pages
   over the limit, demand-faulting swapped pages on touch) bills the
   application clock — a real mutator stalls in the page-fault handler. *)
let drain_reclaim_app t =
  match (Process.machine t.proc).Machine.reclaim with
  | None -> ()
  | Some r -> Clock.advance t.app_clock (r.Machine.ri_drain_ns ())

let alloc ?thread t ~size ~n_refs ~cls =
  Clock.advance t.app_clock alloc_cost_ns;
  let obj =
    match alloc_once t ~thread ~size ~n_refs ~cls with
    | obj -> obj
    | exception Heap.Heap_full -> (
      ignore (run_gc t);
      match alloc_once t ~thread ~size ~n_refs ~cls with
      | obj -> obj
      | exception Heap.Heap_full -> raise Out_of_memory)
  in
  drain_reclaim_app t;
  obj

let set_measure_core t core = t.measure_core <- core

let measure_core t = t.measure_core

let charge_app_ns t ns =
  Clock.advance t.app_clock ns;
  drain_reclaim_app t

let charge_app_mem t ~bytes =
  let machine = Process.machine t.proc in
  let bw =
    Cost_model.contended_bw machine.Machine.cost
      ~streams:machine.Machine.copy_streams
      ~bw:machine.Machine.cost.Cost_model.dram_copy_bw
  in
  Clock.advance t.app_clock (float_of_int bytes /. bw);
  drain_reclaim_app t

let gc_count t = List.length (Gc_intf.cycles t.collector)
let cycles t = Gc_intf.cycles t.collector
