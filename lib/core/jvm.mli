(** A simulated JVM instance: process + heap + collector + clocks.

    The mutator allocates through {!alloc} (optionally via per-thread
    TLABs); when the heap fills, a full GC runs automatically, its pause is
    charged to the GC clock, and the allocation is retried.  Application
    compute/memory time is charged explicitly by the workloads. *)

open Svagc_vmem
open Svagc_heap

exception Out_of_memory

type t

val create :
  Machine.t ->
  name:string ->
  heap_bytes:int ->
  ?threshold_pages:int ->
  ?stamp_headers:bool ->
  ?tlab_bytes:int ->
  collector_of:(Heap.t -> Svagc_gc.Gc_intf.t) ->
  unit ->
  t

val name : t -> string

val heap : t -> Heap.t

val proc : t -> Svagc_kernel.Process.t

val machine : t -> Machine.t

val collector : t -> Svagc_gc.Gc_intf.t

val alloc_cost_ns : float
(** App-clock cost charged per {!alloc} (bump pointer + header init);
    exposed so drivers measuring allocation stalls can subtract the
    nominal cost from the observed app-clock delta. *)

val alloc : ?thread:int -> t -> size:int -> n_refs:int -> cls:int -> Obj_model.t
(** TLAB allocation when [thread] is given, shared-space otherwise.  Runs a
    GC and retries on exhaustion.  @raise Out_of_memory when even the
    post-GC heap cannot fit the request. *)

val run_gc : t -> Svagc_gc.Gc_stats.cycle
(** Force a full collection (retires all TLABs first). *)

val set_trace_pid : t -> int -> unit
(** Which trace process track this instance records GC activity under
    (default 0; {!Multi_jvm} assigns one pid per instance).  Deliberately
    decoupled from the simulated kernel pid, which is allocated from a
    process-global counter and therefore not stable across runs — trace
    determinism requires caller-chosen ids. *)

val trace_pid : t -> int

val set_measure_core : t -> int option -> unit
(** Enable the measured access path (cache + TLB models) for this
    instance's workload and byte-copy GC traffic (Table III). *)

val measure_core : t -> int option

val charge_app_ns : t -> float -> unit
(** Pure compute time. *)

val charge_app_mem : t -> bytes:int -> unit
(** Application memory traffic: charged at the bandwidth left under the
    machine's current contention level. *)

val app_ns : t -> float

val gc_ns : t -> float
(** Total stop-the-world time so far. *)

val total_ns : t -> float
(** [app_ns + gc_ns] — the run's wall-clock. *)

val gc_count : t -> int

val cycles : t -> Svagc_gc.Gc_stats.cycle list
