type slot_state =
  | Free
  | Held of bytes option  (* None = logically zero page *)

type t = {
  mutable slots : slot_state array;
  free : int Svagc_util.Vec.t;
  mutable in_use : int;
  mutable high_water : int;  (* slots ever handed out; growth frontier *)
}

let create () = { slots = Array.make 64 Free; free = Svagc_util.Vec.create (); in_use = 0; high_water = 0 }

let grow t =
  let old = t.slots in
  let bigger = Array.make (2 * Array.length old) Free in
  Array.blit old 0 bigger 0 (Array.length old);
  t.slots <- bigger

let alloc_slot t =
  let slot =
    (* The free list is kept min-first-ish by pushing in LIFO order from a
       monotone frontier; recycled slots are reused before the frontier
       advances, which keeps slot numbers small and deterministic. *)
    match Svagc_util.Vec.pop t.free with
    | Some s -> s
    | None ->
      let s = t.high_water in
      t.high_water <- s + 1;
      if s >= Array.length t.slots then grow t;
      s
  in
  t.slots.(slot) <- Held None;
  t.in_use <- t.in_use + 1;
  slot

let check_held t slot what =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg (Printf.sprintf "Swap_dev.%s: no such slot %d" what slot);
  match t.slots.(slot) with
  | Free -> invalid_arg (Printf.sprintf "Swap_dev.%s: slot %d not allocated" what slot)
  | Held payload -> payload

let free_slot t slot =
  ignore (check_held t slot "free_slot");
  t.slots.(slot) <- Free;
  t.in_use <- t.in_use - 1;
  Svagc_util.Vec.push t.free slot

let write t ~slot payload =
  ignore (check_held t slot "write");
  t.slots.(slot) <- Held (Option.map Bytes.copy payload)

let read t ~slot = Option.map Bytes.copy (check_held t slot "read")

let peek t ~slot = check_held t slot "peek"

let allocated t ~slot =
  slot >= 0 && slot < Array.length t.slots
  && (match t.slots.(slot) with Free -> false | Held _ -> true)

let slots_in_use t = t.in_use
