open Svagc_vmem
module Tracer = Svagc_trace.Tracer

(* A tracked resident page.  Linked into exactly one of the two LRU lists
   (or neither, transiently); keyed by virtual address so PTE swaps of two
   present entries need no fixup (the node describes "the page at this
   va", not a particular frame). *)
type whereabouts = Nowhere | On_active | On_inactive

type page = {
  p_asid : int;
  p_vpn : int;
  p_pt : Page_table.t;
  mutable p_ref : bool;
  mutable p_prev : page option;
  mutable p_next : page option;
  mutable p_on : whereabouts;
}

(* Doubly-linked list, head = most recently added. *)
type lru = {
  whereabouts : whereabouts;
  mutable first : page option;
  mutable last : page option;
  mutable size : int;
}

let lru_create whereabouts = { whereabouts; first = None; last = None; size = 0 }

let lru_push_front l p =
  p.p_prev <- None;
  p.p_next <- l.first;
  p.p_on <- l.whereabouts;
  (match l.first with Some q -> q.p_prev <- Some p | None -> l.last <- Some p);
  l.first <- Some p;
  l.size <- l.size + 1

let lru_pop_back l =
  match l.last with
  | None -> None
  | Some p ->
    (match p.p_prev with
    | Some q -> q.p_next <- None
    | None -> l.first <- None);
    l.last <- p.p_prev;
    p.p_prev <- None;
    p.p_next <- None;
    p.p_on <- Nowhere;
    l.size <- l.size - 1;
    Some p

let lru_remove l p =
  (match p.p_prev with
  | Some q -> q.p_next <- p.p_next
  | None -> l.first <- p.p_next);
  (match p.p_next with
  | Some q -> q.p_prev <- p.p_prev
  | None -> l.last <- p.p_prev);
  p.p_prev <- None;
  p.p_next <- None;
  p.p_on <- Nowhere;
  l.size <- l.size - 1

type t = {
  machine : Machine.t;
  dev : Swap_dev.t;
  limit : int;
  gap : int;  (* hysteresis: each wake evicts down to [limit - gap] *)
  swap_out_ns : float;
  swap_in_ns : float;
  major_fault_ns : float;
  max_io_retries : int;
  active : lru;
  inactive : lru;
  (* (asid, vpn) -> node, for every page on either list.  Which list a
     node is on is recovered by removal sites scanning both — see
     [drop_node]. *)
  pages : (int * int, page) Hashtbl.t;
  mutable pending_ns : float;
  mutable in_kswapd : bool;
}

let create machine ~limit_frames ?swap_cost_ns ?(max_io_retries = 3) () =
  if limit_frames <= 0 then
    invalid_arg "Reclaim.create: limit_frames must be positive";
  let cost = machine.Machine.cost in
  let swap_out_ns, swap_in_ns =
    match swap_cost_ns with
    | Some ns -> (ns, ns)
    | None -> (cost.Cost_model.swap_out_ns, cost.Cost_model.swap_in_ns)
  in
  {
    machine;
    dev = Swap_dev.create ();
    limit = limit_frames;
    gap = max 1 (limit_frames / 16);
    swap_out_ns;
    swap_in_ns;
    major_fault_ns = cost.Cost_model.major_fault_ns;
    max_io_retries;
    active = lru_create On_active;
    inactive = lru_create On_inactive;
    pages = Hashtbl.create 1024;
    pending_ns = 0.0;
    in_kswapd = false;
  }

let limit_frames t = t.limit

let charge t ns = t.pending_ns <- t.pending_ns +. ns

let drain_ns t =
  let ns = t.pending_ns in
  t.pending_ns <- 0.0;
  ns

let drop_node t p =
  (match p.p_on with
  | On_active -> lru_remove t.active p
  | On_inactive -> lru_remove t.inactive p
  | Nowhere -> ());
  Hashtbl.remove t.pages (p.p_asid, p.p_vpn)

(* One swap-device transfer with a bounded retry against the machine's
   fault plane; each attempt (including failed ones) pays [cost_ns]. *)
let swap_io_ok t ~va ~cost_ns =
  let perf = t.machine.Machine.perf in
  let rec go attempt =
    charge t cost_ns;
    let fired =
      match t.machine.Machine.fault with
      | None -> false
      | Some inj ->
        Svagc_fault.Injector.fire inj ~site:Svagc_fault.Fault_spec.Swap_io ~va
    in
    if not fired then true
    else begin
      perf.Perf.swap_io_errors <- perf.Perf.swap_io_errors + 1;
      if attempt + 1 < t.max_io_retries then go (attempt + 1) else false
    end
  in
  go 0

(* Evict one tracked page: copy its frame to a fresh swap slot, free the
   frame, leave a swapped PTE behind and scrub every TLB.  Returns false
   when the eviction was skipped (stale node or device EIO). *)
let swap_out t (p : page) =
  let perf = t.machine.Machine.perf in
  let va = p.p_vpn * Addr.page_size in
  let pte = Page_table.get_pte p.p_pt va in
  if not (Pte.is_present pte) then begin
    (* Stale node: the entry at this va was swapped or remapped under us
       (compaction churn); tracking catches up at the next resync. *)
    Hashtbl.remove t.pages (p.p_asid, p.p_vpn);
    false
  end
  else if not (swap_io_ok t ~va ~cost_ns:t.swap_out_ns) then begin
    (* Device refused every attempt: skip this page, give it another
       round through the active list. *)
    p.p_ref <- true;
    lru_push_front t.active p;
    false
  end
  else begin
    let frame = Pte.frame_exn pte in
    let slot = Swap_dev.alloc_slot t.dev in
    Swap_dev.write t.dev ~slot
      (Phys_mem.frame_contents t.machine.Machine.phys frame);
    Phys_mem.free_frame t.machine.Machine.phys frame;
    Page_table.set_pte p.p_pt va (Pte.make_swapped ~slot);
    (* The frame is gone: invalidate any cached translation everywhere
       (the eviction-side half of shootdown discipline). *)
    Array.iter
      (fun c -> Tlb.flush_page c.Machine.tlb ~asid:p.p_asid ~vpn:p.p_vpn)
      t.machine.Machine.cores;
    perf.Perf.tlb_flush_page <- perf.Perf.tlb_flush_page + 1;
    charge t t.machine.Machine.cost.Cost_model.tlb_flush_page_ns;
    perf.Perf.pages_swapped_out <- perf.Perf.pages_swapped_out + 1;
    Hashtbl.remove t.pages (p.p_asid, p.p_vpn);
    if Tracer.tracing () then
      Tracer.instant ~cat:"reclaim"
        ~args:
          [
            ("va", Svagc_trace.Event.Int va);
            ("asid", Svagc_trace.Event.Int p.p_asid);
            ("slot", Svagc_trace.Event.Int slot);
          ]
        "reclaim.swap_out";
    true
  end

(* The kswapd loop: when residency (plus any frame the caller is about to
   take, [incoming]) exceeds the limit, age the active list into the
   inactive list and evict unreferenced inactive pages until residency
   drops below the low watermark.  Second-chance: a referenced inactive
   page is rescued back to the active head instead of evicted.  The scan
   budget (every page can be aged once and considered once, plus slack)
   guarantees termination even when eviction makes no progress. *)
let balance_incoming t ~incoming =
  let perf = t.machine.Machine.perf in
  let phys = t.machine.Machine.phys in
  if (not t.in_kswapd) && Phys_mem.frames_in_use phys + incoming > t.limit
  then begin
    t.in_kswapd <- true;
    perf.Perf.kswapd_wakes <- perf.Perf.kswapd_wakes + 1;
    let tracing = Tracer.tracing () in
    if tracing then Tracer.span_begin ~cat:"reclaim" "reclaim.kswapd";
    let ns_before = t.pending_ns in
    let scans_before = perf.Perf.reclaim_scans in
    let target = max 0 (t.limit - t.gap) in
    let budget = ref ((2 * (t.active.size + t.inactive.size)) + 64) in
    while
      Phys_mem.frames_in_use phys + incoming > target
      && !budget > 0
      && t.active.size + t.inactive.size > 0
    do
      decr budget;
      match lru_pop_back t.inactive with
      | Some p ->
        perf.Perf.reclaim_scans <- perf.Perf.reclaim_scans + 1;
        if p.p_ref then begin
          (* Second chance: touched while inactive. *)
          p.p_ref <- false;
          lru_push_front t.active p
        end
        else ignore (swap_out t p)
      | None -> (
        (* Refill: age one page from the active tail, clearing its
           referenced bit so a further touch is needed to rescue it. *)
        match lru_pop_back t.active with
        | Some p ->
          perf.Perf.reclaim_scans <- perf.Perf.reclaim_scans + 1;
          p.p_ref <- false;
          lru_push_front t.inactive p
        | None -> budget := 0)
    done;
    if tracing then
      Tracer.span_end
        ~args:
          [
            ( "scans",
              Svagc_trace.Event.Int (perf.Perf.reclaim_scans - scans_before) );
            ( "resident_frames",
              Svagc_trace.Event.Int (Phys_mem.frames_in_use phys) );
          ]
        ~dur_ns:(t.pending_ns -. ns_before) ();
    t.in_kswapd <- false
  end

let balance t = balance_incoming t ~incoming:0

let track t ~pt ~asid ~va =
  let vpn = Addr.page_number va in
  match Hashtbl.find_opt t.pages (asid, vpn) with
  | Some p -> p.p_ref <- true
  | None ->
    let p =
      {
        p_asid = asid;
        p_vpn = vpn;
        p_pt = pt;
        p_ref = true;
        p_prev = None;
        p_next = None;
        p_on = Nowhere;
      }
    in
    Hashtbl.add t.pages (asid, vpn) p;
    lru_push_front t.active p

let page_mapped t ~pt ~asid ~va =
  track t ~pt ~asid ~va;
  balance t

let page_unmapped t ~asid ~va ~pte =
  if Pte.is_swapped pte then Swap_dev.free_slot t.dev (Pte.swap_slot_exn pte);
  match Hashtbl.find_opt t.pages (asid, Addr.page_number va) with
  | Some p -> drop_node t p
  | None -> ()

let page_touched t ~asid ~va =
  match Hashtbl.find_opt t.pages (asid, Addr.page_number va) with
  | Some p -> p.p_ref <- true
  | None -> ()

let adopt_space t ~pt ~asid =
  (* Drop stale nodes first (tracked but no longer present) ... *)
  let stale = ref [] in
  Hashtbl.iter
    (fun (a, vpn) p ->
      if a = asid && not (Pte.is_present (Page_table.get_pte pt (vpn * Addr.page_size)))
      then stale := p :: !stale)
    t.pages;
  List.iter (fun p -> drop_node t p) !stale;
  (* ... then track present pages we do not know about, in deterministic
     page-table walk order. *)
  Page_table.iter_mapped pt ~f:(fun ~vpn ~frame:_ ->
      if not (Hashtbl.mem t.pages (asid, vpn)) then
        track t ~pt ~asid ~va:(vpn * Addr.page_size))

let fault_in t ~pt ~asid ~va =
  let pte = Page_table.get_pte pt va in
  if Pte.is_swapped pte then begin
    let perf = t.machine.Machine.perf in
    perf.Perf.major_faults <- perf.Perf.major_faults + 1;
    charge t t.major_fault_ns;
    (* Make room BEFORE taking the frame: the incoming page is not on any
       LRU list yet, so kswapd cannot choose it — which is what makes the
       caller's fault-then-retry loop terminate. *)
    balance_incoming t ~incoming:1;
    let slot = Pte.swap_slot_exn pte in
    if not (swap_io_ok t ~va ~cost_ns:t.swap_in_ns) then
      raise
        (Svagc_fault.Kernel_error.Fault (Svagc_fault.Kernel_error.EIO_swap { va }));
    let frame = Phys_mem.alloc_frame t.machine.Machine.phys in
    (match Swap_dev.read t.dev ~slot with
    | None -> () (* zero page: the fresh frame is already lazily zero *)
    | Some b ->
      Bytes.blit b 0
        (Phys_mem.frame_bytes t.machine.Machine.phys frame)
        0 (Bytes.length b));
    Swap_dev.free_slot t.dev slot;
    Page_table.set_pte pt va (Pte.make ~frame);
    perf.Perf.pages_swapped_in <- perf.Perf.pages_swapped_in + 1;
    track t ~pt ~asid ~va;
    if Tracer.tracing () then
      Tracer.instant ~cat:"reclaim"
        ~args:
          [
            ("va", Svagc_trace.Event.Int va);
            ("asid", Svagc_trace.Event.Int asid);
            ("slot", Svagc_trace.Event.Int slot);
            ("frame", Svagc_trace.Event.Int frame);
          ]
        "reclaim.fault_in"
  end

let slot_bytes t ~slot = Swap_dev.peek t.dev ~slot

let slot_allocated t ~slot = Swap_dev.allocated t.dev ~slot

let slots_in_use t = Swap_dev.slots_in_use t.dev

let tracked_pages t = t.active.size + t.inactive.size
