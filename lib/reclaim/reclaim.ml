open Svagc_vmem
module Tracer = Svagc_trace.Tracer

(* A tracked resident page.  Linked into exactly one of the two LRU lists
   (or neither, transiently); keyed by virtual address so PTE swaps of two
   present entries need no fixup (the node describes "the page at this
   va", not a particular frame). *)
type whereabouts = Nowhere | On_active | On_inactive

(* Tracking-table key: (asid, vpn) packed into one immediate int, so the
   table hashes and compares an unboxed int instead of a heap-allocated
   tuple and the hot notification paths ([page_touched], [track]) allocate
   nothing per call.  40 bits of vpn (2^40 pages = 4 PiB of VA) under the
   asid leaves 22+ asid bits on 63-bit ints — both checked because a
   silent overlap would alias two pages' nodes. *)
let key_vpn_bits = 40

let page_key ~asid ~vpn =
  if vpn lsr key_vpn_bits <> 0 || asid lsr (Sys.int_size - 1 - key_vpn_bits) <> 0
  then invalid_arg "Reclaim.page_key: asid/vpn out of range";
  (asid lsl key_vpn_bits) lor vpn

type page = {
  p_asid : int;
  p_vpn : int;
  p_pt : Page_table.t;
  mutable p_ref : bool;
  mutable p_prev : page option;
  mutable p_next : page option;
  mutable p_on : whereabouts;
}

(* Doubly-linked list, head = most recently added. *)
type lru = {
  whereabouts : whereabouts;
  mutable first : page option;
  mutable last : page option;
  mutable size : int;
}

let lru_create whereabouts = { whereabouts; first = None; last = None; size = 0 }

let lru_push_front l p =
  p.p_prev <- None;
  p.p_next <- l.first;
  p.p_on <- l.whereabouts;
  (match l.first with Some q -> q.p_prev <- Some p | None -> l.last <- Some p);
  l.first <- Some p;
  l.size <- l.size + 1

let lru_pop_back l =
  match l.last with
  | None -> None
  | Some p ->
    (match p.p_prev with
    | Some q -> q.p_next <- None
    | None -> l.first <- None);
    l.last <- p.p_prev;
    p.p_prev <- None;
    p.p_next <- None;
    p.p_on <- Nowhere;
    l.size <- l.size - 1;
    Some p

let lru_remove l p =
  (match p.p_prev with
  | Some q -> q.p_next <- p.p_next
  | None -> l.first <- p.p_next);
  (match p.p_next with
  | Some q -> q.p_prev <- p.p_prev
  | None -> l.last <- p.p_prev);
  p.p_prev <- None;
  p.p_next <- None;
  p.p_on <- Nowhere;
  l.size <- l.size - 1

(* A pluggable swap device as a record of closures, mirroring the
   dependency inversion of [Machine.reclaim_iface] one level up: the
   tiered far-memory device lives in [svagc_fleet], which sits above this
   library.  [d_out_ns]/[d_in_ns] are per-attempt transfer costs —
   [d_out_ns] is queried {e before} the slot is allocated (so a tiered
   device reports the cost of the demotion the next allocation will
   trigger without mutating anything), [d_in_ns] is the cost of reading
   [slot] (a far-tier slot is slower).  The default device wraps a flat
   {!Swap_dev} with constant costs and is bit-identical to the
   pre-iface reclaimer. *)
type dev_iface = {
  d_alloc_slot : unit -> int;
  d_free_slot : int -> unit;
  d_write : slot:int -> bytes option -> unit;
  d_read : slot:int -> bytes option;
  d_peek : slot:int -> bytes option;
  d_allocated : slot:int -> bool;
  d_slots_in_use : unit -> int;
  d_out_ns : unit -> float;
  d_in_ns : slot:int -> float;
  d_tier_stats : unit -> (int * int) option;
}

(* Per-tenant resident accounting, also inverted: the cgroup state lives
   in [svagc_fleet].  [cg_charge]/[cg_uncharge] fire exactly when a page
   enters/leaves the tracking table, so a tenant's resident count is its
   tracked-node count.  [cg_prefer] marks tenants over their soft limit
   (preferred eviction victims); [cg_excess] is pages above the hard
   limit; [cg_any_over_soft] must be O(1) — kswapd consults it on every
   wake. *)
type cgroup_iface = {
  cg_charge : asid:int -> unit;
  cg_uncharge : asid:int -> unit;
  cg_excess : asid:int -> int;
  cg_prefer : asid:int -> bool;
  cg_any_over_soft : unit -> bool;
  cg_stats : unit -> (int * int * int * int) list;
}

type t = {
  machine : Machine.t;
  dev : dev_iface;
  limit : int;
  gap : int;  (* hysteresis: each wake evicts down to [limit - gap] *)
  major_fault_ns : float;
  max_io_retries : int;
  active : lru;
  inactive : lru;
  (* [page_key asid vpn] -> node, for every page on either list.  Which
     list a node is on is recovered by removal sites scanning both — see
     [drop_node]. *)
  pages : (int, page) Hashtbl.t;
  (* Secondary index: asid -> (vpn -> node), same membership as [pages].
     The post-GC [adopt_space] resync enumerates ONE tenant's nodes
     through it — iterating the flat table there was O(fleet-wide pages)
     per tenant GC, the quadratic wall of 10k-tenant runs.  Node drops
     are commutative, so enumeration order cannot change any outcome. *)
  by_asid : (int, (int, page) Hashtbl.t) Hashtbl.t;
  mutable pending_ns : float;
  mutable in_kswapd : bool;
  mutable cgroup : cgroup_iface option;
}

let flat_dev ~swap_out_ns ~swap_in_ns =
  let d = Swap_dev.create () in
  {
    d_alloc_slot = (fun () -> Swap_dev.alloc_slot d);
    d_free_slot = (fun slot -> Swap_dev.free_slot d slot);
    d_write = (fun ~slot b -> Swap_dev.write d ~slot b);
    d_read = (fun ~slot -> Swap_dev.read d ~slot);
    d_peek = (fun ~slot -> Swap_dev.peek d ~slot);
    d_allocated = (fun ~slot -> Swap_dev.allocated d ~slot);
    d_slots_in_use = (fun () -> Swap_dev.slots_in_use d);
    d_out_ns = (fun () -> swap_out_ns);
    d_in_ns = (fun ~slot:_ -> swap_in_ns);
    d_tier_stats = (fun () -> None);
  }

let create machine ~limit_frames ?swap_cost_ns ?(max_io_retries = 3) ?dev () =
  if limit_frames <= 0 then
    invalid_arg "Reclaim.create: limit_frames must be positive";
  let cost = machine.Machine.cost in
  let dev =
    match dev with
    | Some d -> d
    | None ->
      let swap_out_ns, swap_in_ns =
        match swap_cost_ns with
        | Some ns -> (ns, ns)
        | None -> (cost.Cost_model.swap_out_ns, cost.Cost_model.swap_in_ns)
      in
      flat_dev ~swap_out_ns ~swap_in_ns
  in
  {
    machine;
    dev;
    limit = limit_frames;
    gap = max 1 (limit_frames / 16);
    major_fault_ns = cost.Cost_model.major_fault_ns;
    max_io_retries;
    active = lru_create On_active;
    inactive = lru_create On_inactive;
    pages = Hashtbl.create 1024;
    by_asid = Hashtbl.create 64;
    pending_ns = 0.0;
    in_kswapd = false;
    cgroup = None;
  }

let set_cgroup t cg =
  t.cgroup <- cg;
  (* Adopt pages tracked before the cgroup plane existed (a tenant's heap
     maps during spawn, often before its limits are registered). *)
  match cg with
  | None -> ()
  | Some c -> Hashtbl.iter (fun _ p -> c.cg_charge ~asid:p.p_asid) t.pages

let limit_frames t = t.limit

let charge t ns = t.pending_ns <- t.pending_ns +. ns

let drain_ns t =
  let ns = t.pending_ns in
  t.pending_ns <- 0.0;
  ns

(* Forget a node: the (asid, vpn) key leaves the tracking table and the
   tenant's resident count drops with it. *)
let asid_nodes t asid =
  match Hashtbl.find_opt t.by_asid asid with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.add t.by_asid asid tbl;
    tbl

let untrack t p =
  Hashtbl.remove t.pages (page_key ~asid:p.p_asid ~vpn:p.p_vpn);
  (match Hashtbl.find_opt t.by_asid p.p_asid with
  | Some tbl ->
    Hashtbl.remove tbl p.p_vpn;
    if Hashtbl.length tbl = 0 then Hashtbl.remove t.by_asid p.p_asid
  | None -> ());
  match t.cgroup with
  | Some cg -> cg.cg_uncharge ~asid:p.p_asid
  | None -> ()

let drop_node t p =
  (match p.p_on with
  | On_active -> lru_remove t.active p
  | On_inactive -> lru_remove t.inactive p
  | Nowhere -> ());
  untrack t p

(* One swap-device transfer with a bounded retry against the machine's
   fault plane; each attempt (including failed ones) pays [cost_ns]. *)
let swap_io_ok t ~va ~cost_ns =
  let perf = t.machine.Machine.perf in
  let rec go attempt =
    charge t cost_ns;
    let fired =
      match t.machine.Machine.fault with
      | None -> false
      | Some inj ->
        Svagc_fault.Injector.fire inj ~site:Svagc_fault.Fault_spec.Swap_io ~va
    in
    if not fired then true
    else begin
      perf.Perf.swap_io_errors <- perf.Perf.swap_io_errors + 1;
      if attempt + 1 < t.max_io_retries then go (attempt + 1) else false
    end
  in
  go 0

(* Evict one tracked page: copy its frame to a fresh swap slot, free the
   frame, leave a swapped PTE behind and scrub every TLB.  Returns false
   when the eviction was skipped (stale node or device EIO). *)
let swap_out t (p : page) =
  let perf = t.machine.Machine.perf in
  let va = p.p_vpn * Addr.page_size in
  let pte = Page_table.get_pte p.p_pt va in
  if not (Pte.is_present pte) then begin
    (* Stale node: the entry at this va was swapped or remapped under us
       (compaction churn); tracking catches up at the next resync. *)
    untrack t p;
    false
  end
  else if not (swap_io_ok t ~va ~cost_ns:(t.dev.d_out_ns ())) then begin
    (* Device refused every attempt: skip this page, give it another
       round through the active list. *)
    p.p_ref <- true;
    lru_push_front t.active p;
    false
  end
  else begin
    let frame = Pte.frame_exn pte in
    let slot = t.dev.d_alloc_slot () in
    t.dev.d_write ~slot (Phys_mem.frame_contents t.machine.Machine.phys frame);
    Phys_mem.free_frame t.machine.Machine.phys frame;
    Page_table.set_pte p.p_pt va (Pte.make_swapped ~slot);
    (* The frame is gone: invalidate any cached translation everywhere
       (the eviction-side half of shootdown discipline). *)
    Array.iter
      (fun c -> Tlb.flush_page c.Machine.tlb ~asid:p.p_asid ~vpn:p.p_vpn)
      t.machine.Machine.cores;
    perf.Perf.tlb_flush_page <- perf.Perf.tlb_flush_page + 1;
    charge t t.machine.Machine.cost.Cost_model.tlb_flush_page_ns;
    perf.Perf.pages_swapped_out <- perf.Perf.pages_swapped_out + 1;
    untrack t p;
    if Tracer.tracing () then
      Tracer.instant ~cat:"reclaim"
        ~args:
          [
            ("va", Svagc_trace.Event.Int va);
            ("asid", Svagc_trace.Event.Int p.p_asid);
            ("slot", Svagc_trace.Event.Int slot);
          ]
        "reclaim.swap_out";
    true
  end

(* The kswapd loop: when residency (plus any frame the caller is about to
   take, [incoming]) exceeds the limit, age the active list into the
   inactive list and evict unreferenced inactive pages until residency
   drops below the low watermark.  Second-chance: a referenced inactive
   page is rescued back to the active head instead of evicted.  The scan
   budget (every page can be aged once and considered once, plus slack)
   guarantees termination even when eviction makes no progress. *)
let balance_incoming t ~incoming =
  let perf = t.machine.Machine.perf in
  let phys = t.machine.Machine.phys in
  if (not t.in_kswapd) && Phys_mem.frames_in_use phys + incoming > t.limit
  then begin
    t.in_kswapd <- true;
    perf.Perf.kswapd_wakes <- perf.Perf.kswapd_wakes + 1;
    let tracing = Tracer.tracing () in
    if tracing then Tracer.span_begin ~cat:"reclaim" "reclaim.kswapd";
    let ns_before = t.pending_ns in
    let scans_before = perf.Perf.reclaim_scans in
    let target = max 0 (t.limit - t.gap) in
    let budget = ref ((2 * (t.active.size + t.inactive.size)) + 64) in
    (* Soft-limit-first victim selection: while some tenant is over its
       soft limit, pages of under-soft tenants are rescued to the active
       head instead of evicted (like a second chance, without needing a
       touch), so the over-soft tenants' cold pages surface first.  The
       rotation allowance (one full pass over the lists, refreshed per
       wake) bounds the detour — once spent, or once no tenant is over
       soft, plain second-chance LRU resumes. *)
    let rotations =
      ref
        (match t.cgroup with
        | Some cg when cg.cg_any_over_soft () ->
          t.active.size + t.inactive.size
        | _ -> 0)
    in
    let spare p =
      !rotations > 0
      &&
      match t.cgroup with
      | Some cg ->
        cg.cg_any_over_soft () && not (cg.cg_prefer ~asid:p.p_asid)
      | None -> false
    in
    while
      Phys_mem.frames_in_use phys + incoming > target
      && !budget > 0
      && t.active.size + t.inactive.size > 0
    do
      decr budget;
      match lru_pop_back t.inactive with
      | Some p ->
        perf.Perf.reclaim_scans <- perf.Perf.reclaim_scans + 1;
        if p.p_ref then begin
          (* Second chance: touched while inactive. *)
          p.p_ref <- false;
          lru_push_front t.active p
        end
        else if spare p then begin
          decr rotations;
          lru_push_front t.active p
        end
        else ignore (swap_out t p)
      | None -> (
        (* Refill: age one page from the active tail, clearing its
           referenced bit so a further touch is needed to rescue it. *)
        match lru_pop_back t.active with
        | Some p ->
          perf.Perf.reclaim_scans <- perf.Perf.reclaim_scans + 1;
          p.p_ref <- false;
          lru_push_front t.inactive p
        | None -> budget := 0)
    done;
    if tracing then
      Tracer.span_end
        ~args:
          [
            ( "scans",
              Svagc_trace.Event.Int (perf.Perf.reclaim_scans - scans_before) );
            ( "resident_frames",
              Svagc_trace.Event.Int (Phys_mem.frames_in_use phys) );
          ]
        ~dur_ns:(t.pending_ns -. ns_before) ();
    t.in_kswapd <- false
  end

let balance t = balance_incoming t ~incoming:0

let track t ~pt ~asid ~va =
  let vpn = Addr.page_number va in
  match Hashtbl.find t.pages (page_key ~asid ~vpn) with
  | p -> p.p_ref <- true
  | exception Not_found ->
    let p =
      {
        p_asid = asid;
        p_vpn = vpn;
        p_pt = pt;
        p_ref = true;
        p_prev = None;
        p_next = None;
        p_on = Nowhere;
      }
    in
    Hashtbl.add t.pages (page_key ~asid ~vpn) p;
    Hashtbl.replace (asid_nodes t asid) vpn p;
    (match t.cgroup with Some cg -> cg.cg_charge ~asid | None -> ());
    lru_push_front t.active p

(* Evict up to [excess] resident pages of one tenant, coldest first
   (inactive back-to-front, then active back-to-front), regardless of the
   global watermark — the hard-limit enforcement path.  [protect] shields
   the page the caller is in the middle of producing (a fresh mapping or
   a just-faulted page), whose eviction would break the caller's
   postcondition. *)
let shrink_asid t ~asid ~excess ~protect =
  if excess > 0 then begin
    let evicted = ref 0 in
    let collect l =
      let nodes = ref [] in
      let cur = ref l.last in
      while !cur <> None do
        match !cur with
        | Some p ->
          if p.p_asid = asid && protect <> Some p.p_vpn then
            nodes := p :: !nodes;
          cur := p.p_prev
        | None -> ()
      done;
      (* Back-to-front: coldest candidates first. *)
      List.rev !nodes
    in
    let try_evict p =
      if !evicted < excess && p.p_on <> Nowhere then begin
        (match p.p_on with
        | On_active -> lru_remove t.active p
        | On_inactive -> lru_remove t.inactive p
        | Nowhere -> ());
        if swap_out t p then incr evicted
      end
    in
    List.iter try_evict (collect t.inactive);
    if !evicted < excess then List.iter try_evict (collect t.active)
  end

let enforce t ~asid ~protect =
  match t.cgroup with
  | None -> ()
  | Some cg ->
    let excess = cg.cg_excess ~asid in
    if excess > 0 then shrink_asid t ~asid ~excess ~protect

let enforce_hard t ~asid = enforce t ~asid ~protect:None

let page_mapped t ~pt ~asid ~va =
  track t ~pt ~asid ~va;
  balance t;
  enforce t ~asid ~protect:(Some (Addr.page_number va))

let page_unmapped t ~asid ~va ~pte =
  if Pte.is_swapped pte then t.dev.d_free_slot (Pte.swap_slot_exn pte);
  match Hashtbl.find t.pages (page_key ~asid ~vpn:(Addr.page_number va)) with
  | p -> drop_node t p
  | exception Not_found -> ()

(* The hottest notification: every simulated heap access lands here.
   [Hashtbl.find] on the packed int key plus the exception match keeps the
   miss AND hit paths free of [Some]/tuple allocation. *)
let page_touched t ~asid ~va =
  match Hashtbl.find t.pages (page_key ~asid ~vpn:(Addr.page_number va)) with
  | p -> p.p_ref <- true
  | exception Not_found -> ()

let adopt_space t ~pt ~asid =
  (* Drop stale nodes first (tracked but no longer present) ... *)
  let stale = ref [] in
  (match Hashtbl.find_opt t.by_asid asid with
  | None -> ()
  | Some tbl ->
    Hashtbl.iter
      (fun _ p ->
        if
          not
            (Pte.is_present
               (Page_table.get_pte pt (p.p_vpn * Addr.page_size)))
        then stale := p :: !stale)
      tbl);
  List.iter (fun p -> drop_node t p) !stale;
  (* ... then track present pages we do not know about, in deterministic
     page-table walk order. *)
  Page_table.iter_mapped pt ~f:(fun ~vpn ~frame:_ ->
      if not (Hashtbl.mem t.pages (page_key ~asid ~vpn)) then
        track t ~pt ~asid ~va:(vpn * Addr.page_size));
  (* The resync may have revealed pages this tenant acquired since the
     last notification; settle its hard limit before handing back. *)
  enforce t ~asid ~protect:None

let fault_in t ~pt ~asid ~va =
  let pte = Page_table.get_pte pt va in
  if Pte.is_swapped pte then begin
    let perf = t.machine.Machine.perf in
    perf.Perf.major_faults <- perf.Perf.major_faults + 1;
    charge t t.major_fault_ns;
    (* Make room BEFORE taking the frame: the incoming page is not on any
       LRU list yet, so kswapd cannot choose it — which is what makes the
       caller's fault-then-retry loop terminate. *)
    balance_incoming t ~incoming:1;
    let slot = Pte.swap_slot_exn pte in
    if not (swap_io_ok t ~va ~cost_ns:(t.dev.d_in_ns ~slot)) then
      raise
        (Svagc_fault.Kernel_error.Fault (Svagc_fault.Kernel_error.EIO_swap { va }));
    let frame = Phys_mem.alloc_frame t.machine.Machine.phys in
    (match t.dev.d_read ~slot with
    | None -> () (* zero page: the fresh frame is already lazily zero *)
    | Some b ->
      Bytes.blit b 0
        (Phys_mem.frame_bytes t.machine.Machine.phys frame)
        0 (Bytes.length b));
    t.dev.d_free_slot slot;
    Page_table.set_pte pt va (Pte.make ~frame);
    perf.Perf.pages_swapped_in <- perf.Perf.pages_swapped_in + 1;
    track t ~pt ~asid ~va;
    enforce t ~asid ~protect:(Some (Addr.page_number va));
    if Tracer.tracing () then
      Tracer.instant ~cat:"reclaim"
        ~args:
          [
            ("va", Svagc_trace.Event.Int va);
            ("asid", Svagc_trace.Event.Int asid);
            ("slot", Svagc_trace.Event.Int slot);
            ("frame", Svagc_trace.Event.Int frame);
          ]
        "reclaim.fault_in"
  end

let slot_bytes t ~slot = t.dev.d_peek ~slot

let slot_allocated t ~slot = t.dev.d_allocated ~slot

let slots_in_use t = t.dev.d_slots_in_use ()

let tier_stats t = t.dev.d_tier_stats ()

let cgroup_stats t =
  match t.cgroup with None -> [] | Some cg -> cg.cg_stats ()

let tracked_pages t = t.active.size + t.inactive.size
