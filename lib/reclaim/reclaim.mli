(** Kernel-side memory-pressure engine: per-machine active/inactive LRU
    page lists, a kswapd-style watermark reclaimer, and the swap-out /
    fault-in mechanics over {!Swap_dev}.

    This module owns the {e policy and state}; the {e wiring} lives in
    [Svagc_kernel.Fault_handler], which wraps these operations in the
    closure record [Machine.reclaim_iface] and installs it on the machine
    so that the vmem layer (which cannot depend on this library) can
    notify page lifecycle events and demand-fault swapped pages back in.

    Pages are tracked per virtual address [(asid, vpn)] — a PTE-level
    SwapVA that exchanges two {e present} entries moves frames between
    addresses without invalidating the tracking; mixed present/swapped
    exchanges are repaired by the post-GC {!adopt_space} resync.

    Costs: every swap-device transfer attempt charges the cost model's
    [swap_out_ns]/[swap_in_ns] (or the [swap_cost] override) and every
    demand fault charges [major_fault_ns] into an internal accumulator,
    drained by the caller that triggered the work ({!drain_ns}) into the
    appropriate simulated clock.  Determinism: no wall clock, no RNG of
    its own — injected device errors come from the machine's fault plane
    ([swap:p=…] clauses). *)

type t

(** A pluggable swap device as a record of closures — the same dependency
    inversion as [Machine.reclaim_iface], one level up: the tiered
    far-memory device lives in [svagc_fleet], above this library.
    [d_out_ns] is the per-attempt cost of the {e next} swap-out, queried
    before the slot is allocated (a tiered device folds in the demotion
    its next allocation will trigger, without mutating anything);
    [d_in_ns ~slot] is the per-attempt cost of reading [slot] back (far
    slots are slower).  [d_tier_stats] is [(near_in_use, far_in_use)] for
    a tiered device, [None] for a flat one. *)
type dev_iface = {
  d_alloc_slot : unit -> int;
  d_free_slot : int -> unit;
  d_write : slot:int -> bytes option -> unit;
  d_read : slot:int -> bytes option;
  d_peek : slot:int -> bytes option;
  d_allocated : slot:int -> bool;
  d_slots_in_use : unit -> int;
  d_out_ns : unit -> float;
  d_in_ns : slot:int -> float;
  d_tier_stats : unit -> (int * int) option;
}

(** Per-tenant resident-page accounting, likewise inverted (the state
    lives in [svagc_fleet]).  [cg_charge]/[cg_uncharge] fire when a page
    enters/leaves the reclaim tracking table; [cg_excess] is resident
    pages above the tenant's hard limit; [cg_prefer] marks tenants over
    their soft limit (preferred kswapd victims); [cg_any_over_soft] must
    be O(1) — it is consulted on every kswapd wake; [cg_stats] lists
    [(asid, resident, soft, hard)] in ascending-asid order. *)
type cgroup_iface = {
  cg_charge : asid:int -> unit;
  cg_uncharge : asid:int -> unit;
  cg_excess : asid:int -> int;
  cg_prefer : asid:int -> bool;
  cg_any_over_soft : unit -> bool;
  cg_stats : unit -> (int * int * int * int) list;
}

val create :
  Svagc_vmem.Machine.t ->
  limit_frames:int ->
  ?swap_cost_ns:float ->
  ?max_io_retries:int ->
  ?dev:dev_iface ->
  unit ->
  t
(** A reclaimer that keeps the machine's resident frame count at or below
    [limit_frames] (evicting down to a small hysteresis gap below it on
    each wake).  [swap_cost_ns] overrides both per-page device latencies;
    [max_io_retries] (default 3) bounds device attempts per transfer.
    [dev] replaces the default flat swap device (in which case the device
    owns all transfer costs and [swap_cost_ns] is ignored).
    @raise Invalid_argument if [limit_frames <= 0]. *)

val limit_frames : t -> int

val set_cgroup : t -> cgroup_iface option -> unit
(** Install (or remove) the per-tenant accounting plane.  Pages already
    tracked are charged to their tenants on installation. *)

val enforce_hard : t -> asid:int -> unit
(** Evict the tenant's coldest pages until it is back under its hard
    limit (no-op without a cgroup plane, or when already under).  Called
    by the fleet layer after tightening a tenant's limits; the mapping,
    faulting and adopt paths run the same enforcement automatically. *)

(** {2 Page lifecycle notifications} *)

val page_mapped : t -> pt:Svagc_vmem.Page_table.t -> asid:int -> va:int -> unit
(** Track a freshly-present page (active list, referenced) and run the
    watermark check — mapping may have pushed residency over the limit. *)

val page_unmapped : t -> asid:int -> va:int -> pte:Svagc_vmem.Pte.value -> unit
(** Stop tracking [va]; a swapped [pte] releases its slot. *)

val page_touched : t -> asid:int -> va:int -> unit
(** Set the page's LRU referenced bit (no-op for untracked pages). *)

val adopt_space : t -> pt:Svagc_vmem.Page_table.t -> asid:int -> unit
(** (Re)synchronize tracking with the page table: track every present
    page not yet tracked, drop tracked pages that are no longer present.
    Used both to adopt pre-attach mappings and to repair tracking after a
    compaction whose SwapVA requests mixed present and swapped entries. *)

(** {2 Demand paging} *)

val fault_in : t -> pt:Svagc_vmem.Page_table.t -> asid:int -> va:int -> unit
(** The major-fault path: charge the fault, evict first if at the limit
    (so the incoming page cannot be chosen), read the slot back with a
    bounded device retry, free the slot and make the PTE present.  No-op
    when the PTE is already present (a racing fault resolved it).
    @raise Svagc_fault.Kernel_error.Fault ([EIO_swap]) when every device
    attempt fails. *)

val balance : t -> unit
(** Run the watermark check / kswapd loop explicitly (tests). *)

(** {2 Observers (oracle-safe: never mutate)} *)

val slot_bytes : t -> slot:int -> bytes option
(** The slot's payload without faulting ([None] = zero page); the device's
    own buffer, so callers must not mutate it. *)

val slot_allocated : t -> slot:int -> bool

val slots_in_use : t -> int

val tier_stats : t -> (int * int) option
(** The device's [(near_in_use, far_in_use)]; [None] for a flat device. *)

val cgroup_stats : t -> (int * int * int * int) list
(** Per-tenant [(asid, resident, soft, hard)]; [[]] without a cgroup
    plane. *)

val tracked_pages : t -> int
(** Pages currently on the LRU lists. *)

val drain_ns : t -> float
(** Return and reset the accumulated reclaim cost. *)
