(** The simulated swap device: a growable array of page-sized slots.

    Slots hold their payload as [bytes option] — [None] is a logically
    zero page, mirroring [Phys_mem]'s lazy frames, so an untouched page
    can round-trip through swap without its 4 KiB ever being allocated.
    The device itself is free of timing and failure policy: latencies are
    charged and injected EIOs decided by {!Reclaim}, which also owns slot
    lifetime (a slot is allocated on swap-out and freed on swap-in or
    when its owning page is unmapped). *)

type t

val create : unit -> t
(** An empty device; capacity grows on demand. *)

val alloc_slot : t -> int
(** Claim a free slot (lowest-numbered first, so slot numbers are
    deterministic and traces read well). *)

val free_slot : t -> int -> unit
(** @raise Invalid_argument if the slot is not allocated. *)

val write : t -> slot:int -> bytes option -> unit
(** Store a page payload; [None] records a zero page.  The device takes
    ownership of a copy, never an alias of live frame bytes.
    @raise Invalid_argument if the slot is not allocated. *)

val read : t -> slot:int -> bytes option
(** The stored payload ([None] = zero page).  Returns a fresh copy.
    @raise Invalid_argument if the slot is not allocated. *)

val peek : t -> slot:int -> bytes option
(** Like {!read} but returns the device's own buffer (callers must not
    mutate it) — the oracle/checksum path, guaranteed allocation-free. *)

val allocated : t -> slot:int -> bool

val slots_in_use : t -> int
