(** Extensions beyond the paper's evaluation, exercising the rest of its
    Table I and §VI outlook:

    1. Minor (copying) collections — the generational nursery promotes
       survivors with SwapVA vs memmove (Table I row 2).
    2. Concurrent evacuation — the semispace model relocates with
       independent SwapVA calls vs memmove (Table I row 3).
    3. NVM wear (§VI) — on a hybrid DRAM/NVM heap, every byte a full GC
       copies is an NVM write; SwapVA turns those into PTE updates.  The
       write volume is read off the machine's perf counters. *)

open Svagc_vmem
module Generational = Svagc_gc.Generational
module Semispace = Svagc_gc.Semispace
module Compact = Svagc_gc.Compact
module Move_object = Svagc_core.Move_object
module Config = Svagc_core.Config
module Process = Svagc_kernel.Process
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let fresh_proc () =
  Process.create (Machine.create ~ncores:4 ~phys_mib:256 Cost_model.xeon_6130)

(* --- 1. minor collections --- *)

let minor_case ~swapva =
  let gen =
    Generational.create (fresh_proc ()) ~young_bytes:(16 * 1024 * 1024)
      ~old_bytes:(64 * 1024 * 1024) ()
  in
  let rng = Svagc_util.Rng.create ~seed:3 in
  (* Nursery full of mixed objects; half survive. *)
  for i = 0 to 150 do
    let size =
      if i mod 3 = 0 then (48 * 1024) + Svagc_util.Rng.int rng 65536
      else 128 + Svagc_util.Rng.int rng 2048
    in
    let obj = Generational.alloc gen ~size ~n_refs:1 ~cls:0 in
    if i mod 2 = 0 then Generational.add_root gen obj
  done;
  let mover =
    if swapva then Move_object.mover Config.default else Compact.memmove_mover
  in
  Generational.minor gen ~mover

let minor_rows () =
  let mm = minor_case ~swapva:false in
  let sv = minor_case ~swapva:true in
  [
    [ "minor pause"; Report.ns mm.Generational.pause_ns;
      Report.ns sv.Generational.pause_ns;
      Report.speedup (mm.Generational.pause_ns /. sv.Generational.pause_ns) ];
    [ "promoted objects"; string_of_int mm.Generational.promoted_objects;
      string_of_int sv.Generational.promoted_objects; "" ];
    [ "promoted via SwapVA"; string_of_int mm.Generational.swapped_objects;
      string_of_int sv.Generational.swapped_objects; "" ];
  ]

(* --- 2. concurrent evacuation --- *)

let evac_case ~swapva =
  let semi =
    Semispace.create (fresh_proc ()) ~space_bytes:(24 * 1024 * 1024) ()
  in
  let heap = Semispace.heap semi in
  let rng = Svagc_util.Rng.create ~seed:4 in
  for i = 0 to 120 do
    let size =
      if i mod 2 = 0 then (64 * 1024) + Svagc_util.Rng.int rng 65536
      else 256 + Svagc_util.Rng.int rng 4096
    in
    let obj = Semispace.alloc semi ~size ~n_refs:0 ~cls:0 in
    if i mod 2 = 0 then Svagc_heap.Heap.add_root heap obj
  done;
  let mover =
    if swapva then
      (* Concurrent collectors issue relocations independently: no
         aggregation, no pinning, targeted shootdowns (Table I row 3). *)
      Move_object.mover
        { Config.default with Config.aggregation = false; aggregation_batch = 1;
          pin_compaction = false;
          flush = Svagc_kernel.Shootdown.Process_targeted }
    else Compact.memmove_mover
  in
  Semispace.collect semi ~mover

let evac_rows () =
  let mm = evac_case ~swapva:false in
  let sv = evac_case ~swapva:true in
  [
    [ "cycle work (pause + concurrent)";
      Report.ns (mm.Semispace.pause_ns +. mm.Semispace.concurrent_ns);
      Report.ns (sv.Semispace.pause_ns +. sv.Semispace.concurrent_ns);
      Report.speedup
        ((mm.Semispace.pause_ns +. mm.Semispace.concurrent_ns)
        /. (sv.Semispace.pause_ns +. sv.Semispace.concurrent_ns)) ];
    [ "stop-the-world slice"; Report.ns mm.Semispace.pause_ns;
      Report.ns sv.Semispace.pause_ns; "" ];
    [ "relocated via SwapVA"; string_of_int mm.Semispace.swapped_objects;
      string_of_int sv.Semispace.swapped_objects; "" ];
  ]

(* --- 3. NVM wear --- *)

let nvm_case kind =
  let machine = Exp_common.fresh_machine Cost_model.xeon_6130 in
  let w = Svagc_workloads.Sigverify.default in
  let r =
    Svagc_workloads.Runner.run ~machine ~steps:40 ~min_gcs:4
      ~collector_of:(Exp_common.collector_of kind) w
  in
  let cycles = r.Svagc_workloads.Runner.summary.Svagc_gc.Gc_stats.cycles in
  let copied = r.Svagc_workloads.Runner.summary.Svagc_gc.Gc_stats.total_bytes_copied in
  let remapped =
    r.Svagc_workloads.Runner.summary.Svagc_gc.Gc_stats.total_bytes_remapped
  in
  (cycles, copied, remapped)

let nvm_rows () =
  let c_mm, copied_mm, _ = nvm_case Exp_common.Lisp2_memmove in
  let c_sv, copied_sv, remapped_sv = nvm_case Exp_common.Svagc in
  let per_cycle c v = if c = 0 then 0 else v / c in
  (* A PTE update writes 8 bytes; count both swapped slots. *)
  let pte_writes = remapped_sv / Addr.page_size * 16 in
  [
    [ "full GCs observed"; string_of_int c_mm; string_of_int c_sv ];
    [ "NVM bytes written by GC copying";
      Report.bytes copied_mm; Report.bytes copied_sv ];
    [ "per cycle"; Report.bytes (per_cycle c_mm copied_mm);
      Report.bytes (per_cycle c_sv copied_sv) ];
    [ "page-table bytes written instead"; "0B"; Report.bytes pte_writes ];
  ]

(* --- 4. LOS vs conventional heap --- *)

(* The same large-object churn trace, twice: into a non-moving LOS (holes
   accumulate until a fit fails despite free space) and into an SVAGC
   conventional heap (compaction keeps it dense for a few microseconds of
   PTE swapping per cycle). *)
let los_rows () =
  let region = 24 * 1024 * 1024 in
  let window = 85 in
  (* LOS side. *)
  let proc = fresh_proc () in
  let los = Svagc_heap.Los.create proc ~size_bytes:region () in
  let rng = Svagc_util.Rng.create ~seed:12 in
  let slots = Array.make window None in
  let failure_step = ref None in
  let steps = 4000 in
  (try
     for step = 1 to steps do
       let size = (10 + Svagc_util.Rng.int rng 90) * 4096 in
       let slot = Svagc_util.Rng.int rng window in
       (match slots.(slot) with
       | Some old -> Svagc_heap.Los.free los old
       | None -> ());
       slots.(slot) <- Some (Svagc_heap.Los.alloc los ~size ~n_refs:0 ~cls:0);
       ignore step
     done
   with Svagc_heap.Los.Los_full ->
     failure_step := Some (Svagc_heap.Los.object_count los));
  let los_frag = Svagc_heap.Los.external_fragmentation los in
  let los_holes = Svagc_heap.Los.hole_count los in
  let los_free = Svagc_heap.Los.free_bytes los in
  let los_largest = Svagc_heap.Los.largest_hole_bytes los in
  (* SVAGC side: identical trace into a compacted conventional heap. *)
  let machine = Exp_common.fresh_machine Cost_model.xeon_6130 in
  let jvm =
    Svagc_core.Jvm.create machine ~name:"los-vs-svagc" ~heap_bytes:region
      ~collector_of:(Svagc_core.Svagc.collector ~config:Config.default)
      ()
  in
  let heap = Svagc_core.Jvm.heap jvm in
  let rng = Svagc_util.Rng.create ~seed:12 in
  let slots = Array.make window None in
  for _ = 1 to 4000 do
    let size = (10 + Svagc_util.Rng.int rng 90) * 4096 in
    let slot = Svagc_util.Rng.int rng window in
    (match slots.(slot) with
    | Some old -> Svagc_heap.Heap.remove_root heap old
    | None -> ());
    let obj = Svagc_core.Jvm.alloc jvm ~size ~n_refs:0 ~cls:0 in
    Svagc_heap.Heap.add_root heap obj;
    slots.(slot) <- Some obj
  done;
  [
    [ "allocation failure";
      (match !failure_step with
      | Some live -> Printf.sprintf "Los_full with %d live objects" live
      | None -> "none in 4000 steps");
      "none (compaction)" ];
    [ "external fragmentation"; Printf.sprintf "%.1f%%" (100.0 *. los_frag);
      "0% after each full GC" ];
    [ "free-list holes"; string_of_int los_holes; "n/a (bump pointer)" ];
    [ "free but unusable for a 100-page object";
      (if los_largest < 100 * 4096 then Report.bytes los_free else "0B");
      "0B" ];
    [ "price paid instead"; "-";
      Printf.sprintf "%d full GCs, %s total GC"
        (Svagc_core.Jvm.gc_count jvm)
        (Report.ns (Svagc_core.Jvm.gc_ns jvm)) ];
  ]

(* --- 5. swap engine ablation: per-page vs run-coalesced vs leaf swap --- *)

module Swapva = Svagc_kernel.Swapva

(* One request over [pages] PMD-aligned pages per side, through each of the
   three disjoint-swap engines on a fresh process.  The per-page and
   run-coalesced engines must agree bit-for-bit on simulated cost (the
   run engine only changes how the simulator spends host time); the
   opt-in leaf-swap mode trades the per-page charges of whole 512-page
   leaves for one [pmd_swap_ns] constant each, so its simulated cost drops
   too. *)
let swap_engine_case ~pages engine =
  let proc = fresh_proc () in
  let aspace = Process.aspace proc in
  let pmd_bytes = Addr.pages_per_pmd * Addr.page_size in
  let src = 16 * pmd_bytes and dst = 64 * pmd_bytes in
  Address_space.map_range aspace ~va:src ~pages;
  Address_space.map_range aspace ~va:dst ~pages;
  let perf = (Process.machine proc).Machine.perf in
  Perf.reset perf;
  let req = { Swapva.src; dst; pages } in
  let t0 = Sys.time () in
  let ns = engine proc req in
  let host_s = Sys.time () -. t0 in
  (ns, host_s, Perf.copy perf)

let swap_engine_rows ~pages =
  let case = swap_engine_case ~pages in
  let pp_ns, pp_host, pp_perf =
    case (fun proc req -> Swapva.swap_disjoint_per_page proc ~pmd_caching:true req)
  in
  let run_ns, run_host, run_perf =
    case (fun proc req -> Swapva.swap_disjoint_run proc ~pmd_caching:true req)
  in
  let leaf_ns, leaf_host, leaf_perf =
    case (fun proc req ->
        Swapva.swap_disjoint_run ~leaf_swap:true proc ~pmd_caching:true req)
  in
  let row name (ns, host, p) =
    [
      name; Report.ns ns;
      string_of_int p.Perf.pt_walks;
      string_of_int p.Perf.pmd_cache_hits;
      string_of_int p.Perf.pmd_leaf_swaps;
      Printf.sprintf "%.1fms" (host *. 1e3);
    ]
  in
  [
    row "per-page (reference)" (pp_ns, pp_host, pp_perf);
    row "run-coalesced (live)" (run_ns, run_host, run_perf);
    row "pmd_leaf_swap (opt-in)" (leaf_ns, leaf_host, leaf_perf);
    [ "run == per-page cost";
      (if run_ns = pp_ns then "bit-identical" else "MISMATCH"); ""; ""; ""; "" ];
    [ "leaf vs per-page cost";
      Report.speedup (pp_ns /. leaf_ns); ""; ""; ""; "" ];
  ]

let run ?quick:_ () =
  Report.section
    "Extensions: SwapVA in minor / concurrent cycles, NVM wear (Table I, \
     \194\167VI)";
  Report.subsection "1. generational minor collection (memmove vs SwapVA)";
  Table.print ~headers:[ "metric"; "memmove"; "swapva"; "gain" ] (minor_rows ());
  Report.subsection "2. semispace concurrent evacuation (memmove vs SwapVA)";
  Table.print ~headers:[ "metric"; "memmove"; "swapva"; "gain" ] (evac_rows ());
  Report.subsection "3. NVM write volume of full GCs (Sigverify)";
  Table.print ~headers:[ "metric"; "memmove GC"; "SVAGC" ] (nvm_rows ());
  Report.subsection
    "4. Large Object Space vs conventional heap (paper \194\167I: LOS \
     fragmentation)";
  Table.print ~headers:[ "metric"; "non-moving LOS"; "SVAGC heap" ] (los_rows ());
  Report.subsection
    "5. disjoint-swap engine ablation (2048 pages, PMD-aligned)";
  Table.print
    ~headers:
      [ "engine"; "simulated cost"; "walks"; "pmd hits"; "leaf swaps"; "host" ]
    (swap_engine_rows ~pages:(4 * Addr.pages_per_pmd));
  Report.note
    "hybrid-memory heaps (paper \194\167VI): zero-copy compaction removes \
     nearly all GC-induced NVM writes, directly reducing wear"
