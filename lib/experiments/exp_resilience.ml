(** Resilience extension — full GCs under deterministic kernel fault
    injection.

    The paper assumes SwapVA never fails; a real kernel can return EFAULT
    (racing unmap), EAGAIN (mmap-lock contention) or lose a shootdown IPI.
    This experiment sweeps a fault rate applied uniformly to all three
    injection sites and shows that the collector (a) keeps completing
    collections by degrading failed swap batches to memmove, (b) pays a
    bounded, observable overhead for it, and (c) always leaves the heap in
    an audited-correct state ({!Svagc_heap.Heap.audit}: mapping, headers,
    no overlaps).

    Rate 0 runs the exact fault-free fast path (no injector installed) and
    doubles as the overhead baseline. *)

module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table
module Config = Svagc_core.Config
module Jvm = Svagc_core.Jvm
module Fault_spec = Svagc_fault.Fault_spec
open Svagc_vmem

type point = {
  rate : float;
  gcs : int;
  gc_ns : float;
  retries : int;
  fallbacks : int;
  ipis_lost : int;
  audit : (unit, string list) result;
}

let seed = 1337

let spec_for rate =
  if rate <= 0.0 then Fault_spec.empty
  else
    match
      Fault_spec.parse
        (Printf.sprintf "pte:p=%g,lock:p=%g,ipi:p=%g" rate rate rate)
    with
    | Ok s -> s
    | Error msg -> invalid_arg ("exp resilience: bad generated spec: " ^ msg)

let measure ~steps rate =
  let machine = Exp_common.fresh_machine Cost_model.xeon_6130 in
  let config =
    { Config.default with Config.fault_spec = spec_for rate; fault_seed = seed }
  in
  let workload = Svagc_workloads.Spec.find "Sigverify" in
  let jvm =
    Runner.make_jvm ~heap_factor:1.2 ~machine
      ~collector_of:(Exp_common.collector_of ~config Exp_common.Svagc)
      workload
  in
  let rng = Svagc_util.Rng.create ~seed:42 in
  let stepper = workload.Workload.setup jvm rng in
  for _ = 1 to steps do
    stepper ()
  done;
  (* At least one compacting collection even if allocation pressure never
     triggered one, so every point exercises the swap plane. *)
  ignore (Jvm.run_gc jvm);
  let perf = machine.Machine.perf in
  {
    rate;
    gcs = Jvm.gc_count jvm;
    gc_ns = Jvm.gc_ns jvm;
    retries = perf.Perf.swap_retries;
    fallbacks = perf.Perf.swap_fallbacks;
    ipis_lost = perf.Perf.ipis_lost;
    audit = Svagc_heap.Heap.audit (Jvm.heap jvm);
  }

let run ?(quick = false) () =
  Report.section
    "Resilience (extension) - GC under injected kernel faults (seed 1337)";
  let rates = if quick then [ 0.0; 0.01 ] else [ 0.0; 0.001; 0.01; 0.05 ] in
  let steps = if quick then 30 else 60 in
  let points = List.map (measure ~steps) rates in
  let baseline_ns =
    match points with p :: _ -> p.gc_ns | [] -> 0.0
  in
  Table.print
    ~headers:
      [
        "fault rate"; "full GCs"; "GC time"; "retries"; "fallbacks";
        "IPIs lost"; "GC overhead"; "heap audit";
      ]
    (List.map
       (fun p ->
         [
           Printf.sprintf "%g" p.rate;
           string_of_int p.gcs;
           Report.ns p.gc_ns;
           string_of_int p.retries;
           string_of_int p.fallbacks;
           string_of_int p.ipis_lost;
           (if baseline_ns > 0.0 then
              Printf.sprintf "%+.1f%%"
                (100.0 *. (p.gc_ns -. baseline_ns) /. baseline_ns)
            else "n/a");
           (match p.audit with
           | Ok () -> "ok"
           | Error ps -> Printf.sprintf "FAILED (%d)" (List.length ps));
         ])
       points);
  List.iter
    (fun p ->
      match p.audit with
      | Ok () -> ()
      | Error ps ->
        Report.subsection (Printf.sprintf "audit failures at rate %g" p.rate);
        List.iter (fun m -> Printf.printf "  %s\n" m) ps)
    points;
  Report.note
    "rate 0 takes the injector-free fast path and anchors the overhead \
     column; at positive rates EFAULT/exhausted-EAGAIN batches degrade to \
     memmove (fallbacks), transient EAGAIN is retried with backoff \
     (retries), and lost IPIs are resent inside the shootdown protocol \
     (IPIs lost) - collections always complete and the post-GC heap audit \
     must stay clean"
