open Svagc_vmem
module Swapva = Svagc_kernel.Swapva
module Process = Svagc_kernel.Process
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type point = {
  pages : int;
  uncached_ns : float;
  cached_ns : float;
  improvement_pct : float;
}

let swap_once ~pmd_caching ~pages =
  let machine = Machine.create ~phys_mib:1024 Cost_model.i5_7600 in
  let proc = Process.create machine in
  let aspace = Process.aspace proc in
  let src = 1 lsl 30 and dst = (1 lsl 30) + (1 lsl 29) in
  Address_space.map_range aspace ~va:src ~pages;
  Address_space.map_range aspace ~va:dst ~pages;
  let opts =
    { Swapva.pmd_caching; flush = Svagc_kernel.Shootdown.Local_pinned;
      allow_overlap = false; leaf_swap = false }
  in
  Swapva.swap proc ~opts ~src ~dst ~pages

let measure () =
  List.map
    (fun pages ->
      let uncached_ns = swap_once ~pmd_caching:false ~pages in
      let cached_ns = swap_once ~pmd_caching:true ~pages in
      {
        pages;
        uncached_ns;
        cached_ns;
        improvement_pct = 100.0 *. (uncached_ns -. cached_ns) /. uncached_ns;
      })
    [ 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048 ]

let run ?quick:_ () =
  Report.section "Fig. 8 - Benefits of PMD caching (i5-7600)";
  let points = measure () in
  Table.print
    ~headers:[ "pages"; "no pmd cache"; "pmd cache"; "improvement" ]
    (List.map
       (fun p ->
         [
           string_of_int p.pages;
           Report.ns p.uncached_ns;
           Report.ns p.cached_ns;
           Report.pct p.improvement_pct;
         ])
       points);
  let multi = List.filter (fun p -> p.pages >= 16) points in
  let avg =
    List.fold_left (fun acc p -> acc +. p.improvement_pct) 0.0 multi
    /. float_of_int (List.length multi)
  in
  let best = List.fold_left (fun acc p -> Float.max acc p.improvement_pct) 0.0 points in
  Report.paper_vs_measured
    [
      ("max improvement", "52.48%", Report.pct best);
      ("avg improvement (multi-page)", "36.73%", Report.pct avg);
    ]
