(* Extension: real host parallelism with deterministic reduction
   (DESIGN.md §13).

   Everything printed here is *simulated* and therefore byte-identical no
   matter how many host domains execute it — CI diffs this experiment's
   output under DOMAINS=1 and DOMAINS=4.  Host wall-clock scaling is the
   separate bench/par_bench.exe (BENCH_par.json). *)

open Svagc_vmem
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table
module Domain_pool = Svagc_par.Domain_pool
module Par_sweep = Svagc_par.Par_sweep
module Rng = Svagc_util.Rng
module Heap = Svagc_heap.Heap
module Lisp2 = Svagc_gc.Lisp2
module Gc_stats = Svagc_gc.Gc_stats

let base = 1 lsl 30

(* A page table scrambled by a deterministic swap schedule, so the sweep
   audits a non-trivial mapping. *)
let fixture ~arena_pages ~seed =
  let machine = Machine.create ~ncores:4 ~phys_mib:128 Cost_model.xeon_6130 in
  let proc = Process.create machine in
  Address_space.map_range (Process.aspace proc) ~va:base ~pages:arena_pages;
  let rng = Rng.create ~seed in
  for _ = 1 to 12 do
    let pages = 1 + Rng.int rng 128 in
    let a = Rng.int rng (arena_pages - (2 * pages) + 1) in
    let b = a + pages + Rng.int rng (arena_pages - a - (2 * pages) + 1) in
    ignore
      (Swapva.swap_disjoint_run proc ~pmd_caching:true
         {
           Swapva.src = base + (a * Addr.page_size);
           dst = base + (b * Addr.page_size);
           pages;
         })
  done;
  (machine, Address_space.page_table (Process.aspace proc))

(* One traced-free LISP2 cycle over a seeded object soup, digested to the
   numbers whose bit-identity across domain counts we want to exhibit. *)
let gc_digest ~domains =
  Domain_pool.with_global ~domains (fun () ->
      let machine =
        Machine.create ~ncores:4 ~phys_mib:128 Cost_model.xeon_6130
      in
      let proc = Process.create machine in
      let heap = Heap.create proc ~size_bytes:(8 * 1024 * 1024) () in
      let rng = Rng.create ~seed:31 in
      let prev = ref None in
      for i = 0 to 119 do
        let size =
          if Rng.int rng 10 < 3 then (40 * 1024) + Rng.int rng (32 * 1024)
          else 64 + Rng.int rng 1024
        in
        let obj = Heap.alloc heap ~size ~n_refs:2 ~cls:(i mod 3) in
        if Rng.int rng 3 > 0 then begin
          Heap.add_root heap obj;
          (match !prev with
          | Some p -> Heap.set_ref heap obj ~slot:0 (Some p)
          | None -> ());
          prev := Some obj
        end
      done;
      let c = Lisp2.collect (Lisp2.config ~threads:4 ()) heap in
      ( List.map Int64.bits_of_float
          [ c.Gc_stats.mark_ns; c.Gc_stats.adjust_ns; c.Gc_stats.compact_ns ],
        (c.Gc_stats.live_objects, c.Gc_stats.live_bytes),
        c ))

let run ?(quick = false) () =
  Report.section
    "Host parallelism - sharded sweep & GC fan-out, deterministic reduction \
     (extension)";
  let arena_pages = if quick then 4096 else 16384 in
  let machine, pt = fixture ~arena_pages ~seed:7 in
  let reference = Par_sweep.checksum_reference pt ~va:base ~pages:arena_pages in
  let r1 = Par_sweep.run machine pt ~va:base ~pages:arena_pages ~shards:1 in
  Table.print
    ~headers:
      [ "shards"; "leaves"; "mapped"; "checksum"; "walk"; "makespan"; "speedup" ]
    (List.map
       (fun shards ->
         let r = Par_sweep.run machine pt ~va:base ~pages:arena_pages ~shards in
         [
           string_of_int shards;
           string_of_int r.Par_sweep.leaves;
           string_of_int (r.Par_sweep.present + r.Par_sweep.swapped);
           (if r.Par_sweep.checksum = reference then "ok" else "MISMATCH");
           Report.ns r.Par_sweep.walk_ns;
           Report.ns r.Par_sweep.makespan_ns;
           Report.speedup (r1.Par_sweep.walk_ns /. r.Par_sweep.makespan_ns);
         ])
       [ 1; 2; 4; 8; 16 ]);
  (* Domain-invariance, demonstrated live: the same 8-shard sweep and the
     same GC cycle executed on 1 vs 4 real domains. *)
  let sweep_with domains =
    Domain_pool.with_pool ~domains (fun pool ->
        Par_sweep.run ~pool machine pt ~va:base ~pages:arena_pages ~shards:8)
  in
  let s1 = sweep_with 1 and s4 = sweep_with 4 in
  Report.kv "sweep, 1 vs 4 domains (8 shards)"
    (if
       s1 = s4
       && Int64.bits_of_float s1.Par_sweep.walk_ns
          = Int64.bits_of_float s4.Par_sweep.walk_ns
     then "bit-identical"
     else "DIVERGED");
  let g1_bits, g1_ints, c1 = gc_digest ~domains:1 in
  let g4_bits, g4_ints, _ = gc_digest ~domains:4 in
  Report.kv "LISP2 cycle, 1 vs 4 domains"
    (if g1_bits = g4_bits && g1_ints = g4_ints then "bit-identical"
     else "DIVERGED");
  Report.kv "mark" (Report.ns c1.Gc_stats.mark_ns);
  Report.kv "adjust" (Report.ns c1.Gc_stats.adjust_ns);
  Report.kv "sweep checksum" (Printf.sprintf "0x%016Lx" reference);
  Report.note
    "Shard counts are simulation semantics (the partition is fixed); host \
     domains only decide which hardware thread runs a shard, so clocks, \
     counters and checksums never move with DOMAINS.  Wall-clock scaling \
     lives in bench/par_bench.exe."
