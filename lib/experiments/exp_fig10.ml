open Svagc_vmem
module Swapva = Svagc_kernel.Swapva
module Memmove = Svagc_kernel.Memmove
module Process = Svagc_kernel.Process
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type point = {
  pages : int;
  memmove_ns : float;
  swapva_ns : float;
}

type sweep = {
  machine : string;
  points : point list;
  crossover_pages : int option;
}

let sweep_machine cost =
  let points =
    List.map
      (fun pages ->
        let machine = Machine.create ~phys_mib:1024 cost in
        let proc = Process.create machine in
        let aspace = Process.aspace proc in
        let src = 1 lsl 30 and dst = (1 lsl 30) + (1 lsl 29) in
        Address_space.map_range aspace ~va:src ~pages;
        Address_space.map_range aspace ~va:dst ~pages;
        let len = pages * Addr.page_size in
        let memmove_ns = Memmove.move aspace ~src ~dst ~len in
        let opts =
          { Swapva.pmd_caching = true; flush = Svagc_kernel.Shootdown.Local_pinned;
            allow_overlap = false; leaf_swap = false }
        in
        let swapva_ns = Swapva.swap proc ~opts ~src ~dst ~pages in
        { pages; memmove_ns; swapva_ns })
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 12; 14; 16; 20; 24; 32; 48; 64 ]
  in
  let crossover_pages =
    List.find_opt (fun p -> p.swapva_ns < p.memmove_ns) points
    |> Option.map (fun p -> p.pages)
  in
  { machine = cost.Cost_model.name; points; crossover_pages }

let measure () = List.map sweep_machine [ Cost_model.xeon_6130; Cost_model.xeon_6240 ]

let run ?quick:_ () =
  Report.section "Fig. 10 - SwapVA threshold vs CPU/memory configuration";
  let sweeps = measure () in
  List.iter
    (fun s ->
      Report.subsection s.machine;
      Table.print
        ~headers:[ "pages"; "memmove"; "swapva"; "winner" ]
        (List.map
           (fun p ->
             [
               string_of_int p.pages;
               Report.ns p.memmove_ns;
               Report.ns p.swapva_ns;
               (if p.swapva_ns < p.memmove_ns then "swapva" else "memmove");
             ])
           s.points);
      Report.kv "crossover"
        (match s.crossover_pages with
        | Some p -> Printf.sprintf "%d pages" p
        | None -> "none in range"))
    sweeps;
  Report.paper_vs_measured
    (List.map
       (fun s ->
         ( s.machine ^ " break-even",
           "~10 pages",
           match s.crossover_pages with
           | Some p -> Printf.sprintf "%d pages" p
           | None -> "none" ))
       sweeps)
