(** Resilience extension — full GCs under deterministic kernel fault
    injection (sweep of EFAULT / EAGAIN / lost-IPI rates with post-GC heap
    audits).  Registered as [exp resilience]. *)

val run : ?quick:bool -> unit -> unit
