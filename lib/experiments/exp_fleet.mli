(** Fleet extension — 1k+ tenants with memory cgroups, admission control
    and a tiered far-memory swap device, contrasting SwapVA vs memmove
    tail GC pauses under 2x overcommit.  Registered as [exp fleet]. *)

val tenants_override : int option ref
(** When set (the CLI's [exp fleet --tenants N]), replaces the cohort
    size in {!config_for} (surge scales to 5% of it).  [None] leaves the
    default/quick grids untouched. *)

val config_for : quick:bool -> Svagc_fleet.Fleet.config
(** The sweep's configuration: {!Svagc_fleet.Fleet.default} (1000 + 50
    surge tenants, 10 steps) normally, a trimmed 96-tenant grid under
    [quick]. *)

val measure : quick:bool -> Exp_common.collector_kind -> Svagc_fleet.Fleet.result
(** One deterministic fleet run for the given collector. *)

val print_results : Svagc_fleet.Fleet.result list -> unit
(** The experiment's summary / tail-latency / per-class tables, shared
    with the [svagc fleet] subcommand. *)

val run : ?quick:bool -> unit -> unit
