open Svagc_vmem
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload

type collector_kind =
  | Svagc
  | Lisp2_memmove
  | Parallelgc
  | Shenandoah

let collector_name = function
  | Svagc -> "SVAGC"
  | Lisp2_memmove -> "-SwapVA"
  | Parallelgc -> "ParallelGC"
  | Shenandoah -> "Shenandoah"

let collector_of ?(config = Svagc_core.Config.default) kind heap =
  match kind with
  | Svagc -> Svagc_core.Svagc.collector ~config heap
  | Lisp2_memmove -> Svagc_core.Svagc.baseline_collector ~threads:4 heap
  | Parallelgc -> Svagc_gc.Parallel_gc.collector ~threads:4 heap
  | Shenandoah -> Svagc_gc.Shenandoah.collector ~threads:4 heap

let fresh_machine ?ncores ?(phys_mib = 1024) cost =
  Machine.create ?ncores ~phys_mib cost

let suite ~quick =
  if quick then
    [
      Svagc_workloads.Sparse.quarter;
      Svagc_workloads.Sparse.large;
      Svagc_workloads.Fft.large;
      Svagc_workloads.Sigverify.default;
      Svagc_workloads.Crypto_aes.workload;
    ]
  else Svagc_workloads.Spec.suite

type key = string * collector_kind * int * bool

let cache : (key, Runner.result) Hashtbl.t = Hashtbl.create 64

let suite_run ~quick kind ~heap_factor workload =
  let key =
    (workload.Workload.name, kind, int_of_float (heap_factor *. 100.0), quick)
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let machine = fresh_machine Cost_model.xeon_6130 in
    let steps = if quick then 40 else 60 in
    let min_gcs = if quick then 3 else 5 in
    let r =
      Runner.run ~heap_factor ~steps ~min_gcs ~machine
        ~collector_of:(collector_of kind) workload
    in
    Hashtbl.replace cache key r;
    r

let geomean_ratio pairs ~metric =
  Svagc_util.Num_util.geomean
    (List.map
       (fun (baseline, subject) ->
         let b = metric baseline and s = metric subject in
         if s <= 0.0 then 1.0 else b /. s)
       pairs)
