(** Shared plumbing for the figure/table reproductions: collector
    constructors, memoized suite runs (several figures reuse the same
    benchmark x collector x heap-factor grid), and geometric means. *)

type collector_kind =
  | Svagc
  | Lisp2_memmove  (** the paper's "-SwapVA" baseline *)
  | Parallelgc
  | Shenandoah

val collector_name : collector_kind -> string

val collector_of :
  ?config:Svagc_core.Config.t ->
  collector_kind ->
  Svagc_heap.Heap.t ->
  Svagc_gc.Gc_intf.t
(** [config] customizes the SVAGC collector only (default
    [Config.default]); the other collectors ignore it. *)

val fresh_machine : ?ncores:int -> ?phys_mib:int -> Svagc_vmem.Cost_model.t ->
  Svagc_vmem.Machine.t

val suite_run :
  quick:bool ->
  collector_kind ->
  heap_factor:float ->
  Svagc_workloads.Workload.t ->
  Svagc_workloads.Runner.result
(** Memoized on (workload name, collector, heap factor, quick). *)

val suite : quick:bool -> Svagc_workloads.Workload.t list
(** The Fig. 11 / Table III benchmark list; [quick] trims it to a
    representative subset so `dune runtest` stays fast. *)

val geomean_ratio :
  (Svagc_workloads.Runner.result * Svagc_workloads.Runner.result) list ->
  metric:(Svagc_workloads.Runner.result -> float) ->
  float
(** Geometric mean over pairs of [metric baseline / metric subject]. *)
