(** Fleet extension — 1k+ heterogeneous tenants on one overcommitted
    node (extension; not a paper figure).

    {!Svagc_fleet.Fleet} admits tenants against a 2x-overcommitted
    budget, caps each with a memory cgroup (soft/hard resident-frame
    limits), and spills cold pages through a two-tier swap device (local
    NVMe + slower far memory).  The experiment contrasts the two
    compaction engines under that regime: SwapVA exchanges PTEs — a
    swapped PTE participates as a swap-slot handle regardless of which
    tier holds the payload — while memmove must demand-fault both sides
    of every copy, eating the far-tier latency on each cold page.  The
    headline gate (enforced numerically by [fleet_bench]) is the tail:
    SwapVA's p99 GC pause must not exceed memmove's under identical
    pressure. *)

module Fleet = Svagc_fleet.Fleet
module Admission = Svagc_fleet.Admission
module Histogram = Svagc_util.Histogram
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table
open Svagc_vmem

(* CLI override for the cohort size (exp fleet --tenants N): the 10k
   smoke path.  Surge scales at 5% so admission keeps seeing queue
   pressure and rejections at any cohort size. *)
let tenants_override = ref None

let config_for ~quick =
  let base =
    if quick then
      { Fleet.default with Fleet.tenants = 96; surge = 12; steps = 3 }
    else Fleet.default
  in
  match !tenants_override with
  | None -> base
  | Some n -> { base with Fleet.tenants = n; surge = Stdlib.max 1 (n / 20) }

let measure ~quick kind =
  Fleet.run
    ~collector_of:(Exp_common.collector_of kind)
    ~label:(Exp_common.collector_name kind)
    (config_for ~quick)

let class_rows (r : Fleet.result) =
  let classes = [ "small"; "medium"; "large" ] in
  List.map
    (fun cls ->
      let ran = ref 0 in
      (* One append pass per class (merge-into-fresh here was the other
         O(tenants * samples) fold on the 10k-tenant path). *)
      let merged = Histogram.create () in
      Array.iter
        (fun (t : Fleet.tenant_stats) ->
          if t.Fleet.t_class = cls && t.Fleet.t_wave >= 0 then begin
            incr ran;
            Histogram.merge_into ~into:merged t.Fleet.t_gc_pauses
          end)
        r.Fleet.stats;
      [
        r.Fleet.label;
        cls;
        string_of_int !ran;
        Report.ns (Histogram.p50 merged);
        Report.ns (Histogram.p99 merged);
        Report.ns (Histogram.p999 merged);
      ])
    classes

let summary_row (r : Fleet.result) =
  let near, far = r.Fleet.tier in
  [
    r.Fleet.label;
    string_of_int (Array.length r.Fleet.stats);
    string_of_int r.Fleet.admitted;
    string_of_int r.Fleet.queued;
    string_of_int r.Fleet.rejected;
    string_of_int r.Fleet.waves;
    Printf.sprintf "%d/%d" r.Fleet.committed_frames r.Fleet.pool_frames;
    Printf.sprintf "%d+%d" near far;
    string_of_int r.Fleet.perf.Perf.tier_demotions;
    string_of_int r.Fleet.perf.Perf.tier_promotions;
  ]

let pause_row (r : Fleet.result) =
  [
    r.Fleet.label;
    string_of_int (Histogram.count r.Fleet.pauses);
    Report.ns (Histogram.p50 r.Fleet.pauses);
    Report.ns (Histogram.p99 r.Fleet.pauses);
    Report.ns (Histogram.p999 r.Fleet.pauses);
    Report.ns r.Fleet.max_tenant_p99_pause;
    Report.ns (Histogram.p50 r.Fleet.stalls);
    Report.ns (Histogram.p99 r.Fleet.stalls);
    Report.ns (Histogram.p999 r.Fleet.stalls);
  ]

let print_results results =
  Table.print
    ~headers:
      [
        "collector"; "tenants"; "admitted"; "queued"; "rejected"; "waves";
        "committed/pool"; "near+far"; "demotions"; "promotions";
      ]
    (List.map summary_row results);
  Table.print
    ~headers:
      [
        "collector"; "pauses"; "pause p50"; "pause p99"; "pause p999";
        "max tenant p99"; "stall p50"; "stall p99"; "stall p999";
      ]
    (List.map pause_row results);
  Table.print
    ~headers:[ "collector"; "class"; "ran"; "p50"; "p99"; "p999" ]
    (List.concat_map class_rows results)

let run ?(quick = false) () =
  Report.section
    "Fleet (extension) - multi-tenant cgroups, admission & far memory";
  let cfg = config_for ~quick in
  Report.kv "tenants"
    (Printf.sprintf "%d + %d surge" cfg.Fleet.tenants cfg.Fleet.surge);
  Report.kv "overcommit" (Printf.sprintf "%gx" cfg.Fleet.overcommit);
  Report.kv "far tier" (Printf.sprintf "%gx near cost" cfg.Fleet.far_tier_cost);
  let svagc = measure ~quick Exp_common.Svagc in
  let memmove = measure ~quick Exp_common.Lisp2_memmove in
  print_results [ svagc; memmove ];
  let sv99 = Histogram.p99 svagc.Fleet.pauses in
  let mm99 = Histogram.p99 memmove.Fleet.pauses in
  Report.kv "p99 gate"
    (Printf.sprintf "SwapVA %s %s memmove %s" (Report.ns sv99)
       (if sv99 <= mm99 then "<=" else "EXCEEDS")
       (Report.ns mm99));
  Report.note
    "every tenant commits its cgroup hard limit on admission; the pool \
     holds 1/overcommit of the total commitment, so kswapd keeps \
     over-soft tenants' cold pages cycling through the tiered swap \
     device. SwapVA compacts swapped pages by exchanging slot handles - \
     cold data stays in the far tier - while memmove faults each cold \
     page back through the far tier's latency before copying it"
