(** Memory-pressure extension — residency-ratio sweep (0.3–1.0) crossed
    with {SwapVA, memmove} compaction, reporting GC time, major faults and
    swap traffic under the kswapd-style reclaim plane.  Registered as
    [exp pressure]. *)

type point = {
  kind : Exp_common.collector_kind;
  residency : float;
  limit : int;  (** resident-frame cap; 0 = unlimited (no reclaim plane) *)
  gcs : int;
  gc_ns : float;
  major_faults : int;
  swapped_out : int;
  swapped_in : int;
  audit : (unit, string list) result;
}

val sweep : quick:bool -> point list
(** The raw measurement grid (collector x residency), fully
    deterministic: two calls return identical points. *)

val run : ?quick:bool -> unit -> unit
