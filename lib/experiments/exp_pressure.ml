(** Memory-pressure extension — full GCs under constrained residency.

    The reclaim plane ({!Svagc_kernel.Fault_handler}) caps the machine at a
    fraction of the workload's natural footprint; cold heap pages are
    evicted to the simulated swap device and fault back in on touch.  The
    sweep contrasts the two compaction engines under that pressure:

    - SwapVA exchanges page-table entries, and a swapped (non-present) PTE
      participates in the exchange as a swap-slot handle — no swap-in, no
      major fault, so compaction cost stays flat as residency shrinks.
    - memmove copies bytes, so both source and destination of every moved
      object must be resident — the collector demand-faults the swapped
      fraction back in and GC time grows as residency drops.

    Residency 1.0 attaches no reclaim plane at all and is bit-identical to
    a run on a machine that never heard of memory pressure. *)

module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table
module Jvm = Svagc_core.Jvm
open Svagc_vmem

type point = {
  kind : Exp_common.collector_kind;
  residency : float;
  limit : int; (* frames; 0 = unlimited *)
  gcs : int;
  gc_ns : float;
  major_faults : int;
  swapped_out : int;
  swapped_in : int;
  audit : (unit, string list) result;
}

let workload_name = "Sigverify"

(* One full run of the workload; [limit_frames = Some n] attaches the
   reclaim plane before the heap maps its first page so every heap page is
   LRU-tracked from birth. *)
let run_once ~steps ~limit_frames kind =
  let machine = Exp_common.fresh_machine Cost_model.xeon_6130 in
  (match limit_frames with
  | Some limit_frames ->
    ignore (Svagc_kernel.Fault_handler.attach machine ~limit_frames ())
  | None -> ());
  let workload = Svagc_workloads.Spec.find workload_name in
  let jvm =
    Runner.make_jvm ~heap_factor:1.2 ~machine
      ~collector_of:(Exp_common.collector_of kind)
      workload
  in
  let rng = Svagc_util.Rng.create ~seed:42 in
  let stepper = workload.Workload.setup jvm rng in
  let peak = ref (Phys_mem.frames_in_use machine.Machine.phys) in
  let sample () =
    let n = Phys_mem.frames_in_use machine.Machine.phys in
    if n > !peak then peak := n
  in
  for _ = 1 to steps do
    stepper ();
    sample ()
  done;
  (* At least one compacting collection even if allocation pressure never
     triggered one, so every point exercises the swap plane. *)
  ignore (Jvm.run_gc jvm);
  sample ();
  (jvm, machine, !peak)

let measure ~steps ~peak kind residency =
  let limit_frames =
    if residency >= 1.0 then None
    else Some (max 1 (int_of_float (ceil (residency *. float_of_int peak))))
  in
  let jvm, machine, _ = run_once ~steps ~limit_frames kind in
  let perf = machine.Machine.perf in
  {
    kind;
    residency;
    limit = (match limit_frames with Some n -> n | None -> 0);
    gcs = Jvm.gc_count jvm;
    gc_ns = Jvm.gc_ns jvm;
    major_faults = perf.Perf.major_faults;
    swapped_out = perf.Perf.pages_swapped_out;
    swapped_in = perf.Perf.pages_swapped_in;
    audit = Svagc_heap.Heap.audit (Jvm.heap jvm);
  }

let sweep ~quick =
  let residencies =
    if quick then [ 0.5; 1.0 ] else [ 0.3; 0.5; 0.7; 0.85; 1.0 ]
  in
  let steps = if quick then 30 else 60 in
  let kinds = [ Exp_common.Svagc; Exp_common.Lisp2_memmove ] in
  List.concat_map
    (fun kind ->
      (* Pass 1: unlimited run to learn this collector's natural
         footprint; the sweep caps residency relative to that peak. *)
      let _, _, peak = run_once ~steps ~limit_frames:None kind in
      List.map (measure ~steps ~peak kind) residencies)
    kinds

let run ?(quick = false) () =
  Report.section
    "Memory pressure (extension) - compaction cost vs residency ratio";
  let points = sweep ~quick in
  let baseline_for kind =
    List.find_opt (fun p -> p.kind == kind && p.residency >= 1.0) points
  in
  Table.print
    ~headers:
      [
        "collector"; "residency"; "limit"; "full GCs"; "GC time";
        "GC overhead"; "major faults"; "swapped out"; "swapped in";
        "heap audit";
      ]
    (List.map
       (fun p ->
         let base_ns =
           match baseline_for p.kind with Some b -> b.gc_ns | None -> 0.0
         in
         [
           Exp_common.collector_name p.kind;
           Printf.sprintf "%g" p.residency;
           (if p.limit = 0 then "-" else Printf.sprintf "%df" p.limit);
           string_of_int p.gcs;
           Report.ns p.gc_ns;
           (if base_ns > 0.0 then
              Printf.sprintf "%+.1f%%"
                (100.0 *. (p.gc_ns -. base_ns) /. base_ns)
            else "n/a");
           string_of_int p.major_faults;
           string_of_int p.swapped_out;
           string_of_int p.swapped_in;
           (match p.audit with
           | Ok () -> "ok"
           | Error ps -> Printf.sprintf "FAILED (%d)" (List.length ps));
         ])
       points);
  List.iter
    (fun p ->
      match p.audit with
      | Ok () -> ()
      | Error ps ->
        Report.subsection
          (Printf.sprintf "audit failures: %s at residency %g"
             (Exp_common.collector_name p.kind)
             p.residency);
        List.iter (fun m -> Printf.printf "  %s\n" m) ps)
    points;
  Report.note
    "residency r caps resident frames at r x the collector's unlimited \
     peak; 1.0 attaches no reclaim plane and anchors each overhead \
     column. SwapVA swaps non-present PTEs as swap-slot handles, so its \
     compaction cost stays near the baseline at every residency, while \
     the memmove collector must demand-fault both sides of every copy - \
     its major faults and GC time grow as the swapped fraction grows"
