open Svagc_vmem
module Jvm = Svagc_core.Jvm
module Multi_jvm = Svagc_core.Multi_jvm
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type point = {
  instances : int;
  avg_app_ns : float;
  avg_gc_total_ns : float;
  max_gc_pause_ns : float;
  app_increase_pct : float;
  gc_increase_pct : float;
}

let run_one ~collector ~instances ~steps =
  let workload = Svagc_workloads.Lru_cache.workload in
  let phys_mib = 256 + (instances * 24) in
  let machine =
    Machine.create ~ncores:32 ~phys_mib Cost_model.xeon_6130
  in
  let steppers = Array.make instances (fun () -> ()) in
  let multi =
    Multi_jvm.create machine ~instances ~spawn:(fun ~index machine ->
        let jvm =
          Runner.make_jvm ~heap_factor:1.2 ~stamp_headers:false ~machine
            ~collector_of:(Exp_common.collector_of collector) workload
        in
        let rng = Svagc_util.Rng.create ~seed:(1000 + index) in
        steppers.(index) <- workload.Workload.setup jvm rng;
        jvm)
  in
  (* Interleave: step s visits every instance in turn, so all JVMs make
     progress under the same contention level.  The event calendar
     replays that wave order exactly (FIFO ties at each step's ns). *)
  Multi_jvm.run_round_robin_indexed multi ~steps ~step:(fun ~index _jvm _s ->
      steppers.(index) ());
  let jvms = Multi_jvm.jvms multi in
  let max_pause =
    Array.fold_left
      (fun acc jvm ->
        List.fold_left
          (fun acc c -> Float.max acc (Svagc_gc.Gc_stats.pause_ns c))
          acc (Jvm.cycles jvm))
      0.0 jvms
  in
  Gc.full_major ();
  let point =
    {
      instances;
      avg_app_ns = Multi_jvm.avg_app_ns multi;
      avg_gc_total_ns = Multi_jvm.avg_gc_ns multi;
      max_gc_pause_ns = max_pause;
      app_increase_pct = 0.0;
      gc_increase_pct = 0.0;
    }
  in
  Multi_jvm.release multi;
  point

let sweep ~collector ?(steps = 40) ?(instances = [ 1; 2; 4; 8; 16; 32 ]) () =
  let raw = List.map (fun i -> run_one ~collector ~instances:i ~steps) instances in
  match raw with
  | [] -> []
  | base :: _ ->
    List.map
      (fun p ->
        {
          p with
          app_increase_pct =
            Svagc_util.Num_util.pct_change ~baseline:base.avg_app_ns
              ~value:p.avg_app_ns;
          gc_increase_pct =
            Svagc_util.Num_util.pct_change ~baseline:base.avg_gc_total_ns
              ~value:p.avg_gc_total_ns;
        })
      raw

let print_points points =
  Table.print
    ~headers:[ "JVMs"; "avg app"; "avg GC total"; "max pause"; "app +%"; "GC +%" ]
    (List.map
       (fun p ->
         [
           string_of_int p.instances;
           Report.ns p.avg_app_ns;
           Report.ns p.avg_gc_total_ns;
           Report.ns p.max_gc_pause_ns;
           Printf.sprintf "%.1f" p.app_increase_pct;
           Printf.sprintf "%.1f" p.gc_increase_pct;
         ])
       points)
