(** Ablations (extension beyond the paper's figures).

    Three studies of the design choices DESIGN.md calls out:

    1. Cost-model sensitivity — how the Fig. 10 break-even threshold moves
       when memory bandwidth or page-table access costs change (the
       paper's point that "CPU performance and memory bandwidth can impact
       the threshold value and define it").
    2. Shootdown sensitivity — how the Fig. 9 optimized/unoptimized gap
       responds to the IPI cost.
    3. Optimization knock-outs — each SVAGC optimization disabled in turn
       on two representative benchmarks, measuring what it contributes to
       total GC time. *)

open Svagc_vmem
module Swapva = Svagc_kernel.Swapva
module Memmove = Svagc_kernel.Memmove
module Process = Svagc_kernel.Process
module Shootdown = Svagc_kernel.Shootdown
module Config = Svagc_core.Config
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

(* --- 1. threshold sensitivity --- *)

let crossover_pages cost =
  let rec find pages =
    if pages > 64 then None
    else begin
      let machine = Machine.create ~phys_mib:256 cost in
      let proc = Process.create machine in
      let aspace = Process.aspace proc in
      let src = 1 lsl 30 and dst = (1 lsl 30) + (1 lsl 29) in
      Address_space.map_range aspace ~va:src ~pages;
      Address_space.map_range aspace ~va:dst ~pages;
      let mm = Memmove.move aspace ~src ~dst ~len:(pages * Addr.page_size) in
      let opts =
        { Swapva.pmd_caching = true; flush = Shootdown.Local_pinned;
          allow_overlap = false; leaf_swap = false }
      in
      let sv = Swapva.swap proc ~opts ~src ~dst ~pages in
      if sv < mm then Some pages else find (pages + 1)
    end
  in
  find 1

let threshold_sensitivity () =
  let base = Cost_model.xeon_6130 in
  let variants =
    [
      ("baseline", base);
      ( "copy bandwidth / 2",
        { base with Cost_model.cache_copy_bw = base.Cost_model.cache_copy_bw /. 2.0;
          dram_copy_bw = base.Cost_model.dram_copy_bw /. 2.0 } );
      ( "copy bandwidth x 2",
        { base with Cost_model.cache_copy_bw = base.Cost_model.cache_copy_bw *. 2.0;
          dram_copy_bw = base.Cost_model.dram_copy_bw *. 2.0 } );
      ( "pte access x 4",
        { base with Cost_model.pt_entry_ns = base.Cost_model.pt_entry_ns *. 4.0;
          lock_pair_ns = base.Cost_model.lock_pair_ns *. 4.0 } );
      ( "syscall x 2",
        { base with Cost_model.syscall_ns = base.Cost_model.syscall_ns *. 2.0;
          swap_setup_ns = base.Cost_model.swap_setup_ns *. 2.0 } );
    ]
  in
  List.map
    (fun (label, cost) ->
      ( label,
        match crossover_pages cost with
        | Some p -> string_of_int p ^ " pages"
        | None -> "> 64 pages" ))
    variants

(* --- 2. shootdown sensitivity --- *)

let fig9_gap cost =
  let storm ~optimized =
    let machine = Machine.create ~ncores:32 ~phys_mib:512 cost in
    let proc = Process.create machine in
    let aspace = Process.aspace proc in
    Address_space.map_range aspace ~va:(1 lsl 30) ~pages:(100 * 8);
    let total = ref 0.0 in
    let opts =
      if optimized then
        { Swapva.pmd_caching = true; flush = Shootdown.Local_pinned;
          allow_overlap = false; leaf_swap = false }
      else
        { Swapva.pmd_caching = true; flush = Shootdown.Broadcast_per_call;
          allow_overlap = false; leaf_swap = false }
    in
    if optimized then
      total :=
        !total
        +. Shootdown.cycle_prologue machine
             ~asid:(Address_space.asid aspace)
             ~core:0 Shootdown.Local_pinned;
    for i = 0 to 49 do
      let off = (1 lsl 30) + (i * 8 * Addr.page_size) in
      total :=
        !total
        +. Swapva.swap proc ~opts ~src:off ~dst:(off + (4 * Addr.page_size)) ~pages:4
    done;
    !total
  in
  storm ~optimized:false /. storm ~optimized:true

let shootdown_sensitivity () =
  let base = Cost_model.xeon_6130 in
  List.map
    (fun (label, factor) ->
      let cost =
        { base with Cost_model.ipi_ns = base.Cost_model.ipi_ns *. factor;
          ipi_ack_ns = base.Cost_model.ipi_ack_ns *. factor }
      in
      (label, Printf.sprintf "%.1fx" (fig9_gap cost)))
    [ ("ipi / 4", 0.25); ("baseline", 1.0); ("ipi x 4", 4.0) ]

(* --- 3. optimization knock-outs --- *)

let knockouts =
  [
    ("full SVAGC", Config.default);
    ("no PMD caching", { Config.default with Config.pmd_caching = false });
    ( "no aggregation",
      { Config.default with Config.aggregation = false; aggregation_batch = 1 } );
    ( "no SwapVA at all (threshold = infinity)",
      (* The biggest knock-out: every move falls back to memmove.  (The
         heap is built with the same threshold, so nothing page-aligns
         either — this is exactly the paper's "-SwapVA" configuration.) *)
      { Config.default with Config.threshold_pages = 1_000_000 } );
    ( "no pinning (process-targeted shootdowns)",
      { Config.default with Config.pin_compaction = false;
        flush = Shootdown.Process_targeted } );
    ( "naive shootdowns (broadcast per call)",
      { Config.default with Config.pin_compaction = false;
        flush = Shootdown.Broadcast_per_call } );
    ( "self-invalidating TLBs (no IPIs, Awad et al.)",
      { Config.default with Config.pin_compaction = false;
        flush = Shootdown.Self_invalidate } );
  ]

let run_knockout w (label, cfg) =
  let machine = Exp_common.fresh_machine Cost_model.xeon_6130 in
  let heap_bytes = Svagc_workloads.Workload.heap_bytes w ~factor:1.2 in
  let jvm =
    Svagc_core.Jvm.create machine
      ~name:(w.Svagc_workloads.Workload.name ^ "-" ^ label)
      ~heap_bytes ~threshold_pages:cfg.Config.threshold_pages
      ~collector_of:(Svagc_core.Svagc.collector ~config:cfg)
      ()
  in
  let rng = Svagc_util.Rng.create ~seed:7 in
  let step = w.Svagc_workloads.Workload.setup jvm rng in
  let executed = ref 0 in
  while !executed < 40 || (Svagc_core.Jvm.gc_count jvm < 4 && !executed < 1000) do
    step ();
    incr executed
  done;
  let gc = Svagc_core.Jvm.gc_ns jvm in
  Gc.full_major ();
  (label, gc)

let run ?(quick = false) () =
  Report.section "Ablations (extension): sensitivity and knock-outs";
  Report.subsection "break-even threshold vs cost model (Fig. 10 axis)";
  Table.print ~headers:[ "variant"; "crossover" ]
    (List.map (fun (a, b) -> [ a; b ]) (threshold_sensitivity ()));
  Report.subsection "Fig. 9 optimized/unoptimized gap vs IPI cost (50 objects)";
  Table.print ~headers:[ "variant"; "gap" ]
    (List.map (fun (a, b) -> [ a; b ]) (shootdown_sensitivity ()));
  Report.subsection "optimization knock-outs (total GC time)";
  let workloads =
    if quick then [ Svagc_workloads.Sigverify.default ]
    else [ Svagc_workloads.Sigverify.default; Svagc_workloads.Sparse.large ]
  in
  List.iter
    (fun w ->
      let rows = List.map (run_knockout w) knockouts in
      let baseline = snd (List.hd rows) in
      Report.subsection w.Svagc_workloads.Workload.name;
      Table.print ~headers:[ "configuration"; "total GC"; "vs full SVAGC" ]
        (List.map
           (fun (label, gc) ->
             [
               label;
               Report.ns gc;
               Printf.sprintf "%+.1f%%" (100.0 *. (gc -. baseline) /. baseline);
             ])
           rows))
    workloads
