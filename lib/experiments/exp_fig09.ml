open Svagc_vmem
module Swapva = Svagc_kernel.Swapva
module Process = Svagc_kernel.Process
module Shootdown = Svagc_kernel.Shootdown
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type point = {
  cores : int;
  unoptimized_ns : float;
  optimized_ns : float;
  unoptimized_ipis : int;
  optimized_ipis : int;
}

let storm ~cores ~objects ~pages ~optimized =
  let machine = Machine.create ~ncores:cores ~phys_mib:1024 Cost_model.xeon_6130 in
  let proc = Process.create machine in
  let aspace = Process.aspace proc in
  let src = 1 lsl 30 and dst = (1 lsl 30) + (1 lsl 29) in
  Address_space.map_range aspace ~va:src ~pages:(objects * pages);
  Address_space.map_range aspace ~va:dst ~pages:(objects * pages);
  let total = ref 0.0 in
  if optimized then begin
    (* Algorithm 4: pin, one all-core shootdown, then local flushes. *)
    total := !total +. Process.pin proc ~core:0;
    total :=
      !total
      +. Shootdown.cycle_prologue machine
           ~asid:(Address_space.asid aspace)
           ~core:0 Shootdown.Local_pinned
  end;
  let opts =
    if optimized then
      { Swapva.pmd_caching = true; flush = Shootdown.Local_pinned;
        allow_overlap = false; leaf_swap = false }
    else
      { Swapva.pmd_caching = true; flush = Shootdown.Broadcast_per_call;
        allow_overlap = false; leaf_swap = false }
  in
  for i = 0 to objects - 1 do
    let off = i * pages * Addr.page_size in
    total :=
      !total +. Swapva.swap proc ~opts ~src:(src + off) ~dst:(dst + off) ~pages
  done;
  if optimized then total := !total +. Process.unpin proc;
  (!total, machine.Machine.perf.Perf.ipis_sent)

let measure ?(objects = 100) ?(pages_per_object = 16) () =
  List.map
    (fun cores ->
      let unoptimized_ns, unoptimized_ipis =
        storm ~cores ~objects ~pages:pages_per_object ~optimized:false
      in
      let optimized_ns, optimized_ipis =
        storm ~cores ~objects ~pages:pages_per_object ~optimized:true
      in
      { cores; unoptimized_ns; optimized_ns; unoptimized_ipis; optimized_ipis })
    [ 1; 2; 4; 8; 16; 32 ]

let run ?quick:_ () =
  Report.section
    "Fig. 9 - Multi-core optimizations to SwapVA (100 objects, Xeon 6130)";
  let points = measure () in
  Table.print
    ~headers:
      [ "cores"; "unoptimized"; "optimized"; "speedup"; "IPIs unopt"; "IPIs opt" ]
    (List.map
       (fun p ->
         [
           string_of_int p.cores;
           Report.ns p.unoptimized_ns;
           Report.ns p.optimized_ns;
           Report.speedup (p.unoptimized_ns /. p.optimized_ns);
           string_of_int p.unoptimized_ipis;
           string_of_int p.optimized_ipis;
         ])
       points);
  let p32 = List.nth points (List.length points - 1) in
  Report.paper_vs_measured
    [
      ( "IPI reduction (Eq. 2, gain = l)",
        "100x",
        Printf.sprintf "%.0fx"
          (float_of_int p32.unoptimized_ipis /. float_of_int p32.optimized_ipis) );
      ( "cost gap grows with cores",
        "yes",
        Printf.sprintf "%.1fx @2 cores -> %.1fx @32 cores"
          ((List.nth points 1).unoptimized_ns /. (List.nth points 1).optimized_ns)
          (p32.unoptimized_ns /. p32.optimized_ns) );
    ]
