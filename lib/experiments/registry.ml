type experiment = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> unit;
}

let all =
  [
    { id = "fig1"; title = "Full GC phase breakdown"; run = Exp_fig01.run };
    { id = "fig2"; title = "Multi-JVM scalability issue (ParallelGC)"; run = Exp_fig02.run };
    { id = "fig6"; title = "Aggregated vs separated SwapVA calls"; run = Exp_fig06.run };
    { id = "fig8"; title = "PMD caching benefits"; run = Exp_fig08.run };
    { id = "fig9"; title = "Multi-core optimizations to SwapVA"; run = Exp_fig09.run };
    { id = "fig10"; title = "SwapVA threshold vs machine configuration"; run = Exp_fig10.run };
    { id = "fig11"; title = "GC time -/+ SwapVA per benchmark"; run = Exp_fig11.run };
    { id = "fig12"; title = "Average full-GC latency vs baselines"; run = Exp_fig12.run };
    { id = "fig13"; title = "Maximum full-GC latency vs baselines"; run = Exp_fig13.run };
    { id = "fig14"; title = "SVAGC multi-JVM scalability"; run = Exp_fig14.run };
    { id = "fig15"; title = "Application throughput of SVAGC"; run = Exp_fig15.run };
    { id = "fig16"; title = "Throughput vs baselines"; run = Exp_fig16.run };
    { id = "table1"; title = "Applicability matrix"; run = Exp_table1.run };
    { id = "table2"; title = "Benchmark configurations"; run = Exp_table2.run };
    { id = "table3"; title = "Cache & DTLB miss evaluation"; run = Exp_table3.run };
    { id = "ablation"; title = "Sensitivity & knock-outs (extension)"; run = Exp_ablation.run };
    { id = "extensions"; title = "Minor/concurrent SwapVA + NVM wear (extension)"; run = Exp_extensions.run };
    { id = "resilience"; title = "GC under injected kernel faults (extension)"; run = Exp_resilience.run };
    { id = "pressure"; title = "Compaction cost vs residency under memory pressure (extension)"; run = Exp_pressure.run };
    { id = "fleet"; title = "Multi-tenant fleet: cgroups, admission & far memory (extension)"; run = Exp_fleet.run };
    { id = "par"; title = "Host parallelism: domains, sharded sweep, deterministic reduction (extension)"; run = Exp_par.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?quick () = List.iter (fun e -> e.run ?quick ()) all
