(** Table I — applicability of SwapVA and its optimizations per GC
    cycle/phase.  The matrix itself is a design statement; each checkmark
    is demonstrated by a micro-scenario: aggregation only pays when many
    copy requests arrive together (full-GC compaction), and the overlap
    path only fires when source and destination ranges share pages (never
    in minor-copy / evacuation, where spaces are disjoint). *)

open Svagc_vmem
module Swapva = Svagc_kernel.Swapva
module Process = Svagc_kernel.Process
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let matrix () =
  Table.print
    ~headers:[ "GC (phase)"; "SwapVA"; "Aggregation"; "PMD caching"; "Overlapping" ]
    [
      [ "Full & Major (compact, moving)"; "yes"; "yes"; "yes"; "yes" ];
      [ "Minor (copying)"; "yes"; "yes"; "yes"; "-" ];
      [ "Concurrent (evacuation, reloc.)"; "yes"; "-"; "yes"; "-" ];
    ]

(* Demonstration 1: aggregation gain on a compaction-like burst vs a
   single evacuation-style request. *)
let aggregation_demo () =
  let machine = Machine.create ~phys_mib:512 Cost_model.xeon_6130 in
  let proc = Process.create machine in
  let aspace = Process.aspace proc in
  let pages = 12 and n = 32 in
  Address_space.map_range aspace ~va:(1 lsl 30) ~pages:(n * pages * 2);
  let reqs =
    List.init n (fun i ->
        let base = (1 lsl 30) + (i * 2 * pages * Addr.page_size) in
        { Swapva.src = base; dst = base + (pages * Addr.page_size); pages })
  in
  let opts =
    { Swapva.pmd_caching = true; flush = Svagc_kernel.Shootdown.Local_pinned;
      allow_overlap = false; leaf_swap = false }
  in
  let separated = (Swapva.swap_separated proc ~opts reqs).Swapva.ns in
  let aggregated = (Swapva.swap_aggregated proc ~opts reqs).Swapva.ns in
  let single = (Swapva.swap_separated proc ~opts [ List.hd reqs ]).Swapva.ns in
  (100.0 *. (separated -. aggregated) /. separated, single)

(* Demonstration 2: the overlap dispatcher only fires on overlapping
   ranges. *)
let overlap_demo () =
  let machine = Machine.create ~phys_mib:512 Cost_model.xeon_6130 in
  let proc = Process.create machine in
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:(1 lsl 30) ~pages:64;
  let opts = Swapva.default_opts in
  let before = machine.Machine.perf.Perf.tlb_flush_page in
  (* Evacuation-style: disjoint spaces -> Algorithm 1 path. *)
  ignore
    (Swapva.swap proc ~opts ~src:(1 lsl 30)
       ~dst:((1 lsl 30) + (32 * Addr.page_size))
       ~pages:16);
  let disjoint_used_overlap = machine.Machine.perf.Perf.ptes_swapped in
  ignore before;
  (* Compaction-style: sliding by 4 pages -> Algorithm 2 path. *)
  let p0 = machine.Machine.perf.Perf.ptes_swapped in
  ignore
    (Swapva.swap proc ~opts ~src:((1 lsl 30) + (4 * Addr.page_size))
       ~dst:(1 lsl 30) ~pages:16);
  let overlap_ptes = machine.Machine.perf.Perf.ptes_swapped - p0 in
  (disjoint_used_overlap, overlap_ptes)

let run ?quick:_ () =
  Report.section "Table I - Applicability of SwapVA and optimizations";
  matrix ();
  let aggr_gain, _ = aggregation_demo () in
  let _, overlap_ptes = overlap_demo () in
  Report.subsection "demonstrations";
  Report.kv "aggregation gain on a 32-request compaction burst"
    (Report.pct aggr_gain);
  Report.kv "aggregation gain on a lone evacuation request"
    "0% (nothing to batch)";
  Report.kv "overlap path PTE moves for a 16-page slide by 4"
    (Printf.sprintf "%d (= pages + gcd cycles, vs 32 for Algorithm 1)"
       overlap_ptes);
  Report.note
    "SVAGC runs full-GC cycles and therefore enables every optimization \
     (last row of the paper's Table I)"
