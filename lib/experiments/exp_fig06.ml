open Svagc_vmem
module Swapva = Svagc_kernel.Swapva
module Process = Svagc_kernel.Process
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type point = {
  pages_per_request : int;
  separated_ns : float;
  aggregated_ns : float;
  improvement_pct : float;
}

(* Map two disjoint arenas and build N (src, dst) request pairs of the
   given size. *)
let build_requests proc ~requests ~pages =
  let aspace = Process.aspace proc in
  let arena = 16 * 1024 * 1024 in
  let src_base = 1 lsl 30 and dst_base = (1 lsl 30) + (1 lsl 28) in
  let span = requests * pages * Addr.page_size in
  if span > arena then invalid_arg "Exp_fig06: arena too small";
  Address_space.map_range aspace ~va:src_base ~pages:(requests * pages);
  Address_space.map_range aspace ~va:dst_base ~pages:(requests * pages);
  List.init requests (fun i ->
      {
        Swapva.src = src_base + (i * pages * Addr.page_size);
        dst = dst_base + (i * pages * Addr.page_size);
        pages;
      })

let opts =
  (* Pure single-core microbenchmark: PMD caching on, local flushing (the
     i5 run in the paper is a pinned single-threaded driver). *)
  { Swapva.pmd_caching = true; flush = Svagc_kernel.Shootdown.Local_pinned;
    allow_overlap = false; leaf_swap = false }

let measure ?(requests = 64) () =
  List.map
    (fun pages ->
      let machine = Machine.create ~phys_mib:512 Cost_model.i5_7600 in
      let proc = Process.create machine in
      let reqs = build_requests proc ~requests ~pages in
      let separated_ns = (Swapva.swap_separated proc ~opts reqs).Swapva.ns in
      (* Swap back so both measurements see identical mappings. *)
      let aggregated_ns = (Swapva.swap_aggregated proc ~opts reqs).Swapva.ns in
      {
        pages_per_request = pages;
        separated_ns;
        aggregated_ns;
        improvement_pct =
          100.0 *. (separated_ns -. aggregated_ns) /. separated_ns;
      })
    [ 1; 2; 4; 8; 16; 32; 64 ]

let run ?quick:_ () =
  Report.section "Fig. 6 - Aggregated vs separated SwapVA calls (i5-7600)";
  let points = measure () in
  Table.print
    ~headers:[ "pages/request"; "separated"; "aggregated"; "improvement" ]
    (List.map
       (fun p ->
         [
           string_of_int p.pages_per_request;
           Report.ns p.separated_ns;
           Report.ns p.aggregated_ns;
           Report.pct p.improvement_pct;
         ])
       points);
  Report.note
    "paper: aggregation benefit is largest for small requests and fades as \
     request size grows";
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  Report.paper_vs_measured
    [
      ( "benefit direction",
        "decreasing with request size",
        Printf.sprintf "%.1f%% @1p -> %.1f%% @64p" first.improvement_pct
          last.improvement_pct );
    ]
