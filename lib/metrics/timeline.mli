(** ASCII timeline rendering of a recorded trace.

    One section per process track (JVM), spans drawn as scaled bars with
    nesting shown by indentation, and instant events summarized per name
    (with the core spread for per-core IPI events).  Complements the Chrome
    JSON exporter for quick terminal inspection. *)

val render : ?width:int -> ?max_spans:int -> Svagc_trace.Tracer.t -> string
(** [width] is the bar gutter in characters (default 48); [max_spans]
    caps the span lines printed per process (default 80, oldest first;
    a truncation note reports anything elided). *)

val print : ?width:int -> ?max_spans:int -> Svagc_trace.Tracer.t -> unit
(** [render] to stdout. *)
