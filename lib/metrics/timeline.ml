module Event = Svagc_trace.Event
module Tracer = Svagc_trace.Tracer

let ns v = Format.asprintf "%a" Svagc_vmem.Clock.pp_ns v

(* Same total order as the Chrome exporter: begin time, wider span first,
   then recording order. *)
let sort_events evs =
  List.sort
    (fun (a : Event.t) (b : Event.t) ->
      match compare a.Event.ts b.Event.ts with
      | 0 -> (
        match compare (Event.dur_ns b) (Event.dur_ns a) with
        | 0 -> compare a.Event.seq b.Event.seq
        | c -> c)
      | c -> c)
    evs

let group_by_pid evs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      let cur = try Hashtbl.find tbl e.Event.pid with Not_found -> [] in
      Hashtbl.replace tbl e.Event.pid (e :: cur))
    evs;
  Hashtbl.fold (fun pid evs acc -> (pid, List.rev evs) :: acc) tbl []
  |> List.sort compare

let bar ~width ~t0 ~range (e : Event.t) =
  let clamp lo hi x = max lo (min hi x) in
  let col ts =
    if range <= 0.0 then 0
    else clamp 0 width (int_of_float (float_of_int width *. ((ts -. t0) /. range)))
  in
  let a = col e.Event.ts in
  let b = max (a + 1) (col (Event.end_ts e)) in
  let b = min b width in
  String.concat ""
    [ String.make a ' '; String.make (b - a) '='; String.make (width - b) ' ' ]

(* Depth of each span via an active-ancestors sweep (spans are recorded
   well-nested per track, so interval containment reconstructs the tree). *)
let with_depth spans =
  let stacks : (int * int, float list) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (e : Event.t) ->
      let key = (e.Event.pid, e.Event.tid) in
      let stack = try Hashtbl.find stacks key with Not_found -> [] in
      let stack = List.filter (fun end_ts -> end_ts > e.Event.ts +. 1e-9) stack in
      Hashtbl.replace stacks key (Event.end_ts e :: stack);
      (List.length stack, e))
    spans

let instant_summary buf instants =
  if instants <> [] then begin
    let by_name = Hashtbl.create 8 in
    List.iter
      (fun (e : Event.t) ->
        let count, tids =
          try Hashtbl.find by_name e.Event.name with Not_found -> (0, [])
        in
        let tids =
          if List.mem e.Event.tid tids then tids else e.Event.tid :: tids
        in
        Hashtbl.replace by_name e.Event.name (count + 1, tids))
      instants;
    let entries =
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) by_name []
      |> List.sort compare
    in
    let render_one (name, (count, tids)) =
      match List.sort compare tids with
      | [ _ ] | [] -> Printf.sprintf "%s x%d" name count
      | tids ->
        Printf.sprintf "%s x%d (tracks %d-%d)" name count (List.hd tids)
          (List.nth tids (List.length tids - 1))
    in
    Buffer.add_string buf
      ("  instants: " ^ String.concat ", " (List.map render_one entries) ^ "\n")
  end

let render ?(width = 48) ?(max_spans = 80) tracer =
  let buf = Buffer.create 4096 in
  let events = sort_events (Tracer.events tracer) in
  let procs = Tracer.process_names tracer in
  Buffer.add_string buf
    (Printf.sprintf "timeline: %d events (%d dropped, capacity %d)\n"
       (List.length events) (Tracer.dropped tracer) (Tracer.capacity tracer));
  List.iter
    (fun (pid, evs) ->
      let name =
        match List.assoc_opt pid procs with
        | Some n -> Printf.sprintf "pid %d (%s)" pid n
        | None -> Printf.sprintf "pid %d" pid
      in
      let spans = List.filter Event.is_span evs in
      let instants = List.filter (fun e -> not (Event.is_span e)) evs in
      let t0 =
        List.fold_left (fun acc (e : Event.t) -> Float.min acc e.Event.ts)
          infinity evs
      in
      let t1 =
        List.fold_left (fun acc e -> Float.max acc (Event.end_ts e)) neg_infinity
          evs
      in
      let range = t1 -. t0 in
      Buffer.add_string buf
        (Printf.sprintf "-- %s: %s .. %s --\n" name (ns t0) (ns t1));
      let deep = with_depth spans in
      let shown = ref 0 in
      List.iter
        (fun (depth, (e : Event.t)) ->
          if !shown < max_spans then begin
            incr shown;
            let label = String.make (2 * depth) ' ' ^ e.Event.name in
            Buffer.add_string buf
              (Printf.sprintf "  %-24s %10s |%s|\n"
                 (if String.length label > 24 then String.sub label 0 24 else label)
                 (ns (Event.dur_ns e))
                 (bar ~width ~t0 ~range e))
          end)
        deep;
      if List.length deep > max_spans then
        Buffer.add_string buf
          (Printf.sprintf "  ... %d more spans elided\n"
             (List.length deep - max_spans));
      instant_summary buf instants)
    (group_by_pid events);
  Buffer.contents buf

let print ?width ?max_spans tracer =
  print_string (render ?width ?max_spans tracer)
