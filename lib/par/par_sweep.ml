module Machine = Svagc_vmem.Machine
module Page_table = Svagc_vmem.Page_table
module Pte = Svagc_vmem.Pte
module Addr = Svagc_vmem.Addr
module Cost_model = Svagc_vmem.Cost_model
module Perf = Svagc_vmem.Perf

type shard_stats = {
  ss_shard : int;
  ss_leaf_lo : int;
  ss_leaf_hi : int;
  ss_leaves : int;
  ss_present : int;
  ss_swapped : int;
  ss_checksum : int64;
  ss_cost_ns : float;
}

type result = {
  shards : shard_stats array;
  leaves : int;
  present : int;
  swapped : int;
  checksum : int64;
  walk_ns : float;
  makespan_ns : float;
}

(* SplitMix64 finalizer over (vpn, pte word).  Each mapped page mixes to
   one well-scrambled 64-bit value; the window checksum is their Int64
   sum, so it is insensitive to visit order — the property that makes it
   partition-invariant (any shard count) and domain-invariant. *)
let mix ~vpn ~pte =
  let open Int64 in
  let z = add (of_int vpn) (mul (of_int pte) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Leaf-index range [leaf_lo, leaf_hi) covered by the page window. *)
let leaf_range ~vpn_lo ~pages =
  if pages = 0 then (0, 0)
  else
    let leaf_lo = vpn_lo / Addr.pages_per_pmd in
    let leaf_hi = ((vpn_lo + pages - 1) / Addr.pages_per_pmd) + 1 in
    (leaf_lo, leaf_hi)

(* Audit the leaves [gl_lo, gl_hi) of [pt], clipped to the page window
   [vpn_lo, vpn_lo + pages).  Pure read of the page table; all writes go
   to the returned record and [perf] (shard-local by construction). *)
let sweep_leaves pt ~vpn_lo ~pages ~gl_lo ~gl_hi ~shard ~(cost : Cost_model.t)
    ~(perf : Perf.t) =
  let leaves = ref 0 and present = ref 0 and swapped = ref 0 in
  let checksum = ref 0L in
  for l = gl_lo to gl_hi - 1 do
    let leaf_vpn = l * Addr.pages_per_pmd in
    match Page_table.find_leaf pt (Addr.of_page leaf_vpn) with
    | None -> ()
    | Some arr ->
      incr leaves;
      let lo = max vpn_lo leaf_vpn in
      let hi = min (vpn_lo + pages) (leaf_vpn + Addr.pages_per_pmd) in
      for vpn = lo to hi - 1 do
        let pte = arr.(vpn - leaf_vpn) in
        if Pte.is_present pte then begin
          incr present;
          checksum := Int64.add !checksum (mix ~vpn ~pte)
        end
        else if Pte.is_swapped pte then begin
          incr swapped;
          checksum := Int64.add !checksum (mix ~vpn ~pte)
        end
      done
  done;
  perf.pt_walks <- perf.pt_walks + !leaves;
  let cost_ns =
    (float_of_int !leaves *. Cost_model.walk_cost_ns cost)
    +. (float_of_int (!present + !swapped) *. cost.pt_entry_ns)
  in
  {
    ss_shard = shard;
    ss_leaf_lo = gl_lo;
    ss_leaf_hi = gl_hi;
    ss_leaves = !leaves;
    ss_present = !present;
    ss_swapped = !swapped;
    ss_checksum = !checksum;
    ss_cost_ns = cost_ns;
  }

let run ?pool machine pt ~va ~pages ~shards =
  if pages < 0 then invalid_arg "Par_sweep.run: pages < 0";
  if shards <= 0 then invalid_arg "Par_sweep.run: shards <= 0";
  let pool = match pool with Some p -> p | None -> Domain_pool.global () in
  let vpn_lo = Addr.page_number va in
  let leaf_lo, leaf_hi = leaf_range ~vpn_lo ~pages in
  let nleaves = leaf_hi - leaf_lo in
  (* One perf delta per shard, allocated up front on the caller so the
     workers only ever write into their own slot. *)
  let perfs = Array.init shards (fun _ -> Perf.create ()) in
  let stats =
    Domain_pool.map_shards pool ~shards (fun i ->
        let lo, hi = Reduce.slice ~len:nleaves ~shards i in
        sweep_leaves pt ~vpn_lo ~pages ~gl_lo:(leaf_lo + lo)
          ~gl_hi:(leaf_lo + hi) ~shard:i ~cost:machine.Machine.cost
          ~perf:perfs.(i))
  in
  Reduce.merge_perfs ~into:machine.Machine.perf perfs;
  let leaves =
    Reduce.sum_ints (Array.map (fun s -> s.ss_leaves) stats)
  and present =
    Reduce.sum_ints (Array.map (fun s -> s.ss_present) stats)
  and swapped =
    Reduce.sum_ints (Array.map (fun s -> s.ss_swapped) stats)
  and checksum =
    Reduce.fold_shards stats ~init:0L ~f:(fun acc s ->
        Int64.add acc s.ss_checksum)
  in
  let costs = Array.map (fun s -> s.ss_cost_ns) stats in
  let walk_ns = Reduce.sum_floats costs in
  let makespan_ns =
    Work_steal.makespan ~threads:shards
      ~steal_ns:machine.Machine.cost.steal_ns
      ~barrier_ns:machine.Machine.cost.barrier_ns costs
  in
  { shards = stats; leaves; present; swapped; checksum; walk_ns; makespan_ns }

let checksum_reference pt ~va ~pages =
  let vpn_lo = Addr.page_number va in
  let acc = ref 0L in
  for vpn = vpn_lo to vpn_lo + pages - 1 do
    let pte = Page_table.get_pte pt (Addr.of_page vpn) in
    if Pte.is_mapped pte then acc := Int64.add !acc (mix ~vpn ~pte)
  done;
  !acc
