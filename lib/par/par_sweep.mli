(** The sharded page-table sweep: the repo's reference workload for real
    host parallelism with deterministic reduction.

    A sweep audits a VA window [\[va, va + pages·page_size)]: it counts
    present and swapped PTEs, folds an order-insensitive checksum over
    every mapped [(vpn, pte)] pair, and charges a simulated walk cost
    (one directory descent per materialized leaf plus one PTE-word
    access per mapped entry, bumping [pt_walks] once per leaf).

    Sharding is by PMD leaf index: {!Reduce.slice} partitions the
    window's leaf range into [shards] contiguous, {e disjoint} subtree
    ranges — the shard-per-core structure of DESIGN.md §13 — so no two
    shards (and therefore no two domains) ever touch the same leaf.
    [Svagc_check.Check.domain_safety] verifies that law on the result;
    [Svagc_check.Differential.par_identity] verifies that a 1-domain and
    an N-domain execution of the same sweep are bit-identical in every
    field, counters and cost floats included.

    Each shard accumulates into shard-local state (its own
    [Svagc_vmem.Perf] delta, its own counters); the merge into the
    machine's counters and the result record happens on the caller in
    canonical shard order via {!Reduce}. *)

type shard_stats = {
  ss_shard : int;  (** canonical shard index *)
  ss_leaf_lo : int;  (** first global leaf index (vpn / 512) owned *)
  ss_leaf_hi : int;  (** one past the last owned leaf index *)
  ss_leaves : int;  (** materialized leaves actually walked *)
  ss_present : int;
  ss_swapped : int;
  ss_checksum : int64;  (** additive mix over the shard's mapped pages *)
  ss_cost_ns : float;  (** simulated walk cost of this shard *)
}

type result = {
  shards : shard_stats array;  (** canonical shard order *)
  leaves : int;
  present : int;
  swapped : int;
  checksum : int64;
      (** Int64 sum of the shard checksums — partition- and
          domain-invariant (addition commutes). *)
  walk_ns : float;
      (** Shard costs summed in canonical order: the sequential
          (one-stream) simulated cost of the sweep. *)
  makespan_ns : float;
      (** [Work_steal.makespan] over the shard costs with
          [threads = shards]: the simulated parallel wall-clock. *)
}

val run :
  ?pool:Domain_pool.t ->
  Svagc_vmem.Machine.t ->
  Svagc_vmem.Page_table.t ->
  va:int ->
  pages:int ->
  shards:int ->
  result
(** Sweep [pages] pages starting at [va] in [shards] shards executed on
    [pool] (default {!Domain_pool.global}).  Bumps the machine's
    [pt_walks] by the number of leaves walked (merged in shard order).
    The page table must not be mutated concurrently.
    @raise Invalid_argument when [shards <= 0] or [pages < 0]. *)

val checksum_reference : Svagc_vmem.Page_table.t -> va:int -> pages:int -> int64
(** The unsharded, strictly sequential checksum of the same window —
    the oracle {!run}'s merged checksum must equal for any shard
    partition and any domain count. *)
