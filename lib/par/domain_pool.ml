module Domain_slot = Svagc_util.Domain_slot

(* One fan-out: a shard counter claimed with an atomic fetch-and-add.
   The [b_done] counter doubles as the synchronisation edge — workers
   bump it (SC atomic) after their plain writes, the caller reads it
   before touching any shard result, so every shard's effects are
   visible to the merge without further locking. *)
type batch = {
  b_task : int -> unit;
  b_total : int;
  b_next : int Atomic.t;
  b_done : int Atomic.t;
  b_errors : exn option array;
}

type t = {
  n_domains : int;
  mu : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable batch : batch option;
  mutable epoch : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let domains t = t.n_domains

(* Claim shards until the batch is drained.  The last finisher
   broadcasts [done_cv] under the pool mutex so the caller's wait cannot
   miss the wakeup. *)
let drain t b =
  let rec claim () =
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i < b.b_total then begin
      (try b.b_task i with e -> b.b_errors.(i) <- Some e);
      let finished = 1 + Atomic.fetch_and_add b.b_done 1 in
      if finished = b.b_total then begin
        Mutex.lock t.mu;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.mu
      end;
      claim ()
    end
  in
  claim ()

let worker_loop t slot =
  Domain_slot.set_slot slot;
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mu;
    while (not t.stopping) && t.epoch = !seen do
      Condition.wait t.work_cv t.mu
    done;
    if t.stopping then Mutex.unlock t.mu
    else begin
      seen := t.epoch;
      let b = t.batch in
      Mutex.unlock t.mu;
      (* The batch may already be fully drained (and cleared) by the
         time a slow worker wakes — nothing to do then. *)
      (match b with Some b -> drain t b | None -> ());
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 || domains > Domain_slot.max_slots then
    invalid_arg "Domain_pool.create: domains out of range";
  let t =
    {
      n_domains = domains;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      epoch = 0;
      stopping = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun w ->
        Domain.spawn (fun () -> worker_loop t (w + 1)));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let reraise_first b =
  let rec scan i =
    if i < b.b_total then
      match b.b_errors.(i) with Some e -> raise e | None -> scan (i + 1)
  in
  scan 0

let run_inline ~shards task =
  (* Inline execution still reports the canonical (lowest-shard)
     exception after running every shard, matching the pooled path. *)
  let errors = ref [] in
  for i = 0 to shards - 1 do
    try task i with e -> errors := (i, e) :: !errors
  done;
  match List.rev !errors with (_, e) :: _ -> raise e | [] -> ()

(* Publish a batch, drain it alongside the workers, wait for stragglers.
   Called with [t.mu] held; returns with it released. *)
let run_batch t b =
  t.batch <- Some b;
  t.epoch <- t.epoch + 1;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  (* The caller is execution stream 0: it claims shards like any
     worker, then blocks only for the stragglers. *)
  drain t b;
  Mutex.lock t.mu;
  while Atomic.get b.b_done < b.b_total do
    Condition.wait t.done_cv t.mu
  done;
  t.batch <- None;
  Mutex.unlock t.mu;
  reraise_first b

let run t ~shards task =
  if shards < 0 then invalid_arg "Domain_pool.run: negative shards";
  if shards = 0 then ()
  else if t.n_domains = 1 || shards = 1 || Domain_slot.my_slot () <> 0 then
    run_inline ~shards task
  else begin
    let b =
      {
        b_task = task;
        b_total = shards;
        b_next = Atomic.make 0;
        b_done = Atomic.make 0;
        b_errors = Array.make shards None;
      }
    in
    Mutex.lock t.mu;
    if t.stopping then begin
      Mutex.unlock t.mu;
      invalid_arg "Domain_pool.run: pool is shut down"
    end
    else if t.batch <> None then begin
      (* Re-entrant fan-out: a shard running on the caller domain issued
         another [run] while its own batch is still in flight.  Degrade
         to inline, exactly as a worker-domain caller does. *)
      Mutex.unlock t.mu;
      run_inline ~shards task
    end
    else run_batch t b
  end

let map_shards t ~shards f =
  if shards = 0 then [||]
  else begin
    let results = Array.make shards None in
    run t ~shards (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let default_domains () =
  match Sys.getenv_opt "DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> max 1 (min n Domain_slot.max_slots)
    | None -> 1)
  | None -> max 1 (min 4 (Domain.recommended_domain_count ()))

let global_pool : t option ref = ref None

let global () =
  match !global_pool with
  | Some p -> p
  | None ->
    let p = create ~domains:(default_domains ()) in
    global_pool := Some p;
    at_exit (fun () -> shutdown p);
    p

let with_pool ~domains f =
  let p = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

let with_global ~domains f =
  let saved = !global_pool in
  let p = create ~domains in
  global_pool := Some p;
  Fun.protect
    ~finally:(fun () ->
      global_pool := saved;
      shutdown p)
    f
