type stats = {
  threads : int;
  tasks : int;
  steals : int;
  total_work_ns : float;
  makespan_ns : float;
}

type 'a worker = {
  deque : 'a Deque.t;
  mutable clock : float;
  mutable live : bool;
}

let run ~threads ~steal_ns ~barrier_ns ~cost ~execute items =
  if threads <= 0 then invalid_arg "Work_steal.run: threads must be positive";
  let n = Array.length items in
  let workers =
    Array.init threads (fun _ ->
        { deque = Deque.create (); clock = 0.0; live = true })
  in
  (* Round-robin seeding keeps the initial split balanced without assuming
     anything about task order. *)
  Array.iteri (fun i item -> Deque.push workers.(i mod threads).deque item) items;
  let steals = ref 0 in
  let total = ref 0.0 in
  let remaining = ref n in
  (* Lowest-clock live worker acts next: an event-driven replay. *)
  let next_worker () =
    let best = ref None in
    Array.iteri
      (fun i w ->
        if w.live then
          match !best with
          | None -> best := Some i
          | Some j -> if w.clock < workers.(j).clock then best := Some i)
      workers;
    !best
  in
  let richest_victim () =
    let best = ref None in
    Array.iteri
      (fun i w ->
        let len = Deque.length w.deque in
        if len > 0 then
          match !best with
          | None -> best := Some i
          | Some j ->
            if len > Deque.length workers.(j).deque then best := Some i)
      workers;
    !best
  in
  let run_task w item =
    let c = cost item in
    execute item;
    w.clock <- w.clock +. c;
    total := !total +. c;
    decr remaining
  in
  let rec loop () =
    if !remaining > 0 then begin
      match next_worker () with
      | None -> ()
      | Some i ->
        let w = workers.(i) in
        (match Deque.pop_back w.deque with
        | Some item ->
          run_task w item;
          loop ()
        | None -> (
          match richest_victim () with
          | None ->
            (* Nothing anywhere: this worker is done; others may still be
               executing their final tasks. *)
            w.live <- false;
            loop ()
          | Some v -> (
            (* Steal from the head (FIFO end) of the victim's deque. *)
            match Deque.steal_front workers.(v).deque with
            | None -> assert false (* richest_victim only returns non-empty *)
            | Some stolen ->
              incr steals;
              w.clock <- w.clock +. steal_ns;
              run_task w stolen;
              loop ())))
    end
  in
  loop ();
  let makespan =
    Array.fold_left (fun acc w -> Float.max acc w.clock) 0.0 workers
  in
  {
    threads;
    tasks = n;
    steals = !steals;
    total_work_ns = !total;
    makespan_ns = (if n = 0 then 0.0 else makespan +. barrier_ns);
  }

let makespan ~threads ~steal_ns ~barrier_ns costs =
  let st =
    run ~threads ~steal_ns ~barrier_ns ~cost:(fun c -> c) ~execute:ignore costs
  in
  st.makespan_ns
