(** A real host-parallel executor over OCaml 5 domains.

    This is the host side of the repo's parallelism story.  The split of
    responsibilities with {!Work_steal} is deliberate:

    - {!Work_steal} stays the {e simulated-time} model: phase makespans
      (the numbers the experiments publish) are replays of a
      work-stealing schedule over per-task simulated costs, exactly as
      before.
    - [Domain_pool] is the {e host-time} executor: the side effects of a
      data-parallel phase (flag sweeps, pointer rewrites, page-table
      walks) actually run on [domains] hardware threads.

    Determinism contract ("sharding is semantic, domains are
    mechanical"): work is always expressed as a fixed number of
    {e shards} — deterministic, contiguous partitions produced by
    {!Reduce.slice} — and every shard writes only shard-local state (its
    own slice of a results array, its own scratch, its own
    [Svagc_vmem.Perf] delta).  Shard results are merged by the caller in
    canonical shard order with the {!Reduce} combinators.  The shard
    count and partition never depend on [domains], so a 1-domain run and
    an N-domain run execute byte-identical per-shard computations and
    merge them in the identical order: every observable output — clocks,
    counters, layouts, traces — is bit-identical.
    [Svagc_check.Differential.par_identity] enforces this end to end.

    Scheduling of shards onto domains is dynamic (an atomic claim
    counter), which affects only {e which} domain runs a shard, never
    the shard's result or the merge order.

    Workers carry {!Svagc_util.Domain_slot} slots [1 .. domains-1], so
    per-domain machine state ([Machine.hot_scratch]) is keyed without
    locking.  The pool is driven from the main domain (slot 0) only; a
    [run] issued from inside a worker (nesting) degrades to inline
    sequential execution, which is always safe. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains - 1] worker domains ([domains = 1] spawns
    none and {!run} executes inline).
    @raise Invalid_argument unless
      [1 <= domains <= Svagc_util.Domain_slot.max_slots]. *)

val domains : t -> int
(** Total execution streams, the caller's domain included. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent; {!run} afterwards raises. *)

val run : t -> shards:int -> (int -> unit) -> unit
(** [run t ~shards task] executes [task 0 .. task (shards-1)], each
    exactly once, distributed over the pool's domains; returns when all
    shards completed.  Tasks must touch only shard-local state (see the
    module header).  If any task raised, the exception of the
    lowest-numbered failing shard is re-raised on the caller (canonical
    choice — independent of domain count); other shards still ran.
    With [domains t = 1], [shards <= 1], when called from a worker
    domain, or re-entrantly (from inside a shard of a batch already in
    flight), execution is inline and in shard order.
    @raise Invalid_argument when [shards < 0] or the pool is shut
    down. *)

val map_shards : t -> shards:int -> (int -> 'a) -> 'a array
(** [map_shards t ~shards f] is [[| f 0; ...; f (shards-1) |]] computed
    via {!run}: results land in canonical shard order regardless of
    which domain produced them. *)

val default_domains : unit -> int
(** The [DOMAINS] environment variable when set (clamped to
    [1 .. Domain_slot.max_slots]); otherwise
    [min 4 (Domain.recommended_domain_count ())] — 4 matching the
    paper's [GCThreadsCount] tuning, fewer when the host has fewer
    cores. *)

val global : unit -> t
(** The process-wide pool, created on first use with
    {!default_domains} and joined at process exit.  GC phases fan out
    through this pool by default. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** Scoped pool for tests and benchmarks: create, run [f], always
    shut down. *)

val with_global : domains:int -> (unit -> 'a) -> 'a
(** Run [f] with the process-wide pool temporarily replaced by a fresh
    [domains]-wide one (shut down afterwards; the previous global, if
    any, is restored untouched).  This is the oracle's lever:
    [Svagc_check.Differential.par_identity] replays the same workload
    under [with_global ~domains:1] and [~domains:4] and asserts the
    outputs are bit-identical. *)
