(** Owner/thief work deque for the work-stealing scheduler.

    The owner pushes and pops at the tail; a thief steals from the head in
    O(1) (a head index advances instead of shifting the remaining
    elements).  Abandoned head slots are reclaimed when the deque drains.
    Not thread-safe — the scheduler is a sequential event-driven replay. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Owner: append at the tail. *)

val pop_back : 'a t -> 'a option
(** Owner: take the most recently pushed remaining element (LIFO). *)

val steal_front : 'a t -> 'a option
(** Thief: take the oldest remaining element (FIFO end), O(1). *)
