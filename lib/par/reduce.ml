let slice ~len ~shards i =
  if shards <= 0 then invalid_arg "Reduce.slice: shards must be positive";
  if len < 0 then invalid_arg "Reduce.slice: negative length";
  if i < 0 || i >= shards then invalid_arg "Reduce.slice: shard out of range";
  let base = len / shards and rem = len mod shards in
  let lo = (i * base) + min i rem in
  let hi = lo + base + (if i < rem then 1 else 0) in
  (lo, hi)

let fold_shards parts ~init ~f = Array.fold_left f init parts

let concat parts =
  match Array.length parts with
  | 0 -> [||]
  | _ ->
    let total = Array.fold_left (fun acc p -> acc + Array.length p) 0 parts in
    if total = 0 then [||]
    else begin
      let first =
        (* Seed element for Array.make: the first non-empty segment. *)
        let rec find i =
          if Array.length parts.(i) > 0 then parts.(i).(0) else find (i + 1)
        in
        find 0
      in
      let out = Array.make total first in
      let pos = ref 0 in
      Array.iter
        (fun p ->
          Array.blit p 0 out !pos (Array.length p);
          pos := !pos + Array.length p)
        parts;
      out
    end

let sum_ints parts = fold_shards parts ~init:0 ~f:( + )

let sum_floats parts = fold_shards parts ~init:0.0 ~f:( +. )

let max_floats parts = fold_shards parts ~init:0.0 ~f:Float.max

let merge_perfs ~into parts =
  Array.iter (fun delta -> Svagc_vmem.Perf.add ~into delta) parts
