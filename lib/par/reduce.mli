(** Deterministic reduction combinators for sharded computations.

    Everything the pool fans out comes back through here: per-shard
    partial results are merged in {e canonical shard order} (index 0
    upward), never in completion order.  Because each shard's value is
    computed by a pure deterministic function of the shard's slice, and
    the merge order is fixed, the reduced value is bit-identical whether
    the shards ran on one domain or sixteen — including float results,
    whose addition is not associative and therefore {e must not} be
    re-grouped by the scheduler.

    Two invariance levels, used precisely by the tests:

    - {e domain-invariance}: same shard count, any domain count — every
      combinator here is bit-exact, floats included.
    - {e partition-invariance}: different shard counts — only holds for
      merges that are associative over the underlying maths (integer
      sums like {!sum_ints} and {!merge_perfs}, order-insensitive mixes
      like an additive checksum).  Float sums regroup under a different
      partition and may round differently; callers that publish float
      totals must fix the shard count as part of the experiment's
      semantics (see DESIGN.md §13). *)

val slice : len:int -> shards:int -> int -> int * int
(** [slice ~len ~shards i] is the [(lo, hi)] half-open range of shard
    [i] in the canonical contiguous partition of [0 .. len-1]: sizes
    differ by at most one, earlier shards get the remainder, empty
    shards are allowed ([lo = hi]).  This is THE partition function —
    both the sequential and the parallel path of a sharded computation
    must derive their slices from it.
    @raise Invalid_argument when [shards <= 0], [len < 0] or [i] is out
    of range. *)

val fold_shards : 'a array -> init:'acc -> f:('acc -> 'a -> 'acc) -> 'acc
(** Left fold over per-shard results in canonical order — the one
    reduction primitive everything else is written in terms of. *)

val concat : 'a array array -> 'a array
(** Concatenate per-shard segments in shard order.  When shard [i]
    produced the slice [lo_i .. hi_i) of a conceptual array, the result
    is that array, element for element. *)

val sum_ints : int array -> int

val sum_floats : float array -> float
(** Left-to-right float sum.  Domain-invariant at a fixed shard count;
    NOT partition-invariant (see the module header). *)

val max_floats : float array -> float
(** Maximum (0.0 for the empty array) — partition- and
    domain-invariant; the merge for per-shard makespans. *)

val merge_perfs :
  into:Svagc_vmem.Perf.t -> Svagc_vmem.Perf.t array -> unit
(** Add per-shard perf-counter deltas into [into], in shard order.  All
    counters are integer sums, so this merge is partition- and
    domain-invariant. *)
