(* An owner/thief work deque: the owner pushes and pops at the tail, a
   thief takes from the head.  A head index into the backing vector makes
   the steal O(1) — the stolen slot is simply abandoned — where shifting
   every element down would be O(n) per steal.  Abandoned slots release
   their element immediately and are reclaimed wholesale whenever the
   deque empties, so a deque never retains more slots than the high-water
   mark of one seeding and never retains a stolen element. *)

type 'a t = {
  vec : 'a Svagc_util.Vec.t;
  mutable head : int;
}

let create () = { vec = Svagc_util.Vec.create (); head = 0 }

let length t = Svagc_util.Vec.length t.vec - t.head

let is_empty t = length t = 0

let reset_if_drained t =
  if t.head = Svagc_util.Vec.length t.vec then begin
    Svagc_util.Vec.clear t.vec;
    t.head <- 0
  end

let push t x = Svagc_util.Vec.push t.vec x

let pop_back t =
  if is_empty t then None
  else begin
    let x = Svagc_util.Vec.pop t.vec in
    reset_if_drained t;
    x
  end

let steal_front t =
  if is_empty t then None
  else begin
    let x = Svagc_util.Vec.get t.vec t.head in
    (* The abandoned slot stays inside the vector until the deque drains:
       release the element now so the victim does not retain every stolen
       task until [reset_if_drained]. *)
    Svagc_util.Vec.release t.vec t.head;
    t.head <- t.head + 1;
    reset_if_drained t;
    Some x
  end
