(** Deterministic simulated work-stealing executor — the {e simulated-time}
    half of the repo's parallelism story ({!Domain_pool} is the
    {e host-time} half; see DESIGN.md §13).

    All parallel GC phases (mark, forward, adjust, compact — as in the
    paper's "parallelized phases, same as ParallelGC") are expressed as a
    bag of tasks with known simulated costs.  The executor replays a
    work-stealing schedule: [threads] simulated workers draw from their own
    deques and steal from the most loaded victim when empty.  Task side
    effects run exactly once, in schedule order, on the calling domain, so
    the simulation stays deterministic while the *makespan* — the number
    the experiments publish — reflects parallel execution.  Whether the
    side effects of a phase {e also} run on real domains is an orthogonal
    choice made per phase through {!Domain_pool}.

    Guarantees checked by the property tests:
    makespan >= max(total_work / threads, max_task_cost) and
    makespan <= total_work + steal overhead. *)

type stats = {
  threads : int;
  tasks : int;
  steals : int;
  total_work_ns : float;  (** sum of task costs *)
  makespan_ns : float;  (** phase wall-clock, barrier included *)
}

val run :
  threads:int ->
  steal_ns:float ->
  barrier_ns:float ->
  cost:('a -> float) ->
  execute:('a -> unit) ->
  'a array ->
  stats
(** Round-robin initial distribution, LIFO local pops, steal-from-richest.
    [execute] may mutate shared state; it is called once per task.
    @raise Invalid_argument when [threads <= 0]. *)

val makespan :
  threads:int -> steal_ns:float -> barrier_ns:float -> float array -> float
(** Cost-only convenience wrapper. *)
