let suite =
  [
    Bisort.workload;
    Parallel_sort.workload;
    Sparse.quarter;
    Sparse.half;
    Sparse.large;
    Fft.sixteenth;
    Fft.eighth;
    Fft.large;
    Sor.large_x10;
    Lu.large;
    Crypto_aes.workload;
    Sigverify.default;
    Compress.workload;
    Pagerank.workload;
  ]

let all =
  suite @ [ Sor.large; Sigverify.ten_mib; Sigverify.hundred_mib; Lru_cache.workload ]

(* Convenience spellings accepted by the CLI in addition to the Table II
   names ("fft.small" is the 1/16-scale FFT input, etc.). *)
let aliases =
  [
    ("fft.small", "FFT.large/16");
    ("fft.medium", "FFT.large/8");
    ("fft.large", "FFT.large");
    ("sparse.small", "Sparse.large/4");
    ("sparse.medium", "Sparse.large/2");
    ("sparse.large", "Sparse.large");
    ("lru", "LRUCache");
  ]

let find name =
  let canonical =
    match List.assoc_opt (String.lowercase_ascii name) aliases with
    | Some c -> c
    | None -> name
  in
  match List.find_opt (fun w -> w.Workload.name = canonical) all with
  | Some w -> w
  | None -> (
    (* Case-insensitive fallback so "bisort" or "pr" also resolve. *)
    let folded = String.lowercase_ascii name in
    match
      List.find_opt (fun w -> String.lowercase_ascii w.Workload.name = folded) all
    with
    | Some w -> w
    | None -> raise Not_found)

let table_ii_rows () =
  List.map
    (fun w ->
      [
        w.Workload.name;
        w.Workload.suite;
        string_of_int w.Workload.paper_threads;
        w.Workload.paper_heap_gib;
        Printf.sprintf "%.1f MiB"
          (float_of_int w.Workload.min_heap_bytes /. 1024.0 /. 1024.0);
      ])
    all
