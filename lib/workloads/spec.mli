(** Table II registry: every benchmark with its paper configuration and
    our scaled simulation equivalent. *)

val all : Workload.t list
(** Everything, LRUCache included. *)

val suite : Workload.t list
(** The 14 benchmarks of Fig. 11 / Table III, in the paper's Table III
    order: Bisort, ParSort, Sparse.large/4, /2, large, FFT.large/16, /8,
    large, SOR.large x10, LU.large, CryptoAES, Sigverify, Compress, PR. *)

val find : string -> Workload.t
(** Lookup by Table II name, case-insensitively, or by a CLI alias
    ("fft.small" = FFT.large/16, "lru" = LRUCache, ...).
    @raise Not_found. *)

val table_ii_rows : unit -> string list list
(** name / suite / paper threads / paper heap / simulated heap rows. *)
