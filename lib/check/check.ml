open Svagc_vmem
module Heap = Svagc_heap.Heap
module Process = Svagc_kernel.Process
module Gc_stats = Svagc_gc.Gc_stats
module Work_steal = Svagc_par.Work_steal
module Tracer = Svagc_trace.Tracer
module Event = Svagc_trace.Event

type finding = {
  invariant : string;
  detail : string;
}

let finding invariant fmt =
  Format.kasprintf (fun detail -> { invariant; detail }) fmt

let pp_finding ppf f = Format.fprintf ppf "[%s] %s" f.invariant f.detail

type report = {
  label : string;
  oracles_run : int;
  items_checked : int;
  machines_observed : int;
  shootdowns_observed : int;
  findings : finding list;
}

let pp_report ppf r =
  Format.fprintf ppf
    "check %s: %d oracle passes over %d items (%d machines, %d shootdowns): %s"
    r.label r.oracles_run r.items_checked r.machines_observed
    r.shootdowns_observed
    (match List.length r.findings with
    | 0 -> "all invariants hold"
    | n -> Printf.sprintf "%d FINDINGS" n);
  List.iter (fun f -> Format.fprintf ppf "@.  %a" pp_finding f) r.findings

(* Findings accumulate via a [law] helper so every oracle body reads as a
   list of named invariants; [items] counts how many were evaluated. *)
type acc = {
  mutable items : int;
  mutable rev : finding list;
}

let acc () = { items = 0; rev = [] }

let law a invariant ok fmt =
  a.items <- a.items + 1;
  Format.kasprintf
    (fun detail -> if not ok then a.rev <- { invariant; detail } :: a.rev)
    fmt

let result a = (a.items, List.rev a.rev)

(* --- TLB coherence --- *)

let tlb_coherence machine ~tables =
  let a = acc () in
  Array.iter
    (fun core ->
      Tlb.iter_valid core.Machine.tlb (fun ~asid ~vpn ~frame ->
          match List.assoc_opt asid tables with
          | None -> ()
          | Some pt -> (
            a.items <- a.items + 1;
            match Page_table.translate pt (vpn * Addr.page_size) with
            | Some (live, _) when live = frame -> ()
            | Some (live, _) ->
              a.rev <-
                finding "tlb-coherence"
                  "core %d caches stale frame %d for asid %d vpn %d (page \
                   table maps frame %d)"
                  core.Machine.core_id frame asid vpn live
                :: a.rev
            | None ->
              a.rev <-
                finding "tlb-coherence"
                  "core %d caches frame %d for asid %d vpn %d, which is no \
                   longer mapped"
                  core.Machine.core_id frame asid vpn
                :: a.rev)))
    machine.Machine.cores;
  result a

let shootdown_flushed machine ~asid =
  let a = acc () in
  Array.iter
    (fun core ->
      Tlb.iter_valid core.Machine.tlb (fun ~asid:entry_asid ~vpn ~frame ->
          a.items <- a.items + 1;
          if entry_asid = asid then
            a.rev <-
              finding "shootdown-flush"
                "core %d still caches asid %d vpn %d (frame %d) after a \
                 completed shootdown for that asid"
                core.Machine.core_id asid vpn frame
              :: a.rev))
    machine.Machine.cores;
  result a

(* --- counter conservation laws --- *)

let counter_laws machine =
  let a = acc () in
  let p = machine.Machine.perf in
  let ncores = machine.Machine.ncores in
  List.iter
    (fun (name, v) ->
      law a "counter-law" (v >= 0) "%s = %d must be non-negative" name v)
    (Perf.to_assoc p);
  (* Eq. 2 bookkeeping: every IPI belongs to exactly one broadcast of
     [ncores - 1] sends, plus one resend per fault-injected loss.  Holds
     because [Machine.ipi_broadcast_cost] is the only send path. *)
  law a "counter-law"
    (p.Perf.ipis_sent
    = (p.Perf.shootdown_broadcasts * (ncores - 1)) + p.Perf.ipis_lost)
    "ipis_sent = %d but shootdown_broadcasts * (ncores-1) + ipis_lost = %d * %d + %d = %d"
    p.Perf.ipis_sent p.Perf.shootdown_broadcasts (ncores - 1) p.Perf.ipis_lost
    ((p.Perf.shootdown_broadcasts * (ncores - 1)) + p.Perf.ipis_lost);
  law a "counter-law"
    (p.Perf.ipis_lost <= p.Perf.ipis_sent)
    "ipis_lost = %d exceeds ipis_sent = %d" p.Perf.ipis_lost p.Perf.ipis_sent;
  law a "counter-law"
    (p.Perf.swapva_calls <= p.Perf.syscalls)
    "swapva_calls = %d exceeds syscalls = %d" p.Perf.swapva_calls
    p.Perf.syscalls;
  law a "counter-law"
    (p.Perf.bytes_remapped mod Addr.page_size = 0)
    "bytes_remapped = %d is not page-sized" p.Perf.bytes_remapped;
  (* Each machine-wide flush walks every core's TLB, so it contributes
     [ncores] local-flush events. *)
  law a "counter-law"
    (p.Perf.tlb_flush_local >= ncores * p.Perf.tlb_flush_all)
    "tlb_flush_local = %d < ncores * tlb_flush_all = %d * %d"
    p.Perf.tlb_flush_local ncores p.Perf.tlb_flush_all;
  (* A PMD leaf swap exchanges one PTE-pointer pair. *)
  law a "counter-law"
    (p.Perf.ptes_swapped >= 2 * p.Perf.pmd_leaf_swaps)
    "ptes_swapped = %d < 2 * pmd_leaf_swaps = %d" p.Perf.ptes_swapped
    (2 * p.Perf.pmd_leaf_swaps);
  (* Reclaim accounting: a page can only come back in after going out, and
     every swap-in rode a major fault (faults are counted on entry, so a
     fault that then failed with EIO still counts). *)
  law a "counter-law"
    (p.Perf.pages_swapped_in <= p.Perf.pages_swapped_out)
    "pages_swapped_in = %d exceeds pages_swapped_out = %d"
    p.Perf.pages_swapped_in p.Perf.pages_swapped_out;
  law a "counter-law"
    (p.Perf.major_faults >= p.Perf.pages_swapped_in)
    "major_faults = %d < pages_swapped_in = %d" p.Perf.major_faults
    p.Perf.pages_swapped_in;
  (* Tiered-device accounting: a promotion is a fault served from the far
     tier, so it rides a swap-in; a demotion moves a slot some swap-out
     created, and a slot demotes at most once per lifetime (promotion
     frees it), so demotions never outnumber swap-outs. *)
  law a "counter-law"
    (p.Perf.tier_promotions <= p.Perf.pages_swapped_in)
    "tier_promotions = %d exceeds pages_swapped_in = %d"
    p.Perf.tier_promotions p.Perf.pages_swapped_in;
  law a "counter-law"
    (p.Perf.tier_demotions <= p.Perf.pages_swapped_out)
    "tier_demotions = %d exceeds pages_swapped_out = %d"
    p.Perf.tier_demotions p.Perf.pages_swapped_out;
  (* Event-calendar accounting: an event is dispatched or cancelled at
     most once, and only after being scheduled — lazy cancellation must
     never double-count a seq. *)
  law a "counter-law"
    (p.Perf.sched_dispatched + p.Perf.sched_cancelled
    <= p.Perf.sched_scheduled)
    "sched_dispatched + sched_cancelled = %d + %d exceeds sched_scheduled = \
     %d"
    p.Perf.sched_dispatched p.Perf.sched_cancelled p.Perf.sched_scheduled;
  result a

(* --- page-table presence bitsets --- *)

(* The flat SwapVA engine trusts each leaf's presence bitset instead of
   reading PTEs; this recomputes every bitset from the PTE words.  Any
   disagreement means some exchange path violated its
   mappedness-preservation contract. *)
let bitset_laws ~tables =
  let a = acc () in
  List.iter
    (fun (asid, pt) ->
      let bad = Page_table.bitset_violations pt in
      law a "pte-bitset" (bad = 0)
        "asid %d: %d leaves' presence bitsets disagree with their PTE words"
        asid bad)
    tables;
  result a

(* --- reclaim conservation laws --- *)

(* Run only while a reclaim plane is attached.  [tables] must cover every
   address space of the machine (shadow mode registers them at creation),
   because the slot-leak and frame-conservation laws are global sums. *)
let reclaim_laws machine ~tables =
  let a = acc () in
  match machine.Machine.reclaim with
  | None -> result a
  | Some r ->
    let slot_owner = Hashtbl.create 64 in
    let swapped_total = ref 0 in
    let present_total = ref 0 in
    List.iter
      (fun (asid, pt) ->
        Page_table.iter_mapped pt ~f:(fun ~vpn:_ ~frame:_ -> incr present_total);
        Page_table.iter_swapped pt ~f:(fun ~vpn ~slot ->
            incr swapped_total;
            law a "reclaim-slot"
              (r.Machine.ri_slot_allocated ~slot)
              "asid %d vpn %d references swap slot %d, which is not allocated"
              asid vpn slot;
            match Hashtbl.find_opt slot_owner slot with
            | Some (asid0, vpn0) ->
              law a "reclaim-slot" false
                "swap slot %d referenced by both asid %d vpn %d and asid %d \
                 vpn %d"
                slot asid0 vpn0 asid vpn
            | None ->
              a.items <- a.items + 1;
              Hashtbl.add slot_owner slot (asid, vpn)))
      tables;
    (* Slot leak: the device holds exactly one slot per swapped PTE. *)
    law a "reclaim-leak"
      (r.Machine.ri_slots_in_use () = !swapped_total)
      "swap device holds %d slots but the page tables reference %d"
      (r.Machine.ri_slots_in_use ())
      !swapped_total;
    (* Conservation: every resident frame is owned by exactly one present
       PTE, so resident + swapped accounts for every mapped page. *)
    law a "reclaim-conservation"
      (Phys_mem.frames_in_use machine.Machine.phys = !present_total)
      "machine has %d resident frames but the page tables hold %d present \
       PTEs"
      (Phys_mem.frames_in_use machine.Machine.phys)
      !present_total;
    law a "reclaim-watermark"
      (Phys_mem.frames_in_use machine.Machine.phys
      <= Phys_mem.capacity_frames machine.Machine.phys)
      "resident frames %d exceed physical capacity %d"
      (Phys_mem.frames_in_use machine.Machine.phys)
      (Phys_mem.capacity_frames machine.Machine.phys);
    result a

(* --- fleet cgroup / tier conservation laws --- *)

(* Run only when the reclaim plane carries a cgroup accounting plane
   ([ri_cgroup_stats] non-empty); a fleet-free machine skips the pass
   entirely, keeping non-fleet check reports identical.  [tables] must
   cover every address space, as for {!reclaim_laws}. *)
let cgroup_laws machine ~tables =
  let a = acc () in
  match machine.Machine.reclaim with
  | None -> result a
  | Some r ->
    let stats = r.Machine.ri_cgroup_stats () in
    if stats = [] then result a
    else begin
      (* Resident pages per tenant, recounted from the page tables. *)
      let present = Hashtbl.create 64 in
      List.iter
        (fun (asid, pt) ->
          Page_table.iter_mapped pt ~f:(fun ~vpn:_ ~frame:_ ->
              Hashtbl.replace present asid
                (1 + Option.value ~default:0 (Hashtbl.find_opt present asid))))
        tables;
      let total_resident = ref 0 in
      List.iter
        (fun (asid, resident, soft, hard) ->
          total_resident := !total_resident + resident;
          law a "cgroup-limits"
            (0 <= soft && soft <= hard)
            "asid %d has soft = %d > hard = %d" asid soft hard;
          law a "cgroup-hard"
            (resident <= hard)
            "asid %d holds %d resident pages above its hard limit %d" asid
            resident hard;
          (* The charge/uncharge plane must agree with the page tables for
             every tenant the oracle can see. *)
          match List.assoc_opt asid tables with
          | None -> ()
          | Some _ ->
            let truth =
              Option.value ~default:0 (Hashtbl.find_opt present asid)
            in
            law a "cgroup-accounting"
              (resident = truth)
              "asid %d charged for %d resident pages but its page table \
               holds %d present PTEs"
              asid resident truth)
        stats;
      (* Pool conservation: every resident frame is charged to exactly one
         tenant.  Sound only when every space with present PTEs belongs to
         a registered tenant; implicit tenant creation on first charge
         guarantees that for fleet runs. *)
      let in_stats asid =
        List.exists (fun (a0, _, _, _) -> a0 = asid) stats
      in
      let covered =
        List.for_all
          (fun (asid, _) ->
            in_stats asid
            || Option.value ~default:0 (Hashtbl.find_opt present asid) = 0)
          tables
      in
      if covered then
        law a "cgroup-conservation"
          (!total_resident = Phys_mem.frames_in_use machine.Machine.phys)
          "tenants are charged for %d resident pages but the machine holds \
           %d frames"
          !total_resident
          (Phys_mem.frames_in_use machine.Machine.phys);
      (* Tier conservation: demote/promote moves payloads between tiers
         but never creates or leaks a slot. *)
      (match r.Machine.ri_tier_stats () with
      | None -> ()
      | Some (near, far) ->
        law a "tier-conservation"
          (near + far = r.Machine.ri_slots_in_use ())
          "near (%d) + far (%d) slots disagree with the device total %d" near
          far
          (r.Machine.ri_slots_in_use ()));
      result a
    end

(* --- GC cycle accounting --- *)

let cycle_laws ?(label = "gc") (c : Gc_stats.cycle) =
  let a = acc () in
  let phase name v =
    law a "cycle-law" (v >= 0.0) "%s: %s_ns = %g must be non-negative" label
      name v
  in
  phase "mark" c.Gc_stats.mark_ns;
  phase "forward" c.Gc_stats.forward_ns;
  phase "adjust" c.Gc_stats.adjust_ns;
  phase "compact" c.Gc_stats.compact_ns;
  phase "concurrent" c.Gc_stats.concurrent_ns;
  let count name v =
    law a "cycle-law" (v >= 0) "%s: %s = %d must be non-negative" label name v
  in
  count "live_objects" c.Gc_stats.live_objects;
  count "live_bytes" c.Gc_stats.live_bytes;
  count "reclaimed_bytes" c.Gc_stats.reclaimed_bytes;
  count "moved_objects" c.Gc_stats.moved_objects;
  count "bytes_copied" c.Gc_stats.bytes_copied;
  law a "cycle-law"
    (c.Gc_stats.swapped_objects >= 0
    && c.Gc_stats.swapped_objects <= c.Gc_stats.moved_objects)
    "%s: swapped_objects = %d outside [0, moved_objects = %d]" label
    c.Gc_stats.swapped_objects c.Gc_stats.moved_objects;
  law a "cycle-law"
    (c.Gc_stats.bytes_remapped >= 0
    && c.Gc_stats.bytes_remapped mod Addr.page_size = 0)
    "%s: bytes_remapped = %d is negative or not page-sized" label
    c.Gc_stats.bytes_remapped;
  law a "cycle-law"
    (c.Gc_stats.moved_objects > 0
    || (c.Gc_stats.bytes_copied = 0 && c.Gc_stats.bytes_remapped = 0))
    "%s: no object moved yet bytes_copied = %d, bytes_remapped = %d" label
    c.Gc_stats.bytes_copied c.Gc_stats.bytes_remapped;
  result a

(* --- heap audit --- *)

let heap_invariants ?(label = "heap") heap =
  let items = max 1 (Heap.object_count heap) in
  match Heap.audit heap with
  | Ok () -> (items, [])
  | Error lines ->
    (items, List.map (fun l -> finding "heap-audit" "%s: %s" label l) lines)

(* --- trace well-formedness --- *)

let trace_eps = 1e-3 (* ns; absorbs float addition noise only *)

let trace_wellformed tracer =
  let a = acc () in
  let events = Tracer.events tracer in
  let tracks = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      a.items <- a.items + 1;
      if not (Float.is_finite e.Event.ts && e.Event.ts >= 0.0) then
        a.rev <-
          finding "trace-timestamps" "event #%d %S has bad timestamp %g"
            e.Event.seq e.Event.name e.Event.ts
          :: a.rev;
      (match e.Event.kind with
      | Event.Span dur ->
        if not (Float.is_finite dur && dur >= 0.0) then
          a.rev <-
            finding "trace-timestamps" "span #%d %S has bad duration %g"
              e.Event.seq e.Event.name dur
            :: a.rev
      | Event.Instant -> ());
      let key = (e.Event.pid, e.Event.tid) in
      let spans, last_instant =
        match Hashtbl.find_opt tracks key with
        | Some t -> t
        | None -> ([], None)
      in
      let spans =
        if Event.is_span e then (e.Event.ts, Event.end_ts e) :: spans
        else spans
      in
      let last_instant =
        match e.Event.kind with
        | Event.Instant ->
          (match last_instant with
          | Some prev when e.Event.ts +. trace_eps < prev ->
            a.rev <-
              finding "trace-monotonicity"
                "instant #%d %S on track (%d,%d) at %g ns regresses below %g \
                 ns"
                e.Event.seq e.Event.name e.Event.pid e.Event.tid e.Event.ts
                prev
              :: a.rev
          | _ -> ());
          Some (Float.max e.Event.ts (Option.value last_instant ~default:0.0))
        | _ -> last_instant
      in
      Hashtbl.replace tracks key (spans, last_instant))
    events;
  (* Nesting: on one track, any two spans are disjoint or one contains the
     other.  Sweep the spans sorted by (begin asc, end desc) with a stack
     of enclosing end times. *)
  Hashtbl.iter
    (fun (pid, tid) (spans, _) ->
      let spans =
        List.sort
          (fun (b1, e1) (b2, e2) ->
            match compare b1 b2 with 0 -> compare e2 e1 | c -> c)
          spans
      in
      let stack = ref [] in
      List.iter
        (fun (b, e) ->
          a.items <- a.items + 1;
          while
            match !stack with
            | top :: rest when top <= b +. trace_eps ->
              stack := rest;
              true
            | _ -> false
          do
            ()
          done;
          (match !stack with
          | top :: _ when e > top +. trace_eps ->
            a.rev <-
              finding "trace-nesting"
                "span [%g, %g] on track (%d,%d) straddles its enclosing \
                 span's end %g"
                b e pid tid top
              :: a.rev
          | _ -> ());
          stack := e :: !stack)
        spans)
    tracks;
  law a "trace-open-spans"
    (Tracer.open_spans tracer = 0)
    "%d spans left open" (Tracer.open_spans tracer);
  result a

(* --- work-steal scheduler oracle --- *)

let work_steal_oracle ?(threads = 4) ?(steal_ns = 2.0) ?(barrier_ns = 0.0)
    costs =
  let a = acc () in
  let n = Array.length costs in
  let executed = Array.make (max n 1) 0 in
  let stats =
    Work_steal.run ~threads ~steal_ns ~barrier_ns
      ~cost:(fun i -> costs.(i))
      ~execute:(fun i -> executed.(i) <- executed.(i) + 1)
      (Array.init n (fun i -> i))
  in
  for i = 0 to n - 1 do
    law a "work-steal" (executed.(i) = 1) "task %d executed %d times" i
      executed.(i)
  done;
  let total = Array.fold_left ( +. ) 0.0 costs in
  let eps = 1e-6 *. (1.0 +. Float.abs total) in
  law a "work-steal" (stats.Work_steal.tasks = n) "stats.tasks = %d, seeded %d"
    stats.Work_steal.tasks n;
  law a "work-steal"
    (stats.Work_steal.threads = threads)
    "stats.threads = %d, asked for %d" stats.Work_steal.threads threads;
  law a "work-steal"
    (Float.abs (stats.Work_steal.total_work_ns -. total) <= eps)
    "total_work_ns = %g but the seeded costs sum to %g"
    stats.Work_steal.total_work_ns total;
  law a "work-steal"
    (stats.Work_steal.steals >= 0)
    "negative steal count %d" stats.Work_steal.steals;
  if n = 0 then
    law a "work-steal"
      (stats.Work_steal.makespan_ns = 0.0 && stats.Work_steal.steals = 0)
      "empty schedule reports makespan %g and %d steals"
      stats.Work_steal.makespan_ns stats.Work_steal.steals
  else begin
    let max_cost = Array.fold_left Float.max 0.0 costs in
    let lower =
      Float.max max_cost (total /. float_of_int threads) +. barrier_ns
    in
    let upper =
      total
      +. (float_of_int stats.Work_steal.steals *. steal_ns)
      +. barrier_ns
    in
    law a "work-steal"
      (stats.Work_steal.makespan_ns +. eps >= lower)
      "makespan %g below the critical-path lower bound %g"
      stats.Work_steal.makespan_ns lower;
    law a "work-steal"
      (stats.Work_steal.makespan_ns <= upper +. eps)
      "makespan %g above the serial upper bound %g"
      stats.Work_steal.makespan_ns upper
  end;
  result a

(* --- domain safety: sharded sweeps never share a leaf --- *)

module Par_sweep = Svagc_par.Par_sweep

let domain_safety (r : Par_sweep.result) =
  let a = acc () in
  let s = r.Par_sweep.shards in
  let n = Array.length s in
  law a "domain-safety" (n > 0) "sweep result carries no shards";
  for i = 0 to n - 1 do
    let sh = s.(i) in
    law a "domain-safety"
      (sh.Par_sweep.ss_shard = i)
      "shard at index %d says it is shard %d (merge order broken)" i
      sh.Par_sweep.ss_shard;
    law a "domain-safety"
      (sh.Par_sweep.ss_leaf_lo <= sh.Par_sweep.ss_leaf_hi)
      "shard %d owns the inverted leaf range [%d, %d)" i
      sh.Par_sweep.ss_leaf_lo sh.Par_sweep.ss_leaf_hi;
    if i > 0 then
      (* Contiguous canonical partition: shard i starts exactly where
         shard i-1 ended, so no leaf has two owners and none is skipped. *)
      law a "domain-safety"
        (s.(i - 1).Par_sweep.ss_leaf_hi = sh.Par_sweep.ss_leaf_lo)
        "shards %d and %d share or skip leaves: [..., %d) then [%d, ...)"
        (i - 1) i
        s.(i - 1).Par_sweep.ss_leaf_hi
        sh.Par_sweep.ss_leaf_lo;
    law a "domain-safety"
      (sh.Par_sweep.ss_leaves <= sh.Par_sweep.ss_leaf_hi - sh.Par_sweep.ss_leaf_lo)
      "shard %d walked %d leaves but owns only %d" i sh.Par_sweep.ss_leaves
      (sh.Par_sweep.ss_leaf_hi - sh.Par_sweep.ss_leaf_lo)
  done;
  let sum f = Array.fold_left (fun acc sh -> acc + f sh) 0 s in
  law a "domain-safety"
    (r.Par_sweep.leaves = sum (fun sh -> sh.Par_sweep.ss_leaves))
    "merged leaf count %d <> shard sum %d" r.Par_sweep.leaves
    (sum (fun sh -> sh.Par_sweep.ss_leaves));
  law a "domain-safety"
    (r.Par_sweep.present = sum (fun sh -> sh.Par_sweep.ss_present))
    "merged present count %d <> shard sum %d" r.Par_sweep.present
    (sum (fun sh -> sh.Par_sweep.ss_present));
  law a "domain-safety"
    (r.Par_sweep.swapped = sum (fun sh -> sh.Par_sweep.ss_swapped))
    "merged swapped count %d <> shard sum %d" r.Par_sweep.swapped
    (sum (fun sh -> sh.Par_sweep.ss_swapped));
  let cks =
    Array.fold_left
      (fun acc sh -> Int64.add acc sh.Par_sweep.ss_checksum)
      0L s
  in
  law a "domain-safety"
    (r.Par_sweep.checksum = cks)
    "merged checksum %Ld <> shard sum %Ld" r.Par_sweep.checksum cks;
  let walk =
    Array.fold_left (fun acc sh -> acc +. sh.Par_sweep.ss_cost_ns) 0.0 s
  in
  law a "domain-safety"
    (Int64.bits_of_float r.Par_sweep.walk_ns = Int64.bits_of_float walk)
    "merged walk_ns %.17g is not the bit-exact left-to-right shard sum %.17g"
    r.Par_sweep.walk_ns walk;
  result a

(* --- shadow mode --- *)

(* One registered machine.  The machine itself is held weakly so check
   mode never keeps simulated frames alive; page tables (small radix
   trees) are held strongly because a TLB entry can outlive the moment we
   would otherwise re-discover its address space. *)
type mstate = {
  wmachine : Machine.t Weak.t;
  mutable tables : (int * Page_table.t) list;
}

type shadow = {
  label : string;
  mutable machines : mstate list;
  clocks : (string, float) Hashtbl.t;
  mutable oracles : int;
  mutable items : int;
  mutable findings_rev : finding list;
  mutable findings_count : int;
  mutable machines_seen : int;
  mutable shootdowns_seen : int;
}

let max_recorded_findings = 200

let shadow : shadow option ref = ref None

let enabled () = Option.is_some !shadow

let record s f =
  s.findings_count <- s.findings_count + 1;
  if s.findings_count <= max_recorded_findings then
    s.findings_rev <- f :: s.findings_rev

let fold s (items, findings) =
  s.oracles <- s.oracles + 1;
  s.items <- s.items + items;
  List.iter (record s) findings

let state_for s machine =
  let alive st =
    match Weak.get st.wmachine 0 with Some m -> m == machine | None -> false
  in
  match List.find_opt alive s.machines with
  | Some st -> st
  | None ->
    let wmachine = Weak.create 1 in
    Weak.set wmachine 0 (Some machine);
    let st = { wmachine; tables = [] } in
    s.machines <-
      st :: List.filter (fun st -> Weak.check st.wmachine 0) s.machines;
    st

let on_machine_created s machine =
  s.machines_seen <- s.machines_seen + 1;
  ignore (state_for s machine)

let on_aspace_created s aspace =
  let st = state_for s (Address_space.machine aspace) in
  st.tables <-
    (Address_space.asid aspace, Address_space.page_table aspace) :: st.tables

let on_shootdown s machine ~asid =
  s.shootdowns_seen <- s.shootdowns_seen + 1;
  let st = state_for s machine in
  fold s (shootdown_flushed machine ~asid);
  fold s (tlb_coherence machine ~tables:st.tables);
  fold s (counter_laws machine)

let enable ?(label = "shadow") () =
  if not (enabled ()) then begin
    let s =
      {
        label;
        machines = [];
        clocks = Hashtbl.create 64;
        oracles = 0;
        items = 0;
        findings_rev = [];
        findings_count = 0;
        machines_seen = 0;
        shootdowns_seen = 0;
      }
    in
    shadow := Some s;
    Machine.created_hook := Some (on_machine_created s);
    Address_space.created_hook := Some (on_aspace_created s);
    Machine.shootdown_hook :=
      Some (fun machine ~asid -> on_shootdown s machine ~asid)
  end

let disable () =
  match !shadow with
  | None -> None
  | Some s ->
    Machine.created_hook := None;
    Address_space.created_hook := None;
    Machine.shootdown_hook := None;
    shadow := None;
    let findings = List.rev s.findings_rev in
    let findings =
      if s.findings_count > max_recorded_findings then
        findings
        @ [
            finding "suppressed" "%d further findings not recorded"
              (s.findings_count - max_recorded_findings);
          ]
      else findings
    in
    Some
      {
        label = s.label;
        oracles_run = s.oracles;
        items_checked = s.items;
        machines_observed = s.machines_seen;
        shootdowns_observed = s.shootdowns_seen;
        findings;
      }

let observe_clock ~key ns =
  match !shadow with
  | None -> ()
  | Some s ->
    s.oracles <- s.oracles + 1;
    s.items <- s.items + 1;
    if not (Float.is_finite ns && ns >= 0.0) then
      record s (finding "clock-monotonicity" "clock %s reads bad value %g" key ns);
    (match Hashtbl.find_opt s.clocks key with
    | Some prev when ns < prev ->
      record s
        (finding "clock-monotonicity"
           "clock %s regressed from %g ns to %g ns" key prev ns)
    | _ -> ());
    Hashtbl.replace s.clocks key
      (match Hashtbl.find_opt s.clocks key with
      | Some prev -> Float.max prev ns
      | None -> ns)

let post_gc ?(label = "gc") heap cycle =
  match !shadow with
  | None -> ()
  | Some s ->
    let machine = Process.machine (Heap.proc heap) in
    let st = state_for s machine in
    fold s (cycle_laws ~label cycle);
    fold s (heap_invariants ~label heap);
    fold s (tlb_coherence machine ~tables:st.tables);
    fold s (counter_laws machine);
    fold s (bitset_laws ~tables:st.tables);
    (match machine.Machine.reclaim with
    | None -> ()
    | Some r ->
      fold s (reclaim_laws machine ~tables:st.tables);
      if r.Machine.ri_cgroup_stats () <> [] then
        fold s (cgroup_laws machine ~tables:st.tables))

let observe_tracer tracer =
  match !shadow with
  | None -> ()
  | Some s -> fold s (trace_wellformed tracer)
