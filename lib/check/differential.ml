open Svagc_vmem
module Rng = Svagc_util.Rng
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva

type case = {
  seed : int;
  arena_pages : int;
  requests : Swapva.request list;
}

(* 1 GiB: PMD-aligned, comfortably above any default heap placement. *)
let arena_base = 1 lsl 30

let page = Addr.page_size

(* Two disjoint page ranges of [pages] inside [0, arena_pages), built by
   construction (no rejection sampling, so generation is O(1) and
   deterministic). *)
let disjoint_pair rng ~arena_pages ~pages =
  let a = Rng.int rng (arena_pages - (2 * pages) + 1) in
  let b = a + pages + Rng.int rng (arena_pages - a - (2 * pages) + 1) in
  if Rng.bool rng then (a, b) else (b, a)

let gen_case ?(arena_pages = 1536) ?(max_requests = 10) ~seed () =
  if arena_pages < 128 then invalid_arg "Differential.gen_case: arena too small";
  let rng = Rng.create ~seed in
  let nreq = 1 + Rng.int rng max_requests in
  let requests =
    List.init nreq (fun _ ->
        let leaf_slots = arena_pages / 512 in
        if leaf_slots >= 2 && Rng.int rng 4 = 0 then begin
          (* Whole PMD-aligned 512-page runs: the only shape the leaf-swap
             path accelerates, so make sure schedules contain them. *)
          let a = Rng.int rng leaf_slots in
          let b = (a + 1 + Rng.int rng (leaf_slots - 1)) mod leaf_slots in
          {
            Swapva.src = arena_base + (a * 512 * page);
            dst = arena_base + (b * 512 * page);
            pages = 512;
          }
        end
        else begin
          let pages =
            if Rng.bool rng then 1 + Rng.int rng 16
            else 16 + Rng.int rng (min 300 ((arena_pages / 2) - 16))
          in
          let src_page, dst_page = disjoint_pair rng ~arena_pages ~pages in
          {
            Swapva.src = arena_base + (src_page * page);
            dst = arena_base + (dst_page * page);
            pages;
          }
        end)
  in
  { seed; arena_pages; requests }

type path = Per_page | Runs | Leaf | Flat

let path_name = function
  | Per_page -> "per-page"
  | Runs -> "runs"
  | Leaf -> "pmd-leaf"
  | Flat -> "flat"

type replay = {
  cost : float;
  counters : (string * int) list;
  layout : (int * int) list;
}

let fresh_proc ~arena_pages =
  let machine = Machine.create ~ncores:4 ~phys_mib:64 Cost_model.xeon_6130 in
  let proc = Process.create ~name:"differential" machine in
  Address_space.map_range (Process.aspace proc) ~va:arena_base
    ~pages:arena_pages;
  (machine, proc)

let layout_of proc =
  let pt = Address_space.page_table (Process.aspace proc) in
  let acc = ref [] in
  Page_table.iter_mapped pt ~f:(fun ~vpn ~frame -> acc := (vpn, frame) :: !acc);
  List.sort compare !acc

(* [leaf_runs] counts how many PMD-leaf slices the batched engine walked —
   pure bookkeeping of the fast path itself, explicitly outside the
   equivalence contract (the per-page reference never sets it). *)
let counters_of machine =
  List.map
    (fun (k, v) -> if k = "leaf_runs" then (k, 0) else (k, v))
    (Perf.to_assoc machine.Machine.perf)

let replay path case =
  let machine, proc = fresh_proc ~arena_pages:case.arena_pages in
  let engine req =
    match path with
    | Per_page -> Swapva.swap_disjoint_per_page proc ~pmd_caching:true req
    | Runs -> Swapva.swap_disjoint_run proc ~pmd_caching:true req
    | Leaf -> Swapva.swap_disjoint_run ~leaf_swap:true proc ~pmd_caching:true req
    | Flat ->
      Swapva.swap_disjoint_flat proc ~pmd_caching:true ~leaf_swap:false req
  in
  let cost =
    List.fold_left (fun acc req -> acc +. engine req) 0.0 case.requests
  in
  { cost; counters = counters_of machine; layout = layout_of proc }

let mk invariant fmt =
  Format.kasprintf (fun detail -> { Check.invariant; detail }) fmt

let first_counter_mismatch c1 c2 =
  List.find_opt (fun ((k1, v1), (_, v2)) -> ignore k1; v1 <> v2)
    (List.combine c1 c2)

let compare_case case =
  let items = ref 0 and findings = ref [] in
  let law ok f =
    incr items;
    if not ok then findings := f () :: !findings
  in
  let reference = replay Per_page case in
  let runs = replay Runs case in
  let leaf = replay Leaf case in
  let label = Printf.sprintf "case seed=%d (%d requests)" case.seed
      (List.length case.requests)
  in
  law (runs.cost = reference.cost) (fun () ->
      mk "differential-cost"
        "%s: run-coalesced cost %.17g <> per-page reference %.17g" label
        runs.cost reference.cost);
  law (runs.layout = reference.layout) (fun () ->
      mk "differential-layout"
        "%s: run-coalesced final mapping differs from the per-page reference"
        label);
  law (runs.counters = reference.counters) (fun () ->
      match first_counter_mismatch runs.counters reference.counters with
      | Some ((k, v1), (_, v2)) ->
        mk "differential-counters" "%s: %s = %d (runs) vs %d (per-page)" label
          k v1 v2
      | None -> mk "differential-counters" "%s: counter sets differ" label);
  let flat = replay Flat case in
  law (flat.cost = reference.cost) (fun () ->
      mk "differential-cost"
        "%s: flat-engine cost %.17g <> per-page reference %.17g" label
        flat.cost reference.cost);
  law (flat.layout = reference.layout) (fun () ->
      mk "differential-layout"
        "%s: flat-engine final mapping differs from the per-page reference"
        label);
  law (flat.counters = reference.counters) (fun () ->
      match first_counter_mismatch flat.counters reference.counters with
      | Some ((k, v1), (_, v2)) ->
        mk "differential-counters" "%s: %s = %d (flat) vs %d (per-page)" label
          k v1 v2
      | None -> mk "differential-counters" "%s: counter sets differ" label);
  law (leaf.layout = reference.layout) (fun () ->
      mk "differential-layout"
        "%s: pmd-leaf final mapping differs from the per-page reference" label);
  law (leaf.cost <= runs.cost +. 1e-9) (fun () ->
      mk "differential-cost"
        "%s: pmd-leaf cost %.17g exceeds the run-coalesced cost %.17g" label
        leaf.cost runs.cost);
  (!items + List.length reference.layout, List.rev !findings)

(* --- rate-0 fault identity through the full syscall boundary --- *)

let zero_rate_spec =
  match Svagc_fault.Fault_spec.parse "pte:p=0,lock:p=0,ipi:p=0" with
  | Ok spec -> spec
  | Error msg -> failwith ("Differential.zero_rate_spec: " ^ msg)

type syscall_replay = {
  s_outcomes : (float * int * bool) list;  (** ns, completed, failed? *)
  s_counters : (string * int) list;
  s_layout : (int * int) list;
}

let syscall_replay ~with_zero_injector case =
  let machine, proc = fresh_proc ~arena_pages:case.arena_pages in
  if with_zero_injector then
    machine.Machine.fault <-
      Some (Svagc_fault.Injector.create zero_rate_spec ~seed:case.seed);
  (* Broadcast flushing exercises the IPI delivery path (where the ipi
     clause would fire); the aggregated call uses the SVAGC defaults. *)
  let separated = Swapva.swap_separated proc ~opts:Swapva.naive_opts case.requests in
  let aggregated =
    Swapva.swap_aggregated proc ~opts:Swapva.default_opts case.requests
  in
  let digest (o : Swapva.outcome) =
    (o.Swapva.ns, o.Swapva.completed, Option.is_some o.Swapva.failure)
  in
  {
    s_outcomes = [ digest separated; digest aggregated ];
    s_counters = counters_of machine;
    s_layout = layout_of proc;
  }

let zero_fault_identity case =
  let items = ref 0 and findings = ref [] in
  let law ok f =
    incr items;
    if not ok then findings := f () :: !findings
  in
  let plain = syscall_replay ~with_zero_injector:false case in
  let zeroed = syscall_replay ~with_zero_injector:true case in
  let label = Printf.sprintf "case seed=%d" case.seed in
  law (plain.s_outcomes = zeroed.s_outcomes) (fun () ->
      mk "fault-rate0" "%s: syscall outcomes differ under a rate-0 injector"
        label);
  law (plain.s_counters = zeroed.s_counters) (fun () ->
      match first_counter_mismatch plain.s_counters zeroed.s_counters with
      | Some ((k, v1), (_, v2)) ->
        mk "fault-rate0" "%s: %s = %d (no injector) vs %d (rate-0 injector)"
          label k v1 v2
      | None -> mk "fault-rate0" "%s: counters differ" label);
  law (plain.s_layout = zeroed.s_layout) (fun () ->
      mk "fault-rate0" "%s: final mapping differs under a rate-0 injector"
        label);
  (!items, List.rev !findings)

(* --- scheduler identity: calendar vs lockstep scan --- *)

module Engine = Svagc_sched.Engine

type sched_case = {
  sc_seed : int;
  sc_firsts : float array;  (** entry ns per proc (small ints: many ties) *)
  sc_plans : int array array;  (** per-proc stride sequence; 0 keeps ties *)
}

(* Strides and entry times are drawn UP FRONT so both replays consume the
   identical schedule regardless of interleaving; small integer ns with
   stride 0 allowed makes same-instant ties — the FIFO tie-break under
   test — common rather than exceptional. *)
let gen_sched_case ?(max_procs = 12) ?(max_events = 16) ~seed () =
  let rng = Rng.create ~seed in
  let nprocs = 1 + Rng.int rng max_procs in
  let firsts =
    Array.init nprocs (fun _ -> float_of_int (Rng.int rng 4))
  in
  let plans =
    Array.init nprocs (fun _ ->
        Array.init (Rng.int rng max_events) (fun _ -> Rng.int rng 3))
  in
  { sc_seed = seed; sc_firsts = firsts; sc_plans = plans }

(* Replay one schedule through an engine, logging every firing as
   (proc index, simulated ns) — the whole observable behaviour. *)
let sched_replay case engine =
  let order = ref [] in
  let procs =
    Array.mapi
      (fun i plan ->
        let pos = ref 0 in
        Engine.proc ~first_ns:case.sc_firsts.(i) (fun ~now ->
            order := (i, now) :: !order;
            if !pos >= Array.length plan then Engine.done_ns
            else begin
              let d = plan.(!pos) in
              incr pos;
              now +. float_of_int d
            end))
      case.sc_plans
  in
  let fired =
    match engine with
    | `Scan -> Engine.run_lockstep_scan procs
    | `Calendar -> Engine.run_calendar procs
  in
  (fired, List.rev !order)

let sched_identity case =
  let items = ref 0 and findings = ref [] in
  let law ok f =
    incr items;
    if not ok then findings := f () :: !findings
  in
  let scan_n, scan_order = sched_replay case `Scan in
  let cal_n, cal_order = sched_replay case `Calendar in
  let label =
    Printf.sprintf "sched case seed=%d (%d procs)" case.sc_seed
      (Array.length case.sc_plans)
  in
  law (scan_n = cal_n) (fun () ->
      mk "sched-identity" "%s: calendar fired %d events, lockstep scan %d"
        label cal_n scan_n);
  law (scan_order = cal_order) (fun () ->
      let rec first_div k a b =
        match (a, b) with
        | (i1, t1) :: _, (i2, t2) :: _ when i1 <> i2 || t1 <> t2 ->
          Printf.sprintf "event #%d: calendar (proc %d, %g ns) vs scan (proc \
                          %d, %g ns)"
            k i2 t2 i1 t1
        | _ :: a, _ :: b -> first_div (k + 1) a b
        | _ -> "one replay is a prefix of the other"
      in
      mk "sched-identity" "%s: firing orders diverge: %s" label
        (first_div 0 scan_order cal_order));
  (!items + scan_n, List.rev !findings)

(* --- host-parallelism identity: 1 domain vs N domains --- *)

module Domain_pool = Svagc_par.Domain_pool
module Par_sweep = Svagc_par.Par_sweep
module Heap = Svagc_heap.Heap
module Lisp2 = Svagc_gc.Lisp2
module Gc_stats = Svagc_gc.Gc_stats
module Tracer = Svagc_trace.Tracer
module Chrome_trace = Svagc_trace.Chrome_trace

(* Everything a GC-plus-sweep workload can observably produce, with every
   float bit-cast: the comparison below is bit-identity, not tolerance. *)
type par_observation = {
  po_cycles : (int64 list * int list) list;
      (** per GC cycle: float-bit fields, integer fields *)
  po_counters : (string * int) list;
  po_layout : (int * int) list;
  po_trace : string;  (** canonical Chrome JSON, compared byte for byte *)
  po_sweep_ints : int list;
  po_sweep_bits : int64 list;
  po_sweep_checksums : int64 list;
  po_checksum : int64;
  po_checksum_ref : int64;
  po_safety : int * Check.finding list;
}

let cycle_digest (c : Gc_stats.cycle) =
  ( List.map Int64.bits_of_float
      [
        c.Gc_stats.mark_ns;
        c.Gc_stats.forward_ns;
        c.Gc_stats.adjust_ns;
        c.Gc_stats.compact_ns;
        c.Gc_stats.concurrent_ns;
      ],
    [
      c.Gc_stats.live_objects;
      c.Gc_stats.live_bytes;
      c.Gc_stats.reclaimed_bytes;
      c.Gc_stats.moved_objects;
      c.Gc_stats.swapped_objects;
      c.Gc_stats.bytes_copied;
      c.Gc_stats.bytes_remapped;
    ] )

(* Deterministic object soup: a mix of small and page-aligned swappable
   objects, most rooted and chained both ways, the rest garbage — enough
   structure that every LISP2 phase (and both fan-out sites: mark's
   flag-clear, adjust's rewrites) has real work. *)
let par_populate rng heap ~objects =
  let prev = ref None in
  for i = 0 to objects - 1 do
    let size =
      if Rng.int rng 10 < 3 then (40 * 1024) + Rng.int rng (48 * 1024)
      else 64 + Rng.int rng 1024
    in
    let obj = Heap.alloc heap ~size ~n_refs:2 ~cls:(i mod 3) in
    if Rng.int rng 3 > 0 then begin
      Heap.add_root heap obj;
      (match !prev with
      | Some p ->
        Heap.set_ref heap obj ~slot:0 (Some p);
        Heap.set_ref heap p ~slot:1 (Some obj)
      | None -> ());
      prev := Some obj
    end
  done

(* One full run of the workload under whatever global pool is installed:
   two traced LISP2 cycles (the second re-marks a compacted heap) plus a
   sharded page-table sweep, everything digested. *)
let par_workload ~seed () =
  let machine = Machine.create ~ncores:4 ~phys_mib:128 Cost_model.xeon_6130 in
  let proc = Process.create ~name:"par-identity" machine in
  let heap = Heap.create proc ~size_bytes:(12 * 1024 * 1024) () in
  let pt = Address_space.page_table (Process.aspace proc) in
  let rng = Rng.create ~seed in
  let obs, tracer =
    Tracer.with_tracer (fun () ->
        Tracer.set_counter_source (fun () ->
            Perf.to_assoc machine.Machine.perf);
        Fun.protect ~finally:Tracer.clear_counter_source (fun () ->
            let cfg = Lisp2.config ~label:"par-identity" ~threads:4 () in
            par_populate rng heap ~objects:140;
            let c1 = Lisp2.collect cfg heap in
            par_populate rng heap ~objects:60;
            let c2 = Lisp2.collect cfg heap in
            let va = Heap.base heap in
            let pages = (Heap.limit heap - va) / Addr.page_size in
            let sweep = Par_sweep.run machine pt ~va ~pages ~shards:8 in
            let reference = Par_sweep.checksum_reference pt ~va ~pages in
            (c1, c2, sweep, reference)))
  in
  let c1, c2, sweep, reference = obs in
  let shard_list = Array.to_list sweep.Par_sweep.shards in
  {
    po_cycles = [ cycle_digest c1; cycle_digest c2 ];
    po_counters = Perf.to_assoc machine.Machine.perf;
    po_layout = layout_of proc;
    po_trace = Chrome_trace.to_string tracer;
    po_sweep_ints =
      sweep.Par_sweep.leaves :: sweep.Par_sweep.present
      :: sweep.Par_sweep.swapped
      :: List.concat_map
           (fun s ->
             [
               s.Par_sweep.ss_shard;
               s.Par_sweep.ss_leaf_lo;
               s.Par_sweep.ss_leaf_hi;
               s.Par_sweep.ss_leaves;
               s.Par_sweep.ss_present;
               s.Par_sweep.ss_swapped;
             ])
           shard_list;
    po_sweep_bits =
      Int64.bits_of_float sweep.Par_sweep.walk_ns
      :: Int64.bits_of_float sweep.Par_sweep.makespan_ns
      :: List.map
           (fun s -> Int64.bits_of_float s.Par_sweep.ss_cost_ns)
           shard_list;
    po_sweep_checksums =
      List.map (fun s -> s.Par_sweep.ss_checksum) shard_list;
    po_checksum = sweep.Par_sweep.checksum;
    po_checksum_ref = reference;
    po_safety = Check.domain_safety sweep;
  }

let first_byte_mismatch a b =
  let n = min (String.length a) (String.length b) in
  let rec go i =
    if i >= n then n else if a.[i] <> b.[i] then i else go (i + 1)
  in
  go 0

let par_identity ?(domains = 4) ~seed () =
  let items = ref 0 and findings = ref [] in
  let law ok f =
    incr items;
    if not ok then findings := f () :: !findings
  in
  let base = Domain_pool.with_global ~domains:1 (par_workload ~seed) in
  let par = Domain_pool.with_global ~domains (par_workload ~seed) in
  let label = Printf.sprintf "par case seed=%d (1 vs %d domains)" seed domains in
  List.iter
    (fun (who, o) ->
      let n, f = o.po_safety in
      items := !items + n;
      findings := List.rev_append f !findings;
      law (o.po_checksum = o.po_checksum_ref) (fun () ->
          mk "par-identity"
            "%s: %s sweep checksum %Ld <> sequential reference %Ld" label who
            o.po_checksum o.po_checksum_ref))
    [ ("1-domain", base); (Printf.sprintf "%d-domain" domains, par) ];
  law (base.po_cycles = par.po_cycles) (fun () ->
      mk "par-identity"
        "%s: GC cycle stats (clocks or accounting) are not bit-identical"
        label);
  law (base.po_counters = par.po_counters) (fun () ->
      match first_counter_mismatch base.po_counters par.po_counters with
      | Some ((k, v1), (_, v2)) ->
        mk "par-identity" "%s: counter %s = %d (1 domain) vs %d (%d domains)"
          label k v1 v2 domains
      | None -> mk "par-identity" "%s: counter sets differ" label);
  law (base.po_layout = par.po_layout) (fun () ->
      mk "par-identity" "%s: final heap layouts differ" label);
  law (base.po_trace = par.po_trace) (fun () ->
      mk "par-identity" "%s: traces diverge at byte %d (lengths %d vs %d)"
        label
        (first_byte_mismatch base.po_trace par.po_trace)
        (String.length base.po_trace)
        (String.length par.po_trace));
  law
    (base.po_sweep_ints = par.po_sweep_ints
    && base.po_sweep_bits = par.po_sweep_bits
    && base.po_sweep_checksums = par.po_sweep_checksums
    && base.po_checksum = par.po_checksum)
    (fun () ->
      mk "par-identity" "%s: sharded sweep results are not bit-identical"
        label);
  (!items, List.rev !findings)

let arena_sizes = [| 384; 512; 1024; 1536; 2048 |]

let run_suite ?(cases = 40) ?(seed = 0xC0FFEE) () =
  let items = ref 0 and findings = ref [] in
  for i = 0 to cases - 1 do
    let arena_pages = arena_sizes.(i mod Array.length arena_sizes) in
    let case = gen_case ~arena_pages ~seed:(seed + i) () in
    let n1, f1 = compare_case case in
    let n2, f2 = zero_fault_identity case in
    let n3, f3 = sched_identity (gen_sched_case ~seed:(seed + i) ()) in
    items := !items + n1 + n2 + n3;
    findings := !findings @ f1 @ f2 @ f3
  done;
  (* Host-parallelism identity is a full double GC per replay, so run a
     handful of seeds rather than one per case. *)
  for i = 0 to (cases / 16) + 1 do
    let n, f = par_identity ~seed:(seed + (7919 * i)) () in
    items := !items + n;
    findings := !findings @ f
  done;
  (!items, !findings)
