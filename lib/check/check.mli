(** The shadow invariant oracle.

    An always-compilable, opt-in checker that cross-examines the simulated
    machine against the model it claims to implement: TLB coherence after
    shootdowns, perf-counter conservation laws (the Eq. 2 bookkeeping),
    simulated-clock and trace-span well-formedness, heap audits and
    per-GC-cycle accounting.  Oracles are pure observers — they never
    touch recency state, counters or costs, so a checked run is
    bit-identical to an unchecked one.

    Two ways to use it:

    - {b Stateless oracles} ({!tlb_coherence}, {!counter_laws}, ...) take
      the structures to examine and return [(items_inspected, findings)].
      A finding is a violated invariant; an empty list means the oracle
      passed.

    - {b Shadow mode} ({!enable} / {!disable}) installs the vmem
      observation hooks so every machine and address space created
      afterwards is registered automatically, every completed shootdown
      re-runs the TLB coherence and counter oracles, and the GC driver
      ([Jvm.run_gc]) feeds post-cycle heap audits and clock observations
      in.  Machines are referenced weakly: check mode never extends the
      lifetime of a machine's simulated frames. *)

type finding = {
  invariant : string;  (** which law was violated, e.g. ["tlb-coherence"] *)
  detail : string;  (** human-readable, with the offending values *)
}

val pp_finding : Format.formatter -> finding -> unit

type report = {
  label : string;
  oracles_run : int;  (** oracle passes executed *)
  items_checked : int;  (** TLB entries walked, laws evaluated, objects audited... *)
  machines_observed : int;
  shootdowns_observed : int;
  findings : finding list;  (** discovery order; empty = everything held *)
}

val pp_report : Format.formatter -> report -> unit

(** {1 Stateless oracles}

    Each returns [(items_inspected, findings)]. *)

val tlb_coherence :
  Svagc_vmem.Machine.t ->
  tables:(int * Svagc_vmem.Page_table.t) list ->
  int * finding list
(** Walk every valid TLB entry of every core; an entry whose [asid] is
    registered in [tables] must agree with that address space's live page
    table (same frame, still mapped).  Entries for unregistered asids are
    skipped — the oracle cannot know their truth. *)

val shootdown_flushed :
  Svagc_vmem.Machine.t -> asid:int -> int * finding list
(** After a completed shootdown for [asid], no core may hold a valid TLB
    entry for that asid at all. *)

val counter_laws : Svagc_vmem.Machine.t -> int * finding list
(** Conservation laws over the machine's perf counters: all counters
    non-negative, [ipis_sent = shootdown_broadcasts * (ncores-1) +
    ipis_lost], [swapva_calls <= syscalls], [bytes_remapped] page-sized,
    [tlb_flush_local >= ncores * tlb_flush_all],
    [ptes_swapped >= 2 * pmd_leaf_swaps],
    [pages_swapped_in <= pages_swapped_out],
    [major_faults >= pages_swapped_in], and
    [sched_dispatched + sched_cancelled <= sched_scheduled] (event
    calendar: every firing/cancel consumes a distinct scheduled seq). *)

val bitset_laws :
  tables:(int * Svagc_vmem.Page_table.t) list -> int * finding list
(** Recompute every leaf's presence bitset from its PTE words
    ({!Svagc_vmem.Page_table.bitset_violations}) for each registered
    address space.  A violation means some PTE-exchange path broke its
    mappedness-preservation contract — the invariant the flat SwapVA
    engine's bitset prechecks rely on. *)

val reclaim_laws :
  Svagc_vmem.Machine.t ->
  tables:(int * Svagc_vmem.Page_table.t) list ->
  int * finding list
(** Memory-pressure conservation, evaluated only while the machine has a
    reclaim plane attached (trivially passes otherwise): every swapped
    PTE's slot is allocated on the swap device and referenced by exactly
    one PTE; the device holds exactly as many slots as there are swapped
    PTEs (slot-leak detection); and the machine's resident frame count
    equals the total present-PTE count over [tables] (every frame owned by
    exactly one page).  [tables] must cover all the machine's address
    spaces — shadow mode registers them at creation. *)

val cgroup_laws :
  Svagc_vmem.Machine.t ->
  tables:(int * Svagc_vmem.Page_table.t) list ->
  int * finding list
(** Fleet cgroup and swap-tier conservation, evaluated only when the
    reclaim plane carries a cgroup accounting plane ([ri_cgroup_stats]
    non-empty; trivially passes otherwise): per-tenant limits are sane
    ([soft <= hard]), no tenant holds more resident pages than its hard
    limit, each tenant's charge equals its page table's present-PTE
    count, the charges sum to the machine's resident frames (when every
    populated space belongs to a tenant), and — on a tiered device —
    near + far slots in use equal the device total (demotion/promotion
    neither leaks nor forges slots). *)

val cycle_laws : ?label:string -> Svagc_gc.Gc_stats.cycle -> int * finding list
(** Per-cycle accounting: phase times non-negative,
    [swapped_objects <= moved_objects], byte counters non-negative and
    [bytes_remapped] page-sized, and nothing moved implies nothing
    copied/remapped. *)

val heap_invariants : ?label:string -> Svagc_heap.Heap.t -> int * finding list
(** [Heap.audit] folded into findings: object ranges in bounds, every page
    translating, headers intact, no overlaps. *)

val trace_wellformed : Svagc_trace.Tracer.t -> int * finding list
(** Spans have non-negative durations and timestamps, per-track span
    intervals nest properly (no partial overlap), per-track instants are
    monotone in simulated time, and no span is left open. *)

val work_steal_oracle :
  ?threads:int ->
  ?steal_ns:float ->
  ?barrier_ns:float ->
  float array ->
  int * finding list
(** Run [Work_steal.run] over tasks with the given costs and assert its
    contract: every seeded task executes exactly once,
    [total_work_ns = sum of costs], [tasks] and [threads] echo the inputs,
    and the makespan sits between the critical-path lower bounds
    ([max cost], [total/threads]) and the serial upper bound
    ([total + steals * steal_ns + barrier_ns]); zero tasks cost zero. *)

val domain_safety : Svagc_par.Par_sweep.result -> int * finding list
(** The no-shared-leaf law of DESIGN.md §13 on a sharded sweep's result:
    shard records sit at their own canonical index, their PMD-leaf ranges
    form a contiguous disjoint partition (no leaf has two owners, none is
    skipped), no shard walked more leaves than it owns, and the merged
    totals are exactly the shard sums — counts and checksum by
    commutative addition, [walk_ns] as the bit-exact left-to-right float
    sum.  Together with {!Differential.par_identity} this pins the
    host-parallel sweep to the sequential semantics. *)

(** {1 Shadow mode} *)

val enable : ?label:string -> unit -> unit
(** Install the observation hooks and start accumulating.  Idempotent. *)

val enabled : unit -> bool

val disable : unit -> report option
(** Uninstall the hooks and return the accumulated report ([None] if
    shadow mode was not enabled). *)

val observe_clock : key:string -> float -> unit
(** Feed a simulated-clock reading (ns) under a unique [key]; a reading
    below the key's previous maximum is a clock regression.  No-op when
    shadow mode is off. *)

val post_gc :
  ?label:string -> Svagc_heap.Heap.t -> Svagc_gc.Gc_stats.cycle -> unit
(** Phase-boundary assertion for the end of a GC cycle: cycle laws, heap
    audit, TLB coherence, counter laws and {!bitset_laws} on the heap's
    machine, plus {!reclaim_laws} when a reclaim plane is attached.
    Called by [Jvm.run_gc]; no-op when shadow mode is off. *)

val observe_tracer : Svagc_trace.Tracer.t -> unit
(** Fold a {!trace_wellformed} pass over a (stopped or running) tracer
    into the shadow report.  No-op when shadow mode is off. *)
