(** The differential harness: random swap schedules replayed through every
    SwapVA engine, asserting the equivalences the kernel promises.

    Four engine paths are compared on identical fresh machines:

    - [Per_page] — [Swapva.swap_disjoint_per_page], the executable
      reference;
    - [Runs] — [Swapva.swap_disjoint_run], the run-coalesced fast path,
      which must produce a bit-identical heap layout, perf-counter deltas
      (modulo its own [leaf_runs] bookkeeping counter) and bit-identical
      simulated cost;
    - [Flat] — [Swapva.swap_disjoint_flat], the allocation-free engine
      behind the syscall (bitset prechecks, scratch run buffers, memoized
      bulk charges), held to the same bit-identity bar as [Runs];
    - [Leaf] — [swap_disjoint_run ~leaf_swap:true], the O(1) PMD mode,
      which must produce the identical layout at no greater cost (its
      counters legitimately differ — it is outside the cost-equivalence
      guarantee).

    Each case is additionally pushed through the full syscall boundary
    ([swap_separated] with broadcast flushing and [swap_aggregated] with
    the SVAGC defaults) twice — once with no fault injector and once with
    an all-zero-rate injector — asserting the two runs are bit-identical
    in cost, counters and layout (the fault plane's rate-0 guarantee). *)

type case = {
  seed : int;
  arena_pages : int;
  requests : Svagc_kernel.Swapva.request list;
      (** each request's src/dst ranges are disjoint (the engines'
          precondition); different requests may overlap freely *)
}

val arena_base : int
(** PMD-aligned VA where every case's arena is mapped. *)

val gen_case : ?arena_pages:int -> ?max_requests:int -> seed:int -> unit -> case
(** Deterministic schedule from [seed]: a mix of small runs, medium runs
    and (when the arena allows) whole PMD-aligned 512-page runs that light
    up the leaf-swap path. *)

type path = Per_page | Runs | Leaf | Flat

val path_name : path -> string

type replay = {
  cost : float;
  counters : (string * int) list;  (** [Perf.to_assoc] with [leaf_runs] zeroed *)
  layout : (int * int) list;  (** sorted [(vpn, frame)] of the final mapping *)
}

val replay : path -> case -> replay
(** Apply the case's requests in order through one engine on a fresh
    machine. *)

val compare_case : case -> int * Check.finding list
(** Engine equivalences for one case (see the module header). *)

val zero_fault_identity : case -> int * Check.finding list
(** Full-syscall replays with no injector vs. an all-zero-rate injector
    must be bit-identical. *)

type sched_case = {
  sc_seed : int;
  sc_firsts : float array;  (** entry ns per proc (small ints: many ties) *)
  sc_plans : int array array;  (** per-proc stride sequence; 0 keeps ties *)
}

val gen_sched_case :
  ?max_procs:int -> ?max_events:int -> seed:int -> unit -> sched_case
(** Deterministic random schedule: strides and entry times drawn up front
    so both replays consume the identical plan; small integer ns with
    zero strides allowed make same-instant FIFO ties common. *)

val sched_identity : sched_case -> int * Check.finding list
(** Replay the schedule through [Svagc_sched.Engine.run_lockstep_scan] and
    [run_calendar]; the (proc, ns) firing sequences must be bit-identical
    (the calendar's FIFO tie-break contract). *)

val par_identity : ?domains:int -> seed:int -> unit -> int * Check.finding list
(** The host-parallelism oracle (DESIGN.md §13): replay one deterministic
    workload — two traced LISP2 GC cycles over a seeded object soup
    followed by a sharded {!Svagc_par.Par_sweep} — once under a 1-domain
    global pool and once under a [domains]-domain pool
    ([Svagc_par.Domain_pool.with_global]), and assert the two runs are
    {e bit-identical} in every observable: per-cycle clocks (float bits),
    cycle accounting, the full perf-counter vector, the final heap
    layout, the canonical Chrome trace (byte for byte, per-span counter
    deltas included), and the sweep's per-shard stats, costs and
    checksums.  Each replay also passes {!Check.domain_safety} and checks
    the sweep checksum against {!Svagc_par.Par_sweep.checksum_reference}.
    [domains] defaults to 4. *)

val run_suite : ?cases:int -> ?seed:int -> unit -> int * Check.finding list
(** [cases] generated schedules (default 40) through {!compare_case},
    {!zero_fault_identity} and {!sched_identity}, plus a handful of
    {!par_identity} replays; returns the combined (items, findings). *)
