type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* --- parsing --- *)

type parser_state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st lit v =
  let n = String.length lit in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = lit then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" lit)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.pos >= String.length st.s then fail st "unterminated escape";
       let e = st.s.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
         let hex = String.sub st.s st.pos 4 in
         st.pos <- st.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail st "bad \\u escape"
         in
         (* Only BMP code points below 0x80 are emitted by our printer;
            decode anything else as UTF-8 for robustness. *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> fail st "unknown escape");
      loop ()
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a number";
  let text = String.sub st.s start (st.pos - start) in
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad float"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> expect st ','; members ()
        | Some '}' -> expect st '}'
        | _ -> fail st "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> expect st ','; elements ()
        | Some ']' -> expect st ']'
        | _ -> fail st "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_exn = function
  | List xs -> xs
  | _ -> raise (Parse_error "expected a JSON array")

let string_exn = function
  | Str s -> s
  | _ -> raise (Parse_error "expected a JSON string")

let number_exn = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> raise (Parse_error "expected a JSON number")
