(** Trace events: the unit stored in the recorder's ring buffer.

    All timestamps are simulated nanoseconds (the same unit as {!Clock} in
    [svagc_vmem]); the exporters convert as needed.  Events carry two track
    coordinates mirroring the Chrome trace-event model: [pid] (one per
    simulated JVM / process) and [tid] (one per GC driver or core). *)

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Span of float  (** a completed span; the payload is its duration in ns *)
  | Instant  (** a point event (IPI, TLB flush, syscall) *)

type t = {
  seq : int;  (** monotonic sequence number; tie-breaker for sorting *)
  ts : float;  (** simulated ns *)
  pid : int;
  tid : int;
  cat : string;
  name : string;
  kind : kind;
  args : (string * value) list;
}

val is_span : t -> bool

val dur_ns : t -> float
(** Duration of a span, [0.] for instants. *)

val end_ts : t -> float
(** [ts + dur_ns]. *)

val pp_value : Format.formatter -> value -> unit

val pp : Format.formatter -> t -> unit
