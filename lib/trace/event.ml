type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Span of float
  | Instant

type t = {
  seq : int;
  ts : float;
  pid : int;
  tid : int;
  cat : string;
  name : string;
  kind : kind;
  args : (string * value) list;
}

let is_span e = match e.kind with Span _ -> true | Instant -> false

let dur_ns e = match e.kind with Span d -> d | Instant -> 0.0

let end_ts e = e.ts +. dur_ns e

let pp_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let pp ppf e =
  let kind_s = match e.kind with Span d -> Format.asprintf "span(%g)" d | Instant -> "instant" in
  Format.fprintf ppf "[%d] %s %s pid=%d tid=%d ts=%g%a" e.seq kind_s e.name e.pid
    e.tid e.ts
    (fun ppf args ->
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_value v) args)
    e.args
