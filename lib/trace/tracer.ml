type frame = {
  f_name : string;
  f_cat : string;
  f_begin : float;
  f_pid : int;
  f_tid : int;
  f_args : (string * Event.value) list;
  f_counters : (string * int) list;
}

type t = {
  ring : Event.t Ring.t;
  mutable seq : int;
  mutable cursor : float;
  mutable cur_pid : int;
  mutable cur_tid : int;
  mutable stack : frame list;
  mutable counter_source : (unit -> (string * int) list) option;
  mutable procs : (int * string) list;
  mutable threads : ((int * int) * string) list;
}

let cur : t option ref = ref None

let start ?(capacity = 65536) () =
  let t =
    {
      ring = Ring.create ~capacity;
      seq = 0;
      cursor = 0.0;
      cur_pid = 0;
      cur_tid = 0;
      stack = [];
      counter_source = None;
      procs = [];
      threads = [];
    }
  in
  cur := Some t;
  t

let stop () =
  let t = !cur in
  cur := None;
  t

let tracing () = Option.is_some !cur

let current () = !cur

let with_tracer ?capacity f =
  let t = start ?capacity () in
  match f () with
  | v ->
    ignore (stop ());
    (v, t)
  | exception e ->
    ignore (stop ());
    raise e

(* --- context --- *)

let set_counter_source f =
  match !cur with None -> () | Some t -> t.counter_source <- Some f

let clear_counter_source () =
  match !cur with None -> () | Some t -> t.counter_source <- None

let set_now ns = match !cur with None -> () | Some t -> t.cursor <- ns

let now () = match !cur with None -> 0.0 | Some t -> t.cursor

let advance ns = match !cur with None -> () | Some t -> t.cursor <- t.cursor +. ns

let set_context ?pid ?tid () =
  match !cur with
  | None -> ()
  | Some t ->
    (match pid with Some p -> t.cur_pid <- p | None -> ());
    (match tid with Some i -> t.cur_tid <- i | None -> ())

let name_process ~pid name =
  match !cur with
  | None -> ()
  | Some t ->
    if not (List.mem_assoc pid t.procs) then t.procs <- (pid, name) :: t.procs

let name_thread ~pid ~tid name =
  match !cur with
  | None -> ()
  | Some t ->
    if not (List.mem_assoc (pid, tid) t.threads) then
      t.threads <- ((pid, tid), name) :: t.threads

(* --- recording --- *)

let sample_counters t =
  match t.counter_source with None -> [] | Some f -> f ()

let push_event t ~ts ~pid ~tid ~cat ~name ~kind ~args =
  let e =
    { Event.seq = t.seq; ts; pid; tid; cat; name; kind; args }
  in
  t.seq <- t.seq + 1;
  Ring.push t.ring e

let span_begin ?(cat = "") ?(args = []) name =
  match !cur with
  | None -> ()
  | Some t ->
    t.stack <-
      {
        f_name = name;
        f_cat = cat;
        f_begin = t.cursor;
        f_pid = t.cur_pid;
        f_tid = t.cur_tid;
        f_args = args;
        f_counters = sample_counters t;
      }
      :: t.stack

let counter_deltas ~before ~after =
  List.filter_map
    (fun (k, v_after) ->
      let v_before = match List.assoc_opt k before with Some v -> v | None -> 0 in
      let d = v_after - v_before in
      if d = 0 then None else Some ("perf." ^ k, Event.Int d))
    after

let span_end ?(args = []) ~dur_ns () =
  match !cur with
  | None -> ()
  | Some t -> (
    match t.stack with
    | [] -> ()
    | frame :: rest ->
      t.stack <- rest;
      let perf_args =
        match frame.f_counters with
        | [] -> []
        | before -> counter_deltas ~before ~after:(sample_counters t)
      in
      push_event t ~ts:frame.f_begin ~pid:frame.f_pid ~tid:frame.f_tid
        ~cat:frame.f_cat ~name:frame.f_name ~kind:(Event.Span dur_ns)
        ~args:(frame.f_args @ args @ perf_args);
      t.cursor <- frame.f_begin +. dur_ns)

let span_abort () =
  match !cur with
  | None -> ()
  | Some t -> (
    match t.stack with [] -> () | _ :: rest -> t.stack <- rest)

let instant ?(cat = "") ?tid ?(advance_ns = 0.0) ?(args = []) name =
  match !cur with
  | None -> ()
  | Some t ->
    let tid = match tid with Some i -> i | None -> t.cur_tid in
    push_event t ~ts:t.cursor ~pid:t.cur_pid ~tid ~cat ~name ~kind:Event.Instant
      ~args;
    if advance_ns > 0.0 then t.cursor <- t.cursor +. advance_ns

(* --- inspection --- *)

let events t = Ring.to_list t.ring

let dropped t = Ring.dropped t.ring

let capacity t = Ring.capacity t.ring

let open_spans t = List.length t.stack

let process_names t = List.sort compare t.procs

let thread_names t = List.sort compare t.threads
