(** A minimal JSON tree with a deterministic printer and a strict parser.

    The repository deliberately avoids new dependencies, so the Chrome
    trace exporter and the smoke tests share this tiny implementation.
    Printing is canonical (no whitespace, ["%.17g"] floats, object fields
    in insertion order), which is what makes trace files byte-comparable
    across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact canonical rendering. *)

val to_channel : out_channel -> t -> unit

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] otherwise. *)

val to_list_exn : t -> t list
(** @raise Parse_error when the value is not a [List]. *)

val string_exn : t -> string
(** @raise Parse_error when the value is not a [Str]. *)

val number_exn : t -> float
(** [Int] or [Float] as a float.
    @raise Parse_error otherwise. *)
