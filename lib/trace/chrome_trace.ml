let us_of_ns ns = ns /. 1000.0

let json_of_value = function
  | Event.Int i -> Json.Int i
  | Event.Float f -> Json.Float f
  | Event.Str s -> Json.Str s
  | Event.Bool b -> Json.Bool b

let json_of_args args =
  match args with
  | [] -> []
  | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) args)) ]

let json_of_event (e : Event.t) =
  let common =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str (if e.cat = "" then "sim" else e.cat));
      ("ts", Json.Float (us_of_ns e.ts));
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid);
    ]
  in
  match e.kind with
  | Event.Span dur ->
    Json.Obj
      (common
      @ [ ("ph", Json.Str "X"); ("dur", Json.Float (us_of_ns dur)) ]
      @ json_of_args e.args)
  | Event.Instant ->
    Json.Obj
      (common
      @ [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
      @ json_of_args e.args)

let metadata tracer =
  let proc_meta =
    List.map
      (fun (pid, name) ->
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int pid);
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      (Tracer.process_names tracer)
  in
  let thread_meta =
    List.map
      (fun ((pid, tid), name) ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int pid);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ])
      (Tracer.thread_names tracer)
  in
  proc_meta @ thread_meta

let sorted_events tracer =
  (* The ring stores spans at completion time (children before parents);
     re-order by begin timestamp so viewers and the timeline renderer see
     a monotone stream.  [seq] keeps the order total and deterministic. *)
  List.sort
    (fun (a : Event.t) (b : Event.t) ->
      match compare a.ts b.ts with
      | 0 -> (
        match compare (Event.dur_ns b) (Event.dur_ns a) with
        | 0 -> compare a.seq b.seq
        | c -> c)
      | c -> c)
    (Tracer.events tracer)

let to_json tracer =
  let events = List.map json_of_event (sorted_events tracer) in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata tracer @ events));
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("generator", Json.Str "svagc_trace");
            ("droppedEvents", Json.Int (Tracer.dropped tracer));
            ("capacity", Json.Int (Tracer.capacity tracer));
          ] );
    ]

let to_string tracer = Json.to_string (to_json tracer)

let write_file tracer path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (to_json tracer))
