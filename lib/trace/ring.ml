type 'a t = {
  buf : 'a option array;
  cap : int;
  mutable start : int;  (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity None; cap = capacity; start = 0; len = 0; dropped = 0 }

let capacity t = t.cap

let length t = t.len

let dropped t = t.dropped

let push t x =
  if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    (* Full: overwrite the oldest slot and advance the window. *)
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.cap;
    t.dropped <- t.dropped + 1
  end

let iter f t =
  for i = 0 to t.len - 1 do
    match t.buf.((t.start + i) mod t.cap) with
    | Some x -> f x
    | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0
