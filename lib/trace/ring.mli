(** A bounded ring buffer that drops the *oldest* element on overflow.

    The trace recorder stores completed events here so a long run keeps the
    most recent window of activity instead of growing without bound. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val dropped : 'a t -> int
(** How many elements have been evicted since creation (or [clear]). *)

val push : 'a t -> 'a -> unit
(** Appends; evicts the oldest element when full. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
(** Empties the buffer and resets the dropped counter. *)
