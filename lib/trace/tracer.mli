(** The trace recorder: spans and instant events over simulated time.

    One tracer at a time can be installed as the process-wide current
    recorder ({!start} / {!stop}).  Every recording entry point is a no-op
    while no tracer is installed, so permanently-instrumented code paths
    (GC phases, syscalls, shootdowns) cost one [ref] read when tracing is
    off; hot call sites additionally guard with {!tracing} so argument
    lists are not even allocated.

    Time: the tracer keeps a cursor in simulated nanoseconds.  Span ends
    supply the span's duration (the simulator computes costs rather than
    observing wall time) and move the cursor to [begin + dur]; instants may
    advance the cursor by their own cost so that the events of a compaction
    spread through its span.  Per-JVM drivers re-seed the cursor from their
    own clocks, giving each pid an independent timeline.

    Counters: when a counter source is installed (e.g. the machine's
    {e perf} table), every span snapshot-diffs it and attaches the non-zero
    deltas to the closed span as ["perf.<counter>"] arguments. *)

type t

(* --- lifecycle --- *)

val start : ?capacity:int -> unit -> t
(** Create a tracer with a bounded ring of [capacity] events (default
    65536) and install it as current, replacing any previous one. *)

val stop : unit -> t option
(** Uninstall and return the current tracer, if any. *)

val tracing : unit -> bool

val current : unit -> t option

val with_tracer : ?capacity:int -> (unit -> 'a) -> 'a * t
(** [with_tracer f] runs [f] under a fresh tracer and returns its result
    together with the stopped tracer (also stopped on exceptions). *)

(* --- context --- *)

val set_counter_source : (unit -> (string * int) list) -> unit

val clear_counter_source : unit -> unit

val set_now : float -> unit
(** Re-seed the time cursor (simulated ns). *)

val now : unit -> float
(** [0.] when disabled. *)

val advance : float -> unit

val set_context : ?pid:int -> ?tid:int -> unit -> unit
(** Select the track for subsequent events; omitted coordinates keep
    their current value. *)

val name_process : pid:int -> string -> unit
(** Label a pid track (first registration wins). *)

val name_thread : pid:int -> tid:int -> string -> unit

(* --- recording --- *)

val span_begin :
  ?cat:string -> ?args:(string * Event.value) list -> string -> unit
(** Open a span at the cursor on the current track and snapshot the
    counter source.  Nothing is recorded until the matching {!span_end}. *)

val span_end : ?args:(string * Event.value) list -> dur_ns:float -> unit -> unit
(** Close the innermost open span: records one completed-span event with
    the begin args, these end args and the counter deltas, then sets the
    cursor to [begin + dur_ns].  Ignored when no span is open. *)

val span_abort : unit -> unit
(** Discard the innermost open span without recording (exception paths). *)

val instant :
  ?cat:string ->
  ?tid:int ->
  ?advance_ns:float ->
  ?args:(string * Event.value) list ->
  string ->
  unit
(** Record a point event at the cursor.  [tid] overrides the track for
    this event only (per-core IPIs); [advance_ns] moves the cursor
    afterwards by the event's simulated cost. *)

(* --- inspection (for exporters and tests) --- *)

val events : t -> Event.t list
(** Completed events, oldest first. *)

val dropped : t -> int

val capacity : t -> int

val open_spans : t -> int

val process_names : t -> (int * string) list
(** Sorted by pid. *)

val thread_names : t -> ((int * int) * string) list
(** Sorted by (pid, tid). *)
