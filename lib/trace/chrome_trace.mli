(** Export a recorded trace as Chrome trace-event JSON.

    The output is the "JSON Object Format" understood by Perfetto and
    [chrome://tracing]: a top-level object with a [traceEvents] array of
    complete-span ([ph:"X"]) and instant ([ph:"i"]) events plus
    process/thread-name metadata.  Timestamps are converted from the
    recorder's simulated nanoseconds to the format's microseconds.

    Rendering is canonical (see {!Json}), so two identical simulated runs
    produce byte-identical files — the determinism tests rely on it. *)

val to_json : Tracer.t -> Json.t

val to_string : Tracer.t -> string

val write_file : Tracer.t -> string -> unit
