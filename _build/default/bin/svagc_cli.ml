(* svagc — command-line front end for the SVAGC reproduction.

   `svagc list`                 enumerate experiments and workloads
   `svagc exp fig11 [--quick]`  reproduce one figure/table (or `all`)
   `svagc bench <name> ...`     run one benchmark under chosen collectors
   `svagc threshold`            print the Fig. 10 style break-even sweep *)

open Cmdliner
module Registry = Svagc_experiments.Registry
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Report = Svagc_metrics.Report

let list_cmd =
  let doc = "List available experiments and workloads." in
  let run () =
    Report.section "Experiments";
    List.iter
      (fun e -> Printf.printf "  %-8s %s\n" e.Registry.id e.Registry.title)
      Registry.all;
    Report.section "Workloads";
    List.iter
      (fun w ->
        Printf.printf "  %-16s %-12s %s\n" w.Workload.name w.Workload.suite
          w.Workload.description)
      Svagc_workloads.Spec.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Trimmed suite / fewer steps.")

let exp_cmd =
  let doc = "Reproduce paper experiments by id (or 'all')." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let run quick ids =
    List.iter
      (fun id ->
        if id = "all" then Registry.run_all ~quick ()
        else
          match Registry.find id with
          | Some e -> e.Registry.run ~quick ()
          | None ->
            Printf.eprintf "unknown experiment %S (see `svagc list`)\n" id;
            exit 1)
      ids
  in
  Cmd.v (Cmd.info "exp" ~doc) Term.(const run $ quick_arg $ ids)

let collector_conv =
  let parse = function
    | "svagc" -> Ok Svagc_experiments.Exp_common.Svagc
    | "memmove" | "baseline" -> Ok Svagc_experiments.Exp_common.Lisp2_memmove
    | "parallelgc" -> Ok Svagc_experiments.Exp_common.Parallelgc
    | "shenandoah" -> Ok Svagc_experiments.Exp_common.Shenandoah
    | s -> Error (`Msg (Printf.sprintf "unknown collector %S" s))
  in
  let print ppf k =
    Format.pp_print_string ppf (Svagc_experiments.Exp_common.collector_name k)
  in
  Arg.conv (parse, print)

let bench_cmd =
  let doc = "Run one workload under one or more collectors." in
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let collectors =
    Arg.(
      value
      & opt_all collector_conv
          [
            Svagc_experiments.Exp_common.Svagc;
            Svagc_experiments.Exp_common.Lisp2_memmove;
          ]
      & info [ "c"; "collector" ] ~docv:"COLLECTOR"
          ~doc:"svagc | memmove | parallelgc | shenandoah (repeatable).")
  in
  let heap_factor =
    Arg.(value & opt float 1.2 & info [ "heap-factor" ] ~doc:"Heap over minimum.")
  in
  let steps = Arg.(value & opt int 60 & info [ "steps" ] ~doc:"Mutator steps.") in
  let run workload_name collectors heap_factor steps =
    let workload =
      try Svagc_workloads.Spec.find workload_name
      with Not_found ->
        Printf.eprintf "unknown workload %S (see `svagc list`)\n" workload_name;
        exit 1
    in
    Report.section (Printf.sprintf "%s @ %.1fx min heap" workload_name heap_factor);
    List.iter
      (fun kind ->
        let machine =
          Svagc_experiments.Exp_common.fresh_machine Svagc_vmem.Cost_model.xeon_6130
        in
        let r =
          Runner.run ~heap_factor ~steps ~machine
            ~collector_of:(Svagc_experiments.Exp_common.collector_of kind)
            workload
        in
        Report.subsection (Svagc_experiments.Exp_common.collector_name kind);
        Report.kv "steps" (string_of_int r.Runner.steps);
        Report.kv "full GCs" (string_of_int r.Runner.summary.Svagc_gc.Gc_stats.cycles);
        Report.kv "app time" (Report.ns r.Runner.app_ns);
        Report.kv "GC time" (Report.ns r.Runner.gc_ns);
        Report.kv "avg pause"
          (Report.ns r.Runner.summary.Svagc_gc.Gc_stats.avg_pause_ns);
        Report.kv "max pause"
          (Report.ns r.Runner.summary.Svagc_gc.Gc_stats.max_pause_ns);
        Report.kv "throughput" (Printf.sprintf "%.3f steps/ms" r.Runner.throughput))
      collectors
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ workload_arg $ collectors $ heap_factor $ steps)

let threshold_cmd =
  let doc = "Print the SwapVA/memmove break-even sweep (Fig. 10)." in
  Cmd.v (Cmd.info "threshold" ~doc)
    Term.(const (fun () -> Svagc_experiments.Exp_fig10.run ()) $ const ())

let main =
  let doc = "SVAGC: GC with scalable virtual-address swapping (simulation)" in
  Cmd.group (Cmd.info "svagc" ~version:"1.0.0" ~doc)
    [ list_cmd; exp_cmd; bench_cmd; threshold_cmd ]

let () = exit (Cmd.eval main)
