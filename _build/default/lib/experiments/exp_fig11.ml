(** Fig. 11 — total GC time with and without SwapVA on SVAGC (1.2x minimum
    heap), each bar split into compaction vs all other phases.  Paper
    anchors: GC pause reduced 70.9% on Sparse.large/4 and 97% on
    Sigverify. *)

module Runner = Svagc_workloads.Runner
module Gc_stats = Svagc_gc.Gc_stats
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type row = {
  benchmark : string;
  memmove_compact_ns : float;
  memmove_other_ns : float;
  swapva_compact_ns : float;
  swapva_other_ns : float;
  reduction_pct : float;
}

let measure ~quick =
  List.map
    (fun w ->
      let base = Exp_common.suite_run ~quick Exp_common.Lisp2_memmove ~heap_factor:1.2 w in
      let sva = Exp_common.suite_run ~quick Exp_common.Svagc ~heap_factor:1.2 w in
      let total s =
        s.Runner.summary.Gc_stats.total_compact_ns
        +. s.Runner.summary.Gc_stats.total_other_ns
      in
      {
        benchmark = w.Svagc_workloads.Workload.name;
        memmove_compact_ns = base.Runner.summary.Gc_stats.total_compact_ns;
        memmove_other_ns = base.Runner.summary.Gc_stats.total_other_ns;
        swapva_compact_ns = sva.Runner.summary.Gc_stats.total_compact_ns;
        swapva_other_ns = sva.Runner.summary.Gc_stats.total_other_ns;
        reduction_pct =
          (let b = total base and s = total sva in
           if b > 0.0 then 100.0 *. (b -. s) /. b else 0.0);
      })
    (Exp_common.suite ~quick)

let run ?(quick = false) () =
  Report.section
    "Fig. 11 - GC time -/+ SwapVA on SVAGC at 1.2x min heap (compact | other)";
  let rows = measure ~quick in
  Table.print
    ~headers:
      [
        "benchmark"; "-SwapVA compact"; "-SwapVA other"; "+SwapVA compact";
        "+SwapVA other"; "GC reduction";
      ]
    (List.map
       (fun r ->
         [
           r.benchmark;
           Report.ns r.memmove_compact_ns;
           Report.ns r.memmove_other_ns;
           Report.ns r.swapva_compact_ns;
           Report.ns r.swapva_other_ns;
           Report.pct r.reduction_pct;
         ])
       rows);
  let anchor name =
    match List.find_opt (fun r -> r.benchmark = name) rows with
    | Some r -> Report.pct r.reduction_pct
    | None -> "n/a (quick mode)"
  in
  Report.paper_vs_measured
    [
      ("Sparse.large/4 GC reduction", "70.9%", anchor "Sparse.large/4");
      ("Sigverify GC reduction", "97%", anchor "Sigverify");
    ]
