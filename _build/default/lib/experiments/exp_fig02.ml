(** Fig. 2 — the scalability problem: co-running LRU-cache JVMs under
    ParallelGC (4 GC threads each).  Both GC latency (max and total) and
    application execution time climb steeply with the JVM count. *)

module Report = Svagc_metrics.Report

let measure ?steps () =
  Exp_multi.sweep ~collector:Exp_common.Parallelgc ?steps ()

let run ?(quick = false) () =
  Report.section
    "Fig. 2 - Scalability issue: multi-JVM LRU cache under ParallelGC";
  let points = measure ~steps:(if quick then 20 else 40) () in
  Exp_multi.print_points points;
  let last = List.nth points (List.length points - 1) in
  Report.paper_vs_measured
    [
      ( "app time at 32 JVMs",
        "increases significantly",
        Printf.sprintf "+%.1f%%" last.Exp_multi.app_increase_pct );
      ( "GC time at 32 JVMs",
        "increases significantly",
        Printf.sprintf "+%.1f%%" last.Exp_multi.gc_increase_pct );
    ]
