(** Fig. 12 — average full-GC latency of SVAGC vs Shenandoah and
    ParallelGC at 1.2x (a) and 2x (b) minimum heap.  Paper: SVAGC is
    3.82x / 16.05x better on average at 1.2x, and 2.74x / 13.62x at 2x. *)

module Runner = Svagc_workloads.Runner
module Gc_stats = Svagc_gc.Gc_stats
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let metric r = r.Runner.summary.Gc_stats.avg_pause_ns

let measure_factor ~quick ~heap_factor =
  List.map
    (fun w ->
      let sva = Exp_common.suite_run ~quick Exp_common.Svagc ~heap_factor w in
      let par = Exp_common.suite_run ~quick Exp_common.Parallelgc ~heap_factor w in
      let shen = Exp_common.suite_run ~quick Exp_common.Shenandoah ~heap_factor w in
      (w.Svagc_workloads.Workload.name, shen, par, sva))
    (Exp_common.suite ~quick)

let print_factor ~quick ~heap_factor ~label ~paper_par ~paper_shen =
  Report.subsection label;
  let rows = measure_factor ~quick ~heap_factor in
  Table.print
    ~headers:[ "benchmark"; "Shenandoah"; "ParallelGC"; "SVAGC"; "vs Par"; "vs Shen" ]
    (List.map
       (fun (name, shen, par, sva) ->
         [
           name;
           Report.ns (metric shen);
           Report.ns (metric par);
           Report.ns (metric sva);
           Report.speedup (metric par /. metric sva);
           Report.speedup (metric shen /. metric sva);
         ])
       rows);
  let pairs_par = List.map (fun (_, _, par, sva) -> (par, sva)) rows in
  let pairs_shen = List.map (fun (_, shen, _, sva) -> (shen, sva)) rows in
  let g_par = Exp_common.geomean_ratio pairs_par ~metric in
  let g_shen = Exp_common.geomean_ratio pairs_shen ~metric in
  Report.paper_vs_measured
    [
      ("avg latency gain vs ParallelGC", paper_par, Report.speedup g_par);
      ("avg latency gain vs Shenandoah", paper_shen, Report.speedup g_shen);
    ];
  (g_par, g_shen)

let run ?(quick = false) () =
  Report.section "Fig. 12 - Average full-GC latency vs Shenandoah/ParallelGC";
  let (_ : float * float) =
    print_factor ~quick ~heap_factor:1.2 ~label:"(a) 1.2x minimum heap"
      ~paper_par:"3.82x" ~paper_shen:"16.05x"
  in
  let (_ : float * float) =
    print_factor ~quick ~heap_factor:2.0 ~label:"(b) 2x minimum heap"
      ~paper_par:"2.74x" ~paper_shen:"13.62x"
  in
  ()
