module Runner = Svagc_workloads.Runner
module Gc_stats = Svagc_gc.Gc_stats
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type row = {
  benchmark : string;
  mark_pct : float;
  forward_pct : float;
  adjust_pct : float;
  compact_pct : float;
}

let measure ~quick =
  List.map
    (fun workload ->
      let machine = Exp_common.fresh_machine Svagc_vmem.Cost_model.i5_7600 in
      let steps = if quick then 40 else 80 in
      let r =
        Runner.run ~machine ~steps ~min_gcs:4
          ~collector_of:(Exp_common.collector_of Exp_common.Lisp2_memmove)
          workload
      in
      let sum f = List.fold_left (fun acc c -> acc +. f c) 0.0 r.Runner.cycles in
      let total = sum Gc_stats.pause_ns in
      let pct f = if total > 0.0 then 100.0 *. sum f /. total else 0.0 in
      {
        benchmark = r.Runner.workload;
        mark_pct = pct (fun c -> c.Gc_stats.mark_ns);
        forward_pct = pct (fun c -> c.Gc_stats.forward_ns);
        adjust_pct = pct (fun c -> c.Gc_stats.adjust_ns);
        compact_pct = pct (fun c -> c.Gc_stats.compact_ns);
      })
    [ Svagc_workloads.Fft.large; Svagc_workloads.Sparse.large ]

let run ?(quick = false) () =
  Report.section "Fig. 1 - Full GC phase breakdown (i5-7600, LISP2+memmove)";
  let rows = measure ~quick in
  Table.print
    ~headers:[ "benchmark"; "mark%"; "forward%"; "adjust%"; "compact%" ]
    (List.map
       (fun r ->
         [
           r.benchmark;
           Printf.sprintf "%.2f" r.mark_pct;
           Printf.sprintf "%.2f" r.forward_pct;
           Printf.sprintf "%.2f" r.adjust_pct;
           Printf.sprintf "%.2f" r.compact_pct;
         ])
       rows);
  Report.paper_vs_measured
    (List.map
       (fun r ->
         let paper = if r.benchmark = "FFT.large" then "84.76%" else "79.33%" in
         (r.benchmark ^ " compaction share", paper, Report.pct r.compact_pct))
       rows)
