(** Table II — benchmark configurations: the paper's thread counts and
    heap ranges next to this reproduction's scaled heaps (object *sizes*
    are kept at paper scale; counts are scaled down — DESIGN.md §1). *)

module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let run ?quick:_ () =
  Report.section "Table II - Benchmark configurations";
  Table.print
    ~headers:[ "benchmark"; "suite"; "paper threads"; "paper heap (GiB)"; "sim min heap" ]
    (Svagc_workloads.Spec.table_ii_rows ());
  Report.note
    "runs use 1.2x and 2x of the sim min heap, mirroring the paper's heap \
     factors"
