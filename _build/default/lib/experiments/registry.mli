(** All paper reproductions plus extensions, addressable by id
    ("fig1" ... "table3", "ablation"). *)

type experiment = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> unit;
}

val all : experiment list

val find : string -> experiment option

val run_all : ?quick:bool -> unit -> unit
