(** Fig. 13 — maximum full-GC latency (the pause-sensitive metric).
    Paper: SVAGC beats ParallelGC / Shenandoah by 4.49x / 18.25x at 1.2x
    heap and 3.60x / 12.24x at 2x. *)

module Runner = Svagc_workloads.Runner
module Gc_stats = Svagc_gc.Gc_stats
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let metric r = r.Runner.summary.Gc_stats.max_pause_ns

let print_factor ~quick ~heap_factor ~label ~paper_par ~paper_shen =
  Report.subsection label;
  let rows =
    List.map
      (fun w ->
        let sva = Exp_common.suite_run ~quick Exp_common.Svagc ~heap_factor w in
        let par = Exp_common.suite_run ~quick Exp_common.Parallelgc ~heap_factor w in
        let shen = Exp_common.suite_run ~quick Exp_common.Shenandoah ~heap_factor w in
        (w.Svagc_workloads.Workload.name, shen, par, sva))
      (Exp_common.suite ~quick)
  in
  Table.print
    ~headers:[ "benchmark"; "Shenandoah"; "ParallelGC"; "SVAGC"; "vs Par"; "vs Shen" ]
    (List.map
       (fun (name, shen, par, sva) ->
         [
           name;
           Report.ns (metric shen);
           Report.ns (metric par);
           Report.ns (metric sva);
           Report.speedup (metric par /. metric sva);
           Report.speedup (metric shen /. metric sva);
         ])
       rows);
  let g_par =
    Exp_common.geomean_ratio (List.map (fun (_, _, p, s) -> (p, s)) rows) ~metric
  in
  let g_shen =
    Exp_common.geomean_ratio (List.map (fun (_, sh, _, s) -> (sh, s)) rows) ~metric
  in
  Report.paper_vs_measured
    [
      ("max latency gain vs ParallelGC", paper_par, Report.speedup g_par);
      ("max latency gain vs Shenandoah", paper_shen, Report.speedup g_shen);
    ]

let run ?(quick = false) () =
  Report.section "Fig. 13 - Maximum full-GC latency vs Shenandoah/ParallelGC";
  print_factor ~quick ~heap_factor:1.2 ~label:"(a) 1.2x minimum heap"
    ~paper_par:"4.49x" ~paper_shen:"18.25x";
  print_factor ~quick ~heap_factor:2.0 ~label:"(b) 2x minimum heap"
    ~paper_par:"3.60x" ~paper_shen:"12.24x"
