(** Shared driver for the multi-JVM scalability experiments (Figs. 2 and
    14): J co-running LRU-cache instances on the 32-core machine, sharing
    copy bandwidth. *)

type point = {
  instances : int;
  avg_app_ns : float;
  avg_gc_total_ns : float;
  max_gc_pause_ns : float;
  app_increase_pct : float;  (** vs the 1-instance point *)
  gc_increase_pct : float;
}

val sweep :
  collector:Exp_common.collector_kind -> ?steps:int -> ?instances:int list ->
  unit -> point list

val print_points : point list -> unit
