(** Fig. 8 — benefits of PMD caching (i5-7600).

    Multi-page swaps with and without the cached-leaf optimization.
    Paper: up to 52.48% improvement, 36.73% on average for multi-page
    copies. *)

type point = {
  pages : int;
  uncached_ns : float;
  cached_ns : float;
  improvement_pct : float;
}

val measure : unit -> point list

val run : ?quick:bool -> unit -> unit
