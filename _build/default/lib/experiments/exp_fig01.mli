(** Fig. 1 — execution-time breakdown of the full-GC phases.

    Paper: on the i5-7600, compaction accounts for 79.33% of full-GC time
    in Sparse.large and 84.76% in FFT.large under the adapted LISP2
    prototype (memmove). *)

type row = {
  benchmark : string;
  mark_pct : float;
  forward_pct : float;
  adjust_pct : float;
  compact_pct : float;
}

val measure : quick:bool -> row list

val run : ?quick:bool -> unit -> unit
