(** Fig. 6 — aggregated vs separated SwapVA calls (i5-7600).

    N small swap requests issued as N syscalls versus one aggregated
    syscall; the benefit shrinks as the per-request page count grows and
    the syscall crossing amortizes naturally. *)

type point = {
  pages_per_request : int;
  separated_ns : float;
  aggregated_ns : float;
  improvement_pct : float;
}

val measure : ?requests:int -> unit -> point list

val run : ?quick:bool -> unit -> unit
