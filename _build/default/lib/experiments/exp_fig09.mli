(** Fig. 9 — multi-core optimizations to SwapVA (Xeon 6130).

    A compaction-style storm of 100 live swappable objects: the
    unoptimized kernel broadcasts a TLB shootdown per SwapVA call, while
    Algorithm 4 pins the collector, broadcasts once per cycle and flushes
    locally per call.  Eq. 2 predicts the IPI count drops from l*c to c
    (gain = l = 100). *)

type point = {
  cores : int;
  unoptimized_ns : float;
  optimized_ns : float;
  unoptimized_ipis : int;
  optimized_ipis : int;
}

val measure : ?objects:int -> ?pages_per_object:int -> unit -> point list

val run : ?quick:bool -> unit -> unit
