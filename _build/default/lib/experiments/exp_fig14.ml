(** Fig. 14 — SVAGC's multi-JVM scalability on the same LRU-cache co-run
    as Fig. 2.  Paper: going from 1 to 32 JVMs the application time surges
    327.5% while the GC time grows only 52% — SwapVA compaction needs
    almost no memory bandwidth, so it dodges the contention that the
    application (and byte-copy collectors) suffer. *)

module Report = Svagc_metrics.Report

let measure ?steps () = Exp_multi.sweep ~collector:Exp_common.Svagc ?steps ()

let run ?(quick = false) () =
  Report.section "Fig. 14 - SVAGC scalability, single vs multi-JVM (32 cores)";
  let points = measure ~steps:(if quick then 20 else 40) () in
  Exp_multi.print_points points;
  let last = List.nth points (List.length points - 1) in
  Report.paper_vs_measured
    [
      ( "app time increase at 32 JVMs",
        "+327.5%",
        Printf.sprintf "+%.1f%%" last.Exp_multi.app_increase_pct );
      ( "GC time increase at 32 JVMs",
        "+52%",
        Printf.sprintf "+%.1f%%" last.Exp_multi.gc_increase_pct );
      ( "GC grows much slower than app",
        "yes",
        (if
           last.Exp_multi.gc_increase_pct
           < last.Exp_multi.app_increase_pct /. 2.0
         then "yes"
         else "no") );
    ]
