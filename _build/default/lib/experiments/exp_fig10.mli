(** Fig. 10 — the SwapVA/memmove break-even threshold on two machines.

    Sweeps the object size in pages and compares a hot memmove against one
    SwapVA call (single-threaded driver).  The paper finds ~10 pages on
    the Xeon 6130 and uses that as [Threshold_Swapping]; the 6240's faster
    CPU and memory shift the crossover. *)

type point = {
  pages : int;
  memmove_ns : float;
  swapva_ns : float;
}

type sweep = {
  machine : string;
  points : point list;
  crossover_pages : int option;  (** first size where SwapVA wins *)
}

val measure : unit -> sweep list
(** One sweep per machine: Xeon 6130 (Fig. 10a) and Xeon 6240 (10b). *)

val run : ?quick:bool -> unit -> unit
