(** Fig. 15 — application throughput of SVAGC relative to the same engine
    without SwapVA, at 1.2x minimum heap.  Paper: improvements range from
    15.2% (CryptoAES) to 86.9% (Sparse.large), tracking how
    memory-intensive each benchmark is. *)

module Runner = Svagc_workloads.Runner
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type row = {
  benchmark : string;
  baseline_throughput : float;
  svagc_throughput : float;
  improvement_pct : float;
}

let measure ~quick =
  List.map
    (fun w ->
      let base = Exp_common.suite_run ~quick Exp_common.Lisp2_memmove ~heap_factor:1.2 w in
      let sva = Exp_common.suite_run ~quick Exp_common.Svagc ~heap_factor:1.2 w in
      {
        benchmark = w.Svagc_workloads.Workload.name;
        baseline_throughput = base.Runner.throughput;
        svagc_throughput = sva.Runner.throughput;
        improvement_pct =
          Svagc_util.Num_util.pct_change ~baseline:base.Runner.throughput
            ~value:sva.Runner.throughput;
      })
    (Exp_common.suite ~quick)

let run ?(quick = false) () =
  Report.section "Fig. 15 - Application throughput of SVAGC at 1.2x min heap";
  let rows = measure ~quick in
  Table.print
    ~headers:[ "benchmark"; "-SwapVA (steps/ms)"; "+SwapVA (steps/ms)"; "improvement" ]
    (List.map
       (fun r ->
         [
           r.benchmark;
           Printf.sprintf "%.3f" r.baseline_throughput;
           Printf.sprintf "%.3f" r.svagc_throughput;
           Report.pct r.improvement_pct;
         ])
       rows);
  let find name =
    match List.find_opt (fun r -> r.benchmark = name) rows with
    | Some r -> Report.pct r.improvement_pct
    | None -> "n/a (quick mode)"
  in
  Report.paper_vs_measured
    [
      ("CryptoAES improvement (suite min)", "15.2%", find "CryptoAES");
      ("Sparse.large improvement (suite max)", "86.9%", find "Sparse.large");
    ]
