(** Table III — cache and DTLB miss rates with memmove vs SwapVA
    compaction at 1.2x (2x) minimum heap.

    The instrumented runs push the mutator's accesses and the byte-copy
    GC's streams through the machine's LLC and per-core TLB models;
    PTE-swapped moves touch no data lines, so SwapVA pollutes neither.
    Paper geomeans: cache misses 69.32% -> 65.71% (1.2x) and DTLB misses
    1.28% -> 0.52%. *)

open Svagc_vmem
module Runner = Svagc_workloads.Runner
module Jvm = Svagc_core.Jvm
module Workload = Svagc_workloads.Workload
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

type cellpair = {
  cache_pct : float;
  dtlb_pct : float;
}

type row = {
  benchmark : string;
  memmove_12 : cellpair;
  swapva_12 : cellpair;
  memmove_20 : cellpair;
  swapva_20 : cellpair;
}

let measure_core = 0

let collector_of_measured ~swapva heap =
  if swapva then
    let cfg = Svagc_core.Config.default in
    let mover = Svagc_core.Move_object.mover ~measure_core cfg in
    Svagc_gc.Lisp2.collector
      (Svagc_gc.Lisp2.config ~label:"svagc-measured"
         ~threads:cfg.Svagc_core.Config.gc_threads ~mover ())
      heap
  else
    Svagc_gc.Lisp2.collector
      (Svagc_gc.Lisp2.config ~label:"memmove-measured" ~threads:4
         ~mover:(Svagc_gc.Compact.memmove_mover_measured ~core:measure_core)
         ())
      heap

let instrumented_run ~swapva ~heap_factor workload =
  let machine = Machine.create ~phys_mib:1024 Cost_model.xeon_6130 in
  let jvm =
    Runner.make_jvm ~heap_factor ~machine
      ~collector_of:(collector_of_measured ~swapva) workload
  in
  Jvm.set_measure_core jvm (Some measure_core);
  let rng = Svagc_util.Rng.create ~seed:11 in
  let step = workload.Workload.setup jvm rng in
  (* Warm the models on the initial population, then measure steady
     state. *)
  Cache_sim.reset_stats machine.Machine.llc;
  Tlb.reset_stats (Machine.core machine measure_core).Machine.tlb;
  let executed = ref 0 in
  while !executed < 30 || (Jvm.gc_count jvm < 3 && !executed < 400) do
    step ();
    incr executed
  done;
  Gc.full_major ();
  let cache_pct = Cache_sim.miss_rate machine.Machine.llc in
  let tlb_stats = Tlb.stats (Machine.core machine measure_core).Machine.tlb in
  let dtlb_pct =
    let total = tlb_stats.Tlb.hits + tlb_stats.Tlb.misses in
    if total = 0 then 0.0
    else 100.0 *. float_of_int tlb_stats.Tlb.misses /. float_of_int total
  in
  { cache_pct; dtlb_pct }

let measure ~quick =
  List.map
    (fun w ->
      {
        benchmark = w.Workload.name;
        memmove_12 = instrumented_run ~swapva:false ~heap_factor:1.2 w;
        swapva_12 = instrumented_run ~swapva:true ~heap_factor:1.2 w;
        memmove_20 = instrumented_run ~swapva:false ~heap_factor:2.0 w;
        swapva_20 = instrumented_run ~swapva:true ~heap_factor:2.0 w;
      })
    (Exp_common.suite ~quick)

let geomean_of rows f =
  Svagc_util.Num_util.geomean (List.map f rows)

let run ?(quick = false) () =
  Report.section
    "Table III - Cache & DTLB misses at 1.2x (2x) min heap, memmove vs SwapVA";
  let rows = measure ~quick in
  Table.print
    ~headers:
      [ "benchmark"; "cache% memmove"; "cache% swapva"; "dtlb% memmove";
        "dtlb% swapva" ]
    (List.map
       (fun r ->
         [
           r.benchmark;
           Printf.sprintf "%.2f(%.2f)" r.memmove_12.cache_pct r.memmove_20.cache_pct;
           Printf.sprintf "%.2f(%.2f)" r.swapva_12.cache_pct r.swapva_20.cache_pct;
           Printf.sprintf "%.3f(%.3f)" r.memmove_12.dtlb_pct r.memmove_20.dtlb_pct;
           Printf.sprintf "%.3f(%.3f)" r.swapva_12.dtlb_pct r.swapva_20.dtlb_pct;
         ])
       rows);
  let g_cache_mm = geomean_of rows (fun r -> r.memmove_12.cache_pct) in
  let g_cache_sv = geomean_of rows (fun r -> r.swapva_12.cache_pct) in
  let g_dtlb_mm = geomean_of rows (fun r -> r.memmove_12.dtlb_pct) in
  let g_dtlb_sv = geomean_of rows (fun r -> r.swapva_12.dtlb_pct) in
  Report.paper_vs_measured
    [
      ( "geomean cache misses (1.2x)",
        "69.32% -> 65.71%",
        Printf.sprintf "%.2f%% -> %.2f%%" g_cache_mm g_cache_sv );
      ( "geomean DTLB misses (1.2x)",
        "1.28% -> 0.52%",
        Printf.sprintf "%.3f%% -> %.3f%%" g_dtlb_mm g_dtlb_sv );
      ( "SwapVA pollutes less",
        "yes",
        if g_cache_sv <= g_cache_mm && g_dtlb_sv <= g_dtlb_mm then "yes" else "mixed" );
    ]
