lib/experiments/exp_common.ml: Cost_model Hashtbl List Machine Svagc_core Svagc_gc Svagc_util Svagc_vmem Svagc_workloads
