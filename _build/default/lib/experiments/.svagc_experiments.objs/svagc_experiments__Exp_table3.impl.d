lib/experiments/exp_table3.ml: Cache_sim Cost_model Exp_common Gc List Machine Printf Svagc_core Svagc_gc Svagc_metrics Svagc_util Svagc_vmem Svagc_workloads Tlb
