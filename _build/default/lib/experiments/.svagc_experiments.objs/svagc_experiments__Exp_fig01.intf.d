lib/experiments/exp_fig01.mli:
