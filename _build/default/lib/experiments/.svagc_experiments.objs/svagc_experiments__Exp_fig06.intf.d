lib/experiments/exp_fig06.mli:
