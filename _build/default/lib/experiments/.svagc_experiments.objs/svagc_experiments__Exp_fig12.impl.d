lib/experiments/exp_fig12.ml: Exp_common List Svagc_gc Svagc_metrics Svagc_workloads
