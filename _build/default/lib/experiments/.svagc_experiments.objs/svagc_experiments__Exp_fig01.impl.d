lib/experiments/exp_fig01.ml: Exp_common List Printf Svagc_gc Svagc_metrics Svagc_vmem Svagc_workloads
