lib/experiments/exp_multi.ml: Array Cost_model Exp_common Float Gc List Machine Printf Svagc_core Svagc_gc Svagc_metrics Svagc_util Svagc_vmem Svagc_workloads
