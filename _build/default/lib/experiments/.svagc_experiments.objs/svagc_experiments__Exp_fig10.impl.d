lib/experiments/exp_fig10.ml: Addr Address_space Cost_model List Machine Option Printf Svagc_kernel Svagc_metrics Svagc_vmem
