lib/experiments/exp_common.mli: Svagc_gc Svagc_heap Svagc_vmem Svagc_workloads
