lib/experiments/exp_fig13.ml: Exp_common List Svagc_gc Svagc_metrics Svagc_workloads
