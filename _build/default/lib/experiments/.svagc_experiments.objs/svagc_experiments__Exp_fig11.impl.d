lib/experiments/exp_fig11.ml: Exp_common List Svagc_gc Svagc_metrics Svagc_workloads
