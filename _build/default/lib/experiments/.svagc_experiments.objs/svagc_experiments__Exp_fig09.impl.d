lib/experiments/exp_fig09.ml: Addr Address_space Cost_model List Machine Perf Printf Svagc_kernel Svagc_metrics Svagc_vmem
