lib/experiments/exp_multi.mli: Exp_common
