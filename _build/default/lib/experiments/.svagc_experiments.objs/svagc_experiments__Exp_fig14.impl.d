lib/experiments/exp_fig14.ml: Exp_common Exp_multi List Printf Svagc_metrics
