lib/experiments/exp_table2.ml: Svagc_metrics Svagc_workloads
