lib/experiments/exp_fig02.ml: Exp_common Exp_multi List Printf Svagc_metrics
