lib/experiments/exp_fig09.mli:
