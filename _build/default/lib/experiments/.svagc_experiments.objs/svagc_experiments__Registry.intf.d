lib/experiments/registry.mli:
