lib/experiments/exp_fig08.ml: Address_space Cost_model Float List Machine Svagc_kernel Svagc_metrics Svagc_vmem
