lib/experiments/exp_fig15.ml: Exp_common List Printf Svagc_metrics Svagc_util Svagc_workloads
