lib/experiments/exp_extensions.ml: Addr Array Cost_model Exp_common Machine Printf Svagc_core Svagc_gc Svagc_heap Svagc_kernel Svagc_metrics Svagc_util Svagc_vmem Svagc_workloads
