lib/experiments/exp_ablation.ml: Addr Address_space Cost_model Exp_common Gc List Machine Printf Svagc_core Svagc_kernel Svagc_metrics Svagc_util Svagc_vmem Svagc_workloads
