lib/experiments/exp_fig08.mli:
