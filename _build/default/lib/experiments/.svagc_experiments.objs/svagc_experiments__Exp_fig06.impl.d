lib/experiments/exp_fig06.ml: Addr Address_space Cost_model List Machine Printf Svagc_kernel Svagc_metrics Svagc_vmem
