(** Fig. 16 — application throughput of SVAGC vs ParallelGC and
    Shenandoah.  Paper: SVAGC wins by an average of 30.95% / 37.27% at
    1.2x minimum heap, dropping to 15.26% / 16.79% at 2x — the larger the
    heap, the rarer the costly full GCs. *)

module Runner = Svagc_workloads.Runner
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let print_factor ~quick ~heap_factor ~label ~paper_par ~paper_shen =
  Report.subsection label;
  let rows =
    List.map
      (fun w ->
        let sva = Exp_common.suite_run ~quick Exp_common.Svagc ~heap_factor w in
        let par = Exp_common.suite_run ~quick Exp_common.Parallelgc ~heap_factor w in
        let shen = Exp_common.suite_run ~quick Exp_common.Shenandoah ~heap_factor w in
        (w.Svagc_workloads.Workload.name, shen, par, sva))
      (Exp_common.suite ~quick)
  in
  Table.print
    ~headers:[ "benchmark"; "Shen t/ms"; "Par t/ms"; "SVAGC t/ms"; "vs Par"; "vs Shen" ]
    (List.map
       (fun (name, shen, par, sva) ->
         [
           name;
           Printf.sprintf "%.3f" shen.Runner.throughput;
           Printf.sprintf "%.3f" par.Runner.throughput;
           Printf.sprintf "%.3f" sva.Runner.throughput;
           Report.pct
             (Svagc_util.Num_util.pct_change ~baseline:par.Runner.throughput
                ~value:sva.Runner.throughput);
           Report.pct
             (Svagc_util.Num_util.pct_change ~baseline:shen.Runner.throughput
                ~value:sva.Runner.throughput);
         ])
       rows);
  let avg f =
    let xs = List.map f rows in
    List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let avg_par =
    avg (fun (_, _, par, sva) ->
        Svagc_util.Num_util.pct_change ~baseline:par.Runner.throughput
          ~value:sva.Runner.throughput)
  in
  let avg_shen =
    avg (fun (_, shen, _, sva) ->
        Svagc_util.Num_util.pct_change ~baseline:shen.Runner.throughput
          ~value:sva.Runner.throughput)
  in
  Report.paper_vs_measured
    [
      ("avg throughput gain vs ParallelGC", paper_par, Report.pct avg_par);
      ("avg throughput gain vs Shenandoah", paper_shen, Report.pct avg_shen);
    ]

let run ?(quick = false) () =
  Report.section "Fig. 16 - Throughput of SVAGC vs Shenandoah/ParallelGC";
  print_factor ~quick ~heap_factor:1.2 ~label:"(a) 1.2x minimum heap"
    ~paper_par:"30.95%" ~paper_shen:"37.27%";
  print_factor ~quick ~heap_factor:2.0 ~label:"(b) 2x minimum heap"
    ~paper_par:"15.26%" ~paper_shen:"16.79%"
