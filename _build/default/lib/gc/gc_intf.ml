open Svagc_heap
module Vec = Svagc_util.Vec
module Machine = Svagc_vmem.Machine
module Perf = Svagc_vmem.Perf

type t = {
  name : string;
  heap : Heap.t;
  run_cycle : unit -> Gc_stats.cycle;
  history : Gc_stats.cycle Vec.t;
}

let make ~name heap run_cycle = { name; heap; run_cycle; history = Vec.create () }

let name t = t.name

let heap t = t.heap

let collect t =
  let cycle = t.run_cycle () in
  Vec.push t.history cycle;
  let perf = (Svagc_kernel.Process.machine (Heap.proc t.heap)).Machine.perf in
  perf.Perf.gc_cycles <- perf.Perf.gc_cycles + 1;
  cycle

let cycles t = Vec.to_list t.history

let summary t = Gc_stats.summarize (cycles t)

let reset_history t = Vec.clear t.history
