open Svagc_heap
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model

let run heap ~threads ~live =
  let machine = Svagc_kernel.Process.machine (Heap.proc heap) in
  let cost = machine.Machine.cost in
  let costs =
    List.rev_map
      (fun obj ->
        let refs = obj.Obj_model.refs in
        Array.iteri
          (fun i addr ->
            if addr <> 0 then
              match Heap.object_at heap addr with
              | Some target ->
                if not target.Obj_model.marked then
                  invalid_arg "Adjust.run: live object references a dead one";
                refs.(i) <- target.Obj_model.forward
              | None ->
                invalid_arg
                  (Printf.sprintf "Adjust.run: dangling reference 0x%x" addr))
          refs;
        cost.Cost_model.adjust_obj_ns
        +. (float_of_int (Array.length refs) *. cost.Cost_model.ref_scan_ns))
      live
  in
  Svagc_par.Work_steal.makespan ~threads ~steal_ns:cost.Cost_model.steal_ns
    ~barrier_ns:cost.Cost_model.barrier_ns (Array.of_list costs)
