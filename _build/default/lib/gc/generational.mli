(** A generational heap with SwapVA-accelerated minor collections — the
    "Minor (copying)" row of the paper's Table I.

    The young space is a bump-allocated nursery; a minor collection copies
    every reachable young object into the old space and resets the
    nursery.  Young and old occupy disjoint address ranges, so:

    - plain SwapVA applies (the ranges never overlap — the Table I "-" for
      the overlapping optimization),
    - copies of one minor cycle all happen together, so aggregation
      applies,
    - PMD caching applies as always.

    Old-to-young references are found by scanning old objects' reference
    slots (a remembered set / card table is modeled as a scan cost; the
    set of discovered roots is exact).  Old-space exhaustion triggers a
    full LISP2 collection of the old space through any {!Compact.mover}. *)

open Svagc_heap

type t

type minor_stats = {
  pause_ns : float;
  promoted_objects : int;
  promoted_bytes : int;
  swapped_objects : int;  (** promoted via SwapVA *)
  reclaimed_bytes : int;
}

val create :
  Svagc_kernel.Process.t ->
  ?threshold_pages:int ->
  young_bytes:int ->
  old_bytes:int ->
  unit ->
  t

val young : t -> Heap.t

val old_space : t -> Heap.t

exception Out_of_memory

val alloc : t -> size:int -> n_refs:int -> cls:int -> Obj_model.t
(** Allocate in the nursery; a full nursery triggers a minor collection
    (and, if promotion fills the old space, a full collection).
    @raise Out_of_memory when even that does not help. *)

val add_root : t -> Obj_model.t -> unit
(** Root an object wherever it currently lives. *)

val remove_root : t -> Obj_model.t -> unit

val set_ref : t -> Obj_model.t -> slot:int -> Obj_model.t option -> unit

val deref : t -> Obj_model.t -> slot:int -> Obj_model.t option
(** Resolves across both spaces. *)

val minor : t -> mover:Compact.mover -> minor_stats
(** One minor collection: trace the nursery from its roots plus the
    old-to-young references, promote survivors (moved through [mover]:
    SwapVA for page-aligned large objects, memmove otherwise), reset the
    nursery. *)

val full : t -> mover:Compact.mover -> Gc_stats.cycle
(** Full LISP2 collection of the old space. *)

val minors : t -> minor_stats list

val fulls : t -> Gc_stats.cycle list
