(** A collector bound to a heap, with its cycle history. *)

open Svagc_heap

type t

val make : name:string -> Heap.t -> (unit -> Gc_stats.cycle) -> t

val name : t -> string

val heap : t -> Heap.t

val collect : t -> Gc_stats.cycle
(** Run one full cycle, record it in the history and in the machine's
    perf counters. *)

val cycles : t -> Gc_stats.cycle list
(** Oldest first. *)

val summary : t -> Gc_stats.summary

val reset_history : t -> unit
