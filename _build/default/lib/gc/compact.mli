(** Phase IV — compaction.

    Executes the move plan produced by phase II, in ascending address
    order (the sliding invariant), through a pluggable {!mover}.  The
    baseline mover copies bytes; lib/core provides the SwapVA mover
    implementing Algorithm 3's [MoveObject] and the Algorithm 4 pinned
    cycle.  Physical execution is sequential for determinism; phase time
    is the work-stealing makespan of the per-object costs, plus whatever
    fixed prologue/epilogue the mover charges (paid once, off the
    parallel part). *)

open Svagc_heap

type entry = {
  obj : Obj_model.t;
  src : int;
  dst : int;
  len : int;
}

type move_outcome = {
  cost_ns : float;
  swapped : bool;  (** true when the move went through SwapVA *)
}

type mover = {
  mover_name : string;
  prologue : Heap.t -> float;
      (** charged once per cycle before any move (Algorithm 4 lines 2-5) *)
  move_entries : Heap.t -> entry list -> move_outcome list;
      (** perform the moves in the given order *)
  epilogue : Heap.t -> float;  (** e.g. unpin *)
}

type result = {
  phase_ns : float;
  moved_objects : int;
  swapped_objects : int;
}

val memmove_mover : mover
(** The paper's baseline: every move is a cold byte copy. *)

val memmove_mover_measured : core:int -> mover
(** Same, but every copied line goes through the machine's cache model and
    the page translations through [core]'s TLB (Table III). *)

val run :
  Heap.t -> threads:int -> mover:mover -> live:Obj_model.t list -> new_top:int ->
  result
(** Moves objects to their forwarding addresses, prunes dead objects,
    updates the address index and the heap top, and clears mark bits.
    [live] must be in ascending address order (as returned by
    {!Forward.run}). *)
