let collector ?(threads = 4) ?(concurrent_mark_fraction = 0.0) heap =
  let cfg =
    Lisp2.config ~label:"shenandoah" ~threads ~compact_threads:1
      ~concurrent_mark_fraction ()
  in
  Lisp2.collector cfg heap
