(** The four-phase LISP2 mark-compact full GC (§II of the paper), with
    parallelized phases and a pluggable compaction mover.

    Every collector in this repository is an instance of this engine:
    - baseline "Epsilon + parallel LISP2 (memmove)": {!Compact.memmove_mover}
    - SVAGC: the SwapVA mover from [Svagc_core.Move_object]
    - ParallelGC / Shenandoah models: see [Parallel_gc] / [Shenandoah]. *)

open Svagc_heap

type config = {
  label : string;
  threads : int;  (** GC threads for mark/forward/adjust *)
  compact_threads : int;  (** copy-phase threads (Shenandoah models 1) *)
  mover : Compact.mover;
  concurrent_mark_fraction : float;
      (** share of the mark phase that runs concurrently with the app
          (0 for stop-the-world collectors) *)
}

val config :
  ?label:string ->
  ?threads:int ->
  ?compact_threads:int ->
  ?mover:Compact.mover ->
  ?concurrent_mark_fraction:float ->
  unit ->
  config
(** Defaults: 4 threads, same compact threads, memmove mover, fully STW. *)

val collect : config -> Heap.t -> Gc_stats.cycle
(** One full cycle: mark, forward, adjust, compact. *)

val collector : config -> Heap.t -> Gc_intf.t
