(** A semispace evacuation collector — the "Concurrent (evacuation,
    relocation)" row of the paper's Table I.

    Live objects are evacuated from the active half of the heap into the
    idle half (always-disjoint ranges), then the halves flip.  Most of the
    cycle's work runs concurrently with the application, ZGC/Shenandoah
    style; only brief init/final pauses stop the world.  Per Table I:

    - SwapVA applies (each above-threshold object is relocated by one
      PTE-swap call),
    - the overlapping optimization never applies (from- and to-space share
      no addresses — asserted via perf counters in the tests),
    - aggregation is not effective: relocations are issued independently
      as the concurrent collector encounters objects, so each SwapVA call
      stands alone (the collector is configured with batching off). *)

open Svagc_heap

type t

type cycle_stats = {
  pause_ns : float;  (** init + final stop-the-world slices *)
  concurrent_ns : float;  (** work overlapped with the application *)
  evacuated_objects : int;
  swapped_objects : int;
  reclaimed_bytes : int;
}

val create :
  Svagc_kernel.Process.t ->
  ?threshold_pages:int ->
  ?concurrent_fraction:float ->
  ?threads:int ->
  space_bytes:int ->
  unit ->
  t
(** Two [space_bytes] halves.  [concurrent_fraction] (default 0.9) of the
    mark and evacuation work is charged off-pause. *)

val heap : t -> Heap.t

exception Out_of_memory

val alloc : t -> size:int -> n_refs:int -> cls:int -> Obj_model.t
(** Bump allocation in the active half; exhaustion triggers a cycle.
    @raise Out_of_memory when the survivors themselves overflow a half. *)

val collect : t -> mover:Compact.mover -> cycle_stats
(** Evacuate the active half into the idle one and flip. *)

val cycles : t -> cycle_stats list

val active_base : t -> int
(** Start of the half currently being allocated into (for tests). *)
