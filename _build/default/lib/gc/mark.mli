(** Phase I — marking.

    Depth-first traversal from the roots setting the mark bit of every
    reachable object.  Cost per visited object is one dependent memory
    access (graph walks are cache-hostile) plus one scan per reference
    slot; the phase time is the work-stealing makespan across the GC
    threads. *)

open Svagc_heap

val run : Heap.t -> threads:int -> float
(** Marks reachable objects in place and returns the phase time in ns.
    All mark bits are cleared first. *)

val live_objects : Heap.t -> Obj_model.t list
(** Marked objects, in arbitrary order (valid after {!run}). *)
