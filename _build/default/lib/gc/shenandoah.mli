(** The Shenandoah-style baseline.

    Modeled by the pause structure the paper measures for its full
    collections (§V.A).  OpenJDK Shenandoah degenerates to a fully
    stop-the-world cycle when it must run a *full* GC — and the paper's
    comparison is full-GC latency — so by default nothing is concurrent
    here; what distinguishes the model is that the copy phase "does not
    utilize the work-stealing mechanism and parallelism": it runs on a
    single thread, which is why its full-GC pauses on large-object heaps
    are the worst of the three collectors.  [concurrent_mark_fraction]
    can be raised to model the normal (non-degenerated) concurrent
    cycles. *)

open Svagc_heap

val collector : ?threads:int -> ?concurrent_mark_fraction:float -> Heap.t -> Gc_intf.t
(** Defaults: 4 marking threads, fully stop-the-world (degenerated/full
    cycle), single-threaded compaction. *)
