let collector heap =
  Gc_intf.make ~name:"epsilon" heap (fun () -> Gc_stats.empty_cycle)
