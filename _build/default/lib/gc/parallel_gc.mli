(** The ParallelGC baseline: a throughput-oriented stop-the-world collector
    whose full GC runs all four LISP2 phases in parallel with byte-copy
    compaction (the cost structure the paper attributes to OpenJDK's
    ParallelGC full collections). *)

open Svagc_heap

val collector : ?threads:int -> Heap.t -> Gc_intf.t
(** [threads] defaults to 4 — the paper tunes [GCThreadsCount] to 4 in the
    multi-JVM experiments. *)
