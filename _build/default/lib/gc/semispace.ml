open Svagc_heap
module Addr = Svagc_vmem.Addr
module Machine = Svagc_vmem.Machine
module Cost_model = Svagc_vmem.Cost_model
module Vec = Svagc_util.Vec
module Process = Svagc_kernel.Process

type t = {
  proc : Process.t;
  heap : Heap.t;
  space_bytes : int;
  concurrent_fraction : float;
  threads : int;
  mutable low_active : bool;
  mutable cycles : cycle_stats list;
}

and cycle_stats = {
  pause_ns : float;
  concurrent_ns : float;
  evacuated_objects : int;
  swapped_objects : int;
  reclaimed_bytes : int;
}

exception Out_of_memory

let create proc ?(threshold_pages = 10) ?(concurrent_fraction = 0.9)
    ?(threads = 4) ~space_bytes () =
  if concurrent_fraction < 0.0 || concurrent_fraction > 1.0 then
    invalid_arg "Semispace.create: fraction out of range";
  let heap =
    Heap.create proc ~threshold_pages ~size_bytes:(2 * Addr.align_up space_bytes)
      ()
  in
  {
    proc;
    heap;
    space_bytes = Addr.align_up space_bytes;
    concurrent_fraction;
    threads;
    low_active = true;
    cycles = [];
  }

let heap t = t.heap
let cycles t = List.rev t.cycles

let active_base t =
  if t.low_active then Heap.base t.heap else Heap.base t.heap + t.space_bytes

let active_limit t = active_base t + t.space_bytes

let cost t = (Process.machine t.proc).Machine.cost

let makespan t costs =
  Svagc_par.Work_steal.makespan ~threads:t.threads
    ~steal_ns:(cost t).Cost_model.steal_ns
    ~barrier_ns:(cost t).Cost_model.barrier_ns (Array.of_list costs)

let mark t =
  Vec.iter (fun o -> o.Obj_model.marked <- false) (Heap.objects t.heap);
  let costs = Vec.create () in
  let stack = Vec.create () in
  Heap.iter_roots t.heap (fun o -> Vec.push stack o);
  let rec drain () =
    match Vec.pop stack with
    | None -> ()
    | Some o ->
      if not o.Obj_model.marked then begin
        o.Obj_model.marked <- true;
        Vec.push costs
          ((cost t).Cost_model.mark_obj_ns
          +. float_of_int (Array.length o.Obj_model.refs)
             *. (cost t).Cost_model.ref_scan_ns);
        Array.iter
          (fun addr ->
            if addr <> 0 then
              match Heap.object_at t.heap addr with
              | Some target ->
                if not target.Obj_model.marked then Vec.push stack target
              | None -> invalid_arg "Semispace: dangling reference")
          o.Obj_model.refs
      end;
      drain ()
  in
  drain ();
  makespan t (Vec.to_list costs)

let collect t ~mover =
  let used_before = Heap.top t.heap - active_base t in
  let mark_ns = mark t in
  Heap.sort_objects t.heap;
  let live =
    Vec.fold_left
      (fun acc o -> if o.Obj_model.marked then o :: acc else acc)
      [] (Heap.objects t.heap)
    |> List.rev
  in
  (* To-space placement: bump from the idle half's base, page-aligning
     swappable objects (same Algorithm 3 arithmetic). *)
  let to_base =
    if t.low_active then Heap.base t.heap + t.space_bytes else Heap.base t.heap
  in
  let threshold = Heap.threshold_pages t.heap in
  let top = ref to_base in
  let forward = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let align a =
        if Obj_model.is_large o ~threshold_pages:threshold then Addr.align_up a
        else a
      in
      top := align !top;
      o.Obj_model.forward <- !top;
      Hashtbl.replace forward o.Obj_model.addr !top;
      top := align (!top + o.Obj_model.size))
    live;
  if !top > to_base + t.space_bytes then raise Out_of_memory;
  Heap.ensure_mapped_to t.heap (Addr.align_up !top);
  (* Evacuate: from- and to-space are disjoint by construction, so the
     Algorithm 2 path can never fire.  Each relocation is an independent
     call (no aggregation), as in a concurrent collector. *)
  let entries =
    List.map
      (fun o ->
        { Compact.obj = o; src = o.Obj_model.addr; dst = o.Obj_model.forward;
          len = o.Obj_model.size })
      live
  in
  let fixed = mover.Compact.prologue t.heap in
  let outcomes = mover.Compact.move_entries t.heap entries in
  let fixed = fixed +. mover.Compact.epilogue t.heap in
  let evac_ns = makespan t (List.map (fun o -> o.Compact.cost_ns) outcomes) +. fixed in
  let swapped_objects =
    List.fold_left (fun n o -> if o.Compact.swapped then n + 1 else n) 0 outcomes
  in
  (* Commit addresses and references. *)
  let adjust_costs =
    List.map
      (fun o ->
        Array.iteri
          (fun i addr ->
            match Hashtbl.find_opt forward addr with
            | Some fresh -> o.Obj_model.refs.(i) <- fresh
            | None -> ())
          o.Obj_model.refs;
        (cost t).Cost_model.adjust_obj_ns
        +. float_of_int (Array.length o.Obj_model.refs)
           *. (cost t).Cost_model.ref_scan_ns)
      live
  in
  let adjust_ns = makespan t adjust_costs in
  let objects = Heap.objects t.heap in
  Vec.clear objects;
  List.iter
    (fun o ->
      o.Obj_model.addr <- o.Obj_model.forward;
      o.Obj_model.forward <- 0;
      o.Obj_model.marked <- false;
      Vec.push objects o)
    live;
  Heap.rebuild_index t.heap;
  Heap.set_top t.heap !top;
  t.low_active <- not t.low_active;
  let total = mark_ns +. evac_ns +. adjust_ns in
  let live_bytes = List.fold_left (fun a o -> a + o.Obj_model.size) 0 live in
  let stats =
    {
      pause_ns = (1.0 -. t.concurrent_fraction) *. total;
      concurrent_ns = t.concurrent_fraction *. total;
      evacuated_objects = List.length live;
      swapped_objects;
      reclaimed_bytes = max 0 (used_before - live_bytes);
    }
  in
  t.cycles <- stats :: t.cycles;
  stats

let alloc t ~size ~n_refs ~cls =
  let fits () =
    let top = Heap.top t.heap in
    let aligned =
      if size >= Heap.threshold_pages t.heap * Addr.page_size then
        Addr.align_up top
      else top
    in
    (* Two pages of margin: the allocator tail-aligns large objects, and
       nothing may spill into the idle half. *)
    aligned + size + (2 * Addr.page_size) <= active_limit t
  in
  if fits () then Heap.alloc t.heap ~size ~n_refs ~cls
  else begin
    let mover = Compact.memmove_mover in
    ignore (collect t ~mover);
    if fits () then Heap.alloc t.heap ~size ~n_refs ~cls else raise Out_of_memory
  end
