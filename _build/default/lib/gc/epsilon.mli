(** The Epsilon no-op collector: allocation without reclamation.

    This mirrors the paper's starting point — OpenJDK's Epsilon shim is "a
    simple memory allocator wrapped by a standard GC interface" which the
    authors extend with a parallel LISP2.  Collecting with Epsilon frees
    nothing; when the heap fills, allocation fails for good.  Useful for
    SwapVA microbenchmarks that need heap plumbing without GC effects. *)

open Svagc_heap

val collector : Heap.t -> Gc_intf.t
