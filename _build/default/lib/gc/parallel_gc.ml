let collector ?(threads = 4) heap =
  let cfg = Lisp2.config ~label:"parallelgc" ~threads () in
  Lisp2.collector cfg heap
