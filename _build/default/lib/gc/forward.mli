(** Phase II — forwarding address calculation (Algorithm 3 [CalcNewAdd]).

    Slides every marked object toward the heap base in address order,
    page-aligning swappable objects before and after placement so that the
    compaction phase may exchange their pages.  The returned [new_top] is
    where the heap will end after compaction; [waste] is the alignment
    fragmentation the new layout will carry (the paper's "<5% of heap"
    claim). *)

open Svagc_heap

type result = {
  phase_ns : float;
  new_top : int;
  waste_bytes : int;
  live : Obj_model.t list;  (** marked objects in ascending address order *)
}

val run : Heap.t -> threads:int -> result
