(** Phase III — adjusting pointers.

    Every reference slot of every live object is rewritten to the
    forwarding address its target computed in phase II.  (Roots are OCaml
    records in this simulator and follow their objects implicitly; the
    per-object cost still charges the root-set fixups a real VM performs.) *)

open Svagc_heap

val run : Heap.t -> threads:int -> live:Obj_model.t list -> float
(** Returns the phase time in ns. *)
