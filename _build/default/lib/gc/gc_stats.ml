type cycle = {
  mark_ns : float;
  forward_ns : float;
  adjust_ns : float;
  compact_ns : float;
  concurrent_ns : float;
  live_objects : int;
  live_bytes : int;
  reclaimed_bytes : int;
  moved_objects : int;
  swapped_objects : int;
  bytes_copied : int;
  bytes_remapped : int;
}

let pause_ns c = c.mark_ns +. c.forward_ns +. c.adjust_ns +. c.compact_ns

let non_compact_ns c = c.mark_ns +. c.forward_ns +. c.adjust_ns

type summary = {
  cycles : int;
  total_pause_ns : float;
  max_pause_ns : float;
  avg_pause_ns : float;
  total_compact_ns : float;
  total_other_ns : float;
  total_concurrent_ns : float;
  total_bytes_copied : int;
  total_bytes_remapped : int;
}

let empty_cycle =
  {
    mark_ns = 0.0;
    forward_ns = 0.0;
    adjust_ns = 0.0;
    compact_ns = 0.0;
    concurrent_ns = 0.0;
    live_objects = 0;
    live_bytes = 0;
    reclaimed_bytes = 0;
    moved_objects = 0;
    swapped_objects = 0;
    bytes_copied = 0;
    bytes_remapped = 0;
  }

let summarize cycles =
  let n = List.length cycles in
  let total_pause = List.fold_left (fun acc c -> acc +. pause_ns c) 0.0 cycles in
  {
    cycles = n;
    total_pause_ns = total_pause;
    max_pause_ns = List.fold_left (fun acc c -> Float.max acc (pause_ns c)) 0.0 cycles;
    avg_pause_ns = (if n = 0 then 0.0 else total_pause /. float_of_int n);
    total_compact_ns = List.fold_left (fun acc c -> acc +. c.compact_ns) 0.0 cycles;
    total_other_ns = List.fold_left (fun acc c -> acc +. non_compact_ns c) 0.0 cycles;
    total_concurrent_ns =
      List.fold_left (fun acc c -> acc +. c.concurrent_ns) 0.0 cycles;
    total_bytes_copied = List.fold_left (fun acc c -> acc + c.bytes_copied) 0 cycles;
    total_bytes_remapped =
      List.fold_left (fun acc c -> acc + c.bytes_remapped) 0 cycles;
  }

let pp_cycle ppf c =
  Format.fprintf ppf
    "pause=%a (mark=%a fwd=%a adj=%a compact=%a) live=%d objs/%d B moved=%d \
     (swapped=%d) copied=%dB remapped=%dB"
    Svagc_vmem.Clock.pp_ns (pause_ns c) Svagc_vmem.Clock.pp_ns c.mark_ns
    Svagc_vmem.Clock.pp_ns c.forward_ns Svagc_vmem.Clock.pp_ns c.adjust_ns
    Svagc_vmem.Clock.pp_ns c.compact_ns c.live_objects c.live_bytes c.moved_objects
    c.swapped_objects c.bytes_copied c.bytes_remapped

let pp_summary ppf s =
  Format.fprintf ppf
    "cycles=%d total=%a avg=%a max=%a compact=%a other=%a concurrent=%a"
    s.cycles Svagc_vmem.Clock.pp_ns s.total_pause_ns Svagc_vmem.Clock.pp_ns
    s.avg_pause_ns Svagc_vmem.Clock.pp_ns s.max_pause_ns Svagc_vmem.Clock.pp_ns
    s.total_compact_ns Svagc_vmem.Clock.pp_ns s.total_other_ns
    Svagc_vmem.Clock.pp_ns s.total_concurrent_ns
