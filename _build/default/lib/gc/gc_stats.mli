(** Per-cycle and aggregate GC accounting.

    A full-GC cycle produces one {!cycle}: the four LISP2 phase times (the
    paper's Fig. 1 breakdown), the moved-byte counters, and the part of the
    cycle's work that ran concurrently with the application (non-zero only
    for the Shenandoah-style collector). *)

type cycle = {
  mark_ns : float;
  forward_ns : float;
  adjust_ns : float;
  compact_ns : float;
  concurrent_ns : float;  (** charged to the app, not the pause *)
  live_objects : int;
  live_bytes : int;
  reclaimed_bytes : int;
  moved_objects : int;
  swapped_objects : int;  (** moved via SwapVA *)
  bytes_copied : int;
  bytes_remapped : int;
}

val pause_ns : cycle -> float
(** Stop-the-world time: the four phases. *)

val non_compact_ns : cycle -> float

type summary = {
  cycles : int;
  total_pause_ns : float;
  max_pause_ns : float;
  avg_pause_ns : float;
  total_compact_ns : float;
  total_other_ns : float;
  total_concurrent_ns : float;
  total_bytes_copied : int;
  total_bytes_remapped : int;
}

val empty_cycle : cycle

val summarize : cycle list -> summary

val pp_cycle : Format.formatter -> cycle -> unit

val pp_summary : Format.formatter -> summary -> unit
