lib/gc/compact.ml: Array Fun Heap List Obj_model Svagc_heap Svagc_kernel Svagc_par Svagc_util Svagc_vmem
