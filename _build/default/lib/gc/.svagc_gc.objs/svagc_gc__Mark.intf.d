lib/gc/mark.mli: Heap Obj_model Svagc_heap
