lib/gc/compact.mli: Heap Obj_model Svagc_heap
