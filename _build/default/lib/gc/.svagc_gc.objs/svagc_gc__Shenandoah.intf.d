lib/gc/shenandoah.mli: Gc_intf Heap Svagc_heap
