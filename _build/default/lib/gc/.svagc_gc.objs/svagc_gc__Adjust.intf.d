lib/gc/adjust.mli: Heap Obj_model Svagc_heap
