lib/gc/adjust.ml: Array Heap List Obj_model Printf Svagc_heap Svagc_kernel Svagc_par Svagc_vmem
