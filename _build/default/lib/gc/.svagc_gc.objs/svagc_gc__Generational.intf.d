lib/gc/generational.mli: Compact Gc_stats Heap Obj_model Svagc_heap Svagc_kernel
