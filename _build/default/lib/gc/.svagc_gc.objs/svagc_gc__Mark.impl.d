lib/gc/mark.ml: Array Heap Obj_model Printf Svagc_heap Svagc_kernel Svagc_par Svagc_util Svagc_vmem
