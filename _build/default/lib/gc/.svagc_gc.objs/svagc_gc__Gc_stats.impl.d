lib/gc/gc_stats.ml: Float Format List Svagc_vmem
