lib/gc/gc_intf.mli: Gc_stats Heap Svagc_heap
