lib/gc/epsilon.ml: Gc_intf Gc_stats
