lib/gc/parallel_gc.mli: Gc_intf Heap Svagc_heap
