lib/gc/generational.ml: Array Compact Forward Gc_stats Hashtbl Heap Lisp2 List Obj_model Svagc_heap Svagc_kernel Svagc_par Svagc_util Svagc_vmem
