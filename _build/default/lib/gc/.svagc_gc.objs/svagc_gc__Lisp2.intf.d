lib/gc/lisp2.mli: Compact Gc_intf Gc_stats Heap Svagc_heap
