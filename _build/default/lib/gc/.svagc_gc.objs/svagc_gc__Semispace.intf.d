lib/gc/semispace.mli: Compact Heap Obj_model Svagc_heap Svagc_kernel
