lib/gc/lisp2.ml: Adjust Compact Forward Gc_intf Gc_stats Heap List Mark Obj_model Svagc_heap Svagc_kernel Svagc_vmem
