lib/gc/parallel_gc.ml: Lisp2
