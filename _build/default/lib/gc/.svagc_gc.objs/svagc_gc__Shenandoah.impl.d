lib/gc/shenandoah.ml: Lisp2
