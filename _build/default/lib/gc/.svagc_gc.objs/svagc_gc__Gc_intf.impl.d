lib/gc/gc_intf.ml: Gc_stats Heap Svagc_heap Svagc_kernel Svagc_util Svagc_vmem
