lib/gc/epsilon.mli: Gc_intf Heap Svagc_heap
