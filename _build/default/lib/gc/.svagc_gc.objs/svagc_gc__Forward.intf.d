lib/gc/forward.mli: Heap Obj_model Svagc_heap
