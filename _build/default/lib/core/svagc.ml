open Svagc_heap
module Lisp2 = Svagc_gc.Lisp2

let collector ?(config = Config.default) heap =
  Config.validate config;
  if Heap.threshold_pages heap <> config.Config.threshold_pages then
    invalid_arg
      "Svagc.collector: heap and config disagree on the swapping threshold";
  let cfg =
    Lisp2.config ~label:"svagc" ~threads:config.Config.gc_threads
      ~mover:(Move_object.mover config) ()
  in
  Lisp2.collector cfg heap

let baseline_collector ?(threads = Config.default.Config.gc_threads) heap =
  let cfg = Lisp2.config ~label:"lisp2-memmove" ~threads () in
  Lisp2.collector cfg heap
