(** SVAGC: the paper's scalable full garbage collector — parallel LISP2
    phases with SwapVA-based compaction (Algorithms 3 and 4). *)

open Svagc_heap

val collector : ?config:Config.t -> Heap.t -> Svagc_gc.Gc_intf.t
(** A collector using {!Config.default} unless overridden.  The heap's
    swapping threshold should match [config.threshold_pages] (allocation
    alignment and move eligibility must agree); this is checked. *)

val baseline_collector : ?threads:int -> Heap.t -> Svagc_gc.Gc_intf.t
(** The paper's "-SwapVA" bar: the identical parallel LISP2 engine with
    memmove-only compaction (Fig. 11 left bars). *)
