lib/core/move_object.mli: Config Heap Svagc_gc Svagc_heap
