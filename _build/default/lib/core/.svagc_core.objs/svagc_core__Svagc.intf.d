lib/core/svagc.mli: Config Heap Svagc_gc Svagc_heap
