lib/core/jvm.ml: Clock Cost_model Hashtbl Heap List Machine Svagc_gc Svagc_heap Svagc_kernel Svagc_vmem Tlab
