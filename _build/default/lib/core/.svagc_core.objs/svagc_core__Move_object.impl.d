lib/core/move_object.ml: Config Heap List Svagc_gc Svagc_heap Svagc_kernel Svagc_util Svagc_vmem
