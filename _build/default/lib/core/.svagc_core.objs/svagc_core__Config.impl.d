lib/core/config.ml: Format Svagc_kernel
