lib/core/svagc.ml: Config Heap Move_object Svagc_gc Svagc_heap
