lib/core/config.mli: Format Svagc_kernel
