lib/core/jvm.mli: Heap Machine Obj_model Svagc_gc Svagc_heap Svagc_kernel Svagc_vmem
