lib/core/multi_jvm.ml: Array Float Jvm Machine Svagc_vmem
