lib/core/multi_jvm.mli: Jvm Machine Svagc_vmem
