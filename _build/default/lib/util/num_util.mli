(** Small numeric helpers shared across the simulator. *)

val gcd : int -> int -> int
(** Greatest common divisor on non-negative arguments; [gcd 0 n = n]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is ⌈a/b⌉ for [a >= 0], [b > 0]. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list; ignores non-positive entries. *)

val pct_change : baseline:float -> value:float -> float
(** [(value - baseline) / baseline * 100]. *)

val speedup : baseline:float -> value:float -> float
(** [baseline / value]; how many times faster [value] is. *)
