lib/util/vec.mli:
