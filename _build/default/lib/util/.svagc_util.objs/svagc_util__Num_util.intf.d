lib/util/num_util.mli:
