lib/util/num_util.ml: List
