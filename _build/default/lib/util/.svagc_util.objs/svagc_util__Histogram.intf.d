lib/util/histogram.mli:
