lib/util/rng.mli:
