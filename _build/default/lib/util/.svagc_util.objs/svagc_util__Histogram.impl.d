lib/util/histogram.ml: Float Stdlib Vec
