type t =
  | Fixed of int
  | Uniform of int * int
  | Lognormal of { mu : float; sigma : float; min : int; max : int }
  | Choice of (float * int) array

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let lognormal_mean ~mean ~sigma ~min ~max =
  if mean <= 0.0 then invalid_arg "Dist.lognormal_mean: mean must be positive";
  Lognormal { mu = log mean -. (sigma *. sigma /. 2.0); sigma; min; max }

(* Box-Muller; one draw per call is enough for our rates. *)
let gaussian rng =
  let u1 = max 1e-12 (Rng.float rng) in
  let u2 = Rng.float rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let sample rng = function
  | Fixed v -> v
  | Uniform (lo, hi) -> Rng.int_in rng ~lo ~hi
  | Lognormal { mu; sigma; min; max } ->
    let v = exp (mu +. (sigma *. gaussian rng)) in
    clamp ~lo:min ~hi:max (int_of_float v)
  | Choice weighted ->
    let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    let x = Rng.float rng *. total in
    let rec pick i acc =
      if i = Array.length weighted - 1 then snd weighted.(i)
      else
        let w, v = weighted.(i) in
        if x < acc +. w then v else pick (i + 1) (acc +. w)
    in
    pick 0 0.0

let mean = function
  | Fixed v -> float_of_int v
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0
  | Lognormal { mu; sigma; min; max } ->
    let m = exp (mu +. (sigma *. sigma /. 2.0)) in
    Float.min (float_of_int max) (Float.max (float_of_int min) m)
  | Choice weighted ->
    let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    Array.fold_left (fun acc (w, v) -> acc +. (w *. float_of_int v)) 0.0 weighted
    /. total

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  (* Inverse-CDF over the harmonic weights would need O(n) setup per call;
     rejection sampling (Devroye) stays O(1) amortized.  The method
     degenerates at s = 1 exactly, so nudge the exponent off the pole. *)
  let s = if Float.abs (s -. 1.0) < 1e-6 then 1.000001 else s in
  let rec draw budget =
    let u = Rng.float rng in
    let v = Rng.float rng in
    let x = floor (float_of_int n ** u) in
    let t = ((x +. 1.0) ** (1.0 -. s)) -. (x ** (1.0 -. s)) in
    let bound = (2.0 ** (1.0 -. s)) -. 1.0 in
    if budget = 0 || v *. x *. t /. bound <= 1.0 then int_of_float x
    else draw (budget - 1)
  in
  (* Devroye draws ranks in [1, n]; shift to [0, n). *)
  let r = draw 64 - 1 in
  if r >= n then n - 1 else if r < 0 then 0 else r

let pp ppf = function
  | Fixed v -> Format.fprintf ppf "fixed(%d)" v
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform[%d,%d]" lo hi
  | Lognormal { mu; sigma; min; max } ->
    Format.fprintf ppf "lognormal(mu=%.2f,sigma=%.2f)[%d,%d]" mu sigma min max
  | Choice weighted ->
    Format.fprintf ppf "choice(%d cases)" (Array.length weighted)
