type t = {
  samples : float Vec.t;
  mutable sorted : bool;
}

let create () = { samples = Vec.create (); sorted = true }

let add t x =
  Vec.push t.samples x;
  t.sorted <- false

let count t = Vec.length t.samples

let total t = Vec.fold_left ( +. ) 0.0 t.samples

let mean t =
  let n = count t in
  if n = 0 then 0.0 else total t /. float_of_int n

let max t = Vec.fold_left Float.max 0.0 t.samples

let min t =
  if count t = 0 then 0.0
  else Vec.fold_left Float.min Float.max_float t.samples

let ensure_sorted t =
  if not t.sorted then begin
    Vec.sort Float.compare t.samples;
    t.sorted <- true
  end

let percentile t p =
  let n = count t in
  if n = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    let rank = Stdlib.max 0 (Stdlib.min (n - 1) rank) in
    Vec.get t.samples rank
  end

let stddev t =
  let n = count t in
  if n < 2 then 0.0
  else begin
    let m = mean t in
    let ss = Vec.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 t.samples in
    sqrt (ss /. float_of_int (n - 1))
  end

let merge a b =
  let t = create () in
  Vec.iter (add t) a.samples;
  Vec.iter (add t) b.samples;
  t
