(** Streaming summary of a scalar sample (latencies, sizes, ...). *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val max : t -> float
(** 0 when empty. *)

val min : t -> float
(** 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]] (nearest-rank on the recorded
    samples).  0 when empty. *)

val stddev : t -> float

val merge : t -> t -> t
(** Combine two sample sets into a fresh one. *)
