type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml ints are 63-bit signed, so a 63-bit payload would
     land on the sign bit and come out negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
