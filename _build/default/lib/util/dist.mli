(** Size and popularity distributions used by the workload generators.

    Object-size demographics are the load-bearing property of each benchmark
    (see DESIGN.md §4.5); all draws go through an explicit {!Rng.t}. *)

type t =
  | Fixed of int  (** Always the same value. *)
  | Uniform of int * int  (** Inclusive range. *)
  | Lognormal of { mu : float; sigma : float; min : int; max : int }
      (** Heavy-tailed sizes clamped to [\[min, max\]]. *)
  | Choice of (float * int) array
      (** Weighted discrete choice: [(weight, value)]. *)

val lognormal_mean : mean:float -> sigma:float -> min:int -> max:int -> t
(** Lognormal parameterized by its arithmetic mean:
    [mu = ln mean - sigma^2 / 2]. *)

val sample : Rng.t -> t -> int
(** Draw one value. *)

val mean : t -> float
(** Analytic (or empirical for [Lognormal]) expected value, used for heap
    sizing. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[0, n)] with exponent [s]; models LRU-cache
    key popularity. *)

val pp : Format.formatter -> t -> unit
