let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let ceil_div a b =
  if b <= 0 then invalid_arg "Num_util.ceil_div: divisor must be positive";
  (a + b - 1) / b

let geomean xs =
  let logs = List.filter_map (fun x -> if x > 0.0 then Some (log x) else None) xs in
  match logs with
  | [] -> 0.0
  | _ ->
    let n = float_of_int (List.length logs) in
    exp (List.fold_left ( +. ) 0.0 logs /. n)

let pct_change ~baseline ~value =
  if baseline = 0.0 then 0.0 else (value -. baseline) /. baseline *. 100.0

let speedup ~baseline ~value = if value = 0.0 then infinity else baseline /. value
