(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are reproducible bit-for-bit from a seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent stream; [t] advances. *)

val int64 : t -> int64
(** Next raw 64-bit draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** Fisher–Yates shuffle in place. *)
