(* SPECjvm2008 scimark.fft.large: Fourier transforms over large complex
   arrays.  The paper reports a 64 KB average object size [20] and creates
   1/8 and 1/16 input-size variants; smaller inputs mean proportionally
   smaller arrays, which is what pushes the variants below the swapping
   threshold.  Compute-intensive (O(n log n) flops per allocated byte), so
   the GC share of total time — and hence the throughput gain — is modest
   (Fig. 15/16). *)

let kib = 1024

let profile ~variant ~mean_size =
  {
    Demographics.name = (if variant = "" then "FFT.large" else "FFT.large/" ^ variant);
    suite = "SPECjvm2008";
    paper_threads = 576;
    paper_heap_gib = "19.2 - 40";
    sim_threads = 8;
    size_dist =
      Svagc_util.Dist.lognormal_mean ~mean:(float_of_int mean_size) ~sigma:0.4
        ~min:(4 * kib) ~max:(512 * kib);
    n_refs = 2;
    slots = 700;
    churn_per_step = 16;
    compute_ns_per_step = 230_000.0;
    mem_bytes_per_step = 768 * kib;
    payload_stamp_bytes = 96;
    description = "FFT butterflies over large complex arrays (avg 64 KB objects)";
  }

let large = Demographics.workload (profile ~variant:"" ~mean_size:(64 * kib))

(* Smaller inputs spread wider relative to their mean: a thin tail of
   rows still crosses the threshold, giving the variants their small but
   positive Fig. 11 gains. *)
let eighth =
  let p = profile ~variant:"8" ~mean_size:(8 * kib) in
  Demographics.workload
    { p with Demographics.size_dist =
        Svagc_util.Dist.lognormal_mean ~mean:(8.0 *. 1024.0) ~sigma:0.85
          ~min:(2 * kib) ~max:(256 * kib) }

let sixteenth =
  let p = profile ~variant:"16" ~mean_size:(4 * kib) in
  Demographics.workload
    { p with Demographics.size_dist =
        Svagc_util.Dist.lognormal_mean ~mean:(4.0 *. 1024.0) ~sigma:0.85
          ~min:kib ~max:(128 * kib) }
