(* SPECjvm2008 scimark.sparse.large: sparse matrix-vector multiply (SpMV).
   Average object size 50 KB [20]; the /2 and /4 variants shrink the input
   and hence the row-segment arrays.  SpMV is memory-bound — little compute
   per byte — so GCs are frequent relative to useful work and the
   throughput gain from SwapVA is the largest in the suite (86.9%,
   Fig. 15).  Row-length skew gives the size distribution a heavy tail, so
   even the /4 variant keeps a meaningful share of its *bytes* in
   above-threshold objects (its 70.9% pause reduction in Fig. 11). *)

let kib = 1024

let profile ~variant ~size_dist =
  {
    Demographics.name =
      (if variant = "" then "Sparse.large" else "Sparse.large/" ^ variant);
    suite = "SPECjvm2008";
    paper_threads = 576;
    paper_heap_gib = "5 - 8.5";
    sim_threads = 8;
    size_dist;
    n_refs = 2;
    slots = 1200;
    churn_per_step = 40;
    compute_ns_per_step = 16_000.0;
    mem_bytes_per_step = 384 * kib;
    payload_stamp_bytes = 96;
    description = "SpMV row segments (avg 50 KB, skewed row lengths)";
  }

(* Row-length mixes: the default input keeps ~85% of its bytes in
   above-threshold segments (avg ~46 KB, matching the reported 50 KB);
   the /2 and /4 inputs shift bytes below the 40 KB threshold, which is
   why their Fig. 11 gains shrink toward 70.9%. *)
let large =
  Demographics.workload
    (profile ~variant:""
       ~size_dist:
         (Svagc_util.Dist.Choice
            [| (8.5, 56 * kib); (1.0, 32 * kib); (0.5, 8 * kib) |]))

let half =
  Demographics.workload
    (profile ~variant:"2"
       ~size_dist:
         (Svagc_util.Dist.Choice
            [| (7.0, 48 * kib); (2.0, 16 * kib); (1.0, 4 * kib) |]))

let quarter =
  Demographics.workload
    { (profile ~variant:"4"
         ~size_dist:
           (Svagc_util.Dist.Choice
              [| (5.0, 46 * kib); (3.0, 14 * kib); (1.5, 4 * kib) |]))
      with Demographics.slots = 800 }
