(** Drive a workload on a fresh JVM until enough full GCs have been
    observed, and report the run. *)


type result = {
  workload : string;
  collector : string;
  heap_factor : float;
  heap_bytes : int;
  steps : int;
  app_ns : float;
  gc_ns : float;
  total_ns : float;
  throughput : float;  (** steps per simulated millisecond *)
  summary : Svagc_gc.Gc_stats.summary;
  cycles : Svagc_gc.Gc_stats.cycle list;
}

val run :
  ?heap_factor:float ->
  ?steps:int ->
  ?min_gcs:int ->
  ?max_steps:int ->
  ?seed:int ->
  ?stamp_headers:bool ->
  machine:Svagc_vmem.Machine.t ->
  collector_of:(Svagc_heap.Heap.t -> Svagc_gc.Gc_intf.t) ->
  Workload.t ->
  result
(** Defaults: heap factor 1.2 (the paper's tight configuration), at least
    [steps] = 60 iterations and [min_gcs] = 4 full collections, capped at
    [max_steps] = 3000.  The collector's history and clocks are fresh per
    run; the machine's perf counters are not reset (snapshot around the
    call if you need deltas). *)

val make_jvm :
  ?heap_factor:float ->
  ?stamp_headers:bool ->
  machine:Svagc_vmem.Machine.t ->
  collector_of:(Svagc_heap.Heap.t -> Svagc_gc.Gc_intf.t) ->
  Workload.t ->
  Svagc_core.Jvm.t
(** The JVM construction used by {!run}, exposed for the multi-JVM
    experiments. *)
