module Jvm = Svagc_core.Jvm
module Gc_intf = Svagc_gc.Gc_intf

type result = {
  workload : string;
  collector : string;
  heap_factor : float;
  heap_bytes : int;
  steps : int;
  app_ns : float;
  gc_ns : float;
  total_ns : float;
  throughput : float;
  summary : Svagc_gc.Gc_stats.summary;
  cycles : Svagc_gc.Gc_stats.cycle list;
}

let make_jvm ?(heap_factor = 1.2) ?(stamp_headers = true) ~machine ~collector_of
    workload =
  let heap_bytes = Workload.heap_bytes workload ~factor:heap_factor in
  Jvm.create machine
    ~name:(workload.Workload.name ^ "-jvm")
    ~heap_bytes ~stamp_headers ~collector_of ()

let run ?(heap_factor = 1.2) ?(steps = 60) ?(min_gcs = 4) ?(max_steps = 3000)
    ?(seed = 7) ?(stamp_headers = true) ~machine ~collector_of workload =
  let jvm = make_jvm ~heap_factor ~stamp_headers ~machine ~collector_of workload in
  let rng = Svagc_util.Rng.create ~seed in
  let step = workload.Workload.setup jvm rng in
  let executed = ref 0 in
  let continue () =
    !executed < steps || (Jvm.gc_count jvm < min_gcs && !executed < max_steps)
  in
  while continue () do
    step ();
    incr executed
  done;
  let cycles = Jvm.cycles jvm in
  let total_ns = Jvm.total_ns jvm in
  (* Each run materializes up to a couple hundred MiB of simulated frames;
     sweeping experiments run dozens of JVMs back to back, so return the
     memory eagerly instead of letting host RSS ratchet up. *)
  Gc.full_major ();
  {
    workload = workload.Workload.name;
    collector = Gc_intf.name (Jvm.collector jvm);
    heap_factor;
    heap_bytes = Svagc_heap.Heap.limit (Jvm.heap jvm) - Svagc_heap.Heap.base (Jvm.heap jvm);
    steps = !executed;
    app_ns = Jvm.app_ns jvm;
    gc_ns = Jvm.gc_ns jvm;
    total_ns;
    throughput =
      (if total_ns > 0.0 then float_of_int !executed /. (total_ns /. 1e6) else 0.0);
    summary = Svagc_gc.Gc_stats.summarize cycles;
    cycles;
  }
