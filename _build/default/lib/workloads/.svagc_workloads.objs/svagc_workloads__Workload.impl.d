lib/workloads/workload.ml: Svagc_core Svagc_util Svagc_vmem
