lib/workloads/compress.ml: Demographics Svagc_util
