lib/workloads/runner.mli: Svagc_core Svagc_gc Svagc_heap Svagc_vmem Workload
