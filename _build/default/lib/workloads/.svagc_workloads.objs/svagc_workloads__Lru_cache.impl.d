lib/workloads/lru_cache.ml: Array Svagc_core Svagc_heap Svagc_util Workload
