lib/workloads/parallel_sort.ml: Demographics Svagc_util
