lib/workloads/runner.ml: Gc Svagc_core Svagc_gc Svagc_heap Svagc_util Workload
