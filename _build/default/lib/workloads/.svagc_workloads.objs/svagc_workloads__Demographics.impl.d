lib/workloads/demographics.ml: Array Bytes Char Svagc_core Svagc_heap Svagc_util Workload
