lib/workloads/crypto_aes.ml: Demographics Svagc_util
