lib/workloads/bisort.ml: Demographics Svagc_util
