lib/workloads/sigverify.ml: Demographics Svagc_util
