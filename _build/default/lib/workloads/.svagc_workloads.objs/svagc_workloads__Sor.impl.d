lib/workloads/sor.ml: Demographics Svagc_util
