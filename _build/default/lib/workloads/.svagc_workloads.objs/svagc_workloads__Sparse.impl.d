lib/workloads/sparse.ml: Demographics Svagc_util
