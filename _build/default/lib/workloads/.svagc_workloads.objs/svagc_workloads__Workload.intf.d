lib/workloads/workload.mli: Svagc_core Svagc_util
