lib/workloads/lu.ml: Demographics Svagc_util
