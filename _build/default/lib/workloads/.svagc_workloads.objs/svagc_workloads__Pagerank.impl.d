lib/workloads/pagerank.ml: Svagc_core Svagc_heap Svagc_util Workload
