lib/workloads/demographics.mli: Svagc_util Workload
