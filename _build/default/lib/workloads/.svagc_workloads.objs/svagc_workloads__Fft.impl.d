lib/workloads/fft.ml: Demographics Svagc_util
