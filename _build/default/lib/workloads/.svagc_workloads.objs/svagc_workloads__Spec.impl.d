lib/workloads/spec.ml: Bisort Compress Crypto_aes Fft List Lru_cache Lu Pagerank Parallel_sort Printf Sigverify Sor Sparse Workload
