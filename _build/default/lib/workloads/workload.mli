(** The benchmark abstraction.

    A workload is defined by its *object demographics* — size distribution,
    working-set, churn and compute intensity — which is exactly what the
    paper states about each benchmark (§V: FFT 64 KB average, Sparse 50 KB,
    Sigverify 1 MiB+, LRUCache [1,2M] B, ...).  Sizes are kept at paper
    scale because the 10-page swapping threshold is absolute; object
    *counts* are scaled down so runs stay laptop-sized (documented in
    DESIGN.md). *)

type t = {
  name : string;
  suite : string;  (** SPECjvm2008 / JOlden / Spark / OpenJDK / synthetic *)
  paper_threads : int;  (** Table II thread count *)
  paper_heap_gib : string;  (** Table II heap range, for reporting *)
  sim_threads : int;  (** mutator threads simulated here *)
  min_heap_bytes : int;  (** scaled minimum heap; runs use 1.2x / 2x this *)
  description : string;
  setup : Svagc_core.Jvm.t -> Svagc_util.Rng.t -> step;
}

and step = unit -> unit
(** One mutator iteration: allocate / mutate / drop / charge app time. *)

val heap_bytes : t -> factor:float -> int
(** [min_heap_bytes] scaled by the heap factor, page-aligned. *)
