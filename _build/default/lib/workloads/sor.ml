(* SPECjvm2008 scimark.sor.large: successive over-relaxation sweeps over a
   2-D grid stored as row arrays.  The paper's "SOR.large x10" variant
   scales the input tenfold (heap 51.5-85.8 GiB on their testbed); rows
   become wide, uniformly sized arrays — ideal SwapVA food.  Memory-bound
   stencil: high GC share. *)

let kib = 1024

let profile ~variant ~row_bytes ~slots =
  {
    Demographics.name = "SOR.large" ^ variant;
    suite = "SPECjvm2008";
    paper_threads = 32;
    paper_heap_gib = "51.5 - 85.8";
    sim_threads = 8;
    size_dist = Svagc_util.Dist.Fixed row_bytes;
    n_refs = 2;
    slots;
    churn_per_step = 12;
    compute_ns_per_step = 40_000.0;
    mem_bytes_per_step = 512 * kib;
    payload_stamp_bytes = 96;
    description = "SOR grid rows (uniform wide arrays; x10 input)";
  }

let large = Demographics.workload (profile ~variant:"" ~row_bytes:(16 * kib) ~slots:1200)

let large_x10 =
  Demographics.workload (profile ~variant:" x10" ~row_bytes:(160 * kib) ~slots:300)
