(* Spark-bench PageRank on a random graph of 78K nodes / 780K edges (the
   paper's PR configuration).  The heap holds many small per-node records
   plus medium adjacency-segment arrays; each iteration reallocates the
   rank vectors (a few large arrays).  The mix of mostly-small with a few
   large objects puts PR's gains between Bisort and the array benchmarks. *)

module Dist = Svagc_util.Dist
module Rng = Svagc_util.Rng
module Jvm = Svagc_core.Jvm
module Heap = Svagc_heap.Heap

let kib = 1024

(* Scaled graph: 1/8 of the paper's node count, same shape. *)
let nodes = 78_000 / 16
let edges = nodes * 10
let node_bytes = 64
let segment_nodes = 800 (* adjacency segment: ~10 edges/node * 8 B * 800 *)
let segment_bytes = segment_nodes * 10 * 8
let rank_vector_bytes = nodes * 8

let min_heap_bytes =
  let live =
    (nodes * node_bytes) + (edges * 8) + (3 * rank_vector_bytes) + (4 * 1024 * kib)
  in
  int_of_float (float_of_int live *. 1.15)

let setup jvm rng =
  let heap = Jvm.heap jvm in
  (* Node records: stay live for the whole run. *)
  for i = 0 to nodes - 1 do
    let obj = Jvm.alloc ~thread:(i mod 8) jvm ~size:node_bytes ~n_refs:1 ~cls:1 in
    Heap.add_root heap obj
  done;
  (* Adjacency segments: live, above threshold. *)
  let segments = nodes / segment_nodes in
  for i = 0 to segments - 1 do
    let obj = Jvm.alloc ~thread:(i mod 8) jvm ~size:segment_bytes ~n_refs:0 ~cls:2 in
    Heap.add_root heap obj
  done;
  (* Rank vectors: double-buffered, reallocated every iteration. *)
  let ranks = ref [] in
  let alloc_rank () =
    let obj = Jvm.alloc jvm ~size:rank_vector_bytes ~n_refs:0 ~cls:3 in
    Heap.add_root heap obj;
    obj
  in
  ranks := [ alloc_rank (); alloc_rank () ];
  fun () ->
    (* One PageRank iteration: drop the old back buffer, allocate a new
       one, stream the edges. *)
    (match !ranks with
    | old :: rest ->
      Heap.remove_root heap old;
      ranks := rest @ [ alloc_rank () ]
    | [] -> ranks := [ alloc_rank () ]);
    (* Scratch churn: message combiner buffers of mixed sizes. *)
    for _ = 0 to 5 do
      let size = 8 * kib * (1 + Rng.int rng 8) in
      ignore (Jvm.alloc jvm ~size ~n_refs:0 ~cls:4)
    done;
    Jvm.charge_app_ns jvm 220_000.0;
    Jvm.charge_app_mem jvm ~bytes:(edges * 16)

let workload =
  {
    Workload.name = "PR";
    suite = "Spark";
    paper_threads = 288;
    paper_heap_gib = "4 - 6.5";
    sim_threads = 8;
    min_heap_bytes;
    description = "PageRank, 78K nodes / 780K edges (scaled 1/16)";
    setup;
  }
