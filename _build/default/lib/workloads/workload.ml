type t = {
  name : string;
  suite : string;
  paper_threads : int;
  paper_heap_gib : string;
  sim_threads : int;
  min_heap_bytes : int;
  description : string;
  setup : Svagc_core.Jvm.t -> Svagc_util.Rng.t -> step;
}

and step = unit -> unit

let heap_bytes t ~factor =
  Svagc_vmem.Addr.align_up (int_of_float (float_of_int t.min_heap_bytes *. factor))
