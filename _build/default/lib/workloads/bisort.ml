(* JOlden bisort: bitonic sort over a binary tree of 2M integers.  Tree
   nodes are tiny (tens of bytes); virtually nothing crosses the swapping
   threshold, so this benchmark bounds SwapVA's benefit from below (its
   Table III deltas are among the smallest). *)

let profile =
  {
    Demographics.name = "Bisort";
    suite = "JOlden";
    paper_threads = 896;
    paper_heap_gib = "8 - 19.2";
    sim_threads = 8;
    size_dist =
      Svagc_util.Dist.Choice [| (400.0, 48); (16.0, 256); (0.1, 64 * 1024) |];
    n_refs = 2;
    slots = 24_000;
    churn_per_step = 800;
    compute_ns_per_step = 170_000.0;
    mem_bytes_per_step = 1024 * 1024;
    payload_stamp_bytes = 16;
    description = "bitonic-sort tree nodes (tiny objects, 2M entries)";
  }

let workload = Demographics.workload profile
