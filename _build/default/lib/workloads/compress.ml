(* SPECjvm2008 compress: LZW-style compression of large input blocks.
   Each work item allocates an input buffer and a (smaller) output buffer,
   both above the threshold, then drops them — pure churn with moderate
   compute. *)

let kib = 1024

let profile =
  {
    Demographics.name = "Compress";
    suite = "SPECjvm2008";
    paper_threads = 640;
    paper_heap_gib = "19 - 32";
    sim_threads = 8;
    size_dist =
      Svagc_util.Dist.Choice [| (1.0, 128 * kib); (1.0, 72 * kib); (0.5, 24 * kib) |];
    n_refs = 1;
    slots = 700;
    churn_per_step = 30;
    compute_ns_per_step = 110_000.0;
    mem_bytes_per_step = 768 * kib;
    payload_stamp_bytes = 96;
    description = "compression input/output buffer churn (24-128 KB)";
  }

let workload = Demographics.workload profile
