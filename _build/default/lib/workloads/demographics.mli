(** Generic churn engine used by the benchmark modules.

    Maintains a rooted working set of [slots] objects drawn from
    [size_dist]; every step replaces [churn_per_step] randomly chosen slots
    with fresh allocations (round-robin across the simulated mutator
    threads), links a couple of references between neighbours, writes a
    small payload stamp, and charges the step's compute time and memory
    traffic to the application clock.  Replaced objects become garbage; the
    heap fills at the churn rate and full GCs fire on exhaustion. *)

type profile = {
  name : string;
  suite : string;
  paper_threads : int;
  paper_heap_gib : string;
  sim_threads : int;
  size_dist : Svagc_util.Dist.t;
  n_refs : int;  (** reference slots per object *)
  slots : int;  (** rooted working-set entries *)
  churn_per_step : int;
  compute_ns_per_step : float;  (** pure CPU work per step *)
  mem_bytes_per_step : int;  (** app DRAM traffic per step (contended) *)
  payload_stamp_bytes : int;  (** bytes actually written per new object *)
  description : string;
}

val min_heap_bytes : profile -> int
(** Estimated live set plus churn headroom; the Table II "minimum heap"
    equivalent. *)

val workload : profile -> Workload.t
