(* SPECjvm2008 crypto.signverify: signature verification over large
   messages.  The paper modifies the default 1 MiB messages to include
   10 MiB and 100 MiB objects.  Very few, very large, uniformly sized
   objects with hash-speed compute: the best case for SwapVA (97% GC-time
   reduction, Fig. 11).  The 100 MiB variant is provided but not part of
   the default suite — at simulation scale it holds only a couple of
   objects (DESIGN.md notes the scale-down). *)

let mib = 1024 * 1024

let profile ~variant ~size ~slots ~churn =
  {
    Demographics.name = (if variant = "" then "Sigverify" else "Sigverify-" ^ variant);
    suite = "SPECjvm2008";
    paper_threads = 256;
    paper_heap_gib = "28 - 56.7";
    sim_threads = 4;
    size_dist = Svagc_util.Dist.Fixed size;
    n_refs = 1;
    slots;
    churn_per_step = churn;
    compute_ns_per_step = 90_000.0;
    mem_bytes_per_step = 512 * 1024;
    payload_stamp_bytes = 96;
    description = "signature verification message buffers";
  }

let default = Demographics.workload (profile ~variant:"" ~size:mib ~slots:28 ~churn:2)

let ten_mib =
  Demographics.workload (profile ~variant:"10M" ~size:(10 * mib) ~slots:5 ~churn:2)

let hundred_mib =
  Demographics.workload (profile ~variant:"100M" ~size:(100 * mib) ~slots:2 ~churn:1)
