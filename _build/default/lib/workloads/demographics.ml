module Dist = Svagc_util.Dist
module Rng = Svagc_util.Rng
module Jvm = Svagc_core.Jvm
module Heap = Svagc_heap.Heap

type profile = {
  name : string;
  suite : string;
  paper_threads : int;
  paper_heap_gib : string;
  sim_threads : int;
  size_dist : Dist.t;
  n_refs : int;
  slots : int;
  churn_per_step : int;
  compute_ns_per_step : float;
  mem_bytes_per_step : int;
  payload_stamp_bytes : int;
  description : string;
}

let min_heap_bytes p =
  let mean = Dist.mean p.size_dist in
  (* Live set + one step of floating garbage + TLAB slack.  Large objects
     also carry up to a page of alignment waste each, and neighbour links
     keep a replaced object alive until its referrer is itself replaced —
     on average roughly half an extra working set. *)
  let align_slack =
    if mean >= 10.0 *. 4096.0 then float_of_int p.slots *. 4096.0 else 0.0
  in
  let live = float_of_int p.slots *. mean *. 1.25 in
  let churn = float_of_int p.churn_per_step *. mean *. 5.0 in
  int_of_float ((live +. churn +. align_slack) *. 1.10) + (1 lsl 20)

let alloc_object jvm rng p ~thread =
  let size =
    max Svagc_heap.Obj_model.header_bytes (Dist.sample rng p.size_dist)
  in
  Jvm.alloc ~thread jvm ~size ~n_refs:p.n_refs ~cls:0

let stamp jvm rng p obj =
  let heap = Jvm.heap jvm in
  let payload = obj.Svagc_heap.Obj_model.size - Svagc_heap.Obj_model.header_bytes in
  let len = min p.payload_stamp_bytes payload in
  if len > 0 then begin
    let b = Bytes.make len (Char.chr (Rng.int rng 256)) in
    Heap.write_payload heap obj ~off:0 b
  end

let link heap p slots ~at =
  (* Neighbour links keep the mark/adjust phases honest without turning
     the working set into one giant clique.  The right neighbour is
     re-pointed at the fresh object so a replaced object loses its last
     referrer immediately — otherwise dead-root chains accumulate and the
     live set drifts above the working set. *)
  if p.n_refs > 0 then begin
    let n = Array.length slots in
    (match (slots.(at), slots.((at + n - 1) mod n)) with
    | Some obj, Some target when target != obj ->
      Heap.set_ref heap obj ~slot:0 (Some target)
    | Some _, _ | None, _ -> ());
    match (slots.((at + 1) mod n), slots.(at)) with
    | Some right, Some fresh when right != fresh ->
      Heap.set_ref heap right ~slot:0 (Some fresh)
    | Some _, _ | None, _ -> ()
  end

let workload p =
  let setup jvm rng =
    let heap = Jvm.heap jvm in
    let slots = Array.make p.slots None in
    let place idx ~thread =
      (match slots.(idx) with
      | Some old ->
        Heap.remove_root heap old;
        slots.(idx) <- None
      | None -> ());
      let obj = alloc_object jvm rng p ~thread in
      Heap.add_root heap obj;
      stamp jvm rng p obj;
      (match Jvm.measure_core jvm with
      | Some core ->
        (* The application initializes what it allocates and then computes
           over it (several passes over the same pages — mutators have TLB
           locality that the GC's one-shot streams lack): this is the
           mutator's share of the Table III access stream. *)
        for _ = 1 to 3 do
          Heap.touch_object heap obj ~core ~max_bytes:16_384
        done;
        (* ...and streams over a random cold part of the working set once
           (scans have no cache reuse, which keeps the LLC miss rate high
           in both configurations, as the paper's Table III shows). *)
        (match slots.(Rng.int rng p.slots) with
        | Some other -> Heap.touch_object heap other ~core ~max_bytes:16_384
        | None -> ());
        (match slots.((idx + 1) mod p.slots) with
        | Some other -> Heap.touch_object heap other ~core ~max_bytes:8_192
        | None -> ())
      | None -> ());
      slots.(idx) <- Some obj;
      link heap p slots ~at:idx
    in
    (* Populate the initial working set. *)
    Array.iteri (fun i _ -> place i ~thread:(i mod p.sim_threads)) slots;
    let step_no = ref 0 in
    fun () ->
      incr step_no;
      for k = 0 to p.churn_per_step - 1 do
        let idx = Rng.int rng p.slots in
        place idx ~thread:((!step_no + k) mod p.sim_threads)
      done;
      Jvm.charge_app_ns jvm p.compute_ns_per_step;
      if p.mem_bytes_per_step > 0 then
        Jvm.charge_app_mem jvm ~bytes:p.mem_bytes_per_step
  in
  {
    Workload.name = p.name;
    suite = p.suite;
    paper_threads = p.paper_threads;
    paper_heap_gib = p.paper_heap_gib;
    sim_threads = p.sim_threads;
    min_heap_bytes = min_heap_bytes p;
    description = p.description;
    setup;
  }
