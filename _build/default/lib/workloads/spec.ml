let suite =
  [
    Bisort.workload;
    Parallel_sort.workload;
    Sparse.quarter;
    Sparse.half;
    Sparse.large;
    Fft.sixteenth;
    Fft.eighth;
    Fft.large;
    Sor.large_x10;
    Lu.large;
    Crypto_aes.workload;
    Sigverify.default;
    Compress.workload;
    Pagerank.workload;
  ]

let all =
  suite @ [ Sor.large; Sigverify.ten_mib; Sigverify.hundred_mib; Lru_cache.workload ]

let find name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None -> raise Not_found

let table_ii_rows () =
  List.map
    (fun w ->
      [
        w.Workload.name;
        w.Workload.suite;
        string_of_int w.Workload.paper_threads;
        w.Workload.paper_heap_gib;
        Printf.sprintf "%.1f MiB"
          (float_of_int w.Workload.min_heap_bytes /. 1024.0 /. 1024.0);
      ])
    all
