(* SPECjvm2008 scimark.lu.large: blocked LU factorization.  Matrix panels
   are reallocated as the factorization advances; blocks are uniform and
   comfortably above the swapping threshold.  Compute per byte sits between
   FFT and Sparse (O(b) flops per element). *)

let kib = 1024

let profile =
  {
    Demographics.name = "LU.large";
    suite = "SPECjvm2008";
    paper_threads = 224;
    paper_heap_gib = "3 - 5";
    sim_threads = 8;
    size_dist = Svagc_util.Dist.lognormal_mean ~mean:(64.0 *. 1024.0) ~sigma:0.35
        ~min:(16 * kib) ~max:(256 * kib);
    n_refs = 2;
    slots = 600;
    churn_per_step = 22;
    compute_ns_per_step = 130_000.0;
    mem_bytes_per_step = 512 * kib;
    payload_stamp_bytes = 96;
    description = "LU factorization panels (uniform ~64 KB blocks)";
  }

let large = Demographics.workload profile
