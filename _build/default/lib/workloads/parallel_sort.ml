(* OpenJDK Arrays.parallelSort over 2M-entry arrays: the input array is
   split into run buffers that are merged pairwise, so allocation is a mix
   of a few multi-megabyte arrays and many sub-megabyte merge chunks —
   almost all above the threshold. *)

let kib = 1024

let profile =
  {
    Demographics.name = "ParSort";
    suite = "OpenJDK";
    paper_threads = 896;
    paper_heap_gib = "16 - 50";
    sim_threads = 8;
    size_dist =
      Svagc_util.Dist.Choice
        [| (8.0, 512 * kib); (4.0, 128 * kib); (1.0, 4 * 1024 * kib) |];
    n_refs = 2;
    slots = 64;
    churn_per_step = 4;
    compute_ns_per_step = 190_000.0;
    mem_bytes_per_step = 1024 * kib;
    payload_stamp_bytes = 96;
    description = "parallel merge-sort run and merge buffers (2M entries)";
  }

let workload = Demographics.workload profile
