(* SPECjvm2008 crypto.aes: block-cipher encryption of medium buffers.
   High compute per byte (key schedule + rounds dominate), so GC is a
   small share of total time and the throughput gain is the smallest in
   the suite (15.2%, Fig. 15). *)

let kib = 1024

let profile =
  {
    Demographics.name = "CryptoAES";
    suite = "SPECjvm2008";
    paper_threads = 96;
    paper_heap_gib = "5.2 - 8.67";
    sim_threads = 8;
    size_dist =
      Svagc_util.Dist.lognormal_mean ~mean:(96.0 *. 1024.0) ~sigma:0.5
        ~min:(16 * kib) ~max:(512 * kib);
    n_refs = 1;
    slots = 400;
    churn_per_step = 16;
    compute_ns_per_step = 450_000.0;
    mem_bytes_per_step = 512 * kib;
    payload_stamp_bytes = 96;
    description = "AES plaintext/ciphertext buffers; compute-dominated";
  }

let workload = Demographics.workload profile
