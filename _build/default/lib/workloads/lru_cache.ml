(* The paper's synthesized LRU-cache benchmark (Figs. 2 and 14): a
   single-threaded, memory-bound application that creates and accesses
   objects "from small to large randomly" — cacheable values drawn
   uniformly from [1, max_value_bytes], 'entries' of them live at a time,
   zipf-skewed key popularity.  A miss evicts the least recently used
   entry and allocates a replacement; a hit touches the value.  This is
   the multi-JVM scalability workload. *)

module Rng = Svagc_util.Rng
module Jvm = Svagc_core.Jvm
module Heap = Svagc_heap.Heap

type config = {
  entries : int;
  max_value_bytes : int;
  accesses_per_step : int;
  zipf_s : float;
}

(* Paper scale: 2K entries, values in [1, 2M].  Simulation scale keeps the
   size range's order of magnitude but fewer entries so 32 co-running
   instances fit host memory (DESIGN.md). *)
let default_config =
  { entries = 64; max_value_bytes = 256 * 1024; accesses_per_step = 24; zipf_s = 0.9 }

let min_heap_bytes cfg =
  let mean = 2 * cfg.max_value_bytes / 3 in
  int_of_float (float_of_int (cfg.entries * mean) *. 1.35) + (2 * 1024 * 1024)

let setup cfg jvm rng =
  let heap = Jvm.heap jvm in
  let values = Array.make cfg.entries None in
  let last_use = Array.make cfg.entries 0 in
  let tick = ref 0 in
  let insert key =
    (match values.(key) with
    | Some old -> Heap.remove_root heap old
    | None -> ());
    (* "From small to large randomly": the whole [1, max] range occurs,
       but — like the paper's [1, 2M] values — the byte volume lives in
       the large entries (sqrt skew), so sub-threshold objects are a
       rounding error of the heap. *)
    let u = Rng.float rng in
    let size =
      Svagc_heap.Obj_model.header_bytes + 1
      + int_of_float (sqrt u *. float_of_int cfg.max_value_bytes)
    in
    let obj = Jvm.alloc jvm ~size ~n_refs:0 ~cls:0 in
    Heap.add_root heap obj;
    values.(key) <- Some obj;
    last_use.(key) <- !tick
  in
  for key = 0 to cfg.entries - 1 do
    insert key
  done;
  fun () ->
    for _ = 1 to cfg.accesses_per_step do
      incr tick;
      let key = Svagc_util.Dist.zipf rng ~n:cfg.entries ~s:cfg.zipf_s in
      match values.(key) with
      | Some obj when Rng.float rng > 0.25 ->
        (* Hit: the application streams over the value. *)
        last_use.(key) <- !tick;
        Jvm.charge_app_mem jvm ~bytes:obj.Svagc_heap.Obj_model.size;
        Jvm.charge_app_ns jvm 1_500.0
      | Some _ | None ->
        (* Miss (or forced refresh): evict the coldest entry and insert a
           fresh value for this key. *)
        let coldest = ref 0 in
        Array.iteri
          (fun i t -> if t < last_use.(!coldest) then coldest := i)
          last_use;
        (match values.(!coldest) with
        | Some old when !coldest <> key ->
          Heap.remove_root heap old;
          values.(!coldest) <- None
        | Some _ | None -> ());
        insert key;
        Jvm.charge_app_ns jvm 4_000.0
    done

let workload_of_config cfg =
  {
    Workload.name = "LRUCache";
    suite = "synthetic";
    paper_threads = 1;
    paper_heap_gib = "4.5";
    sim_threads = 1;
    min_heap_bytes = min_heap_bytes cfg;
    description = "memory-bound LRU cache, values in [1, 256K] (paper: [1, 2M])";
    setup = setup cfg;
  }

let workload = workload_of_config default_config
