open Svagc_vmem

type t = {
  pid : int;
  name : string;
  aspace : Address_space.t;
  machine : Machine.t;
  mutable current_core : int;
  mutable pinned : bool;
}

let next_pid = ref 100

let create ?name machine =
  incr next_pid;
  let pid = !next_pid in
  let name = match name with Some n -> n | None -> Printf.sprintf "proc-%d" pid in
  {
    pid;
    name;
    aspace = Address_space.create machine;
    machine;
    current_core = 0;
    pinned = false;
  }

let pid t = t.pid
let name t = t.name
let aspace t = t.aspace
let machine t = t.machine
let current_core t = t.current_core

let set_current_core t core =
  if core < 0 || core >= t.machine.Machine.ncores then
    invalid_arg "Process.set_current_core: no such core";
  if t.pinned then invalid_arg "Process.set_current_core: process is pinned";
  t.current_core <- core

let is_pinned t = t.pinned

let pin t ~core =
  if core < 0 || core >= t.machine.Machine.ncores then
    invalid_arg "Process.pin: no such core";
  t.current_core <- core;
  t.pinned <- true;
  t.machine.Machine.perf.Perf.pins <- t.machine.Machine.perf.Perf.pins + 1;
  t.machine.Machine.cost.Cost_model.pin_ns

let unpin t =
  t.pinned <- false;
  t.machine.Machine.cost.Cost_model.pin_ns
