open Svagc_vmem

let rotation_reference a ~delta =
  let n = Array.length a in
  if n = 0 then [||]
  else Array.init n (fun i -> a.((i + delta) mod n))

(* FindSwapPlace from Algorithm 2: destination index of the element
   currently at [i] under a left rotation by [delta] of a [total]-element
   window, where [total = pages + delta]. *)
let find_swap_place ~i ~delta ~pages = if i < delta then i + pages else i - delta

let swap proc ~pmd_caching ~per_page_flush ~src ~dst ~pages =
  if not (Addr.is_page_aligned src && Addr.is_page_aligned dst) then
    invalid_arg "Swap_overlap.swap: addresses must be page-aligned";
  if pages <= 0 then invalid_arg "Swap_overlap.swap: pages must be positive";
  if dst <= src then invalid_arg "Swap_overlap.swap: requires src < dst";
  let delta = (dst - src) / Addr.page_size in
  if delta > pages then
    invalid_arg "Swap_overlap.swap: ranges do not overlap (use Swapva.swap)";
  let machine = Process.machine proc in
  let aspace = Process.aspace proc in
  let pt = Address_space.page_table aspace in
  let walker = Pte_walker.create machine pt ~pmd_caching in
  let total = pages + delta in
  let perf = machine.Machine.perf in
  let cost = machine.Machine.cost in
  let slot_at idx = Pte_walker.get_pte walker (src + (idx * Addr.page_size)) in
  (* Verify the whole window is mapped before mutating anything, so a bad
     call cannot leave a half-rotated window behind.  This is the vma check
     a real kernel does up front; its cost is the caller's swap_setup_ns,
     so no walker cost is charged here. *)
  for idx = 0 to total - 1 do
    if not (Pte.is_present (Page_table.get_pte pt (src + (idx * Addr.page_size))))
    then invalid_arg "Swap_overlap.swap: window contains an unmapped page"
  done;
  let cycles = Svagc_util.Num_util.gcd delta pages in
  for cur_idx = 0 to cycles - 1 do
    let cur_slot = slot_at cur_idx in
    Pte_walker.charge_lock_pair walker;
    let pte_temp = ref (Pte_walker.read_slot walker cur_slot) in
    let k = ref (find_swap_place ~i:cur_idx ~delta ~pages) in
    while !k <> cur_idx do
      let k_slot = slot_at !k in
      Pte_walker.charge_lock_pair walker;
      let pte_k_temp = Pte_walker.read_slot walker k_slot in
      Pte_walker.write_slot walker k_slot !pte_temp;
      if per_page_flush then begin
        Pte_walker.add_cost walker cost.Cost_model.tlb_flush_page_ns;
        perf.Perf.tlb_flush_page <- perf.Perf.tlb_flush_page + 1
      end;
      perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 1;
      pte_temp := pte_k_temp;
      k := find_swap_place ~i:!k ~delta ~pages
    done;
    Pte_walker.write_slot walker cur_slot !pte_temp;
    if per_page_flush then begin
      Pte_walker.add_cost walker cost.Cost_model.tlb_flush_page_ns;
      perf.Perf.tlb_flush_page <- perf.Perf.tlb_flush_page + 1
    end;
    perf.Perf.ptes_swapped <- perf.Perf.ptes_swapped + 1
  done;
  perf.Perf.bytes_remapped <- perf.Perf.bytes_remapped + (pages * Addr.page_size);
  Pte_walker.cost_ns walker
