(** Baseline byte copying between virtual ranges of one address space.

    This is the `memmove` the paper's GCs fall back to: it physically moves
    every byte (handling overlap with memmove semantics), charges
    bandwidth-model time, and optionally streams the touched lines through
    the machine's cache model for the Table III experiment. *)

open Svagc_vmem

val move :
  ?measure_core:int ->
  ?cold:bool ->
  Address_space.t ->
  src:int ->
  dst:int ->
  len:int ->
  float
(** [move as_ ~src ~dst ~len] copies [len] bytes and returns the cost in
    ns.  Overlapping ranges behave like C [memmove].  When [measure_core]
    is given, source and destination lines are pushed through the LLC model
    and the page translations through that core's TLB.  [cold] (default
    false) charges DRAM-tier bandwidth regardless of size — the GC
    compaction case, where sources are compulsory misses; hot microbenches
    keep the size-tiered model. *)

val cost_ns : ?cold:bool -> Machine.t -> len:int -> float
(** The analytic cost of copying [len] bytes under the machine's current
    contention level, without doing it (used by planners/tests). *)
