(** TLB shootdown policies (§IV "Multi-Core Scalability of SwapVA").

    After SwapVA updates PTEs, stale translations must leave every TLB that
    might hold them.  Correctness is identical under all policies (the
    simulator always invalidates the affected entries everywhere); what
    differs is the *cost* charged and the IPI traffic counted:

    - [Broadcast_per_call]: the naive kernel path — every SwapVA invocation
      IPIs all other online cores (Fig. 9 "unoptimized").
    - [Process_targeted]: the paper's first technique — IPIs flush only the
      calling process's entries on other cores, then a local flush.  Same
      IPI count per call, cheaper remote work; we charge a reduced remote
      cost.
    - [Local_pinned]: the paper's second technique (Algorithm 4) — the
      caller is pinned and a single up-front broadcast was already paid by
      the GC cycle, so each call flushes locally only.
    - [Self_invalidate]: the timer-based self-flushing alternative the
      paper cites (Awad et al. [24]): no IPIs at all — the caller bumps a
      global epoch and flushes locally; remote cores notice the stale
      epoch and flush themselves off the critical path (their cost is not
      charged to the caller). *)

open Svagc_vmem

type policy =
  | Broadcast_per_call
  | Process_targeted
  | Local_pinned
  | Self_invalidate

val flush_after_swap : Machine.t -> asid:int -> core:int -> policy -> float
(** Invalidate the process's stale entries and return the cost in ns. *)

val cycle_prologue : Machine.t -> asid:int -> core:int -> policy -> float
(** Cost paid once per GC cycle before any swap: the Algorithm 4 line 5
    [flush_tlb_all_cores] for [Local_pinned], 0 for the others. *)

val pp_policy : Format.formatter -> policy -> unit

val policy_name : policy -> string
