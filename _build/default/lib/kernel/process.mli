(** A simulated process: one address space plus scheduling state.

    The paper's Algorithm 4 pins the compacting process to a core for the
    duration of a GC cycle so TLB invalidations stay local; {!pin} /
    {!unpin} model that (and charge the affinity cost). *)

open Svagc_vmem

type t

val create : ?name:string -> Machine.t -> t

val pid : t -> int

val name : t -> string

val aspace : t -> Address_space.t

val machine : t -> Machine.t

val current_core : t -> int
(** The core the process is running on (0 unless migrated). *)

val set_current_core : t -> int -> unit

val is_pinned : t -> bool

val pin : t -> core:int -> float
(** Pin to [core]; returns the scheduling cost in ns. *)

val unpin : t -> float
