(** The SwapVA system call (Algorithm 1) with the paper's three internal
    optimizations: PMD caching, request aggregation (Fig. 5) and the
    overlapping-area path (Algorithm 2, dispatched automatically).

    Swapping really exchanges frame numbers in the leaf page tables, so
    afterwards reads through the MMU observe the exchanged contents without
    any byte having moved. *)


type opts = {
  pmd_caching : bool;
  flush : Shootdown.policy;
  allow_overlap : bool;  (** dispatch overlapping requests to Algorithm 2 *)
}

val default_opts : opts
(** PMD caching on, [Local_pinned] flushing, overlap allowed — the
    configuration SVAGC runs with. *)

val naive_opts : opts
(** Everything off / broadcast flushing: the Fig. 8/9 baselines. *)

type request = {
  src : int;
  dst : int;
  pages : int;
}

val ranges_overlap : request -> bool

val swap : Process.t -> opts:opts -> src:int -> dst:int -> pages:int -> float
(** One syscall swapping [pages] pages between [src] and [dst]; returns the
    total simulated cost in ns (syscall crossing + setup + PTE work +
    shootdown per the policy).
    @raise Invalid_argument on unaligned/unmapped ranges, or on overlapping
    ranges when [allow_overlap] is false. *)

val swap_aggregated : Process.t -> opts:opts -> request list -> float
(** All requests in a single syscall: one crossing, one final shootdown
    (per-request setup is still paid).  Empty list costs nothing. *)

val swap_separated : Process.t -> opts:opts -> request list -> float
(** Convenience baseline: one {!swap} call per request (Fig. 5a / Fig. 6
    "separated"). *)
