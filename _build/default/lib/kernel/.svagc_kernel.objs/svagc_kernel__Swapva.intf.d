lib/kernel/swapva.mli: Process Shootdown
