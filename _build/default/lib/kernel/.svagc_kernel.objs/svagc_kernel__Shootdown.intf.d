lib/kernel/shootdown.mli: Format Machine Svagc_vmem
