lib/kernel/pte_walker.ml: Addr Array Cost_model Format Machine Page_table Perf Pte Svagc_vmem
