lib/kernel/memmove.mli: Address_space Machine Svagc_vmem
