lib/kernel/swapva.ml: Addr Address_space Cost_model List Machine Page_table Perf Process Pte Pte_walker Shootdown Svagc_vmem Swap_overlap
