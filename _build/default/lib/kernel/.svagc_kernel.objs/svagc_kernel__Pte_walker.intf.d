lib/kernel/pte_walker.mli: Machine Page_table Pte Svagc_vmem
