lib/kernel/swap_overlap.mli: Process
