lib/kernel/process.ml: Address_space Cost_model Machine Perf Printf Svagc_vmem
