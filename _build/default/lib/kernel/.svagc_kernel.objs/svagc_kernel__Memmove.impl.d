lib/kernel/memmove.ml: Address_space Cost_model Machine Perf Svagc_vmem
