lib/kernel/process.mli: Address_space Machine Svagc_vmem
