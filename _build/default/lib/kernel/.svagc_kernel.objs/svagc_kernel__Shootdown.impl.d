lib/kernel/shootdown.ml: Array Cost_model Format Machine Perf Svagc_vmem Tlb
