lib/kernel/swap_overlap.ml: Addr Address_space Array Cost_model Machine Page_table Perf Process Pte Pte_walker Svagc_util Svagc_vmem
