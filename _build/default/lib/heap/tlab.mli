(** Thread-local allocation buffers with the paper's bidirectional policy
    (§IV, "Memory Fragmentation Issue"): small objects bump upward from the
    TLAB's start while swappable (page-aligned) large objects bump downward
    from its end, so the two populations never interleave and page
    alignment costs no external fragmentation between neighbours.

    Objects larger than half a chunk bypass the TLAB and take the shared
    Algorithm 3 path ({!Heap.alloc}). *)

type t

val create : Heap.t -> thread_id:int -> chunk_bytes:int -> t
(** No chunk is reserved until the first allocation. *)

val thread_id : t -> int

val alloc : t -> size:int -> n_refs:int -> cls:int -> Obj_model.t
(** @raise Heap.Heap_full when a fresh chunk cannot be carved out of the
    heap.  After a GC the caller must {!retire} and allocate again (the
    chunk addresses are stale once objects have moved). *)

val retire : t -> unit
(** Drop the current chunk (its unused gap becomes floating garbage that
    the next compaction reclaims). *)

val unused_gap : t -> int
(** Bytes between the small and large cursors right now. *)
