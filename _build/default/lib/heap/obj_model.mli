(** Heap objects, mirrored as OCaml records.

    Payload bytes live in the simulated address space at [addr]; this
    record is the GC-visible metadata (the "object header" a JVM would
    keep in the first words of the object).  [size] includes the
    {!header_bytes}-byte header.  Reference slots hold the *current
    addresses* of the referenced objects (0 = null), and are rewritten by
    the GC's adjust-pointers phase. *)

type t = {
  id : int;
  mutable addr : int;
  size : int;
  cls : int;  (** workload-defined class tag *)
  refs : int array;
  mutable marked : bool;
  mutable forward : int;  (** destination address during a GC cycle *)
}

val header_bytes : int
(** 16: an id word and a size word stamped into simulated memory. *)

val make : id:int -> addr:int -> size:int -> cls:int -> n_refs:int -> t

val pages : t -> int
(** Pages spanned when page-aligned: ⌈size / page_size⌉. *)

val is_large : t -> threshold_pages:int -> bool
(** The Algorithm 3 test: does the object qualify for SwapVA moving (and
    hence page-aligned placement)? *)

val end_addr : t -> int
(** [addr + size]. *)

val pp : Format.formatter -> t -> unit
