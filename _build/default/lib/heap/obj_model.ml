open Svagc_vmem

type t = {
  id : int;
  mutable addr : int;
  size : int;
  cls : int;
  refs : int array;
  mutable marked : bool;
  mutable forward : int;
}

let header_bytes = 16

let make ~id ~addr ~size ~cls ~n_refs =
  if size < header_bytes then invalid_arg "Obj_model.make: size below header";
  if n_refs < 0 then invalid_arg "Obj_model.make: negative ref count";
  { id; addr; size; cls; refs = Array.make n_refs 0; marked = false; forward = 0 }

let pages t = Addr.pages_spanned t.size

let is_large t ~threshold_pages = t.size >= threshold_pages * Addr.page_size

let end_addr t = t.addr + t.size

let pp ppf t =
  Format.fprintf ppf "obj#%d@%a size=%d cls=%d refs=%d" t.id Addr.pp t.addr t.size
    t.cls (Array.length t.refs)
