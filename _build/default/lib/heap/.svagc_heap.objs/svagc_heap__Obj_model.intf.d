lib/heap/obj_model.mli: Format
