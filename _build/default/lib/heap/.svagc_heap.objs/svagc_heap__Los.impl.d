lib/heap/los.ml: Addr Address_space Cost_model Hashtbl List Machine Obj_model Svagc_kernel Svagc_vmem
