lib/heap/tlab.ml: Addr Heap Svagc_vmem
