lib/heap/heap.ml: Addr Address_space Array Bytes Format Hashtbl Int64 Machine Obj_model Perf Svagc_kernel Svagc_util Svagc_vmem
