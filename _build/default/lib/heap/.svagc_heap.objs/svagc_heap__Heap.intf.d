lib/heap/heap.mli: Obj_model Svagc_kernel Svagc_util
