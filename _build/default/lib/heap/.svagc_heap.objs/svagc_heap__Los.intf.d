lib/heap/los.mli: Obj_model Svagc_kernel
