lib/heap/tlab.mli: Heap Obj_model
