lib/heap/obj_model.ml: Addr Array Format Svagc_vmem
