open Svagc_vmem
module Process = Svagc_kernel.Process

type hole = {
  addr : int;
  pages : int;
}

type t = {
  proc : Process.t;
  base : int;
  size_bytes : int;
  mutable holes : hole list;  (* sorted by address, coalesced *)
  by_addr : (int, Obj_model.t) Hashtbl.t;
  mutable next_id : int;
  mutable mapped : bool;
}

exception Los_full

let default_base = 16 * 1024 * 1024 * 1024

let create proc ?(base = default_base) ~size_bytes () =
  if not (Addr.is_page_aligned base) then invalid_arg "Los.create: unaligned base";
  let size_bytes = Addr.align_up size_bytes in
  if size_bytes <= 0 then invalid_arg "Los.create: empty region";
  {
    proc;
    base;
    size_bytes;
    holes = [ { addr = base; pages = size_bytes / Addr.page_size } ];
    by_addr = Hashtbl.create 64;
    next_id = 1;
    mapped = false;
  }

let ensure_mapped t =
  if not t.mapped then begin
    Address_space.map_range (Process.aspace t.proc) ~va:t.base
      ~pages:(t.size_bytes / Addr.page_size);
    t.mapped <- true
  end

let capacity_bytes t = t.size_bytes

let free_bytes t =
  List.fold_left (fun acc h -> acc + (h.pages * Addr.page_size)) 0 t.holes

let largest_hole_bytes t =
  List.fold_left (fun acc h -> max acc (h.pages * Addr.page_size)) 0 t.holes

let hole_count t = List.length t.holes

let external_fragmentation t =
  let free = free_bytes t in
  if free = 0 then 0.0
  else 1.0 -. (float_of_int (largest_hole_bytes t) /. float_of_int free)

let can_fit t ~size =
  let pages = Addr.pages_spanned size in
  List.exists (fun h -> h.pages >= pages) t.holes

let maintenance_cost_ns t =
  let cost = (Process.machine t.proc).Machine.cost in
  float_of_int (hole_count t) *. 2.0 *. cost.Cost_model.pt_entry_ns

let alloc t ~size ~n_refs ~cls =
  if size < Obj_model.header_bytes then invalid_arg "Los.alloc: size below header";
  ensure_mapped t;
  let pages = Addr.pages_spanned size in
  (* First fit over the address-ordered free list. *)
  let rec take acc = function
    | [] -> raise Los_full
    | h :: rest when h.pages >= pages ->
      let remainder =
        if h.pages = pages then []
        else [ { addr = h.addr + (pages * Addr.page_size); pages = h.pages - pages } ]
      in
      (h.addr, List.rev_append acc (remainder @ rest))
    | h :: rest -> take (h :: acc) rest
  in
  let addr, holes = take [] t.holes in
  t.holes <- holes;
  let obj = Obj_model.make ~id:t.next_id ~addr ~size ~cls ~n_refs in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.by_addr addr obj;
  obj

let free t obj =
  let addr = obj.Obj_model.addr in
  (match Hashtbl.find_opt t.by_addr addr with
  | Some o when o == obj -> Hashtbl.remove t.by_addr addr
  | Some _ | None -> invalid_arg "Los.free: object not resident");
  let pages = Obj_model.pages obj in
  (* Insert in address order, coalescing with both neighbours. *)
  let rec insert = function
    | [] -> [ { addr; pages } ]
    | h :: rest when addr + (pages * Addr.page_size) < h.addr ->
      { addr; pages } :: h :: rest
    | h :: rest when addr + (pages * Addr.page_size) = h.addr ->
      { addr; pages = pages + h.pages } :: rest
    | h :: rest when h.addr + (h.pages * Addr.page_size) = addr -> (
      (* Merge left; the merged block may now touch the next hole. *)
      let merged = { addr = h.addr; pages = h.pages + pages } in
      match rest with
      | next :: tail when merged.addr + (merged.pages * Addr.page_size) = next.addr
        ->
        { merged with pages = merged.pages + next.pages } :: tail
      | _ -> merged :: rest)
    | h :: rest -> h :: insert rest
  in
  t.holes <- insert t.holes

let object_at t addr = Hashtbl.find_opt t.by_addr addr

let object_count t = Hashtbl.length t.by_addr
