(** A Large Object Space: the traditional non-moving home for big objects
    that the paper argues SwapVA makes unnecessary (§I: "the allocation of
    large objects in non-copying LOSs to avoid copying costs results in
    the fragmentation of these allocations, as well as increased
    maintenance costs and eventual compactions").

    Page-granular first-fit allocation over a dedicated region with a
    coalescing free list.  Objects never move, so freeing leaves holes;
    the fragmentation metrics below quantify the cost SVAGC avoids by
    keeping large objects in the conventional (compacted) heap. *)

type t

val create : Svagc_kernel.Process.t -> ?base:int -> size_bytes:int -> unit -> t
(** A region of [size_bytes] (page aligned) at [base] (default 16 GiB). *)

exception Los_full
(** Raised when no *contiguous* hole fits — even if enough total bytes are
    free (external fragmentation, the failure mode the paper describes). *)

val alloc : t -> size:int -> n_refs:int -> cls:int -> Obj_model.t
(** First-fit, rounded up to whole pages.  @raise Los_full. *)

val free : t -> Obj_model.t -> unit
(** Return the object's pages to the free list, coalescing with adjacent
    holes.  @raise Invalid_argument if the object is not resident. *)

val object_at : t -> int -> Obj_model.t option

val object_count : t -> int

(** {2 Fragmentation metrics} *)

val capacity_bytes : t -> int

val free_bytes : t -> int
(** Total free, across all holes. *)

val largest_hole_bytes : t -> int

val hole_count : t -> int

val external_fragmentation : t -> float
(** [1 - largest_hole / free_bytes]: 0 when free space is one block, →1 as
    it shatters.  0 when nothing is free. *)

val can_fit : t -> size:int -> bool

val maintenance_cost_ns : t -> float
(** The free-list walk cost the next allocation will pay (per-hole scan at
    the machine's page-table access cost) — the paper's "increased
    maintenance costs". *)
