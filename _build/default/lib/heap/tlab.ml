open Svagc_vmem

type chunk = {
  chunk_start : int;
  chunk_end : int;
  mutable small_cursor : int;  (* grows upward *)
  mutable large_cursor : int;  (* grows downward; always page-aligned *)
}

type t = {
  heap : Heap.t;
  thread_id : int;
  chunk_bytes : int;
  mutable chunk : chunk option;
}

let create heap ~thread_id ~chunk_bytes =
  if chunk_bytes < 4 * Addr.page_size then
    invalid_arg "Tlab.create: chunk must be at least 4 pages";
  { heap; thread_id; chunk_bytes; chunk = None }

let thread_id t = t.thread_id

let retire t = t.chunk <- None

let unused_gap t =
  match t.chunk with
  | None -> 0
  | Some c -> max 0 (c.large_cursor - c.small_cursor)

let fresh_chunk t =
  let start = Heap.alloc_chunk t.heap ~bytes:t.chunk_bytes in
  let chunk_end = start + t.chunk_bytes in
  {
    chunk_start = start;
    chunk_end;
    small_cursor = start;
    large_cursor = Addr.align_down chunk_end;
  }

let is_large t size = size >= Heap.threshold_pages t.heap * Addr.page_size

(* Try to place [size] bytes in [c]; [None] when the chunk is exhausted. *)
let try_place t c ~size =
  if is_large t size then begin
    (* Downward, whole pages: the object ends on the current (aligned)
       cursor and starts on a page boundary; the tail alignment gap is the
       internal waste Algorithm 3 accepts. *)
    let place_end = c.large_cursor in
    let addr = Addr.align_down (place_end - size) in
    if addr < c.small_cursor then None
    else begin
      c.large_cursor <- addr;
      Some (addr, place_end - (addr + size))
    end
  end
  else begin
    let addr = c.small_cursor in
    if addr + size > c.large_cursor then None
    else begin
      c.small_cursor <- addr + size;
      Some (addr, 0)
    end
  end

let alloc t ~size ~n_refs ~cls =
  if size > t.chunk_bytes / 2 then Heap.alloc t.heap ~size ~n_refs ~cls
  else begin
    let c =
      match t.chunk with
      | Some c -> c
      | None ->
        let c = fresh_chunk t in
        t.chunk <- Some c;
        c
    in
    match try_place t c ~size with
    | Some (addr, _waste) -> Heap.alloc_at t.heap ~addr ~size ~n_refs ~cls
    | None ->
      (* Chunk exhausted: retire and retry once in a fresh chunk. *)
      let c = fresh_chunk t in
      t.chunk <- Some c;
      (match try_place t c ~size with
      | Some (addr, _waste) -> Heap.alloc_at t.heap ~addr ~size ~n_refs ~cls
      | None -> invalid_arg "Tlab.alloc: object cannot fit a fresh chunk")
  end
