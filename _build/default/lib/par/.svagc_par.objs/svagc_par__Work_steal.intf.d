lib/par/work_steal.mli:
