lib/par/work_steal.ml: Array Float Svagc_util
