type t = { mutable now : float }

let create () = { now = 0.0 }

let now_ns t = t.now

let advance t delta =
  if delta < 0.0 then invalid_arg "Clock.advance: negative delta";
  t.now <- t.now +. delta

let reset t = t.now <- 0.0

let pp_ns ppf ns =
  if ns < 1e3 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Format.fprintf ppf "%.2fms" (ns /. 1e6)
  else Format.fprintf ppf "%.3fs" (ns /. 1e9)

let pp ppf t = pp_ns ppf t.now
