type t = {
  frames : bytes option array;
  free : int Svagc_util.Vec.t;
  mutable in_use : int;
}

exception Out_of_frames

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  let free = Svagc_util.Vec.create () in
  (* Push in reverse so frame numbers are handed out in increasing order,
     which keeps traces readable. *)
  for i = frames - 1 downto 0 do
    Svagc_util.Vec.push free i
  done;
  { frames = Array.make frames None; free; in_use = 0 }

let capacity_frames t = Array.length t.frames

let frames_in_use t = t.in_use

let alloc_frame t =
  match Svagc_util.Vec.pop t.free with
  | None -> raise Out_of_frames
  | Some frame ->
    t.frames.(frame) <- Some (Bytes.make Addr.page_size '\000');
    t.in_use <- t.in_use + 1;
    frame

let free_frame t frame =
  match t.frames.(frame) with
  | None -> invalid_arg "Phys_mem.free_frame: frame not in use"
  | Some _ ->
    t.frames.(frame) <- None;
    t.in_use <- t.in_use - 1;
    Svagc_util.Vec.push t.free frame

let frame_bytes t frame =
  if frame < 0 || frame >= Array.length t.frames then
    invalid_arg "Phys_mem.frame_bytes: no such frame";
  match t.frames.(frame) with
  | None -> invalid_arg "Phys_mem.frame_bytes: frame not in use"
  | Some b -> b

let check_range ~off ~len =
  if off < 0 || len < 0 || off + len > Addr.page_size then
    invalid_arg "Phys_mem: range escapes the page"

let read t ~frame ~off ~len =
  check_range ~off ~len;
  Bytes.sub (frame_bytes t frame) off len

let write t ~frame ~off ~src ~src_off ~len =
  check_range ~off ~len;
  Bytes.blit src src_off (frame_bytes t frame) off len

let blit t ~src_frame ~src_off ~dst_frame ~dst_off ~len =
  check_range ~off:src_off ~len;
  check_range ~off:dst_off ~len;
  Bytes.blit (frame_bytes t src_frame) src_off (frame_bytes t dst_frame) dst_off len
