(** Page-table entries, encoded as single immutable words like hardware PTEs.

    A leaf table is an [int array]; swapping two PTEs is swapping two array
    slots, which is exactly the operation the SwapVA system call performs. *)

type value = int
(** 0 = not present; otherwise [frame + 1]. *)

val none : value

val make : frame:int -> value

val is_present : value -> bool

val frame_exn : value -> int
(** @raise Invalid_argument on a non-present entry. *)

val pp : Format.formatter -> value -> unit
