type node =
  | Dir of node option array
  | Leaf of Pte.value array

type t = { root : node option array }

let walk_dir_levels = 4

let create () = { root = Array.make Addr.entries_per_table None }

let indices va =
  (Addr.pgd_index va, Addr.p4d_index va, Addr.pud_index va, Addr.pmd_index va)

let find_leaf t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let step slot =
    match slot with
    | Some (Dir entries) -> Some entries
    | Some (Leaf _) | None -> None
  in
  match step t.root.(i_pgd) with
  | None -> None
  | Some p4d -> (
    match step p4d.(i_p4d) with
    | None -> None
    | Some pud -> (
      match step pud.(i_pud) with
      | None -> None
      | Some pmd -> (
        match pmd.(i_pmd) with
        | Some (Leaf ptes) -> Some ptes
        | Some (Dir _) | None -> None)))

let ensure_dir slot_get slot_set =
  match slot_get () with
  | Some (Dir entries) -> entries
  | Some (Leaf _) -> invalid_arg "Page_table: leaf found at directory level"
  | None ->
    let entries = Array.make Addr.entries_per_table None in
    slot_set (Dir entries);
    entries

let ensure_leaf t va =
  let i_pgd, i_p4d, i_pud, i_pmd = indices va in
  let p4d =
    ensure_dir (fun () -> t.root.(i_pgd)) (fun n -> t.root.(i_pgd) <- Some n)
  in
  let pud =
    ensure_dir (fun () -> p4d.(i_p4d)) (fun n -> p4d.(i_p4d) <- Some n)
  in
  let pmd =
    ensure_dir (fun () -> pud.(i_pud)) (fun n -> pud.(i_pud) <- Some n)
  in
  match pmd.(i_pmd) with
  | Some (Leaf ptes) -> ptes
  | Some (Dir _) -> invalid_arg "Page_table: directory found at leaf level"
  | None ->
    let ptes = Array.make Addr.entries_per_table Pte.none in
    pmd.(i_pmd) <- Some (Leaf ptes);
    ptes

let get_pte t va =
  match find_leaf t va with
  | None -> Pte.none
  | Some ptes -> ptes.(Addr.pte_index va)

let set_pte t va v =
  let ptes = ensure_leaf t va in
  ptes.(Addr.pte_index va) <- v

let translate t va =
  let v = get_pte t va in
  if Pte.is_present v then Some (Pte.frame_exn v, Addr.page_offset va) else None

let fold_leaves t ~f =
  (* Reconstruct virtual page numbers from the index path. *)
  let rec walk node ~level ~base =
    match node with
    | Leaf ptes ->
      Array.iteri
        (fun i v ->
          if Pte.is_present v then
            f ~vpn:((base * Addr.entries_per_table) + i) ~frame:(Pte.frame_exn v))
        ptes
    | Dir entries ->
      Array.iteri
        (fun i slot ->
          match slot with
          | None -> ()
          | Some child ->
            walk child ~level:(level - 1) ~base:((base * Addr.entries_per_table) + i))
        entries
  in
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some child -> walk child ~level:(walk_dir_levels - 1) ~base:i)
    t.root

let iter_mapped t ~f = fold_leaves t ~f

let mapped_pages t =
  let n = ref 0 in
  fold_leaves t ~f:(fun ~vpn:_ ~frame:_ -> incr n);
  !n
