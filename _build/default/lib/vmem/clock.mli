(** A simulated clock: a monotone accumulator of nanoseconds.

    Kernel and GC primitives return costs; the caller advances whichever
    clock the cost belongs to (application time, GC pause, per-thread
    time in the work-stealing executor). *)

type t

val create : unit -> t

val now_ns : t -> float

val advance : t -> float -> unit
(** @raise Invalid_argument on a negative delta. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
(** Human-friendly: picks ns/us/ms/s. *)

val pp_ns : Format.formatter -> float -> unit
(** Render a raw nanosecond quantity with the same unit scaling. *)
