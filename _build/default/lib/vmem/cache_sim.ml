type stats = {
  mutable accesses : int;
  mutable misses : int;
}

type t = {
  tags : int array array; (* -1 = invalid *)
  stamps : int array array;
  n_sets : int;
  line : int;
  line_shift : int;
  mutable tick : int;
  st : stats;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create ?(size_bytes = 8 * 1024 * 1024) ?(line_bytes = 64) ?(ways = 16) () =
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 then invalid_arg "Cache_sim.create: geometry mismatch";
  let n_sets = lines / ways in
  {
    tags = Array.init n_sets (fun _ -> Array.make ways (-1));
    stamps = Array.init n_sets (fun _ -> Array.make ways 0);
    n_sets;
    line = line_bytes;
    line_shift = log2 line_bytes;
    tick = 0;
    st = { accesses = 0; misses = 0 };
  }

let access t ~addr =
  t.tick <- t.tick + 1;
  t.st.accesses <- t.st.accesses + 1;
  let line_no = addr lsr t.line_shift in
  let set = line_no mod t.n_sets in
  let tag = line_no / t.n_sets in
  let tags = t.tags.(set) and stamps = t.stamps.(set) in
  let ways = Array.length tags in
  let hit = ref false in
  for w = 0 to ways - 1 do
    if tags.(w) = tag then begin
      hit := true;
      stamps.(w) <- t.tick
    end
  done;
  if not !hit then begin
    t.st.misses <- t.st.misses + 1;
    (* Fill, evicting LRU (or the first invalid way). *)
    let victim = ref 0 in
    for w = 1 to ways - 1 do
      if tags.(w) = -1 && tags.(!victim) <> -1 then victim := w
      else if tags.(!victim) <> -1 && stamps.(w) < stamps.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    stamps.(!victim) <- t.tick
  end

let access_range t ~addr ~len =
  if len > 0 then begin
    let first = addr lsr t.line_shift in
    let last = (addr + len - 1) lsr t.line_shift in
    for line = first to last do
      access t ~addr:(line lsl t.line_shift)
    done
  end

let stats t = t.st

let miss_rate t =
  if t.st.accesses = 0 then 0.0
  else float_of_int t.st.misses /. float_of_int t.st.accesses *. 100.0

let reset_stats t =
  t.st.accesses <- 0;
  t.st.misses <- 0

let line_bytes t = t.line
