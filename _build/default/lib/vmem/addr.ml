let page_shift = 12
let page_size = 1 lsl page_shift
let level_bits = 9
let entries_per_table = 1 lsl level_bits
let pages_per_pmd = entries_per_table
let page_number va = va lsr page_shift
let page_offset va = va land (page_size - 1)
let of_page vpn = vpn lsl page_shift
let is_page_aligned va = page_offset va = 0
let align_up va = (va + page_size - 1) land lnot (page_size - 1)
let align_down va = va land lnot (page_size - 1)
let pages_spanned len = (len + page_size - 1) lsr page_shift

let index ~level va =
  (va lsr (page_shift + (level * level_bits))) land (entries_per_table - 1)

let pte_index va = index ~level:0 va
let pmd_index va = index ~level:1 va
let pud_index va = index ~level:2 va
let p4d_index va = index ~level:3 va
let pgd_index va = index ~level:4 va
let pp ppf va = Format.fprintf ppf "0x%x" va
