(** Virtual-address arithmetic for the simulated x86-64-style MMU.

    Addresses are plain [int]s (OCaml's 63-bit ints comfortably cover the
    48-bit canonical space).  Pages are 4 KiB and the radix tree has four
    levels of 512 entries each, exactly as in the paper's Algorithm 1
    (PGD -> P4D -> PUD -> PMD -> PTE). *)

val page_shift : int
(** 12. *)

val page_size : int
(** 4096 bytes. *)

val level_bits : int
(** 9: entries per directory level = 512. *)

val entries_per_table : int
(** 512. *)

val pages_per_pmd : int
(** 512: pages covered by one PTE leaf table; crossing this boundary
    invalidates the paper's PMD cache. *)

val page_number : int -> int
(** Virtual page number of an address. *)

val page_offset : int -> int
(** Offset within the page. *)

val of_page : int -> int
(** First byte address of a virtual page number. *)

val is_page_aligned : int -> bool

val align_up : int -> int
(** Round up to the next page boundary (identity when aligned). *)

val align_down : int -> int

val pages_spanned : int -> int
(** [pages_spanned len] is ⌈len / page_size⌉. *)

val pgd_index : int -> int

val p4d_index : int -> int

val pud_index : int -> int

val pmd_index : int -> int

val pte_index : int -> int

val pp : Format.formatter -> int -> unit
(** Hexadecimal rendering. *)
