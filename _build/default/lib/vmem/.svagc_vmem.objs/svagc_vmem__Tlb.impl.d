lib/vmem/tlb.ml: Array
