lib/vmem/cache_sim.ml: Array
