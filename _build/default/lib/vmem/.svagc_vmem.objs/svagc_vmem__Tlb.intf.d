lib/vmem/tlb.mli:
