lib/vmem/perf.ml: Format
