lib/vmem/cost_model.ml: Float Format
