lib/vmem/page_table.ml: Addr Array Pte
