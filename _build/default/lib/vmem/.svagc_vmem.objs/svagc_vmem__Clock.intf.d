lib/vmem/clock.mli: Format
