lib/vmem/perf.mli: Format
