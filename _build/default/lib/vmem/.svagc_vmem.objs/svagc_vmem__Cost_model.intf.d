lib/vmem/cost_model.mli: Format
