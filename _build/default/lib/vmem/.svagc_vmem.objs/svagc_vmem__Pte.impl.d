lib/vmem/pte.ml: Format
