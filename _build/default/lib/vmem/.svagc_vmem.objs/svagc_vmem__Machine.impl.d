lib/vmem/machine.ml: Addr Array Cache_sim Cost_model Perf Phys_mem Stdlib Tlb
