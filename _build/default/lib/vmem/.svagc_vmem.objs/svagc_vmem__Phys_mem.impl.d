lib/vmem/phys_mem.ml: Addr Array Bytes Svagc_util
