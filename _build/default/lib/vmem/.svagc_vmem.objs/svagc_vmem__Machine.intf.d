lib/vmem/machine.mli: Cache_sim Cost_model Perf Phys_mem Tlb
