lib/vmem/phys_mem.mli:
