lib/vmem/address_space.mli: Machine Page_table
