lib/vmem/page_table.mli: Pte
