lib/vmem/address_space.ml: Addr Bytes Cache_sim Char Format Int64 Machine Page_table Phys_mem Pte Tlb
