lib/vmem/cache_sim.mli:
