lib/vmem/clock.ml: Format
