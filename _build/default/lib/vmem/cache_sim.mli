(** Set-associative last-level cache model over *physical* addresses.

    Used to reproduce Table III: byte-copy compaction streams 2x the object
    bytes through the cache (polluting it), while SwapVA only touches page
    table words.  Accesses are recorded per 64-byte line. *)

type t

type stats = {
  mutable accesses : int;
  mutable misses : int;
}

val create : ?size_bytes:int -> ?line_bytes:int -> ?ways:int -> unit -> t
(** Defaults: 8 MiB, 64 B lines, 16-way. *)

val access : t -> addr:int -> unit
(** Touch one physical address (one line). *)

val access_range : t -> addr:int -> len:int -> unit
(** Touch every line in [\[addr, addr+len)]. *)

val stats : t -> stats

val miss_rate : t -> float
(** misses / accesses in percent; 0 when no accesses. *)

val reset_stats : t -> unit

val line_bytes : t -> int
