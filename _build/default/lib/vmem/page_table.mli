(** Four-level radix page table (PGD -> P4D -> PUD -> PMD -> PTE leaf).

    The structure mirrors Algorithm 1's walk: each [getPTE] descends four
    directory levels to reach the leaf array of PTE words.  The leaf array
    is exposed on purpose — the paper's PMD-caching optimization consists of
    holding on to that array across consecutive pages, and SwapVA swaps
    slots inside it. *)

type t

val create : unit -> t

val find_leaf : t -> int -> Pte.value array option
(** [find_leaf t va] is the PTE leaf table covering [va], if the directory
    path exists.  Performs no allocation. *)

val ensure_leaf : t -> int -> Pte.value array
(** Like {!find_leaf} but materializes the directory path on demand. *)

val get_pte : t -> int -> Pte.value
(** [Pte.none] when unmapped. *)

val set_pte : t -> int -> Pte.value -> unit
(** Creates the directory path if needed. *)

val translate : t -> int -> (int * int) option
(** [translate t va] is [Some (frame, offset)] when mapped. *)

val mapped_pages : t -> int
(** Number of present PTEs (O(mapped), for tests and teardown). *)

val iter_mapped : t -> f:(vpn:int -> frame:int -> unit) -> unit

val walk_dir_levels : int
(** Directory levels traversed per [getPTE]: 4 (pgd, p4d, pud, pmd). *)
