type value = int

let none = 0

let make ~frame =
  if frame < 0 then invalid_arg "Pte.make: negative frame";
  frame + 1

let is_present v = v <> none

let frame_exn v =
  if v = none then invalid_arg "Pte.frame_exn: entry not present";
  v - 1

let pp ppf v =
  if is_present v then Format.fprintf ppf "pte(frame=%d)" (frame_exn v)
  else Format.pp_print_string ppf "pte(none)"
