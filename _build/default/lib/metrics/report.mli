(** Formatting helpers shared by the experiment printers. *)

val ns : float -> string
(** Scaled time: "1.23ms". *)

val pct : float -> string
(** "12.3%". *)

val speedup : float -> string
(** "3.82x". *)

val bytes : int -> string
(** "1.5MiB". *)

val section : string -> unit
(** Banner printed before each experiment's output. *)

val subsection : string -> unit

val kv : string -> string -> unit
(** Aligned "key: value" line. *)

val note : string -> unit

val paper_vs_measured : (string * string * string) list -> unit
(** Rows of (quantity, paper value, measured value). *)
