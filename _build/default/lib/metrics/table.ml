type align =
  | Left
  | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~headers rows =
  let ncols = List.length headers in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Table.render: aligns length mismatch"
    | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render_row cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print ?aligns ~headers rows = print_endline (render ?aligns ~headers rows)
