(** Minimal ASCII table rendering for the experiment harness. *)

type align =
  | Left
  | Right

val render : ?aligns:align list -> headers:string list -> string list list -> string
(** [render ~headers rows] pads columns to their widest cell.  [aligns]
    defaults to [Left] for the first column and [Right] for the rest.
    Rows shorter than the header are padded with empty cells. *)

val print : ?aligns:align list -> headers:string list -> string list list -> unit
