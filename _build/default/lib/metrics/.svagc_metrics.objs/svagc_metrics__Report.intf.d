lib/metrics/report.mli:
