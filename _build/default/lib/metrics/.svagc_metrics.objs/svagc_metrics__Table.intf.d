lib/metrics/table.mli:
