lib/metrics/report.ml: Format List Printf String Svagc_vmem Table
