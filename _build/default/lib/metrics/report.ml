let ns v = Format.asprintf "%a" Svagc_vmem.Clock.pp_ns v

let pct v = Printf.sprintf "%.1f%%" v

let speedup v = Printf.sprintf "%.2fx" v

let bytes n =
  let f = float_of_int n in
  if f < 1024.0 then Printf.sprintf "%dB" n
  else if f < 1024.0 ** 2.0 then Printf.sprintf "%.1fKiB" (f /. 1024.0)
  else if f < 1024.0 ** 3.0 then Printf.sprintf "%.1fMiB" (f /. (1024.0 ** 2.0))
  else Printf.sprintf "%.2fGiB" (f /. (1024.0 ** 3.0))

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

let kv key value = Printf.printf "  %-38s %s\n" (key ^ ":") value

let note msg = Printf.printf "  (%s)\n" msg

let paper_vs_measured rows =
  Table.print
    ~headers:[ "quantity"; "paper"; "measured" ]
    (List.map (fun (q, p, m) -> [ q; p; m ]) rows)
