(* Fixtures shared by the micro-benchmarks: a populated heap with the
   usual small/large object mix (mirrors test/helpers.ml, duplicated here
   because bench and test are separate executables). *)

open Svagc_vmem
open Svagc_heap
module Process = Svagc_kernel.Process
module Rng = Svagc_util.Rng

let fresh_heap ?(size_mib = 24) () =
  let machine = Machine.create ~ncores:4 ~phys_mib:128 Cost_model.xeon_6130 in
  let proc = Process.create machine in
  Heap.create proc ~threshold_pages:10 ~size_bytes:(size_mib * 1024 * 1024) ()

let populate ?(n = 120) ?(seed = 42) heap =
  let rng = Rng.create ~seed in
  let prev = ref None in
  for i = 0 to n - 1 do
    let size =
      if Rng.int rng 10 < 4 then (40 * 1024) + Rng.int rng (64 * 1024)
      else 64 + Rng.int rng 2048
    in
    let obj = Heap.alloc heap ~size ~n_refs:2 ~cls:0 in
    if i mod 2 = 0 then begin
      Heap.add_root heap obj;
      (match !prev with
      | Some p -> Heap.set_ref heap obj ~slot:0 (Some p)
      | None -> ());
      prev := Some obj
    end
  done
