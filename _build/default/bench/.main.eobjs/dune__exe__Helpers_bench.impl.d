bench/helpers_bench.ml: Cost_model Heap Machine Svagc_heap Svagc_kernel Svagc_util Svagc_vmem
