bench/main.mli:
