(* Shared fixtures for the GC-level test suites: random-but-deterministic
   heap populations with a mix of small and swappable objects, links and a
   partial root set. *)

open Svagc_vmem
open Svagc_heap
module Process = Svagc_kernel.Process
module Rng = Svagc_util.Rng

let machine ?(ncores = 4) ?(phys_mib = 128) () =
  Machine.create ~ncores ~phys_mib Cost_model.xeon_6130

let heap ?(size_mib = 24) ?(threshold_pages = 10) ?machine:m () =
  let m = match m with Some m -> m | None -> machine () in
  let proc = Process.create m in
  Heap.create proc ~threshold_pages ~size_bytes:(size_mib * 1024 * 1024) ()

type population = {
  heap : Heap.t;
  rooted : Obj_model.t list;  (** objects expected to survive *)
  dropped : Obj_model.t list;  (** garbage *)
}

(* Allocate [n] objects; ~40% large (page-aligned, swappable), 60% small;
   even-indexed objects become roots, odd ones are garbage; each rooted
   object links to the previous rooted one. *)
let populate ?(n = 120) ?(seed = 42) heap =
  let rng = Rng.create ~seed in
  let rooted = ref [] and dropped = ref [] in
  let prev_root = ref None in
  for i = 0 to n - 1 do
    let size =
      if Rng.int rng 10 < 4 then (40 * 1024) + Rng.int rng (64 * 1024)
      else 64 + Rng.int rng 2048
    in
    let obj = Heap.alloc heap ~size ~n_refs:2 ~cls:(i mod 3) in
    (* Distinct payload so checksums discriminate objects. *)
    Heap.write_payload heap obj ~off:0
      (Bytes.make (min 64 (size - Obj_model.header_bytes)) (Char.chr (i mod 256)));
    if i mod 2 = 0 then begin
      Heap.add_root heap obj;
      (match !prev_root with
      | Some p -> Heap.set_ref heap obj ~slot:0 (Some p)
      | None -> ());
      prev_root := Some obj;
      rooted := obj :: !rooted
    end
    else dropped := obj :: !dropped
  done;
  { heap; rooted = List.rev !rooted; dropped = List.rev !dropped }

let checksums heap objs = List.map (fun o -> (o, Heap.checksum_object heap o)) objs

let assert_checksums heap tagged =
  List.iter
    (fun (o, c) ->
      if Heap.checksum_object heap o <> c then
        Alcotest.failf "object %d: payload corrupted by the GC" o.Obj_model.id;
      if not (Heap.header_matches heap o) then
        Alcotest.failf "object %d: header mismatch after move" o.Obj_model.id)
    tagged

(* A reachability-correct view: every rooted object and everything it
   links to must be live after a collection. *)
let assert_live_set heap rooted =
  List.iter
    (fun o ->
      match Heap.object_at heap o.Obj_model.addr with
      | Some found when found == o -> ()
      | Some _ | None ->
        Alcotest.failf "rooted object %d lost by the GC" o.Obj_model.id)
    rooted
