(* Tests for the Table I extension collectors: the generational nursery
   (minor copying with SwapVA) and the semispace evacuation model. *)

open Svagc_vmem
open Svagc_heap
module Generational = Svagc_gc.Generational
module Semispace = Svagc_gc.Semispace
module Compact = Svagc_gc.Compact
module Move_object = Svagc_core.Move_object
module Config = Svagc_core.Config

let qtest ?(count = 10) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let machine () = Machine.create ~ncores:4 ~phys_mib:128 Cost_model.xeon_6130

let proc () = Svagc_kernel.Process.create (machine ())

let minor_config =
  (* Table I row 2: aggregation + PMD caching on, overlapping not
     applicable (spaces are disjoint), pinning per Algorithm 4. *)
  Config.default

let swap_mover = Move_object.mover minor_config

(* --- Generational --- *)

let gen_fixture () =
  Generational.create (proc ()) ~young_bytes:(8 * 1024 * 1024)
    ~old_bytes:(32 * 1024 * 1024) ()

let populate_young gen ~n ~rng =
  List.init n (fun i ->
      let size =
        if i mod 3 = 0 then (40 * 1024) + Svagc_util.Rng.int rng 32768
        else 64 + Svagc_util.Rng.int rng 1024
      in
      let obj = Generational.alloc gen ~size ~n_refs:1 ~cls:0 in
      if i mod 2 = 0 then Generational.add_root gen obj;
      obj)

let test_minor_promotes_survivors () =
  let gen = gen_fixture () in
  let rng = Svagc_util.Rng.create ~seed:1 in
  let objs = populate_young gen ~n:40 ~rng in
  let young_count = Heap.object_count (Generational.young gen) in
  let stats = Generational.minor gen ~mover:swap_mover in
  Alcotest.(check int) "roots promoted" 20 stats.Generational.promoted_objects;
  Alcotest.(check int) "nursery empty" 0
    (Heap.object_count (Generational.young gen));
  Alcotest.(check int) "survivors in old space" 20
    (Heap.object_count (Generational.old_space gen));
  Alcotest.(check bool) "some garbage reclaimed" true
    (stats.Generational.reclaimed_bytes > 0);
  Alcotest.(check bool) "nursery had everything before" true (young_count = 40);
  (* Promoted objects live at old-space addresses. *)
  List.iteri
    (fun i o ->
      if i mod 2 = 0 then
        Alcotest.(check bool) "address in old space" true
          (o.Obj_model.addr >= Heap.base (Generational.old_space gen)))
    objs

let test_minor_uses_swapva_for_large () =
  let gen = gen_fixture () in
  let rng = Svagc_util.Rng.create ~seed:2 in
  ignore (populate_young gen ~n:40 ~rng);
  let machine = Svagc_kernel.Process.machine (Heap.proc (Generational.young gen)) in
  let flush_page_before = machine.Machine.perf.Perf.tlb_flush_page in
  let stats = Generational.minor gen ~mover:swap_mover in
  Alcotest.(check bool) "large survivors swapped" true
    (stats.Generational.swapped_objects > 0);
  (* Disjoint spaces: the Algorithm 2 (overlap) path never fires, so no
     per-page flushes were issued (Table I: Overlapping = "-" for minor). *)
  Alcotest.(check int) "overlap path never used" flush_page_before
    machine.Machine.perf.Perf.tlb_flush_page

let test_minor_preserves_payloads () =
  let gen = gen_fixture () in
  let young = Generational.young gen in
  let keep =
    List.init 10 (fun i ->
        let obj = Generational.alloc gen ~size:(48 * 1024) ~n_refs:0 ~cls:0 in
        Heap.write_payload young obj ~off:0 (Bytes.make 64 (Char.chr (65 + i)));
        Generational.add_root gen obj;
        (obj, Heap.checksum_object young obj))
  in
  ignore (Generational.minor gen ~mover:swap_mover);
  let old_space = Generational.old_space gen in
  List.iter
    (fun (o, ck) ->
      Alcotest.(check int64) "payload intact after promotion" ck
        (Heap.checksum_object old_space o);
      Alcotest.(check bool) "header intact" true (Heap.header_matches old_space o))
    keep

let test_minor_rewrites_references () =
  let gen = gen_fixture () in
  let a = Generational.alloc gen ~size:1024 ~n_refs:1 ~cls:0 in
  let b = Generational.alloc gen ~size:(48 * 1024) ~n_refs:0 ~cls:0 in
  Generational.set_ref gen a ~slot:0 (Some b);
  Generational.add_root gen a;
  (* b unrooted but reachable from a: both must be promoted, the link must
     follow. *)
  ignore (Generational.minor gen ~mover:swap_mover);
  match Generational.deref gen a ~slot:0 with
  | Some o -> Alcotest.(check int) "link follows promotion" b.Obj_model.id o.Obj_model.id
  | None -> Alcotest.fail "reference lost in promotion"

let test_old_to_young_roots () =
  let gen = gen_fixture () in
  (* An old object keeps a young one alive (remembered-set behaviour). *)
  let elder = Generational.alloc gen ~size:1024 ~n_refs:1 ~cls:0 in
  Generational.add_root gen elder;
  ignore (Generational.minor gen ~mover:swap_mover);
  (* elder now lives in the old space. *)
  let youngling = Generational.alloc gen ~size:2048 ~n_refs:0 ~cls:0 in
  Generational.set_ref gen elder ~slot:0 (Some youngling);
  ignore (Generational.minor gen ~mover:swap_mover);
  (match Generational.deref gen elder ~slot:0 with
  | Some o ->
    Alcotest.(check int) "young object survived via old->young ref"
      youngling.Obj_model.id o.Obj_model.id;
    Alcotest.(check bool) "and was promoted" true
      (o.Obj_model.addr >= Heap.base (Generational.old_space gen))
  | None -> Alcotest.fail "old->young reference dropped")

let test_full_collects_old_garbage () =
  let gen = gen_fixture () in
  let rng = Svagc_util.Rng.create ~seed:5 in
  ignore (populate_young gen ~n:40 ~rng);
  ignore (Generational.minor gen ~mover:swap_mover);
  (* Drop every old root: a full collection must empty the old space. *)
  Svagc_util.Vec.iter
    (fun o -> Generational.remove_root gen o)
    (Heap.objects (Generational.old_space gen));
  let cycle = Generational.full gen ~mover:swap_mover in
  Alcotest.(check int) "old space emptied" 0
    (Heap.object_count (Generational.old_space gen));
  Alcotest.(check bool) "bytes reclaimed" true (cycle.Svagc_gc.Gc_stats.reclaimed_bytes > 0)

let test_alloc_survives_pressure () =
  let gen =
    Generational.create (proc ()) ~young_bytes:(4 * 1024 * 1024)
      ~old_bytes:(12 * 1024 * 1024) ()
  in
  let rng = Svagc_util.Rng.create ~seed:9 in
  (* Sustained churn: rooted window of 16 objects, the rest garbage. *)
  let window = Array.make 16 None in
  for i = 0 to 800 do
    let size = 16 * 1024 in
    let obj = Generational.alloc gen ~size ~n_refs:0 ~cls:0 in
    let slot = Svagc_util.Rng.int rng 16 in
    (match window.(slot) with
    | Some old -> Generational.remove_root gen old
    | None -> ());
    Generational.add_root gen obj;
    window.(slot) <- Some obj;
    ignore i
  done;
  Alcotest.(check bool) "minors happened" true
    (List.length (Generational.minors gen) >= 2)

let prop_minor_deterministic =
  qtest "minor collections are deterministic"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let run () =
        let gen = gen_fixture () in
        let rng = Svagc_util.Rng.create ~seed in
        ignore (populate_young gen ~n:30 ~rng);
        let s = Generational.minor gen ~mover:swap_mover in
        (s.Generational.promoted_objects, s.Generational.promoted_bytes,
         s.Generational.swapped_objects)
      in
      run () = run ())

(* --- Semispace --- *)

let semi_fixture () =
  Semispace.create (proc ()) ~space_bytes:(8 * 1024 * 1024) ()

let test_semispace_flip () =
  let semi = semi_fixture () in
  let heap = Semispace.heap semi in
  let base0 = Semispace.active_base semi in
  let keep =
    List.init 6 (fun i ->
        let o = Semispace.alloc semi ~size:(64 * 1024) ~n_refs:0 ~cls:0 in
        Heap.write_payload heap o ~off:0 (Bytes.make 32 (Char.chr (97 + i)));
        Heap.add_root heap o;
        (o, Heap.checksum_object heap o))
  in
  ignore (Semispace.collect semi ~mover:(Move_object.mover Config.default));
  Alcotest.(check bool) "halves flipped" true (Semispace.active_base semi <> base0);
  List.iter
    (fun (o, ck) ->
      Alcotest.(check bool) "evacuated into the other half" true
        (o.Obj_model.addr >= Semispace.active_base semi
        && o.Obj_model.addr < Semispace.active_base semi + (8 * 1024 * 1024));
      Alcotest.(check int64) "contents preserved" ck (Heap.checksum_object heap o))
    keep

let test_semispace_no_overlap_path () =
  let semi = semi_fixture () in
  let heap = Semispace.heap semi in
  for _ = 1 to 12 do
    let o = Semispace.alloc semi ~size:(80 * 1024) ~n_refs:0 ~cls:0 in
    Heap.add_root heap o
  done;
  let machine = Svagc_kernel.Process.machine (Heap.proc heap) in
  let flush_page_before = machine.Machine.perf.Perf.tlb_flush_page in
  let stats = Semispace.collect semi ~mover:(Move_object.mover Config.default) in
  Alcotest.(check bool) "evacuation swapped" true (stats.Semispace.swapped_objects > 0);
  Alcotest.(check int) "Algorithm 2 never fired (disjoint spaces)"
    flush_page_before machine.Machine.perf.Perf.tlb_flush_page

let test_semispace_mostly_concurrent () =
  let semi = semi_fixture () in
  let heap = Semispace.heap semi in
  for _ = 1 to 8 do
    Heap.add_root heap (Semispace.alloc semi ~size:(64 * 1024) ~n_refs:0 ~cls:0)
  done;
  let stats = Semispace.collect semi ~mover:Compact.memmove_mover in
  Alcotest.(check bool) "pause is the small slice" true
    (stats.Semispace.pause_ns < stats.Semispace.concurrent_ns /. 4.0)

let test_semispace_alloc_triggers_collection () =
  let semi =
    Semispace.create (proc ()) ~space_bytes:(2 * 1024 * 1024) ()
  in
  for _ = 1 to 60 do
    ignore (Semispace.alloc semi ~size:(128 * 1024) ~n_refs:0 ~cls:0)
  done;
  Alcotest.(check bool) "cycles ran" true (List.length (Semispace.cycles semi) >= 1)

let test_semispace_oom_when_survivors_overflow () =
  let semi =
    Semispace.create (proc ()) ~space_bytes:(1024 * 1024) ()
  in
  let heap = Semispace.heap semi in
  Alcotest.check_raises "overflow" Semispace.Out_of_memory (fun () ->
      for _ = 1 to 40 do
        let o = Semispace.alloc semi ~size:(128 * 1024) ~n_refs:0 ~cls:0 in
        Heap.add_root heap o
      done)

let () =
  Alcotest.run "svagc_generational"
    [
      ( "generational",
        [
          Alcotest.test_case "minor promotes survivors" `Quick
            test_minor_promotes_survivors;
          Alcotest.test_case "minor uses SwapVA" `Quick test_minor_uses_swapva_for_large;
          Alcotest.test_case "minor preserves payloads" `Quick
            test_minor_preserves_payloads;
          Alcotest.test_case "minor rewrites references" `Quick
            test_minor_rewrites_references;
          Alcotest.test_case "old->young roots" `Quick test_old_to_young_roots;
          Alcotest.test_case "full collects old garbage" `Quick
            test_full_collects_old_garbage;
          Alcotest.test_case "sustained churn" `Slow test_alloc_survives_pressure;
          prop_minor_deterministic;
        ] );
      ( "semispace",
        [
          Alcotest.test_case "flip preserves contents" `Quick test_semispace_flip;
          Alcotest.test_case "no overlap path" `Quick test_semispace_no_overlap_path;
          Alcotest.test_case "mostly concurrent" `Quick test_semispace_mostly_concurrent;
          Alcotest.test_case "alloc triggers cycles" `Quick
            test_semispace_alloc_triggers_collection;
          Alcotest.test_case "survivor overflow" `Quick
            test_semispace_oom_when_survivors_overflow;
        ] );
    ]
