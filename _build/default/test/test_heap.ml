(* Tests for the heap substrate: Algorithm 3 allocation alignment, TLABs,
   roots, references, payload IO. *)

open Svagc_vmem
open Svagc_heap
module Process = Svagc_kernel.Process

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let kib = 1024
let threshold_bytes = 10 * Addr.page_size

let fresh_heap ?(size_mib = 16) ?(threshold_pages = 10) () =
  let machine = Machine.create ~phys_mib:64 Cost_model.xeon_6130 in
  let proc = Process.create machine in
  Heap.create proc ~threshold_pages ~size_bytes:(size_mib * 1024 * 1024) ()

(* --- Obj_model --- *)

let test_obj_model () =
  let o = Obj_model.make ~id:1 ~addr:4096 ~size:(48 * kib) ~cls:0 ~n_refs:2 in
  Alcotest.(check int) "pages" 12 (Obj_model.pages o);
  Alcotest.(check bool) "large" true (Obj_model.is_large o ~threshold_pages:10);
  Alcotest.(check bool) "small at higher threshold" false
    (Obj_model.is_large o ~threshold_pages:13);
  Alcotest.(check int) "end addr" (4096 + (48 * kib)) (Obj_model.end_addr o)

let test_obj_model_validation () =
  Alcotest.(check bool) "size below header rejected" true
    (try ignore (Obj_model.make ~id:1 ~addr:0 ~size:8 ~cls:0 ~n_refs:0); false
     with Invalid_argument _ -> true)

(* --- Algorithm 3 alignment --- *)

let test_small_objects_pack () =
  let heap = fresh_heap () in
  let a = Heap.alloc heap ~size:100 ~n_refs:0 ~cls:0 in
  let b = Heap.alloc heap ~size:100 ~n_refs:0 ~cls:0 in
  Alcotest.(check int) "contiguous" (Obj_model.end_addr a) b.Obj_model.addr

let test_large_object_page_aligned () =
  let heap = fresh_heap () in
  ignore (Heap.alloc heap ~size:100 ~n_refs:0 ~cls:0);
  let big = Heap.alloc heap ~size:threshold_bytes ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "start aligned" true (Addr.is_page_aligned big.Obj_model.addr);
  (* The next allocation must start on a fresh page (tail realignment). *)
  let next = Heap.alloc heap ~size:100 ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "large object owns its pages exclusively" true
    (Addr.is_page_aligned next.Obj_model.addr
    && next.Obj_model.addr >= Addr.align_up (Obj_model.end_addr big))

let test_below_threshold_not_aligned () =
  let heap = fresh_heap () in
  ignore (Heap.alloc heap ~size:100 ~n_refs:0 ~cls:0);
  let mid = Heap.alloc heap ~size:(threshold_bytes - Addr.page_size) ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "below-threshold objects pack" false
    (Addr.is_page_aligned mid.Obj_model.addr)

let test_alignment_waste_accounted () =
  let heap = fresh_heap () in
  ignore (Heap.alloc heap ~size:100 ~n_refs:0 ~cls:0);
  ignore (Heap.alloc heap ~size:threshold_bytes ~n_refs:0 ~cls:0);
  Alcotest.(check bool) "waste recorded" true (Heap.wasted_bytes heap > 0);
  Alcotest.(check bool) "waste < 2 pages for one aligned alloc" true
    (Heap.wasted_bytes heap < 2 * Addr.page_size)

let test_fragmentation_below_5_percent () =
  (* The paper's claim: with a 10-page threshold, alignment waste stays
     under ~5% of the heap even for adversarial size mixes. *)
  let heap = fresh_heap ~size_mib:32 () in
  let rng = Svagc_util.Rng.create ~seed:3 in
  (try
     while true do
       (* Worst case: every object barely above the threshold with a
          maximally misaligned tail. *)
       let size = threshold_bytes + 1 + Svagc_util.Rng.int rng (2 * Addr.page_size) in
       ignore (Heap.alloc heap ~size ~n_refs:0 ~cls:0)
     done
   with Heap.Heap_full -> ());
  let ratio =
    float_of_int (Heap.wasted_bytes heap) /. float_of_int (Heap.used_bytes heap)
  in
  Alcotest.(check bool) "waste under 5% of heap" true (ratio < 0.05)

let test_heap_full () =
  let heap = fresh_heap ~size_mib:1 () in
  Alcotest.check_raises "full" Heap.Heap_full (fun () ->
      for _ = 1 to 100 do
        ignore (Heap.alloc heap ~size:(64 * kib) ~n_refs:0 ~cls:0)
      done)

let test_alloc_chunk () =
  let heap = fresh_heap () in
  ignore (Heap.alloc heap ~size:100 ~n_refs:0 ~cls:0);
  let chunk = Heap.alloc_chunk heap ~bytes:(64 * kib) in
  Alcotest.(check bool) "chunk aligned" true (Addr.is_page_aligned chunk);
  Alcotest.(check bool) "top advanced" true (Heap.top heap >= chunk + (64 * kib))

(* --- Roots and references --- *)

let test_roots () =
  let heap = fresh_heap () in
  let o = Heap.alloc heap ~size:64 ~n_refs:0 ~cls:0 in
  Alcotest.(check int) "no roots" 0 (Heap.root_count heap);
  Heap.add_root heap o;
  Heap.add_root heap o;
  Alcotest.(check int) "idempotent add" 1 (Heap.root_count heap);
  Heap.remove_root heap o;
  Alcotest.(check int) "removed" 0 (Heap.root_count heap)

let test_refs () =
  let heap = fresh_heap () in
  let a = Heap.alloc heap ~size:64 ~n_refs:2 ~cls:0 in
  let b = Heap.alloc heap ~size:64 ~n_refs:0 ~cls:0 in
  Heap.set_ref heap a ~slot:0 (Some b);
  (match Heap.deref heap a ~slot:0 with
  | Some o -> Alcotest.(check int) "deref" b.Obj_model.id o.Obj_model.id
  | None -> Alcotest.fail "expected Some");
  Alcotest.(check bool) "null slot" true (Heap.deref heap a ~slot:1 = None);
  Heap.set_ref heap a ~slot:0 None;
  Alcotest.(check bool) "cleared" true (Heap.deref heap a ~slot:0 = None)

let test_object_at_index () =
  let heap = fresh_heap () in
  let a = Heap.alloc heap ~size:64 ~n_refs:0 ~cls:0 in
  (match Heap.object_at heap a.Obj_model.addr with
  | Some o -> Alcotest.(check int) "found" a.Obj_model.id o.Obj_model.id
  | None -> Alcotest.fail "missing");
  (* Simulate a move and a rebuild. *)
  a.Obj_model.addr <- a.Obj_model.addr + 4096;
  Heap.rebuild_index heap;
  Alcotest.(check bool) "old addr gone" true
    (Heap.object_at heap (a.Obj_model.addr - 4096) = None);
  Alcotest.(check bool) "new addr found" true
    (Heap.object_at heap a.Obj_model.addr <> None)

(* --- Payload IO --- *)

let test_payload_roundtrip () =
  let heap = fresh_heap () in
  let o = Heap.alloc heap ~size:4096 ~n_refs:0 ~cls:0 in
  Heap.write_payload heap o ~off:10 (Bytes.of_string "payload");
  Alcotest.(check string) "roundtrip" "payload"
    (Bytes.to_string (Heap.read_payload heap o ~off:10 ~len:7))

let test_payload_bounds () =
  let heap = fresh_heap () in
  let o = Heap.alloc heap ~size:64 ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "escape rejected" true
    (try Heap.write_payload heap o ~off:60 (Bytes.of_string "xxx"); false
     with Invalid_argument _ -> true)

let test_header_stamp () =
  let heap = fresh_heap () in
  let o = Heap.alloc heap ~size:4096 ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "header matches" true (Heap.header_matches heap o);
  (* Corrupt the stamped id in simulated memory: mismatch must be seen. *)
  let aspace = Process.aspace (Heap.proc heap) in
  Address_space.write_i64 aspace ~va:o.Obj_model.addr 999L;
  Alcotest.(check bool) "corruption detected" false (Heap.header_matches heap o)

let test_checksum_covers_object () =
  let heap = fresh_heap () in
  let o = Heap.alloc heap ~size:4096 ~n_refs:0 ~cls:0 in
  let c0 = Heap.checksum_object heap o in
  Heap.write_payload heap o ~off:1000 (Bytes.of_string "!");
  Alcotest.(check bool) "payload change detected" true (c0 <> Heap.checksum_object heap o)

(* --- Stats --- *)

let test_stats () =
  let heap = fresh_heap () in
  ignore (Heap.alloc heap ~size:1000 ~n_refs:0 ~cls:0);
  ignore (Heap.alloc heap ~size:2000 ~n_refs:0 ~cls:0);
  Alcotest.(check int) "live bytes" 3000 (Heap.live_bytes heap);
  Alcotest.(check int) "count" 2 (Heap.object_count heap);
  Alcotest.(check int) "used = top - base" (Heap.top heap - Heap.base heap)
    (Heap.used_bytes heap);
  Alcotest.(check int) "free + used = size" (Heap.limit heap - Heap.base heap)
    (Heap.free_bytes heap + Heap.used_bytes heap)

(* --- TLAB --- *)

let test_tlab_small_up_large_down () =
  let heap = fresh_heap () in
  let tlab = Tlab.create heap ~thread_id:0 ~chunk_bytes:(256 * kib) in
  let s1 = Tlab.alloc tlab ~size:100 ~n_refs:0 ~cls:0 in
  let s2 = Tlab.alloc tlab ~size:100 ~n_refs:0 ~cls:0 in
  let l1 = Tlab.alloc tlab ~size:threshold_bytes ~n_refs:0 ~cls:0 in
  let l2 = Tlab.alloc tlab ~size:threshold_bytes ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "smalls grow up" true
    (s2.Obj_model.addr > s1.Obj_model.addr);
  Alcotest.(check bool) "larges grow down" true
    (l2.Obj_model.addr < l1.Obj_model.addr);
  Alcotest.(check bool) "larges aligned" true
    (Addr.is_page_aligned l1.Obj_model.addr && Addr.is_page_aligned l2.Obj_model.addr);
  Alcotest.(check bool) "populations separated" true
    (Obj_model.end_addr s2 <= l2.Obj_model.addr)

let test_tlab_new_chunk_on_exhaustion () =
  let heap = fresh_heap () in
  let tlab = Tlab.create heap ~thread_id:0 ~chunk_bytes:(64 * kib) in
  (* 64 KiB chunk: the fourth 20 KiB small object cannot fit. *)
  let objs = List.init 5 (fun _ -> Tlab.alloc tlab ~size:(20 * kib) ~n_refs:0 ~cls:0) in
  Alcotest.(check int) "all allocated" 5 (List.length objs);
  Alcotest.(check int) "registered in heap" 5 (Heap.object_count heap)

let test_tlab_huge_bypasses () =
  let heap = fresh_heap () in
  let tlab = Tlab.create heap ~thread_id:0 ~chunk_bytes:(64 * kib) in
  let huge = Tlab.alloc tlab ~size:(200 * kib) ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "shared-space path, aligned" true
    (Addr.is_page_aligned huge.Obj_model.addr);
  Alcotest.(check int) "gap untouched (no chunk yet)" 0 (Tlab.unused_gap tlab)

let test_tlab_retire () =
  let heap = fresh_heap () in
  let tlab = Tlab.create heap ~thread_id:0 ~chunk_bytes:(64 * kib) in
  ignore (Tlab.alloc tlab ~size:1000 ~n_refs:0 ~cls:0);
  Alcotest.(check bool) "gap open" true (Tlab.unused_gap tlab > 0);
  Tlab.retire tlab;
  Alcotest.(check int) "gap dropped" 0 (Tlab.unused_gap tlab)

let prop_tlab_no_overlap =
  qtest ~count:40 "TLAB allocations never overlap"
    QCheck.(pair small_int (list_of_size Gen.(1 -- 40) (int_range 24 50_000)))
    (fun (seed, sizes) ->
      ignore seed;
      let heap = fresh_heap ~size_mib:32 () in
      let tlab = Tlab.create heap ~thread_id:0 ~chunk_bytes:(256 * kib) in
      let objs = List.map (fun size -> Tlab.alloc tlab ~size ~n_refs:0 ~cls:0) sizes in
      let ranges =
        List.sort compare
          (List.map (fun o -> (o.Obj_model.addr, Obj_model.end_addr o)) objs)
      in
      let rec disjoint = function
        | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && disjoint rest
        | _ -> true
      in
      disjoint ranges)

(* --- Promotion hooks (reserve / adopt / evict / reset) --- *)

let test_reserve_matches_alloc_placement () =
  let h1 = fresh_heap () and h2 = fresh_heap () in
  (* The same request sequence through reserve and alloc must produce the
     same addresses: alloc is reserve + registration. *)
  let sizes = [ 100; threshold_bytes; 500; 2 * threshold_bytes; 64 ] in
  List.iter
    (fun size ->
      let a = Heap.reserve h1 ~size in
      let o = Heap.alloc h2 ~size ~n_refs:0 ~cls:0 in
      Alcotest.(check int) "same placement" o.Obj_model.addr a)
    sizes

let test_adopt_evict_roundtrip () =
  let src = fresh_heap () and dst = fresh_heap () in
  let o = Heap.alloc src ~size:4096 ~n_refs:0 ~cls:0 in
  Heap.add_root src o;
  Heap.evict src o;
  Alcotest.(check int) "gone from source" 0 (Heap.object_count src);
  Alcotest.(check int) "root dropped too" 0 (Heap.root_count src);
  let addr = Heap.reserve dst ~size:4096 in
  o.Obj_model.addr <- addr;
  Heap.adopt dst o;
  Alcotest.(check int) "adopted" 1 (Heap.object_count dst);
  Alcotest.(check bool) "indexed at new address" true
    (Heap.object_at dst addr <> None)

let test_adopt_rejects_foreign_range () =
  let heap = fresh_heap () in
  let o = Obj_model.make ~id:999 ~addr:4096 ~size:64 ~cls:0 ~n_refs:0 in
  Alcotest.(check bool) "outside range rejected" true
    (try Heap.adopt heap o; false with Invalid_argument _ -> true)

let test_reset_empties () =
  let heap = fresh_heap () in
  let o = Heap.alloc heap ~size:4096 ~n_refs:0 ~cls:0 in
  Heap.add_root heap o;
  Heap.reset heap;
  Alcotest.(check int) "no objects" 0 (Heap.object_count heap);
  Alcotest.(check int) "no roots" 0 (Heap.root_count heap);
  Alcotest.(check int) "top back to base" (Heap.base heap) (Heap.top heap);
  (* The space is reusable immediately. *)
  let o2 = Heap.alloc heap ~size:4096 ~n_refs:0 ~cls:0 in
  Alcotest.(check int) "fresh allocation at base" (Heap.base heap) o2.Obj_model.addr

(* --- LOS --- *)

module Los = Svagc_heap.Los

let fresh_los ?(size_mib = 4) () =
  let machine = Machine.create ~phys_mib:16 Cost_model.xeon_6130 in
  Los.create (Process.create machine) ~size_bytes:(size_mib * 1024 * 1024) ()

let test_los_alloc_free () =
  let los = fresh_los () in
  let a = Los.alloc los ~size:(10 * 4096) ~n_refs:0 ~cls:0 in
  let b = Los.alloc los ~size:(20 * 4096) ~n_refs:0 ~cls:0 in
  Alcotest.(check int) "two resident" 2 (Los.object_count los);
  Alcotest.(check bool) "disjoint" true
    (Obj_model.end_addr a <= b.Obj_model.addr
    || Obj_model.end_addr b <= a.Obj_model.addr);
  Los.free los a;
  Alcotest.(check int) "one resident" 1 (Los.object_count los);
  Alcotest.(check bool) "double free rejected" true
    (try Los.free los a; false with Invalid_argument _ -> true)

let test_los_first_fit_reuses_hole () =
  let los = fresh_los () in
  let a = Los.alloc los ~size:(16 * 4096) ~n_refs:0 ~cls:0 in
  let _b = Los.alloc los ~size:(16 * 4096) ~n_refs:0 ~cls:0 in
  Los.free los a;
  let c = Los.alloc los ~size:(8 * 4096) ~n_refs:0 ~cls:0 in
  Alcotest.(check int) "hole reused (first fit)" a.Obj_model.addr c.Obj_model.addr

let test_los_coalescing () =
  let los = fresh_los () in
  let objs =
    List.init 4 (fun _ -> Los.alloc los ~size:(32 * 4096) ~n_refs:0 ~cls:0)
  in
  (* Free out of order: 1, 3, 0, 2 — must coalesce back to one hole plus
     the untouched tail. *)
  (match objs with
  | [ o0; o1; o2; o3 ] ->
    Los.free los o1;
    Los.free los o3;
    (* o3 coalesces with the tail hole immediately: o1-hole + (o3+tail). *)
    Alcotest.(check int) "o3 merged with tail" 2 (Los.hole_count los);
    Los.free los o0;
    Alcotest.(check int) "o0 merged with o1-hole" 2 (Los.hole_count los);
    Los.free los o2;
    Alcotest.(check int) "fully coalesced" 1 (Los.hole_count los);
    Alcotest.(check int) "all bytes back" (Los.capacity_bytes los)
      (Los.free_bytes los)
  | _ -> Alcotest.fail "fixture")

let test_los_fragmentation_failure () =
  (* Fill the region completely, then free every other object: half the
     space is free yet no large request fits — the failure mode the paper
     attributes to LOSs. *)
  let los = fresh_los ~size_mib:4 () in
  let objs =
    List.init 16 (fun _ -> Los.alloc los ~size:(64 * 4096) ~n_refs:0 ~cls:0)
  in
  Alcotest.(check int) "region exactly full" 0 (Los.free_bytes los);
  List.iteri (fun i o -> if i mod 2 = 0 then Los.free los o) objs;
  Alcotest.(check int) "half free" (8 * 64 * 4096) (Los.free_bytes los);
  Alcotest.(check bool) "but shattered" true (Los.external_fragmentation los > 0.8);
  Alcotest.(check bool) "128-page request cannot fit the holes" false
    (Los.can_fit los ~size:(128 * 4096));
  Alcotest.check_raises "Los_full despite free space" Los.Los_full (fun () ->
      ignore (Los.alloc los ~size:(128 * 4096) ~n_refs:0 ~cls:0))

let test_los_metrics () =
  let los = fresh_los () in
  Alcotest.(check (float 1e-9)) "empty region not fragmented" 0.0
    (Los.external_fragmentation los);
  Alcotest.(check int) "one hole" 1 (Los.hole_count los);
  Alcotest.(check bool) "maintenance cost grows with holes" true
    (let c1 = Los.maintenance_cost_ns los in
     let a = Los.alloc los ~size:(10 * 4096) ~n_refs:0 ~cls:0 in
     let _b = Los.alloc los ~size:(10 * 4096) ~n_refs:0 ~cls:0 in
     Los.free los a;
     Los.maintenance_cost_ns los > c1)

let prop_los_free_bytes_conserved =
  qtest ~count:40 "LOS conserves bytes across alloc/free"
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 20))
    (fun pages_list ->
      let los = fresh_los ~size_mib:8 () in
      let cap = Los.capacity_bytes los in
      let objs =
        List.filter_map
          (fun pages ->
            try Some (Los.alloc los ~size:(pages * 4096) ~n_refs:0 ~cls:0)
            with Los.Los_full -> None)
          pages_list
      in
      List.iter (Los.free los) objs;
      Los.free_bytes los = cap && Los.hole_count los = 1)

let () =
  Alcotest.run "svagc_heap"
    [
      ( "obj_model",
        [
          Alcotest.test_case "fields" `Quick test_obj_model;
          Alcotest.test_case "validation" `Quick test_obj_model_validation;
        ] );
      ( "algorithm3",
        [
          Alcotest.test_case "smalls pack" `Quick test_small_objects_pack;
          Alcotest.test_case "large aligned" `Quick test_large_object_page_aligned;
          Alcotest.test_case "below threshold packs" `Quick test_below_threshold_not_aligned;
          Alcotest.test_case "waste accounted" `Quick test_alignment_waste_accounted;
          Alcotest.test_case "fragmentation < 5%" `Quick test_fragmentation_below_5_percent;
          Alcotest.test_case "heap full" `Quick test_heap_full;
          Alcotest.test_case "alloc chunk" `Quick test_alloc_chunk;
        ] );
      ( "graph",
        [
          Alcotest.test_case "roots" `Quick test_roots;
          Alcotest.test_case "refs" `Quick test_refs;
          Alcotest.test_case "address index" `Quick test_object_at_index;
        ] );
      ( "payload",
        [
          Alcotest.test_case "roundtrip" `Quick test_payload_roundtrip;
          Alcotest.test_case "bounds" `Quick test_payload_bounds;
          Alcotest.test_case "header stamp" `Quick test_header_stamp;
          Alcotest.test_case "checksum" `Quick test_checksum_covers_object;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "promotion-hooks",
        [
          Alcotest.test_case "reserve = alloc placement" `Quick
            test_reserve_matches_alloc_placement;
          Alcotest.test_case "adopt/evict" `Quick test_adopt_evict_roundtrip;
          Alcotest.test_case "adopt range check" `Quick test_adopt_rejects_foreign_range;
          Alcotest.test_case "reset" `Quick test_reset_empties;
        ] );
      ( "los",
        [
          Alcotest.test_case "alloc/free" `Quick test_los_alloc_free;
          Alcotest.test_case "first fit" `Quick test_los_first_fit_reuses_hole;
          Alcotest.test_case "coalescing" `Quick test_los_coalescing;
          Alcotest.test_case "fragmentation failure" `Quick
            test_los_fragmentation_failure;
          Alcotest.test_case "metrics" `Quick test_los_metrics;
          prop_los_free_bytes_conserved;
        ] );
      ( "tlab",
        [
          Alcotest.test_case "bidirectional" `Quick test_tlab_small_up_large_down;
          Alcotest.test_case "chunk refill" `Quick test_tlab_new_chunk_on_exhaustion;
          Alcotest.test_case "huge bypass" `Quick test_tlab_huge_bypasses;
          Alcotest.test_case "retire" `Quick test_tlab_retire;
          prop_tlab_no_overlap;
        ] );
    ]
