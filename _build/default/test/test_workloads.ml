(* Tests for the benchmark suite: every workload must run, allocate at
   paper-scale object sizes, trigger full GCs, and be deterministic. *)

open Svagc_vmem
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Spec = Svagc_workloads.Spec
module Jvm = Svagc_core.Jvm

let machine () = Machine.create ~phys_mib:1024 Cost_model.xeon_6130

let svagc = Svagc_core.Svagc.collector ~config:Svagc_core.Config.default

let run ?(steps = 25) ?(min_gcs = 2) w =
  Runner.run ~machine:(machine ()) ~collector_of:svagc ~steps ~min_gcs w

(* One test per suite benchmark: runs clean and observes >= 2 full GCs. *)
let smoke_cases =
  List.map
    (fun w ->
      Alcotest.test_case w.Workload.name `Slow (fun () ->
          let r = run w in
          Alcotest.(check bool) "steps executed" true (r.Runner.steps > 0);
          Alcotest.(check bool) "full GCs observed" true
            (r.Runner.summary.Svagc_gc.Gc_stats.cycles >= 2);
          Alcotest.(check bool) "app time accrued" true (r.Runner.app_ns > 0.0)))
    Spec.suite

let test_lru_cache_runs () =
  let r = run Svagc_workloads.Lru_cache.workload in
  Alcotest.(check bool) "gcs" true (r.Runner.summary.Svagc_gc.Gc_stats.cycles >= 1)

let test_determinism () =
  let once () =
    let r = run ~steps:15 Svagc_workloads.Sparse.large in
    (r.Runner.steps, r.Runner.app_ns, r.Runner.gc_ns,
     r.Runner.summary.Svagc_gc.Gc_stats.cycles)
  in
  let a = once () and b = once () in
  Alcotest.(check bool) "identical replays" true (a = b)

let test_heap_factor_scales () =
  let w = Svagc_workloads.Sparse.large in
  Alcotest.(check bool) "2x heap is larger" true
    (Workload.heap_bytes w ~factor:2.0 > Workload.heap_bytes w ~factor:1.2)

let test_bigger_heap_fewer_gcs () =
  let w = Svagc_workloads.Compress.workload in
  let gcs factor =
    let r =
      Runner.run ~machine:(machine ()) ~collector_of:svagc ~heap_factor:factor
        ~steps:40 ~min_gcs:0 w
    in
    r.Runner.summary.Svagc_gc.Gc_stats.cycles
  in
  Alcotest.(check bool) "2x heap collects less often" true (gcs 2.0 <= gcs 1.2)

let test_spec_registry () =
  Alcotest.(check int) "suite has the 14 Table III benchmarks" 14
    (List.length Spec.suite);
  Alcotest.(check bool) "find works" true
    ((Spec.find "Sigverify").Workload.name = "Sigverify");
  Alcotest.(check bool) "find missing raises" true
    (try ignore (Spec.find "nope"); false with Not_found -> true);
  Alcotest.(check int) "table rows cover everything" (List.length Spec.all)
    (List.length (Spec.table_ii_rows ()))

let test_sigverify_objects_are_large () =
  (* All Sigverify allocations are fixed 1 MiB: every survivor must be
     page-aligned (swappable). *)
  let r = run Svagc_workloads.Sigverify.default in
  Alcotest.(check bool) "ran" true (r.Runner.steps > 0);
  let machine = machine () in
  let jvm =
    Runner.make_jvm ~machine ~collector_of:svagc Svagc_workloads.Sigverify.default
  in
  let rng = Svagc_util.Rng.create ~seed:1 in
  let step = (Svagc_workloads.Sigverify.default).Workload.setup jvm rng in
  step ();
  Svagc_util.Vec.iter
    (fun o ->
      Alcotest.(check bool) "1 MiB object aligned" true
        (Addr.is_page_aligned o.Svagc_heap.Obj_model.addr))
    (Svagc_heap.Heap.objects (Jvm.heap jvm))

let test_bisort_objects_are_small () =
  (* Bisort is the no-benefit anchor: its GC must swap (almost) nothing. *)
  let r = run ~steps:6 ~min_gcs:1 Svagc_workloads.Bisort.workload in
  let swapped =
    List.fold_left
      (fun acc c -> acc + c.Svagc_gc.Gc_stats.swapped_objects)
      0 r.Runner.cycles
  in
  let moved =
    List.fold_left
      (fun acc c -> acc + c.Svagc_gc.Gc_stats.moved_objects)
      0 r.Runner.cycles
  in
  Alcotest.(check bool) "almost nothing swappable" true
    (moved = 0 || float_of_int swapped /. float_of_int moved < 0.02)

let test_workload_gc_correctness_end_to_end () =
  (* Drive a real workload, then verify every surviving object's header
     still matches its mirror — the full-stack integrity check. *)
  let machine = machine () in
  let jvm = Runner.make_jvm ~machine ~collector_of:svagc Svagc_workloads.Fft.large in
  let rng = Svagc_util.Rng.create ~seed:5 in
  let step = Svagc_workloads.Fft.large.Workload.setup jvm rng in
  for _ = 1 to 80 do
    step ()
  done;
  Alcotest.(check bool) "gcs happened" true (Jvm.gc_count jvm >= 1);
  let heap = Jvm.heap jvm in
  Svagc_util.Vec.iter
    (fun o ->
      Alcotest.(check bool) "header intact" true (Svagc_heap.Heap.header_matches heap o))
    (Svagc_heap.Heap.objects heap)

let () =
  Alcotest.run "svagc_workloads"
    [
      ("suite-smoke", smoke_cases);
      ( "behaviour",
        [
          Alcotest.test_case "lru cache" `Quick test_lru_cache_runs;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "heap factor" `Quick test_heap_factor_scales;
          Alcotest.test_case "bigger heap fewer gcs" `Slow test_bigger_heap_fewer_gcs;
          Alcotest.test_case "spec registry" `Quick test_spec_registry;
          Alcotest.test_case "sigverify large objects" `Slow
            test_sigverify_objects_are_large;
          Alcotest.test_case "bisort small objects" `Slow test_bisort_objects_are_small;
          Alcotest.test_case "end-to-end integrity" `Slow
            test_workload_gc_correctness_end_to_end;
        ] );
    ]
