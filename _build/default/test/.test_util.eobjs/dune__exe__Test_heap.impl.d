test/test_heap.ml: Addr Address_space Alcotest Bytes Cost_model Gen Heap List Machine Obj_model QCheck QCheck_alcotest Svagc_heap Svagc_kernel Svagc_util Svagc_vmem Tlab
