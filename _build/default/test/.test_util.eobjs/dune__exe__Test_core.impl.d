test/test_core.ml: Alcotest Array Bytes Char Heap Helpers List Machine Obj_model Printf QCheck QCheck_alcotest Svagc_core Svagc_gc Svagc_heap Svagc_kernel Svagc_util Svagc_vmem
