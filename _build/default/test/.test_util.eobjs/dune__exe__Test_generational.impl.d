test/test_generational.ml: Alcotest Array Bytes Char Cost_model Heap List Machine Obj_model Perf QCheck QCheck_alcotest Svagc_core Svagc_gc Svagc_heap Svagc_kernel Svagc_util Svagc_vmem
