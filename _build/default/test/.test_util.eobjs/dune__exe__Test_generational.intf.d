test/test_generational.mli:
