test/test_metrics.ml: Alcotest List String Svagc_metrics
