test/test_experiments.ml: Alcotest Float List Svagc_experiments Svagc_gc Svagc_workloads
