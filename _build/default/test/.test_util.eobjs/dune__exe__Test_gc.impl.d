test/test_gc.ml: Addr Alcotest Array Float Heap Helpers List Obj_model QCheck QCheck_alcotest Svagc_gc Svagc_heap Svagc_vmem
