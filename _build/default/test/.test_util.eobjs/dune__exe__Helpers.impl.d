test/helpers.ml: Alcotest Bytes Char Cost_model Heap List Machine Obj_model Svagc_heap Svagc_kernel Svagc_util Svagc_vmem
