test/test_kernel.ml: Addr Address_space Alcotest Array Bytes Char Cost_model Gen List Machine Perf QCheck QCheck_alcotest Svagc_kernel Svagc_vmem Tlb
