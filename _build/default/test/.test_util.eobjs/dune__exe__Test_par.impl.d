test/test_par.ml: Alcotest Array Float Gen Hashtbl List Option QCheck QCheck_alcotest Svagc_par
