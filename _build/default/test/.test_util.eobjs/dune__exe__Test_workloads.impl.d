test/test_workloads.ml: Addr Alcotest Cost_model List Machine Svagc_core Svagc_gc Svagc_heap Svagc_util Svagc_vmem Svagc_workloads
