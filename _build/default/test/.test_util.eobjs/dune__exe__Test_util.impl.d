test/test_util.ml: Alcotest Array Dist Gen Histogram List Num_util QCheck QCheck_alcotest Rng Svagc_util Vec
