test/test_vmem.ml: Addr Address_space Alcotest Array Bytes Cache_sim Char Clock Cost_model Hashtbl List Machine Page_table Perf Phys_mem Pte QCheck QCheck_alcotest Svagc_vmem Tlb
