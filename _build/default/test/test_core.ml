(* Tests for the paper's contribution: SVAGC configuration, MoveObject,
   the SwapVA mover, JVM instances and multi-JVM contention.  The central
   differential property: an SVAGC collection must leave the heap in
   exactly the state a memmove collection leaves it in — same addresses,
   same bytes — while copying almost nothing. *)

open Svagc_vmem
open Svagc_heap
module Config = Svagc_core.Config
module Move_object = Svagc_core.Move_object
module Svagc = Svagc_core.Svagc
module Jvm = Svagc_core.Jvm
module Multi_jvm = Svagc_core.Multi_jvm
module Gc_intf = Svagc_gc.Gc_intf
module Gc_stats = Svagc_gc.Gc_stats

let qtest ?(count = 12) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Config --- *)

let test_config_defaults_valid () =
  Config.validate Config.default;
  Config.validate Config.unoptimized

let test_config_pinning_constraint () =
  Alcotest.(check bool) "local flush requires pinning" true
    (try
       Config.validate { Config.default with Config.pin_compaction = false };
       false
     with Invalid_argument _ -> true)

let test_config_bad_values () =
  let invalid cfg =
    try Config.validate cfg; false with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "threshold" true
    (invalid { Config.default with Config.threshold_pages = 0 });
  Alcotest.(check bool) "batch" true
    (invalid { Config.default with Config.aggregation_batch = 0 });
  Alcotest.(check bool) "threads" true
    (invalid { Config.default with Config.gc_threads = 0 })

(* --- Move_object --- *)

let test_should_swap_threshold () =
  let cfg = Config.default in
  Alcotest.(check bool) "below" false
    (Move_object.should_swap cfg ~len:((10 * 4096) - 1));
  Alcotest.(check bool) "at" true (Move_object.should_swap cfg ~len:(10 * 4096));
  Alcotest.(check bool) "above" true (Move_object.should_swap cfg ~len:(1 lsl 20))

let test_move_cost_crossover () =
  let heap = Helpers.heap () in
  let cfg = Config.default in
  (* Analytic costs: memmove below threshold, swap above; the swap path
     must win decisively for megabyte objects. *)
  let small = Move_object.move_cost_ns cfg heap ~len:(4 * 4096) in
  let large_swap = Move_object.move_cost_ns cfg heap ~len:(1 lsl 20) in
  let large_copy =
    Svagc_kernel.Memmove.cost_ns ~cold:true
      (Svagc_kernel.Process.machine (Heap.proc heap))
      ~len:(1 lsl 20)
  in
  Alcotest.(check bool) "small positive" true (small > 0.0);
  Alcotest.(check bool) "swap 5x cheaper at 1 MiB" true
    (large_swap *. 5.0 < large_copy)

(* --- The differential test --- *)

let collect_with collector_of seed =
  let heap = Helpers.heap () in
  let p = Helpers.populate ~seed heap in
  let collector = collector_of heap in
  let cycle = Gc_intf.collect collector in
  (heap, p, cycle)

let layout heap =
  Svagc_util.Vec.to_list
    (Svagc_util.Vec.map
       (fun o -> (o.Obj_model.id, o.Obj_model.addr, Heap.checksum_object heap o))
       (Heap.objects heap))

let test_svagc_equals_memmove_gc () =
  let h1, _, c1 = collect_with (Svagc.collector ~config:Config.default) 7 in
  let h2, _, c2 = collect_with (Svagc.baseline_collector ~threads:4) 7 in
  Alcotest.(check int) "same survivors" c1.Gc_stats.live_objects c2.Gc_stats.live_objects;
  Alcotest.(check bool) "identical layouts and contents" true (layout h1 = layout h2);
  Alcotest.(check bool) "svagc actually swapped" true (c1.Gc_stats.swapped_objects > 0);
  Alcotest.(check int) "memmove never swaps" 0 c2.Gc_stats.swapped_objects;
  Alcotest.(check bool) "svagc copies fewer bytes" true
    (c1.Gc_stats.bytes_copied < c2.Gc_stats.bytes_copied)

let prop_svagc_equals_memmove_gc =
  qtest "svagc == memmove GC on random heaps"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let h1, _, _ = collect_with (Svagc.collector ~config:Config.default) seed in
      let h2, _, _ = collect_with (Svagc.baseline_collector ~threads:4) seed in
      layout h1 = layout h2)

let test_svagc_faster_on_large_objects () =
  let _, _, c_sva = collect_with (Svagc.collector ~config:Config.default) 3 in
  let _, _, c_mem = collect_with (Svagc.baseline_collector ~threads:4) 3 in
  Alcotest.(check bool) "compaction faster with SwapVA" true
    (c_sva.Gc_stats.compact_ns < c_mem.Gc_stats.compact_ns)

let test_svagc_threshold_mismatch_rejected () =
  let heap = Helpers.heap ~threshold_pages:16 () in
  Alcotest.(check bool) "mismatch rejected" true
    (try ignore (Svagc.collector ~config:Config.default heap); false
     with Invalid_argument _ -> true)

let test_unoptimized_config_still_correct () =
  (* All optimizations off (broadcast flushing, no aggregation, no
     overlap): the unoptimized config must still produce a correct heap —
     but note allow_overlap=false forces sub-threshold...; overlap moves
     fall back to a correct dispatch because MoveObject only swaps
     disjoint ranges then. *)
  let cfg =
    { Config.unoptimized with Config.allow_overlap = true }
  in
  let h1, p, _ = collect_with (Svagc.collector ~config:cfg) 11 in
  Helpers.assert_live_set h1 p.Helpers.rooted

let test_ablation_ordering () =
  (* Each optimization must not make the collector slower. *)
  let pause cfg seed =
    let _, _, c = collect_with (Svagc.collector ~config:cfg) seed in
    Gc_stats.pause_ns c
  in
  let base = { Config.unoptimized with Config.allow_overlap = true } in
  let with_pmd = { base with Config.pmd_caching = true } in
  let full = Config.default in
  Alcotest.(check bool) "pmd caching helps" true (pause with_pmd 5 <= pause base 5);
  Alcotest.(check bool) "full config fastest" true (pause full 5 <= pause with_pmd 5)

(* --- Jvm --- *)

let make_jvm ?(heap_mib = 8) ?(collector = Svagc.collector ~config:Config.default) () =
  let machine = Helpers.machine () in
  Jvm.create machine ~name:"test" ~heap_bytes:(heap_mib * 1024 * 1024)
    ~collector_of:collector ()

let test_jvm_alloc_triggers_gc () =
  let jvm = make_jvm ~heap_mib:4 () in
  (* Fill with garbage: allocations must keep succeeding thanks to GCs. *)
  for _ = 1 to 200 do
    ignore (Jvm.alloc jvm ~size:(64 * 1024) ~n_refs:0 ~cls:0)
  done;
  Alcotest.(check bool) "collected at least once" true (Jvm.gc_count jvm >= 1);
  Alcotest.(check bool) "gc time charged" true (Jvm.gc_ns jvm > 0.0)

let test_jvm_out_of_memory () =
  let jvm = make_jvm ~heap_mib:2 () in
  let heap = Jvm.heap jvm in
  Alcotest.check_raises "oom on live overflow" Jvm.Out_of_memory (fun () ->
      for _ = 1 to 100 do
        let o = Jvm.alloc jvm ~size:(128 * 1024) ~n_refs:0 ~cls:0 in
        Heap.add_root heap o
      done)

let test_jvm_tlab_allocation () =
  let jvm = make_jvm () in
  let a = Jvm.alloc ~thread:0 jvm ~size:128 ~n_refs:0 ~cls:0 in
  let b = Jvm.alloc ~thread:1 jvm ~size:128 ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "different TLABs, different chunks" true
    (abs (a.Obj_model.addr - b.Obj_model.addr) >= 128);
  Alcotest.(check int) "both registered" 2 (Heap.object_count (Jvm.heap jvm))

let test_jvm_clocks () =
  let jvm = make_jvm () in
  Jvm.charge_app_ns jvm 1000.0;
  Jvm.charge_app_mem jvm ~bytes:9000;
  Alcotest.(check bool) "app time accrues" true (Jvm.app_ns jvm >= 2000.0);
  Alcotest.(check (float 1e-9)) "total = app + gc"
    (Jvm.app_ns jvm +. Jvm.gc_ns jvm)
    (Jvm.total_ns jvm)

let test_jvm_survivors_preserved_across_gcs () =
  let jvm = make_jvm ~heap_mib:6 () in
  let heap = Jvm.heap jvm in
  let keep =
    List.init 8 (fun i ->
        let o = Jvm.alloc jvm ~size:(48 * 1024) ~n_refs:0 ~cls:0 in
        Heap.write_payload heap o ~off:0 (Bytes.make 32 (Char.chr (65 + i)));
        Heap.add_root heap o;
        (o, Heap.checksum_object heap o))
  in
  for _ = 1 to 300 do
    ignore (Jvm.alloc jvm ~size:(64 * 1024) ~n_refs:0 ~cls:0)
  done;
  Alcotest.(check bool) "several GCs ran" true (Jvm.gc_count jvm >= 2);
  List.iter
    (fun (o, c) ->
      Alcotest.(check int64) "survivor bytes intact" c (Heap.checksum_object heap o))
    keep

(* --- Multi_jvm --- *)

let test_multi_jvm_contention () =
  let machine = Helpers.machine () in
  let multi =
    Multi_jvm.create machine ~instances:4 ~spawn:(fun ~index m ->
        Jvm.create m
          ~name:(Printf.sprintf "jvm-%d" index)
          ~heap_bytes:(2 * 1024 * 1024)
          ~collector_of:(Svagc.collector ~config:Config.default)
          ())
  in
  Alcotest.(check int) "contention set" 4 machine.Machine.copy_streams;
  Alcotest.(check int) "instances" 4 (Array.length (Multi_jvm.jvms multi));
  Multi_jvm.release multi;
  Alcotest.(check int) "released" 1 machine.Machine.copy_streams

let test_multi_jvm_bandwidth_division () =
  let machine = Helpers.machine () in
  let solo = Svagc_kernel.Memmove.cost_ns ~cold:true machine ~len:(1 lsl 20) in
  machine.Machine.copy_streams <- 16;
  let crowded = Svagc_kernel.Memmove.cost_ns ~cold:true machine ~len:(1 lsl 20) in
  Alcotest.(check bool) "contended copies slower" true (crowded > solo *. 1.2)

let () =
  Alcotest.run "svagc_core"
    [
      ( "config",
        [
          Alcotest.test_case "defaults valid" `Quick test_config_defaults_valid;
          Alcotest.test_case "pinning constraint" `Quick test_config_pinning_constraint;
          Alcotest.test_case "bad values" `Quick test_config_bad_values;
        ] );
      ( "move_object",
        [
          Alcotest.test_case "threshold" `Quick test_should_swap_threshold;
          Alcotest.test_case "cost crossover" `Quick test_move_cost_crossover;
        ] );
      ( "differential",
        [
          Alcotest.test_case "svagc == memmove GC" `Quick test_svagc_equals_memmove_gc;
          Alcotest.test_case "svagc faster" `Quick test_svagc_faster_on_large_objects;
          Alcotest.test_case "threshold mismatch" `Quick
            test_svagc_threshold_mismatch_rejected;
          Alcotest.test_case "unoptimized correct" `Quick
            test_unoptimized_config_still_correct;
          Alcotest.test_case "ablation ordering" `Quick test_ablation_ordering;
          prop_svagc_equals_memmove_gc;
        ] );
      ( "jvm",
        [
          Alcotest.test_case "alloc triggers gc" `Quick test_jvm_alloc_triggers_gc;
          Alcotest.test_case "out of memory" `Quick test_jvm_out_of_memory;
          Alcotest.test_case "tlab allocation" `Quick test_jvm_tlab_allocation;
          Alcotest.test_case "clocks" `Quick test_jvm_clocks;
          Alcotest.test_case "survivors preserved" `Quick
            test_jvm_survivors_preserved_across_gcs;
        ] );
      ( "multi_jvm",
        [
          Alcotest.test_case "contention level" `Quick test_multi_jvm_contention;
          Alcotest.test_case "bandwidth division" `Quick test_multi_jvm_bandwidth_division;
        ] );
    ]
