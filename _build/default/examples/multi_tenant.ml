(* Scenario: a multi-tenant analytics host (the paper's Figs. 2 and 14).

   Sixteen single-threaded cache services co-run on one 32-core machine
   and share its memory bandwidth.  Under a byte-copy collector both the
   applications and their GCs fight over DRAM; under SVAGC the collector
   gets out of the bandwidth market and only the applications pay for the
   crowding.

   Run with:  dune exec examples/multi_tenant.exe *)

open Svagc_vmem
module Jvm = Svagc_core.Jvm
module Multi_jvm = Svagc_core.Multi_jvm
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let steps = 40

let co_run ~instances collector_of =
  let machine =
    Machine.create ~ncores:32 ~phys_mib:(128 + (instances * 24)) Cost_model.xeon_6130
  in
  let workload = Svagc_workloads.Lru_cache.workload in
  let steppers = Array.make instances (fun () -> ()) in
  let multi =
    Multi_jvm.create machine ~instances ~spawn:(fun ~index machine ->
        let jvm =
          Runner.make_jvm ~stamp_headers:false ~machine ~collector_of workload
        in
        steppers.(index) <-
          workload.Workload.setup jvm (Svagc_util.Rng.create ~seed:(77 + index));
        jvm)
  in
  for _ = 1 to steps do
    Array.iter (fun step -> step ()) steppers
  done;
  let app = Multi_jvm.avg_app_ns multi in
  let gc = Multi_jvm.avg_gc_ns multi in
  Multi_jvm.release multi;
  (app, gc)

let sweep name collector_of =
  Report.subsection name;
  let solo_app, solo_gc = co_run ~instances:1 collector_of in
  Table.print
    ~headers:[ "tenants"; "avg app"; "avg GC"; "app +%"; "GC +%" ]
    (List.map
       (fun instances ->
         let app, gc = co_run ~instances collector_of in
         [
           string_of_int instances;
           Report.ns app;
           Report.ns gc;
           Printf.sprintf "%.0f" (100.0 *. (app -. solo_app) /. solo_app);
           Printf.sprintf "%.0f" (100.0 *. (gc -. solo_gc) /. solo_gc);
         ])
       [ 1; 4; 16 ])

let () =
  Report.section "Multi-tenant host: 1 -> 16 co-running cache services";
  sweep "ParallelGC (GC competes for bandwidth)" (fun heap ->
      Svagc_gc.Parallel_gc.collector ~threads:4 heap);
  sweep "SVAGC (GC sits out of the bandwidth market)" (fun heap ->
      Svagc_core.Svagc.collector ~config:Svagc_core.Config.default heap);
  print_endline
    "\nUnder contention the application slows either way, but only the\n\
     byte-copy collector's GC time balloons with it (paper Figs. 2 vs 14)."
