(* Scenario: a scientific pipeline juggling large matrices (the FFT / SpMV
   workloads the paper's intro motivates), used here to explore the one
   knob SVAGC exposes: the swapping threshold.

   The pipeline allocates stage buffers of 8 KB - 512 KB per iteration.
   We sweep Threshold_Swapping and report how total GC time and the
   physically-copied byte count respond — reproducing, at application
   level, why the paper picked 10 pages (Fig. 10): below the break-even
   the syscall overhead eats the benefit, far above it most objects fall
   back to memmove.

   Run with:  dune exec examples/matrix_pipeline.exe *)

open Svagc_vmem
module Jvm = Svagc_core.Jvm
module Heap = Svagc_heap.Heap
module Gc_stats = Svagc_gc.Gc_stats
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let iterations = 250

let run_pipeline ~threshold_pages =
  let machine = Machine.create ~phys_mib:512 Cost_model.xeon_6130 in
  let config =
    { Svagc_core.Config.default with Svagc_core.Config.threshold_pages }
  in
  let jvm =
    Jvm.create machine ~name:"pipeline" ~heap_bytes:(96 * 1024 * 1024)
      ~threshold_pages
      ~collector_of:(Svagc_core.Svagc.collector ~config)
      ()
  in
  let heap = Jvm.heap jvm in
  let rng = Svagc_util.Rng.create ~seed:31 in
  (* Persistent operands: input matrix tiles, refreshed as the pipeline
     advances so survivors interleave with dead stage buffers and really
     have to move at each collection. *)
  let tiles = Array.make 64 None in
  let refresh_tile i =
    (match tiles.(i) with
    | Some old -> Heap.remove_root heap old
    | None -> ());
    (* Tile sizes span 16 KB - 352 KB (4 - 88 pages), so the threshold
       sweep actually partitions them. *)
    let size = (16 + (48 * (i mod 8))) * 1024 in
    let obj = Jvm.alloc jvm ~size ~n_refs:0 ~cls:1 in
    Heap.add_root heap obj;
    tiles.(i) <- Some obj
  in
  Array.iteri (fun i _ -> refresh_tile i) tiles;
  (* Stage buffers: allocated per iteration, dead after it. *)
  for it = 1 to iterations do
    let sizes = [ 8 * 1024; 64 * 1024; 128 * 1024; 512 * 1024 ] in
    List.iter
      (fun s ->
        let jitter = Svagc_util.Rng.int rng 4096 in
        ignore (Jvm.alloc jvm ~size:(s + jitter) ~n_refs:0 ~cls:2))
      sizes;
    refresh_tile (it mod 64);
    Jvm.charge_app_ns jvm 45_000.0;
    Jvm.charge_app_mem jvm ~bytes:(768 * 1024)
  done;
  let s = Gc_stats.summarize (Jvm.cycles jvm) in
  let copied =
    List.fold_left (fun acc c -> acc + c.Gc_stats.bytes_copied) 0 (Jvm.cycles jvm)
  in
  let swapped =
    List.fold_left (fun acc c -> acc + c.Gc_stats.swapped_objects) 0 (Jvm.cycles jvm)
  in
  (threshold_pages, s, copied, swapped, Jvm.total_ns jvm)

let () =
  Report.section "Matrix pipeline: GC cost vs the swapping threshold";
  let sweep = [ 2; 4; 10; 24; 48; 96; 100000 ] in
  let rows = List.map (fun t -> run_pipeline ~threshold_pages:t) sweep in
  Table.print
    ~headers:
      [ "threshold (pages)"; "full GCs"; "total GC"; "bytes copied";
        "objects swapped"; "wall clock" ]
    (List.map
       (fun (t, s, copied, swapped, wall) ->
         [
           (if t >= 100000 then "off (memmove)" else string_of_int t);
           string_of_int s.Gc_stats.cycles;
           Report.ns s.Gc_stats.total_pause_ns;
           Report.bytes copied;
           string_of_int swapped;
           Report.ns wall;
         ])
       rows);
  let best =
    List.fold_left
      (fun (bt, bns) (t, s, _, _, _) ->
        if s.Gc_stats.total_pause_ns < bns then (t, s.Gc_stats.total_pause_ns)
        else (bt, bns))
      (0, infinity) rows
  in
  Printf.printf
    "\nBest total GC time at threshold = %d pages; past it, ever more \
     survivor bytes fall back to memmove (the paper's Fig. 10 break-even \
     is ~10 pages)\n"
    (fst best)
