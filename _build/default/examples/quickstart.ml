(* Quickstart: the five-minute tour of the public API.

   Build a simulated machine, boot a JVM with the SVAGC collector,
   allocate a mix of small and large objects, drop half of them, force a
   full collection, and verify — byte for byte — that the survivors moved
   intact even though the large ones were never copied.

   Run with:  dune exec examples/quickstart.exe *)

open Svagc_vmem
open Svagc_heap
module Jvm = Svagc_core.Jvm
module Report = Svagc_metrics.Report

let () =
  (* 1. A machine: the paper's 32-core Xeon Gold 6130 testbed. *)
  let machine = Machine.create ~phys_mib:256 Cost_model.xeon_6130 in

  (* 2. A JVM instance with the SVAGC collector (all paper optimizations:
        10-page threshold, PMD caching, aggregation, overlap swapping,
        Algorithm 4 pinned compaction). *)
  let jvm =
    Jvm.create machine ~name:"quickstart" ~heap_bytes:(64 * 1024 * 1024)
      ~collector_of:(Svagc_core.Svagc.collector ~config:Svagc_core.Config.default)
      ()
  in
  let heap = Jvm.heap jvm in

  (* 3. Allocate: 160 small objects and 80 large (1 MiB) ones.  Large
        objects land page-aligned (Algorithm 3), which is what makes them
        swappable later. *)
  let rng = Svagc_util.Rng.create ~seed:2026 in
  let survivors = ref [] in
  for i = 0 to 239 do
    let size =
      if i mod 3 = 0 then 1024 * 1024 else 64 + Svagc_util.Rng.int rng 1024
    in
    let obj = Jvm.alloc jvm ~size ~n_refs:1 ~cls:0 in
    Heap.write_payload heap obj ~off:0 (Bytes.make 32 (Char.chr (33 + (i mod 90))));
    if i mod 2 = 0 then begin
      (* Even objects stay reachable... *)
      Heap.add_root heap obj;
      survivors := (obj, Heap.checksum_object heap obj) :: !survivors
    end
    (* ...odd ones become garbage as soon as we stop referring to them. *)
  done;

  Report.section "Before collection";
  Report.kv "objects" (string_of_int (Heap.object_count heap));
  Report.kv "heap used" (Report.bytes (Heap.used_bytes heap));
  Report.kv "live (reachable)" (Report.bytes (Heap.live_bytes heap));

  (* 4. Collect.  MoveObject routes every >= 10-page object through the
        SwapVA system call; everything else is memmove'd. *)
  let cycle = Jvm.run_gc jvm in

  Report.section "Full GC cycle";
  Report.kv "pause" (Report.ns (Svagc_gc.Gc_stats.pause_ns cycle));
  Report.kv "  mark" (Report.ns cycle.Svagc_gc.Gc_stats.mark_ns);
  Report.kv "  forward" (Report.ns cycle.Svagc_gc.Gc_stats.forward_ns);
  Report.kv "  adjust" (Report.ns cycle.Svagc_gc.Gc_stats.adjust_ns);
  Report.kv "  compact" (Report.ns cycle.Svagc_gc.Gc_stats.compact_ns);
  Report.kv "objects moved" (string_of_int cycle.Svagc_gc.Gc_stats.moved_objects);
  Report.kv "  via SwapVA (zero-copy)"
    (string_of_int cycle.Svagc_gc.Gc_stats.swapped_objects);
  Report.kv "bytes physically copied" (Report.bytes cycle.Svagc_gc.Gc_stats.bytes_copied);
  Report.kv "bytes remapped instead" (Report.bytes cycle.Svagc_gc.Gc_stats.bytes_remapped);

  (* 5. Verify: every survivor's bytes are intact at its new address. *)
  let corrupted =
    List.filter
      (fun (o, ck) ->
        Heap.checksum_object heap o <> ck || not (Heap.header_matches heap o))
      !survivors
  in
  Report.section "After collection";
  Report.kv "objects" (string_of_int (Heap.object_count heap));
  Report.kv "heap used" (Report.bytes (Heap.used_bytes heap));
  Report.kv "survivors verified" (string_of_int (List.length !survivors));
  Report.kv "corrupted" (string_of_int (List.length corrupted));
  if corrupted <> [] then failwith "GC corrupted live data!";
  print_endline "\nOK: zero-copy compaction preserved every live byte."
