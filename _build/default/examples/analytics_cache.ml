(* Scenario: an in-memory analytics cache (the paper's motivating
   column-store / large-buffer use case, §VI).

   A service keeps column chunks of 0.5-2 MiB alive in an LRU cache and
   refreshes them continuously.  We run the same trace under three
   collectors and compare the pause profile — the paper's Fig. 12/13 story
   at application level: SVAGC's worst pause stays near the millisecond
   scale while byte-copy collectors stall the service for tens of
   milliseconds.

   Run with:  dune exec examples/analytics_cache.exe *)

open Svagc_vmem
module Jvm = Svagc_core.Jvm
module Heap = Svagc_heap.Heap
module Gc_stats = Svagc_gc.Gc_stats
module Report = Svagc_metrics.Report
module Table = Svagc_metrics.Table

let chunks = 48
let chunk_bytes rng = (512 + Svagc_util.Rng.int rng 1536) * 1024
let refreshes = 600

let run_trace name collector_of =
  let machine = Machine.create ~phys_mib:512 Cost_model.xeon_6130 in
  let jvm =
    Jvm.create machine ~name ~heap_bytes:(128 * 1024 * 1024)
      ~collector_of ()
  in
  let heap = Jvm.heap jvm in
  let rng = Svagc_util.Rng.create ~seed:7 in
  let cache = Array.make chunks None in
  let refresh slot =
    (match cache.(slot) with
    | Some old -> Heap.remove_root heap old
    | None -> ());
    let obj = Jvm.alloc jvm ~size:(chunk_bytes rng) ~n_refs:0 ~cls:0 in
    Heap.add_root heap obj;
    cache.(slot) <- Some obj
  in
  for slot = 0 to chunks - 1 do
    refresh slot
  done;
  for _ = 1 to refreshes do
    (* A query scans one hot chunk, then one chunk is refreshed. *)
    (match cache.(Svagc_util.Dist.zipf rng ~n:chunks ~s:1.0) with
    | Some obj -> Jvm.charge_app_mem jvm ~bytes:obj.Svagc_heap.Obj_model.size
    | None -> ());
    refresh (Svagc_util.Rng.int rng chunks);
    Jvm.charge_app_ns jvm 12_000.0
  done;
  let summary = Gc_stats.summarize (Jvm.cycles jvm) in
  (name, jvm, summary)

let () =
  Report.section "Analytics cache: 0.5-2 MiB column chunks, continuous refresh";
  let rows =
    [
      run_trace "SVAGC" (Svagc_core.Svagc.collector ~config:Svagc_core.Config.default);
      run_trace "ParallelGC" (Svagc_gc.Parallel_gc.collector ~threads:4);
      run_trace "Shenandoah" (Svagc_gc.Shenandoah.collector ~threads:4);
    ]
  in
  Table.print
    ~headers:
      [ "collector"; "full GCs"; "avg pause"; "max pause"; "total GC"; "wall clock" ]
    (List.map
       (fun (name, jvm, s) ->
         [
           name;
           string_of_int s.Gc_stats.cycles;
           Report.ns s.Gc_stats.avg_pause_ns;
           Report.ns s.Gc_stats.max_pause_ns;
           Report.ns s.Gc_stats.total_pause_ns;
           Report.ns (Jvm.total_ns jvm);
         ])
       rows);
  let get name =
    let _, _, s = List.find (fun (n, _, _) -> n = name) rows in
    s
  in
  let sva = get "SVAGC" and par = get "ParallelGC" in
  Printf.printf
    "\nSVAGC's worst-case service stall is %.1fx shorter than ParallelGC's\n"
    (par.Gc_stats.max_pause_ns /. sva.Gc_stats.max_pause_ns)
