examples/quickstart.ml: Bytes Char Cost_model Heap List Machine Svagc_core Svagc_gc Svagc_heap Svagc_metrics Svagc_util Svagc_vmem
