examples/analytics_cache.mli:
