examples/quickstart.mli:
