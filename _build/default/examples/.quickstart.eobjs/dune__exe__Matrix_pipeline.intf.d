examples/matrix_pipeline.mli:
