examples/analytics_cache.ml: Array Cost_model List Machine Printf Svagc_core Svagc_gc Svagc_heap Svagc_metrics Svagc_util Svagc_vmem
