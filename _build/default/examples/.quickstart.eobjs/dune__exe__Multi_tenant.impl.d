examples/multi_tenant.ml: Array Cost_model List Machine Printf Svagc_core Svagc_gc Svagc_metrics Svagc_util Svagc_vmem Svagc_workloads
