(* Host wall-clock benchmark for the simulation core itself: a 1k-tenant
   imitation fleet driven once by the lockstep reference scan and once by
   the event-driven calendar engine.

   Each tenant is a self-rescheduling process with its own LCG stream:
   5% are hot (hundreds of events at small strides, so same-instant FIFO
   ties are common), the rest mostly idle (a handful of events at large
   strides) — the shape real fleets have, and exactly where the lockstep
   wave loop pays O(tenants) host work per event while the calendar pays
   O(log tenants).  Both engines must leave bit-identical final state
   (per-tenant LCG accumulator, event count and last firing ns) — the
   simulated world cannot tell which engine drove it.

   `dune exec bench/fleet_host_bench.exe` writes BENCH_fleet_host.json
   (canonical JSON, see --output).  `--quick` trims the fleet for CI
   smoke runs. *)

module Engine = Svagc_sched.Engine
module Json = Svagc_trace.Json

let lcg x = ((x * 1103515245) + 12345) land 0x3FFFFFFF

type fleet_state = {
  acc : int array;  (** per-tenant LCG accumulator *)
  fired : int array;  (** per-tenant events fired *)
  last : float array;  (** per-tenant last firing ns *)
}

let hot_every = 20
let hot_budget = 512
let cold_budget = 8

let total_events ~tenants =
  let hot = (tenants + hot_every - 1) / hot_every in
  (hot * hot_budget) + ((tenants - hot) * cold_budget)

(* Fresh single-use procs plus the state they mutate; everything about
   the schedule (entry ns, strides, budgets) is derived from the tenant
   index through the LCG, so every build replays the same fleet. *)
let build ~tenants =
  let state =
    {
      acc = Array.init tenants (fun i -> lcg ((i * 7919) + 17));
      fired = Array.make tenants 0;
      last = Array.make tenants 0.0;
    }
  in
  let procs =
    Array.init tenants (fun i ->
        let hot = i mod hot_every = 0 in
        let budget = if hot then hot_budget else cold_budget in
        let stride_mask = if hot then 63 else 16383 in
        let first_ns = float_of_int (lcg (i * 31) land 1023) in
        Engine.proc ~first_ns (fun ~now ->
            state.acc.(i) <- lcg (state.acc.(i) lxor (state.fired.(i) * 31));
            state.fired.(i) <- state.fired.(i) + 1;
            state.last.(i) <- now;
            if state.fired.(i) >= budget then Engine.done_ns
            else now +. float_of_int (state.acc.(i) land stride_mask)))
  in
  (procs, state)

let replay engine ~tenants =
  let procs, state = build ~tenants in
  let t0 = Sys.time () in
  let fired =
    match engine with
    | `Scan -> Engine.run_lockstep_scan procs
    | `Calendar -> Engine.run_calendar procs
  in
  (Sys.time () -. t0, fired, state)

(* Best-of-samples over enough whole-fleet replays to dwarf Sys.time's
   granularity; proc construction stays outside the timed region so both
   engines are measured on dispatch alone. *)
let measure engine ~tenants =
  Gc.full_major ();
  let fired = ref 0 and final = ref None in
  let batch reps =
    let t = ref 0.0 in
    for _ = 1 to reps do
      let dt, n, st = replay engine ~tenants in
      t := !t +. dt;
      fired := n;
      final := Some st
    done;
    !t
  in
  let rec calibrate reps =
    let t = batch reps in
    if t >= 0.1 || reps >= 1024 then (reps, t /. float_of_int reps)
    else calibrate (reps * 4)
  in
  let reps, first = calibrate 1 in
  let best = ref first in
  for _ = 1 to 3 do
    let per = batch reps /. float_of_int reps in
    if per < !best then best := per
  done;
  match !final with
  | None -> assert false
  | Some st -> (!best, !fired, st)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let out =
    let rec find = function
      | ("-o" | "--output") :: file :: _ -> file
      | _ :: tl -> find tl
      | [] -> "BENCH_fleet_host.json"
    in
    find args
  in
  let tenants = if quick then 200 else 1000 in
  Printf.printf "fleet host: %d tenants, %d events:%!" tenants
    (total_events ~tenants);
  let scan_s, scan_fired, scan_st = measure `Scan ~tenants in
  Printf.printf " lockstep-scan%!";
  let cal_s, cal_fired, cal_st = measure `Calendar ~tenants in
  Printf.printf " calendar\n%!";
  if scan_fired <> cal_fired then
    failwith
      (Printf.sprintf "event counts diverged: scan %d vs calendar %d"
         scan_fired cal_fired);
  if
    scan_st.acc <> cal_st.acc
    || scan_st.fired <> cal_st.fired
    || scan_st.last <> cal_st.last
  then failwith "final fleet state diverged between the engines";
  let events = float_of_int scan_fired in
  let per_event s = s *. 1e9 /. events in
  let speedup = scan_s /. cal_s in
  let doc =
    Json.Obj
      [
        ("benchmark", Json.Str "fleet_host_bench");
        ("unit", Json.Str "host ns per simulated event (Sys.time)");
        ("quick", Json.Bool quick);
        ("tenants", Json.Int tenants);
        ("events_per_replay", Json.Int scan_fired);
        ( "lockstep_scan",
          Json.Obj
            [
              ("host_s_per_replay", Json.Float scan_s);
              ("host_ns_per_event", Json.Float (per_event scan_s));
            ] );
        ( "calendar",
          Json.Obj
            [
              ("host_s_per_replay", Json.Float cal_s);
              ("host_ns_per_event", Json.Float (per_event cal_s));
            ] );
        ("final_state_identical", Json.Bool true);
        ("host_speedup_calendar_vs_scan", Json.Float speedup);
      ]
  in
  let oc = open_out out in
  Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  Printf.printf
    "host ns/event: scan %.0f vs calendar %.0f — calendar %.1fx faster\n"
    (per_event scan_s) (per_event cal_s) speedup;
  (* Full runs gate on the calendar clearly beating the O(n)-per-event
     scan at 1k tenants; --quick smoke runs only report the ratio (small
     fleets and noisy CI neighbours make a hard perf gate flaky). *)
  if (not quick) && speedup < 3.0 then begin
    Printf.eprintf "FAIL: expected >= 3x, got %.2fx\n" speedup;
    exit 1
  end
