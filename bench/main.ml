(* The benchmark harness:

   1. Bechamel micro-benchmarks — one Test.make per paper table/figure,
      timing the *simulator operation* at the heart of that experiment
      (host wall-clock, sanity for the simulation's own cost).
   2. The full reproduction harness — regenerates every figure and table
      of the paper's evaluation (simulated time), via
      Svagc_experiments.Registry.

   `dune exec bench/main.exe` runs both; pass `--quick` to trim the suite,
   `--skip-micro` to go straight to the reproductions. *)

open Bechamel
open Toolkit
open Svagc_vmem
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva

let base = 1 lsl 30

let swap_fixture ~pages =
  let machine = Machine.create ~phys_mib:256 Cost_model.xeon_6130 in
  let proc = Process.create machine in
  Address_space.map_range (Process.aspace proc) ~va:base ~pages:(2 * pages);
  proc

(* Populated heap fixture used by the GC-cycle benchmarks; one collection
   consumes the garbage, so each run re-populates. *)
let gc_cycle collector_of () =
  let heap = Helpers_bench.fresh_heap () in
  Helpers_bench.populate heap;
  ignore (Svagc_gc.Gc_intf.collect (collector_of heap))

let micro_tests =
  [
    (* Fig. 1: one full memmove LISP2 cycle (the phase-breakdown subject). *)
    Test.make ~name:"fig1:lisp2-memmove-cycle"
      (Staged.stage (gc_cycle (Svagc_core.Svagc.baseline_collector ~threads:4)));
    (* Fig. 2 / Fig. 14: one LRU-cache mutator step. *)
    Test.make ~name:"fig2+14:lru-step"
      (Staged.stage
         (let machine = Machine.create ~phys_mib:256 Cost_model.xeon_6130 in
          let jvm =
            Svagc_workloads.Runner.make_jvm ~machine
              ~collector_of:
                (Svagc_core.Svagc.collector ~config:Svagc_core.Config.default)
              Svagc_workloads.Lru_cache.workload
          in
          let rng = Svagc_util.Rng.create ~seed:1 in
          Svagc_workloads.Lru_cache.workload.Svagc_workloads.Workload.setup jvm rng));
    (* Fig. 6: an aggregated SwapVA call over 16 requests. *)
    Test.make ~name:"fig6:aggregated-swap-16x4p"
      (Staged.stage
         (let proc = swap_fixture ~pages:(16 * 4) in
          let reqs =
            List.init 16 (fun i ->
                let off = i * 8 * Addr.page_size in
                {
                  Swapva.src = base + off;
                  dst = base + off + (4 * Addr.page_size);
                  pages = 4;
                })
          in
          fun () ->
            ignore (Swapva.swap_aggregated proc ~opts:Swapva.default_opts reqs)));
    (* Fig. 8: a 256-page swap with PMD caching. *)
    Test.make ~name:"fig8:swap-256p-pmd"
      (Staged.stage
         (let proc = swap_fixture ~pages:256 in
          fun () ->
            ignore
              (Swapva.swap proc ~opts:Swapva.default_opts ~src:base
                 ~dst:(base + (256 * Addr.page_size))
                 ~pages:256)));
    (* Fig. 9: a pinned-mode swap storm (local flushes only). *)
    Test.make ~name:"fig9:pinned-swap-storm"
      (Staged.stage
         (let proc = swap_fixture ~pages:64 in
          fun () ->
            for i = 0 to 15 do
              let off = i * 4 * Addr.page_size in
              ignore
                (Swapva.swap proc ~opts:Swapva.default_opts ~src:(base + off)
                   ~dst:(base + off + (2 * Addr.page_size))
                   ~pages:2)
            done));
    (* Fig. 10: the analytic MoveObject cost sweep around the threshold. *)
    Test.make ~name:"fig10:move-cost-threshold"
      (Staged.stage
         (let heap = Helpers_bench.fresh_heap () in
          fun () ->
            for pages = 1 to 32 do
              ignore
                (Svagc_core.Move_object.move_cost_ns Svagc_core.Config.default heap
                   ~len:(pages * Addr.page_size))
            done));
    (* Figs. 11-13, 15, 16: one SVAGC collection. *)
    Test.make ~name:"fig11-16:svagc-cycle"
      (Staged.stage
         (gc_cycle (Svagc_core.Svagc.collector ~config:Svagc_core.Config.default)));
    (* Table I: an overlapping (Algorithm 2) swap. *)
    Test.make ~name:"table1:overlap-swap-16p"
      (Staged.stage
         (let proc = swap_fixture ~pages:20 in
          fun () ->
            ignore
              (Swapva.swap proc ~opts:Swapva.default_opts ~src:base
                 ~dst:(base + (4 * Addr.page_size))
                 ~pages:16)));
    (* Tracing overhead: the same SVAGC cycle with no tracer installed
       (every instrumentation site takes its no-op branch) vs. recording
       into a ring.  The disabled run must sit within noise of
       fig11-16:svagc-cycle above. *)
    Test.make ~name:"trace:gc-cycle-disabled"
      (Staged.stage
         (let cycle =
            gc_cycle (Svagc_core.Svagc.collector ~config:Svagc_core.Config.default)
          in
          fun () ->
            assert (not (Svagc_trace.Tracer.tracing ()));
            cycle ()));
    Test.make ~name:"trace:gc-cycle-recording"
      (Staged.stage
         (let cycle =
            gc_cycle (Svagc_core.Svagc.collector ~config:Svagc_core.Config.default)
          in
          fun () ->
            ignore (Svagc_trace.Tracer.start ~capacity:65536 ());
            cycle ();
            ignore (Svagc_trace.Tracer.stop ())));
    (* The raw no-op entry point, 1000 calls per run: the cost a hot
       kernel site pays per instrumentation hit when tracing is off. *)
    Test.make ~name:"trace:disabled-instant-x1000"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             Svagc_trace.Tracer.instant "noop"
           done));
    (* Table II: registry rendering. *)
    Test.make ~name:"table2:registry-rows"
      (Staged.stage (fun () -> ignore (Svagc_workloads.Spec.table_ii_rows ())));
    (* Table III: a measured (cache+TLB instrumented) memmove. *)
    Test.make ~name:"table3:measured-memmove-64k"
      (Staged.stage
         (let machine = Machine.create ~phys_mib:64 Cost_model.xeon_6130 in
          let proc = Process.create machine in
          let aspace = Process.aspace proc in
          Address_space.map_range aspace ~va:base ~pages:64;
          fun () ->
            ignore
              (Svagc_kernel.Memmove.move ~measure_core:0 aspace ~src:base
                 ~dst:(base + (32 * Addr.page_size))
                 ~len:65536)));
  ]

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let grouped = Test.make_grouped ~name:"svagc" ~fmt:"%s %s" micro_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Svagc_metrics.Report.section "Bechamel micro-benchmarks (host wall-clock)";
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "  (no results)"
  | Some per_test ->
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ x ] -> Printf.sprintf "%.0f ns/run" x
          | Some _ | None -> "n/a"
        in
        rows := [ name; est ] :: !rows)
      per_test;
    Svagc_metrics.Table.print ~headers:[ "benchmark"; "host time" ]
      (List.sort compare !rows)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let skip_micro = List.mem "--skip-micro" args in
  if not skip_micro then run_micro ();
  Svagc_experiments.Registry.run_all ~quick ()
