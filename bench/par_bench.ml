(* Host wall-clock benchmark for the Domain_pool: the sharded page-table
   sweep (Par_sweep) over up to 512k mapped pages, executed on 1 / 2 / 4
   real domains with the SAME shard partition — so every run returns the
   identical result (asserted below) and only the wall-clock moves.

   Timing uses Unix.gettimeofday: Sys.time is CPU time, which SUMS across
   domains and would show no speedup at all.

   `dune exec bench/par_bench.exe` writes BENCH_par.json.  The >= 2x
   speedup gate at 4 domains only arms on a full (non --quick) run when
   the host actually has >= 4 cores (Domain.recommended_domain_count);
   on smaller hosts the ratio is reported and the gate recorded as
   skipped — determinism is still asserted everywhere. *)

open Svagc_vmem
module Process = Svagc_kernel.Process
module Domain_pool = Svagc_par.Domain_pool
module Par_sweep = Svagc_par.Par_sweep
module Json = Svagc_trace.Json

let base = 1 lsl 32
let shards = 64

(* Wall-clock per-op: calibrate the iteration count until a sample dwarfs
   timer granularity, then keep the best of a few samples. *)
let wall_per_op f =
  Gc.full_major ();
  ignore (Sys.opaque_identity (f ()));
  let sample iters =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  let rec calibrate iters =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt >= 0.2 || iters >= 1_000_000 then (iters, dt /. float_of_int iters)
    else calibrate (iters * 4)
  in
  let iters, first = calibrate 1 in
  let best = ref first in
  for _ = 1 to 4 do
    let per = sample iters in
    if per < !best then best := per
  done;
  !best

let fixture ~pages =
  let phys_mib = (pages / 256) + 64 in
  let machine = Machine.create ~ncores:4 ~phys_mib Cost_model.xeon_6130 in
  let proc = Process.create machine in
  Address_space.map_range (Process.aspace proc) ~va:base ~pages;
  (machine, Address_space.page_table (Process.aspace proc))

let bench_size ~pages =
  Printf.printf "%8d pages:%!" pages;
  let machine, pt = fixture ~pages in
  let reference = Par_sweep.checksum_reference pt ~va:base ~pages in
  let digest r =
    ( r.Par_sweep.checksum,
      r.Par_sweep.leaves,
      r.Par_sweep.present,
      Int64.bits_of_float r.Par_sweep.walk_ns,
      Int64.bits_of_float r.Par_sweep.makespan_ns )
  in
  let results =
    List.map
      (fun domains ->
        let per_op, dg =
          Domain_pool.with_pool ~domains (fun pool ->
              let dg =
                ref (digest (Par_sweep.run ~pool machine pt ~va:base ~pages ~shards))
              in
              let per_op =
                wall_per_op (fun () ->
                    let r = Par_sweep.run ~pool machine pt ~va:base ~pages ~shards in
                    dg := digest r;
                    r.Par_sweep.leaves)
              in
              (per_op, !dg))
        in
        Printf.printf " %dd%!" domains;
        (domains, per_op, dg))
      [ 1; 2; 4 ]
  in
  Printf.printf "\n%!";
  (* Determinism gate (always armed): every domain count produced the
     bit-identical result, and its checksum matches the sequential
     reference walk. *)
  (match results with
  | (_, _, d1) :: rest ->
    let cks, _, _, _, _ = d1 in
    if cks <> reference then
      failwith
        (Printf.sprintf "checksum %Ld diverged from the reference %Ld at %d pages"
           cks reference pages);
    List.iter
      (fun (domains, _, d) ->
        if d <> d1 then
          failwith
            (Printf.sprintf
               "%d-domain sweep result diverged from 1-domain at %d pages"
               domains pages))
      rest
  | [] -> assert false);
  let per_of d = List.find (fun (x, _, _) -> x = d) results in
  let _, t1, _ = per_of 1 in
  let row (domains, per, _) =
    Json.Obj
      [
        ("domains", Json.Int domains);
        ("host_ns_per_op", Json.Float (per *. 1e9));
        ("speedup_vs_1_domain", Json.Float (t1 /. per));
      ]
  in
  let _, t4, _ = per_of 4 in
  ( t1 /. t4,
    Json.Obj
      [
        ("pages", Json.Int pages);
        ("shards", Json.Int shards);
        ("checksum", Json.Str (Printf.sprintf "0x%016Lx" reference));
        ("deterministic_across_domains", Json.Bool true);
        ("domains", Json.List (List.map row results));
      ] )

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let out =
    let rec find = function
      | ("-o" | "--output") :: file :: _ -> file
      | _ :: tl -> find tl
      | [] -> "BENCH_par.json"
    in
    find args
  in
  let sizes = if quick then [ 16384 ] else [ 65536; 524288 ] in
  let measured = List.map (fun pages -> bench_size ~pages) sizes in
  let host_cores = Domain.recommended_domain_count () in
  let gate_armed = (not quick) && host_cores >= 4 in
  let speedup_at_4 =
    match List.rev measured with (s, _) :: _ -> s | [] -> 0.0
  in
  let doc =
    Json.Obj
      [
        ("benchmark", Json.Str "par_bench");
        ("unit", Json.Str "host wall-clock ns per sweep (gettimeofday)");
        ("quick", Json.Bool quick);
        ("host_cores", Json.Int host_cores);
        ("gate_armed", Json.Bool gate_armed);
        ("gate_speedup_target", Json.Float 2.0);
        ("largest_size_speedup_at_4_domains", Json.Float speedup_at_4);
        ("sizes", Json.List (List.map snd measured));
      ]
  in
  let oc = open_out out in
  Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  Printf.printf "largest-size wall-clock speedup at 4 domains: %.2fx (host has %d cores)\n"
    speedup_at_4 host_cores;
  if gate_armed then begin
    if speedup_at_4 < 2.0 then begin
      Printf.printf
        "FAIL: 4-domain sweep below the 2x wall-clock gate on a %d-core host\n"
        host_cores;
      exit 1
    end
    else Printf.printf "gate: >= 2x at 4 domains PASSED\n"
  end
  else
    Printf.printf
      "gate: skipped (%s) - determinism asserted, wall-clock ratio reported only\n"
      (if quick then "--quick" else "host has fewer than 4 cores")
