(* Host wall-clock microbenchmark for the disjoint-swap data paths:
   simulated memmove (byte copies) vs the per-page SwapVA reference vs the
   run-coalesced SwapVA engine vs the flat engine (bitset prechecks,
   scratch run buffers, memoized bulk charges), at 1k / 64k / 512k pages
   per side.

   All SwapVA engines charge bit-identical *simulated* cost (asserted
   here and recorded in the output); what this benchmark measures is how
   much *host* time the simulator itself spends, which is what the
   run-coalesced and flat engines exist to cut.

   `dune exec bench/swap_bench.exe` writes BENCH_swap.json (canonical
   JSON, see --output).  `--quick` trims the sizes for CI smoke runs. *)

open Svagc_vmem
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva
module Memmove = Svagc_kernel.Memmove
module Json = Svagc_trace.Json

let base = 1 lsl 32

(* Grow the iteration count until the measurement dwarfs Sys.time's
   granularity, then take the best of several samples: the fixtures keep
   gigabytes live, so any single sample can eat a major-GC slice or a
   page-fault storm that has nothing to do with the measured loop.  Every
   operation here is its own inverse or idempotent enough to repeat. *)
let time_per_op f =
  Gc.full_major ();
  ignore (Sys.opaque_identity (f ()));
  let rec calibrate iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Sys.time () -. t0 in
    if dt >= 0.05 || iters >= 1_000_000 then (iters, dt /. float_of_int iters)
    else calibrate (iters * 4)
  in
  let iters, first = calibrate 1 in
  let best = ref first in
  let extra_samples = if first >= 1.0 then 1 else 5 in
  for _ = 1 to extra_samples do
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    let per = (Sys.time () -. t0) /. float_of_int iters in
    if per < !best then best := per
  done;
  !best

let fixture ~pages =
  (* Both ranges plus slack for page tables and metadata. *)
  let phys_mib = (2 * pages / 256) + 64 in
  let machine = Machine.create ~ncores:4 ~phys_mib Cost_model.xeon_6130 in
  let proc = Process.create machine in
  Address_space.map_range (Process.aspace proc) ~va:base ~pages:(2 * pages);
  proc

let bench_size ~pages =
  Printf.printf "%8d pages:%!" pages;
  let req =
    { Swapva.src = base; dst = base + (pages * Addr.page_size); pages }
  in
  let len = pages * Addr.page_size in
  let proc = fixture ~pages in
  let aspace = Process.aspace proc in
  let per_page_sim = ref 0.0 in
  let per_page_host =
    time_per_op (fun () ->
        per_page_sim := Swapva.swap_disjoint_per_page proc ~pmd_caching:true req)
  in
  Printf.printf " per-page%!";
  let run_sim = ref 0.0 in
  let run_host =
    time_per_op (fun () ->
        run_sim := Swapva.swap_disjoint_run proc ~pmd_caching:true req)
  in
  Printf.printf " run-coalesced%!";
  let flat_sim = ref 0.0 in
  let flat_host =
    time_per_op (fun () ->
        flat_sim :=
          Swapva.swap_disjoint_flat proc ~pmd_caching:true ~leaf_swap:false req)
  in
  Printf.printf " flat%!";
  let memmove_host =
    time_per_op (fun () ->
        ignore (Memmove.move aspace ~src:base ~dst:req.Swapva.dst ~len))
  in
  Printf.printf " memmove\n%!";
  if !per_page_sim <> !run_sim then
    failwith
      (Printf.sprintf
         "simulated cost diverged at %d pages: per-page %.17g vs run %.17g"
         pages !per_page_sim !run_sim);
  if !per_page_sim <> !flat_sim then
    failwith
      (Printf.sprintf
         "simulated cost diverged at %d pages: per-page %.17g vs flat %.17g"
         pages !per_page_sim !flat_sim);
  let ns s = s *. 1e9 in
  Json.Obj
    [
      ("pages", Json.Int pages);
      ("bytes_per_side", Json.Int len);
      ("memmove", Json.Obj [ ("host_ns_per_op", Json.Float (ns memmove_host)) ]);
      ( "swapva_per_page",
        Json.Obj
          [
            ("host_ns_per_op", Json.Float (ns per_page_host));
            ("simulated_ns", Json.Float !per_page_sim);
          ] );
      ( "swapva_run_coalesced",
        Json.Obj
          [
            ("host_ns_per_op", Json.Float (ns run_host));
            ("simulated_ns", Json.Float !run_sim);
          ] );
      ( "swapva_flat",
        Json.Obj
          [
            ("host_ns_per_op", Json.Float (ns flat_host));
            ("simulated_ns", Json.Float !flat_sim);
          ] );
      ("simulated_cost_identical", Json.Bool true);
      ( "host_speedup_run_vs_per_page",
        Json.Float (per_page_host /. run_host) );
      ("host_speedup_run_vs_memmove", Json.Float (memmove_host /. run_host));
      ("host_speedup_flat_vs_run", Json.Float (run_host /. flat_host));
    ]

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let out =
    let rec find = function
      | ("-o" | "--output") :: file :: _ -> file
      | _ :: tl -> find tl
      | [] -> "BENCH_swap.json"
    in
    find args
  in
  let sizes = if quick then [ 1024; 16384 ] else [ 1024; 65536; 524288 ] in
  let results = List.map (fun pages -> bench_size ~pages) sizes in
  let doc =
    Json.Obj
      [
        ("benchmark", Json.Str "swap_bench");
        ("unit", Json.Str "host ns per operation (Sys.time)");
        ("quick", Json.Bool quick);
        ("sizes", Json.List results);
      ]
  in
  let oc = open_out out in
  Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  (* Full runs gate on the run-coalesced engine clearly beating the
     per-page reference at the largest size.  --quick smoke runs (CI on
     shared runners) only report the ratio: small sizes and noisy
     neighbours make a hard perf gate flaky there. *)
  match List.rev results with
  | last :: _ ->
    (match Json.member "host_speedup_run_vs_per_page" last with
    | Some (Json.Float s) ->
      Printf.printf "largest-size speedup run vs per-page: %.1fx\n" s;
      if (not quick) && s < 5.0 then begin
        Printf.eprintf "FAIL: expected >= 5x, got %.2fx\n" s;
        exit 1
      end
    | _ -> ());
    (match Json.member "host_speedup_flat_vs_run" last with
    | Some (Json.Float s) ->
      Printf.printf "largest-size speedup flat vs run-coalesced: %.1fx\n" s;
      if (not quick) && s < 1.5 then begin
        Printf.eprintf "FAIL: expected >= 1.5x, got %.2fx\n" s;
        exit 1
      end
    | _ -> ())
  | [] -> ()
