(* Benchmark for the memory-pressure headline: compacting through swapped
   pages.  At 0.5 residency half of a mapped range lives on the simulated
   swap device; SwapVA exchanges the non-present PTEs as swap-slot handles
   (no swap-in), while memmove must demand-fault every swapped page back
   in before copying.  Both engines charge *simulated* cost, which is
   deterministic, so the gate (SwapVA >= 5x cheaper than
   memmove-with-faults) holds in --quick mode too.

   `dune exec bench/reclaim_bench.exe` writes BENCH_reclaim.json
   (canonical JSON, see --output).  `--quick` trims the sizes for CI
   smoke runs. *)

open Svagc_vmem
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva
module Memmove = Svagc_kernel.Memmove
module Fault_handler = Svagc_kernel.Fault_handler
module Json = Svagc_trace.Json

let base = 1 lsl 32

(* A process with [2 * pages] mapped and the machine capped at [pages]
   resident frames: attach BEFORE mapping so every page is LRU-tracked
   from birth and kswapd evicts the cold (first-mapped) half as mapping
   crosses the watermark — residency settles at 0.5 with the low half of
   the range swapped out and the high half resident. *)
let fixture ~pages =
  let phys_mib = (2 * pages / 256) + 64 in
  let machine = Machine.create ~ncores:4 ~phys_mib Cost_model.xeon_6130 in
  ignore (Fault_handler.attach machine ~limit_frames:pages ());
  let proc = Process.create machine in
  Address_space.map_range (Process.aspace proc) ~va:base ~pages:(2 * pages);
  (machine, proc)

(* Reclaim cost (fault-ins, evictions) accrued by [f] but not already
   folded into its return value. *)
let with_drained machine f =
  let drain () =
    match machine.Machine.reclaim with
    | Some r -> r.Machine.ri_drain_ns ()
    | None -> 0.0
  in
  ignore (drain ());
  let ns = f () in
  ns +. drain ()

let bench_size ~pages =
  Printf.printf "%8d pages:%!" pages;
  let len = pages * Addr.page_size in
  let req =
    { Swapva.src = base; dst = base + (pages * Addr.page_size); pages }
  in
  (* Separate fixtures: memmove's fault-ins destroy the half-swapped
     state that the SwapVA measurement must also start from. *)
  let swap_machine, swap_proc = fixture ~pages in
  let faults_before = swap_machine.Machine.perf.Perf.major_faults in
  let swapva_ns =
    with_drained swap_machine (fun () ->
        Swapva.swap_disjoint_run swap_proc ~pmd_caching:true req)
  in
  let swapva_faults =
    swap_machine.Machine.perf.Perf.major_faults - faults_before
  in
  Printf.printf " swapva%!";
  let mm_machine, mm_proc = fixture ~pages in
  let mm_aspace = Process.aspace mm_proc in
  let faults_before = mm_machine.Machine.perf.Perf.major_faults in
  let memmove_ns =
    with_drained mm_machine (fun () ->
        Memmove.move mm_aspace ~src:base ~dst:req.Swapva.dst ~len)
  in
  let memmove_faults =
    mm_machine.Machine.perf.Perf.major_faults - faults_before
  in
  Printf.printf " memmove\n%!";
  let speedup = if swapva_ns > 0.0 then memmove_ns /. swapva_ns else 0.0 in
  ( speedup,
    Json.Obj
      [
        ("pages", Json.Int pages);
        ("bytes_per_side", Json.Int len);
        ("residency", Json.Float 0.5);
        ( "swapva_slot_swap",
          Json.Obj
            [
              ("simulated_ns", Json.Float swapva_ns);
              ("major_faults", Json.Int swapva_faults);
            ] );
        ( "memmove_with_faults",
          Json.Obj
            [
              ("simulated_ns", Json.Float memmove_ns);
              ("major_faults", Json.Int memmove_faults);
            ] );
        ("sim_speedup_swapva_vs_memmove", Json.Float speedup);
      ] )

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let out =
    let rec find = function
      | ("-o" | "--output") :: file :: _ -> file
      | _ :: tl -> find tl
      | [] -> "BENCH_reclaim.json"
    in
    find args
  in
  let sizes = if quick then [ 1024 ] else [ 1024; 16384; 65536 ] in
  let results = List.map (fun pages -> bench_size ~pages) sizes in
  let doc =
    Json.Obj
      [
        ("benchmark", Json.Str "reclaim_bench");
        ("unit", Json.Str "simulated ns per operation (deterministic)");
        ("quick", Json.Bool quick);
        ("sizes", Json.List (List.map snd results));
      ]
  in
  let oc = open_out out in
  Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  (* The costs are simulated and deterministic, so the fast-path gate is
     safe to enforce even in --quick smoke runs. *)
  List.iter
    (fun (speedup, json) ->
      let pages =
        match Json.member "pages" json with Some (Json.Int p) -> p | _ -> 0
      in
      Printf.printf "%8d pages: slot-swap vs memmove-with-faults: %.1fx\n"
        pages speedup;
      if speedup < 5.0 then begin
        Printf.eprintf "FAIL: expected >= 5x at %d pages, got %.2fx\n" pages
          speedup;
        exit 1
      end)
    results
