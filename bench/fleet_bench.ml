(* Benchmark for the fleet headline: tail GC pauses across 1k+ tenants
   under 2x memory overcommit, with cgroup limits and a tiered (local +
   far-memory) swap device.  Large tenants compact humongous buffers:
   SwapVA exchanges the PTEs — swapped ones participate as swap-slot
   handles wherever their payload lives — while memmove demand-faults
   every cold page through the far tier before copying it.  The gate is
   on the tail: SwapVA's fleet-wide p99 GC pause must not exceed
   memmove's.  All costs are simulated and deterministic, so the gate is
   safe to enforce in --quick mode too.

   `dune exec bench/fleet_bench.exe` writes BENCH_fleet.json (canonical
   JSON, see --output).  `--quick` trims the fleet for CI smoke runs. *)

module Exp_common = Svagc_experiments.Exp_common
module Exp_fleet = Svagc_experiments.Exp_fleet
module Fleet = Svagc_fleet.Fleet
module Histogram = Svagc_util.Histogram
module Perf = Svagc_vmem.Perf
module Json = Svagc_trace.Json

let result_json (r : Fleet.result) =
  Json.Obj
    [
      ("collector", Json.Str r.Fleet.label);
      ("tenants", Json.Int (Array.length r.Fleet.stats));
      ("admitted", Json.Int r.Fleet.admitted);
      ("queued", Json.Int r.Fleet.queued);
      ("rejected", Json.Int r.Fleet.rejected);
      ("waves", Json.Int r.Fleet.waves);
      ("pool_frames", Json.Int r.Fleet.pool_frames);
      ("committed_frames", Json.Int r.Fleet.committed_frames);
      ("near_slots", Json.Int r.Fleet.near_slots);
      ( "gc_pause_ns",
        Json.Obj
          [
            ("count", Json.Int (Histogram.count r.Fleet.pauses));
            ("p50", Json.Float (Histogram.p50 r.Fleet.pauses));
            ("p99", Json.Float (Histogram.p99 r.Fleet.pauses));
            ("p999", Json.Float (Histogram.p999 r.Fleet.pauses));
            ("max", Json.Float (Histogram.max r.Fleet.pauses));
            ("max_tenant_p99", Json.Float r.Fleet.max_tenant_p99_pause);
          ] );
      ( "alloc_stall_ns",
        Json.Obj
          [
            ("count", Json.Int (Histogram.count r.Fleet.stalls));
            ("p50", Json.Float (Histogram.p50 r.Fleet.stalls));
            ("p99", Json.Float (Histogram.p99 r.Fleet.stalls));
            ("p999", Json.Float (Histogram.p999 r.Fleet.stalls));
          ] );
      ("tier_demotions", Json.Int r.Fleet.perf.Perf.tier_demotions);
      ("tier_promotions", Json.Int r.Fleet.perf.Perf.tier_promotions);
      ("admission_rejects", Json.Int r.Fleet.perf.Perf.admission_rejects);
      ("major_faults", Json.Int r.Fleet.perf.Perf.major_faults);
      ("swapva_calls", Json.Int r.Fleet.perf.Perf.swapva_calls);
      ("memmove_calls", Json.Int r.Fleet.perf.Perf.memmove_calls);
      ("total_ns", Json.Float r.Fleet.total_ns);
    ]

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let out =
    let rec find = function
      | ("-o" | "--output") :: file :: _ -> file
      | _ :: tl -> find tl
      | [] -> "BENCH_fleet.json"
    in
    find args
  in
  let cfg = Exp_fleet.config_for ~quick in
  Printf.printf "fleet: %d + %d tenants @ %gx overcommit:%!" cfg.Fleet.tenants
    cfg.Fleet.surge cfg.Fleet.overcommit;
  let svagc = Exp_fleet.measure ~quick Exp_common.Svagc in
  Printf.printf " svagc%!";
  let memmove = Exp_fleet.measure ~quick Exp_common.Lisp2_memmove in
  Printf.printf " memmove\n%!";
  let sv99 = Histogram.p99 svagc.Fleet.pauses in
  let mm99 = Histogram.p99 memmove.Fleet.pauses in
  let doc =
    Json.Obj
      [
        ("benchmark", Json.Str "fleet_bench");
        ("unit", Json.Str "simulated ns per GC pause (deterministic)");
        ("quick", Json.Bool quick);
        ("tenants", Json.Int cfg.Fleet.tenants);
        ("surge", Json.Int cfg.Fleet.surge);
        ("overcommit", Json.Float cfg.Fleet.overcommit);
        ("far_tier_cost", Json.Float cfg.Fleet.far_tier_cost);
        ("results", Json.List [ result_json svagc; result_json memmove ]);
        ( "gate",
          Json.Obj
            [
              ("metric", Json.Str "fleet-wide p99 GC pause");
              ("swapva_p99_ns", Json.Float sv99);
              ("memmove_p99_ns", Json.Float mm99);
              ("swapva_le_memmove", Json.Bool (sv99 <= mm99));
            ] );
      ]
  in
  let oc = open_out out in
  Json.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  Printf.printf "p99 GC pause: swapva %.0fns vs memmove %.0fns (%.2fx)\n" sv99
    mm99
    (if sv99 > 0.0 then mm99 /. sv99 else 0.0);
  if sv99 > mm99 then begin
    Printf.eprintf
      "FAIL: SwapVA p99 pause %.0fns exceeds memmove p99 %.0fns under %gx \
       overcommit\n"
      sv99 mm99 cfg.Fleet.overcommit;
    exit 1
  end
