(* svagc — command-line front end for the SVAGC reproduction.

   `svagc list`                 enumerate experiments and workloads
   `svagc exp fig11 [--quick]`  reproduce one figure/table (or `all`)
   `svagc bench <name> ...`     run one benchmark under chosen collectors
   `svagc threshold`            print the Fig. 10 style break-even sweep
   `svagc trace ...`            run a workload/experiment with structured
                                tracing on and write Chrome trace JSON *)

open Cmdliner
module Registry = Svagc_experiments.Registry
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Report = Svagc_metrics.Report

let list_cmd =
  let doc = "List available experiments and workloads." in
  let run () =
    Report.section "Experiments";
    List.iter
      (fun e -> Printf.printf "  %-8s %s\n" e.Registry.id e.Registry.title)
      Registry.all;
    Report.section "Workloads";
    List.iter
      (fun w ->
        Printf.printf "  %-16s %-12s %s\n" w.Workload.name w.Workload.suite
          w.Workload.description)
      Svagc_workloads.Spec.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Trimmed suite / fewer steps.")

let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Run with the svagc_check shadow oracle enabled: TLB coherence \
           after every shootdown, perf-counter conservation laws, clock \
           monotonicity and post-GC heap audits. Exits non-zero on any \
           invariant violation.")

let print_check_report rep =
  Report.section "svagc_check report";
  Format.printf "%a@." Svagc_check.Check.pp_report rep;
  rep.Svagc_check.Check.findings <> []

let run_experiment ~quick id =
  if id = "all" then Registry.run_all ~quick ()
  else
    match Registry.find id with
    | Some e -> e.Registry.run ~quick ()
    | None ->
      Printf.eprintf "unknown experiment %S (see `svagc list`)\n" id;
      exit 1

let exp_cmd =
  let doc = "Reproduce paper experiments by id (or 'all')." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let tenants_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tenants" ] ~docv:"N"
          ~doc:
            "Override the fleet experiment's cohort size (surge scales to \
             5% of it). Only affects 'fleet'; e.g. $(b,exp fleet --tenants \
             10000 --quick).")
  in
  let run quick check tenants ids =
    (match tenants with
    | Some n when n < 1 ->
      Printf.eprintf "--tenants must be >= 1\n";
      exit 1
    | _ -> Svagc_experiments.Exp_fleet.tenants_override := tenants);
    if check then Svagc_check.Check.enable ~label:(String.concat "+" ids) ();
    List.iter (run_experiment ~quick) ids;
    if check then
      match Svagc_check.Check.disable () with
      | Some rep -> if print_check_report rep then exit 1
      | None -> ()
  in
  Cmd.v (Cmd.info "exp" ~doc)
    Term.(const run $ quick_arg $ check_flag $ tenants_arg $ ids)

let collector_conv =
  let parse = function
    | "svagc" -> Ok Svagc_experiments.Exp_common.Svagc
    | "memmove" | "baseline" -> Ok Svagc_experiments.Exp_common.Lisp2_memmove
    | "parallelgc" -> Ok Svagc_experiments.Exp_common.Parallelgc
    | "shenandoah" -> Ok Svagc_experiments.Exp_common.Shenandoah
    | s -> Error (`Msg (Printf.sprintf "unknown collector %S" s))
  in
  let print ppf k =
    Format.pp_print_string ppf (Svagc_experiments.Exp_common.collector_name k)
  in
  Arg.conv (parse, print)

let no_coalesce_arg =
  Arg.(
    value & flag
    & info [ "no-coalesce" ]
        ~doc:
          "Disable run coalescing: adjacent compaction entries with \
           contiguous src and dst ranges are no longer merged into one \
           SwapVA request before aggregation.")

let pmd_leaf_swap_arg =
  Arg.(
    value & flag
    & info [ "pmd-leaf-swap" ]
        ~doc:
          "Enable whole-PMD leaf swapping: 512-page PMD-aligned sub-runs \
           are exchanged at the page-directory level in O(1) simulated \
           cost. Opt-in because it changes the cost model.")

let fault_spec_arg =
  Arg.(
    value & opt string ""
    & info [ "fault-spec" ] ~docv:"SPEC"
        ~doc:
          "Deterministic kernel fault injection, e.g. \
           $(b,pte:p=0.01,lock:p=0.005,ipi:every=64) or \
           $(b,pte:p=0.1:va=0x100000000-0x140000000). Sites: $(b,pte) \
           (PTE resolution, EFAULT), $(b,lock) (mmap-lock acquisition, \
           EAGAIN), $(b,ipi) (shootdown IPI delivery, lost + resent), \
           $(b,swap) (swap-device I/O, EIO with bounded retry). Empty \
           disables injection.")

let fault_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the fault-injection PRNG streams; the same spec and \
           seed replay the same faults byte-for-byte.")

let mem_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit-frames" ] ~docv:"N"
        ~doc:
          "Cap resident physical frames at N, attaching the kswapd-style \
           reclaim plane: cold pages are evicted to the simulated swap \
           device and fault back in on first touch as charged major \
           faults. Default: unlimited (no reclaim plane, bit-identical to \
           builds without one).")

let swap_cost_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "swap-cost" ] ~docv:"NS"
        ~doc:
          "Override both simulated swap-device latencies (swap-out and \
           swap-in) with NS nanoseconds per page transfer. Only \
           meaningful together with $(b,--mem-limit-frames).")

let parse_fault_spec spec =
  match Svagc_fault.Fault_spec.parse spec with
  | Ok s -> s
  | Error msg ->
    Printf.eprintf "--fault-spec: %s\n" msg;
    exit 1

let svagc_config ~no_coalesce ~pmd_leaf_swap ~fault_spec ~fault_seed
    ~mem_limit_frames ~swap_cost_ns =
  {
    Svagc_core.Config.default with
    Svagc_core.Config.coalesce_runs = not no_coalesce;
    pmd_leaf_swap;
    fault_spec = parse_fault_spec fault_spec;
    fault_seed;
    mem_limit_frames;
    swap_cost_ns;
  }

(* Arm memory pressure on a freshly created machine, ahead of any JVM, so
   heap pages are LRU-tracked from the first mapping.  The Move_object
   prologue would also attach lazily via the config, but only once the
   first SwapVA collection runs — too late for baseline collectors. *)
let attach_reclaim machine ~mem_limit_frames ~swap_cost_ns =
  match mem_limit_frames with
  | Some limit_frames ->
    if not (Svagc_kernel.Fault_handler.attached machine) then
      ignore
        (Svagc_kernel.Fault_handler.attach machine ~limit_frames
           ?swap_cost_ns ())
  | None -> ()

let bench_cmd =
  let doc = "Run one workload under one or more collectors." in
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let collectors =
    Arg.(
      value
      & opt_all collector_conv
          [
            Svagc_experiments.Exp_common.Svagc;
            Svagc_experiments.Exp_common.Lisp2_memmove;
          ]
      & info [ "c"; "collector" ] ~docv:"COLLECTOR"
          ~doc:"svagc | memmove | parallelgc | shenandoah (repeatable).")
  in
  let heap_factor =
    Arg.(value & opt float 1.2 & info [ "heap-factor" ] ~doc:"Heap over minimum.")
  in
  let steps = Arg.(value & opt int 60 & info [ "steps" ] ~doc:"Mutator steps.") in
  let run workload_name collectors heap_factor steps no_coalesce pmd_leaf_swap
      fault_spec fault_seed mem_limit_frames swap_cost_ns =
    let workload =
      try Svagc_workloads.Spec.find workload_name
      with Not_found ->
        Printf.eprintf "unknown workload %S (see `svagc list`)\n" workload_name;
        exit 1
    in
    let config =
      svagc_config ~no_coalesce ~pmd_leaf_swap ~fault_spec ~fault_seed
        ~mem_limit_frames ~swap_cost_ns
    in
    Report.section (Printf.sprintf "%s @ %.1fx min heap" workload_name heap_factor);
    List.iter
      (fun kind ->
        let machine =
          Svagc_experiments.Exp_common.fresh_machine Svagc_vmem.Cost_model.xeon_6130
        in
        attach_reclaim machine ~mem_limit_frames ~swap_cost_ns;
        let r =
          Runner.run ~heap_factor ~steps ~machine
            ~collector_of:(Svagc_experiments.Exp_common.collector_of ~config kind)
            workload
        in
        Report.subsection (Svagc_experiments.Exp_common.collector_name kind);
        Report.kv "steps" (string_of_int r.Runner.steps);
        Report.kv "full GCs" (string_of_int r.Runner.summary.Svagc_gc.Gc_stats.cycles);
        Report.kv "app time" (Report.ns r.Runner.app_ns);
        Report.kv "GC time" (Report.ns r.Runner.gc_ns);
        Report.kv "avg pause"
          (Report.ns r.Runner.summary.Svagc_gc.Gc_stats.avg_pause_ns);
        Report.kv "max pause"
          (Report.ns r.Runner.summary.Svagc_gc.Gc_stats.max_pause_ns);
        Report.kv "throughput" (Printf.sprintf "%.3f steps/ms" r.Runner.throughput);
        match mem_limit_frames with
        | None -> ()
        | Some _ ->
          let perf = machine.Svagc_vmem.Machine.perf in
          Report.kv "major faults"
            (string_of_int perf.Svagc_vmem.Perf.major_faults);
          Report.kv "pages swapped out"
            (string_of_int perf.Svagc_vmem.Perf.pages_swapped_out);
          Report.kv "pages swapped in"
            (string_of_int perf.Svagc_vmem.Perf.pages_swapped_in))
      collectors
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run $ workload_arg $ collectors $ heap_factor $ steps
      $ no_coalesce_arg $ pmd_leaf_swap_arg $ fault_spec_arg $ fault_seed_arg
      $ mem_limit_arg $ swap_cost_arg)

let trace_cmd =
  let doc =
    "Run a workload (or experiment) with tracing enabled and write a Chrome \
     trace-event JSON file (open it in Perfetto or chrome://tracing)."
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:"Workload to trace (see `svagc list`; aliases like fft.small work).")
  in
  let exp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "e"; "exp" ] ~docv:"ID"
          ~doc:"Trace a whole registered experiment instead of a workload.")
  in
  let jvms_arg =
    Arg.(
      value & opt int 1
      & info [ "jvms" ] ~docv:"N"
          ~doc:"Co-running JVM instances (one trace track each).")
  in
  let steps = Arg.(value & opt int 40 & info [ "steps" ] ~doc:"Mutator steps.") in
  let heap_factor =
    Arg.(value & opt float 1.2 & info [ "heap-factor" ] ~doc:"Heap over minimum.")
  in
  let collector =
    Arg.(
      value
      & opt collector_conv Svagc_experiments.Exp_common.Svagc
      & info [ "c"; "collector" ] ~docv:"COLLECTOR"
          ~doc:"svagc | memmove | parallelgc | shenandoah.")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let capacity =
    Arg.(
      value & opt int 65536
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Ring-buffer capacity in events (oldest dropped beyond this).")
  in
  let ascii =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Also print an ASCII timeline.")
  in
  let run workload_name exp_id jvms steps heap_factor collector out capacity
      ascii no_coalesce pmd_leaf_swap fault_spec fault_seed mem_limit_frames
      swap_cost_ns =
    let module Tracer = Svagc_trace.Tracer in
    let module Machine = Svagc_vmem.Machine in
    if capacity <= 0 then begin
      Printf.eprintf "trace: --capacity must be positive (got %d)\n" capacity;
      exit 1
    end;
    let tracer = Tracer.start ~capacity () in
    (match (exp_id, workload_name) with
    | Some id, _ -> (
      match Registry.find id with
      | Some e -> e.Registry.run ~quick:true ()
      | None ->
        Printf.eprintf "unknown experiment %S (see `svagc list`)\n" id;
        exit 1)
    | None, None ->
      Printf.eprintf "trace: pass --workload NAME or --exp ID\n";
      exit 1
    | None, Some workload_name ->
      let workload =
        try Svagc_workloads.Spec.find workload_name
        with Not_found ->
          Printf.eprintf "unknown workload %S (see `svagc list`)\n" workload_name;
          exit 1
      in
      let machine =
        Svagc_experiments.Exp_common.fresh_machine Svagc_vmem.Cost_model.xeon_6130
      in
      Tracer.set_counter_source (fun () ->
          Svagc_vmem.Perf.to_assoc machine.Machine.perf);
      let config =
        svagc_config ~no_coalesce ~pmd_leaf_swap ~fault_spec ~fault_seed
          ~mem_limit_frames ~swap_cost_ns
      in
      let collector_of =
        Svagc_experiments.Exp_common.collector_of ~config collector
      in
      if jvms <= 1 then begin
        attach_reclaim machine ~mem_limit_frames ~swap_cost_ns;
        ignore
          (Runner.run ~heap_factor ~steps ~machine ~collector_of workload)
      end
      else begin
        let steppers = Array.make jvms (fun () -> ()) in
        let multi =
          Svagc_core.Multi_jvm.create ?mem_limit_frames ?swap_cost_ns machine
            ~instances:jvms
            ~spawn:(fun ~index machine ->
              let jvm =
                Runner.make_jvm ~heap_factor ~machine ~collector_of workload
              in
              let rng = Svagc_util.Rng.create ~seed:(1000 + index) in
              steppers.(index) <- workload.Workload.setup jvm rng;
              jvm)
        in
        for _ = 1 to steps do
          Array.iter (fun stepper -> stepper ()) steppers
        done;
        Svagc_core.Multi_jvm.release multi
      end);
    match Tracer.stop () with
    | None -> ()
    | Some t ->
      Svagc_trace.Chrome_trace.write_file t out;
      Printf.printf "wrote %s: %d events (%d dropped, capacity %d)\n" out
        (List.length (Svagc_trace.Tracer.events t))
        (Svagc_trace.Tracer.dropped t)
        (Svagc_trace.Tracer.capacity t);
      ignore tracer;
      if ascii then Svagc_metrics.Timeline.print t
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ workload_arg $ exp_arg $ jvms_arg $ steps $ heap_factor
      $ collector $ out $ capacity $ ascii $ no_coalesce_arg
      $ pmd_leaf_swap_arg $ fault_spec_arg $ fault_seed_arg $ mem_limit_arg
      $ swap_cost_arg)

let check_cmd =
  let doc =
    "Run the shadow invariant oracle: the qcheck-style differential harness \
     (per-page vs run-coalesced vs pmd-leaf SwapVA engines, rate-0 fault \
     bit-identity), the work-steal scheduler laws, a traced workload with \
     span-nesting checks, and oracle-enabled experiments. Exits non-zero on \
     any finding."
  in
  let cases =
    Arg.(
      value & opt int 40
      & info [ "cases" ] ~docv:"N" ~doc:"Differential schedules to replay.")
  in
  let seed =
    Arg.(
      value & opt int 0xC0FFEE
      & info [ "seed" ] ~docv:"SEED" ~doc:"Schedule-generator seed.")
  in
  let exps =
    Arg.(
      value
      & opt_all string [ "fig6"; "fig9"; "table1" ]
      & info [ "e"; "exp" ] ~docv:"ID"
          ~doc:
            "Experiment to run under the oracle (repeatable; defaults to \
             fig6, fig9 and table1; pass $(b,all) for every registered \
             experiment).")
  in
  let run cases seed exps quick =
    let module Check = Svagc_check.Check in
    let module Differential = Svagc_check.Differential in
    let failed = ref false in
    let stateless name (items, findings) =
      Report.kv name
        (Printf.sprintf "%d items, %d findings" items (List.length findings));
      List.iter
        (fun f ->
          failed := true;
          Format.printf "  %a@." Check.pp_finding f)
        findings
    in
    Report.section "svagc_check: differential harness";
    stateless "swap engines + rate-0"
      (Differential.run_suite ~cases ~seed ());
    Report.section "svagc_check: work-steal scheduler laws";
    let rng = Svagc_util.Rng.create ~seed in
    let random_costs n =
      Array.init n (fun _ -> 10.0 +. Svagc_util.Rng.float rng *. 990.0)
    in
    List.iter
      (fun (threads, costs, name) ->
        stateless name (Check.work_steal_oracle ~threads costs))
      [
        (1, [||], "zero items, single thread");
        (4, [||], "zero items, four threads");
        (1, random_costs 25, "single thread");
        (8, random_costs 3, "threads >> tasks");
        (16, [| 100.0 |], "one task, many threads");
        (3, random_costs 64, "three threads");
        (7, Array.make 49 12.5, "equal costs");
        (5, random_costs 200, "large random schedule");
      ];
    Report.section "svagc_check: oracle-enabled runs";
    Check.enable ~label:(String.concat "+" exps) ();
    (* A small traced workload exercises the span-nesting and trace
       monotonicity oracles alongside the machine/heap ones. *)
    let (), tracer =
      Svagc_trace.Tracer.with_tracer (fun () ->
          let workload = Svagc_workloads.Spec.find "fft.small" in
          let machine =
            Svagc_experiments.Exp_common.fresh_machine
              Svagc_vmem.Cost_model.xeon_6130
          in
          let collector_of =
            Svagc_experiments.Exp_common.collector_of
              ~config:Svagc_core.Config.default
              Svagc_experiments.Exp_common.Svagc
          in
          ignore (Runner.run ~heap_factor:1.2 ~steps:8 ~machine ~collector_of workload))
    in
    Svagc_check.Check.observe_tracer tracer;
    List.iter (run_experiment ~quick) exps;
    (match Svagc_check.Check.disable () with
    | Some rep -> if print_check_report rep then failed := true
    | None -> ());
    if !failed then exit 1;
    print_endline "svagc_check: all invariants hold"
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ cases $ seed $ exps $ quick_arg)

let fleet_cmd =
  let module Fleet = Svagc_fleet.Fleet in
  let doc =
    "Multi-tenant fleet simulation: heterogeneous tenants admitted against \
     an overcommitted budget, memory-cgroup soft/hard residency limits, \
     and a two-tier (local + far-memory) swap device. Reports per-tenant \
     p50/p99/p999 GC pauses and allocation stalls."
  in
  let d = Fleet.default in
  let tenants =
    Arg.(
      value & opt int d.Fleet.tenants
      & info [ "tenants" ] ~docv:"N" ~doc:"Main-cohort tenant count.")
  in
  let surge =
    Arg.(
      value & opt int d.Fleet.surge
      & info [ "surge" ] ~docv:"N"
          ~doc:
            "Late arrivals after the budget is spent; they queue (up to \
             $(b,--queue-limit)) or are rejected.")
  in
  let overcommit =
    Arg.(
      value & opt float d.Fleet.overcommit
      & info [ "overcommit" ] ~docv:"X"
          ~doc:"Committed-to-resident ratio the pool is sized for (>= 1).")
  in
  let steps =
    Arg.(
      value & opt int d.Fleet.steps
      & info [ "steps" ] ~doc:"Mutator steps per tenant.")
  in
  let seed =
    Arg.(value & opt int d.Fleet.seed & info [ "seed" ] ~doc:"Base RNG seed.")
  in
  let cgroup_soft =
    Arg.(
      value & opt float d.Fleet.cgroup_soft
      & info [ "cgroup-soft" ] ~docv:"FRAC"
          ~doc:
            "Per-tenant cgroup soft limit as a fraction of its heap pages; \
             kswapd prefers over-soft tenants' pages when evicting.")
  in
  let cgroup_hard =
    Arg.(
      value & opt float d.Fleet.cgroup_hard
      & info [ "cgroup-hard" ] ~docv:"FRAC"
          ~doc:
            "Per-tenant cgroup hard limit as a fraction of its heap pages \
             (also the tenant's admission commitment); enforced by direct \
             reclaim on every mapping.")
  in
  let far_tier_cost =
    Arg.(
      value & opt float d.Fleet.far_tier_cost
      & info [ "far-tier-cost" ] ~docv:"X"
          ~doc:"Far-memory tier latency as a multiple of the near tier's.")
  in
  let near_frac =
    Arg.(
      value & opt float d.Fleet.near_frac
      & info [ "near-frac" ] ~docv:"FRAC"
          ~doc:
            "Near-tier (local NVMe) slot count as a fraction of the pool; \
             beyond it, the coldest slots demote to the far tier.")
  in
  let queue_limit =
    Arg.(
      value & opt int d.Fleet.queue_limit
      & info [ "queue-limit" ] ~docv:"N" ~doc:"Admission wait-queue capacity.")
  in
  let collectors =
    Arg.(
      value
      & opt_all collector_conv
          [
            Svagc_experiments.Exp_common.Svagc;
            Svagc_experiments.Exp_common.Lisp2_memmove;
          ]
      & info [ "c"; "collector" ] ~docv:"COLLECTOR"
          ~doc:"svagc | memmove | parallelgc | shenandoah (repeatable).")
  in
  let run tenants surge overcommit steps seed cgroup_soft cgroup_hard
      far_tier_cost near_frac queue_limit collectors check =
    let config =
      {
        Fleet.tenants;
        surge;
        overcommit;
        steps;
        seed;
        cgroup_soft;
        cgroup_hard;
        far_tier_cost;
        near_frac;
        queue_limit;
      }
    in
    if check then Svagc_check.Check.enable ~label:"fleet" ();
    Report.section
      (Printf.sprintf "fleet: %d + %d tenants @ %gx overcommit" tenants surge
         overcommit);
    let results =
      List.map
        (fun kind ->
          Fleet.run
            ~collector_of:(Svagc_experiments.Exp_common.collector_of kind)
            ~label:(Svagc_experiments.Exp_common.collector_name kind)
            config)
        collectors
    in
    Svagc_experiments.Exp_fleet.print_results results;
    if check then
      match Svagc_check.Check.disable () with
      | Some rep -> if print_check_report rep then exit 1
      | None -> ()
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(
      const run $ tenants $ surge $ overcommit $ steps $ seed $ cgroup_soft
      $ cgroup_hard $ far_tier_cost $ near_frac $ queue_limit $ collectors
      $ check_flag)

let threshold_cmd =
  let doc = "Print the SwapVA/memmove break-even sweep (Fig. 10)." in
  Cmd.v (Cmd.info "threshold" ~doc)
    Term.(const (fun () -> Svagc_experiments.Exp_fig10.run ()) $ const ())

let main =
  let doc = "SVAGC: GC with scalable virtual-address swapping (simulation)" in
  Cmd.group (Cmd.info "svagc" ~version:"1.0.0" ~doc)
    [ list_cmd; exp_cmd; bench_cmd; fleet_cmd; threshold_cmd; trace_cmd; check_cmd ]

let () = exit (Cmd.eval main)
