(* Tests for the shadow invariant oracle (svagc_check) and the regressions
   it was built to catch:

   - Vec.pop / Vec.clear and Deque.steal_front used to retain popped or
     stolen elements in the backing array (a host-memory leak observable
     with weak pointers);
   - Machine.flush_tlb_all_cores used to count a single tlb_flush_local
     event for an all-core flush (undercounting by ncores - 1) and had no
     machine-wide counter at all;
   - Shootdown.flush_after_swap's Process_targeted branch inlined its own
     broadcast-cost formula and never counted the broadcast, so
     ipis_sent could not be reconciled against shootdown_broadcasts. *)

open Svagc_vmem
module Vec = Svagc_util.Vec
module Deque = Svagc_par.Deque
module Process = Svagc_kernel.Process
module Shootdown = Svagc_kernel.Shootdown
module Check = Svagc_check.Check
module Differential = Svagc_check.Differential
module Tracer = Svagc_trace.Tracer
module Runner = Svagc_workloads.Runner
module Exp_common = Svagc_experiments.Exp_common

let qtest ?(count = 25) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let check_no_findings what (items, findings) =
  Alcotest.(check bool) (what ^ ": items inspected") true (items > 0);
  match findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: %d finding(s), first: %a" what (List.length findings)
      Check.pp_finding f

let check_finds what (_, findings) =
  Alcotest.(check bool) (what ^ ": oracle reports a finding") true
    (findings <> [])

(* --- S1: containers must not retain popped / stolen elements --- *)

(* The probe lives in its own function so the local binding is dead by the
   time the caller forces a major collection; [Sys.opaque_identity] keeps
   the compiler from collapsing the allocation. *)
let[@inline never] vec_with_probe () =
  let v = Vec.create () in
  let probe = Sys.opaque_identity (ref 42) in
  Vec.push v probe;
  let w = Weak.create 1 in
  Weak.set w 0 (Some probe);
  (v, w)

let[@inline never] deque_with_probe () =
  let d = Deque.create () in
  let probe = Sys.opaque_identity (ref 42) in
  Deque.push d probe;
  (* A live tail element keeps the deque non-empty so the abandoned head
     slot is not reclaimed by the drain path. *)
  Deque.push d (ref 0);
  let w = Weak.create 1 in
  Weak.set w 0 (Some probe);
  (d, w)

let collected w =
  Gc.full_major ();
  Gc.full_major ();
  not (Weak.check w 0)

let test_vec_pop_releases () =
  let v, w = vec_with_probe () in
  ignore (Sys.opaque_identity (Vec.pop v));
  Alcotest.(check bool) "popped element is collectable" true (collected w);
  (* The vector itself is still live and usable. *)
  Vec.push v (ref 7);
  Alcotest.(check int) "vec still works" 1 (Vec.length v)

let test_vec_clear_releases () =
  let v, w = vec_with_probe () in
  Vec.clear v;
  Alcotest.(check bool) "cleared element is collectable" true (collected w);
  Alcotest.(check int) "empty after clear" 0 (Vec.length v)

let test_deque_steal_releases () =
  let d, w = deque_with_probe () in
  ignore (Sys.opaque_identity (Deque.steal_front d));
  Alcotest.(check bool) "stolen element is collectable" true (collected w);
  Alcotest.(check int) "tail element still there" 1 (Deque.length d)

let test_vec_create_capacity () =
  (* create ~capacity used to ignore its argument. *)
  let v = Vec.create ~capacity:64 () in
  for i = 0 to 63 do
    Vec.push v i
  done;
  Alcotest.(check int) "64 pushes" 64 (Vec.length v);
  Alcotest.(check int) "order kept" 63 (Vec.get v 63)

let test_vec_floats_sound () =
  (* The Obj.t backing must not specialize to a flat float array. *)
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1.5; 2.5; 3.5 ];
  Alcotest.(check (float 0.0)) "float get" 2.5 (Vec.get v 1);
  Alcotest.(check bool) "pop" true (Vec.pop v = Some 3.5);
  Alcotest.(check bool) "to_array" true (Vec.to_array v = [| 1.5; 2.5 |])

(* --- S2: flush_tlb_all_cores counts every core it flushes --- *)

let fresh_machine ?(ncores = 4) () =
  Machine.create ~ncores ~phys_mib:32 Cost_model.xeon_6130

let test_flush_all_counts_per_core () =
  let machine = fresh_machine ~ncores:4 () in
  ignore (Machine.flush_tlb_all_cores machine ~asid:1 ~from_core:0);
  Alcotest.(check int) "one local flush per core" 4
    machine.Machine.perf.Perf.tlb_flush_local;
  Alcotest.(check int) "one machine-wide flush" 1
    machine.Machine.perf.Perf.tlb_flush_all;
  Alcotest.(check int) "one broadcast" 1
    machine.Machine.perf.Perf.shootdown_broadcasts;
  Alcotest.(check int) "ipis to the 3 remote cores" 3
    machine.Machine.perf.Perf.ipis_sent;
  check_no_findings "counter laws after flush-all"
    (Check.counter_laws machine)

let test_flush_all_single_core () =
  let machine = fresh_machine ~ncores:1 () in
  ignore (Machine.flush_tlb_all_cores machine ~asid:1 ~from_core:0);
  Alcotest.(check int) "one core flushed" 1
    machine.Machine.perf.Perf.tlb_flush_local;
  Alcotest.(check int) "no ipis on a single core" 0
    machine.Machine.perf.Perf.ipis_sent;
  check_no_findings "counter laws, 1 core" (Check.counter_laws machine)

(* --- S3: Process_targeted routes through the shared costed helper --- *)

let test_targeted_counts_broadcast () =
  let machine = fresh_machine ~ncores:8 () in
  let cost =
    Shootdown.flush_after_swap machine ~asid:1 ~core:0
      Shootdown.Process_targeted
  in
  Alcotest.(check int) "broadcast counted" 1
    machine.Machine.perf.Perf.shootdown_broadcasts;
  Alcotest.(check int) "7 remote ipis" 7 machine.Machine.perf.Perf.ipis_sent;
  let c = machine.Machine.cost in
  let expected =
    c.Cost_model.tlb_flush_local_ns
    +. (0.6 *. (c.Cost_model.ipi_ns +. (6.0 *. c.Cost_model.ipi_ack_ns)))
  in
  Alcotest.(check (float 1e-9)) "60% of a full round trip" expected cost;
  check_no_findings "counter laws after targeted flush"
    (Check.counter_laws machine)

let test_policies_reconcile_with_eq2 () =
  (* Whatever mix of shootdown flavors ran, ipis_sent must reconcile
     against shootdown_broadcasts — the law Process_targeted used to
     break. *)
  let machine = fresh_machine ~ncores:6 () in
  List.iter
    (fun policy ->
      ignore (Shootdown.flush_after_swap machine ~asid:1 ~core:2 policy))
    Shootdown.
      [ Broadcast_per_call; Process_targeted; Local_pinned; Self_invalidate ];
  ignore (Machine.flush_tlb_all_cores machine ~asid:1 ~from_core:0);
  Alcotest.(check int) "3 broadcasts (2 ipi-free policies)" 3
    machine.Machine.perf.Perf.shootdown_broadcasts;
  Alcotest.(check int) "ipis = broadcasts * remotes" 15
    machine.Machine.perf.Perf.ipis_sent;
  check_no_findings "counter laws across all policies"
    (Check.counter_laws machine)

(* --- the oracles themselves must catch deliberate violations --- *)

let proc_with_arena machine =
  let proc = Process.create ~name:"oracle" machine in
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:Differential.arena_base ~pages:8;
  (proc, aspace)

let test_oracle_catches_stale_tlb () =
  let machine = fresh_machine () in
  let _proc, aspace = proc_with_arena machine in
  let asid = Address_space.asid aspace in
  let tables = [ (asid, Address_space.page_table aspace) ] in
  (* Wrong frame for a mapped page: incoherent with the page table. *)
  let vpn = Differential.arena_base / Addr.page_size in
  Tlb.insert (Machine.core machine 0).Machine.tlb ~asid ~vpn ~frame:424242;
  check_finds "stale frame" (Check.tlb_coherence machine ~tables);
  (* And a shootdown that left an entry behind. *)
  check_finds "unflushed entry" (Check.shootdown_flushed machine ~asid)

let test_oracle_accepts_coherent_tlb () =
  let machine = fresh_machine () in
  let _proc, aspace = proc_with_arena machine in
  let asid = Address_space.asid aspace in
  Address_space.touch aspace ~core:0 ~va:Differential.arena_base;
  let tables = [ (asid, Address_space.page_table aspace) ] in
  check_no_findings "coherent after touch"
    (Check.tlb_coherence machine ~tables)

let test_oracle_catches_counter_drift () =
  let machine = fresh_machine () in
  ignore (Machine.flush_tlb_all_cores machine ~asid:1 ~from_core:0);
  machine.Machine.perf.Perf.ipis_sent <-
    machine.Machine.perf.Perf.ipis_sent + 1;
  check_finds "Eq. 2 drift" (Check.counter_laws machine)

let test_oracle_catches_clock_regression () =
  Check.enable ~label:"clock-test" ();
  Check.observe_clock ~key:"t.app" 100.0;
  Check.observe_clock ~key:"t.app" 99.0;
  match Check.disable () with
  | None -> Alcotest.fail "shadow mode was enabled"
  | Some rep ->
    Alcotest.(check bool) "regression detected" true (rep.Check.findings <> [])

let test_shadow_disable_returns_none_when_off () =
  Alcotest.(check bool) "off by default" false (Check.enabled ());
  Alcotest.(check bool) "disable when off" true (Check.disable () = None)

(* --- S4: work-steal contract, including the edge cases --- *)

let test_work_steal_edges () =
  check_no_findings "zero items, one thread"
    (Check.work_steal_oracle ~threads:1 [||]);
  check_no_findings "zero items, eight threads"
    (Check.work_steal_oracle ~threads:8 [||]);
  check_no_findings "one task, sixteen threads"
    (Check.work_steal_oracle ~threads:16 [| 250.0 |]);
  check_no_findings "threads >> tasks"
    (Check.work_steal_oracle ~threads:12 [| 5.0; 7.0; 11.0 |]);
  check_no_findings "costly steals"
    (Check.work_steal_oracle ~threads:4 ~steal_ns:50.0 ~barrier_ns:10.0
       (Array.init 30 (fun i -> float_of_int (1 + (i mod 5)))))

let test_work_steal_qcheck =
  qtest "work-steal laws hold on random schedules"
    QCheck.(pair (int_range 1 9) (list_of_size Gen.(0 -- 40) (int_range 1 500)))
    (fun (threads, costs) ->
      let costs = Array.of_list (List.map float_of_int costs) in
      snd (Check.work_steal_oracle ~threads costs) = [])

(* --- the differential harness (qcheck-driven) --- *)

let test_differential_engines =
  qtest ~count:15 "swap engines agree on random schedules"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let case = Differential.gen_case ~arena_pages:512 ~seed () in
      match Differential.compare_case case with
      | _, [] -> true
      | _, f :: _ ->
        QCheck.Test.fail_reportf "seed %d: %a" seed Check.pp_finding f)

let test_differential_rate0 =
  qtest ~count:8 "rate-0 injector is bit-identical"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let case = Differential.gen_case ~arena_pages:512 ~seed () in
      match Differential.zero_fault_identity case with
      | _, [] -> true
      | _, f :: _ ->
        QCheck.Test.fail_reportf "seed %d: %a" seed Check.pp_finding f)

let test_differential_suite () =
  check_no_findings "differential suite"
    (Differential.run_suite ~cases:6 ~seed:0xBEEF ())

(* 1-domain vs 4-domain replays of the same GC + sweep workload must be
   bit-identical in clocks, counters, layouts and traces. *)
let test_par_identity () =
  check_no_findings "par identity"
    (Differential.par_identity ~domains:4 ~seed:0xD011 ())

(* --- end to end: a traced workload under shadow mode stays clean --- *)

let test_shadow_end_to_end () =
  Check.enable ~label:"e2e" ();
  let (), tracer =
    Tracer.with_tracer (fun () ->
        let workload = Svagc_workloads.Spec.find "fft.small" in
        let machine = Exp_common.fresh_machine Cost_model.xeon_6130 in
        let collector_of =
          Exp_common.collector_of ~config:Svagc_core.Config.default
            Exp_common.Svagc
        in
        ignore (Runner.run ~heap_factor:1.2 ~steps:6 ~machine ~collector_of
                  workload))
  in
  Check.observe_tracer tracer;
  match Check.disable () with
  | None -> Alcotest.fail "shadow mode was enabled"
  | Some rep ->
    (match rep.Check.findings with
    | [] -> ()
    | f :: _ ->
      Alcotest.failf "%d finding(s), first: %a"
        (List.length rep.Check.findings) Check.pp_finding f);
    Alcotest.(check bool) "observed the machine" true
      (rep.Check.machines_observed >= 1);
    Alcotest.(check bool) "observed shootdowns" true
      (rep.Check.shootdowns_observed > 0);
    Alcotest.(check bool) "ran oracles" true (rep.Check.oracles_run > 0)

let () =
  Alcotest.run "svagc_check"
    [
      ( "container-leaks",
        [
          Alcotest.test_case "vec pop releases slot" `Quick
            test_vec_pop_releases;
          Alcotest.test_case "vec clear releases slots" `Quick
            test_vec_clear_releases;
          Alcotest.test_case "deque steal releases slot" `Quick
            test_deque_steal_releases;
          Alcotest.test_case "vec create honors capacity" `Quick
            test_vec_create_capacity;
          Alcotest.test_case "vec is float-sound" `Quick test_vec_floats_sound;
        ] );
      ( "flush-counters",
        [
          Alcotest.test_case "flush-all counts per core" `Quick
            test_flush_all_counts_per_core;
          Alcotest.test_case "flush-all on one core" `Quick
            test_flush_all_single_core;
          Alcotest.test_case "targeted flush counts its broadcast" `Quick
            test_targeted_counts_broadcast;
          Alcotest.test_case "all policies reconcile with Eq. 2" `Quick
            test_policies_reconcile_with_eq2;
        ] );
      ( "oracle-sensitivity",
        [
          Alcotest.test_case "catches stale TLB entries" `Quick
            test_oracle_catches_stale_tlb;
          Alcotest.test_case "accepts coherent TLBs" `Quick
            test_oracle_accepts_coherent_tlb;
          Alcotest.test_case "catches counter drift" `Quick
            test_oracle_catches_counter_drift;
          Alcotest.test_case "catches clock regressions" `Quick
            test_oracle_catches_clock_regression;
          Alcotest.test_case "disable without enable" `Quick
            test_shadow_disable_returns_none_when_off;
        ] );
      ( "work-steal",
        [
          Alcotest.test_case "edge cases" `Quick test_work_steal_edges;
          test_work_steal_qcheck;
        ] );
      ( "differential",
        [
          test_differential_engines;
          test_differential_rate0;
          Alcotest.test_case "suite smoke" `Quick test_differential_suite;
          Alcotest.test_case "par identity (1 vs 4 domains)" `Quick
            test_par_identity;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "traced run under shadow mode" `Quick
            test_shadow_end_to_end ] );
    ]
