(* Tests for the kernel substrate: memmove, SwapVA (Algorithm 1),
   overlapping swaps (Algorithm 2), aggregation, PMD caching, shootdown
   policies and processes. *)

open Svagc_vmem
module Process = Svagc_kernel.Process
module Memmove = Svagc_kernel.Memmove
module Swapva = Svagc_kernel.Swapva
module Swap_overlap = Svagc_kernel.Swap_overlap
module Shootdown = Svagc_kernel.Shootdown
module Kernel_error = Svagc_fault.Kernel_error

(* Unwrap an overlap-swap result in tests that expect success. *)
let overlap_exn = function
  | Ok ns -> ns
  | Error e -> Alcotest.failf "Swap_overlap: %s" (Kernel_error.to_string e)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let fresh ?(ncores = 4) () =
  let machine = Machine.create ~ncores ~phys_mib:64 Cost_model.xeon_6130 in
  (machine, Process.create machine)

let base = 1 lsl 30

(* Map [pages] pages at [base] and fill each with a distinct byte. *)
let mapped_window proc ~pages =
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:base ~pages;
  for i = 0 to pages - 1 do
    Address_space.fill aspace ~va:(base + (i * Addr.page_size)) ~len:Addr.page_size
      (Char.chr (65 + (i mod 26)))
  done;
  aspace

let page_byte aspace i = Address_space.read_u8 aspace ~va:(base + (i * Addr.page_size))

(* --- Memmove --- *)

let test_memmove_disjoint () =
  let _, proc = fresh () in
  let aspace = mapped_window proc ~pages:4 in
  let cost = Memmove.move aspace ~src:base ~dst:(base + (2 * Addr.page_size)) ~len:4096 in
  Alcotest.(check bool) "positive cost" true (cost > 0.0);
  Alcotest.(check int) "copied" (Char.code 'A') (page_byte aspace 2)

let test_memmove_overlap_semantics () =
  let _, proc = fresh () in
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:base ~pages:2;
  Address_space.write_bytes aspace ~va:base ~src:(Bytes.of_string "abcdef");
  (* Overlapping forward copy: memmove semantics must preserve source. *)
  ignore (Memmove.move aspace ~src:base ~dst:(base + 2) ~len:6);
  Alcotest.(check string) "memmove overlap" "ababcdef"
    (Bytes.to_string (Address_space.read_bytes aspace ~va:base ~len:8))

let prop_memmove_matches_bytes_blit =
  qtest ~count:60 "memmove agrees with Bytes.blit on random ranges"
    QCheck.(triple (int_range 0 3000) (int_range 0 3000) (int_range 0 1000))
    (fun (src_off, dst_off, len) ->
      let _, proc = fresh () in
      let aspace = Process.aspace proc in
      Address_space.map_range aspace ~va:base ~pages:2;
      let model = Bytes.init 8192 (fun i -> Char.chr (i * 31 mod 256)) in
      Address_space.write_bytes aspace ~va:base ~src:model;
      ignore (Memmove.move aspace ~src:(base + src_off) ~dst:(base + dst_off) ~len);
      Bytes.blit model src_off model dst_off len;
      Bytes.equal model (Address_space.read_bytes aspace ~va:base ~len:8192))

let test_memmove_cost_scales () =
  let machine, _ = fresh () in
  let small = Memmove.cost_ns machine ~len:4096 in
  let large = Memmove.cost_ns machine ~len:(4096 * 100) in
  Alcotest.(check bool) "monotone" true (large > small *. 50.0)

let test_memmove_cold_slower () =
  let machine, _ = fresh () in
  let hot = Memmove.cost_ns machine ~len:65536 in
  let cold = Memmove.cost_ns ~cold:true machine ~len:65536 in
  Alcotest.(check bool) "cold copies run at DRAM tier" true (cold > hot)

(* --- Swapva: disjoint (Algorithm 1) --- *)

let opts_pinned =
  {
    Swapva.pmd_caching = true;
    flush = Shootdown.Local_pinned;
    allow_overlap = true;
    leaf_swap = false;
  }

let test_swap_exchanges_contents () =
  let _, proc = fresh () in
  let aspace = mapped_window proc ~pages:8 in
  let before0 = page_byte aspace 0 and before4 = page_byte aspace 4 in
  ignore
    (Swapva.swap proc ~opts:opts_pinned ~src:base
       ~dst:(base + (4 * Addr.page_size)) ~pages:4);
  Alcotest.(check int) "page 0 now holds old page 4" before4 (page_byte aspace 0);
  Alcotest.(check int) "page 4 now holds old page 0" before0 (page_byte aspace 4)

let test_swap_is_involution () =
  let _, proc = fresh () in
  let aspace = mapped_window proc ~pages:8 in
  let checksum () = Address_space.checksum aspace ~va:base ~len:(8 * Addr.page_size) in
  let c0 = checksum () in
  let dst = base + (4 * Addr.page_size) in
  ignore (Swapva.swap proc ~opts:opts_pinned ~src:base ~dst ~pages:4);
  let c1 = checksum () in
  ignore (Swapva.swap proc ~opts:opts_pinned ~src:base ~dst ~pages:4);
  Alcotest.(check bool) "swap changed the window" true (c0 <> c1);
  Alcotest.(check int64) "double swap restores" c0 (checksum ())

let test_swap_zero_copy () =
  let machine, proc = fresh () in
  let _ = mapped_window proc ~pages:8 in
  let before = machine.Machine.perf.Perf.bytes_copied in
  ignore
    (Swapva.swap proc ~opts:opts_pinned ~src:base
       ~dst:(base + (4 * Addr.page_size)) ~pages:4);
  Alcotest.(check int) "no bytes copied" before machine.Machine.perf.Perf.bytes_copied;
  Alcotest.(check int) "bytes remapped" (4 * Addr.page_size)
    machine.Machine.perf.Perf.bytes_remapped

let test_swap_validation () =
  let _, proc = fresh () in
  let _ = mapped_window proc ~pages:4 in
  let check_error name expected f =
    let got =
      try
        ignore (f ());
        None
      with Kernel_error.Fault_ns (e, spent) ->
        Alcotest.(check bool) (name ^ ": failed call still costs time") true
          (spent > 0.0);
        Some e
    in
    Alcotest.(check (option (testable Kernel_error.pp Kernel_error.equal)))
      name (Some expected) got
  in
  check_error "unaligned"
    (Kernel_error.EINVAL_unaligned { va = base + 1 })
    (fun () ->
      Swapva.swap proc ~opts:opts_pinned ~src:(base + 1)
        ~dst:(base + (2 * Addr.page_size)) ~pages:1);
  check_error "zero pages"
    (Kernel_error.EINVAL_bad_pages { pages = 0 })
    (fun () ->
      Swapva.swap proc ~opts:opts_pinned ~src:base
        ~dst:(base + (2 * Addr.page_size)) ~pages:0);
  check_error "identical" Kernel_error.EINVAL_identical (fun () ->
      Swapva.swap proc ~opts:opts_pinned ~src:base ~dst:base ~pages:1);
  check_error "unmapped"
    (Kernel_error.EFAULT_unmapped { va = base + (64 * Addr.page_size) })
    (fun () ->
      Swapva.swap proc ~opts:opts_pinned ~src:base
        ~dst:(base + (64 * Addr.page_size)) ~pages:4)

let test_swap_result_reifies_errors () =
  let _, proc = fresh () in
  let _ = mapped_window proc ~pages:4 in
  (match
     Swapva.swap_result proc ~opts:opts_pinned ~src:base ~dst:base ~pages:1
   with
  | Ok _ -> Alcotest.fail "identical ranges must be rejected"
  | Error (e, spent) ->
    Alcotest.(check bool) "typed EINVAL" true
      (Kernel_error.equal e Kernel_error.EINVAL_identical);
    Alcotest.(check bool) "spent ns positive" true (spent > 0.0));
  match
    Swapva.swap_result proc ~opts:opts_pinned ~src:base
      ~dst:(base + (2 * Addr.page_size)) ~pages:2
  with
  | Ok ns -> Alcotest.(check bool) "success cost" true (ns > 0.0)
  | Error (e, _) -> Alcotest.failf "unexpected %s" (Kernel_error.to_string e)

let test_swap_overlap_rejected_when_disallowed () =
  let _, proc = fresh () in
  let _ = mapped_window proc ~pages:8 in
  let opts = { opts_pinned with Swapva.allow_overlap = false } in
  Alcotest.(check bool) "overlap rejected" true
    (try
       ignore
         (Swapva.swap proc ~opts ~src:base ~dst:(base + (2 * Addr.page_size))
            ~pages:4);
       false
     with Kernel_error.Fault_ns (Kernel_error.EINVAL_overlap, _) -> true)

let test_swap_invalidates_tlbs () =
  let machine, proc = fresh () in
  let aspace = mapped_window proc ~pages:2 in
  (* Warm a remote core's TLB with the page, swap, then re-touch: the
     translation must have been refreshed (touch returns the new frame). *)
  Address_space.touch aspace ~core:3 ~va:base;
  let frame_before =
    match Address_space.translate aspace ~va:base with
    | Some (f, _) -> f
    | None -> Alcotest.fail "unmapped"
  in
  ignore
    (Swapva.swap proc
       ~opts:{ opts_pinned with Swapva.flush = Shootdown.Broadcast_per_call }
       ~src:base ~dst:(base + Addr.page_size) ~pages:1);
  let frame_after =
    match Address_space.translate aspace ~va:base with
    | Some (f, _) -> f
    | None -> Alcotest.fail "unmapped"
  in
  Alcotest.(check bool) "frame changed" true (frame_before <> frame_after);
  let st = Tlb.stats (Machine.core machine 3).Machine.tlb in
  let misses_before = st.Tlb.misses in
  Address_space.touch aspace ~core:3 ~va:base;
  Alcotest.(check int) "stale entry was flushed (miss on re-touch)"
    (misses_before + 1) (Tlb.stats (Machine.core machine 3).Machine.tlb).Tlb.misses

(* --- Aggregation / PMD caching costs --- *)

let build_requests proc ~n ~pages =
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:base ~pages:(2 * n * pages);
  List.init n (fun i ->
      let off = 2 * i * pages * Addr.page_size in
      { Swapva.src = base + off; dst = base + off + (pages * Addr.page_size); pages })

let test_aggregation_cheaper () =
  let _, proc = fresh () in
  let reqs = build_requests proc ~n:16 ~pages:4 in
  let separated = (Swapva.swap_separated proc ~opts:opts_pinned reqs).Swapva.ns in
  let aggregated = (Swapva.swap_aggregated proc ~opts:opts_pinned reqs).Swapva.ns in
  Alcotest.(check bool) "aggregated cheaper" true (aggregated < separated);
  (* The saving is (n-1) syscalls + (n-1) flushes. *)
  let cost = Cost_model.xeon_6130 in
  let expected =
    15.0 *. (cost.Cost_model.syscall_ns +. cost.Cost_model.tlb_flush_local_ns)
  in
  Alcotest.(check (float 1.0)) "saving structure" expected (separated -. aggregated)

let test_aggregated_empty_free () =
  let _, proc = fresh () in
  Alcotest.(check (float 1e-9)) "empty batch" 0.0
    (Swapva.swap_aggregated proc ~opts:opts_pinned []).Swapva.ns

let test_pmd_caching_cheaper () =
  let run ~pmd_caching =
    let _, proc = fresh () in
    let _ = mapped_window proc ~pages:128 in
    Swapva.swap proc
      ~opts:{ opts_pinned with Swapva.pmd_caching }
      ~src:base ~dst:(base + (64 * Addr.page_size)) ~pages:64
  in
  Alcotest.(check bool) "pmd caching saves walks" true
    (run ~pmd_caching:true < run ~pmd_caching:false)

let test_pmd_cache_hits_counted () =
  let machine, proc = fresh () in
  let _ = mapped_window proc ~pages:64 in
  ignore
    (Swapva.swap proc ~opts:opts_pinned ~src:base
       ~dst:(base + (32 * Addr.page_size)) ~pages:32);
  let perf = machine.Machine.perf in
  (* Both streams fall in one PMD region here: a single cold walk, then
     every getPTE is served by the cached leaf. *)
  Alcotest.(check int) "walks" 1 perf.Perf.pt_walks;
  Alcotest.(check int) "hits" 63 perf.Perf.pmd_cache_hits

(* --- Swap_overlap (Algorithm 2) --- *)

let test_overlap_rotation_simple () =
  let _, proc = fresh () in
  let aspace = mapped_window proc ~pages:3 in
  (* pages=2, delta=1: window [A,B,C] -> [B,C,A]. *)
  ignore
    (overlap_exn
       (Swap_overlap.swap proc ~pmd_caching:true ~per_page_flush:true ~src:base
          ~dst:(base + Addr.page_size) ~pages:2));
  Alcotest.(check (list int)) "rotated"
    [ Char.code 'B'; Char.code 'C'; Char.code 'A' ]
    [ page_byte aspace 0; page_byte aspace 1; page_byte aspace 2 ]

let prop_overlap_matches_rotation =
  qtest ~count:80 "Algorithm 2 = left rotation by delta"
    QCheck.(pair (int_range 1 24) (int_range 1 24))
    (fun (pages, delta) ->
      QCheck.assume (delta <= pages);
      let _, proc = fresh () in
      let total = pages + delta in
      let aspace = mapped_window proc ~pages:total in
      let before = Array.init total (fun i -> page_byte aspace i) in
      ignore
        (overlap_exn
           (Swap_overlap.swap proc ~pmd_caching:true ~per_page_flush:false
              ~src:base ~dst:(base + (delta * Addr.page_size)) ~pages));
      let after = Array.init total (fun i -> page_byte aspace i) in
      after = Swap_overlap.rotation_reference before ~delta)

let test_overlap_pte_moves_linear () =
  (* O(n + delta) PTE moves, not O(2n): count them via perf. *)
  let machine, proc = fresh () in
  let _ = mapped_window proc ~pages:20 in
  let before = machine.Machine.perf.Perf.ptes_swapped in
  ignore
    (overlap_exn
       (Swap_overlap.swap proc ~pmd_caching:true ~per_page_flush:false ~src:base
          ~dst:(base + (4 * Addr.page_size)) ~pages:16));
  Alcotest.(check int) "n + delta moves" 20
    (machine.Machine.perf.Perf.ptes_swapped - before)

let test_overlap_validation () =
  let _, proc = fresh () in
  let _ = mapped_window proc ~pages:8 in
  let geometry name result =
    match result with
    | Error (Kernel_error.EINVAL_geometry _) -> ()
    | Error e -> Alcotest.failf "%s: wrong error %s" name (Kernel_error.to_string e)
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  geometry "dst <= src"
    (Swap_overlap.swap proc ~pmd_caching:true ~per_page_flush:true
       ~src:(base + Addr.page_size) ~dst:base ~pages:2);
  geometry "no overlap"
    (Swap_overlap.swap proc ~pmd_caching:true ~per_page_flush:true ~src:base
       ~dst:(base + (6 * Addr.page_size)) ~pages:2);
  (match
     Swap_overlap.swap proc ~pmd_caching:true ~per_page_flush:true
       ~src:(base + 3) ~dst:(base + Addr.page_size + 3) ~pages:2
   with
  | Error (Kernel_error.EINVAL_unaligned { va }) ->
    Alcotest.(check int) "unaligned names the address" (base + 3) va
  | Error e -> Alcotest.failf "wrong error %s" (Kernel_error.to_string e)
  | Ok _ -> Alcotest.fail "unaligned accepted");
  match
    Swap_overlap.swap proc ~pmd_caching:true ~per_page_flush:false ~src:base
      ~dst:(base + (6 * Addr.page_size)) ~pages:8
  with
  | Error (Kernel_error.EFAULT_unmapped { va }) ->
    (* Window is 14 pages but only 8 are mapped: the first absent page is
       named, and nothing was rotated (checked by the callers' tests). *)
    Alcotest.(check int) "first absent page" (base + (8 * Addr.page_size)) va
  | Error e -> Alcotest.failf "wrong error %s" (Kernel_error.to_string e)
  | Ok _ -> Alcotest.fail "unmapped window accepted"

let test_swapva_dispatches_overlap () =
  let machine, proc = fresh () in
  let _ = mapped_window proc ~pages:12 in
  let before = machine.Machine.perf.Perf.ptes_swapped in
  (* 8 pages sliding down by 2: Algorithm 2 does 10 moves; Algorithm 1
     would have done 16. *)
  ignore
    (Swapva.swap proc ~opts:opts_pinned ~src:(base + (2 * Addr.page_size))
       ~dst:base ~pages:8);
  Alcotest.(check int) "overlap path used" 10
    (machine.Machine.perf.Perf.ptes_swapped - before)

let prop_swap_sequence_preserves_content_multiset =
  qtest ~count:40 "random swap sequences permute pages, never lose bytes"
    QCheck.(pair small_int (list_of_size Gen.(1 -- 12) (pair (int_range 0 15) (int_range 0 15))))
    (fun (seed, moves) ->
      ignore seed;
      let _, proc = fresh () in
      let aspace = mapped_window proc ~pages:16 in
      let page_sig i = page_byte aspace i in
      let before = List.sort compare (List.init 16 page_sig) in
      List.iter
        (fun (a, b) ->
          if a <> b then
            let src = base + (min a b * Addr.page_size) in
            let dst = base + (max a b * Addr.page_size) in
            ignore (Swapva.swap proc ~opts:opts_pinned ~src ~dst ~pages:1))
        moves;
      let after = List.sort compare (List.init 16 page_sig) in
      before = after)

let prop_aggregated_equals_separated_state =
  qtest ~count:30 "aggregated and separated swaps produce identical memory"
    QCheck.(int_range 1 8)
    (fun n ->
      let run aggregated =
        let _, proc = fresh () in
        let aspace = mapped_window proc ~pages:(4 * n) in
        let reqs =
          List.init n (fun i ->
              let off = i * 4 * Addr.page_size in
              { Swapva.src = base + off;
                dst = base + off + (2 * Addr.page_size);
                pages = 2 })
        in
        if aggregated then ignore (Swapva.swap_aggregated proc ~opts:opts_pinned reqs)
        else ignore (Swapva.swap_separated proc ~opts:opts_pinned reqs);
        Address_space.checksum aspace ~va:base ~len:(4 * n * Addr.page_size)
      in
      run true = run false)

(* --- Run-coalesced engine vs per-page reference --- *)

(* The run-coalesced engine must be observationally identical to the
   page-at-a-time reference: same memory, same perf-counter deltas and
   bit-identical simulated cost (the bulk charge replays the reference
   loop's float additions in order).  Only [leaf_runs] differs — the run
   engine counts the slices it resolves, the reference never does — so
   the comparison zeroes it. *)
let engine_outcome ~window_pages ~pmd_caching ~engine req =
  let machine, proc = fresh () in
  let aspace = mapped_window proc ~pages:window_pages in
  let before = Perf.copy machine.Machine.perf in
  let ns = engine proc ~pmd_caching req in
  let d = Perf.diff ~after:machine.Machine.perf ~before in
  d.Perf.leaf_runs <- 0;
  let csum =
    Address_space.checksum aspace ~va:base ~len:(window_pages * Addr.page_size)
  in
  (ns, Perf.to_assoc d, csum)

let prop_run_engine_equals_per_page =
  (* Offsets chosen so both ranges regularly straddle the 512-page PMD
     leaf boundaries at 512 and 1024. *)
  qtest ~count:30 "run-coalesced engine == per-page reference"
    QCheck.(
      quad (int_range 440 520) (int_range 960 1040) (int_range 1 150) bool)
    (fun (src_page, dst_page, pages, pmd_caching) ->
      QCheck.assume (src_page + pages <= dst_page);
      let window_pages = 1200 in
      QCheck.assume (dst_page + pages <= window_pages);
      let req =
        {
          Swapva.src = base + (src_page * Addr.page_size);
          dst = base + (dst_page * Addr.page_size);
          pages;
        }
      in
      let ref_ns, ref_perf, ref_csum =
        engine_outcome ~window_pages ~pmd_caching
          ~engine:Swapva.swap_disjoint_per_page req
      in
      let run_ns, run_perf, run_csum =
        engine_outcome ~window_pages ~pmd_caching
          ~engine:(fun proc ~pmd_caching req ->
            Swapva.swap_disjoint_run proc ~pmd_caching req)
          req
      in
      ref_ns = run_ns && ref_perf = run_perf && ref_csum = run_csum)

let test_run_engine_unmapped_no_mutation () =
  let machine, proc = fresh () in
  let aspace = mapped_window proc ~pages:8 in
  (* Punch a hole in the middle of the dst range. *)
  Address_space.unmap_range aspace ~va:(base + (6 * Addr.page_size)) ~pages:1;
  let src_csum () =
    Address_space.checksum aspace ~va:base ~len:(4 * Addr.page_size)
  in
  let c0 = src_csum () in
  let swapped0 = machine.Machine.perf.Perf.ptes_swapped in
  let err =
    try
      ignore
        (Swapva.swap_disjoint_run proc ~pmd_caching:true
           { Swapva.src = base; dst = base + (4 * Addr.page_size); pages = 4 });
      None
    with Kernel_error.Fault e -> Some e
  in
  Alcotest.(check (option (testable Kernel_error.pp Kernel_error.equal)))
    "typed EFAULT naming the hole"
    (Some (Kernel_error.EFAULT_unmapped { va = base + (6 * Addr.page_size) }))
    err;
  Alcotest.(check int64) "no partial mutation" c0 (src_csum ());
  Alcotest.(check int) "no PTE exchanged" swapped0
    machine.Machine.perf.Perf.ptes_swapped

(* --- pmd_leaf_swap (opt-in whole-leaf mode) --- *)

let leaf = Addr.pages_per_pmd

let big_window proc ~pages =
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:base ~pages;
  (* Filling whole pages is slow at this size: tag the first byte only. *)
  for i = 0 to pages - 1 do
    Address_space.write_u8 aspace ~va:(base + (i * Addr.page_size)) (i mod 251)
  done;
  aspace

let test_leaf_swap_whole_leaf () =
  let machine, proc = fresh ~ncores:4 () in
  let aspace = big_window proc ~pages:(3 * leaf) in
  let dst = base + (2 * leaf * Addr.page_size) in
  let ns =
    Swapva.swap_disjoint_run ~leaf_swap:true proc ~pmd_caching:true
      { Swapva.src = base; dst; pages = leaf }
  in
  let perf = machine.Machine.perf in
  Alcotest.(check int) "one leaf swap" 1 perf.Perf.pmd_leaf_swaps;
  Alcotest.(check int) "no walks" 0 perf.Perf.pt_walks;
  Alcotest.(check int) "no cache hits" 0 perf.Perf.pmd_cache_hits;
  Alcotest.(check (float 1e-9)) "O(1) cost"
    machine.Machine.cost.Cost_model.pmd_swap_ns ns;
  Alcotest.(check int) "dst now holds old src" 0
    (Address_space.read_u8 aspace ~va:dst);
  Alcotest.(check int) "src now holds old dst"
    ((2 * leaf) mod 251)
    (Address_space.read_u8 aspace ~va:base)

let test_leaf_swap_falls_back_when_unaligned () =
  let machine, proc = fresh () in
  let _ = big_window proc ~pages:(3 * leaf) in
  (* Same size, but src one page off a PMD boundary: must take the normal
     run-coalesced path with per-page costs. *)
  let ns_unaligned =
    Swapva.swap_disjoint_run ~leaf_swap:true proc ~pmd_caching:true
      {
        Swapva.src = base + Addr.page_size;
        dst = base + ((2 * leaf + 1) * Addr.page_size);
        pages = leaf - 1;
      }
  in
  Alcotest.(check int) "no leaf swaps" 0
    machine.Machine.perf.Perf.pmd_leaf_swaps;
  Alcotest.(check bool) "charged per page" true
    (ns_unaligned > machine.Machine.cost.Cost_model.pmd_swap_ns *. 10.0)

let test_leaf_swap_partial_tail () =
  (* 600 PMD-aligned pages: one whole leaf O(1)-swapped, the 88-page tail
     per-page.  Double-swapping restores the window. *)
  let machine, proc = fresh () in
  let aspace = big_window proc ~pages:(4 * leaf) in
  let csum () =
    Address_space.checksum aspace ~va:base ~len:(4 * leaf * Addr.page_size)
  in
  let c0 = csum () in
  let req =
    { Swapva.src = base; dst = base + (2 * leaf * Addr.page_size); pages = 600 }
  in
  ignore (Swapva.swap_disjoint_run ~leaf_swap:true proc ~pmd_caching:true req);
  let perf = machine.Machine.perf in
  Alcotest.(check int) "one leaf swap" 1 perf.Perf.pmd_leaf_swaps;
  Alcotest.(check int) "2 + 2*88 PTE exchanges" (2 + (2 * 88))
    perf.Perf.ptes_swapped;
  Alcotest.(check bool) "window changed" true (c0 <> csum ());
  ignore (Swapva.swap_disjoint_run ~leaf_swap:true proc ~pmd_caching:true req);
  Alcotest.(check int64) "double swap restores" c0 (csum ())

let test_leaf_swap_ignores_overlap_path () =
  (* With leaf_swap on, overlapping requests still dispatch to Algorithm 2
     unchanged. *)
  let machine, proc = fresh () in
  let _ = mapped_window proc ~pages:12 in
  let before = machine.Machine.perf.Perf.ptes_swapped in
  ignore
    (Swapva.swap proc
       ~opts:{ opts_pinned with Swapva.leaf_swap = true }
       ~src:(base + (2 * Addr.page_size)) ~dst:base ~pages:8);
  Alcotest.(check int) "overlap path used" 10
    (machine.Machine.perf.Perf.ptes_swapped - before);
  Alcotest.(check int) "no leaf swaps" 0
    machine.Machine.perf.Perf.pmd_leaf_swaps

(* --- Shootdown --- *)

let test_shootdown_cost_ordering () =
  let machine, _ = fresh ~ncores:16 () in
  let c_broadcast =
    Shootdown.flush_after_swap machine ~asid:1 ~core:0 Shootdown.Broadcast_per_call
  in
  let c_targeted =
    Shootdown.flush_after_swap machine ~asid:1 ~core:0 Shootdown.Process_targeted
  in
  let c_local =
    Shootdown.flush_after_swap machine ~asid:1 ~core:0 Shootdown.Local_pinned
  in
  Alcotest.(check bool) "broadcast > targeted > local" true
    (c_broadcast > c_targeted && c_targeted > c_local)

let test_self_invalidate_no_ipis () =
  let machine, _ = fresh ~ncores:16 () in
  let before = machine.Machine.perf.Perf.ipis_sent in
  let c_self =
    Shootdown.flush_after_swap machine ~asid:1 ~core:0 Shootdown.Self_invalidate
  in
  Alcotest.(check int) "no IPIs sent" before machine.Machine.perf.Perf.ipis_sent;
  let c_local =
    Shootdown.flush_after_swap machine ~asid:1 ~core:0 Shootdown.Local_pinned
  in
  Alcotest.(check bool) "epoch bump costs a little over a local flush" true
    (c_self > c_local && c_self < c_local +. 200.0);
  (* State is still correct: remote entries are invalidated. *)
  Tlb.insert (Machine.core machine 9).Machine.tlb ~asid:1 ~vpn:5 ~frame:5;
  ignore (Shootdown.flush_after_swap machine ~asid:1 ~core:0 Shootdown.Self_invalidate);
  Alcotest.(check (option int)) "remote entry gone" None
    (Tlb.lookup (Machine.core machine 9).Machine.tlb ~asid:1 ~vpn:5)

let test_shootdown_prologue () =
  let machine, _ = fresh ~ncores:8 () in
  Alcotest.(check (float 1e-9)) "no prologue for broadcast" 0.0
    (Shootdown.cycle_prologue machine ~asid:1 ~core:0 Shootdown.Broadcast_per_call);
  Alcotest.(check bool) "pinned prologue pays the broadcast" true
    (Shootdown.cycle_prologue machine ~asid:1 ~core:0 Shootdown.Local_pinned > 0.0)

(* --- Process --- *)

let test_process_pinning () =
  let _, proc = fresh () in
  Alcotest.(check bool) "not pinned" false (Process.is_pinned proc);
  let cost = Process.pin proc ~core:2 in
  Alcotest.(check bool) "pin cost" true (cost > 0.0);
  Alcotest.(check int) "on core 2" 2 (Process.current_core proc);
  Alcotest.(check bool) "migration rejected while pinned" true
    (try Process.set_current_core proc 1; false with Invalid_argument _ -> true);
  ignore (Process.unpin proc);
  Process.set_current_core proc 1;
  Alcotest.(check int) "migrated" 1 (Process.current_core proc)

let () =
  Alcotest.run "svagc_kernel"
    [
      ( "memmove",
        [
          Alcotest.test_case "disjoint copy" `Quick test_memmove_disjoint;
          Alcotest.test_case "overlap semantics" `Quick test_memmove_overlap_semantics;
          Alcotest.test_case "cost scales" `Quick test_memmove_cost_scales;
          Alcotest.test_case "cold tier" `Quick test_memmove_cold_slower;
          prop_memmove_matches_bytes_blit;
        ] );
      ( "swapva",
        [
          Alcotest.test_case "exchanges contents" `Quick test_swap_exchanges_contents;
          Alcotest.test_case "involution" `Quick test_swap_is_involution;
          Alcotest.test_case "zero copy" `Quick test_swap_zero_copy;
          Alcotest.test_case "validation" `Quick test_swap_validation;
          Alcotest.test_case "swap_result reifies errors" `Quick
            test_swap_result_reifies_errors;
          Alcotest.test_case "overlap opt-in" `Quick
            test_swap_overlap_rejected_when_disallowed;
          Alcotest.test_case "TLB invalidation" `Quick test_swap_invalidates_tlbs;
        ] );
      ( "aggregation+pmd",
        [
          Alcotest.test_case "aggregation cheaper" `Quick test_aggregation_cheaper;
          Alcotest.test_case "empty batch free" `Quick test_aggregated_empty_free;
          Alcotest.test_case "pmd caching cheaper" `Quick test_pmd_caching_cheaper;
          Alcotest.test_case "pmd hits counted" `Quick test_pmd_cache_hits_counted;
        ] );
      ( "swap_overlap",
        [
          Alcotest.test_case "simple rotation" `Quick test_overlap_rotation_simple;
          Alcotest.test_case "O(n+delta) moves" `Quick test_overlap_pte_moves_linear;
          Alcotest.test_case "validation" `Quick test_overlap_validation;
          Alcotest.test_case "dispatch from swapva" `Quick test_swapva_dispatches_overlap;
          prop_overlap_matches_rotation;
          prop_swap_sequence_preserves_content_multiset;
          prop_aggregated_equals_separated_state;
        ] );
      ( "run_engine",
        [
          prop_run_engine_equals_per_page;
          Alcotest.test_case "unmapped: exact error, no mutation" `Quick
            test_run_engine_unmapped_no_mutation;
        ] );
      ( "leaf_swap",
        [
          Alcotest.test_case "whole leaf O(1)" `Quick test_leaf_swap_whole_leaf;
          Alcotest.test_case "unaligned falls back" `Quick
            test_leaf_swap_falls_back_when_unaligned;
          Alcotest.test_case "partial tail + involution" `Quick
            test_leaf_swap_partial_tail;
          Alcotest.test_case "overlap path untouched" `Quick
            test_leaf_swap_ignores_overlap_path;
        ] );
      ( "shootdown",
        [
          Alcotest.test_case "cost ordering" `Quick test_shootdown_cost_ordering;
          Alcotest.test_case "self-invalidate" `Quick test_self_invalidate_no_ipis;
          Alcotest.test_case "prologue" `Quick test_shootdown_prologue;
        ] );
      ("process", [ Alcotest.test_case "pinning" `Quick test_process_pinning ]);
    ]
