(* Tests for svagc_trace: the ring buffer, the JSON codec, the recorder's
   span/instant semantics, and whole-trace properties (determinism across
   identical seeded runs, overflow safety) on real simulated workloads. *)

module Ring = Svagc_trace.Ring
module Json = Svagc_trace.Json
module Event = Svagc_trace.Event
module Tracer = Svagc_trace.Tracer
module Chrome = Svagc_trace.Chrome_trace
module Machine = Svagc_vmem.Machine
module Perf = Svagc_vmem.Perf
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload

let qtest ?(count = 30) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Ensure no tracer leaks between test cases. *)
let isolated f () =
  ignore (Tracer.stop ());
  Fun.protect ~finally:(fun () -> ignore (Tracer.stop ())) f

(* --- Ring --- *)

let test_ring_overflow_drops_oldest () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps newest window" [ 7; 8; 9; 10 ] (Ring.to_list r);
  Alcotest.(check int) "length" 4 (Ring.length r);
  Alcotest.(check int) "dropped" 6 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  Alcotest.(check int) "dropped reset" 0 (Ring.dropped r)

let prop_ring_window =
  qtest ~count:100 "ring keeps the newest min(cap, n) elements"
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_bound 60) int))
    (fun (cap, xs) ->
      let r = Ring.create ~capacity:cap in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let expected_len = min cap n in
      let expected =
        List.filteri (fun i _ -> i >= n - expected_len) xs
      in
      Ring.to_list r = expected
      && Ring.length r = expected_len
      && Ring.dropped r = max 0 (n - cap))

(* --- Json --- *)

let test_json_parse_basics () =
  let j = Json.of_string {|{"a": [1, 2.5, "x\n\"y\"", true, null], "b": {}}|} in
  (match Json.member "a" j with
  | Some (Json.List [ Json.Int 1; Json.Float f; Json.Str s; Json.Bool true; Json.Null ])
    ->
    Alcotest.(check (float 1e-9)) "float" 2.5 f;
    Alcotest.(check string) "escapes" "x\n\"y\"" s
  | _ -> Alcotest.fail "unexpected parse of field a");
  match Json.member "b" j with
  | Some (Json.Obj []) -> ()
  | _ -> Alcotest.fail "unexpected parse of field b"

let test_json_rejects_malformed () =
  let rejects s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed %S" s
  in
  List.iter rejects [ "{"; "[1,]"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "" ]

let json_gen =
  let open QCheck.Gen in
  let str_gen =
    string_size ~gen:(oneof [ char_range 'a' 'z'; return '"'; return '\\'; return '\n' ])
      (int_bound 12)
  in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Json.Str s) str_gen;
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map (fun xs -> Json.List xs) (list_size (int_bound 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_bound 4) (pair str_gen (self (depth - 1)))) );
          ])
    3

let prop_json_roundtrip =
  qtest ~count:200 "to_string |> of_string round-trips"
    (QCheck.make ~print:Json.to_string json_gen)
    (fun j -> Json.of_string (Json.to_string j) = j)

(* --- Tracer semantics --- *)

let test_disabled_noops () =
  isolated
    (fun () ->
      Alcotest.(check bool) "not tracing" false (Tracer.tracing ());
      (* All entry points must be safe no-ops with no tracer installed. *)
      Tracer.span_begin ~cat:"x" "a";
      Tracer.span_end ~dur_ns:5.0 ();
      Tracer.span_abort ();
      Tracer.instant "i";
      Tracer.set_now 42.0;
      Tracer.advance 1.0;
      Tracer.set_context ~pid:3 ~tid:4 ();
      Alcotest.(check (float 0.0)) "now is 0 when disabled" 0.0 (Tracer.now ()))
    ()

let test_span_perf_attribution () =
  isolated
    (fun () ->
      let t = Tracer.start ~capacity:16 () in
      let counter = ref 0 in
      Tracer.set_counter_source (fun () -> [ ("widgets", !counter) ]);
      Tracer.set_context ~pid:7 ~tid:2 ();
      Tracer.set_now 100.0;
      Tracer.span_begin ~cat:"gc" ~args:[ ("k", Event.Str "v") ] "work";
      counter := 5;
      Tracer.span_end ~dur_ns:50.0 ();
      ignore (Tracer.stop ());
      match Tracer.events t with
      | [ e ] ->
        Alcotest.(check string) "name" "work" e.Event.name;
        Alcotest.(check int) "pid" 7 e.Event.pid;
        Alcotest.(check int) "tid" 2 e.Event.tid;
        Alcotest.(check (float 1e-9)) "ts" 100.0 e.Event.ts;
        Alcotest.(check (float 1e-9)) "dur" 50.0 (Event.dur_ns e);
        (match List.assoc_opt "perf.widgets" e.Event.args with
        | Some (Event.Int 5) -> ()
        | _ -> Alcotest.fail "missing perf delta arg");
        (match List.assoc_opt "k" e.Event.args with
        | Some (Event.Str "v") -> ()
        | _ -> Alcotest.fail "missing begin arg")
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))
    ()

let test_nested_spans_and_cursor () =
  isolated
    (fun () ->
      let t = Tracer.start ~capacity:16 () in
      Tracer.span_begin "outer";
      Tracer.span_begin "inner";
      Tracer.span_end ~dur_ns:5.0 ();
      Alcotest.(check (float 1e-9)) "cursor after inner" 5.0 (Tracer.now ());
      Tracer.instant ~advance_ns:2.0 "tick";
      Alcotest.(check (float 1e-9)) "instant advanced" 7.0 (Tracer.now ());
      Tracer.span_end ~dur_ns:20.0 ();
      Alcotest.(check (float 1e-9)) "outer end snaps cursor" 20.0 (Tracer.now ());
      ignore (Tracer.stop ());
      let names = List.map (fun e -> e.Event.name) (Tracer.events t) in
      Alcotest.(check (list string)) "record order: completion order"
        [ "inner"; "tick"; "outer" ] names;
      let outer =
        List.find (fun e -> e.Event.name = "outer") (Tracer.events t)
      in
      let tick = List.find (fun e -> e.Event.name = "tick") (Tracer.events t) in
      Alcotest.(check (float 1e-9)) "outer began at 0" 0.0 outer.Event.ts;
      Alcotest.(check (float 1e-9)) "tick inside outer" 5.0 tick.Event.ts)
    ()

let test_unbalanced_and_abort () =
  isolated
    (fun () ->
      let t = Tracer.start ~capacity:16 () in
      Tracer.span_end ~dur_ns:5.0 ();
      (* no open span: ignored *)
      Tracer.span_begin "doomed";
      Tracer.span_abort ();
      Tracer.span_end ~dur_ns:1.0 ();
      (* stack empty again: ignored *)
      ignore (Tracer.stop ());
      Alcotest.(check int) "nothing recorded" 0 (List.length (Tracer.events t));
      Alcotest.(check int) "no open spans" 0 (Tracer.open_spans t))
    ()

(* --- Whole-trace properties on a real workload --- *)

let traced_run ?(capacity = 65536) ?(jvms = 1) () =
  let workload = Svagc_workloads.Spec.find "fft.small" in
  ignore (Tracer.start ~capacity () : Tracer.t);
  let machine = Machine.create ~phys_mib:256 Svagc_vmem.Cost_model.xeon_6130 in
  Tracer.set_counter_source (fun () -> Perf.to_assoc machine.Machine.perf);
  let collector_of = Svagc_core.Svagc.collector ~config:Svagc_core.Config.default in
  if jvms <= 1 then
    ignore (Runner.run ~steps:10 ~min_gcs:2 ~machine ~collector_of workload)
  else begin
    let steppers = Array.make jvms (fun () -> ()) in
    let multi =
      Svagc_core.Multi_jvm.create machine ~instances:jvms
        ~spawn:(fun ~index machine ->
          let jvm = Runner.make_jvm ~machine ~collector_of workload in
          let rng = Svagc_util.Rng.create ~seed:(1000 + index) in
          steppers.(index) <- workload.Workload.setup jvm rng;
          jvm)
    in
    (* Enough mutator steps that every instance triggers at least one GC. *)
    for _ = 1 to 60 do
      Array.iter (fun stepper -> stepper ()) steppers
    done;
    Svagc_core.Multi_jvm.release multi
  end;
  match Tracer.stop () with
  | Some t -> t
  | None -> Alcotest.fail "tracer vanished mid-run"

let test_trace_deterministic () =
  isolated
    (fun () ->
      let a = Chrome.to_string (traced_run ()) in
      let b = Chrome.to_string (traced_run ()) in
      Alcotest.(check bool) "byte-identical traces for identical seeds" true
        (String.equal a b))
    ()

let test_trace_contains_phases_and_instants () =
  isolated
    (fun () ->
      let t = traced_run () in
      let names = List.map (fun e -> e.Event.name) (Tracer.events t) in
      List.iter
        (fun phase ->
          Alcotest.(check bool) (phase ^ " span present") true
            (List.mem phase names))
        [ "svagc"; "mark"; "forward"; "adjust"; "compact" ];
      Alcotest.(check bool) "kernel instants present" true
        (List.exists (fun n -> n = "memmove" || n = "swapva" || n = "swapva.aggregated") names);
      Alcotest.(check bool) "per-core ipi instants present" true
        (List.mem "ipi" names);
      let ipi_tids =
        List.filter_map
          (fun e -> if e.Event.name = "ipi" then Some e.Event.tid else None)
          (Tracer.events t)
        |> List.sort_uniq compare
      in
      Alcotest.(check bool) "ipis span multiple cores" true
        (List.length ipi_tids > 1))
    ()

let test_multi_jvm_tracks () =
  isolated
    (fun () ->
      let t = traced_run ~jvms:2 () in
      let pids =
        List.map (fun e -> e.Event.pid) (Tracer.events t) |> List.sort_uniq compare
      in
      Alcotest.(check (list int)) "one track per instance" [ 0; 1 ] pids;
      Alcotest.(check bool) "process names registered" true
        (List.length (Tracer.process_names t) >= 2))
    ()

let test_overflow_keeps_export_valid () =
  isolated
    (fun () ->
      let t = traced_run ~capacity:128 () in
      Alcotest.(check bool) "overflowed" true (Tracer.dropped t > 0);
      Alcotest.(check int) "bounded" 128 (List.length (Tracer.events t));
      let json = Json.of_string (Chrome.to_string t) in
      let events =
        match Json.member "traceEvents" json with
        | Some l -> Json.to_list_exn l
        | None -> Alcotest.fail "no traceEvents"
      in
      (* metadata + at most capacity events, all well-formed objects *)
      Alcotest.(check bool) "bounded export" true (List.length events <= 128 + 8);
      List.iter
        (fun e ->
          match Json.member "ph" e with
          | Some (Json.Str ("X" | "i" | "M")) -> ()
          | _ -> Alcotest.fail "bad event phase")
        events;
      match Json.member "otherData" json with
      | Some other -> (
        match Json.member "droppedEvents" other with
        | Some (Json.Int d) ->
          Alcotest.(check bool) "dropped recorded in export" true (d > 0)
        | _ -> Alcotest.fail "droppedEvents missing")
      | None -> Alcotest.fail "otherData missing")
    ()

let test_chrome_sorted_by_ts () =
  isolated
    (fun () ->
      let t = traced_run () in
      let json = Json.of_string (Chrome.to_string t) in
      let events =
        Json.member "traceEvents" json |> Option.get |> Json.to_list_exn
      in
      let tss =
        List.filter_map
          (fun e ->
            match (Json.member "ph" e, Json.member "ts" e, Json.member "pid" e) with
            | Some (Json.Str "M"), _, _ -> None
            | _, Some ts, Some (Json.Int pid) ->
              Some (pid, Json.number_exn ts)
            | _ -> None)
          events
      in
      let ok = ref true in
      List.fold_left
        (fun prev (_pid, ts) ->
          (match prev with Some p when ts < p -> ok := false | _ -> ());
          Some ts)
        None tss
      |> ignore;
      Alcotest.(check bool) "timestamps monotone in export" true !ok)
    ()

let () =
  Alcotest.run "svagc_trace"
    [
      ( "ring",
        [
          Alcotest.test_case "overflow drops oldest" `Quick
            test_ring_overflow_drops_oldest;
          prop_ring_window;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
          prop_json_roundtrip;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled no-ops" `Quick test_disabled_noops;
          Alcotest.test_case "span perf attribution" `Quick
            test_span_perf_attribution;
          Alcotest.test_case "nested spans, cursor" `Quick
            test_nested_spans_and_cursor;
          Alcotest.test_case "unbalanced/abort" `Quick test_unbalanced_and_abort;
        ] );
      ( "whole-trace",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_trace_deterministic;
          Alcotest.test_case "phases and instants" `Quick
            test_trace_contains_phases_and_instants;
          Alcotest.test_case "multi-jvm tracks" `Quick test_multi_jvm_tracks;
          Alcotest.test_case "overflow keeps export valid" `Quick
            test_overflow_keeps_export_valid;
          Alcotest.test_case "export sorted" `Quick test_chrome_sorted_by_ts;
        ] );
    ]
