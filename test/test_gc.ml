(* Tests for the GC engine: the four LISP2 phases, the full cycle, and the
   baseline collectors. *)

open Svagc_vmem
open Svagc_heap
module Mark = Svagc_gc.Mark
module Forward = Svagc_gc.Forward
module Adjust = Svagc_gc.Adjust
module Compact = Svagc_gc.Compact
module Lisp2 = Svagc_gc.Lisp2
module Gc_stats = Svagc_gc.Gc_stats
module Gc_intf = Svagc_gc.Gc_intf

let qtest ?(count = 30) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Mark --- *)

let test_mark_reachability () =
  let heap = Helpers.heap () in
  let p = Helpers.populate heap in
  let t = Mark.run heap ~threads:4 in
  Alcotest.(check bool) "positive time" true (t > 0.0);
  List.iter
    (fun o -> Alcotest.(check bool) "rooted marked" true o.Obj_model.marked)
    p.Helpers.rooted;
  List.iter
    (fun o -> Alcotest.(check bool) "garbage unmarked" false o.Obj_model.marked)
    p.Helpers.dropped

let test_mark_follows_refs () =
  let heap = Helpers.heap () in
  let a = Heap.alloc heap ~size:64 ~n_refs:1 ~cls:0 in
  let b = Heap.alloc heap ~size:64 ~n_refs:1 ~cls:0 in
  let c = Heap.alloc heap ~size:64 ~n_refs:1 ~cls:0 in
  Heap.set_ref heap a ~slot:0 (Some b);
  Heap.set_ref heap b ~slot:0 (Some c);
  Heap.add_root heap a;
  ignore (Mark.run heap ~threads:1);
  Alcotest.(check bool) "transitively reachable" true
    (a.Obj_model.marked && b.Obj_model.marked && c.Obj_model.marked)

let test_mark_handles_cycles () =
  let heap = Helpers.heap () in
  let a = Heap.alloc heap ~size:64 ~n_refs:1 ~cls:0 in
  let b = Heap.alloc heap ~size:64 ~n_refs:1 ~cls:0 in
  Heap.set_ref heap a ~slot:0 (Some b);
  Heap.set_ref heap b ~slot:0 (Some a);
  Heap.add_root heap a;
  ignore (Mark.run heap ~threads:1);
  Alcotest.(check bool) "cycle marked once, no hang" true
    (a.Obj_model.marked && b.Obj_model.marked);
  Alcotest.(check int) "live set" 2 (List.length (Mark.live_objects heap))

let test_mark_empty_roots () =
  let heap = Helpers.heap () in
  ignore (Heap.alloc heap ~size:64 ~n_refs:0 ~cls:0);
  ignore (Mark.run heap ~threads:2);
  Alcotest.(check int) "nothing live" 0 (List.length (Mark.live_objects heap))

(* --- Forward --- *)

let forward_fixture () =
  let heap = Helpers.heap () in
  let p = Helpers.populate heap in
  ignore (Mark.run heap ~threads:2);
  (heap, p, Forward.run heap ~threads:2)

let test_forward_slides_down () =
  let heap, _, fwd = forward_fixture () in
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      a.Obj_model.forward < b.Obj_model.forward && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "forwarding addresses ascend" true (ascending fwd.Forward.live);
  List.iter
    (fun o ->
      Alcotest.(check bool) "never moves up" true
        (o.Obj_model.forward <= o.Obj_model.addr))
    fwd.Forward.live;
  Alcotest.(check bool) "new top below old top" true
    (fwd.Forward.new_top <= Heap.top heap)

let test_forward_aligns_large () =
  let _, _, fwd = forward_fixture () in
  List.iter
    (fun o ->
      if Obj_model.is_large o ~threshold_pages:10 then
        Alcotest.(check bool) "large destination aligned" true
          (Addr.is_page_aligned o.Obj_model.forward))
    fwd.Forward.live

let test_forward_no_dest_overlap () =
  let _, _, fwd = forward_fixture () in
  let rec disjoint = function
    | a :: (b :: _ as rest) ->
      a.Obj_model.forward + a.Obj_model.size <= b.Obj_model.forward && disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "destinations disjoint" true (disjoint fwd.Forward.live)

let test_forward_waste_bounded () =
  let _, _, fwd = forward_fixture () in
  let live_bytes =
    List.fold_left (fun acc o -> acc + o.Obj_model.size) 0 fwd.Forward.live
  in
  Alcotest.(check bool) "alignment waste below 5% of live set" true
    (float_of_int fwd.Forward.waste_bytes < 0.05 *. float_of_int live_bytes)

(* --- Adjust --- *)

let test_adjust_rewrites_refs () =
  let heap = Helpers.heap () in
  let a = Heap.alloc heap ~size:4096 ~n_refs:1 ~cls:0 in
  ignore (Heap.alloc heap ~size:8192 ~n_refs:0 ~cls:0);
  (* dead filler *)
  let b = Heap.alloc heap ~size:4096 ~n_refs:0 ~cls:0 in
  Heap.set_ref heap a ~slot:0 (Some b);
  Heap.add_root heap a;
  ignore (Mark.run heap ~threads:1);
  let fwd = Forward.run heap ~threads:1 in
  ignore (Adjust.run heap ~threads:1 ~live:fwd.Forward.live);
  Alcotest.(check int) "ref points at b's forwarding address"
    b.Obj_model.forward a.Obj_model.refs.(0)

(* --- Compact (memmove) --- *)

let run_lisp2 ?(threads = 4) heap =
  Lisp2.collect (Lisp2.config ~threads ()) heap

let test_compact_preserves_contents () =
  let heap = Helpers.heap () in
  let p = Helpers.populate heap in
  let tagged = Helpers.checksums heap p.Helpers.rooted in
  let cycle = run_lisp2 heap in
  Helpers.assert_checksums heap tagged;
  Helpers.assert_live_set heap p.Helpers.rooted;
  Alcotest.(check int) "only the rooted chain survives"
    (List.length p.Helpers.rooted) cycle.Gc_stats.live_objects

let test_compact_reclaims () =
  let heap = Helpers.heap () in
  let p = Helpers.populate heap in
  let used_before = Heap.used_bytes heap in
  let cycle = run_lisp2 heap in
  Alcotest.(check bool) "top dropped" true (Heap.used_bytes heap < used_before);
  Alcotest.(check int) "reclaimed accounted"
    (used_before - Heap.used_bytes heap)
    cycle.Gc_stats.reclaimed_bytes;
  ignore p

let test_second_gc_moves_nothing () =
  let heap = Helpers.heap () in
  ignore (Helpers.populate heap);
  ignore (run_lisp2 heap);
  let c2 = run_lisp2 heap in
  Alcotest.(check int) "idempotent layout" 0 c2.Gc_stats.moved_objects

let test_compact_updates_index_and_marks () =
  let heap = Helpers.heap () in
  let p = Helpers.populate heap in
  ignore (run_lisp2 heap);
  List.iter
    (fun o ->
      Alcotest.(check bool) "marks cleared" false o.Obj_model.marked)
    p.Helpers.rooted;
  (* Dereferencing through the index after the move must still work. *)
  List.iter
    (fun o ->
      if o.Obj_model.refs.(0) <> 0 then
        match Heap.deref heap o ~slot:0 with
        | Some _ -> ()
        | None -> Alcotest.fail "link lost")
    p.Helpers.rooted

let test_allocation_after_gc () =
  let heap = Helpers.heap () in
  ignore (Helpers.populate heap);
  ignore (run_lisp2 heap);
  let o = Heap.alloc heap ~size:(50 * 1024) ~n_refs:0 ~cls:0 in
  Alcotest.(check bool) "fresh large object aligned" true
    (Addr.is_page_aligned o.Obj_model.addr);
  Alcotest.(check bool) "allocated above survivors" true
    (o.Obj_model.addr >= Heap.base heap)

let prop_gc_preserves_all_live_checksums =
  qtest ~count:15 "full GC preserves every live object's bytes (random seeds)"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let heap = Helpers.heap () in
      let p = Helpers.populate ~seed heap in
      let tagged = Helpers.checksums heap p.Helpers.rooted in
      ignore (run_lisp2 heap);
      List.for_all
        (fun (o, c) ->
          Heap.checksum_object heap o = c && Heap.header_matches heap o)
        tagged)

(* --- Phase accounting --- *)

let test_cycle_stats_consistent () =
  let heap = Helpers.heap () in
  ignore (Helpers.populate heap);
  let c = run_lisp2 heap in
  Alcotest.(check bool) "all phases positive" true
    (c.Gc_stats.mark_ns > 0.0 && c.Gc_stats.forward_ns > 0.0
    && c.Gc_stats.adjust_ns > 0.0 && c.Gc_stats.compact_ns > 0.0);
  Alcotest.(check (float 1e-6)) "pause = sum of phases"
    (c.Gc_stats.mark_ns +. c.Gc_stats.forward_ns +. c.Gc_stats.adjust_ns
    +. c.Gc_stats.compact_ns)
    (Gc_stats.pause_ns c);
  Alcotest.(check bool) "bytes copied recorded" true (c.Gc_stats.bytes_copied > 0)

let test_more_threads_faster () =
  let pause threads =
    let heap = Helpers.heap () in
    ignore (Helpers.populate ~n:300 heap);
    Gc_stats.pause_ns (run_lisp2 ~threads heap)
  in
  Alcotest.(check bool) "4 threads beat 1" true (pause 4 < pause 1)

let test_summarize () =
  let heap = Helpers.heap () in
  ignore (Helpers.populate heap);
  let c1 = run_lisp2 heap in
  let c2 = run_lisp2 heap in
  let s = Gc_stats.summarize [ c1; c2 ] in
  Alcotest.(check int) "cycles" 2 s.Gc_stats.cycles;
  Alcotest.(check (float 1e-6)) "total"
    (Gc_stats.pause_ns c1 +. Gc_stats.pause_ns c2)
    s.Gc_stats.total_pause_ns;
  Alcotest.(check (float 1e-6)) "max"
    (Float.max (Gc_stats.pause_ns c1) (Gc_stats.pause_ns c2))
    s.Gc_stats.max_pause_ns

let test_summarize_zero_cycles () =
  let s = Gc_stats.summarize [] in
  Alcotest.(check int) "cycles" 0 s.Gc_stats.cycles;
  Alcotest.(check (float 0.0)) "total" 0.0 s.Gc_stats.total_pause_ns;
  Alcotest.(check (float 0.0)) "max" 0.0 s.Gc_stats.max_pause_ns;
  (* avg over zero cycles must be a well-defined 0, not a NaN *)
  Alcotest.(check (float 0.0)) "avg" 0.0 s.Gc_stats.avg_pause_ns;
  Alcotest.(check int) "copied" 0 s.Gc_stats.total_bytes_copied;
  Alcotest.(check int) "remapped" 0 s.Gc_stats.total_bytes_remapped

let test_summarize_single_cycle () =
  let heap = Helpers.heap () in
  ignore (Helpers.populate heap);
  let c = run_lisp2 heap in
  let s = Gc_stats.summarize [ c ] in
  Alcotest.(check int) "cycles" 1 s.Gc_stats.cycles;
  let pause = Gc_stats.pause_ns c in
  Alcotest.(check (float 1e-6)) "total = the pause" pause s.Gc_stats.total_pause_ns;
  Alcotest.(check (float 1e-6)) "max = the pause" pause s.Gc_stats.max_pause_ns;
  Alcotest.(check (float 1e-6)) "avg = the pause" pause s.Gc_stats.avg_pause_ns;
  Alcotest.(check (float 1e-6)) "compact split"
    c.Gc_stats.compact_ns s.Gc_stats.total_compact_ns;
  Alcotest.(check (float 1e-6)) "other split"
    (Gc_stats.non_compact_ns c) s.Gc_stats.total_other_ns;
  Alcotest.(check int) "copied" c.Gc_stats.bytes_copied s.Gc_stats.total_bytes_copied;
  Alcotest.(check int) "remapped"
    c.Gc_stats.bytes_remapped s.Gc_stats.total_bytes_remapped

(* --- Baselines --- *)

let test_epsilon_noop () =
  let heap = Helpers.heap () in
  let p = Helpers.populate heap in
  let collector = Svagc_gc.Epsilon.collector heap in
  let c = Gc_intf.collect collector in
  Alcotest.(check (float 1e-9)) "no pause" 0.0 (Gc_stats.pause_ns c);
  Alcotest.(check int) "nothing reclaimed"
    (List.length p.Helpers.rooted + List.length p.Helpers.dropped)
    (Heap.object_count heap)

let test_shenandoah_concurrent_mark () =
  let heap = Helpers.heap () in
  ignore (Helpers.populate heap);
  let collector =
    Svagc_gc.Shenandoah.collector ~threads:4 ~concurrent_mark_fraction:0.85 heap
  in
  let c = Gc_intf.collect collector in
  Alcotest.(check bool) "most marking off-pause" true
    (c.Gc_stats.concurrent_ns > c.Gc_stats.mark_ns)

let test_shenandoah_copy_single_threaded () =
  (* Same heap population: Shenandoah's compact phase must be slower than
     ParallelGC's because it runs at one thread. *)
  let compact_of collector_of =
    let heap = Helpers.heap () in
    ignore (Helpers.populate ~n:200 heap);
    (Gc_intf.collect (collector_of heap)).Gc_stats.compact_ns
  in
  let shen = compact_of (Svagc_gc.Shenandoah.collector ~threads:4) in
  let par = compact_of (Svagc_gc.Parallel_gc.collector ~threads:4) in
  Alcotest.(check bool) "shenandoah copy slower" true (shen > par *. 1.5)

let test_collector_history () =
  let heap = Helpers.heap () in
  ignore (Helpers.populate heap);
  let collector = Svagc_gc.Parallel_gc.collector heap in
  ignore (Gc_intf.collect collector);
  ignore (Gc_intf.collect collector);
  Alcotest.(check int) "history" 2 (List.length (Gc_intf.cycles collector));
  Gc_intf.reset_history collector;
  Alcotest.(check int) "reset" 0 (List.length (Gc_intf.cycles collector))

let test_lisp2_config_validation () =
  Alcotest.(check bool) "bad threads rejected" true
    (try ignore (Lisp2.config ~threads:0 ()); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad fraction rejected" true
    (try ignore (Lisp2.config ~concurrent_mark_fraction:1.5 ()); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "svagc_gc"
    [
      ( "mark",
        [
          Alcotest.test_case "reachability" `Quick test_mark_reachability;
          Alcotest.test_case "follows refs" `Quick test_mark_follows_refs;
          Alcotest.test_case "cycles" `Quick test_mark_handles_cycles;
          Alcotest.test_case "empty roots" `Quick test_mark_empty_roots;
        ] );
      ( "forward",
        [
          Alcotest.test_case "slides down" `Quick test_forward_slides_down;
          Alcotest.test_case "aligns large" `Quick test_forward_aligns_large;
          Alcotest.test_case "destinations disjoint" `Quick test_forward_no_dest_overlap;
          Alcotest.test_case "waste bounded" `Quick test_forward_waste_bounded;
        ] );
      ("adjust", [ Alcotest.test_case "rewrites refs" `Quick test_adjust_rewrites_refs ]);
      ( "compact",
        [
          Alcotest.test_case "preserves contents" `Quick test_compact_preserves_contents;
          Alcotest.test_case "reclaims" `Quick test_compact_reclaims;
          Alcotest.test_case "idempotent" `Quick test_second_gc_moves_nothing;
          Alcotest.test_case "index and marks" `Quick test_compact_updates_index_and_marks;
          Alcotest.test_case "allocation after GC" `Quick test_allocation_after_gc;
          prop_gc_preserves_all_live_checksums;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "cycle stats" `Quick test_cycle_stats_consistent;
          Alcotest.test_case "threads speed up phases" `Quick test_more_threads_faster;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "summarize zero cycles" `Quick
            test_summarize_zero_cycles;
          Alcotest.test_case "summarize single cycle" `Quick
            test_summarize_single_cycle;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "epsilon noop" `Quick test_epsilon_noop;
          Alcotest.test_case "shenandoah concurrent mark" `Quick
            test_shenandoah_concurrent_mark;
          Alcotest.test_case "shenandoah 1-thread copy" `Quick
            test_shenandoah_copy_single_threaded;
          Alcotest.test_case "history" `Quick test_collector_history;
          Alcotest.test_case "config validation" `Quick test_lisp2_config_validation;
        ] );
    ]
