(* Integration tests over the experiment harness: each figure/table
   reproduction must exhibit the paper's qualitative shape. *)

module Exp_common = Svagc_experiments.Exp_common
module Fig01 = Svagc_experiments.Exp_fig01
module Fig06 = Svagc_experiments.Exp_fig06
module Fig08 = Svagc_experiments.Exp_fig08
module Fig09 = Svagc_experiments.Exp_fig09
module Fig10 = Svagc_experiments.Exp_fig10
module Fig11 = Svagc_experiments.Exp_fig11
module Fig15 = Svagc_experiments.Exp_fig15
module Registry = Svagc_experiments.Registry

let test_fig1_compaction_dominates () =
  let rows = Fig01.measure ~quick:true in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Fig01.benchmark ^ ": compaction is most of the pause")
        true
        (r.Fig01.compact_pct > 70.0 && r.Fig01.compact_pct < 99.0);
      Alcotest.(check (float 0.5)) "shares sum to 100" 100.0
        (r.Fig01.mark_pct +. r.Fig01.forward_pct +. r.Fig01.adjust_pct
        +. r.Fig01.compact_pct))
    rows

let test_fig6_aggregation_benefit_decreases () =
  let points = Fig06.measure ~requests:32 () in
  List.iter
    (fun p ->
      Alcotest.(check bool) "aggregation never loses" true
        (p.Fig06.improvement_pct > 0.0))
    points;
  let first = List.hd points in
  let last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "benefit fades with request size" true
    (first.Fig06.improvement_pct > last.Fig06.improvement_pct +. 10.0)

let test_fig8_pmd_caching_shape () =
  let points = Fig08.measure () in
  List.iter
    (fun p ->
      Alcotest.(check bool) "caching never slower" true
        (p.Fig08.cached_ns <= p.Fig08.uncached_ns))
    points;
  let best =
    List.fold_left (fun acc p -> Float.max acc p.Fig08.improvement_pct) 0.0 points
  in
  Alcotest.(check bool) "max improvement near the paper's 52%" true
    (best > 40.0 && best < 60.0)

let test_fig9_ipi_reduction_is_object_count () =
  let points = Fig09.measure ~objects:50 ~pages_per_object:12 () in
  let p32 = List.nth points (List.length points - 1) in
  (* Eq. 2: unoptimized sends l broadcasts, optimized exactly one. *)
  Alcotest.(check int) "gain = l" 50
    (p32.Fig09.unoptimized_ipis / p32.Fig09.optimized_ipis);
  Alcotest.(check bool) "optimized faster on many cores" true
    (p32.Fig09.optimized_ns < p32.Fig09.unoptimized_ns /. 5.0);
  (* On a single core there is nothing to shoot down: costs converge. *)
  let p1 = List.hd points in
  Alcotest.(check bool) "single-core gap small" true
    (p1.Fig09.unoptimized_ns < p1.Fig09.optimized_ns *. 1.5)

let test_fig10_threshold_near_ten_pages () =
  List.iter
    (fun s ->
      match s.Fig10.crossover_pages with
      | Some p ->
        Alcotest.(check bool)
          (s.Fig10.machine ^ " crossover in the paper's regime") true
          (p >= 4 && p <= 14)
      | None -> Alcotest.fail "no crossover found")
    (Fig10.measure ())

let test_fig10_monotone () =
  List.iter
    (fun s ->
      (* Once SwapVA wins it keeps winning: exactly one crossover. *)
      let won = ref false in
      List.iter
        (fun p ->
          let wins = p.Fig10.swapva_ns < p.Fig10.memmove_ns in
          if !won then
            Alcotest.(check bool) "no flip back" true wins
          else if wins then won := true)
        s.Fig10.points)
    (Fig10.measure ())

let test_fig11_anchors () =
  let rows = Fig11.measure ~quick:true in
  let find name =
    match List.find_opt (fun r -> r.Fig11.benchmark = name) rows with
    | Some r -> r
    | None -> Alcotest.failf "missing %s" name
  in
  let sig_red = (find "Sigverify").Fig11.reduction_pct in
  let sparse_red = (find "Sparse.large").Fig11.reduction_pct in
  Alcotest.(check bool) "Sigverify ~97% (>85%)" true (sig_red > 85.0);
  Alcotest.(check bool) "Sparse.large strong reduction" true (sparse_red > 55.0);
  Alcotest.(check bool) "Sigverify is the best case" true (sig_red >= sparse_red)

let test_fig12_ordering () =
  (* SVAGC < ParallelGC < Shenandoah on avg full-GC pause for a
     large-object benchmark. *)
  let w = Svagc_workloads.Sigverify.default in
  let avg kind =
    (Exp_common.suite_run ~quick:true kind ~heap_factor:1.2 w)
      .Svagc_workloads.Runner.summary.Svagc_gc.Gc_stats.avg_pause_ns
  in
  let sva = avg Exp_common.Svagc in
  let par = avg Exp_common.Parallelgc in
  let shen = avg Exp_common.Shenandoah in
  Alcotest.(check bool) "svagc < parallelgc" true (sva < par);
  Alcotest.(check bool) "parallelgc < shenandoah" true (par < shen)

let test_fig15_throughput_direction () =
  let rows = Fig15.measure ~quick:true in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Fig15.benchmark ^ " not slower") true
        (r.Fig15.improvement_pct > -5.0))
    rows;
  let sparse =
    List.find (fun r -> r.Fig15.benchmark = "Sparse.large") rows
  in
  let crypto = List.find (fun r -> r.Fig15.benchmark = "CryptoAES") rows in
  Alcotest.(check bool) "memory-bound gains exceed compute-bound" true
    (sparse.Fig15.improvement_pct > crypto.Fig15.improvement_pct)

let test_registry_complete () =
  Alcotest.(check int) "21 experiments (12 figures + 3 tables + 6 extensions)" 21
    (List.length Registry.all);
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true (Registry.find id <> None))
    [ "fig1"; "fig2"; "fig6"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12";
      "fig13"; "fig14"; "fig15"; "fig16"; "table1"; "table2"; "table3";
      "ablation"; "extensions"; "resilience"; "pressure"; "fleet"; "par" ]

let test_suite_run_memoized () =
  let w = Svagc_workloads.Crypto_aes.workload in
  let a = Exp_common.suite_run ~quick:true Exp_common.Svagc ~heap_factor:1.2 w in
  let b = Exp_common.suite_run ~quick:true Exp_common.Svagc ~heap_factor:1.2 w in
  Alcotest.(check bool) "same physical result" true (a == b)

let () =
  Alcotest.run "svagc_experiments"
    [
      ( "microbench-shapes",
        [
          Alcotest.test_case "fig1 compaction dominates" `Slow
            test_fig1_compaction_dominates;
          Alcotest.test_case "fig6 aggregation fades" `Quick
            test_fig6_aggregation_benefit_decreases;
          Alcotest.test_case "fig8 pmd caching" `Quick test_fig8_pmd_caching_shape;
          Alcotest.test_case "fig9 IPI reduction" `Quick
            test_fig9_ipi_reduction_is_object_count;
          Alcotest.test_case "fig10 threshold" `Quick test_fig10_threshold_near_ten_pages;
          Alcotest.test_case "fig10 monotone" `Quick test_fig10_monotone;
        ] );
      ( "gc-shapes",
        [
          Alcotest.test_case "fig11 anchors" `Slow test_fig11_anchors;
          Alcotest.test_case "fig12 ordering" `Slow test_fig12_ordering;
          Alcotest.test_case "fig15 direction" `Slow test_fig15_throughput_direction;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "memoized" `Slow test_suite_run_memoized;
        ] );
    ]
