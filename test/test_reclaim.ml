(* Tests for svagc_reclaim and its wiring: swap-device and address-space
   byte round-trips through swap-out/fault-in, the SwapVA slot-exchange
   fast path (zero major faults) vs memmove's fault-everything-in slow
   path, post-GC heap audits and conservation laws under 0.5 residency,
   determinism of the pressure experiment, the [swap] fault-injection
   site (typed EIO_swap after bounded retries), and rate-0 bit-identity
   of a [swap:p=0] clause. *)

open Svagc_vmem
module Process = Svagc_kernel.Process
module Swapva = Svagc_kernel.Swapva
module Memmove = Svagc_kernel.Memmove
module Fault_handler = Svagc_kernel.Fault_handler
module Reclaim = Svagc_reclaim.Reclaim
module Swap_dev = Svagc_reclaim.Swap_dev
module Fault_spec = Svagc_fault.Fault_spec
module Kernel_error = Svagc_fault.Kernel_error
module Config = Svagc_core.Config
module Jvm = Svagc_core.Jvm
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Exp_common = Svagc_experiments.Exp_common
module Exp_pressure = Svagc_experiments.Exp_pressure

let qtest ?(count = 50) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let base = 1 lsl 32

(* --- Swap_dev --- *)

let prop_swap_dev_round_trip =
  qtest "swap device round-trips any payload"
    QCheck.(list (option (string_of_size (QCheck.Gen.return Addr.page_size))))
    (fun payloads ->
      let dev = Swap_dev.create () in
      let slots =
        List.map
          (fun payload ->
            let slot = Swap_dev.alloc_slot dev in
            Swap_dev.write dev ~slot (Option.map Bytes.of_string payload);
            (slot, payload))
          payloads
      in
      List.for_all
        (fun (slot, payload) ->
          let back = Option.map Bytes.to_string (Swap_dev.read dev ~slot) in
          Swap_dev.free_slot dev slot;
          back = payload)
        slots
      && Swap_dev.slots_in_use dev = 0)

let test_swap_dev_slot_reuse () =
  let dev = Swap_dev.create () in
  let a = Swap_dev.alloc_slot dev in
  let b = Swap_dev.alloc_slot dev in
  Swap_dev.free_slot dev a;
  (* Lowest-numbered-first: the freed slot is reused deterministically. *)
  Alcotest.(check int) "freed slot reused" a (Swap_dev.alloc_slot dev);
  Alcotest.(check bool) "b still allocated" true (Swap_dev.allocated dev ~slot:b);
  Alcotest.(check int) "two in use" 2 (Swap_dev.slots_in_use dev)

(* --- Address-space round trips under pressure --- *)

(* [2 * pages] mapped, machine capped at [pages] resident frames; the
   reclaim plane is attached before mapping so kswapd evicts the cold
   half as mapping crosses the watermark. *)
let pressured_fixture ~pages =
  let machine = Machine.create ~ncores:4 ~phys_mib:64 Cost_model.xeon_6130 in
  let r = Fault_handler.attach machine ~limit_frames:pages () in
  let proc = Process.create machine in
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:base ~pages:(2 * pages);
  (machine, proc, aspace, r)

let count_swapped aspace =
  Page_table.swapped_pages (Address_space.page_table aspace)

let prop_swap_out_fault_in_round_trip =
  qtest ~count:20 "bytes survive swap-out then demand fault-in"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let pages = 16 in
      let machine = Machine.create ~ncores:4 ~phys_mib:64 Cost_model.xeon_6130 in
      let proc = Process.create machine in
      let aspace = Process.aspace proc in
      Address_space.map_range aspace ~va:base ~pages;
      let rng = Svagc_util.Rng.create ~seed in
      let payload i =
        Bytes.init 256 (fun j -> Char.chr ((i + j + Svagc_util.Rng.int rng 251) land 0xff))
      in
      let payloads = List.init pages payload in
      List.iteri
        (fun i src ->
          Address_space.write_bytes aspace ~va:(base + (i * Addr.page_size)) ~src)
        payloads;
      (* Attach with room for half the pages: adoption + balance evicts. *)
      let r = Fault_handler.attach machine ~limit_frames:(pages / 2) () in
      Reclaim.adopt_space r ~pt:(Address_space.page_table aspace)
        ~asid:(Address_space.asid aspace);
      Reclaim.balance r;
      if count_swapped aspace = 0 then
        QCheck.Test.fail_report "balance evicted nothing";
      (* read_bytes demand-faults every swapped page back in. *)
      List.for_all
        (fun (i, src) ->
          let back =
            Address_space.read_bytes aspace
              ~va:(base + (i * Addr.page_size))
              ~len:(Bytes.length src)
          in
          Bytes.equal back src)
        (List.mapi (fun i p -> (i, p)) payloads)
      && machine.Machine.perf.Perf.major_faults > 0)

(* --- The headline: SwapVA slot exchange vs memmove fault-in --- *)

let test_swapva_slot_exchange_no_faults () =
  let pages = 64 in
  let machine, proc, aspace, _ = pressured_fixture ~pages in
  let perf = machine.Machine.perf in
  Alcotest.(check bool) "half the range is swapped out" true
    (count_swapped aspace >= pages / 2);
  (* Peek-based checksums never fault, so they can witness the exchange. *)
  let len = pages * Addr.page_size in
  let lo_sum = Address_space.checksum aspace ~va:base ~len in
  let hi_sum = Address_space.checksum aspace ~va:(base + len) ~len in
  let faults0 = perf.Perf.major_faults in
  let swapin0 = perf.Perf.pages_swapped_in in
  ignore
    (Swapva.swap proc ~opts:Swapva.default_opts ~src:base ~dst:(base + len)
       ~pages);
  Alcotest.(check int) "no major faults" faults0 perf.Perf.major_faults;
  Alcotest.(check int) "no swap-ins" swapin0 perf.Perf.pages_swapped_in;
  Alcotest.(check int64) "low half now holds the high bytes" hi_sum
    (Address_space.checksum aspace ~va:base ~len);
  Alcotest.(check int64) "high half now holds the low bytes" lo_sum
    (Address_space.checksum aspace ~va:(base + len) ~len)

let test_memmove_faults_in () =
  let pages = 64 in
  let machine, _, aspace, _ = pressured_fixture ~pages in
  let perf = machine.Machine.perf in
  let faults0 = perf.Perf.major_faults in
  let len = pages * Addr.page_size in
  ignore (Memmove.move aspace ~src:base ~dst:(base + len) ~len);
  Alcotest.(check bool) "memmove demand-faulted the swapped source" true
    (perf.Perf.major_faults > faults0);
  Alcotest.(check bool) "swap-ins happened" true (perf.Perf.pages_swapped_in > 0)

(* --- GC under pressure --- *)

let pressured_gc_run ?fault_spec ?(residency = 0.5) () =
  (* Pass 1: unlimited footprint; pass 2: capped at [residency] of it. *)
  let config =
    match fault_spec with
    | None -> Config.default
    | Some s ->
      { Config.default with Config.fault_spec = s; fault_seed = 7 }
  in
  let run limit_frames =
    let machine = Exp_common.fresh_machine Cost_model.xeon_6130 in
    (match limit_frames with
    | Some limit_frames ->
      ignore (Fault_handler.attach machine ~limit_frames ())
    | None -> ());
    let workload = Svagc_workloads.Spec.find "Sigverify" in
    let jvm =
      Runner.make_jvm ~heap_factor:1.2 ~machine
        ~collector_of:(Exp_common.collector_of ~config Exp_common.Svagc)
        workload
    in
    let rng = Svagc_util.Rng.create ~seed:42 in
    let stepper = workload.Workload.setup jvm rng in
    for _ = 1 to 20 do
      stepper ()
    done;
    ignore (Jvm.run_gc jvm);
    (machine, jvm)
  in
  let machine, _ = run None in
  let peak = Phys_mem.frames_in_use machine.Machine.phys in
  run (Some (max 1 (int_of_float (residency *. float_of_int peak))))

let test_heap_audit_under_pressure () =
  let machine, jvm = pressured_gc_run () in
  Alcotest.(check bool) "pressure was real" true
    (machine.Machine.perf.Perf.pages_swapped_out > 0);
  match Svagc_heap.Heap.audit (Jvm.heap jvm) with
  | Ok () -> ()
  | Error ps ->
    Alcotest.failf "heap audit failed under 0.5 residency:\n  %s"
      (String.concat "\n  " ps)

let test_conservation_laws_under_pressure () =
  let machine, jvm = pressured_gc_run () in
  let aspace = Process.aspace (Jvm.proc jvm) in
  let tables =
    [ (Address_space.asid aspace, Address_space.page_table aspace) ]
  in
  let items, findings = Svagc_check.Check.reclaim_laws machine ~tables in
  Alcotest.(check bool) "laws actually evaluated" true (items > 0);
  match findings with
  | [] -> ()
  | fs ->
    Alcotest.failf "reclaim laws violated:\n  %s"
      (String.concat "\n  "
         (List.map (fun f -> Format.asprintf "%a" Svagc_check.Check.pp_finding f) fs))

(* --- exp pressure --- *)

let test_exp_pressure_deterministic () =
  let a = Exp_pressure.sweep ~quick:true in
  let b = Exp_pressure.sweep ~quick:true in
  Alcotest.(check int) "same grid" (List.length a) (List.length b);
  List.iter2
    (fun (p : Exp_pressure.point) (q : Exp_pressure.point) ->
      Alcotest.(check int64) "gc_ns bits"
        (Int64.bits_of_float p.Exp_pressure.gc_ns)
        (Int64.bits_of_float q.Exp_pressure.gc_ns);
      Alcotest.(check bool) "identical point" true (p = q))
    a b

let test_exp_pressure_headline () =
  let points = Exp_pressure.sweep ~quick:true in
  let find kind residency =
    match
      List.find_opt
        (fun (p : Exp_pressure.point) ->
          p.Exp_pressure.kind == kind && p.Exp_pressure.residency = residency)
        points
    with
    | Some p -> p
    | None -> Alcotest.fail "missing sweep point"
  in
  let sva_full = find Exp_common.Svagc 1.0 in
  let sva_half = find Exp_common.Svagc 0.5 in
  let mm_full = find Exp_common.Lisp2_memmove 1.0 in
  let mm_half = find Exp_common.Lisp2_memmove 0.5 in
  (* SwapVA compaction cost stays within noise of its unlimited baseline;
     the memmove collector pays for faulting the swapped fraction in. *)
  Alcotest.(check bool) "SwapVA GC time flat under pressure" true
    (sva_half.Exp_pressure.gc_ns < sva_full.Exp_pressure.gc_ns *. 1.5);
  Alcotest.(check bool) "memmove GC time grows under pressure" true
    (mm_half.Exp_pressure.gc_ns > mm_full.Exp_pressure.gc_ns *. 2.0);
  Alcotest.(check bool) "memmove faults dwarf SwapVA faults" true
    (mm_half.Exp_pressure.major_faults
    > 10 * (sva_half.Exp_pressure.major_faults + 1))

(* --- swap fault site --- *)

let test_swap_spec_round_trip () =
  let t =
    match Fault_spec.parse "swap:p=0.25,pte:every=8" with
    | Ok t -> t
    | Error m -> Alcotest.failf "parse failed: %s" m
  in
  (match t with
  | [ s; _ ] ->
    Alcotest.(check bool) "swap site" true (s.Fault_spec.site = Fault_spec.Swap_io)
  | _ -> Alcotest.fail "expected two clauses");
  let printed = Fault_spec.to_string t in
  match Fault_spec.parse printed with
  | Ok t' -> Alcotest.(check bool) ("round trip via " ^ printed) true (t = t')
  | Error m -> Alcotest.failf "reparse %S failed: %s" printed m

let test_eio_swap_after_bounded_retries () =
  let pages = 8 in
  let machine = Machine.create ~ncores:2 ~phys_mib:64 Cost_model.xeon_6130 in
  let r = Fault_handler.attach machine ~limit_frames:pages ~max_io_retries:2 () in
  let proc = Process.create machine in
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:base ~pages:(2 * pages);
  Alcotest.(check bool) "some pages swapped" true (count_swapped aspace > 0);
  (* Arm a certain-failure swap device only now, so the evictions above
     succeeded and the fault-in below must exhaust its retries. *)
  (match Fault_spec.parse "swap:p=1" with
  | Ok spec -> machine.Machine.fault <- Some (Svagc_fault.Injector.create spec ~seed:3)
  | Error m -> Alcotest.failf "spec: %s" m);
  let swapped_vpn = ref None in
  Page_table.iter_swapped (Address_space.page_table aspace)
    ~f:(fun ~vpn ~slot:_ ->
      if !swapped_vpn = None then swapped_vpn := Some vpn);
  let va =
    match !swapped_vpn with
    | Some vpn -> vpn * Addr.page_size
    | None -> assert false
  in
  (* The call must terminate (bounded retries, bounded kswapd scan budget
     — under p=1 eviction attempts fail too) and surface the typed error. *)
  (match
     Reclaim.fault_in r ~pt:(Address_space.page_table aspace)
       ~asid:(Address_space.asid aspace) ~va
   with
  | () -> Alcotest.fail "fault_in succeeded under swap:p=1"
  | exception Kernel_error.Fault (Kernel_error.EIO_swap { va = fva }) ->
    Alcotest.(check int) "typed error names the faulting va" va fva);
  Alcotest.(check bool) "device errors were counted" true
    (machine.Machine.perf.Perf.swap_io_errors >= 2);
  Alcotest.(check bool) "the page is still swapped (slot not leaked)" true
    (Pte.is_swapped (Page_table.get_pte (Address_space.page_table aspace) va))

let test_swap_rate0_bit_identical () =
  let zero_spec =
    match Fault_spec.parse "swap:p=0" with
    | Ok s -> s
    | Error m -> failwith m
  in
  let machine_a, jvm_a = pressured_gc_run () in
  let machine_b, jvm_b = pressured_gc_run ~fault_spec:zero_spec () in
  Alcotest.(check int64) "gc_ns bits"
    (Int64.bits_of_float (Jvm.gc_ns jvm_a))
    (Int64.bits_of_float (Jvm.gc_ns jvm_b));
  Alcotest.(check int64) "app_ns bits"
    (Int64.bits_of_float (Jvm.app_ns jvm_a))
    (Int64.bits_of_float (Jvm.app_ns jvm_b));
  List.iter2
    (fun (name, a) (_, b) -> Alcotest.(check int) ("counter " ^ name) a b)
    (Perf.to_assoc machine_a.Machine.perf)
    (Perf.to_assoc machine_b.Machine.perf)

let () =
  Alcotest.run "svagc_reclaim"
    [
      ( "swap_dev",
        [ prop_swap_dev_round_trip;
          Alcotest.test_case "slot reuse" `Quick test_swap_dev_slot_reuse ] );
      ( "round_trip",
        [ prop_swap_out_fault_in_round_trip ] );
      ( "fast_path",
        [
          Alcotest.test_case "SwapVA exchanges slots without faulting" `Quick
            test_swapva_slot_exchange_no_faults;
          Alcotest.test_case "memmove faults both sides in" `Quick
            test_memmove_faults_in;
        ] );
      ( "gc_under_pressure",
        [
          Alcotest.test_case "heap audit at 0.5 residency" `Slow
            test_heap_audit_under_pressure;
          Alcotest.test_case "conservation laws" `Slow
            test_conservation_laws_under_pressure;
        ] );
      ( "exp_pressure",
        [
          Alcotest.test_case "deterministic across two runs" `Slow
            test_exp_pressure_deterministic;
          Alcotest.test_case "headline shape" `Slow test_exp_pressure_headline;
        ] );
      ( "swap_faults",
        [
          Alcotest.test_case "grammar round trip" `Quick test_swap_spec_round_trip;
          Alcotest.test_case "EIO_swap after bounded retries" `Quick
            test_eio_swap_after_bounded_retries;
          Alcotest.test_case "rate 0 bit-identical" `Slow
            test_swap_rate0_bit_identical;
        ] );
    ]
