(* Tests for the event-driven simulation core (lib/sched): calendar heap
   ordering, FIFO tie-breaking among same-instant events, lazy
   cancellation and the perf-counter wiring; a qcheck property that the
   calendar engine fires any random schedule in the bit-identical order
   of the lockstep reference scan; the same equivalence on real
   co-running JVMs through [Multi_jvm]; and the admission math that the
   10k-tenant fleet relies on, exercised directly on [Admission] so it
   stays a fast unit test. *)

open Svagc_vmem
module Calendar = Svagc_sched.Calendar
module Engine = Svagc_sched.Engine
module Config = Svagc_core.Config
module Svagc = Svagc_core.Svagc
module Jvm = Svagc_core.Jvm
module Multi_jvm = Svagc_core.Multi_jvm
module Admission = Svagc_fleet.Admission
module Rng = Svagc_util.Rng

let qtest ?(count = 60) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Calendar --- *)

let drain cal =
  let rec go acc =
    match Calendar.pop cal with
    | None -> List.rev acc
    | Some (payload, ns) -> go ((payload, ns) :: acc)
  in
  go []

let test_calendar_pop_order () =
  let cal = Calendar.create () in
  let times = [ 7.; 3.; 9.; 1.; 5.; 8.; 2.; 6.; 4.; 0. ] in
  List.iteri (fun i ns -> ignore (Calendar.schedule cal ~ns i)) times;
  Alcotest.(check int) "live" 10 (Calendar.live cal);
  Alcotest.(check (option (float 0.))) "peek" (Some 0.) (Calendar.peek_ns cal);
  let popped = drain cal in
  Alcotest.(check (list (float 0.)))
    "ns ascending"
    [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ]
    (List.map snd popped);
  Alcotest.(check bool) "empty after drain" true (Calendar.is_empty cal)

let test_calendar_fifo_ties () =
  let cal = Calendar.create () in
  (* Ten events at the same instant, bracketed by earlier/later ones:
     the tied block must come back in insertion order. *)
  ignore (Calendar.schedule cal ~ns:1. (-1));
  for i = 0 to 9 do
    ignore (Calendar.schedule cal ~ns:5. i)
  done;
  ignore (Calendar.schedule cal ~ns:3. (-2));
  let popped = List.map fst (drain cal) in
  Alcotest.(check (list int))
    "FIFO among equal ns"
    [ -1; -2; 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    popped

let test_calendar_cancel () =
  let cal = Calendar.create () in
  let h0 = Calendar.schedule cal ~ns:1. "a" in
  let h1 = Calendar.schedule cal ~ns:2. "b" in
  let h2 = Calendar.schedule cal ~ns:3. "c" in
  Alcotest.(check bool) "cancel pending" true (Calendar.cancel cal h1);
  Alcotest.(check bool) "cancel twice" false (Calendar.cancel cal h1);
  Alcotest.(check int) "live after cancel" 2 (Calendar.live cal);
  Alcotest.(check (list string)) "cancelled event skipped" [ "a"; "c" ]
    (List.map fst (drain cal));
  Alcotest.(check bool) "cancel after fire" false (Calendar.cancel cal h0);
  let h3 = Calendar.schedule cal ~ns:4. "d" in
  Calendar.clear cal;
  Alcotest.(check bool) "cleared events are cancelled" false
    (Calendar.cancel cal h3);
  Alcotest.(check int) "clear empties" 0 (Calendar.live cal);
  Alcotest.(check int) "scheduled_total is lifetime" 4
    (Calendar.scheduled_total cal);
  ignore h2

let test_calendar_rejects_bad_ns () =
  let cal = Calendar.create () in
  let raises ns =
    match Calendar.schedule cal ~ns () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "NaN rejected" true (raises Float.nan);
  Alcotest.(check bool) "negative rejected" true (raises (-1.));
  Alcotest.(check bool) "zero fine" false (raises 0.)

let test_calendar_perf_counters () =
  let perf = Perf.create () in
  let cal = Calendar.create ~perf () in
  let hs = List.init 6 (fun i -> Calendar.schedule cal ~ns:(float_of_int i) i) in
  ignore (Calendar.cancel cal (List.nth hs 2));
  ignore (Calendar.cancel cal (List.nth hs 4));
  let fired = List.length (drain cal) in
  Alcotest.(check int) "fired" 4 fired;
  Alcotest.(check int) "sched_scheduled" 6 perf.Perf.sched_scheduled;
  Alcotest.(check int) "sched_dispatched" 4 perf.Perf.sched_dispatched;
  Alcotest.(check int) "sched_cancelled" 2 perf.Perf.sched_cancelled;
  Alcotest.(check bool) "conservation law" true
    (perf.Perf.sched_dispatched + perf.Perf.sched_cancelled
    <= perf.Perf.sched_scheduled)

(* --- engine equivalence: lockstep scan vs calendar --- *)

(* Draw the whole schedule up front so both engines replay the identical
   plan: per-proc entry times from a tiny range and strides including 0
   make same-instant FIFO ties the common case, which is exactly where
   the two engines could diverge. *)
let sched_plan seed =
  let rng = Rng.create ~seed in
  let nprocs = 1 + Rng.int rng 10 in
  let firsts = Array.init nprocs (fun _ -> float_of_int (Rng.int rng 4)) in
  let plans =
    Array.init nprocs (fun _ ->
        Array.init (Rng.int rng 12) (fun _ -> Rng.int rng 3))
  in
  (firsts, plans)

let replay_plan (firsts, plans) engine =
  let order = ref [] in
  let procs =
    Array.mapi
      (fun i first_ns ->
        let k = ref 0 in
        Engine.proc ~first_ns (fun ~now ->
            order := (i, now) :: !order;
            if !k >= Array.length plans.(i) then Engine.done_ns
            else begin
              let stride = plans.(i).(!k) in
              incr k;
              now +. float_of_int stride
            end))
      firsts
  in
  let fired =
    match engine with
    | `Scan -> Engine.run_lockstep_scan procs
    | `Calendar -> Engine.run_calendar procs
  in
  (fired, List.rev !order)

let prop_engine_equivalence =
  qtest ~count:200 "calendar replays any schedule like the scan"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let plan = sched_plan seed in
      let scan_n, scan_order = replay_plan plan `Scan in
      let cal_n, cal_order = replay_plan plan `Calendar in
      if scan_n <> cal_n then
        QCheck.Test.fail_reportf "seed %d: %d events vs %d" seed scan_n cal_n;
      List.iter2
        (fun (pi, pns) (ci, cns) ->
          if pi <> ci || pns <> cns then
            QCheck.Test.fail_reportf
              "seed %d: firing diverged (scan proc %d @ %g, calendar proc %d @ %g)"
              seed pi pns ci cns)
        scan_order cal_order;
      true)

(* --- Multi_jvm: both drivers leave real JVMs bit-identical --- *)

(* The sched_* counters legitimately differ (only the calendar engine
   schedules through a [Calendar]); everything else must match. *)
let non_sched_counters m =
  List.filter
    (fun (k, _) -> not (String.length k >= 6 && String.sub k 0 6 = "sched_"))
    (Perf.to_assoc m.Machine.perf)

let run_multi ~engine () =
  let machine = Helpers.machine () in
  let multi =
    Multi_jvm.create machine ~instances:3 ~spawn:(fun ~index m ->
        Jvm.create m
          ~name:(Printf.sprintf "jvm-%d" index)
          ~heap_bytes:(2 * 1024 * 1024)
          ~collector_of:(Svagc.collector ~config:Config.default)
          ())
  in
  let step jvm s =
    (* Deterministic per-(jvm, step) allocation mix, big enough to force
       GCs on the 2 MiB heaps. *)
    let size = (48 * 1024) + (((s * 7) mod 5) * 8 * 1024) in
    ignore (Jvm.alloc jvm ~size ~n_refs:0 ~cls:(s mod 3))
  in
  (match engine with
  | `Calendar -> Multi_jvm.run_round_robin multi ~steps:120 ~step
  | `Lockstep -> Multi_jvm.run_round_robin_lockstep multi ~steps:120 ~step);
  let gcs = Array.map Jvm.gc_count (Multi_jvm.jvms multi) in
  let summary =
    ( Multi_jvm.max_total_ns multi,
      Multi_jvm.avg_gc_ns multi,
      Multi_jvm.avg_app_ns multi )
  in
  Multi_jvm.release multi;
  (gcs, summary, non_sched_counters machine)

let test_multi_jvm_engines_identical () =
  let gcs_l, sum_l, ctr_l = run_multi ~engine:`Lockstep () in
  let gcs_c, sum_c, ctr_c = run_multi ~engine:`Calendar () in
  Alcotest.(check (array int)) "gc counts" gcs_l gcs_c;
  let l_max, l_gc, l_app = sum_l and c_max, c_gc, c_app = sum_c in
  Alcotest.(check bool) "clock summaries bit-identical" true
    (l_max = c_max && l_gc = c_gc && l_app = c_app);
  Alcotest.(check (list (pair string int))) "perf counters" ctr_l ctr_c;
  Alcotest.(check bool) "work actually happened" true
    (Array.exists (fun g -> g > 0) gcs_l)

(* --- admission math at fleet scale --- *)

let test_admission_10k () =
  let m = Helpers.machine () in
  let frames = 16 in
  let adm =
    Admission.create m
      ~capacity_frames:(10_000 * frames)
      ~overcommit:1.0 ~queue_limit:24 ()
  in
  let admitted = ref 0 and queued = ref 0 and rejected = ref 0 in
  for tenant = 0 to 10_499 do
    match Admission.request adm ~tenant ~frames with
    | Admission.Admitted -> incr admitted
    | Admission.Queued -> incr queued
    | Admission.Rejected -> incr rejected
  done;
  Alcotest.(check int) "admitted main wave" 10_000 !admitted;
  Alcotest.(check int) "queued" 24 !queued;
  Alcotest.(check int) "rejected over full queue" 476 !rejected;
  Alcotest.(check int) "committed = budget" (10_000 * frames)
    (Admission.committed_frames adm);
  (* Departures free exactly enough for the whole queue: it must drain
     FIFO, oldest waiter first. *)
  Admission.release adm ~frames:(24 * frames);
  let ready = Admission.take_ready adm in
  Alcotest.(check int) "queue drains fully" 24 (List.length ready);
  Alcotest.(check (list int)) "FIFO drain order"
    (List.init 24 (fun i -> 10_000 + i))
    (List.map fst ready);
  Alcotest.(check int) "admitted total" 10_024 (Admission.admitted adm);
  Alcotest.(check int) "rejected total" 476 (Admission.rejected adm);
  Alcotest.(check int) "rejects counted on the machine" 476
    m.Machine.perf.Perf.admission_rejects

let () =
  Alcotest.run "svagc_sched"
    [
      ( "calendar",
        [
          Alcotest.test_case "pop order" `Quick test_calendar_pop_order;
          Alcotest.test_case "FIFO ties" `Quick test_calendar_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_calendar_cancel;
          Alcotest.test_case "rejects bad ns" `Quick test_calendar_rejects_bad_ns;
          Alcotest.test_case "perf counters" `Quick test_calendar_perf_counters;
        ] );
      ("engine", [ prop_engine_equivalence ]);
      ( "multi_jvm",
        [
          Alcotest.test_case "both drivers bit-identical" `Quick
            test_multi_jvm_engines_identical;
        ] );
      ("admission", [ Alcotest.test_case "10k tenants" `Quick test_admission_10k ]);
    ]
