(* Tests for svagc_fleet: admission decisions, FIFO fairness and the
   admission_rejects counter; tiered swap-device demotion/promotion with
   payload integrity across the migration; cgroup hard-limit enforcement
   on the mapping and faulting paths; soft-limit-first victim selection
   (an under-soft tenant's pages survive kswapd while a hog is over);
   equivalence of an oversized near tier with the default flat device;
   bit-determinism of the fleet driver (tier placement, counters and
   percentiles replay); and a fleet run under the shadow oracle's
   cgroup/tier conservation laws. *)

open Svagc_vmem
module Process = Svagc_kernel.Process
module Fault_handler = Svagc_kernel.Fault_handler
module Reclaim = Svagc_reclaim.Reclaim
module Swap_tier = Svagc_fleet.Swap_tier
module Cgroup = Svagc_fleet.Cgroup
module Admission = Svagc_fleet.Admission
module Fleet = Svagc_fleet.Fleet
module Histogram = Svagc_util.Histogram
module Exp_common = Svagc_experiments.Exp_common

let machine ?(ncores = 4) ?(phys_mib = 128) () =
  Machine.create ~ncores ~phys_mib Cost_model.xeon_6130

let base = 1 lsl 32

(* --- Admission --- *)

let test_admission_decisions () =
  let m = machine () in
  let adm =
    Admission.create m ~capacity_frames:100 ~overcommit:1.5 ~queue_limit:2 ()
  in
  Alcotest.(check int) "budget" 150 (Admission.budget_frames adm);
  Alcotest.(check bool) "first fits" true
    (Admission.request adm ~tenant:0 ~frames:100 = Admission.Admitted);
  Alcotest.(check bool) "oversized can never fit" true
    (Admission.request adm ~tenant:1 ~frames:151 = Admission.Rejected);
  Alcotest.(check bool) "next does not fit, queues" true
    (Admission.request adm ~tenant:2 ~frames:60 = Admission.Queued);
  (* FIFO fairness: tenant 3 would fit right now (50 frames spare) but
     must queue behind tenant 2. *)
  Alcotest.(check bool) "newcomer queues behind waiter" true
    (Admission.request adm ~tenant:3 ~frames:40 = Admission.Queued);
  Alcotest.(check bool) "queue full rejects" true
    (Admission.request adm ~tenant:4 ~frames:10 = Admission.Rejected);
  Alcotest.(check int) "admission_rejects counter" 2
    m.Machine.perf.Perf.admission_rejects;
  Alcotest.(check int) "committed" 100 (Admission.committed_frames adm);
  Alcotest.(check int) "queue length" 2 (Admission.queue_length adm);
  Admission.release adm ~frames:100;
  Alcotest.(check (list (pair int int)))
    "release drains the queue in FIFO order"
    [ (2, 60); (3, 40) ]
    (Admission.take_ready adm);
  Alcotest.(check int) "committed after drain" 100
    (Admission.committed_frames adm);
  Alcotest.(check int) "admitted total" 3 (Admission.admitted adm);
  Alcotest.(check int) "rejected total" 2 (Admission.rejected adm)

(* --- Swap_tier --- *)

let test_tier_demote_promote () =
  let m = machine () in
  let tier = Swap_tier.create m ~near_slots:2 ~far_cost_mult:3.0 () in
  let dev = Swap_tier.iface tier in
  let out_empty = dev.Reclaim.d_out_ns () in
  let payload i = Bytes.make Addr.page_size (Char.chr (Char.code 'A' + i)) in
  let slots =
    List.init 3 (fun i ->
        let s = dev.Reclaim.d_alloc_slot () in
        dev.Reclaim.d_write ~slot:s (Some (payload i));
        s)
  in
  (* The third allocation found the near tier full and demoted the
     coldest slot (the first) to far. *)
  Alcotest.(check (pair int int)) "near full, coldest demoted" (2, 1)
    (Swap_tier.stats tier);
  Alcotest.(check int) "demotion counted" 1 m.Machine.perf.Perf.tier_demotions;
  Alcotest.(check bool) "full near tier makes swap-out dearer" true
    (dev.Reclaim.d_out_ns () > out_empty);
  let s0 = List.nth slots 0 and s1 = List.nth slots 1 in
  (* peek is the oracle path: payload visible, no promotion side effect. *)
  (match Swap_tier.peek tier ~slot:s0 with
  | Some b -> Alcotest.(check char) "peek sees payload" 'A' (Bytes.get b 0)
  | None -> Alcotest.fail "peek lost the demoted payload");
  Alcotest.(check int) "peek is not a promotion" 0
    m.Machine.perf.Perf.tier_promotions;
  Alcotest.(check bool) "far slot reads slower" true
    (dev.Reclaim.d_in_ns ~slot:s0 > dev.Reclaim.d_in_ns ~slot:s1);
  (* A demand-fault read of the far slot is a promotion, and the payload
     survived the near->far migration byte-for-byte. *)
  (match dev.Reclaim.d_read ~slot:s0 with
  | Some b ->
    Alcotest.(check bytes) "payload intact across demotion" (payload 0) b
  | None -> Alcotest.fail "read lost the demoted payload");
  Alcotest.(check int) "promotion counted" 1
    m.Machine.perf.Perf.tier_promotions;
  List.iter (fun s -> dev.Reclaim.d_free_slot s) slots;
  Alcotest.(check int) "no slot leak" 0 (Swap_tier.slots_in_use tier);
  Alcotest.(check (pair int int)) "both tiers empty" (0, 0)
    (Swap_tier.stats tier)

(* --- Cgroup enforcement through the kernel --- *)

let test_cgroup_hard_limit () =
  let m = machine () in
  let cg = Cgroup.create () in
  ignore
    (Fault_handler.attach m ~limit_frames:1000 ~cgroup:(Cgroup.iface cg) ());
  let proc = Process.create m in
  let aspace = Process.aspace proc in
  let asid = Address_space.asid aspace in
  Cgroup.set_limits cg ~asid ~soft:2 ~hard:4;
  Address_space.map_range aspace ~va:base ~pages:8;
  Alcotest.(check bool) "resident capped at hard" true
    (Cgroup.resident cg ~asid <= 4);
  Alcotest.(check int) "no excess after enforcement" 0
    (Cgroup.excess cg ~asid);
  Alcotest.(check int) "evicted pages went to swap"
    (8 - Cgroup.resident cg ~asid)
    m.Machine.perf.Perf.pages_swapped_out;
  (* Faulting an evicted page back in re-enforces the limit: residency
     never exceeds hard even transiently after the fault. *)
  ignore (Address_space.read_bytes aspace ~va:base ~len:1);
  Alcotest.(check bool) "still capped after fault-in" true
    (Cgroup.resident cg ~asid <= 4);
  Alcotest.(check bool) "the touch was a major fault" true
    (m.Machine.perf.Perf.major_faults >= 1)

let test_soft_limit_first () =
  let m = machine () in
  let cg = Cgroup.create () in
  ignore
    (Fault_handler.attach m ~limit_frames:12 ~cgroup:(Cgroup.iface cg) ());
  let pa = Process.create m and pb = Process.create m in
  let aa = Process.aspace pa and ab = Process.aspace pb in
  let asid_a = Address_space.asid aa and asid_b = Address_space.asid ab in
  Cgroup.set_limits cg ~asid:asid_a ~soft:2 ~hard:100 (* the over-soft hog *);
  Cgroup.set_limits cg ~asid:asid_b ~soft:100 ~hard:100 (* well-behaved *);
  (* B's pages are mapped first, so without soft-limit-first selection
     they would be the coldest — and the first evicted. *)
  Address_space.map_range ab ~va:base ~pages:4;
  Address_space.map_range aa ~va:base ~pages:10;
  Alcotest.(check bool) "hog is over its soft limit" true
    (Cgroup.prefer cg ~asid:asid_a);
  Alcotest.(check bool) "some eviction happened" true
    (m.Machine.perf.Perf.pages_swapped_out > 0);
  Alcotest.(check int) "under-soft tenant's pages spared" 4
    (Cgroup.resident cg ~asid:asid_b);
  Alcotest.(check bool) "hog paid the eviction" true
    (Cgroup.resident cg ~asid:asid_a < 10)

(* --- flat-device equivalence --- *)

(* Pressure churn (map 2x the limit, then touch everything once) with an
   optional device; returns the machine's full counter set plus the
   accumulated reclaim cost. *)
let pressure_counters ~dev_of =
  let m = machine () in
  let dev = dev_of m in
  ignore (Fault_handler.attach m ~limit_frames:48 ?dev ());
  let proc = Process.create m in
  let aspace = Process.aspace proc in
  Address_space.map_range aspace ~va:base ~pages:96;
  for i = 0 to 95 do
    ignore
      (Address_space.read_bytes aspace
         ~va:(base + (i * Addr.page_size))
         ~len:1)
  done;
  let drained =
    match m.Machine.reclaim with
    | Some r -> r.Machine.ri_drain_ns ()
    | None -> 0.0
  in
  (Perf.to_assoc m.Machine.perf, drained)

let test_oversized_near_tier_is_flat () =
  let flat, flat_ns = pressure_counters ~dev_of:(fun _ -> None) in
  let tiered, tiered_ns =
    pressure_counters ~dev_of:(fun m ->
        Some (Swap_tier.iface (Swap_tier.create m ~near_slots:1_000_000 ())))
  in
  (* A near tier that never fills never demotes: same slots, same costs,
     same counters as the built-in flat device, to the bit. *)
  Alcotest.(check (list (pair string int)))
    "counters identical to the flat device" flat tiered;
  Alcotest.(check (float 0.0)) "reclaim cost identical" flat_ns tiered_ns

(* --- the fleet driver --- *)

let tiny =
  { Fleet.default with Fleet.tenants = 9; surge = 3; steps = 2; queue_limit = 2 }

let run_tiny () =
  Fleet.run ~collector_of:(Exp_common.collector_of Exp_common.Svagc) tiny

let test_fleet_determinism () =
  let a = run_tiny () in
  let b = run_tiny () in
  (* The run exercises every plane it claims to. *)
  Alcotest.(check bool) "surge overflows the queue" true (a.Fleet.rejected > 0);
  Alcotest.(check int) "reject counter agrees" a.Fleet.rejected
    a.Fleet.perf.Perf.admission_rejects;
  Alcotest.(check bool) "tier demotions happened" true
    (a.Fleet.perf.Perf.tier_demotions > 0);
  Alcotest.(check bool) "multiple waves ran" true (a.Fleet.waves >= 2);
  Alcotest.(check bool) "every admitted tenant paused" true
    (Histogram.count a.Fleet.pauses >= a.Fleet.admitted);
  (* Same config + seed replays decisions, placement and percentiles to
     the bit. *)
  Alcotest.(check (list (pair string int)))
    "perf counters replay (demote/promote/reject included)"
    (Perf.to_assoc a.Fleet.perf)
    (Perf.to_assoc b.Fleet.perf);
  Alcotest.(check int) "admitted replays" a.Fleet.admitted b.Fleet.admitted;
  Alcotest.(check int) "waves replay" a.Fleet.waves b.Fleet.waves;
  Alcotest.(check (pair int int)) "tier placement replays" a.Fleet.tier
    b.Fleet.tier;
  Alcotest.(check int) "pause count replays"
    (Histogram.count a.Fleet.pauses)
    (Histogram.count b.Fleet.pauses);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "pause quantile %g replays" q)
        (Histogram.quantile a.Fleet.pauses q)
        (Histogram.quantile b.Fleet.pauses q);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "stall quantile %g replays" q)
        (Histogram.quantile a.Fleet.stalls q)
        (Histogram.quantile b.Fleet.stalls q))
    [ 0.5; 0.99; 0.999 ];
  Alcotest.(check (float 0.0)) "total time replays" a.Fleet.total_ns
    b.Fleet.total_ns

let test_fleet_under_oracle () =
  Svagc_check.Check.enable ~label:"fleet-test" ();
  ignore (run_tiny ());
  match Svagc_check.Check.disable () with
  | None -> Alcotest.fail "shadow oracle produced no report"
  | Some rep ->
    List.iter
      (fun f -> Format.printf "%a@." Svagc_check.Check.pp_finding f)
      rep.Svagc_check.Check.findings;
    Alcotest.(check int) "no findings" 0
      (List.length rep.Svagc_check.Check.findings)

let () =
  Alcotest.run "svagc_fleet"
    [
      ( "admission",
        [ Alcotest.test_case "decisions & FIFO" `Quick test_admission_decisions ] );
      ( "swap_tier",
        [
          Alcotest.test_case "demote/promote + payload" `Quick
            test_tier_demote_promote;
          Alcotest.test_case "oversized near tier = flat device" `Quick
            test_oversized_near_tier_is_flat;
        ] );
      ( "cgroup",
        [
          Alcotest.test_case "hard limit enforced" `Quick test_cgroup_hard_limit;
          Alcotest.test_case "soft-limit-first victims" `Quick
            test_soft_limit_first;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "bit determinism" `Quick test_fleet_determinism;
          Alcotest.test_case "conservation laws hold" `Quick
            test_fleet_under_oracle;
        ] );
    ]
