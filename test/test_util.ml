(* Unit and property tests for svagc_util: Vec, Rng, Dist, Histogram,
   Num_util. *)

open Svagc_util

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 0;
  Alcotest.(check int) "set 7" 0 (Vec.get v 7)

let test_vec_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check (option int)) "pop" (Some 3) (Vec.pop v);
  Alcotest.(check (option int)) "pop" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "pop" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v);
  Alcotest.(check bool) "empty" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "negative" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_remove_first () =
  let v = Vec.of_list [ 1; 2; 3; 2; 4 ] in
  Alcotest.(check bool) "removed" true (Vec.remove_first (fun x -> x = 2) v);
  Alcotest.(check (list int)) "first match only, order kept" [ 1; 3; 2; 4 ]
    (Vec.to_list v);
  Alcotest.(check bool) "no match" false (Vec.remove_first (fun x -> x = 9) v);
  Alcotest.(check int) "length unchanged on miss" 4 (Vec.length v);
  Alcotest.(check bool) "remove last" true (Vec.remove_first (fun x -> x = 4) v);
  Alcotest.(check (list int)) "tail removal" [ 1; 3; 2 ] (Vec.to_list v)

let prop_vec_remove_first_model =
  qtest ~count:200 "remove_first agrees with the list model"
    QCheck.(pair (list small_int) small_int)
    (fun (l, x) ->
      let v = Vec.of_list l in
      let removed = Vec.remove_first (fun y -> y = x) v in
      let rec model = function
        | [] -> []
        | y :: tl -> if y = x then tl else y :: model tl
      in
      removed = List.mem x l && Vec.to_list v = model l)

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold" 10 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "for_all" true (Vec.for_all (fun x -> x > 0) v);
  Alcotest.(check (option int)) "find" (Some 2) (Vec.find_opt (fun x -> x mod 2 = 0) v);
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8 ] (Vec.to_list (Vec.map (fun x -> 2 * x) v));
  Alcotest.(check (list int)) "filter" [ 2; 4 ]
    (Vec.to_list (Vec.filter (fun x -> x mod 2 = 0) v));
  Alcotest.(check (option int)) "last" (Some 4) (Vec.last v)

let test_vec_clear_reuse () =
  let v = Vec.of_list [ 1; 2 ] in
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check (list int)) "reusable" [ 9 ] (Vec.to_list v)

let prop_vec_roundtrip =
  qtest "vec: of_list |> to_list = id"
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let prop_vec_sort =
  qtest "vec: sort agrees with List.sort"
    QCheck.(list int)
    (fun l ->
      let v = Vec.of_list l in
      Vec.sort compare v;
      Vec.to_list v = List.sort compare l)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:1 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let prop_rng_int_bounds =
  qtest "rng: int in [0, bound)"
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_int_in =
  qtest "rng: int_in inclusive range"
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 1000))
    (fun (seed, lo, span) ->
      let rng = Rng.create ~seed in
      let hi = lo + span in
      let v = Rng.int_in rng ~lo ~hi in
      v >= lo && v <= hi)

let prop_rng_float_unit =
  qtest "rng: float in [0,1)"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = Rng.float rng in
      v >= 0.0 && v < 1.0)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:9 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

(* --- Dist --- *)

let prop_dist_uniform_range =
  qtest "dist: uniform sample in range"
    QCheck.(pair small_int (pair (int_range 0 1000) (int_range 0 1000)))
    (fun (seed, (a, b)) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create ~seed in
      let v = Dist.sample rng (Dist.Uniform (lo, hi)) in
      v >= lo && v <= hi)

let prop_dist_lognormal_clamped =
  qtest "dist: lognormal clamped"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let d = Dist.lognormal_mean ~mean:50_000.0 ~sigma:1.0 ~min:1024 ~max:100_000 in
      let v = Dist.sample rng d in
      v >= 1024 && v <= 100_000)

let test_dist_fixed () =
  let rng = Rng.create ~seed:1 in
  Alcotest.(check int) "fixed" 77 (Dist.sample rng (Dist.Fixed 77));
  Alcotest.(check (float 1e-9)) "mean" 77.0 (Dist.mean (Dist.Fixed 77))

let test_dist_choice_members () =
  let rng = Rng.create ~seed:3 in
  let d = Dist.Choice [| (1.0, 10); (2.0, 20); (3.0, 30) |] in
  for _ = 1 to 200 do
    let v = Dist.sample rng d in
    Alcotest.(check bool) "member" true (List.mem v [ 10; 20; 30 ])
  done

let test_dist_choice_mean () =
  let d = Dist.Choice [| (1.0, 10); (1.0, 30) |] in
  Alcotest.(check (float 1e-9)) "weighted mean" 20.0 (Dist.mean d)

let test_dist_choice_weights_respected () =
  (* With weights 9:1 the heavy value must dominate. *)
  let rng = Rng.create ~seed:5 in
  let d = Dist.Choice [| (9.0, 1); (1.0, 2) |] in
  let ones = ref 0 in
  for _ = 1 to 1000 do
    if Dist.sample rng d = 1 then incr ones
  done;
  Alcotest.(check bool) "heavy value dominates" true (!ones > 800)

let prop_dist_zipf_range =
  qtest "dist: zipf rank within [0, n)"
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let r = Dist.zipf rng ~n ~s:0.9 in
      r >= 0 && r < n)

let test_dist_zipf_skew () =
  let rng = Rng.create ~seed:4 in
  let hits = Array.make 100 0 in
  for _ = 1 to 5000 do
    let r = Dist.zipf rng ~n:100 ~s:1.1 in
    hits.(r) <- hits.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 is the most popular" true
    (hits.(0) > hits.(50) && hits.(0) > 5000 / 20)

(* --- Histogram --- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Histogram.max h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Histogram.min h);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Histogram.percentile h 100.0)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Histogram.mean h);
  Alcotest.(check (float 1e-9)) "percentile empty" 0.0 (Histogram.percentile h 99.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 1.0;
  Histogram.add b 3.0;
  let m = Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.0 (Histogram.mean m)

let prop_histogram_mean_bounds =
  qtest "histogram: min <= mean <= max"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      Histogram.min h <= Histogram.mean h +. 1e-9
      && Histogram.mean h <= Histogram.max h +. 1e-9)

let test_histogram_quantile_boundaries () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i)
  done;
  Alcotest.(check (float 0.0)) "p50" 500.0 (Histogram.p50 h);
  Alcotest.(check (float 0.0)) "p99" 990.0 (Histogram.p99 h);
  (* The regression this pins down: 0.999 *. 1000. is 999.0000000000001
     in floats, so an unguarded ceil lands on rank 1000 and reports the
     maximum instead of the 999th sample. *)
  Alcotest.(check (float 0.0)) "p999 boundary" 999.0 (Histogram.p999 h);
  Alcotest.(check (float 0.0)) "q=0 clamps to min" 1.0
    (Histogram.quantile h 0.0);
  Alcotest.(check (float 0.0)) "q=1 is max" 1000.0 (Histogram.quantile h 1.0);
  Alcotest.(check (float 0.0)) "percentile alias" 999.0
    (Histogram.percentile h 99.9)

(* Exact-integer-arithmetic nearest-rank reference: 1-indexed rank
   [ceil (num*n/den)], clamped into the sample range. *)
let prop_histogram_quantile_reference =
  qtest "histogram: quantile = sorted-array nearest rank"
    QCheck.(list_of_size Gen.(1 -- 200) (float_bound_exclusive 1000.0))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      List.for_all
        (fun (num, den) ->
          let rank = ((num * n) + den - 1) / den in
          let expect = sorted.(max 0 (rank - 1)) in
          Histogram.quantile h (float_of_int num /. float_of_int den) = expect)
        [ (1, 2); (99, 100); (999, 1000); (1, 1) ])

(* --- Num_util --- *)

let test_gcd () =
  Alcotest.(check int) "gcd 12 18" 6 (Num_util.gcd 12 18);
  Alcotest.(check int) "gcd 0 n" 7 (Num_util.gcd 0 7);
  Alcotest.(check int) "gcd n 0" 7 (Num_util.gcd 7 0);
  Alcotest.(check int) "coprime" 1 (Num_util.gcd 17 4)

let prop_gcd_divides =
  qtest "gcd divides both arguments"
    QCheck.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let g = Num_util.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0)

let test_ceil_div () =
  Alcotest.(check int) "exact" 3 (Num_util.ceil_div 12 4);
  Alcotest.(check int) "round up" 4 (Num_util.ceil_div 13 4);
  Alcotest.(check int) "zero" 0 (Num_util.ceil_div 0 4)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Num_util.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Num_util.geomean []);
  Alcotest.(check (float 1e-9)) "ignores nonpositive" 3.0
    (Num_util.geomean [ 3.0; 0.0; -5.0 ])

let test_pct_speedup () =
  Alcotest.(check (float 1e-9)) "pct" 50.0 (Num_util.pct_change ~baseline:2.0 ~value:3.0);
  Alcotest.(check (float 1e-9)) "speedup" 4.0 (Num_util.speedup ~baseline:8.0 ~value:2.0)

let () =
  Alcotest.run "svagc_util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "pop" `Quick test_vec_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          Alcotest.test_case "clear/reuse" `Quick test_vec_clear_reuse;
          Alcotest.test_case "remove_first" `Quick test_vec_remove_first;
          prop_vec_roundtrip;
          prop_vec_sort;
          prop_vec_remove_first_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          prop_rng_int_bounds;
          prop_rng_int_in;
          prop_rng_float_unit;
        ] );
      ( "dist",
        [
          Alcotest.test_case "fixed" `Quick test_dist_fixed;
          Alcotest.test_case "choice members" `Quick test_dist_choice_members;
          Alcotest.test_case "choice mean" `Quick test_dist_choice_mean;
          Alcotest.test_case "choice weights" `Quick test_dist_choice_weights_respected;
          Alcotest.test_case "zipf skew" `Quick test_dist_zipf_skew;
          prop_dist_uniform_range;
          prop_dist_lognormal_clamped;
          prop_dist_zipf_range;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          Alcotest.test_case "quantile boundaries" `Quick
            test_histogram_quantile_boundaries;
          prop_histogram_mean_bounds;
          prop_histogram_quantile_reference;
        ] );
      ( "num_util",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "pct/speedup" `Quick test_pct_speedup;
          prop_gcd_divides;
        ] );
    ]
