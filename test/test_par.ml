(* Tests for the simulated work-stealing executor. *)

module Work_steal = Svagc_par.Work_steal

let qtest ?(count = 150) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let run ?(threads = 4) ?(steal_ns = 0.0) ?(barrier_ns = 0.0) costs =
  Work_steal.run ~threads ~steal_ns ~barrier_ns ~cost:(fun c -> c)
    ~execute:ignore (Array.of_list costs)

let test_empty () =
  let st = run [] in
  Alcotest.(check (float 1e-9)) "empty makespan" 0.0 st.Work_steal.makespan_ns;
  Alcotest.(check int) "no steals" 0 st.Work_steal.steals

let test_single_thread_is_sum () =
  let st = run ~threads:1 ~barrier_ns:5.0 [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "sum + barrier" 11.0 st.Work_steal.makespan_ns

let test_perfect_split () =
  let st = run ~threads:2 [ 10.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "parallel halves" 10.0 st.Work_steal.makespan_ns

let test_execute_each_once () =
  let seen = Hashtbl.create 16 in
  let items = Array.init 100 (fun i -> i) in
  let st =
    Work_steal.run ~threads:3 ~steal_ns:1.0 ~barrier_ns:0.0
      ~cost:(fun i -> float_of_int (i mod 7))
      ~execute:(fun i ->
        Hashtbl.replace seen i (1 + Option.value ~default:0 (Hashtbl.find_opt seen i)))
      items
  in
  Alcotest.(check int) "tasks" 100 st.Work_steal.tasks;
  Alcotest.(check int) "all executed" 100 (Hashtbl.length seen);
  Hashtbl.iter (fun _ n -> Alcotest.(check int) "exactly once" 1 n) seen

let test_stealing_happens_on_imbalance () =
  (* With round-robin seeding, thread 0 gets all the heavy tasks unless
     the others steal. *)
  let costs = List.init 12 (fun i -> if i mod 3 = 0 then 100.0 else 1.0) in
  let st = run ~threads:3 ~steal_ns:1.0 costs in
  Alcotest.(check bool) "makespan beats serial heavy chain" true
    (st.Work_steal.makespan_ns < 400.0 -. 1e-9)

let test_more_threads_not_slower () =
  let costs = List.init 64 (fun i -> float_of_int (1 + (i mod 9))) in
  let t1 = (run ~threads:1 costs).Work_steal.makespan_ns in
  let t4 = (run ~threads:4 costs).Work_steal.makespan_ns in
  let t16 = (run ~threads:16 costs).Work_steal.makespan_ns in
  Alcotest.(check bool) "4 <= 1" true (t4 <= t1 +. 1e-9);
  Alcotest.(check bool) "16 <= 4 (free stealing)" true (t16 <= t4 +. 1e-9)

let test_deterministic () =
  let costs = List.init 50 (fun i -> float_of_int ((i * 37 mod 11) + 1)) in
  let a = run ~threads:5 ~steal_ns:2.0 costs in
  let b = run ~threads:5 ~steal_ns:2.0 costs in
  Alcotest.(check (float 1e-12)) "same makespan" a.Work_steal.makespan_ns
    b.Work_steal.makespan_ns;
  Alcotest.(check int) "same steals" a.Work_steal.steals b.Work_steal.steals

let test_invalid_threads () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Work_steal.run: threads must be positive") (fun () ->
      ignore (run ~threads:0 [ 1.0 ]))

let arb_costs =
  QCheck.(
    pair (int_range 1 8)
      (list_of_size Gen.(1 -- 60) (float_range 0.0 100.0)))

let prop_makespan_lower_bounds =
  qtest "makespan >= max(total/threads, max_task)" arb_costs
    (fun (threads, costs) ->
      let st = run ~threads costs in
      let total = List.fold_left ( +. ) 0.0 costs in
      let biggest = List.fold_left Float.max 0.0 costs in
      st.Work_steal.makespan_ns +. 1e-6 >= total /. float_of_int threads
      && st.Work_steal.makespan_ns +. 1e-6 >= biggest)

let prop_makespan_upper_bound =
  qtest "makespan <= total work + steal overhead" arb_costs
    (fun (threads, costs) ->
      let st =
        Work_steal.run ~threads ~steal_ns:3.0 ~barrier_ns:0.0 ~cost:(fun c -> c)
          ~execute:ignore (Array.of_list costs)
      in
      st.Work_steal.makespan_ns
      <= List.fold_left ( +. ) 0.0 costs
         +. (3.0 *. float_of_int st.Work_steal.steals)
         +. 1e-6)

let prop_total_work_preserved =
  qtest "total work = sum of costs" arb_costs
    (fun (threads, costs) ->
      let st = run ~threads costs in
      Float.abs (st.Work_steal.total_work_ns -. List.fold_left ( +. ) 0.0 costs)
      < 1e-6)

(* --- Deque --- *)

module Deque = Svagc_par.Deque

let test_deque_owner_lifo_thief_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Deque.length d);
  Alcotest.(check (option int)) "owner pops newest" (Some 4) (Deque.pop_back d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1)
    (Deque.steal_front d);
  Alcotest.(check (option int)) "next steal" (Some 2) (Deque.steal_front d);
  Alcotest.(check (option int)) "owner again" (Some 3) (Deque.pop_back d);
  Alcotest.(check bool) "drained" true (Deque.is_empty d);
  Alcotest.(check (option int)) "pop empty" None (Deque.pop_back d);
  Alcotest.(check (option int)) "steal empty" None (Deque.steal_front d)

let test_deque_reuse_after_drain () =
  let d = Deque.create () in
  (* Drain via steals (head index advances), then reuse: the head must
     have been reset so new pushes are visible. *)
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "steal 1" (Some 1) (Deque.steal_front d);
  Alcotest.(check (option int)) "steal 2" (Some 2) (Deque.steal_front d);
  Alcotest.(check (option int)) "steal 3" (Some 3) (Deque.steal_front d);
  Deque.push d 9;
  Alcotest.(check int) "length after reuse" 1 (Deque.length d);
  Alcotest.(check (option int)) "fresh element" (Some 9) (Deque.pop_back d)

let prop_deque_model =
  qtest ~count:300 "deque agrees with a list model"
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            incr counter;
            Deque.push d !counter;
            model := !model @ [ !counter ];
            true
          | 1 ->
            let expected =
              match List.rev !model with
              | [] -> None
              | x :: rest ->
                model := List.rev rest;
                Some x
            in
            Deque.pop_back d = expected
          | _ ->
            let expected =
              match !model with
              | [] -> None
              | x :: rest ->
                model := rest;
                Some x
            in
            Deque.steal_front d = expected)
        ops
      && Deque.length d = List.length !model)

let () =
  Alcotest.run "svagc_par"
    [
      ( "deque",
        [
          Alcotest.test_case "owner LIFO / thief FIFO" `Quick
            test_deque_owner_lifo_thief_fifo;
          Alcotest.test_case "reuse after drain" `Quick
            test_deque_reuse_after_drain;
          prop_deque_model;
        ] );
      ( "work_steal",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single thread" `Quick test_single_thread_is_sum;
          Alcotest.test_case "perfect split" `Quick test_perfect_split;
          Alcotest.test_case "execute once" `Quick test_execute_each_once;
          Alcotest.test_case "steal on imbalance" `Quick test_stealing_happens_on_imbalance;
          Alcotest.test_case "threads monotone" `Quick test_more_threads_not_slower;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "invalid threads" `Quick test_invalid_threads;
          prop_makespan_lower_bounds;
          prop_makespan_upper_bound;
          prop_total_work_preserved;
        ] );
    ]
