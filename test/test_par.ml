(* Tests for the simulated work-stealing executor. *)

module Work_steal = Svagc_par.Work_steal

let qtest ?(count = 150) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let run ?(threads = 4) ?(steal_ns = 0.0) ?(barrier_ns = 0.0) costs =
  Work_steal.run ~threads ~steal_ns ~barrier_ns ~cost:(fun c -> c)
    ~execute:ignore (Array.of_list costs)

let test_empty () =
  let st = run [] in
  Alcotest.(check (float 1e-9)) "empty makespan" 0.0 st.Work_steal.makespan_ns;
  Alcotest.(check int) "no steals" 0 st.Work_steal.steals

let test_single_thread_is_sum () =
  let st = run ~threads:1 ~barrier_ns:5.0 [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "sum + barrier" 11.0 st.Work_steal.makespan_ns

let test_perfect_split () =
  let st = run ~threads:2 [ 10.0; 10.0 ] in
  Alcotest.(check (float 1e-9)) "parallel halves" 10.0 st.Work_steal.makespan_ns

let test_execute_each_once () =
  let seen = Hashtbl.create 16 in
  let items = Array.init 100 (fun i -> i) in
  let st =
    Work_steal.run ~threads:3 ~steal_ns:1.0 ~barrier_ns:0.0
      ~cost:(fun i -> float_of_int (i mod 7))
      ~execute:(fun i ->
        Hashtbl.replace seen i (1 + Option.value ~default:0 (Hashtbl.find_opt seen i)))
      items
  in
  Alcotest.(check int) "tasks" 100 st.Work_steal.tasks;
  Alcotest.(check int) "all executed" 100 (Hashtbl.length seen);
  Hashtbl.iter (fun _ n -> Alcotest.(check int) "exactly once" 1 n) seen

let test_stealing_happens_on_imbalance () =
  (* With round-robin seeding, thread 0 gets all the heavy tasks unless
     the others steal. *)
  let costs = List.init 12 (fun i -> if i mod 3 = 0 then 100.0 else 1.0) in
  let st = run ~threads:3 ~steal_ns:1.0 costs in
  Alcotest.(check bool) "makespan beats serial heavy chain" true
    (st.Work_steal.makespan_ns < 400.0 -. 1e-9)

let test_more_threads_not_slower () =
  let costs = List.init 64 (fun i -> float_of_int (1 + (i mod 9))) in
  let t1 = (run ~threads:1 costs).Work_steal.makespan_ns in
  let t4 = (run ~threads:4 costs).Work_steal.makespan_ns in
  let t16 = (run ~threads:16 costs).Work_steal.makespan_ns in
  Alcotest.(check bool) "4 <= 1" true (t4 <= t1 +. 1e-9);
  Alcotest.(check bool) "16 <= 4 (free stealing)" true (t16 <= t4 +. 1e-9)

let test_deterministic () =
  let costs = List.init 50 (fun i -> float_of_int ((i * 37 mod 11) + 1)) in
  let a = run ~threads:5 ~steal_ns:2.0 costs in
  let b = run ~threads:5 ~steal_ns:2.0 costs in
  Alcotest.(check (float 1e-12)) "same makespan" a.Work_steal.makespan_ns
    b.Work_steal.makespan_ns;
  Alcotest.(check int) "same steals" a.Work_steal.steals b.Work_steal.steals

let test_invalid_threads () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Work_steal.run: threads must be positive") (fun () ->
      ignore (run ~threads:0 [ 1.0 ]))

let arb_costs =
  QCheck.(
    pair (int_range 1 8)
      (list_of_size Gen.(1 -- 60) (float_range 0.0 100.0)))

let prop_makespan_lower_bounds =
  qtest "makespan >= max(total/threads, max_task)" arb_costs
    (fun (threads, costs) ->
      let st = run ~threads costs in
      let total = List.fold_left ( +. ) 0.0 costs in
      let biggest = List.fold_left Float.max 0.0 costs in
      st.Work_steal.makespan_ns +. 1e-6 >= total /. float_of_int threads
      && st.Work_steal.makespan_ns +. 1e-6 >= biggest)

let prop_makespan_upper_bound =
  qtest "makespan <= total work + steal overhead" arb_costs
    (fun (threads, costs) ->
      let st =
        Work_steal.run ~threads ~steal_ns:3.0 ~barrier_ns:0.0 ~cost:(fun c -> c)
          ~execute:ignore (Array.of_list costs)
      in
      st.Work_steal.makespan_ns
      <= List.fold_left ( +. ) 0.0 costs
         +. (3.0 *. float_of_int st.Work_steal.steals)
         +. 1e-6)

let prop_total_work_preserved =
  qtest "total work = sum of costs" arb_costs
    (fun (threads, costs) ->
      let st = run ~threads costs in
      Float.abs (st.Work_steal.total_work_ns -. List.fold_left ( +. ) 0.0 costs)
      < 1e-6)

(* --- Deque --- *)

module Deque = Svagc_par.Deque

let test_deque_owner_lifo_thief_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "length" 4 (Deque.length d);
  Alcotest.(check (option int)) "owner pops newest" (Some 4) (Deque.pop_back d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1)
    (Deque.steal_front d);
  Alcotest.(check (option int)) "next steal" (Some 2) (Deque.steal_front d);
  Alcotest.(check (option int)) "owner again" (Some 3) (Deque.pop_back d);
  Alcotest.(check bool) "drained" true (Deque.is_empty d);
  Alcotest.(check (option int)) "pop empty" None (Deque.pop_back d);
  Alcotest.(check (option int)) "steal empty" None (Deque.steal_front d)

let test_deque_reuse_after_drain () =
  let d = Deque.create () in
  (* Drain via steals (head index advances), then reuse: the head must
     have been reset so new pushes are visible. *)
  List.iter (Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "steal 1" (Some 1) (Deque.steal_front d);
  Alcotest.(check (option int)) "steal 2" (Some 2) (Deque.steal_front d);
  Alcotest.(check (option int)) "steal 3" (Some 3) (Deque.steal_front d);
  Deque.push d 9;
  Alcotest.(check int) "length after reuse" 1 (Deque.length d);
  Alcotest.(check (option int)) "fresh element" (Some 9) (Deque.pop_back d)

let prop_deque_model =
  qtest ~count:300 "deque agrees with a list model"
    QCheck.(list (int_range 0 2))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            incr counter;
            Deque.push d !counter;
            model := !model @ [ !counter ];
            true
          | 1 ->
            let expected =
              match List.rev !model with
              | [] -> None
              | x :: rest ->
                model := List.rev rest;
                Some x
            in
            Deque.pop_back d = expected
          | _ ->
            let expected =
              match !model with
              | [] -> None
              | x :: rest ->
                model := rest;
                Some x
            in
            Deque.steal_front d = expected)
        ops
      && Deque.length d = List.length !model)

(* --- Domain_pool / Reduce / Par_sweep: real host parallelism --- *)

module Domain_pool = Svagc_par.Domain_pool
module Reduce = Svagc_par.Reduce
module Par_sweep = Svagc_par.Par_sweep
module Machine = Svagc_vmem.Machine
module Perf = Svagc_vmem.Perf
module Process = Svagc_kernel.Process
module Differential = Svagc_check.Differential

let prop_slice_partitions =
  qtest ~count:200 "slice is a contiguous balanced partition"
    QCheck.(pair (int_range 0 500) (int_range 1 32))
    (fun (len, shards) ->
      let ranges = List.init shards (Reduce.slice ~len ~shards) in
      let rec contiguous prev = function
        | [] -> prev = len
        | (lo, hi) :: rest -> lo = prev && lo <= hi && contiguous hi rest
      in
      contiguous 0 ranges
      && List.for_all
           (fun (lo, hi) ->
             let sz = hi - lo in
             sz >= len / shards && sz <= (len / shards) + 1)
           ranges)

let test_pool_executes_once () =
  List.iter
    (fun domains ->
      Domain_pool.with_pool ~domains (fun pool ->
          let hits = Array.make 64 0 in
          Domain_pool.run pool ~shards:64 (fun i -> hits.(i) <- hits.(i) + 1);
          Array.iteri
            (fun i n ->
              if n <> 1 then
                Alcotest.failf "%d domains: shard %d ran %d times" domains i n)
            hits))
    [ 1; 2; 4 ]

let test_pool_map_order () =
  Domain_pool.with_pool ~domains:4 (fun pool ->
      let r = Domain_pool.map_shards pool ~shards:33 (fun i -> i * i) in
      Alcotest.(check int) "length" 33 (Array.length r);
      Array.iteri (fun i v -> Alcotest.(check int) "canonical order" (i * i) v) r)

exception Boom of int

let test_pool_exception_canonical () =
  (* Shards 3 and 7 both fail; the pool must re-raise shard 3's exception
     (the canonical lowest) no matter how many domains ran the batch. *)
  let attempt domains =
    try
      Domain_pool.with_pool ~domains (fun pool ->
          Domain_pool.run pool ~shards:16 (fun i ->
              if i = 3 || i = 7 then raise (Boom i)));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "1 domain" (Some 3) (attempt 1);
  Alcotest.(check (option int)) "4 domains" (Some 3) (attempt 4)

let test_pool_reentrant_inline () =
  Domain_pool.with_pool ~domains:3 (fun pool ->
      let hits = Array.make (4 * 8) 0 in
      Domain_pool.run pool ~shards:4 (fun i ->
          Domain_pool.run pool ~shards:8 (fun j ->
              hits.((i * 8) + j) <- hits.((i * 8) + j) + 1));
      Array.iteri
        (fun k n ->
          if n <> 1 then Alcotest.failf "nested shard %d ran %d times" k n)
        hits)

let test_reduce_concat_and_sums () =
  let segs = [| [| 1; 2 |]; [||]; [| 3 |]; [| 4; 5; 6 |] |] in
  Alcotest.(check (list int)) "concat in shard order" [ 1; 2; 3; 4; 5; 6 ]
    (Array.to_list (Reduce.concat segs));
  Alcotest.(check int) "sum_ints" 21
    (Reduce.sum_ints (Array.map (Array.fold_left ( + ) 0) segs));
  (* Left-to-right float summation: compare against an explicit fold. *)
  let floats = [| 0.1; 0.2; 0.3; 1e16; 1.0; -1e16 |] in
  Alcotest.(check bool) "sum_floats is the left fold, bit-exact" true
    (Int64.bits_of_float (Reduce.sum_floats floats)
    = Int64.bits_of_float (Array.fold_left ( +. ) 0.0 floats))

(* A machine whose page table holds the aftermath of a random (seeded)
   swap schedule — the state the sweep properties run against. *)
let sweep_fixture ~seed =
  let case = Differential.gen_case ~arena_pages:1536 ~seed () in
  let machine =
    Machine.create ~ncores:4 ~phys_mib:64 Svagc_vmem.Cost_model.xeon_6130
  in
  let proc = Process.create ~name:"par-sweep" machine in
  Svagc_vmem.Address_space.map_range (Process.aspace proc)
    ~va:Differential.arena_base ~pages:case.Differential.arena_pages;
  List.iter
    (fun req ->
      ignore (Svagc_kernel.Swapva.swap_disjoint_run proc ~pmd_caching:true req))
    case.Differential.requests;
  ( machine,
    Svagc_vmem.Address_space.page_table (Process.aspace proc),
    case.Differential.arena_pages )

let prop_sweep_partition_invariant =
  qtest ~count:12 "sweep checksum & perf delta are partition-invariant"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let machine, pt, pages = sweep_fixture ~seed in
      let va = Differential.arena_base in
      let reference = Par_sweep.checksum_reference pt ~va ~pages in
      let observe shards =
        let before = Perf.copy machine.Machine.perf in
        let r = Par_sweep.run machine pt ~va ~pages ~shards in
        let delta =
          Perf.to_assoc (Perf.diff ~after:machine.Machine.perf ~before)
        in
        (r.Par_sweep.checksum, r.Par_sweep.leaves, r.Par_sweep.present,
         r.Par_sweep.swapped, delta)
      in
      let (cks1, l1, p1, s1, d1) = observe 1 in
      cks1 = reference
      && List.for_all
           (fun shards -> observe shards = (cks1, l1, p1, s1, d1))
           [ 2; 3; 5; 8; 16 ])

let test_sweep_domain_invariant () =
  (* Identical fixtures, identical shard count, different domain counts:
     every field — float costs included — must be bit-identical. *)
  let va = Differential.arena_base in
  let run_with domains =
    let machine, pt, pages = sweep_fixture ~seed:11 in
    let r =
      Domain_pool.with_pool ~domains (fun pool ->
          Par_sweep.run ~pool machine pt ~va ~pages ~shards:8)
    in
    (r, Perf.to_assoc machine.Machine.perf)
  in
  let r1, c1 = run_with 1 in
  let r4, c4 = run_with 4 in
  Alcotest.(check bool) "sweep results structurally equal" true (r1 = r4);
  Alcotest.(check bool) "walk_ns bit-identical" true
    (Int64.bits_of_float r1.Par_sweep.walk_ns
    = Int64.bits_of_float r4.Par_sweep.walk_ns);
  Alcotest.(check bool) "makespan_ns bit-identical" true
    (Int64.bits_of_float r1.Par_sweep.makespan_ns
    = Int64.bits_of_float r4.Par_sweep.makespan_ns);
  Alcotest.(check bool) "machine counters identical" true (c1 = c4)

let test_sweep_domain_safety_law () =
  let machine, pt, pages = sweep_fixture ~seed:5 in
  let r =
    Par_sweep.run machine pt ~va:Differential.arena_base ~pages ~shards:7
  in
  match Svagc_check.Check.domain_safety r with
  | _, [] -> ()
  | _, f :: _ ->
    Alcotest.failf "domain-safety finding: %a" Svagc_check.Check.pp_finding f

let () =
  Alcotest.run "svagc_par"
    [
      ( "deque",
        [
          Alcotest.test_case "owner LIFO / thief FIFO" `Quick
            test_deque_owner_lifo_thief_fifo;
          Alcotest.test_case "reuse after drain" `Quick
            test_deque_reuse_after_drain;
          prop_deque_model;
        ] );
      ( "work_steal",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single thread" `Quick test_single_thread_is_sum;
          Alcotest.test_case "perfect split" `Quick test_perfect_split;
          Alcotest.test_case "execute once" `Quick test_execute_each_once;
          Alcotest.test_case "steal on imbalance" `Quick test_stealing_happens_on_imbalance;
          Alcotest.test_case "threads monotone" `Quick test_more_threads_not_slower;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "invalid threads" `Quick test_invalid_threads;
          prop_makespan_lower_bounds;
          prop_makespan_upper_bound;
          prop_total_work_preserved;
        ] );
      ( "domain_pool",
        [
          prop_slice_partitions;
          Alcotest.test_case "execute once, any domains" `Quick
            test_pool_executes_once;
          Alcotest.test_case "map in canonical order" `Quick
            test_pool_map_order;
          Alcotest.test_case "canonical exception" `Quick
            test_pool_exception_canonical;
          Alcotest.test_case "re-entrant run degrades inline" `Quick
            test_pool_reentrant_inline;
          Alcotest.test_case "reduce combinators" `Quick
            test_reduce_concat_and_sums;
        ] );
      ( "par_sweep",
        [
          prop_sweep_partition_invariant;
          Alcotest.test_case "domain-invariant to the bit" `Quick
            test_sweep_domain_invariant;
          Alcotest.test_case "domain-safety law" `Quick
            test_sweep_domain_safety_law;
        ] );
    ]
